(** The Firefly processor set.

    [n] identical CPUs share memory; CPU 0 is additionally attached to
    the QBus, so device interrupts and the interprocessor interrupt that
    prods the DEQNA can only run there (paper §3.1.3).  Threads may run
    anywhere.  Requests are served FIFO within a class; interrupt
    requests for CPU 0 pre-empt queued normal work (but not the current
    burst — the model is non-preemptive at burst granularity, and the
    fast path's bursts are tens of microseconds).

    Holding a CPU is represented by a {!ctx}; model code charges
    microseconds to it with {!charge}, which advances virtual time while
    the CPU stays busy and records a {!Sim.Trace} span for the
    latency-accounting experiments (Tables VI–VIII). *)

type t
type ctx

type affinity = Any | Cpu0
type priority = Interrupt | Thread

val create : ?obs:Obs.Ctx.t -> Sim.Engine.t -> site:string -> cpus:int -> t
(** With [?obs], the set's busy-CPU levels are registered as
    [cpus.busy] / [cpus.cpu0_busy] under [site]. *)

val site : t -> string
val cpu_count : t -> int

val with_cpu : ?affinity:affinity -> ?priority:priority -> t -> (ctx -> 'a) -> 'a
(** [with_cpu t f] acquires a CPU (waiting if necessary), runs [f] with
    the held context and releases the CPU afterwards, also on
    exception.  [Any] requests prefer the highest-numbered free CPU so
    CPU 0 stays available for interrupt work.  [Interrupt] priority is
    only meaningful with [affinity = Cpu0]. *)

val charge :
  ?kind:Sim.Trace.kind -> ?call:int -> ctx -> cat:string -> label:string -> Sim.Time.span -> unit
(** [charge ctx ~cat ~label d] keeps the CPU busy for [d] and records a
    trace span.  Zero-length charges are skipped entirely.  The span is
    attributed to [call] when given, otherwise to the context's current
    trace call ({!set_trace_call}); [kind] defaults to service time. *)

val cpu_index : ctx -> int

val track : ctx -> string
(** The trace track name of the CPU currently held ("cpu0".."cpuN-1"). *)

val trace_call : ctx -> int
(** The call id charges on this context are attributed to;
    {!Sim.Trace.no_call} unless {!set_trace_call} was called. *)

val set_trace_call : ctx -> int -> unit
(** Attributes subsequent {!charge}s on this context to the given call
    id (from {!Sim.Trace.new_call}).  Reset it to {!Sim.Trace.no_call}
    when the call completes; pure bookkeeping, no engine effects. *)

val yield_cpu : ctx -> (unit -> 'a) -> 'a
(** [yield_cpu ctx f] releases the held CPU, runs [f] (typically a
    blocking wait), then re-acquires a CPU with the original affinity
    before returning — how a thread blocks without holding a processor.
    The context remains valid afterwards. *)

(** {1 Measurement} *)

val average_busy : t -> upto:Sim.Time.t -> float
(** Time-averaged number of busy CPUs — the paper's "about 1.2 CPUs
    being used on the caller machine" metric. *)

val utilization : t -> upto:Sim.Time.t -> float
val cpu0_utilization : t -> upto:Sim.Time.t -> float
val busy_now : t -> int
