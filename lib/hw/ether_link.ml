module Engine = Sim.Engine
module Time = Sim.Time

type fault =
  | Deliver
  | Drop
  | Corrupt
  | Corrupt_payload
  | Duplicate
  | Delay of Sim.Time.span
  | Reorder

type station = {
  st_mac : Net.Mac.t;
  on_frame_start : frame:Bytes.t -> wire:Time.span -> unit;
}

type held_frame = { hf_src : Net.Mac.t; hf_frame : Bytes.t; hf_wire : Time.span }

type t = {
  eng : Engine.t;
  mbps : float;
  medium : Sim.Resource.t;
  stations : (Net.Mac.t, station) Hashtbl.t;
  mutable uplink : (src:Net.Mac.t -> frame:Bytes.t -> wire:Time.span -> unit) option;
  mutable injector : (Bytes.t -> fault) option;
  mutable held : held_frame option;
  mutable held_gen : int;
  frames : Sim.Stats.Counter.t;
  bytes : Sim.Stats.Counter.t;
  dropped : Sim.Stats.Counter.t;
  corrupted : Sim.Stats.Counter.t;
  duplicated : Sim.Stats.Counter.t;
  delayed : Sim.Stats.Counter.t;
  reordered : Sim.Stats.Counter.t;
}

let create ?obs eng ~mbps =
  if mbps <= 0. then invalid_arg "Ether_link.create: mbps must be positive";
  let t =
    {
      eng;
      mbps;
      medium = Sim.Resource.create eng ~name:"ethernet" ~capacity:1;
      stations = Hashtbl.create 8;
      uplink = None;
      injector = None;
      held = None;
      held_gen = 0;
      frames = Sim.Stats.Counter.create ();
      bytes = Sim.Stats.Counter.create ();
      dropped = Sim.Stats.Counter.create ();
      corrupted = Sim.Stats.Counter.create ();
      duplicated = Sim.Stats.Counter.create ();
      delayed = Sim.Stats.Counter.create ();
      reordered = Sim.Stats.Counter.create ();
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let reg = o.Obs.Ctx.metrics in
    let site = "ether" in
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.frames" t.frames;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.bytes" t.bytes;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.dropped" t.dropped;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.corrupted" t.corrupted;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.duplicated" t.duplicated;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.delayed" t.delayed;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"link.reordered" t.reordered;
    Obs.Metrics.Registry.register_probe reg ~site ~name:"link.utilization" (fun () ->
        Sim.Resource.utilization t.medium ~upto:(Engine.now t.eng)));
  t

let attach t ~mac ~on_frame_start =
  if Hashtbl.mem t.stations mac then
    invalid_arg ("Ether_link.attach: duplicate station " ^ Net.Mac.to_string mac);
  let st = { st_mac = mac; on_frame_start } in
  Hashtbl.replace t.stations mac st;
  st

let detach t station = Hashtbl.remove t.stations station.st_mac

let wire_span t ~bytes = Time.us_f (float_of_int (bytes * 8) /. t.mbps)
let interframe_gap t = Time.us_f (96. /. t.mbps)
let interframe_span = interframe_gap

let set_fault_injector t f = t.injector <- f
let set_uplink t f = t.uplink <- f

(* Corrupt one byte past [lo], mimicking the DEQNA's post-CRC memory
   errors: the frame still demultiplexes, only the end-to-end checksum
   can catch it. *)
let corrupt_copy t frame ~lo =
  let b = Bytes.copy frame in
  if Bytes.length b > lo then begin
    let i = lo + Sim.Rng.int (Engine.rng t.eng) (Bytes.length b - lo) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20))
  end;
  b

(* A reordered frame not overtaken within this span is delivered anyway,
   so a lone trailing frame cannot vanish into the hold buffer. *)
let reorder_backstop = Time.ms 1

let deliver t ~src frame ~wire =
  let dst = Net.Mac.read (Wire.Bytebuf.Reader.of_bytes frame) in
  let notify st = if not (Net.Mac.equal st.st_mac src) then st.on_frame_start ~frame ~wire in
  if Net.Mac.is_broadcast dst then Hashtbl.iter (fun _ st -> notify st) t.stations
  else
    match Hashtbl.find_opt t.stations dst with
    | Some st -> notify st
    | None -> (
      (* No station on this segment owns the destination MAC.  With an
         uplink (a switch port bridging segments, library [fleet]) the
         frame is handed there; otherwise it disappears into the ether,
         exactly as before. *)
      match t.uplink with
      | Some up -> up ~src ~frame ~wire
      | None -> ())

let release_held t =
  match t.held with
  | None -> ()
  | Some h ->
    t.held <- None;
    deliver t ~src:h.hf_src h.hf_frame ~wire:h.hf_wire

let transmit ?(call = Sim.Trace.no_call) t ~src frame =
  let len = Bytes.length frame in
  if len < Net.Ethernet.header_size then invalid_arg "Ether_link.transmit: runt frame";
  if len > Net.Ethernet.max_frame_size then invalid_arg "Ether_link.transmit: giant frame";
  let wait_from = Engine.now t.eng in
  Sim.Resource.acquire t.medium;
  (* Time spent waiting for another station's frame (plus its interframe
     gap) is Ethernet queueing delay, not transmission time. *)
  let acquired_at = Engine.now t.eng in
  if Time.span_compare (Time.diff acquired_at wait_from) Time.zero_span > 0 then
    Sim.Trace.add ~track:"wire" ~kind:Sim.Trace.Queue ~call (Engine.trace t.eng)
      ~cat:"send+receive" ~label:"Wait for Ethernet medium" ~site:"ether" ~start_at:wait_from
      ~stop_at:acquired_at;
  Fun.protect
    ~finally:(fun () -> Sim.Resource.release t.medium)
    (fun () ->
      let wire = wire_span t ~bytes:(max len Net.Ethernet.min_frame_size) in
      Sim.Stats.Counter.incr t.frames;
      Sim.Stats.Counter.add t.bytes len;
      let fate =
        match t.injector with
        | None -> Deliver
        | Some f -> f frame
      in
      (match fate with
      | Deliver ->
        deliver t ~src frame ~wire;
        release_held t
      | Drop ->
        Sim.Stats.Counter.incr t.dropped;
        release_held t
      | Corrupt ->
        Sim.Stats.Counter.incr t.corrupted;
        deliver t ~src (corrupt_copy t frame ~lo:Net.Ethernet.header_size) ~wire;
        release_held t
      | Corrupt_payload ->
        if len > 74 then begin
          Sim.Stats.Counter.incr t.corrupted;
          deliver t ~src (corrupt_copy t frame ~lo:74) ~wire
        end
        else deliver t ~src frame ~wire;
        release_held t
      | Duplicate ->
        (* The frame arrives twice back to back, as if the controller
           retransmitted it; the medium is occupied for both copies, so
           the sender blocks for two frame times. *)
        Sim.Stats.Counter.incr t.duplicated;
        deliver t ~src frame ~wire;
        release_held t;
        Engine.delay t.eng (Time.span_add wire (interframe_gap t));
        Sim.Stats.Counter.incr t.frames;
        Sim.Stats.Counter.add t.bytes len;
        deliver t ~src (Bytes.copy frame) ~wire
      | Delay hold ->
        if Time.span_is_negative hold then invalid_arg "Ether_link: negative Delay fault";
        (* The frame sits in limbo (a congested bridge, a slow repeater)
           and arrives [hold] later; the sender's occupancy is normal. *)
        Sim.Stats.Counter.incr t.delayed;
        let copy = Bytes.copy frame in
        release_held t;
        Engine.schedule t.eng ~after:hold (fun () -> deliver t ~src copy ~wire)
      | Reorder ->
        (* The frame is overtaken by the next one on the segment (a
           store-and-forward bridge draining out of order): it is held
           and released right after the next frame's delivery, or after
           [reorder_backstop] if the segment goes quiet. *)
        Sim.Stats.Counter.incr t.reordered;
        release_held t;
        t.held <- Some { hf_src = src; hf_frame = Bytes.copy frame; hf_wire = wire };
        t.held_gen <- t.held_gen + 1;
        let gen = t.held_gen in
        Engine.schedule t.eng ~after:reorder_backstop (fun () ->
            if t.held_gen = gen then release_held t));
      Engine.delay t.eng (Time.span_add wire (interframe_gap t)))

let frames_carried t = Sim.Stats.Counter.value t.frames
let bytes_carried t = Sim.Stats.Counter.value t.bytes
let frames_dropped t = Sim.Stats.Counter.value t.dropped
let frames_corrupted t = Sim.Stats.Counter.value t.corrupted
let frames_duplicated t = Sim.Stats.Counter.value t.duplicated
let frames_delayed t = Sim.Stats.Counter.value t.delayed
let frames_reordered t = Sim.Stats.Counter.value t.reordered
let utilization t ~upto = Sim.Resource.utilization t.medium ~upto
