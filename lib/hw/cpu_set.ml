module Engine = Sim.Engine
module Time = Sim.Time

type affinity = Any | Cpu0
type priority = Interrupt | Thread

type t = {
  eng : Engine.t;
  name : string;
  n : int;
  busy : bool array;
  q0_int : int Engine.waker Queue.t;
  q0_thread : int Engine.waker Queue.t;
  q_any : int Engine.waker Queue.t;
  level : Sim.Stats.Level.t;
  cpu0_level : Sim.Stats.Level.t;
  tracks : string array;  (* per-CPU trace track names, "cpu0".."cpuN-1" *)
}

type ctx = { set : t; affinity : affinity; mutable idx : int; mutable trace_id : int }

let create ?obs eng ~site ~cpus =
  if cpus < 1 then invalid_arg "Cpu_set.create: need at least one CPU";
  let now = Engine.now eng in
  let t =
    {
      eng;
      name = site;
      n = cpus;
      busy = Array.make cpus false;
      q0_int = Queue.create ();
      q0_thread = Queue.create ();
      q_any = Queue.create ();
      level = Sim.Stats.Level.create ~initial:0. ~at:now;
      cpu0_level = Sim.Stats.Level.create ~initial:0. ~at:now;
      tracks = Array.init cpus (Printf.sprintf "cpu%d");
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let reg = o.Obs.Ctx.metrics in
    Obs.Metrics.Registry.register_level reg ~site ~name:"cpus.busy" t.level;
    Obs.Metrics.Registry.register_level reg ~site ~name:"cpus.cpu0_busy" t.cpu0_level);
  t

let site t = t.name
let cpu_count t = t.n

let busy_count t = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.busy

let note_levels t =
  let now = Engine.now t.eng in
  Sim.Stats.Level.set t.level (float_of_int (busy_count t)) ~at:now;
  Sim.Stats.Level.set t.cpu0_level (if t.busy.(0) then 1. else 0.) ~at:now

let take t idx =
  t.busy.(idx) <- true;
  note_levels t

let free_index t idx =
  t.busy.(idx) <- false;
  note_levels t

(* Prefer the highest-numbered free CPU for Any requests so CPU 0 stays
   clear for interrupts on a multiprocessor. *)
let find_free_any t =
  let rec go i = if i < 0 then None else if not t.busy.(i) then Some i else go (i - 1) in
  go (t.n - 1)

(* A suspended acquire is CPU queueing delay: record it (kind [Queue])
   against the waiting call so the attribution engine can separate
   contention from service time.  The pre-suspend [Engine.now] is a pure
   read and [Sim.Trace.add] no-ops while tracing is off, so the untraced
   path is unchanged. *)
let suspend_queued ?(call = Sim.Trace.no_call) t push =
  let start_at = Engine.now t.eng in
  let idx = Engine.suspend t.eng push in
  let stop_at = Engine.now t.eng in
  if Time.span_compare (Time.diff stop_at start_at) Time.zero_span > 0 then
    Sim.Trace.add ~track:t.tracks.(idx) ~kind:Sim.Trace.Queue ~call (Engine.trace t.eng)
      ~cat:"queue" ~label:"Wait for free CPU" ~site:t.name ~start_at ~stop_at;
  idx

let acquire ?call t ~affinity ~priority =
  match affinity with
  | Cpu0 ->
    if not t.busy.(0) then begin
      take t 0;
      0
    end
    else
      let q =
        match priority with
        | Interrupt -> t.q0_int
        | Thread -> t.q0_thread
      in
      suspend_queued ?call t (fun w -> Queue.push w q)
  | Any -> (
    match find_free_any t with
    | Some i ->
      take t i;
      i
    | None -> suspend_queued ?call t (fun w -> Queue.push w t.q_any))

(* Handing a CPU to a waiter keeps it busy; only update levels when it
   actually goes idle. *)
let rec hand_off_queue q idx =
  match Queue.take_opt q with
  | None -> false
  | Some w -> Engine.wake w idx || hand_off_queue q idx

let release t idx =
  let handed =
    if idx = 0 then
      hand_off_queue t.q0_int 0 || hand_off_queue t.q0_thread 0 || hand_off_queue t.q_any 0
    else hand_off_queue t.q_any idx
  in
  if not handed then free_index t idx

let with_cpu ?(affinity = Any) ?(priority = Thread) t f =
  let idx = acquire t ~affinity ~priority in
  let ctx = { set = t; affinity; idx; trace_id = Sim.Trace.no_call } in
  Fun.protect ~finally:(fun () -> release t ctx.idx) (fun () -> f ctx)

let charge ?kind ?call ctx ~cat ~label d =
  if Time.span_compare d Time.zero_span > 0 then begin
    let t = ctx.set in
    let call =
      match call with
      | Some c -> c
      | None -> ctx.trace_id
    in
    let start_at = Engine.now t.eng in
    Engine.delay t.eng d;
    Sim.Trace.add ~track:t.tracks.(ctx.idx) ?kind ~call (Engine.trace t.eng) ~cat ~label
      ~site:t.name ~start_at ~stop_at:(Engine.now t.eng)
  end

let cpu_index ctx = ctx.idx
let track ctx = ctx.set.tracks.(ctx.idx)
let trace_call ctx = ctx.trace_id
let set_trace_call ctx call = ctx.trace_id <- call

let yield_cpu ctx f =
  let t = ctx.set in
  release t ctx.idx;
  (* Re-acquire even on exception so the enclosing [with_cpu] releases a
     CPU we actually hold.  The thread may come back on a different CPU,
     as on the real machine. *)
  Fun.protect
    ~finally:(fun () ->
      ctx.idx <- acquire ~call:ctx.trace_id t ~affinity:ctx.affinity ~priority:Thread)
    f

let average_busy t ~upto = Sim.Stats.Level.average t.level ~upto
let utilization t ~upto = average_busy t ~upto /. float_of_int t.n
let cpu0_utilization t ~upto = Sim.Stats.Level.average t.cpu0_level ~upto
let busy_now t = busy_count t
