(** The DEQNA Ethernet controller model.

    Store-and-forward in both directions (no cut-through, §4.2.1): a
    transmitted frame is first read from memory over the QBus, then put
    on the wire; a received frame occupies the receive engine from the
    moment its first bit arrives until its QBus write to memory
    completes.  That serialization — 2045 µs of transmit-engine time and
    2065 µs of receive-engine time per maximum-size packet — is the
    hardware ceiling behind the paper's 4.65 Mbit/s RPC throughput.
    With [cut_through] enabled, QBus and wire transfers overlap and each
    engine is busy only for the longer of the two plus a small setup,
    which is §4.2.1's hypothetical better controller.

    Receive needs a buffer {e credit} (a free packet buffer handed down
    by the driver); a frame arriving while the engine is busy or
    creditless is dropped and counted — the driver's on-the-fly buffer
    replacement (§3.2) exists precisely to keep credits available.

    Received frames accumulate in a completion queue; the controller
    raises the interrupt line once and leaves it asserted until the
    driver calls {!interrupt_done}, so one interrupt can drain many
    packets (§3.2 reports several hundred). *)

type t

val create :
  Sim.Engine.t ->
  Timing.t ->
  link:Ether_link.t ->
  qbus:Sim.Resource.t ->
  mac:Net.Mac.t ->
  ?site:string ->
  ?obs:Obs.Ctx.t ->
  unit ->
  t
(** [site] names the machine in trace spans (defaults to the MAC
    address); the controller records the Table VI hardware steps —
    QBus transfers and Ethernet transmission time — when tracing is
    enabled.  With [?obs], the frame counters and a queue-depth probe
    are registered under [deqna.*] and every completed tx/rx frame is
    journalled. *)

val mac : t -> Net.Mac.t
val station : t -> Ether_link.station

val detach_from_link : t -> unit
(** Stops receiving from the wire (machine power-off). *)

val reattach_to_link : t -> unit
(** Resumes receiving with the controller's own handler. *)

(** {1 Driver interface — transmit} *)

val queue_tx : t -> Stdlib.Bytes.t -> unit
(** Appends a frame to the transmit ring.  The ring is unbounded: the
    RPC workload self-limits to one outstanding packet per thread. *)

val start_transmit : t -> unit
(** The CPU-0 "prod" (paper §3.1.3): starts the transmit engine if it
    is idle.  Idempotent. *)

(** {1 Driver interface — receive} *)

val add_rx_credits : t -> int -> unit
(** Hands [n] free receive buffers to the controller. *)

val rx_credits : t -> int

val set_interrupt_handler : t -> (unit -> unit) -> unit
(** [f] is invoked (in a fresh process) when the completion queue goes
    non-empty while the interrupt line is clear. *)

val take_rx : t -> Stdlib.Bytes.t option
(** Pops the oldest completed receive, if any. *)

val peek_rx : t -> Stdlib.Bytes.t option
(** The oldest completed receive without removing it — a pure read, used
    by the interrupt handler to attribute its entry cost to the frame it
    is about to drain. *)

val interrupt_done : t -> unit
(** Clears the interrupt line; re-raises immediately if completions
    arrived while the driver was finishing. *)

val last_irq_at : t -> Sim.Time.t
(** When the interrupt line was last asserted — the driver measures
    interrupt service latency against this. *)

(** {1 Statistics} *)

val tx_frames : t -> int
val rx_frames : t -> int

val rx_overruns : t -> int
(** Frames lost because the receive engine was still busy with an
    earlier frame. *)

val rx_no_buffer : t -> int
(** Frames lost for want of a receive buffer credit. *)
