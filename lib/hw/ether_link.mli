(** The shared 10 Mbit/s Ethernet segment.

    One frame occupies the medium at a time (acquisition is FIFO — a
    simplification of CSMA/CD that is exact for the paper's two-machine
    private-Ethernet setup, where the closed request/response loop never
    produces collisions).  A receiving station is notified when a frame
    {e starts} arriving, with the frame's wire time, so the controller
    model can hold its receive engine busy for the duration — that
    store-and-forward occupancy is what caps the paper's throughput.

    A fault injector can drop frames (wire noise, receiver CRC reject)
    or corrupt bytes {e after} the CRC check — the DEQNA misbehaviour
    that justifies software UDP checksums (§4.2.4). *)

type t

type fault =
  | Deliver  (** normal delivery *)
  | Drop  (** frame lost; wire time still elapses *)
  | Corrupt  (** one byte past the Ethernet header flipped after the CRC check *)
  | Corrupt_payload
      (** one byte past offset 74 flipped — guaranteed to hit RPC
          argument/result data, leaving all headers intact; delivers
          unmodified if the frame has no payload *)
  | Duplicate
      (** the frame arrives twice back to back; the sender occupies the
          medium for both copies *)
  | Delay of Sim.Time.span
      (** the frame arrives the given span late (reordering past frames
          sent after it); the sender's occupancy is unchanged.
          [transmit] raises [Invalid_argument] on a negative span *)
  | Reorder
      (** the frame is overtaken by the {e next} frame on the segment:
          it is held and delivered immediately after that frame, or
          after a 1 ms backstop if the segment goes quiet first.  A
          second [Reorder] while one frame is already held releases the
          first *)

type station

val create : ?obs:Obs.Ctx.t -> Sim.Engine.t -> mbps:float -> t
(** With [?obs], the carried/fault counters and a medium-utilization
    probe are registered under site ["ether"]. *)

val attach :
  t -> mac:Net.Mac.t -> on_frame_start:(frame:Stdlib.Bytes.t -> wire:Sim.Time.span -> unit) -> station
(** Attaches a station.  [on_frame_start] is invoked — at the instant a
    frame addressed to this station (or to broadcast) begins arriving —
    with the frame bytes and its remaining wire time.
    @raise Invalid_argument if the MAC is already attached. *)

val detach : t -> station -> unit
(** Removes a station (server crash experiments). *)

val transmit : ?call:int -> t -> src:Net.Mac.t -> Stdlib.Bytes.t -> unit
(** [transmit t ~src frame] waits for the medium, occupies it for the
    frame's wire time plus the interframe gap, and delivers to the
    destination (first 6 bytes of the frame).  Blocks the calling
    process for the whole occupancy — the transmitting controller is
    busy throughout (no cut-through is modelled by the {e caller}
    sequencing its QBus transfer before this call).  When tracing is on,
    a non-zero wait for the medium is recorded as a queueing span
    attributed to [call] (default {!Sim.Trace.no_call}). *)

val wire_span : t -> bytes:int -> Sim.Time.span
val interframe_span : t -> Sim.Time.span

val set_fault_injector : t -> (Stdlib.Bytes.t -> fault) option -> unit

val set_uplink :
  t -> (src:Net.Mac.t -> frame:Stdlib.Bytes.t -> wire:Sim.Time.span -> unit) option -> unit
(** The segment's bridge to the rest of a larger network: a unicast
    frame whose destination MAC matches no attached station is handed to
    the uplink (at transmission start, with its wire time) instead of
    vanishing.  A switch port (library [fleet]) registers itself here;
    [None] — the default — keeps the classic single-segment behaviour,
    so the two-machine reproduction is untouched.  Broadcast frames stay
    on their segment. *)

(** {1 Statistics} *)

val frames_carried : t -> int
val bytes_carried : t -> int
val frames_dropped : t -> int
val frames_corrupted : t -> int
val frames_duplicated : t -> int
val frames_delayed : t -> int
val frames_reordered : t -> int
val utilization : t -> upto:Sim.Time.t -> float
