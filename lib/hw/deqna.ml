module Engine = Sim.Engine
module Time = Sim.Time

(* One DMA/processing engine serves transmit and receive work in FIFO
   order; arriving frames land in a small staging RAM (overrun-dropped
   when it is full) and are drained to memory when the engine gets to
   them.  Store-and-forward everywhere: a transmitted frame is read over
   the QBus before it goes on the wire, a received frame is on the wire
   before its QBus write starts (no cut-through, §4.2.1), and each frame
   costs the engine a housekeeping recovery after the transfer. *)

type job =
  | Tx of { frame : Bytes.t; enq_at : Time.t }
  | Rx_drain of { frame : Bytes.t; ready_at : Time.t; enq_at : Time.t }

type t = {
  eng : Engine.t;
  timing : Timing.t;
  dev_mac : Net.Mac.t;
  site : string;
  link : Ether_link.t;
  qbus : Sim.Resource.t;
  mutable dev_station : Ether_link.station option;
  jobs : job Queue.t;
  engine_kick : Sim.Condvar.t;
  staging_cap : int;
  mutable staging_used : int;
  mutable credits : int;
  rx_done : Bytes.t Queue.t;
  mutable irq_asserted : bool;
  mutable irq_raised_at : Time.t;
  mutable irq_handler : unit -> unit;
  obs : Obs.Ctx.t option;
  c_tx : Sim.Stats.Counter.t;
  c_rx : Sim.Stats.Counter.t;
  c_overrun : Sim.Stats.Counter.t;
  c_no_buffer : Sim.Stats.Counter.t;
}

let journal t ev =
  match t.obs with
  | None -> ()
  | Some o -> Obs.Ctx.record o ~at:(Engine.now t.eng) ~site:t.site ev

let cut_through t = (Timing.config t.timing).Config.cut_through

(* Controller timings vary a little in reality (memory contention, ring
   state); ±20% jitter on the housekeeping phases keeps the closed-loop
   workload from phase-locking into artificial deterministic cycles. *)
let jitter t span =
  Time.span_scale (0.8 +. Sim.Rng.float (Engine.rng t.eng) 0.4) span

let raise_irq t =
  if not t.irq_asserted then begin
    t.irq_asserted <- true;
    t.irq_raised_at <- Engine.now t.eng;
    let handler = t.irq_handler in
    Engine.spawn t.eng ~name:"deqna-irq" handler
  end

let enqueue_job t job =
  Queue.push job t.jobs;
  ignore (Sim.Condvar.signal t.engine_kick)

(* Reception: the frame streams into staging RAM during its wire time,
   independent of the engine.  Store-and-forward queues the drain job
   when the frame is complete; a cut-through controller (§4.2.1) starts
   the memory write immediately, overlapping it with reception, and
   completes at whichever of the two transfers finishes last. *)
let on_frame_start t ~frame ~wire =
  if t.staging_used >= t.staging_cap then Sim.Stats.Counter.incr t.c_overrun
  else begin
    t.staging_used <- t.staging_used + 1;
    let ready_at = Time.add (Engine.now t.eng) wire in
    if cut_through t then enqueue_job t (Rx_drain { frame; ready_at; enq_at = Engine.now t.eng })
    else
      Engine.spawn t.eng ~name:"deqna-rx-wire" (fun () ->
          Engine.delay t.eng wire;
          enqueue_job t (Rx_drain { frame; ready_at; enq_at = Engine.now t.eng }))
  end

let trace_span ?(track = "deqna") ?kind ?call t ~label ~start_at ~stop_at =
  Sim.Trace.add ~track ?kind ?call (Engine.trace t.eng) ~cat:"send+receive" ~label ~site:t.site
    ~start_at ~stop_at

(* The frame's call id, recovered from the sender's registration by
   physical buffer identity ([Sim.Trace.register_frame]). *)
let call_of_frame t frame = Sim.Trace.frame_call (Engine.trace t.eng) frame

(* Queueing delay on the controller's shared resources is recorded
   separately from service time so the attribution engine can tell
   contention from work.  Zero-length waits record nothing. *)
let trace_queue ?(track = "deqna") t ~label ~call ~start_at ~stop_at =
  if Time.span_compare (Time.diff stop_at start_at) Time.zero_span > 0 then
    trace_span ~track ~kind:Sim.Trace.Queue ~call t ~label ~start_at ~stop_at

let use_qbus ?(call = Sim.Trace.no_call) t span ~label =
  let wait_from = Engine.now t.eng in
  Sim.Resource.acquire t.qbus;
  let start_at = Engine.now t.eng in
  trace_queue t ~label:"Wait for QBus" ~call ~start_at:wait_from ~stop_at:start_at;
  Engine.delay t.eng span;
  trace_span ~call t ~label ~start_at ~stop_at:(Engine.now t.eng);
  Sim.Resource.release t.qbus

let transmit_traced ?call t frame =
  let len = Bytes.length frame in
  Ether_link.transmit ?call t.link ~src:t.dev_mac frame;
  (* [transmit] blocks through medium acquisition, the wire time and
     the interframe gap; reconstruct the pure wire interval for the
     Table VI "Transmission time on Ethernet" step. *)
  let after = Engine.now t.eng in
  let wire = Ether_link.wire_span t.link ~bytes:(max len Net.Ethernet.min_frame_size) in
  let neg d = Time.span_scale (-1.) d in
  let wire_end = Time.add after (neg (Ether_link.interframe_span t.link)) in
  let wire_start = Time.add wire_end (neg wire) in
  trace_span ~track:"wire" ?call t ~label:"Transmission time on Ethernet" ~start_at:wire_start
    ~stop_at:wire_end

let do_tx t frame ~enq_at =
  let call = call_of_frame t frame in
  trace_queue t ~label:"Controller transmit queue" ~call ~start_at:enq_at
    ~stop_at:(Engine.now t.eng);
  let qspan = Timing.qbus_transmit t.timing ~bytes:(Bytes.length frame) in
  let qlabel = "QBus/Controller transmit latency" in
  if cut_through t then begin
    (* QBus read overlaps the wire transfer (§4.2.1's hypothetical
       controller): the engine is busy for the longer of the two. *)
    let qbus_done = Sim.Gate.create t.eng in
    Engine.spawn t.eng ~name:"deqna-tx-dma" (fun () ->
        use_qbus ~call t qspan ~label:qlabel;
        Sim.Gate.open_ qbus_done);
    Engine.delay t.eng (Timing.cut_through_setup t.timing);
    transmit_traced ~call t frame;
    Sim.Gate.wait qbus_done
  end
  else begin
    use_qbus ~call t qspan ~label:qlabel;
    transmit_traced ~call t frame
  end;
  Sim.Stats.Counter.incr t.c_tx;
  journal t (Obs.Journal.Packet_tx { bytes = Bytes.length frame });
  Engine.delay t.eng (jitter t (Timing.deqna_tx_recovery t.timing))

let do_rx_drain t frame ~ready_at ~enq_at =
  let len = Bytes.length frame in
  if t.credits = 0 then begin
    Sim.Stats.Counter.incr t.c_no_buffer;
    t.staging_used <- t.staging_used - 1
  end
  else begin
    let call = call_of_frame t frame in
    trace_queue t ~label:"Controller receive queue" ~call ~start_at:enq_at
      ~stop_at:(Engine.now t.eng);
    t.credits <- t.credits - 1;
    use_qbus ~call t
      (Timing.qbus_receive t.timing ~bytes:len)
      ~label:"QBus/Controller receive latency";
    (* Under cut-through the write may outrun reception: the frame is
       only complete in memory at [ready_at]. *)
    let now = Engine.now t.eng in
    if Time.(now < ready_at) then Engine.delay t.eng (Time.diff ready_at now);
    t.staging_used <- t.staging_used - 1;
    Queue.push frame t.rx_done;
    Sim.Stats.Counter.incr t.c_rx;
    journal t (Obs.Journal.Packet_rx { bytes = len });
    raise_irq t;
    Engine.delay t.eng (jitter t (Timing.deqna_rx_recovery t.timing ~bytes:len))
  end

let engine_loop t () =
  let rec loop () =
    match Queue.take_opt t.jobs with
    | Some (Tx { frame; enq_at }) ->
      do_tx t frame ~enq_at;
      loop ()
    | Some (Rx_drain { frame; ready_at; enq_at }) ->
      do_rx_drain t frame ~ready_at ~enq_at;
      loop ()
    | None ->
      Sim.Condvar.await t.engine_kick;
      loop ()
  in
  loop ()

let create eng timing ~link ~qbus ~mac ?site ?obs () =
  let t =
    {
      eng;
      timing;
      dev_mac = mac;
      site = Option.value site ~default:(Net.Mac.to_string mac);
      link;
      qbus;
      dev_station = None;
      jobs = Queue.create ();
      engine_kick = Sim.Condvar.create eng;
      staging_cap = (Timing.config timing).Config.deqna_staging_frames;
      staging_used = 0;
      credits = 0;
      rx_done = Queue.create ();
      irq_asserted = false;
      irq_raised_at = Time.zero;
      irq_handler = ignore;
      obs;
      c_tx = Sim.Stats.Counter.create ();
      c_rx = Sim.Stats.Counter.create ();
      c_overrun = Sim.Stats.Counter.create ();
      c_no_buffer = Sim.Stats.Counter.create ();
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let reg = o.Obs.Ctx.metrics in
    let site = t.site in
    Obs.Metrics.Registry.register_counter reg ~site ~name:"deqna.tx_frames" t.c_tx;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"deqna.rx_frames" t.c_rx;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"deqna.rx_overruns" t.c_overrun;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"deqna.rx_no_buffer" t.c_no_buffer;
    Obs.Metrics.Registry.register_probe reg ~site ~name:"deqna.queue_depth" (fun () ->
        float_of_int (Queue.length t.jobs + t.staging_used)));
  let station =
    Ether_link.attach link ~mac ~on_frame_start:(fun ~frame ~wire -> on_frame_start t ~frame ~wire)
  in
  t.dev_station <- Some station;
  Engine.spawn eng ~name:"deqna-engine" (engine_loop t);
  t

let mac t = t.dev_mac

let station t =
  match t.dev_station with
  | Some s -> s
  | None -> invalid_arg "Deqna.station: detached"

let detach_from_link t =
  match t.dev_station with
  | Some s ->
    Ether_link.detach t.link s;
    t.dev_station <- None
  | None -> ()

let reattach_to_link t =
  match t.dev_station with
  | Some _ -> ()
  | None ->
    let station =
      Ether_link.attach t.link ~mac:t.dev_mac ~on_frame_start:(fun ~frame ~wire ->
          on_frame_start t ~frame ~wire)
    in
    t.dev_station <- Some station

(* Queueing a frame does not start the engine: an idle controller only
   begins transmitting when CPU 0 prods it (the "activate Ethernet
   controller" step); a busy engine picks the job up when it gets
   there. *)
let queue_tx t frame = Queue.push (Tx { frame; enq_at = Engine.now t.eng }) t.jobs
let start_transmit t = ignore (Sim.Condvar.signal t.engine_kick)
let add_rx_credits t n = t.credits <- t.credits + n
let rx_credits t = t.credits
let set_interrupt_handler t f = t.irq_handler <- f
let take_rx t = Queue.take_opt t.rx_done
let peek_rx t = Queue.peek_opt t.rx_done

let interrupt_done t =
  t.irq_asserted <- false;
  if not (Queue.is_empty t.rx_done) then raise_irq t

let last_irq_at t = t.irq_raised_at
let tx_frames t = Sim.Stats.Counter.value t.c_tx
let rx_frames t = Sim.Stats.Counter.value t.c_rx
let rx_overruns t = Sim.Stats.Counter.value t.c_overrun
let rx_no_buffer t = Sim.Stats.Counter.value t.c_no_buffer
