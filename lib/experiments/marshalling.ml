module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module World = Workload.World

type row = { label : string; paper_us : float; measured_us : float }

(* The measurement interface: one procedure per argument shape of
   Tables II-V, plus the Null() baseline. *)
let interface =
  let var_out name n = Idl.arg ~mode:Idl.Var_out name (Idl.T_var_bytes n) in
  Idl.interface ~name:"MarshalBench" ~version:1
    [
      Idl.proc "null" [];
      Idl.proc "ints1" [ Idl.arg "a" Idl.T_int ];
      Idl.proc "ints2" [ Idl.arg "a" Idl.T_int; Idl.arg "b" Idl.T_int ];
      Idl.proc "ints4"
        [
          Idl.arg "a" Idl.T_int;
          Idl.arg "b" Idl.T_int;
          Idl.arg "c" Idl.T_int;
          Idl.arg "d" Idl.T_int;
        ];
      Idl.proc "fixed4" [ Idl.arg ~mode:Idl.Var_out "b" (Idl.T_fixed_bytes 4) ];
      Idl.proc "fixed400" [ Idl.arg ~mode:Idl.Var_out "b" (Idl.T_fixed_bytes 400) ];
      Idl.proc "var1" [ var_out "b" 1440 ];
      Idl.proc "var1440" [ var_out "b" 1440 ];
      Idl.proc "text" [ Idl.arg "s" (Idl.T_text 1440) ];
    ]

let impls : Runtime.impl array =
  let body ctx =
    Cpu_set.charge ctx ~cat:"runtime" ~label:"Null (the server procedure)" (Time.us 10)
  in
  let nothing ctx _ = body ctx; [] in
  let fill n ctx _ =
    body ctx;
    [ Marshal.V_bytes (Bytes.make n 'm') ]
  in
  [|
    nothing;
    nothing;
    nothing;
    nothing;
    fill 4;
    fill 400;
    fill 1;
    fill 1440;
    nothing;
  |]

(* One world, one local binding; measure each procedure's warmed-up
   local-call latency. *)
let measure_all () =
  let w = World.create ~idle_load:false () in
  Binder.export w.World.binder w.World.caller_rt interface ~impls ~workers:2;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"MarshalBench" ~version:1 () in
  let results = Hashtbl.create 16 in
  let gate = Sim.Gate.create w.World.eng in
  let args_for name =
    match name with
    | "ints1" -> [ Marshal.V_int 1l ]
    | "ints2" -> [ Marshal.V_int 1l; Marshal.V_int 2l ]
    | "ints4" -> [ Marshal.V_int 1l; Marshal.V_int 2l; Marshal.V_int 3l; Marshal.V_int 4l ]
    | "fixed4" | "fixed400" | "var1" | "var1440" -> [ Marshal.V_bytes Bytes.empty ]
    | "text" -> assert false (* handled separately *)
    | _ -> []
  in
  Machine.spawn_thread w.World.caller ~name:"marshal-bench" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          let time_call name args =
            let once () = ignore (Runtime.call_by_name binding client ctx ~proc:name ~args) in
            once ();
            once ();
            let t0 = Engine.now w.World.eng in
            once ();
            Time.to_us (Time.diff (Engine.now w.World.eng) t0)
          in
          List.iter
            (fun name -> Hashtbl.replace results name (time_call name (args_for name)))
            [ "null"; "ints1"; "ints2"; "ints4"; "fixed4"; "fixed400"; "var1"; "var1440" ];
          List.iter
            (fun (key, v) -> Hashtbl.replace results key (time_call "text" [ v ]))
            [
              ("text_nil", Marshal.V_text None);
              ("text1", Marshal.V_text (Some "x"));
              ("text128", Marshal.V_text (Some (String.make 128 'x')));
            ]);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  results

(* Domain-safe memo (see Breakdown): tables 2-5 share one measurement
   sweep, possibly forced from several worker domains. *)
let measured = Par.Once.create measure_all

(* A scenario lookup that cannot fail anonymously: a missing row means
   the measurement sweep and the table definitions disagree, and the
   error should say which scenario is absent and which exist — a bare
   [Hashtbl.find] here used to surface as a context-free [Not_found]
   from deep inside the table renderer. *)
let overhead_of r name =
  match Hashtbl.find_opt r name with
  | Some v -> v
  | None ->
    let have = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) r []) in
    invalid_arg
      (Printf.sprintf
         "Experiments.Marshalling: no measurement for scenario %S (measured scenarios: %s)"
         name (String.concat ", " have))

let increment name =
  let r = Par.Once.force measured in
  overhead_of r name -. overhead_of r "null"

let table2 () =
  [
    { label = "1 integer"; paper_us = 8.; measured_us = increment "ints1" };
    { label = "2 integers"; paper_us = 16.; measured_us = increment "ints2" };
    { label = "4 integers"; paper_us = 32.; measured_us = increment "ints4" };
  ]

let table3 () =
  [
    { label = "4 bytes"; paper_us = 20.; measured_us = increment "fixed4" };
    { label = "400 bytes"; paper_us = 140.; measured_us = increment "fixed400" };
  ]

let table4 () =
  [
    { label = "1 byte"; paper_us = 115.; measured_us = increment "var1" };
    { label = "1440 bytes"; paper_us = 550.; measured_us = increment "var1440" };
  ]

let table5 () =
  [
    { label = "NIL"; paper_us = 89.; measured_us = increment "text_nil" };
    { label = "1 byte"; paper_us = 378.; measured_us = increment "text1" };
    { label = "128 bytes"; paper_us = 659.; measured_us = increment "text128" };
  ]

let to_table ~id ~title rows =
  Report.Table.make ~id ~title
    ~columns:[ "argument"; "paper us"; "measured us"; "delta" ]
    ~notes:[ "incremental elapsed time of a local RPC over local Null() (as in the paper)" ]
    (List.map
       (fun r ->
         [
           r.label;
           Report.Table.cell_f ~decimals:0 r.paper_us;
           Report.Table.cell_f ~decimals:0 r.measured_us;
           Printf.sprintf "%+.0f%%" (Report.Table.pct_delta ~paper:r.paper_us ~measured:r.measured_us);
         ])
       rows)

let tables () =
  [
    to_table ~id:"table2" ~title:"Marshalling: 4-byte integers by value" (table2 ());
    to_table ~id:"table3" ~title:"Marshalling: fixed-length array, VAR OUT" (table3 ());
    to_table ~id:"table4" ~title:"Marshalling: variable-length array, VAR OUT" (table4 ());
    to_table ~id:"table5" ~title:"Marshalling: Text.T argument" (table5 ());
  ]
