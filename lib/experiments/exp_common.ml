module Config = Hw.Config

let exerciser ~cpus = { Config.default with hand_stubs = true; uniproc_fix = true; cpus }

let single_call ?caller_config ?server_config ~proc () =
  let w = Workload.World.create ?caller_config ?server_config () in
  Workload.Driver.measure_single_call w ~proc ()

let throughput ?caller_config ?server_config ?seed ?transport ~threads ~calls ~proc () =
  let w = Workload.World.create ?caller_config ?server_config ?seed () in
  Workload.Driver.run w ?transport ~threads ~calls ~proc ()

let seconds_per_10000 (o : Workload.Driver.outcome) =
  if o.Workload.Driver.rpcs_per_sec > 0. then 10000. /. o.Workload.Driver.rpcs_per_sec else 0.
