module Driver = Workload.Driver

type row = {
  threads : int;
  null_seconds : float;
  null_rps : float;
  maxr_seconds : float;
  maxr_mbps : float;
  null_tail_ms : (float * float * float) option;
      (* measured-only Null() p50/p90/p99, when requested *)
}

let paper_row threads null_seconds null_rps maxr_seconds maxr_mbps =
  { threads; null_seconds; null_rps; maxr_seconds; maxr_mbps; null_tail_ms = None }

let paper =
  [
    paper_row 1 26.61 375. 63.47 1.82;
    paper_row 2 16.80 595. 35.28 3.28;
    paper_row 3 16.26 615. 27.28 4.25;
    paper_row 4 15.45 647. 24.93 4.65;
    paper_row 5 15.11 662. 24.69 4.69;
    paper_row 6 14.69 680. 24.65 4.70;
    paper_row 7 13.49 741. 24.72 4.69;
    paper_row 8 13.67 732. 24.68 4.69;
  ]

let measure_row ?transport ~calls ~metrics threads =
  let null = Exp_common.throughput ?transport ~threads ~calls ~proc:Driver.Null () in
  let maxr = Exp_common.throughput ?transport ~threads ~calls ~proc:Driver.Max_result () in
  let null_tail_ms =
    if metrics then
      let p q = Sim.Time.to_ms (Driver.percentile null q) in
      Some (p 0.5, p 0.9, p 0.99)
    else None
  in
  {
    threads;
    null_seconds = Exp_common.seconds_per_10000 null;
    null_rps = null.Driver.rpcs_per_sec;
    maxr_seconds = Exp_common.seconds_per_10000 maxr;
    maxr_mbps = maxr.Driver.megabits_per_sec;
    null_tail_ms;
  }

let run ?(calls = 10000) ?(metrics = false) ?transport () =
  List.map (fun p -> measure_row ?transport ~calls ~metrics p.threads) paper

let table ?calls ?(metrics = false) ?transport () =
  let measured = run ?calls ~metrics ?transport () in
  let tail_cells m =
    match m.null_tail_ms with
    | None -> []
    | Some (p50, p90, p99) ->
      [ Report.Table.cell_f p50; Report.Table.cell_f p90; Report.Table.cell_f p99 ]
  in
  let rows =
    List.map2
      (fun p m ->
        [
          string_of_int p.threads;
          Report.Table.compare_cell ~paper:p.null_seconds ~measured:m.null_seconds;
          Report.Table.compare_cell ~paper:p.null_rps ~measured:m.null_rps;
          Report.Table.compare_cell ~paper:p.maxr_seconds ~measured:m.maxr_seconds;
          Report.Table.compare_cell ~paper:p.maxr_mbps ~measured:m.maxr_mbps;
        ]
        @ tail_cells m)
      paper measured
  in
  let columns =
    [ "threads"; "Null secs/10k"; "Null RPC/s"; "MaxResult secs/10k"; "MaxResult Mbit/s" ]
    @ if metrics then [ "Null p50 ms"; "Null p90 ms"; "Null p99 ms" ] else []
  in
  let notes =
    [
      "paper: two 5-CPU Fireflies, private 10 Mbit/s Ethernet, IP/UDP with checksums";
      "cells are paper-value / simulated-value (relative error)";
    ]
    @ if metrics then [ "pNN columns are measured-only Null() latency percentiles" ] else []
  in
  Report.Table.make ~id:"table1" ~title:"Time for 10000 RPCs (paper / measured)" ~columns ~notes
    rows

let cpu_utilization_note ?(calls = 10000) () =
  let o = Exp_common.throughput ~threads:4 ~calls ~proc:Driver.Max_result () in
  Printf.sprintf
    "CPUs used at max throughput: caller %.2f, server %.2f (paper: ~1.2 caller, slightly less server)"
    o.Driver.caller_busy_cpus o.Driver.server_busy_cpus
