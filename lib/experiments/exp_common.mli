(** Shared plumbing for the experiment modules: world construction under
    a configuration, single-call latency measurement and throughput
    runs.  Every experiment builds a fresh world so runs are independent
    and deterministic. *)

val exerciser : cpus:int -> Hw.Config.t
(** The §5 measurement setup: hand-produced Exerciser stubs and the
    swapped-lines fix, with the given processor count. *)

val single_call :
  ?caller_config:Hw.Config.t ->
  ?server_config:Hw.Config.t ->
  proc:Workload.Driver.proc ->
  unit ->
  Sim.Time.span
(** Latency of one warmed-up call in a fresh world. *)

val throughput :
  ?caller_config:Hw.Config.t ->
  ?server_config:Hw.Config.t ->
  ?seed:int ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  threads:int ->
  calls:int ->
  proc:Workload.Driver.proc ->
  unit ->
  Workload.Driver.outcome

val seconds_per_10000 : Workload.Driver.outcome -> float
(** The paper's Table I/X unit: elapsed seconds normalized to 10000
    calls. *)
