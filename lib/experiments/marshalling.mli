(** Tables II–V — marshalling times.

    Reproduced the way Birrell measured them (§2.2): local (same-
    machine) RPC with the standard generated stubs, reporting the
    incremental elapsed time of a call with the given argument over a
    call of Null().  Local transport time is independent of packet
    size, so the increment isolates the stubs' marshalling work. *)

type row = {
  label : string;
  paper_us : float;
  measured_us : float;
}

val increment : string -> float
(** Measured overhead (µs) of the named scenario over [Null()], from the
    memoized measurement sweep.
    @raise Invalid_argument naming the missing scenario (and listing the
    measured ones) if it was never measured — a sweep/table mismatch. *)

val table2 : unit -> row list  (** by-value 4-byte integers: 1, 2, 4 *)

val table3 : unit -> row list  (** fixed-length array VAR OUT: 4, 400 bytes *)

val table4 : unit -> row list  (** variable-length array VAR OUT: 1, 1440 bytes *)

val table5 : unit -> row list  (** Text.T: NIL, 1, 128 bytes *)

val tables : unit -> Report.Table.t list
