type transport = [ `Auto | `Local | `Udp | `Decnet ]

type entry = {
  id : string;
  title : string;
  run : transport:transport -> quick:bool -> metrics:bool -> Report.Table.t list;
}

let all =
  [
    {
      id = "table1";
      title = "Time for 10000 RPCs (latency & throughput vs caller threads)";
      run =
        (fun ~transport ~quick ~metrics ->
          let calls = if quick then 400 else 10000 in
          [ Table1.table ~calls ~metrics ~transport () ]);
    };
    {
      id = "tables2-5";
      title = "Marshalling times (integers, arrays, Text.T)";
      run = (fun ~transport:_ ~quick:_ ~metrics:_ -> Marshalling.tables ());
    };
    {
      id = "table6";
      title = "Latency of steps in the send+receive operation";
      run = (fun ~transport:_ ~quick:_ ~metrics:_ -> [ List.nth (Breakdown.tables ()) 0 ]);
    };
    {
      id = "table7";
      title = "Latency of stubs and RPC runtime";
      run = (fun ~transport:_ ~quick:_ ~metrics:_ -> [ List.nth (Breakdown.tables ()) 1 ]);
    };
    {
      id = "table8";
      title = "Calculated vs measured latency";
      run = (fun ~transport:_ ~quick:_ ~metrics:_ -> [ List.nth (Breakdown.tables ()) 2 ]);
    };
    {
      id = "table9";
      title = "Interrupt routine: Modula-2+ vs assembly";
      run = (fun ~transport:_ ~quick:_ ~metrics:_ -> [ Table9.table () ]);
    };
    {
      id = "table10";
      title = "Null() latency with fewer processors";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Processors.tables ~quick ()) 0 ]);
    };
    {
      id = "table11";
      title = "MaxResult(b) throughput with fewer processors";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Processors.tables ~quick ()) 1 ]);
    };
    {
      id = "table12";
      title = "Comparison with other systems";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ Table12.table ~quick () ]);
    };
    {
      id = "improvements";
      title = "Section 4.2 improvement estimates, re-simulated";
      run = (fun ~transport:_ ~quick:_ ~metrics:_ -> [ Improvements.table () ]);
    };
    {
      id = "uniproc-bug";
      title = "Section 5: the uniprocessor lost-packet bug";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Section5.tables ~quick ()) 0 ]);
      (* note: loss events are rare and 600 ms each, so this one is
         seed-sensitive; the full run uses 1200 calls to stabilize *)
    };
    {
      id = "streaming";
      title = "Section 5 extension: streamed bulk transfer";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Section5.tables ~quick ()) 1 ]);
    };
    {
      id = "multi-client";
      title = "Extension: several client machines against one server";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Extensions.tables ~quick ()) 0 ]);
    };
    {
      id = "controller-saturation";
      title = "Extension: controller saturated tx vs rx rates (section 4.1 footnote)";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Extensions.tables ~quick ()) 1 ]);
    };
    {
      id = "ablation-demux";
      title = "Ablation: interrupt-time demux vs traditional datalink thread (section 3.2)";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ Ablation.table ~quick () ]);
    };
    {
      id = "latency-tails";
      title = "Extension: Null() latency distribution under load";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Extensions.tables ~quick ()) 2 ]);
    };
    {
      id = "transports";
      title = "Extension: the three bind-time transports, measured";
      run = (fun ~transport:_ ~quick ~metrics:_ -> [ List.nth (Extensions.tables ~quick ()) 3 ]);
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all
let ids () = List.map (fun e -> e.id) all
