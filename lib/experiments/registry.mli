(** The experiment registry: every reproduced table/figure, addressable
    by id from the benchmark harness, the CLI and the test suite. *)

type transport = [ `Auto | `Local | `Udp | `Decnet ]
(** The bind-time transport the workload-driving experiments should
    measure over (see {!Workload.World.test_binding}). *)

type entry = {
  id : string;
  title : string;
  run : transport:transport -> quick:bool -> metrics:bool -> Report.Table.t list;
      (** [quick] trades call counts for speed (used by tests); the
          benchmark harness runs with [quick:false].  [metrics] asks an
          experiment for extra percentile columns where it supports
          them (currently Table I); others ignore it.  [transport]
          re-targets the workload-driving experiments (currently
          Table I); experiments that measure a fixed configuration
          ignore it. *)
}

val all : entry list
val find : string -> entry option
val ids : unit -> string list
