(** The experiment registry: every reproduced table/figure, addressable
    by id from the benchmark harness, the CLI and the test suite. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> metrics:bool -> Report.Table.t list;
      (** [quick] trades call counts for speed (used by tests); the
          benchmark harness runs with [quick:false].  [metrics] asks an
          experiment for extra percentile columns where it supports
          them (currently Table I); others ignore it. *)
}

val all : entry list
val find : string -> entry option
val ids : unit -> string list
