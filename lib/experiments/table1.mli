(** Table I — Time for 10000 RPCs: Null() and MaxResult(b) with 1–8
    caller threads (latency, call rate, throughput). *)

type row = {
  threads : int;
  null_seconds : float;  (** seconds per 10000 calls of Null() *)
  null_rps : float;
  maxr_seconds : float;
  maxr_mbps : float;
  null_tail_ms : (float * float * float) option;
      (** Null() p50/p90/p99 latency in ms — measured only, populated
          when [metrics] was requested ([None] in [paper] rows) *)
}

val paper : row list

val run :
  ?calls:int ->
  ?metrics:bool ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  unit ->
  row list
(** [calls] (default 10000) is the per-configuration call budget; the
    seconds columns are normalized to 10000 either way.  [metrics]
    (default false) additionally computes the Null() latency tail.
    [transport] (default [`Auto], the two-machine ether) re-runs the
    whole table over another transport — [`Local] gives the paper's
    RPC-on-one-machine configuration. *)

val table :
  ?calls:int ->
  ?metrics:bool ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  unit ->
  Report.Table.t
(** Paper-vs-measured, one row per thread count; with [metrics], three
    extra p50/p90/p99 columns. *)

val cpu_utilization_note : ?calls:int -> unit -> string
(** The §2.1 observation: CPUs used at maximum throughput (paper: ~1.2
    on the caller, slightly less on the server). *)
