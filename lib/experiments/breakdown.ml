module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Runtime = Rpc.Runtime
module World = Workload.World
module Driver = Workload.Driver
module Trace = Sim.Trace

(* Run one traced call of [proc] in a fresh, idle-load-free world;
   returns the recorded spans and the call's latency. *)
let traced_call proc =
  let w = World.create ~idle_load:false () in
  let binding = World.test_binding w () in
  let gate = Sim.Gate.create w.World.eng in
  let latency = ref Time.zero_span in
  let tr = Engine.trace w.World.eng in
  Machine.spawn_thread w.World.caller ~name:"traced-call" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          let once () =
            Cpu_set.charge ctx ~cat:"runtime" ~label:"Calling program (loop)"
              (Hw.Timing.caller_loop (Machine.timing w.World.caller));
            ignore
              (Runtime.call binding client ctx
                 ~proc_idx:
                   (match proc with
                   | Driver.Null -> Workload.Test_interface.null_idx
                   | Driver.Max_result -> Workload.Test_interface.max_result_idx
                   | Driver.Max_arg -> Workload.Test_interface.max_arg_idx
                   | Driver.Get_data _ -> Workload.Test_interface.get_data_idx)
                 ~args:
                   (match proc with
                   | Driver.Null -> []
                   | Driver.Max_result | Driver.Max_arg ->
                     [ Rpc.Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
                   | Driver.Get_data n ->
                     [ Rpc.Marshal.V_int (Int32.of_int n); Rpc.Marshal.V_bytes Bytes.empty ]))
          in
          once ();
          once ();
          Trace.clear tr;
          Trace.set_enabled tr true;
          let t0 = Engine.now w.World.eng in
          once ();
          latency := Time.diff (Engine.now w.World.eng) t0;
          Trace.set_enabled tr false);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  (Trace.spans tr, !latency)

(* nth occurrence (0-based) of a (site, label) span, in time order. *)
let nth_span spans ~site ~label n =
  let matching =
    List.filter
      (fun s -> String.equal s.Trace.site site && String.equal s.Trace.label label)
      spans
  in
  match List.nth_opt matching n with
  | Some s -> Time.to_us (Trace.duration s)
  | None -> 0.

type step = {
  step_label : string;
  paper_small_us : float;
  paper_large_us : float option;
  measured_small_us : float;
  measured_large_us : float;
}

(* Table VI step list: (label, paper 74B, paper 1514B if different,
   occurrence index used on each side). *)
let send_receive_steps =
  [
    ("Finish UDP header (Sender)", 59., None);
    ("Calculate UDP checksum", 45., Some 440.);
    ("Handle trap to Nub", 37., None);
    ("Queue packet for transmission", 39., None);
    ("Interprocessor interrupt to CPU 0", 10., None);
    ("Handle interprocessor interrupt", 76., None);
    ("Activate Ethernet controller", 22., None);
    ("QBus/Controller transmit latency", 70., Some 815.);
    ("Transmission time on Ethernet", 60., Some 1230.);
    ("QBus/Controller receive latency", 80., Some 835.);
    ("General I/O interrupt handler", 14., None);
    ("Handle interrupt for received pkt", 177., None);
    ("Calculate UDP checksum (receiver)", 45., Some 440.);
    ("Wakeup RPC thread", 220., None);
  ]

(* The call packet of Null() is the 74-byte operation (sender steps at
   the caller, receiver steps at the server); the result packet of
   MaxResult(b) is the 1514-byte one (sender at the server, receiver at
   the caller).  The checksum label appears twice per site — once as
   sender, once as receiver — disambiguated by occurrence order. *)
let extract spans ~sender ~receiver (label, _, _) =
  match label with
  | "Interprocessor interrupt to CPU 0" -> 10. (* pure signalling latency, not a CPU span *)
  | "Calculate UDP checksum" ->
    (* sender side: the sender site's first checksum span *)
    nth_span spans ~site:sender ~label:"Calculate UDP checksum" 0
  | "Calculate UDP checksum (receiver)" ->
    nth_span spans ~site:receiver ~label:"Calculate UDP checksum" 0
  | "QBus/Controller receive latency" | "General I/O interrupt handler"
  | "Handle interrupt for received pkt" | "Wakeup RPC thread" ->
    nth_span spans ~site:receiver ~label 0
  | _ -> nth_span spans ~site:sender ~label 0

(* Domain-safe memo cells, not [lazy]: table 6/7/8 regeneration can run
   on several worker domains at once, and racing [Lazy.force] calls on
   one thunk are undefined behaviour. *)
let null_data = Par.Once.create (fun () -> traced_call Driver.Null)
let maxr_data = Par.Once.create (fun () -> traced_call Driver.Max_result)

(* For the 1514-byte column the sender is the server.  The server's
   checksum spans are: verify incoming 74-byte call (45), then checksum
   the outgoing 1514-byte result (440) — so sender-side is occurrence 1;
   at the caller the spans are: checksum outgoing call (45), verify
   result (440) — receiver-side is occurrence 1 as well. *)
let extract_large spans (label, _, _) =
  let sender = "server" and receiver = "caller" in
  match label with
  | "Interprocessor interrupt to CPU 0" -> 10.
  | "Calculate UDP checksum" -> nth_span spans ~site:sender ~label:"Calculate UDP checksum" 1
  | "Calculate UDP checksum (receiver)" ->
    nth_span spans ~site:receiver ~label:"Calculate UDP checksum" 1
  | "QBus/Controller receive latency" -> nth_span spans ~site:receiver ~label 0
  | "General I/O interrupt handler" | "Handle interrupt for received pkt"
  | "Wakeup RPC thread" ->
    nth_span spans ~site:receiver ~label 0
  | "QBus/Controller transmit latency" | "Transmission time on Ethernet" ->
    nth_span spans ~site:sender ~label 0
  | _ -> nth_span spans ~site:sender ~label 0

let table6 () =
  let null_spans, _ = Par.Once.force null_data in
  let maxr_spans, _ = Par.Once.force maxr_data in
  List.map
    (fun ((label, small, large) as stepdef) ->
      {
        step_label = label;
        paper_small_us = small;
        paper_large_us = large;
        measured_small_us = extract null_spans ~sender:"caller" ~receiver:"server" stepdef;
        measured_large_us = extract_large maxr_spans stepdef;
      })
    send_receive_steps

type runtime_step = { rt_label : string; rt_paper_us : float; rt_measured_us : float }

let runtime_steps =
  [
    ("Calling program (loop)", 16.);
    ("Calling stub (call & return)", 90.);
    ("Starter", 128.);
    ("Transporter (send call pkt)", 27.);
    ("Receiver (receive call pkt)", 158.);
    ("Server stub (call & return)", 68.);
    ("Null (the server procedure)", 10.);
    ("Receiver (send result pkt)", 27.);
    ("Transporter (receive result pkt)", 49.);
    ("Ender", 33.);
  ]

let table7 () =
  let spans, _ = Par.Once.force null_data in
  let runtime_span label =
    List.fold_left
      (fun acc s ->
        if String.equal s.Trace.cat "runtime" && String.equal s.Trace.label label then
          acc +. Time.to_us (Trace.duration s)
        else acc)
      0. spans
  in
  List.map
    (fun (label, paper) -> { rt_label = label; rt_paper_us = paper; rt_measured_us = runtime_span label })
    runtime_steps

type accounting = {
  what : string;
  paper_calc_us : float;
  measured_calc_us : float;
  paper_elapsed_us : float;
  measured_elapsed_us : float;
}

let table8 () =
  let t6 = table6 () in
  let t7 = table7 () in
  let sum_small = List.fold_left (fun a s -> a +. s.measured_small_us) 0. t6 in
  let sum_large = List.fold_left (fun a s -> a +. s.measured_large_us) 0. t6 in
  let sum_rt = List.fold_left (fun a s -> a +. s.rt_measured_us) 0. t7 in
  let _, null_lat = Par.Once.force null_data in
  let _, maxr_lat = Par.Once.force maxr_data in
  let maxr_marshal = 550. in
  [
    {
      what = "Null()";
      paper_calc_us = 606. +. 954. +. 954.;
      measured_calc_us = sum_rt +. (2. *. sum_small);
      paper_elapsed_us = 2645.;
      measured_elapsed_us = Time.to_us null_lat;
    };
    {
      what = "MaxResult(b)";
      paper_calc_us = 606. +. 550. +. 954. +. 4414.;
      measured_calc_us = sum_rt +. maxr_marshal +. sum_small +. sum_large;
      paper_elapsed_us = 6347.;
      measured_elapsed_us = Time.to_us maxr_lat;
    };
  ]

let tables () =
  let t6 = table6 () in
  let t7 = table7 () in
  let t8 = table8 () in
  let fmt_opt = function
    | None -> "-"
    | Some v -> Report.Table.cell_f ~decimals:0 v
  in
  [
    Report.Table.make ~id:"table6" ~title:"Latency of steps in the send+receive operation"
      ~columns:[ "action"; "paper 74B"; "sim 74B"; "paper 1514B"; "sim 1514B" ]
      ~notes:
        [
          "74-byte column: traced call packet of a Null() RPC; 1514-byte: traced result packet of MaxResult(b)";
          "totals: paper 954 / 4414 us";
        ]
      (List.map
         (fun s ->
           [
             s.step_label;
             Report.Table.cell_f ~decimals:0 s.paper_small_us;
             Report.Table.cell_f ~decimals:0 s.measured_small_us;
             fmt_opt s.paper_large_us;
             Report.Table.cell_f ~decimals:0 s.measured_large_us;
           ])
         t6
      @ [
          [
            "TOTAL";
            "954";
            Report.Table.cell_f ~decimals:0
              (List.fold_left (fun a s -> a +. s.measured_small_us) 0. t6);
            "4414";
            Report.Table.cell_f ~decimals:0
              (List.fold_left (fun a s -> a +. s.measured_large_us) 0. t6);
          ];
        ]);
    Report.Table.make ~id:"table7" ~title:"Latency of stubs and RPC runtime (Null())"
      ~columns:[ "procedure"; "paper us"; "sim us" ]
      ~notes:[ "traced from one simulated call; paper total 606 us" ]
      (List.map
         (fun s ->
           [
             s.rt_label;
             Report.Table.cell_f ~decimals:0 s.rt_paper_us;
             Report.Table.cell_f ~decimals:0 s.rt_measured_us;
           ])
         t7
      @ [
          [
            "TOTAL";
            "606";
            Report.Table.cell_f ~decimals:0
              (List.fold_left (fun a s -> a +. s.rt_measured_us) 0. t7);
          ];
        ]);
    Report.Table.make ~id:"table8" ~title:"Calculated vs measured latency"
      ~columns:[ "procedure"; "paper calc"; "sim calc"; "paper measured"; "sim measured" ]
      ~notes:
        [
          "calc = sum of Table VI + Table VII components (+ 550 us marshalling for MaxResult)";
          "the paper under-accounts Null() by 131 us and over-accounts MaxResult by 177 us; the simulator carries the Null gap as an explicit 'Unattributed' charge";
        ]
      (List.map
         (fun a ->
           [
             a.what;
             Report.Table.cell_f ~decimals:0 a.paper_calc_us;
             Report.Table.cell_f ~decimals:0 a.measured_calc_us;
             Report.Table.cell_f ~decimals:0 a.paper_elapsed_us;
             Report.Table.cell_f ~decimals:0 a.measured_elapsed_us;
           ])
         t8);
  ]
