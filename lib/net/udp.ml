module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module V = Wire.Bytebuf.View

type header = { src_port : int; dst_port : int; length : int; checksum : int }

let header_size = 8

(* The wire fuzzer's self-test hook (`firefly fuzz --canary`): when set,
   [decode] loses its upper length-sanity bound — the classic
   trust-the-header-length decoder bug — so downstream slicing can be
   driven out of bounds by a skewed length field.  The fuzzer must
   rediscover the resulting exception; never set outside that test. *)
let canary_skip_length_check = ref false

let encode w ~src ~dst ~src_port ~dst_port ?(checksum = true) ~payload () =
  let start = W.length w in
  W.u16 w src_port;
  W.u16 w dst_port;
  W.u16 w 0 (* length placeholder *);
  W.u16 w 0 (* checksum placeholder *);
  payload w;
  let len = W.length w - start in
  W.patch_u16 w ~pos:(start + 4) len;
  if checksum then begin
    let init = Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.protocol_udp ~len in
    let cks =
      Wire.Checksum.checksum ~init (W.unsafe_buffer w) ~pos:(W.absolute_pos w start) ~len
    in
    (* An all-zero computed checksum is transmitted as 0xffff (RFC 768). *)
    W.patch_u16 w ~pos:(start + 6) (if cks = 0 then 0xffff else cks)
  end

let decode r ~src ~dst =
  if R.remaining r < header_size then Error "udp: truncated header"
  else begin
    let datagram_len = R.remaining r in
    (* A view of the whole datagram: header fields, checksum and the
       returned payload window all alias the frame — no copies on the
       receive path. *)
    let raw = R.view r datagram_len in
    let hr = R.of_view raw in
    let src_port = R.u16 hr in
    let dst_port = R.u16 hr in
    let length = R.u16 hr in
    let checksum = R.u16 hr in
    if length < header_size || (length > datagram_len && not !canary_skip_length_check) then
      Error "udp: bad length"
    else if
      checksum <> 0
      && not
           (let init =
              Ipv4.pseudo_header_sum ~src ~dst ~protocol:Ipv4.protocol_udp ~len:length
            in
            Wire.Checksum.verify ~init (V.buffer raw) ~pos:(V.offset raw) ~len:length)
    then Error "udp: bad checksum"
    else Ok ({ src_port; dst_port; length; checksum }, V.sub raw ~pos:header_size ~len:(length - header_size))
  end
