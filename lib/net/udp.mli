(** UDP (RFC 768) header with the pseudo-header checksum.

    The Firefly RPC packet exchange protocol is layered on IP/UDP
    (paper §1, abstract); the UDP checksum is the software checksum the
    paper measures.  A zero checksum field means "not computed", which
    the "omit UDP checksums" configuration (§4.2.4) emits. *)

type header = { src_port : int; dst_port : int; length : int; checksum : int }

val header_size : int  (** 8 bytes *)

val encode :
  Wire.Bytebuf.Writer.t ->
  src:Ipv4.Addr.t ->
  dst:Ipv4.Addr.t ->
  src_port:int ->
  dst_port:int ->
  ?checksum:bool ->
  payload:(Wire.Bytebuf.Writer.t -> unit) ->
  unit ->
  unit
(** [encode w ~src ~dst ~src_port ~dst_port ~payload ()] writes the UDP
    header, runs [payload] to append the datagram body, then patches
    length and (unless [checksum:false]) the pseudo-header checksum. *)

val decode :
  Wire.Bytebuf.Reader.t ->
  src:Ipv4.Addr.t ->
  dst:Ipv4.Addr.t ->
  (header * Wire.Bytebuf.View.t, string) result
(** Consumes the whole datagram, verifying length and — when the
    checksum field is nonzero — the pseudo-header checksum.  Returns the
    header and a non-copying view of the payload (aliasing the frame).
    Total: malformed datagrams yield [Error], never an exception. *)

val canary_skip_length_check : bool ref
(** Fuzzer self-test only ([firefly fuzz --canary]): while set, [decode]
    trusts the header's length field beyond the datagram's actual end —
    a planted decoder bug the fuzzer must find as an escaping exception.
    Default [false]; restore it after use. *)
