(** Building and parsing RPC frames — the real byte images.

    Normal layout (74..1514 bytes):
    Ethernet(14) · IPv4(20) · UDP(8) · RPC header(32) · payload(0..1440)

    With [Config.raw_ethernet] (§4.2.6), IP and UDP are omitted and the
    end-to-end checksum moves into the RPC header:
    Ethernet(14) · RPC header(32) · payload

    Checksums are computed and verified for real over the frame bytes;
    the CPU time they cost is charged by the caller of these functions
    (they are pure with respect to virtual time). *)

type endpoint = { mac : Net.Mac.t; ip : Net.Ipv4.Addr.t }

val rpc_udp_port : int

val build :
  Hw.Timing.t ->
  src:endpoint ->
  dst:endpoint ->
  hdr:Proto.header ->
  payload:Stdlib.Bytes.t ->
  payload_pos:int ->
  payload_len:int ->
  Stdlib.Bytes.t
(** Produces the complete frame.  [hdr.data_len] and [hdr.checksum] are
    overwritten with the correct values. *)

type parsed = {
  p_src : endpoint;
  p_hdr : Proto.header;
  p_payload : Wire.Bytebuf.View.t;
      (** a non-copying window into the frame; frames are immutable
          after delivery, so the view stays valid for as long as the
          receiver holds it *)
}

val parse : Hw.Timing.t -> Stdlib.Bytes.t -> (parsed, string) result
(** Full receive-side validation: header decode at every layer plus
    end-to-end checksum verification (unless checksums are disabled in
    the configuration, §4.2.4 — then corruption passes, which the
    fault-injection tests demonstrate).  Total: every malformed input
    yields [Error], never an exception — the wire fuzzer holds it to
    that. *)

val parse_view : Hw.Timing.t -> Wire.Bytebuf.View.t -> (parsed, string) result
(** [parse] over a non-copying window of a larger buffer (a frame still
    sitting in a receive ring, say).  [parse] is [parse_view] over the
    whole-buffer view; the fuzzer checks the two decode byte-identically
    — including identical [Error] strings — at every offset. *)

val frame_size : Hw.Timing.t -> payload_len:int -> int
