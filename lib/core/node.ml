module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Timing = Hw.Timing
module Machine = Nub.Machine
module Driver = Nub.Driver
module Activity = Proto.Activity

type delivery = { d_src : Frames.endpoint; d_hdr : Proto.header; d_payload : Wire.Bytebuf.View.t }

module Entry = struct
  type t = { waiter : Nub.Waiter.t; inbox : delivery Queue.t }

  let create machine = { waiter = Machine.new_waiter machine; inbox = Queue.create () }
  let inbox_pop t = Queue.take_opt t.inbox

  let deliver t ~waker d =
    Queue.push d t.inbox;
    Nub.Waiter.notify t.waiter ~waker
end

type t = {
  mach : Machine.t;
  tmg : Timing.t;
  callers : (Activity.t, Entry.t) Hashtbl.t;
  frag_sinks : (Activity.t, Entry.t) Hashtbl.t;
  worker_pools : (int, Entry.t Queue.t) Hashtbl.t;
  slow_sinks : (int, delivery -> unit) Hashtbl.t;
  alt_handlers : (int, ctx:Cpu_set.ctx -> frame:Bytes.t -> Driver.verdict) Hashtbl.t;
  c_stale : Sim.Stats.Counter.t;
  c_cks_reject : Sim.Stats.Counter.t;
  c_fast : Sim.Stats.Counter.t;
  c_slow : Sim.Stats.Counter.t;
}

let machine t = t.mach
let timing t = t.tmg
let endpoint t = { Frames.mac = Machine.mac t.mach; ip = Machine.ip t.mach }
let new_entry t = Entry.create t.mach

let register_caller t act entry =
  if Hashtbl.mem t.callers act then
    invalid_arg
      (Format.asprintf "Node.register_caller: activity %a already has an outstanding call"
         Activity.pp act);
  Hashtbl.replace t.callers act entry

let unregister_caller t act = Hashtbl.remove t.callers act
let register_fragment_sink t act entry = Hashtbl.replace t.frag_sinks act entry
let unregister_fragment_sink t act = Hashtbl.remove t.frag_sinks act
let fragment_sinks t = Hashtbl.length t.frag_sinks
let outstanding_callers t = Hashtbl.length t.callers

let worker_pool t space =
  match Hashtbl.find_opt t.worker_pools space with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.worker_pools space q;
    q

let join_worker_pool t ~space entry = Queue.push entry (worker_pool t space)
let space_taken t ~space = Hashtbl.mem t.slow_sinks space

let set_slow_sink t ~space f =
  if space_taken t ~space then
    invalid_arg (Printf.sprintf "Node.set_slow_sink: space %d already taken" space);
  Hashtbl.replace t.slow_sinks space f

let set_ethertype_handler t ~ethertype f = Hashtbl.replace t.alt_handlers ethertype f

let frame_ethertype frame =
  if Bytes.length frame >= Net.Ethernet.header_size then Bytes.get_uint16_be frame 12 else -1
let wait t entry ctx = ignore t; Nub.Waiter.wait entry.Entry.waiter ctx
let wait_timeout t entry ctx ~timeout = ignore t; Nub.Waiter.wait_timeout entry.Entry.waiter ctx ~timeout

(* {1 Receive: the interrupt-routine demultiplexer} *)

let cat = "send+receive"

(* One packet, already parsed.  Runs on CPU 0 at interrupt priority.
   Returns the driver verdict; on [Consumed] the frame's simulated pool
   buffer is freed here.  The delivery's payload is a zero-copy view of
   the frame: the accounting buffer goes back to the pool, while the
   real bytes stay alive (GC-owned, immutable) until the runtime is
   done with them. *)
let demux t ctx (p : Frames.parsed) =
  let hdr = p.Frames.p_hdr in
  let d = { d_src = p.Frames.p_src; d_hdr = hdr; d_payload = p.Frames.p_payload } in
  let consume entry =
    Entry.deliver entry ~waker:ctx d;
    Nub.Bufpool.free (Machine.pool t.mach);
    Driver.Consumed
  in
  match hdr.Proto.ptype with
  | Proto.Call -> (
    match Hashtbl.find_opt t.frag_sinks hdr.Proto.activity with
    | Some entry -> consume entry
    | None -> (
      let pool = worker_pool t hdr.Proto.server_space in
      match Queue.take_opt pool with
      | Some entry ->
        Sim.Stats.Counter.incr t.c_fast;
        consume entry
      | None ->
        Sim.Stats.Counter.incr t.c_slow;
        Driver.To_datalink))
  | Proto.Result | Proto.Busy | Proto.Error_reply -> (
    match Hashtbl.find_opt t.callers hdr.Proto.activity with
    | Some entry -> consume entry
    | None ->
      Sim.Stats.Counter.incr t.c_stale;
      Driver.Dropped "no caller waiting")
  | Proto.Ack -> (
    (* Fragment acks go to whichever side is mid-transfer: a server
       worker assembling or emitting fragments (the fragment sink) has
       priority over the caller entry. *)
    match Hashtbl.find_opt t.frag_sinks hdr.Proto.activity with
    | Some entry -> consume entry
    | None -> (
      match Hashtbl.find_opt t.callers hdr.Proto.activity with
      | Some entry -> consume entry
      | None ->
        Sim.Stats.Counter.incr t.c_stale;
        Driver.Dropped "stale ack"))

let traditional t = (Timing.config t.tmg).Hw.Config.traditional_demux

let fast_handler_rpc t ~ctx ~frame =
  if traditional t then begin
    (* §3.2's "traditional approach" ablation: the interrupt routine
       does no RPC work; it just posts the frame to the datalink
       thread (the driver charges that extra wakeup). *)
    Cpu_set.charge ctx ~cat ~label:"Post to datalink" (Timing.traditional_interrupt t.tmg);
    Driver.To_datalink
  end
  else begin
    (* Header interpretation and demultiplexing: the Table VI "Handle
       interrupt for received pkt" step, then the software checksum. *)
    Cpu_set.charge ctx ~cat ~label:"Handle interrupt for received pkt" (Timing.rx_demux t.tmg);
    Cpu_set.charge ctx ~cat ~label:"Calculate UDP checksum"
      (Timing.udp_checksum t.tmg ~bytes:(Bytes.length frame));
    Cpu_set.charge ctx ~cat ~label:"Uniprocessor receive path"
      (Timing.uniproc_rx_extra t.tmg ~bytes:(Bytes.length frame));
    match Frames.parse t.tmg frame with
    | Ok parsed -> demux t ctx parsed
    | Error e ->
      (match e with
      | "udp: bad checksum" | "rpc: bad end-to-end checksum" ->
        Sim.Stats.Counter.incr t.c_cks_reject
      | _ -> ());
      Driver.Dropped e
  end

let fast_handler t ~ctx ~frame =
  match Hashtbl.find_opt t.alt_handlers (frame_ethertype frame) with
  | Some handler -> handler ~ctx ~frame
  | None -> fast_handler_rpc t ~ctx ~frame

(* The datalink thread: in the default configuration it only sees
   packets the interrupt demultiplexer could not place (calls with no
   waiting worker); in the traditional-demux ablation it sees every
   packet and does the full demultiplex itself, on its own thread. *)
let datalink_handler t ~ctx ~frame =
  let free_buffer () = Nub.Bufpool.free (Machine.pool t.mach) in
  if traditional t then begin
    Cpu_set.charge ctx ~cat ~label:"Handle received pkt (datalink)" (Timing.rx_demux t.tmg);
    Cpu_set.charge ctx ~cat ~label:"Calculate UDP checksum"
      (Timing.udp_checksum t.tmg ~bytes:(Bytes.length frame));
    Cpu_set.charge ctx ~cat ~label:"Uniprocessor receive path"
      (Timing.uniproc_rx_extra t.tmg ~bytes:(Bytes.length frame))
  end;
  match Frames.parse t.tmg frame with
  | Error e ->
    (match e with
    | "udp: bad checksum" | "rpc: bad end-to-end checksum" ->
      Sim.Stats.Counter.incr t.c_cks_reject
    | _ -> ());
    free_buffer ()
  | Ok parsed -> (
    (* Reuse the call-table demultiplexer (it frees the buffer when it
       consumes the packet). *)
    match demux t ctx parsed with
    | Driver.Consumed -> ()
    | Driver.Dropped _ -> free_buffer ()
    | Driver.To_datalink -> (
      let hdr = parsed.Frames.p_hdr in
      free_buffer ();
      match Hashtbl.find_opt t.slow_sinks hdr.Proto.server_space with
      | Some sink ->
        sink { d_src = parsed.Frames.p_src; d_hdr = hdr; d_payload = parsed.Frames.p_payload }
      | None -> Sim.Stats.Counter.incr t.c_stale))

let create mach =
  let t =
    {
      mach;
      tmg = Machine.timing mach;
      callers = Hashtbl.create 32;
      frag_sinks = Hashtbl.create 8;
      worker_pools = Hashtbl.create 4;
      slow_sinks = Hashtbl.create 4;
      alt_handlers = Hashtbl.create 4;
      c_stale = Sim.Stats.Counter.create ();
      c_cks_reject = Sim.Stats.Counter.create ();
      c_fast = Sim.Stats.Counter.create ();
      c_slow = Sim.Stats.Counter.create ();
    }
  in
  Driver.set_fast_handler (Machine.driver mach) (fun ~ctx ~frame -> fast_handler t ~ctx ~frame);
  Driver.set_datalink_handler (Machine.driver mach) (fun ~ctx ~frame ->
      datalink_handler t ~ctx ~frame);
  t

(* {1 Send} *)

let send t ~ctx ~dst ~hdr ~payload ~payload_pos ~payload_len =
  let frame =
    Frames.build t.tmg ~src:(endpoint t) ~dst ~hdr ~payload ~payload_pos ~payload_len
  in
  Cpu_set.charge ctx ~cat ~label:"Finish UDP header (Sender)" (Timing.finish_udp_header t.tmg);
  Cpu_set.charge ctx ~cat ~label:"Calculate UDP checksum"
    (Timing.udp_checksum t.tmg ~bytes:(Bytes.length frame));
  Cpu_set.charge ctx ~cat ~label:"Unattributed" (Timing.unattributed_per_packet t.tmg);
  (* The §5 uniprocessor scheduling bug: without the "swapped lines"
     fix, a single-CPU machine occasionally loses an outgoing packet in
     the race it fixes, forcing a retransmission-timeout recovery. *)
  let bug_p = Timing.uniproc_bug_loss_probability t.tmg in
  if bug_p > 0. && Sim.Rng.bool (Engine.rng (Machine.engine t.mach)) ~p:bug_p then ()
  else Driver.send (Machine.driver t.mach) ~ctx frame

let stale_packets t = Sim.Stats.Counter.value t.c_stale
let checksum_rejects t = Sim.Stats.Counter.value t.c_cks_reject
let calls_fast_path t = Sim.Stats.Counter.value t.c_fast
let calls_slow_path t = Sim.Stats.Counter.value t.c_slow
