module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module Time = Sim.Time

type value =
  | V_int of int32
  | V_bytes of Bytes.t
  | V_text of string option
  | V_bool of bool
  | V_int16 of int
  | V_real of float
  | V_record of value list
  | V_seq of value list

let fail fmt = Printf.ksprintf (fun s -> Rpc_error.fail (Rpc_error.Marshal_failure s)) fmt

let rec type_check ty v =
  match ty, v with
  | Idl.T_int, V_int _ -> Ok ()
  | Idl.T_fixed_bytes n, V_bytes b ->
    if Bytes.length b = n then Ok ()
    else Error (Printf.sprintf "fixed array: expected %d bytes, got %d" n (Bytes.length b))
  | Idl.T_var_bytes max, V_bytes b ->
    if Bytes.length b <= max then Ok ()
    else Error (Printf.sprintf "var array: %d bytes exceeds max %d" (Bytes.length b) max)
  | Idl.T_text max, V_text (Some s) ->
    if String.length s <= max then Ok ()
    else Error (Printf.sprintf "text: %d bytes exceeds max %d" (String.length s) max)
  | Idl.T_text _, V_text None -> Ok ()
  | Idl.T_bool, V_bool _ -> Ok ()
  | Idl.T_int16, V_int16 v ->
    if v >= -32768 && v <= 32767 then Ok ()
    else Error (Printf.sprintf "int16: %d out of range" v)
  | Idl.T_real, V_real _ -> Ok ()
  | Idl.T_record fields, V_record vs ->
    if List.length fields <> List.length vs then Error "record: field count mismatch"
    else
      List.fold_left2
        (fun acc f v ->
          match acc with
          | Error _ -> acc
          | Ok () -> type_check f v)
        (Ok ()) fields vs
  | Idl.T_seq (elt, max), V_seq vs ->
    if List.length vs > max then
      Error (Printf.sprintf "sequence: %d elements exceeds max %d" (List.length vs) max)
    else
      List.fold_left
        (fun acc v ->
          match acc with
          | Error _ -> acc
          | Ok () -> type_check elt v)
        (Ok ()) vs
  | ( ( Idl.T_int | Idl.T_fixed_bytes _ | Idl.T_var_bytes _ | Idl.T_text _ | Idl.T_bool
      | Idl.T_int16 | Idl.T_real | Idl.T_record _ | Idl.T_seq _ ),
      _ ) ->
    Error "value does not match declared type"

let rec equal_value a b =
  match a, b with
  | V_int x, V_int y -> Int32.equal x y
  | V_bytes x, V_bytes y -> Bytes.equal x y
  | V_text x, V_text y -> Option.equal String.equal x y
  | V_bool x, V_bool y -> Bool.equal x y
  | V_int16 x, V_int16 y -> Int.equal x y
  | V_real x, V_real y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | V_record x, V_record y | V_seq x, V_seq y ->
    List.length x = List.length y && List.for_all2 equal_value x y
  | ( ( V_int _ | V_bytes _ | V_text _ | V_bool _ | V_int16 _ | V_real _ | V_record _
      | V_seq _ ),
      _ ) ->
    false

let rec pp_value fmt = function
  | V_int v -> Format.fprintf fmt "%ld" v
  | V_bytes b -> Format.fprintf fmt "<%d bytes>" (Bytes.length b)
  | V_text None -> Format.pp_print_string fmt "NIL"
  | V_text (Some s) -> Format.fprintf fmt "%S" s
  | V_bool b -> Format.pp_print_bool fmt b
  | V_int16 v -> Format.fprintf fmt "%d" v
  | V_real v -> Format.fprintf fmt "%g" v
  | V_record vs ->
    Format.pp_print_string fmt "{";
    List.iteri
      (fun i v ->
        if i > 0 then Format.pp_print_string fmt "; ";
        pp_value fmt v)
      vs;
    Format.pp_print_string fmt "}"
  | V_seq vs -> Format.fprintf fmt "seq[%d]" (List.length vs)

type direction = In_call_packet | In_result_packet

let travels mode dir =
  match mode, dir with
  | Idl.Value, In_call_packet -> true
  | Idl.Value, In_result_packet -> false
  | Idl.Var_in, In_call_packet -> true
  | Idl.Var_in, In_result_packet -> false
  | Idl.Var_out, In_call_packet -> false
  | Idl.Var_out, In_result_packet -> true

let rec placeholder = function
  | Idl.T_int -> V_int 0l
  | Idl.T_fixed_bytes n -> V_bytes (Bytes.make n '\000')
  | Idl.T_var_bytes _ -> V_bytes Bytes.empty
  | Idl.T_text _ -> V_text None
  | Idl.T_bool -> V_bool false
  | Idl.T_int16 -> V_int16 0
  | Idl.T_real -> V_real 0.
  | Idl.T_record fields -> V_record (List.map placeholder fields)
  | Idl.T_seq _ -> V_seq []

(* A variable-length array that is the last travelling argument of a
   packet carries no length prefix — its size is implicit in the packet
   length.  This is how the stub compiler makes MaxResult's 1440-byte
   VAR OUT buffer fit the 1514-byte maximum frame exactly (74 bytes of
   headers + 1440 of data, §2). *)
let rec encode_one w ty v ~last =
  (match type_check ty v with
  | Ok () -> ()
  | Error e -> fail "%s" e);
  match ty, v with
  | Idl.T_int, V_int x -> W.u32 w x
  | Idl.T_fixed_bytes _, V_bytes b -> W.bytes w b
  | Idl.T_var_bytes _, V_bytes b ->
    if not last then W.u16 w (Bytes.length b);
    W.bytes w b
  | Idl.T_text _, V_text None -> W.u8 w 0
  | Idl.T_text _, V_text (Some s) ->
    W.u8 w 1;
    W.u16 w (String.length s);
    W.string w s
  | Idl.T_bool, V_bool b -> W.u8 w (if b then 1 else 0)
  | Idl.T_int16, V_int16 v -> W.u16 w (v land 0xffff)
  | Idl.T_real, V_real v ->
    let bits = Int64.bits_of_float v in
    W.u32 w (Int64.to_int32 (Int64.shift_right_logical bits 32));
    W.u32 w (Int64.to_int32 bits)
  | Idl.T_record fields, V_record vs ->
    List.iter2 (fun f v -> encode_one w f v ~last:false) fields vs
  | Idl.T_seq (elt, _), V_seq vs ->
    W.u16 w (List.length vs);
    List.iter (fun v -> encode_one w elt v ~last:false) vs
  | ( ( Idl.T_int | Idl.T_fixed_bytes _ | Idl.T_var_bytes _ | Idl.T_text _ | Idl.T_bool
      | Idl.T_int16 | Idl.T_real | Idl.T_record _ | Idl.T_seq _ ),
      _ ) ->
    fail "type/value mismatch"

let rec decode_one r ty ~last =
  try
    match ty with
    | Idl.T_int -> V_int (R.u32 r)
    | Idl.T_fixed_bytes n -> V_bytes (R.bytes r n)
    | Idl.T_var_bytes max ->
      let n = if last then R.remaining r else R.u16 r in
      if n > max then fail "var array length %d exceeds max %d" n max;
      V_bytes (R.bytes r n)
    | Idl.T_text max -> (
      match R.u8 r with
      | 0 -> V_text None
      | 1 ->
        let n = R.u16 r in
        if n > max then fail "text length %d exceeds max %d" n max;
        V_text (Some (R.string r n))
      | tag -> fail "bad text tag %d" tag)
    | Idl.T_bool -> (
      match R.u8 r with
      | 0 -> V_bool false
      | 1 -> V_bool true
      | tag -> fail "bad boolean %d" tag)
    | Idl.T_int16 ->
      let raw = R.u16 r in
      V_int16 (if raw >= 0x8000 then raw - 0x10000 else raw)
    | Idl.T_real ->
      let hi = R.u32 r in
      let lo = R.u32 r in
      V_real
        (Int64.float_of_bits
           (Int64.logor
              (Int64.shift_left (Int64.of_int32 hi) 32)
              (Int64.logand (Int64.of_int32 lo) 0xffffffffL)))
    | Idl.T_record fields -> V_record (List.map (fun f -> decode_one r f ~last:false) fields)
    | Idl.T_seq (elt, max) ->
      let n = R.u16 r in
      if n > max then fail "sequence length %d exceeds max %d" n max;
      V_seq (List.init n (fun _ -> decode_one r elt ~last:false))
  with Wire.Bytebuf.Overflow e -> fail "truncated packet: %s" e

let zip_args p values =
  let rec go args vs =
    match args, vs with
    | [], [] -> []
    | a :: args, v :: vs -> (a, v) :: go args vs
    | _ -> fail "procedure %s: wrong argument count" p.Idl.proc_name
  in
  go p.Idl.args values

(* Mark the last travelling argument of the packet. *)
let with_last dir args =
  let last_arg =
    List.fold_left (fun acc (a, _) -> if travels a.Idl.mode dir then Some a else acc) None args
  in
  let is_last a =
    match last_arg with
    | Some l -> l == a
    | None -> false
  in
  List.map (fun (a, x) -> (a, x, is_last a)) args

let encode_args w dir p values =
  List.iter
    (fun (a, v, last) -> if travels a.Idl.mode dir then encode_one w a.Idl.ty v ~last)
    (with_last dir (zip_args p values))

let decode_args r dir p =
  List.map
    (fun (a, (), last) ->
      if travels a.Idl.mode dir then decode_one r a.Idl.ty ~last else placeholder a.Idl.ty)
    (with_last dir (List.map (fun a -> (a, ())) p.Idl.args))

(* {1 Cost model} *)

type side = Caller_side | Server_side

let rec value_size = function
  | V_int _ -> 4
  | V_bytes b -> Bytes.length b
  | V_text None -> 0
  | V_text (Some s) -> String.length s
  | V_bool _ -> 1
  | V_int16 _ -> 2
  | V_real _ -> 8
  | V_record vs | V_seq vs -> List.fold_left (fun acc v -> acc + value_size v) 0 vs

(* Cost placement (§2.2): Value ints cost a copy at each end; VAR
   arrays cost their single copy at the caller — into the call packet
   for VAR IN, out of the result packet for VAR OUT; Text.T costs a
   caller copy plus a server allocate-and-copy, each charged on the
   packet the text travels in.  Composite types (records, sequences —
   beyond what the paper measured) cost the sum of their parts, so the
   fitted Tables II–V points are preserved exactly and extensions
   compose from them. *)
let rec cost_ty timing side ty v =
  let bytes = value_size v in
  match ty, side with
  | Idl.T_int, Caller_side -> Hw.Timing.marshal_int_caller timing
  | Idl.T_int, Server_side -> Hw.Timing.marshal_int_server timing
  | (Idl.T_bool | Idl.T_int16), Caller_side -> Hw.Timing.marshal_int_caller timing
  | (Idl.T_bool | Idl.T_int16), Server_side -> Hw.Timing.marshal_int_server timing
  | Idl.T_real, Caller_side -> Time.span_scale 2. (Hw.Timing.marshal_int_caller timing)
  | Idl.T_real, Server_side -> Time.span_scale 2. (Hw.Timing.marshal_int_server timing)
  | Idl.T_fixed_bytes _, Caller_side -> Hw.Timing.marshal_fixed_array timing ~bytes
  | Idl.T_fixed_bytes _, Server_side -> Time.zero_span
  | Idl.T_var_bytes _, Caller_side -> Hw.Timing.marshal_var_array timing ~bytes
  | Idl.T_var_bytes _, Server_side -> Time.zero_span
  | Idl.T_text _, Caller_side ->
    if v = V_text None then Hw.Timing.marshal_text_nil timing
    else Hw.Timing.marshal_text_caller timing ~bytes
  | Idl.T_text _, Server_side ->
    if v = V_text None then Time.zero_span
    else Hw.Timing.marshal_text_server timing ~bytes
  | Idl.T_record fields, _ -> (
    match v with
    | V_record vs ->
      List.fold_left2
        (fun acc f fv -> Time.span_add acc (cost_ty timing side f fv))
        Time.zero_span fields vs
    | _ -> Time.zero_span)
  | Idl.T_seq (elt, _), _ -> (
    match v with
    | V_seq vs ->
      List.fold_left
        (fun acc ev -> Time.span_add acc (cost_ty timing side elt ev))
        (cost_ty timing side Idl.T_int16 (V_int16 0) (* the count field *))
        vs
    | _ -> Time.zero_span)

let cost timing side dir a v =
  if not (travels a.Idl.mode dir) then Time.zero_span else cost_ty timing side a.Idl.ty v

let charge_args timing ctx side dir p values =
  let total =
    List.fold_left
      (fun acc (a, v) -> Time.span_add acc (cost timing side dir a v))
      Time.zero_span (zip_args p values)
  in
  Hw.Cpu_set.charge ctx ~cat:"runtime" ~label:"Marshalling" total

(* Merge Var_out results into the full argument list for result-packet
   encoding. *)
let merge_outs p in_values outs =
  let rec go args ins outs =
    match args, ins with
    | [], [] ->
      if outs <> [] then
        Rpc_error.fail (Rpc_error.Marshal_failure "too many results from implementation");
      []
    | a :: args, v :: ins -> (
      match a.Idl.mode with
      | Idl.Var_out -> (
        match outs with
        | o :: rest -> o :: go args ins rest
        | [] ->
          Rpc_error.fail
            (Rpc_error.Marshal_failure ("missing result for VAR OUT argument " ^ a.Idl.arg_name)))
      | Idl.Value | Idl.Var_in -> v :: go args ins outs)
    | _ -> Rpc_error.fail (Rpc_error.Marshal_failure "argument count mismatch")
  in
  go p.Idl.args in_values outs

let extract_outs p values =
  List.filter_map
    (fun (a, v) ->
      match a.Idl.mode with
      | Idl.Var_out -> Some v
      | Idl.Value | Idl.Var_in -> None)
    (List.combine p.Idl.args values)
