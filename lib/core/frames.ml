module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module V = Wire.Bytebuf.View
module Timing = Hw.Timing

type endpoint = { mac : Net.Mac.t; ip : Net.Ipv4.Addr.t }

let rpc_udp_port = 530

let raw_mode timing = (Timing.config timing).Hw.Config.raw_ethernet
let checksums_on timing = (Timing.config timing).Hw.Config.udp_checksums

let frame_size timing ~payload_len = Timing.frame_overhead_bytes timing + payload_len

type parsed = { p_src : endpoint; p_hdr : Proto.header; p_payload : V.t }

let build timing ~src ~dst ~hdr ~payload ~payload_pos ~payload_len =
  let total = frame_size timing ~payload_len in
  if total > Net.Ethernet.max_frame_size then
    invalid_arg (Printf.sprintf "Frames.build: %d exceeds maximum frame" total);
  let w = W.create total in
  if raw_mode timing then begin
    Net.Ethernet.encode w
      { Net.Ethernet.dst = dst.mac; src = src.mac; ethertype = Net.Ethernet.ethertype_firefly_rpc };
    let rpc_start = W.length w in
    Proto.encode w { hdr with Proto.data_len = payload_len; checksum = 0 };
    W.sub w payload ~pos:payload_pos ~len:payload_len;
    if checksums_on timing then begin
      (* End-to-end checksum over RPC header + payload, stored in the
         last header field (offset 30 within the RPC header). *)
      let cks =
        Wire.Checksum.checksum (W.unsafe_buffer w)
          ~pos:(W.absolute_pos w rpc_start)
          ~len:(Proto.size + payload_len)
      in
      W.patch_u16 w ~pos:(rpc_start + Proto.size - 2) (if cks = 0 then 0xffff else cks)
    end
  end
  else begin
    Net.Ethernet.encode w
      { Net.Ethernet.dst = dst.mac; src = src.mac; ethertype = Net.Ethernet.ethertype_ipv4 };
    let udp_len = Net.Udp.header_size + Proto.size + payload_len in
    Net.Ipv4.encode w
      {
        Net.Ipv4.src = src.ip;
        dst = dst.ip;
        protocol = Net.Ipv4.protocol_udp;
        ttl = 30;
        ident = 0;
        payload_len = udp_len;
      };
    Net.Udp.encode w ~src:src.ip ~dst:dst.ip ~src_port:rpc_udp_port ~dst_port:rpc_udp_port
      ~checksum:(checksums_on timing)
      ~payload:(fun w ->
        Proto.encode w { hdr with Proto.data_len = payload_len; checksum = 0 };
        W.sub w payload ~pos:payload_pos ~len:payload_len)
      ()
  end;
  (* The writer was sized to exactly [total], so the finished frame is
     the writer's buffer itself — no trailing copy per packet. *)
  W.to_bytes w

let parse_rpc_and_payload r =
  match Proto.decode r with
  | Error e -> Error e
  | Ok hdr ->
    if R.remaining r < hdr.Proto.data_len then Error "rpc: payload shorter than data_len"
    else Ok (hdr, R.view r hdr.Proto.data_len)

let parse_view timing v =
  let r = R.of_view v in
  match Net.Ethernet.decode r with
  | Error e -> Error e
  | Ok eth ->
    if raw_mode timing then begin
      if eth.Net.Ethernet.ethertype <> Net.Ethernet.ethertype_firefly_rpc then
        Error "frame: unexpected ethertype"
      else begin
        let rpc_len = R.remaining r in
        if rpc_len < Proto.size then Error "rpc: truncated header"
        else begin
          (* Verify the embedded end-to-end checksum over header+payload:
             with the field itself included, a valid region sums to
             all-ones. *)
          let buf = V.buffer v in
          let rpc_pos = V.offset v + Net.Ethernet.header_size in
          if
            checksums_on timing
            && not
                 ((* only verify if the sender set the field *)
                  Bytes.get_uint16_be buf (rpc_pos + Proto.size - 2) = 0
                 || Wire.Checksum.verify buf ~pos:rpc_pos ~len:rpc_len)
          then Error "rpc: bad end-to-end checksum"
          else
            match parse_rpc_and_payload r with
            | Error e -> Error e
            | Ok (hdr, payload) ->
              Ok
                {
                  p_src =
                    { mac = eth.Net.Ethernet.src; ip = hdr.Proto.activity.Proto.Activity.caller_ip };
                  p_hdr = hdr;
                  p_payload = payload;
                }
        end
      end
    end
    else if eth.Net.Ethernet.ethertype <> Net.Ethernet.ethertype_ipv4 then
      Error "frame: unexpected ethertype"
    else
      match Net.Ipv4.decode r with
      | Error e -> Error e
      | Ok ip -> (
        if ip.Net.Ipv4.protocol <> Net.Ipv4.protocol_udp then Error "frame: not UDP"
        else if R.remaining r < ip.Net.Ipv4.payload_len then
          Error "ipv4: total length exceeds frame"
        else
          (* Confine UDP to exactly the IP payload: link-layer padding
             after the datagram must not change what it means. *)
          let r = R.sub_reader r ip.Net.Ipv4.payload_len in
          match Net.Udp.decode r ~src:ip.Net.Ipv4.src ~dst:ip.Net.Ipv4.dst with
          | Error e -> Error e
          | Ok (udp, datagram) ->
            if udp.Net.Udp.dst_port <> rpc_udp_port then Error "frame: not the RPC port"
            else
              match parse_rpc_and_payload (R.of_view datagram) with
              | Error e -> Error e
              | Ok (hdr, payload) ->
                Ok
                  {
                    p_src = { mac = eth.Net.Ethernet.src; ip = ip.Net.Ipv4.src };
                    p_hdr = hdr;
                    p_payload = payload;
                  })

let parse timing frame = parse_view timing (V.of_bytes frame)
