module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Timing = Hw.Timing
module Machine = Nub.Machine
module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

let ethertype = 0x6003

(* Representative NSP software costs on a ~1 MIPS processor (the paper
   quantifies only the custom transport; these are deliberately heavier
   — the general-purpose stack the custom fast path was built to
   beat). *)
let seg_send_us = 180.
let seg_recv_us = 230.
let ack_recv_us = 60.
let handshake_us = 300.

let default_retransmit = Time.ms 150
let default_retries = 10
let max_seg_payload = 1400

(* Segment header, 14 bytes after the Ethernet header:
   type(1) src_conn(2) dst_conn(2) seq(2) ack(2) flags(1) len(2) cks(2) *)
type seg_type = Connect_init | Connect_confirm | Data | Data_ack | Disconnect

let seg_code = function
  | Connect_init -> 1
  | Connect_confirm -> 2
  | Data -> 3
  | Data_ack -> 4
  | Disconnect -> 5

let seg_of_code = function
  | 1 -> Some Connect_init
  | 2 -> Some Connect_confirm
  | 3 -> Some Data
  | 4 -> Some Data_ack
  | 5 -> Some Disconnect
  | _ -> None

let header_size = 14
let flag_more = 0x01

type segment = {
  s_type : seg_type;
  src_conn : int;
  dst_conn : int;
  seq : int;
  ack : int;
  more : bool;
  payload : Bytes.t;
}

type conn_state = Connecting | Established | Closed

type conn = {
  ep : endpoint;
  local_id : int;
  mutable remote_id : int;
  peer : Net.Mac.t;
  mutable state : conn_state;
  (* sender: stop-and-wait *)
  send_lock : Sim.Mutex.t;
  mutable send_seq : int;
  mutable awaiting_ack : int option;
  ack_waiter : Nub.Waiter.t;
  retransmit_after : Time.span;
  max_retries : int;
  (* receiver *)
  mutable recv_seq : int;
  reassembly : Buffer.t;
  messages : Bytes.t Queue.t;
  msg_waiter : Nub.Waiter.t;
}

and endpoint = {
  node : Node.t;
  mach : Machine.t;
  mutable next_id : int;
  conns : (int, conn) Hashtbl.t;
  (* server-side dedup of retransmitted Connect_inits *)
  by_remote : (string * int, conn) Hashtbl.t;
  listeners : (int, conn -> unit) Hashtbl.t;
  c_accepted : Sim.Stats.Counter.t;
  c_sent : Sim.Stats.Counter.t;
  c_retrans : Sim.Stats.Counter.t;
  c_cks : Sim.Stats.Counter.t;
}

let eng ep = Machine.engine ep.mach
let timing ep = Machine.timing ep.mach
let sw ep us = Time.us_f (us /. (Timing.config (timing ep)).Hw.Config.cpu_speedup)
let charge ep ctx ~label us = Cpu_set.charge ctx ~cat:"decnet" ~label (sw ep us)

(* {1 Framing} *)

let build_frame ep ~dst seg =
  let total = Net.Ethernet.header_size + header_size + Bytes.length seg.payload in
  let w = W.create total in
  Net.Ethernet.encode w { Net.Ethernet.dst; src = Machine.mac ep.mach; ethertype };
  let start = W.length w in
  W.u8 w (seg_code seg.s_type);
  W.u16 w seg.src_conn;
  W.u16 w seg.dst_conn;
  W.u16 w seg.seq;
  W.u16 w seg.ack;
  W.u8 w (if seg.more then flag_more else 0);
  W.u16 w (Bytes.length seg.payload);
  W.u16 w 0 (* checksum placeholder *);
  W.bytes w seg.payload;
  let cks =
    Wire.Checksum.checksum (W.unsafe_buffer w)
      ~pos:(W.absolute_pos w start)
      ~len:(header_size + Bytes.length seg.payload)
  in
  W.patch_u16 w ~pos:(start + 12) (if cks = 0 then 0xffff else cks);
  W.contents w

let parse_frame frame =
  let r = R.of_bytes frame in
  match Net.Ethernet.decode r with
  | Error e -> Error e
  | Ok _eth ->
    if R.remaining r < header_size then Error "decnet: truncated segment"
    else begin
      let body_pos = Net.Ethernet.header_size in
      let body_len = Bytes.length frame - body_pos in
      if not (Wire.Checksum.verify frame ~pos:body_pos ~len:body_len) then
        Error "decnet: bad checksum"
      else begin
        let code = R.u8 r in
        let src_conn = R.u16 r in
        let dst_conn = R.u16 r in
        let seq = R.u16 r in
        let ack = R.u16 r in
        let flags = R.u8 r in
        let len = R.u16 r in
        R.skip r 2 (* checksum *);
        if len > R.remaining r then Error "decnet: bad length"
        else
          match seg_of_code code with
          | None -> Error "decnet: unknown segment type"
          | Some s_type ->
            Ok
              ( {
                  s_type;
                  src_conn;
                  dst_conn;
                  seq;
                  ack;
                  more = flags land flag_more <> 0;
                  payload = R.bytes r len;
                },
                Net.Mac.read (R.of_bytes frame) (* eth dst... need src *) )
      end
    end

(* {1 Sending} *)

let transmit ep ctx ~dst seg =
  Sim.Stats.Counter.incr ep.c_sent;
  let frame = build_frame ep ~dst seg in
  Cpu_set.charge ctx ~cat:"decnet" ~label:"Software checksum"
    (Timing.udp_checksum (timing ep) ~bytes:(Bytes.length frame));
  Nub.Driver.send (Machine.driver ep.mach) ~ctx frame

let fail msg = Rpc_error.fail (Rpc_error.Call_failed msg)

let blank_seg ~s_type ~src_conn ~dst_conn =
  { s_type; src_conn; dst_conn; seq = 0; ack = 0; more = false; payload = Bytes.empty }

(* Send one segment stop-and-wait: retransmit on a deadline until the
   cumulative ack covers it. *)
let send_segment_reliably conn ctx seg =
  let ep = conn.ep in
  conn.awaiting_ack <- Some seg.seq;
  transmit ep ctx ~dst:conn.peer seg;
  let tries = ref 0 in
  let rec wait () =
    if conn.state = Closed then fail "decnet: connection closed";
    match conn.awaiting_ack with
    | None -> ()
    | Some _ -> (
      match Nub.Waiter.wait_timeout conn.ack_waiter ctx ~timeout:conn.retransmit_after with
      | `Ok -> wait ()
      | `Timeout ->
        incr tries;
        if !tries > conn.max_retries then begin
          conn.state <- Closed;
          fail "decnet: retransmission limit reached"
        end
        else begin
          Sim.Stats.Counter.incr ep.c_retrans;
          transmit ep ctx ~dst:conn.peer seg;
          wait ()
        end)
  in
  wait ()

let send_message conn ctx message =
  let ep = conn.ep in
  if conn.state = Closed then fail "decnet: connection closed";
  Cpu_set.yield_cpu ctx (fun () -> Sim.Mutex.lock conn.send_lock);
  Fun.protect
    ~finally:(fun () -> Sim.Mutex.unlock conn.send_lock)
    (fun () ->
      let len = Bytes.length message in
      let nsegs = max 1 ((len + max_seg_payload - 1) / max_seg_payload) in
      for i = 0 to nsegs - 1 do
        let pos = i * max_seg_payload in
        let slice_len = if len = 0 then 0 else min max_seg_payload (len - pos) in
        charge ep ctx ~label:"Segment send processing" seg_send_us;
        conn.send_seq <- conn.send_seq + 1;
        send_segment_reliably conn ctx
          {
            s_type = Data;
            src_conn = conn.local_id;
            dst_conn = conn.remote_id;
            seq = conn.send_seq;
            ack = conn.recv_seq;
            more = i < nsegs - 1;
            payload = Bytes.sub message pos slice_len;
          }
      done)

let recv_message conn ctx ~timeout =
  let deadline = Time.add (Engine.now (eng conn.ep)) timeout in
  let rec loop () =
    match Queue.take_opt conn.messages with
    | Some m -> Some m
    | None ->
      if conn.state = Closed then None
      else begin
        let now = Engine.now (eng conn.ep) in
        if Time.(deadline <= now) then None
        else
          match Nub.Waiter.wait_timeout conn.msg_waiter ctx ~timeout:(Time.diff deadline now) with
          | `Ok -> loop ()
          | `Timeout -> loop ()
      end
  in
  loop ()

let close conn ctx =
  if conn.state <> Closed then begin
    conn.state <- Closed;
    transmit conn.ep ctx ~dst:conn.peer
      (blank_seg ~s_type:Disconnect ~src_conn:conn.local_id ~dst_conn:conn.remote_id);
    Nub.Waiter.notify conn.msg_waiter ~waker:ctx;
    Nub.Waiter.notify conn.ack_waiter ~waker:ctx
  end

let is_open conn = conn.state <> Closed

(* {1 Connection objects} *)

let make_conn ep ~peer ~retransmit_after ~max_retries ~state =
  let id = ep.next_id in
  ep.next_id <- ep.next_id + 1;
  let conn =
    {
      ep;
      local_id = id;
      remote_id = 0;
      peer;
      state;
      send_lock = Sim.Mutex.create (eng ep);
      send_seq = 0;
      awaiting_ack = None;
      ack_waiter = Machine.new_waiter ep.mach;
      retransmit_after;
      max_retries;
      recv_seq = 0;
      reassembly = Buffer.create 256;
      messages = Queue.create ();
      msg_waiter = Machine.new_waiter ep.mach;
    }
  in
  Hashtbl.replace ep.conns id conn;
  conn

(* {1 The interrupt-time segment handler} *)

let handle_segment ep ctx (seg : segment) ~src_mac =
  let find_conn () = Hashtbl.find_opt ep.conns seg.dst_conn in
  match seg.s_type with
  | Connect_init -> (
    charge ep ctx ~label:"Connection handshake" handshake_us;
    let space = if Bytes.length seg.payload >= 2 then Bytes.get_uint16_be seg.payload 0 else -1 in
    let key = (Net.Mac.to_string src_mac, seg.src_conn) in
    match Hashtbl.find_opt ep.by_remote key with
    | Some conn ->
      (* retransmitted init: re-confirm *)
      transmit ep ctx ~dst:src_mac
        (blank_seg ~s_type:Connect_confirm ~src_conn:conn.local_id ~dst_conn:seg.src_conn)
    | None -> (
      match Hashtbl.find_opt ep.listeners space with
      | None -> () (* no listener: ignore; initiator times out *)
      | Some accept ->
        let conn =
          make_conn ep ~peer:src_mac ~retransmit_after:default_retransmit
            ~max_retries:default_retries ~state:Established
        in
        conn.remote_id <- seg.src_conn;
        Hashtbl.replace ep.by_remote key conn;
        Sim.Stats.Counter.incr ep.c_accepted;
        transmit ep ctx ~dst:src_mac
          (blank_seg ~s_type:Connect_confirm ~src_conn:conn.local_id ~dst_conn:seg.src_conn);
        Machine.spawn_thread ep.mach ~name:"decnet-server-conn" (fun () -> accept conn)))
  | Connect_confirm -> (
    match find_conn () with
    | Some conn -> (
      match conn.state with
      | Connecting ->
        conn.remote_id <- seg.src_conn;
        conn.state <- Established;
        Nub.Waiter.notify conn.ack_waiter ~waker:ctx
      | Established | Closed -> ())
    | None -> ())
  | Data -> (
    charge ep ctx ~label:"Segment receive processing" seg_recv_us;
    match find_conn () with
    | None ->
      (* unknown connection: tell the peer *)
      transmit ep ctx ~dst:src_mac
        (blank_seg ~s_type:Disconnect ~src_conn:0 ~dst_conn:seg.src_conn)
    | Some conn ->
      let ack_now () =
        transmit ep ctx ~dst:src_mac
          {
            (blank_seg ~s_type:Data_ack ~src_conn:conn.local_id ~dst_conn:conn.remote_id) with
            ack = conn.recv_seq;
          }
      in
      if seg.seq = conn.recv_seq + 1 then begin
        conn.recv_seq <- seg.seq;
        Buffer.add_bytes conn.reassembly seg.payload;
        if not seg.more then begin
          Queue.push (Buffer.to_bytes conn.reassembly) conn.messages;
          Buffer.clear conn.reassembly;
          Nub.Waiter.notify conn.msg_waiter ~waker:ctx
        end;
        ack_now ()
      end
      else if seg.seq <= conn.recv_seq then ack_now () (* duplicate: re-ack *)
      else () (* gap: impossible under stop-and-wait; drop *))
  | Data_ack -> (
    charge ep ctx ~label:"Ack processing" ack_recv_us;
    match find_conn () with
    | None -> ()
    | Some conn -> (
      match conn.awaiting_ack with
      | Some pending when seg.ack >= pending ->
        conn.awaiting_ack <- None;
        Nub.Waiter.notify conn.ack_waiter ~waker:ctx
      | Some _ | None -> ()))
  | Disconnect -> (
    match find_conn () with
    | None -> ()
    | Some conn ->
      conn.state <- Closed;
      Nub.Waiter.notify conn.msg_waiter ~waker:ctx;
      Nub.Waiter.notify conn.ack_waiter ~waker:ctx)

let frame_src_mac frame =
  let r = R.of_bytes frame in
  let _dst = Net.Mac.read r in
  Net.Mac.read r

let install_handler ep =
  Node.set_ethertype_handler ep.node ~ethertype (fun ~ctx ~frame ->
      match parse_frame frame with
      | Error e ->
        (match e with
        | "decnet: bad checksum" -> Sim.Stats.Counter.incr ep.c_cks
        | _ -> ());
        Nub.Driver.Dropped e
      | Ok (seg, _) ->
        let src_mac = frame_src_mac frame in
        handle_segment ep ctx seg ~src_mac;
        Nub.Bufpool.free (Machine.pool ep.mach);
        Nub.Driver.Consumed)

(* One protocol engine per node: a second endpoint would displace the
   first's ethertype hook.  The registry is keyed by node identity, so
   distinct simulations never collide (each builds fresh nodes) — but
   it is process-global state, so lookups and registrations from
   parallel worker domains must serialise on a real mutex. *)
let registry : (Node.t * endpoint) list ref = ref []
let registry_lock = Stdlib.Mutex.create ()

let endpoint node =
  Stdlib.Mutex.protect registry_lock @@ fun () ->
  match List.find_opt (fun (n, _) -> n == node) !registry with
  | Some (_, ep) -> ep
  | None ->
    let mach = Node.machine node in
    let ep =
      {
        node;
        mach;
        next_id = 1;
        conns = Hashtbl.create 16;
        by_remote = Hashtbl.create 16;
        listeners = Hashtbl.create 4;
        c_accepted = Sim.Stats.Counter.create ();
        c_sent = Sim.Stats.Counter.create ();
        c_retrans = Sim.Stats.Counter.create ();
        c_cks = Sim.Stats.Counter.create ();
      }
    in
    install_handler ep;
    registry := (node, ep) :: !registry;
    ep

let listen ep ~space accept = Hashtbl.replace ep.listeners space accept

let connect ep ctx ~peer ~space ?(retransmit_after = default_retransmit)
    ?(max_retries = default_retries) () =
  let conn = make_conn ep ~peer ~retransmit_after ~max_retries ~state:Connecting in
  charge ep ctx ~label:"Connection handshake" handshake_us;
  let payload = Bytes.create 2 in
  Bytes.set_uint16_be payload 0 space;
  let init =
    { (blank_seg ~s_type:Connect_init ~src_conn:conn.local_id ~dst_conn:0) with payload }
  in
  transmit ep ctx ~dst:peer init;
  (* Await the confirm (signalled through the ack waiter), retransmitting
     the init on timeout. *)
  let tries = ref 0 in
  let rec await_confirm () =
    match conn.state with
    | Established -> ()
    | Closed -> fail "decnet: connect refused"
    | Connecting -> (
      match Nub.Waiter.wait_timeout conn.ack_waiter ctx ~timeout:retransmit_after with
      | `Ok -> await_confirm ()
      | `Timeout ->
        incr tries;
        if !tries > max_retries then begin
          conn.state <- Closed;
          fail "decnet: no response to connect"
        end
        else begin
          Sim.Stats.Counter.incr ep.c_retrans;
          transmit ep ctx ~dst:peer init;
          await_confirm ()
        end)
  in
  await_confirm ();
  conn

let connections_accepted ep = Sim.Stats.Counter.value ep.c_accepted
let segments_sent ep = Sim.Stats.Counter.value ep.c_sent
let segments_retransmitted ep = Sim.Stats.Counter.value ep.c_retrans
let checksum_rejects ep = Sim.Stats.Counter.value ep.c_cks
