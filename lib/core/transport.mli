(** The [TRANSPORT] signature: one interface, many packet-moving
    personalities.

    A binding produced by {!Runtime.bind_ether}, {!Runtime.bind_local}
    or {!Runtime.bind_decnet} packs a module satisfying {!S} together
    with that module's binding state; {!Runtime.call} dispatches through
    the pack.  Library [realnet] provides a fourth implementation over a
    real Unix UDP socket, reusing the same {!Frames} encoders so the
    bytes on the loopback wire are exactly the simulator's bytes. *)

type kind =
  | Simulated_ether  (** the packet-exchange protocol over the simulated wire *)
  | Shared_memory  (** same-address-space hand-off (the paper's local call) *)
  | Session  (** a sequenced connection (DECNet); transport-level reliability *)
  | Real_socket  (** a real kernel socket outside the simulator *)

val kind_to_string : kind -> string

module type S = sig
  type binding
  type client
  type ctx

  val kind : kind
  val name : string
  val interface : binding -> Idl.interface

  val invoke :
    binding ->
    client ->
    ctx ->
    proc_idx:int ->
    args:Marshal.value list ->
    Marshal.value list
end
