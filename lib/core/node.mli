(** The per-machine RPC kernel component: the shared call table and the
    packet demultiplexer that runs {e inside the Ethernet interrupt
    routine} (paper §3.2).

    The call table is shared among all address spaces and the Nub so the
    interrupt handler can find and directly awaken the waiting thread —
    calling or serving — for any incoming packet, avoiding the
    traditional extra wakeup through a datalink thread.  Packets that
    match no table entry (a call for which no server thread is waiting,
    or any packet for an unknown activity) take the slow path.

    A node also provides the send primitive that charges the Table VI
    sending-side costs and hands the frame to the driver. *)

type t

(** An incoming packet as handed to a thread: who sent it, its RPC
    header, and the payload (copied out of the frame buffer, which the
    interrupt handler recycles immediately). *)
type delivery = {
  d_src : Frames.endpoint;
  d_hdr : Proto.header;
  d_payload : Wire.Bytebuf.View.t;
      (** aliases the received frame (zero-copy); the simulated packet
          buffer is returned to the pool by the demultiplexer, but the
          real bytes are GC-owned and immutable, so the view stays
          valid while the runtime reassembles fragments *)
}

(** A parked thread: the interrupt handler appends deliveries to its
    inbox and wakes it. *)
module Entry : sig
  type t

  val inbox_pop : t -> delivery option
end

val create : Nub.Machine.t -> t

val machine : t -> Nub.Machine.t
val timing : t -> Hw.Timing.t
val endpoint : t -> Frames.endpoint

val new_entry : t -> Entry.t

(** {1 Call-table registration} *)

val register_caller : t -> Proto.Activity.t -> Entry.t -> unit
(** Registers the outstanding call of an activity (Transporter step).
    @raise Invalid_argument if the activity already has one — an
    activity is a single thread and makes one call at a time. *)

val unregister_caller : t -> Proto.Activity.t -> unit

val register_fragment_sink : t -> Proto.Activity.t -> Entry.t -> unit
(** Routes subsequent call fragments and fragment acks of an activity
    to the server worker already assembling its call. *)

val unregister_fragment_sink : t -> Proto.Activity.t -> unit

val fragment_sinks : t -> int
(** Number of fragment sinks currently registered.  Nonzero at
    quiescence means a worker leaked its sink — an invariant the
    simulation-testing harness audits. *)

val outstanding_callers : t -> int
(** Number of activities with a registered outstanding call.  Nonzero at
    quiescence means a caller thread is stuck or leaked its
    registration. *)

val join_worker_pool : t -> space:int -> Entry.t -> unit
(** Parks an idle server worker where the interrupt handler can find it
    (FIFO per address space). *)

val set_slow_sink : t -> space:int -> (delivery -> unit) -> unit
(** Consumer for packets taking the traditional datalink path.
    @raise Invalid_argument if the space already has a sink. *)

val set_ethertype_handler :
  t -> ethertype:int -> (ctx:Hw.Cpu_set.ctx -> frame:Stdlib.Bytes.t -> Nub.Driver.verdict) -> unit
(** Routes frames of a non-IP ethertype to another protocol engine —
    how the DECNet transport receives its frames.  The handler runs in
    the interrupt routine and owns the frame's pool buffer on
    [Consumed]. *)

val space_taken : t -> space:int -> bool

(** {1 Waiting and sending} *)

val wait : t -> Entry.t -> Hw.Cpu_set.ctx -> unit
val wait_timeout : t -> Entry.t -> Hw.Cpu_set.ctx -> timeout:Sim.Time.span -> [ `Ok | `Timeout ]

val send : t -> ctx:Hw.Cpu_set.ctx -> dst:Frames.endpoint -> hdr:Proto.header ->
  payload:Stdlib.Bytes.t -> payload_pos:int -> payload_len:int -> unit
(** Charges "Finish UDP header", the software checksum, and the
    unattributed remainder to the calling thread's CPU, then queues the
    frame through the driver (which charges the trap/queue/IPI steps). *)

(** {1 Statistics} *)

val stale_packets : t -> int
(** Consumed packets that matched no table entry and were not calls. *)

val checksum_rejects : t -> int
val calls_fast_path : t -> int
val calls_slow_path : t -> int
