(** The name service: exporters register interfaces, importers obtain
    bindings.

    Binding is where the transport is chosen (§3.1): importing an
    interface exported from the same machine yields a shared-memory
    binding; a remote exporter yields the packet-exchange protocol over
    IP/UDP/Ethernet.  The binder itself is a zero-cost oracle — the
    paper measures calls on established bindings, not binding time. *)

type t

val create :
  ?resolve:(caller:Nub.Machine.t -> server:Nub.Machine.t -> Frames.endpoint option) -> unit -> t
(** [resolve] supplies the next-hop endpoint for inter-machine bindings
    — e.g. the MAC of an IP gateway when caller and server sit on
    different Ethernet segments ([None] = deliver directly, the default
    single-segment behaviour).  The server's IP always remains the
    packet's IP destination; only the link-layer next hop changes. *)

val export :
  ?auth:Secure.key ->
  t ->
  Runtime.t ->
  Idl.interface ->
  impls:Runtime.impl array ->
  workers:int ->
  unit
(** Installs the interface in the runtime (starting its workers) and
    records it for importers.  With [auth], remote callers must present
    the key at import time.
    @raise Invalid_argument if (name, version) is already exported. *)

val import :
  t ->
  Runtime.t ->
  name:string ->
  version:int ->
  ?options:Runtime.call_options ->
  ?auth:Secure.key ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  unit ->
  Runtime.binding
(** @raise Rpc_error.Rpc ([Unbound_interface]) if nobody exports it.
    Key distribution is out of band: the binder does not check [auth];
    a missing or wrong key surfaces at call time.

    [transport] is the §3.1 bind-time choice.  [`Auto] (default) picks
    shared memory for a same-machine exporter and the custom
    IP/UDP/Ethernet protocol otherwise; [`Local] requires shared memory
    and fails ([Unbound_interface]) when the exporter is remote; [`Udp]
    forces the custom protocol; [`Decnet] binds over a DECNet
    connection (same-machine imports still use shared memory, and
    [auth] is unsupported — DECNet calls present no key). *)

val exporters : t -> (string * int) list
