(** The per-address-space RPC runtime: caller stubs, server workers,
    and the two fast-path transports.

    A runtime lives in one user address space of one machine.  Exporting
    an interface installs server stubs and starts worker threads that
    park themselves in the machine's shared call table (so incoming
    calls are dispatched directly from the Ethernet interrupt routine);
    importing an interface yields a {!binding} whose transport was
    chosen at bind time — the custom packet-exchange protocol over
    IP/UDP/Ethernet for a remote server, shared memory for a server on
    the same machine, a DECNet session otherwise (§3.1).  Each transport
    is a module satisfying {!Transport.S}; a binding packs the module
    with its state, and {!call} dispatches through the pack, so further
    personalities (library [realnet]'s real UDP sockets) implement the
    same signature without touching this runtime.

    {!call} is the generic stub: it performs the five caller-stub steps
    of §3.1.1 (Starter, marshal, Transporter, unmarshal, Ender) with the
    Table VII costs, marshalling per Tables II–V, and the full
    retransmission / fragment / duplicate-suppression machinery of the
    packet exchange protocol. *)

type t

val create : Node.t -> space:int -> t
(** @raise Invalid_argument if [space] is already taken on the node's
    machine. *)

val node : t -> Node.t
val machine : t -> Nub.Machine.t
val space : t -> int

(** {1 Clients (activities)} *)

(** One calling thread's RPC identity: an {e activity} makes one call at
    a time with increasing sequence numbers. *)
type client

val new_client : t -> client
val client_activity : client -> Proto.Activity.t

(** {1 Server side} *)

type impl = Hw.Cpu_set.ctx -> Marshal.value list -> Marshal.value list
(** A server procedure: receives every declared argument (placeholders
    in [Var_out] positions), returns the values of the [Var_out]
    arguments in declaration order.  Charge the procedure's own compute
    to the given CPU context. *)

val export : ?auth:Secure.key -> t -> Idl.interface -> impls:impl array -> workers:int -> unit
(** Installs the interface and starts [workers] threads serving remote
    calls plus one serving same-machine calls.  With [auth], remote
    calls must arrive sealed under the key (§7's authenticated-call
    hooks); same-machine calls are inside the trust boundary and pass.
    @raise Invalid_argument if the implementation count does not match
    the interface or the interface is already exported. *)

(** {1 Caller side} *)

type backoff = {
  multiplier : float;  (** growth per timeout; must be [>= 1.] *)
  max_interval : Sim.Time.span;  (** cap on the retransmission interval *)
}
(** Capped exponential backoff for the retransmission interval.  After
    each timeout the interval is multiplied by [multiplier] (clamped to
    [max_interval]); any sign of progress from the server — a fragment
    ack, a Busy — resets it to [retransmit_after]. *)

type call_options = {
  retransmit_after : Sim.Time.span;  (** first result-wait timeout *)
  max_retries : int;  (** give up (Call_failed) after this many *)
  backoff : backoff option;
      (** [None] (the default) keeps the paper's fixed interval, so the
          Table I / Table X reproductions are unchanged *)
}

val default_options : t -> call_options
(** [retransmit_after] from the machine configuration (the paper's
    recovery took ~600 ms), 10 retries, no backoff. *)

type binding

val bind_ether :
  ?auth:Secure.key ->
  t ->
  dst:Frames.endpoint ->
  server_space:int ->
  Idl.interface ->
  options:call_options ->
  binding
(** Normally obtained via [Binder.import], which resolves the name and
    picks the transport.  [auth] seals calls under the shared key. *)

val bind_local : t -> server:t -> Idl.interface -> options:call_options -> binding

val bind_decnet :
  t -> ep:Decnet.endpoint -> peer:Net.Mac.t -> server_space:int -> Idl.interface -> binding
(** The third transport (§3.1): calls travel over a sequenced DECNet
    connection, established lazily and reused; the transport provides
    reliability, so the RPC layer does no retransmission of its own. *)

val decnet_listen : t -> Decnet.endpoint -> unit
(** Serve this runtime's exports to DECNet connections addressed to its
    space (one server thread per connection). *)

val binding_interface : binding -> Idl.interface

val transport_kind : binding -> Transport.kind
(** Which {!Transport.S} personality this binding packs. *)

val transport_name : binding -> string
val is_local : binding -> bool

val is_exported : t -> Idl.interface -> bool
(** Whether {!export} has installed this interface on the runtime. *)

val call :
  binding ->
  client ->
  Hw.Cpu_set.ctx ->
  proc_idx:int ->
  args:Marshal.value list ->
  Marshal.value list
(** Synchronous remote procedure call; returns the [Var_out] values.
    The calling thread must hold a CPU ([ctx]) on the caller machine;
    it is released while blocked.
    @raise Rpc_error.Rpc on type errors, dispatch errors, or
    communication failure after the retry budget. *)

val call_by_name : binding -> client -> Hw.Cpu_set.ctx -> proc:string -> args:Marshal.value list -> Marshal.value list

(** {1 Statistics} *)

val calls_made : t -> int
val calls_served : t -> int
val retransmissions : t -> int
val duplicates_suppressed : t -> int
val busy_replies : t -> int
val server_activities : t -> int
(** Activities with per-caller state currently retained at this
    server. *)

val set_execution_probe : t -> (Proto.Activity.t -> int -> unit) option -> unit
(** Instrumentation hook for the simulation-testing harness (library
    [check]): the probe fires with the call's [(activity, seq)] each
    time this runtime is about to execute a call body arriving over the
    packet-exchange transport — duplicate-suppressed packets do not
    fire it.  A second fire for the same pair is an at-most-once
    violation.  [None] (the default) disables the hook. *)
