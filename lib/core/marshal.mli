(** Marshalling: copying arguments and results to and from packets.

    The data movement is real — values are encoded into the packet
    buffer bytes and decoded back — and the {e time} each copy costs the
    simulated CPU is the measured cost from Tables II–V, charged through
    the supplied CPU context.  Direction rules follow §2.2: [Value]
    arguments travel in the call packet only, [Var_in] in the call
    packet only, [Var_out] in the result packet only; VAR arrays cost a
    single copy (at the caller), Text.T costs a caller-side copy plus a
    server-side allocate-and-copy. *)

type value =
  | V_int of int32
  | V_bytes of Stdlib.Bytes.t
  | V_text of string option  (** [None] is Modula-2+'s NIL *)
  | V_bool of bool
  | V_int16 of int  (** range-checked to a signed 16-bit value *)
  | V_real of float
  | V_record of value list
  | V_seq of value list

val type_check : Idl.ty -> value -> (unit, string) result
(** Structural check: constructor and size limits. *)

val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

(** Which packet is being built/read, selecting the arguments that
    travel in it. *)
type direction = In_call_packet | In_result_packet

val travels : Idl.mode -> direction -> bool

(** {1 Encoding / decoding}

    Raise {!Rpc_error.Rpc} ([Marshal_failure]) on type mismatches or
    malformed data. *)

val encode_args :
  Wire.Bytebuf.Writer.t -> direction -> Idl.proc -> value list -> unit
(** Writes the travelling subset of [values] (which must supply {e all}
    the procedure's arguments, in order). *)

val decode_args :
  Wire.Bytebuf.Reader.t -> direction -> Idl.proc -> value list
(** Reads the travelling subset back; non-travelling positions are
    filled with zero/empty placeholders of the declared type. *)

val placeholder : Idl.ty -> value

val merge_outs : Idl.proc -> value list -> value list -> value list
(** [merge_outs p in_values outs] splices the implementation's [Var_out]
    results back into the full argument list (the form result-packet
    encoding wants).  Shared by every transport's server side.
    @raise Rpc_error.Rpc on a count mismatch. *)

val extract_outs : Idl.proc -> value list -> value list
(** The [Var_out] subset of a full result-argument list, in declaration
    order — what {!Runtime.call} returns to the caller. *)

(** {1 Cost model} *)

type side = Caller_side | Server_side

val cost :
  Hw.Timing.t -> side -> direction -> Idl.arg -> value -> Sim.Time.span
(** Marshalling time this argument costs on [side] while building or
    consuming a packet in [direction], per Tables II–V.  Zero for
    non-travelling arguments and for the uncharged end of single-copy
    VAR arguments. *)

val charge_args :
  Hw.Timing.t ->
  Hw.Cpu_set.ctx ->
  side ->
  direction ->
  Idl.proc ->
  value list ->
  unit
(** Sums {!cost} over the arguments and charges it, labelled
    "Marshalling", to the CPU context. *)
