module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Timing = Hw.Timing
module Machine = Nub.Machine
module Activity = Proto.Activity
module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module V = Wire.Bytebuf.View

type impl = Cpu_set.ctx -> Marshal.value list -> Marshal.value list

type export_rec = {
  ex_intf : Idl.interface;
  ex_impls : impl array;
  ex_auth : Secure.key option;
}

(* Per-(calling thread) state kept by a server: the duplicate-
   suppression sequence number and the retained result packets for
   retransmission (§3.2: "in the case of a server thread it is the last
   result packet"). *)
type server_act = {
  mutable sa_last_seq : int;  (** highest completed call *)
  mutable sa_working : bool;
  mutable sa_cur_seq : int;
  mutable sa_retained : (Proto.header * V.t) list;
  mutable sa_reply_to : Frames.endpoint option;
  mutable sa_retained_bufs : int;
  mutable sa_generation : int;  (** bumps cancel pending retain GC *)
}

type local_call = {
  lc_intf_id : int32;
  lc_proc : int;
  lc_payload : Bytes.t;
  mutable lc_reply : (Bytes.t, string) result option;
  lc_done : Nub.Waiter.t;
}

type local_worker = { lw_waiter : Nub.Waiter.t; lw_inbox : local_call Queue.t }

type t = {
  rt_node : Node.t;
  rt_space : int;
  rt_exports : (int32, export_rec) Hashtbl.t;
  rt_acts : (Activity.t, server_act) Hashtbl.t;
  rt_pending_slow : Node.delivery Queue.t;
  rt_local_pool : local_worker Queue.t;
  rt_local_pending : local_call Queue.t;
  (* Scratch buffer for marshalling payloads: stubs encode into this
     reusable buffer and copy out exactly the bytes written, instead of
     allocating a worst-case-bound buffer per call.  Safe without a
     lock: encoding performs no engine effects, so simulated threads
     never interleave inside it. *)
  mutable rt_scratch : Bytes.t;
  mutable rt_next_thread : int;
  mutable rt_exec_probe : (Activity.t -> int -> unit) option;
  c_calls : Sim.Stats.Counter.t;
  c_served : Sim.Stats.Counter.t;
  c_retrans : Sim.Stats.Counter.t;
  c_dups : Sim.Stats.Counter.t;
  c_busy : Sim.Stats.Counter.t;
}

let node t = t.rt_node
let machine t = Node.machine t.rt_node
let space t = t.rt_space
let timing t = Node.timing t.rt_node
let engine t = Machine.engine (machine t)
let retain_gc_after = Time.sec 5

let create nd ~space =
  let t =
    {
      rt_node = nd;
      rt_space = space;
      rt_exports = Hashtbl.create 8;
      rt_acts = Hashtbl.create 32;
      rt_pending_slow = Queue.create ();
      rt_local_pool = Queue.create ();
      rt_local_pending = Queue.create ();
      rt_scratch = Bytes.create 2048;
      rt_next_thread = 1;
      rt_exec_probe = None;
      c_calls = Sim.Stats.Counter.create ();
      c_served = Sim.Stats.Counter.create ();
      c_retrans = Sim.Stats.Counter.create ();
      c_dups = Sim.Stats.Counter.create ();
      c_busy = Sim.Stats.Counter.create ();
    }
  in
  (* Packets the datalink demultiplexer could not hand to a parked
     worker queue here; a worker drains the backlog before re-parking. *)
  Node.set_slow_sink nd ~space (fun delivery -> Queue.push delivery t.rt_pending_slow);
  let reg = (Machine.obs (machine t)).Obs.Ctx.metrics in
  let site = Machine.name (machine t) in
  let metric what = Printf.sprintf "rpc.s%d.%s" space what in
  Obs.Metrics.Registry.register_counter reg ~site ~name:(metric "calls") t.c_calls;
  Obs.Metrics.Registry.register_counter reg ~site ~name:(metric "served") t.c_served;
  Obs.Metrics.Registry.register_counter reg ~site ~name:(metric "retransmissions") t.c_retrans;
  Obs.Metrics.Registry.register_counter reg ~site ~name:(metric "duplicates") t.c_dups;
  Obs.Metrics.Registry.register_counter reg ~site ~name:(metric "busy_rejects") t.c_busy;
  t

let journal t ev =
  let m = machine t in
  Obs.Ctx.record (Machine.obs m) ~at:(Engine.now (Machine.engine m)) ~site:(Machine.name m) ev

(* {1 Clients} *)

type client = { cl_rt : t; cl_act : Activity.t; mutable cl_seq : int }

let new_client t =
  let thread = t.rt_next_thread in
  t.rt_next_thread <- thread + 1;
  {
    cl_rt = t;
    cl_act = { Activity.caller_ip = Machine.ip (machine t); caller_space = t.rt_space; thread };
    cl_seq = 0;
  }

let client_activity c = c.cl_act

(* {1 Common helpers} *)

let cat_rt = "runtime"
let charge_rt ctx ~label span = Cpu_set.charge ctx ~cat:cat_rt ~label span

(* Blocking packet-buffer allocation: the fast path assumes buffers are
   free; under exhaustion a thread polls until one returns.  Time spent
   polling is buffer-pool queueing delay, recorded against the waiting
   call. *)
let alloc_bufs t ctx n =
  let pool = Machine.pool (machine t) in
  for _ = 1 to n do
    if not (Nub.Bufpool.try_alloc pool) then begin
      let eng = engine t in
      let start_at = Engine.now eng in
      while not (Nub.Bufpool.try_alloc pool) do
        Cpu_set.yield_cpu ctx (fun () -> Engine.delay eng (Time.us 100))
      done;
      Sim.Trace.add ~track:"pool" ~kind:Sim.Trace.Queue ~call:(Cpu_set.trace_call ctx)
        (Engine.trace eng) ~cat:"queue" ~label:"Wait for packet buffer"
        ~site:(Machine.name (machine t)) ~start_at ~stop_at:(Engine.now eng)
    end
  done

let free_bufs t n =
  let pool = Machine.pool (machine t) in
  for _ = 1 to n do
    Nub.Bufpool.free pool
  done

let payload_bound p =
  List.fold_left (fun acc a -> acc + Idl.wire_size_bound a.Idl.ty) 0 p.Idl.args

let encode_payload t p dir values bound =
  let bound = max bound 16 in
  if Bytes.length t.rt_scratch < bound then
    t.rt_scratch <- Bytes.create (max bound (2 * Bytes.length t.rt_scratch));
  let w = W.over t.rt_scratch ~pos:0 in
  Marshal.encode_args w dir p values;
  W.contents w

(* {1 Server dispatch (shared by both transports)}

   Returns the (possibly sealed) result payload and whether it is
   sealed.  [secured]/[seq] describe the incoming call for the §7
   authenticated-call hooks: a keyed export rejects unsealed remote
   calls, verifies and deciphers sealed ones, and seals its results
   under the same key.  [trusted] is set by the same-machine transport,
   where the shared-memory path is inside the trust boundary. *)

let charge_security t ctx ~bytes =
  charge_rt ctx ~label:"Security transform" (Secure.cost (timing t) ~bytes)

let dispatch t ctx ~intf_id ~proc_idx ~payload ~secured ~seq ~trusted :
    (Bytes.t * bool, string) result =
  let tmg = timing t in
  match Hashtbl.find_opt t.rt_exports intf_id with
  | None -> Error (Printf.sprintf "no interface %ld exported from space %d" intf_id t.rt_space)
  | Some ex ->
    if proc_idx < 0 || proc_idx >= Array.length ex.ex_intf.Idl.procs then
      Error (Printf.sprintf "bad procedure index %d" proc_idx)
    else begin
      let unsealed =
        match ex.ex_auth, secured with
        | None, false -> Ok payload
        | None, true -> Error "secured call to an unkeyed interface"
        | Some _, false ->
          if trusted then Ok payload else Error "authentication required"
        | Some key, true -> (
          charge_security t ctx ~bytes:(V.length payload);
          (* Unsealing necessarily materialises the ciphertext; the
             common unsecured path stays zero-copy. *)
          match Secure.unseal key ~seq (V.to_bytes payload) with
          | Ok plain -> Ok (V.of_bytes plain)
          | Error e -> Error e)
      in
      match unsealed with
      | Error e -> Error e
      | Ok payload -> (
        let p = ex.ex_intf.Idl.procs.(proc_idx) in
        match
          try Ok (Marshal.decode_args (R.of_view payload) Marshal.In_call_packet p)
          with Rpc_error.Rpc e -> Error (Rpc_error.to_string e)
        with
        | Error e -> Error e
        | Ok in_values -> (
          Marshal.charge_args tmg ctx Marshal.Server_side Marshal.In_call_packet p in_values;
          charge_rt ctx ~label:"Server stub (call & return)" (Timing.server_stub tmg);
          match
            (* A buggy implementation must not take the worker thread
               down: any exception becomes an error reply to the caller. *)
            try Ok (ex.ex_impls.(proc_idx) ctx in_values) with
            | Rpc_error.Rpc e -> Error (Rpc_error.to_string e)
            | Stack_overflow | Out_of_memory -> Error "server resource exhaustion"
            | e -> Error ("implementation raised: " ^ Printexc.to_string e)
          with
          | Error e -> Error e
          | Ok outs -> (
            try
              let full = Marshal.merge_outs p in_values outs in
              let result = encode_payload t p Marshal.In_result_packet full (payload_bound p) in
              (* VAR OUT results are written in place by the server
                 procedure — no server-side copy (§2.2); Value/Text
                 server marshalling costs are charged here. *)
              Marshal.charge_args tmg ctx Marshal.Server_side Marshal.In_result_packet p full;
              Sim.Stats.Counter.incr t.c_served;
              match ex.ex_auth with
              | Some key when secured ->
                charge_security t ctx ~bytes:(Bytes.length result);
                Ok (Secure.seal key ~seq result, true)
              | Some _ | None -> Ok (result, false)
            with Rpc_error.Rpc e -> Error (Rpc_error.to_string e))))
    end

(* {1 Bindings} *)

type backoff = { multiplier : float; max_interval : Time.span }

type call_options = {
  retransmit_after : Time.span;
  max_retries : int;
  backoff : backoff option;
}

let default_options t =
  {
    retransmit_after = (Machine.config (machine t)).Hw.Config.retransmit_after;
    max_retries = 10;
    backoff = None;
  }

(* The retransmission interval sequence of [opts]: fixed at
   [retransmit_after] by default (the paper's 600 ms), or growing by
   [multiplier] per silent period up to [max_interval] when backoff is
   enabled. *)
let next_interval opts cur =
  match opts.backoff with
  | None -> opts.retransmit_after
  | Some b ->
    if b.multiplier < 1. then invalid_arg "Runtime: backoff multiplier must be >= 1";
    let grown = Time.span_scale b.multiplier cur in
    if Time.span_compare grown b.max_interval > 0 then b.max_interval else grown

type ether_binding = {
  be_dst : Frames.endpoint;
  be_space : int;
  be_intf : Idl.interface;
  be_id : int32;
  be_opts : call_options;
  be_auth : Secure.key option;
}

(* A DECNet session: one connection, established lazily, calls
   serialized on it (the custom packet-exchange protocol exists exactly
   because this general-purpose path is heavier, §3.1). *)
type decnet_binding = {
  dn_ep : Decnet.endpoint;
  dn_peer : Net.Mac.t;
  dn_space : int;
  dn_intf : Idl.interface;
  dn_id : int32;
  dn_lock : Sim.Mutex.t;
  mutable dn_conn : Decnet.conn option;
  mutable dn_next_call : int;
}

type local_binding = { bl_server : t; bl_intf : Idl.interface }

(* The transport implementation modules live below, after the call
   machinery each one wraps; [bind_ether]/[bind_local]/[bind_decnet]
   pack them into {!binding}s there. *)

(* {1 The shared Starter prologue}

   Every transport starts a call the same way: bounds-check the
   procedure, count the call, open a causal trace for it (everything the
   calling thread charges until the result returns — and, via frame
   registration and wakeup propagation, everything the server and both
   controllers do on its behalf — attributes to this id; a no-op id of
   [Sim.Trace.no_call] flows through when tracing is off), and charge
   the calling stub.  The transport-specific Starter/Transporter/Ender
   body runs under that trace id. *)

let start_call client ctx intf ~proc_idx body =
  let t = client.cl_rt in
  let tmg = timing t in
  if proc_idx < 0 || proc_idx >= Array.length intf.Idl.procs then
    Rpc_error.fail (Rpc_error.Bad_procedure proc_idx);
  let p = intf.Idl.procs.(proc_idx) in
  Sim.Stats.Counter.incr t.c_calls;
  let prev_call = Cpu_set.trace_call ctx in
  Cpu_set.set_trace_call ctx (Sim.Trace.new_call (Engine.trace (engine t)));
  Fun.protect ~finally:(fun () -> Cpu_set.set_trace_call ctx prev_call) @@ fun () ->
  charge_rt ctx ~label:"Calling stub (call & return)" (Timing.calling_stub tmg);
  body t tmg p

(* {1 The Ethernet transport — caller side} *)

let max_payload t = Timing.max_payload_bytes (timing t)

let fragment_count t len =
  let m = max_payload t in
  if len = 0 then 1 else (len + m - 1) / m

let header ?(please_ack = false) ?(no_frag_ack = false) ?(secured = false) ~act ~seq
    ~space:server_space ~intf_id ~proc_idx ~frag_idx ~frag_count ptype =
  {
    Proto.ptype;
    please_ack;
    no_frag_ack;
    secured;
    activity = act;
    seq;
    server_space;
    interface_id = intf_id;
    proc_idx;
    frag_idx;
    frag_count;
    data_len = 0;
    checksum = 0;
  }

exception Give_up of string

(* Wait on [entry], feeding deliveries to [handle]; when
   [retransmit_after] elapses without progress, run [on_timeout] (a
   retransmission), giving up after [max_retries] such periods.
   [handle] returns [`Done v], [`Continue] (irrelevant packet), or
   [`Progress] (the peer is alive: reset the deadline and the retry
   counter).

   The retransmission deadline is wall-clock, NOT reset by irrelevant
   deliveries: if it were, a peer spamming unrelated packets (e.g. its
   own retransmissions) would suppress ours forever — a livelock the
   protocol property tests caught. *)
let await t ctx entry ~opts ~on_timeout ~handle =
  let eng = engine t in
  let retries = ref 0 in
  let interval = ref opts.retransmit_after in
  let deadline = ref (Time.add (Engine.now eng) !interval) in
  let rec loop () =
    match Node.Entry.inbox_pop entry with
    | Some d -> (
      match handle d with
      | `Done v -> v
      | `Continue -> loop ()
      | `Progress ->
        retries := 0;
        interval := opts.retransmit_after;
        deadline := Time.add (Engine.now eng) !interval;
        loop ())
    | None ->
      let now = Engine.now eng in
      if Time.(now < !deadline) then begin
        (match
           Node.wait_timeout t.rt_node entry ctx ~timeout:(Time.diff !deadline now)
         with
        | `Ok | `Timeout -> ());
        loop ()
      end
      else begin
        incr retries;
        if !retries > opts.max_retries then raise (Give_up "no response from server")
        else begin
          Sim.Stats.Counter.incr t.c_retrans;
          on_timeout ();
          interval := next_interval opts !interval;
          deadline := Time.add (Engine.now eng) !interval;
          loop ()
        end
      end
  in
  loop ()

let calls_made t = Sim.Stats.Counter.value t.c_calls

let call_ether client ctx (b : ether_binding) ~proc_idx ~args =
  start_call client ctx b.be_intf ~proc_idx @@ fun t tmg p ->
  (* Starter: obtain a packet buffer with a partially filled header. *)
  charge_rt ctx ~label:"Starter" (Timing.starter tmg);
  client.cl_seq <- client.cl_seq + 1;
  let seq = client.cl_seq in
  let payload = encode_payload t p Marshal.In_call_packet args (payload_bound p) in
  Marshal.charge_args tmg ctx Marshal.Caller_side Marshal.In_call_packet p args;
  (* Authenticated binding: seal the whole call payload before
     fragmentation (§7's security hooks). *)
  let payload, secured =
    match b.be_auth with
    | None -> (payload, false)
    | Some key ->
      charge_security t ctx ~bytes:(Bytes.length payload);
      (Secure.seal key ~seq payload, true)
  in
  let len = Bytes.length payload in
  let frags = fragment_count t len in
  let act = client.cl_act in
  let entry = Node.new_entry t.rt_node in
  Node.register_caller t.rt_node act entry;
  (* Every exit — result, clean failure, or an unexpected exception in
     the unmarshalling path — must unregister the call and return the
     packet buffers, or the activity wedges and the pool leaks. *)
  Fun.protect ~finally:(fun () -> Node.unregister_caller t.rt_node act) @@ fun () ->
  alloc_bufs t ctx frags;
  Fun.protect ~finally:(fun () -> free_bufs t frags) @@ fun () ->
  (* Transporter: send the call packet(s), wait for the result. *)
  charge_rt ctx ~label:"Transporter (send call pkt)" (Timing.transporter_send tmg);
  let hdr_for ?please_ack ptype frag_idx =
    header ?please_ack ~secured ~act ~seq ~space:b.be_space ~intf_id:b.be_id ~proc_idx ~frag_idx
      ~frag_count:frags ptype
  in
  let send_frag ?please_ack i =
    let m = max_payload t in
    let pos = i * m in
    let flen = if len = 0 then 0 else min m (len - pos) in
    Node.send t.rt_node ~ctx ~dst:b.be_dst
      ~hdr:(hdr_for ?please_ack Proto.Call i)
      ~payload ~payload_pos:pos ~payload_len:flen;
    (* The caller's send path through trap return and scheduler is
       longer on a uniprocessor (§5, calibrated against Table X). *)
    charge_rt ctx ~label:"Uniprocessor send path" (Timing.uniproc_caller_send_extra tmg)
  in
  try
    (* Fragments of a multi-packet call go stop-and-wait: each but the
       last is acknowledged before the next is sent. *)
    for i = 0 to frags - 1 do
      send_frag i;
      if i = 0 then begin
        (* Registering the outstanding call overlaps transmission on a
           multiprocessor: charged after the send (§3.1.3). *)
        charge_rt ctx ~label:"Register call" (Timing.register_call tmg);
        charge_rt ctx ~label:"Multiprocessor fix" (Timing.multiproc_fix_cost tmg)
      end;
      if i < frags - 1 then
        await t ctx entry ~opts:b.be_opts
          ~on_timeout:(fun () ->
            journal t (Obs.Journal.Retransmit { seq });
            send_frag ~please_ack:true i)
          ~handle:(fun d ->
            let h = d.Node.d_hdr in
            match h.Proto.ptype with
            | Proto.Ack when h.Proto.seq = seq && h.Proto.frag_idx = i -> `Done ()
            | Proto.Busy when h.Proto.seq = seq -> `Progress
            | Proto.Error_reply when h.Proto.seq = seq ->
              raise (Give_up ("server: " ^ V.to_string d.Node.d_payload))
            | _ -> `Continue)
    done;
    (* Await the result, acknowledging all but its last fragment. *)
    let result_frags : (int, V.t) Hashtbl.t = Hashtbl.create 4 in
    let result_secured = ref false in
    let result_count = ref None in
    let complete () =
      match !result_count with
      | Some n -> Hashtbl.length result_frags = n
      | None -> false
    in
    await t ctx entry ~opts:b.be_opts
      ~on_timeout:(fun () ->
        journal t (Obs.Journal.Retransmit { seq });
        send_frag ~please_ack:true (frags - 1))
      ~handle:(fun d ->
        let h = d.Node.d_hdr in
        if h.Proto.seq <> seq then `Continue
        else
          match h.Proto.ptype with
          | Proto.Busy | Proto.Ack -> `Progress
          | Proto.Error_reply ->
            raise (Give_up ("server: " ^ V.to_string d.Node.d_payload))
          | Proto.Result
            when h.Proto.frag_count < 1
                 || h.Proto.frag_idx < 0
                 || h.Proto.frag_idx >= h.Proto.frag_count
                 || (match !result_count with
                    | Some n -> h.Proto.frag_count <> n
                    | None -> false) ->
            (* A fragment whose index is out of range, or whose claimed
               fragment count disagrees with the fragments already
               received (a corrupted or forged retransmission), must not
               poison the reassembly: drop it and keep waiting for a
               consistent retransmission. *)
            `Continue
          | Proto.Result ->
            result_count := Some h.Proto.frag_count;
            if h.Proto.secured then result_secured := true;
            if not (Hashtbl.mem result_frags h.Proto.frag_idx) then
              Hashtbl.replace result_frags h.Proto.frag_idx d.Node.d_payload;
            (* Streamed fragments (no_frag_ack) are not acknowledged;
               stop-and-wait fragments ack all but the last, with the
               result's own fragment numbering. *)
            if (not h.Proto.no_frag_ack) && h.Proto.frag_idx < h.Proto.frag_count - 1 then begin
              let ack =
                { h with Proto.ptype = Proto.Ack; please_ack = false; data_len = 0 }
              in
              journal t (Obs.Journal.Ack { seq });
              Node.send t.rt_node ~ctx ~dst:b.be_dst ~hdr:ack ~payload:Bytes.empty
                ~payload_pos:0 ~payload_len:0
            end;
            if complete () then `Done () else `Progress
          | Proto.Call -> `Continue);
    (* Reassemble and unmarshal the result. *)
    charge_rt ctx ~label:"Transporter (receive result pkt)" (Timing.transporter_recv tmg);
    let n = Option.get !result_count in
    let missing () = Rpc_error.fail (Rpc_error.Protocol_violation "missing result fragment") in
    (* Single-fragment results — the common case — are decoded straight
       out of the frame; only multi-fragment results are concatenated. *)
    let result_payload =
      if n = 1 then (match Hashtbl.find_opt result_frags 0 with Some v -> v | None -> missing ())
      else begin
        let buf = Buffer.create 256 in
        for i = 0 to n - 1 do
          match Hashtbl.find_opt result_frags i with
          | Some v -> V.add_to_buffer v buf
          | None -> missing ()
        done;
        V.of_bytes (Buffer.to_bytes buf)
      end
    in
    let result_payload =
      match b.be_auth, !result_secured with
      | None, false -> result_payload
      | None, true ->
        Rpc_error.fail (Rpc_error.Protocol_violation "secured result on an unkeyed binding")
      | Some _, false ->
        Rpc_error.fail (Rpc_error.Protocol_violation "server returned an unsecured result")
      | Some key, true -> (
        charge_security t ctx ~bytes:(V.length result_payload);
        match Secure.unseal key ~seq (V.to_bytes result_payload) with
        | Ok plain -> V.of_bytes plain
        | Error e -> Rpc_error.fail (Rpc_error.Call_failed e))
    in
    let full = Marshal.decode_args (R.of_view result_payload) Marshal.In_result_packet p in
    Marshal.charge_args tmg ctx Marshal.Caller_side Marshal.In_result_packet p full;
    (* Ender: return the result packet to the free pool. *)
    charge_rt ctx ~label:"Ender" (Timing.ender tmg);
    Marshal.extract_outs p full
  with Give_up msg -> Rpc_error.fail (Rpc_error.Call_failed msg)

(* {1 The Ethernet transport — server side} *)

let find_act t act_id =
  match Hashtbl.find_opt t.rt_acts act_id with
  | Some a -> a
  | None ->
    let a =
      {
        sa_last_seq = 0;
        sa_working = false;
        sa_cur_seq = 0;
        sa_retained = [];
        sa_reply_to = None;
        sa_retained_bufs = 0;
        sa_generation = 0;
      }
    in
    Hashtbl.replace t.rt_acts act_id a;
    a

let free_retained t sa =
  free_bufs t sa.sa_retained_bufs;
  sa.sa_retained <- [];
  sa.sa_retained_bufs <- 0

(* A retained result not reclaimed by the activity's next call is freed
   after a few seconds, bounding pool usage from departed callers. *)
let schedule_retain_gc t sa =
  sa.sa_generation <- sa.sa_generation + 1;
  let gen = sa.sa_generation in
  Engine.schedule (engine t) ~after:retain_gc_after (fun () ->
      if sa.sa_generation = gen && not sa.sa_working then free_retained t sa)

let send_to t ctx ~dst ~hdr ~payload =
  Node.send t.rt_node ~ctx ~dst ~hdr ~payload ~payload_pos:0
    ~payload_len:(Bytes.length payload)

(* Send a view without materialising it: the frame builder copies
   straight out of the viewed window. *)
let send_view t ctx ~dst ~hdr v =
  Node.send t.rt_node ~ctx ~dst ~hdr ~payload:(V.buffer v) ~payload_pos:(V.offset v)
    ~payload_len:(V.length v)

let resend_retained t ctx sa =
  (* Count the duplicate and journal a retransmission only when result
     packets actually go back out: with no reply endpoint, or with the
     retained packets already reclaimed by the GC, nothing is sent. *)
  match sa.sa_reply_to with
  | Some dst when sa.sa_retained <> [] ->
    Sim.Stats.Counter.incr t.c_dups;
    journal t (Obs.Journal.Retransmit { seq = sa.sa_last_seq });
    List.iter (fun (hdr, payload) -> send_view t ctx ~dst ~hdr payload) sa.sa_retained
  | Some _ | None -> ()

(* Collect the remaining fragments of a multi-packet call, sending a
   stop-and-wait ack for each but the last.  Returns the assembled
   payload, or None if the caller went silent. *)
let collect_call_fragments t ctx entry ~opts ~(first : Node.delivery) =
  let h0 = first.Node.d_hdr in
  let n = h0.Proto.frag_count in
  if n < 1 then None (* malformed first fragment: drop the call *)
  else if n = 1 then Some first.Node.d_payload
  else begin
    let act_id = h0.Proto.activity in
    let seq = h0.Proto.seq in
    let dst = first.Node.d_src in
    let frags = Hashtbl.create 4 in
    let ack i =
      journal t (Obs.Journal.Ack { seq });
      send_to t ctx ~dst
        ~hdr:
          (header ~act:act_id ~seq ~space:h0.Proto.server_space
             ~intf_id:h0.Proto.interface_id ~proc_idx:h0.Proto.proc_idx ~frag_idx:i
             ~frag_count:n Proto.Ack)
        ~payload:Bytes.empty
    in
    let store (d : Node.delivery) =
      let h = d.Node.d_hdr in
      (* Trust nothing from the wire: the fragment must belong to this
         call, agree with the first fragment's count, and carry an
         in-range index.  An out-of-range index stored blindly once let
         [Hashtbl.length] reach [n] with fragment [i < n] missing, so
         reassembly raised an uncaught [Not_found], killed the worker
         and leaked the fragment sink. *)
      if
        h.Proto.ptype = Proto.Call
        && h.Proto.seq = seq
        && h.Proto.frag_count = n
        && h.Proto.frag_idx >= 0
        && h.Proto.frag_idx < n
      then begin
        if not (Hashtbl.mem frags h.Proto.frag_idx) then
          Hashtbl.replace frags h.Proto.frag_idx d.Node.d_payload;
        (* (Re-)ack every fragment but the last, covering lost acks. *)
        if h.Proto.frag_idx < n - 1 then ack h.Proto.frag_idx;
        true
      end
      else false
    in
    ignore (store first);
    Node.register_fragment_sink t.rt_node act_id entry;
    (* The sink must come down on every exit, including an exception in
       the ack path, or later fragments wedge a parked worker. *)
    Fun.protect ~finally:(fun () -> Node.unregister_fragment_sink t.rt_node act_id) @@ fun () ->
    let eng = engine t in
    let timeouts = ref 0 in
    let deadline = ref (Time.add (Engine.now eng) opts.retransmit_after) in
    let result = ref None in
    (try
       while Hashtbl.length frags < n do
         match Node.Entry.inbox_pop entry with
         | Some d ->
           if store d then begin
             timeouts := 0;
             deadline := Time.add (Engine.now eng) opts.retransmit_after
           end
         | None ->
           let now = Engine.now eng in
           if Time.(now < !deadline) then
             ignore (Node.wait_timeout t.rt_node entry ctx ~timeout:(Time.diff !deadline now))
           else begin
             incr timeouts;
             deadline := Time.add (Engine.now eng) opts.retransmit_after;
             if !timeouts > opts.max_retries then raise Exit
           end
       done;
       let buf = Buffer.create (n * 256) in
       for i = 0 to n - 1 do
         match Hashtbl.find_opt frags i with
         | Some payload -> V.add_to_buffer payload buf
         | None -> raise Exit (* unreachable once indexes are validated *)
       done;
       result := Some (V.of_bytes (Buffer.to_bytes buf))
     with Exit -> ());
    !result
  end

(* Send the result (or error reply) fragments, stop-and-wait on acks for
   all but the last, then retain them for duplicate suppression. *)
let send_result t ctx entry ~opts ~(sa : server_act) ~dst ~(h0 : Proto.header)
    ~(outcome : (Bytes.t * bool, string) result) =
  let tmg = timing t in
  let streaming = (Machine.config (machine t)).Hw.Config.streaming_results in
  let ptype, payload, secured =
    match outcome with
    | Ok (payload, secured) -> (Proto.Result, payload, secured)
    | Error msg -> (Proto.Error_reply, Bytes.of_string msg, false)
  in
  let len = Bytes.length payload in
  let frags = fragment_count t len in
  alloc_bufs t ctx frags;
  charge_rt ctx ~label:"Receiver (send result pkt)" (Timing.receiver_send tmg);
  let m = max_payload t in
  let hdr_of i =
    {
      (header ~no_frag_ack:streaming ~secured ~act:h0.Proto.activity ~seq:h0.Proto.seq
         ~space:h0.Proto.server_space ~intf_id:h0.Proto.interface_id
         ~proc_idx:h0.Proto.proc_idx ~frag_idx:i ~frag_count:frags ptype)
      with
      Proto.data_len = (if len = 0 then 0 else min m (len - (i * m)));
    }
  in
  (* Fragments are views into the one result payload — no per-fragment
     copy on either the first send, retransmissions, or retention. *)
  let slice i =
    let pos = i * m in
    let flen = if len = 0 then 0 else min m (len - pos) in
    V.of_bytes payload ~pos ~len:flen
  in
  let act_id = h0.Proto.activity in
  let need_acks = frags > 1 && not streaming in
  if need_acks then Node.register_fragment_sink t.rt_node act_id entry;
  let eng = engine t in
  let abandoned = ref false in
  let retained = ref false in
  (* Whatever happens in the send loop — including an exception from the
     transport — the fragment sink comes down and, unless the packets
     were retained for duplicate suppression, the buffers go back to the
     pool and the activity stops being "working". *)
  Fun.protect
    ~finally:(fun () ->
      if need_acks then Node.unregister_fragment_sink t.rt_node act_id;
      if not !retained then begin
        free_bufs t frags;
        sa.sa_working <- false
      end)
  @@ fun () ->
  for i = 0 to frags - 1 do
    if not !abandoned then begin
      let fragment = slice i in
      send_view t ctx ~dst ~hdr:(hdr_of i) fragment;
      if need_acks && i < frags - 1 then begin
        (* Deadline-based wait: irrelevant deliveries must not push the
           retransmission out (see [await]).  A duplicate of the call
           means the caller has nothing yet — resend immediately. *)
        let timeouts = ref 0 in
        let acked = ref false in
        let deadline = ref (Time.add (Engine.now eng) opts.retransmit_after) in
        let resend () =
          send_view t ctx ~dst ~hdr:(hdr_of i) fragment;
          deadline := Time.add (Engine.now eng) opts.retransmit_after
        in
        while (not !acked) && not !abandoned do
          match Node.Entry.inbox_pop entry with
          | Some d ->
            let h = d.Node.d_hdr in
            if h.Proto.seq = h0.Proto.seq then begin
              match h.Proto.ptype with
              | Proto.Ack when h.Proto.frag_idx = i -> acked := true
              | Proto.Call when h.Proto.please_ack -> resend ()
              | Proto.Ack | Proto.Call | Proto.Result | Proto.Busy | Proto.Error_reply -> ()
            end
          | None ->
            let now = Engine.now eng in
            if Time.(now < !deadline) then
              ignore (Node.wait_timeout t.rt_node entry ctx ~timeout:(Time.diff !deadline now))
            else begin
              incr timeouts;
              if !timeouts > opts.max_retries then abandoned := true else resend ()
            end
        done
      end
    end
  done;
  if not !abandoned then begin
    (* Retain for retransmission; the buffers stay allocated until the
       activity's next call or the retain GC. *)
    sa.sa_retained <- List.init frags (fun i -> (hdr_of i, slice i));
    sa.sa_retained_bufs <- frags;
    sa.sa_reply_to <- Some dst;
    sa.sa_last_seq <- h0.Proto.seq;
    sa.sa_working <- false;
    schedule_retain_gc t sa;
    retained := true
  end

let handle_call t ctx entry (d : Node.delivery) ~opts =
  let tmg = timing t in
  let h = d.Node.d_hdr in
  (* Re-derive the call id from the delivered frame (the payload view
     aliases the frame buffer) rather than trusting whatever wakeup last
     stamped this worker's context — backlog drains and handoffs reuse
     worker threads across calls. *)
  (let tr = Engine.trace (engine t) in
   if Sim.Trace.enabled tr then
     Cpu_set.set_trace_call ctx (Sim.Trace.frame_call tr (V.buffer d.Node.d_payload)));
  charge_rt ctx ~label:"Receiver (receive call pkt)" (Timing.receiver_recv tmg);
  let sa = find_act t h.Proto.activity in
  let seq = h.Proto.seq in
  if seq < sa.sa_last_seq then () (* ancient duplicate: drop *)
  else if seq = sa.sa_last_seq && seq > 0 then resend_retained t ctx sa
  else if sa.sa_working && seq = sa.sa_cur_seq then begin
    (* Duplicate of the call another worker is still executing. *)
    Sim.Stats.Counter.incr t.c_busy;
    if h.Proto.please_ack then
      send_to t ctx ~dst:d.Node.d_src
        ~hdr:
          (header ~act:h.Proto.activity ~seq ~space:h.Proto.server_space
             ~intf_id:h.Proto.interface_id ~proc_idx:h.Proto.proc_idx
             ~frag_idx:h.Proto.frag_idx ~frag_count:h.Proto.frag_count Proto.Busy)
        ~payload:Bytes.empty
  end
  else if h.Proto.frag_idx <> 0 then () (* mid-call fragment with no collector: drop *)
  else begin
    (* A new call: the retained previous result is implicitly
       acknowledged (§3.2). *)
    sa.sa_generation <- sa.sa_generation + 1;
    free_retained t sa;
    sa.sa_working <- true;
    sa.sa_cur_seq <- seq;
    match collect_call_fragments t ctx entry ~opts ~first:d with
    | None -> sa.sa_working <- false (* caller went silent mid-call *)
    | Some payload ->
      (match t.rt_exec_probe with
      | Some probe -> probe h.Proto.activity seq
      | None -> ());
      let outcome =
        dispatch t ctx ~intf_id:h.Proto.interface_id ~proc_idx:h.Proto.proc_idx ~payload
          ~secured:h.Proto.secured ~seq ~trusted:false
      in
      (* Another, newer call from this activity may have superseded us
         while the implementation ran (caller gave up and re-called). *)
      if sa.sa_cur_seq = seq then
        send_result t ctx entry ~opts ~sa ~dst:d.Node.d_src ~h0:h ~outcome
  end

(* The server worker: drain backlog from the slow path first, then park
   in the call table where the interrupt routine can hand us the next
   call directly (§3.1.3's Receiver loop). *)
let worker_loop t ~opts ctx =
  let rec loop () =
    (match Queue.take_opt t.rt_pending_slow with
    | Some d ->
      let entry = Node.new_entry t.rt_node in
      if d.Node.d_hdr.Proto.ptype = Proto.Call then handle_call t ctx entry d ~opts
    | None -> (
      let entry = Node.new_entry t.rt_node in
      Node.join_worker_pool t.rt_node ~space:t.rt_space entry;
      Node.wait t.rt_node entry ctx;
      match Node.Entry.inbox_pop entry with
      | Some d when d.Node.d_hdr.Proto.ptype = Proto.Call -> handle_call t ctx entry d ~opts
      | Some _ | None -> ()));
    loop ()
  in
  loop ()

(* {1 The local (same-machine, shared-memory) transport} *)

let local_worker_loop t ctx =
  let tmg = timing t in
  let me = { lw_waiter = Machine.new_waiter (machine t); lw_inbox = Queue.create () } in
  let handle (lc : local_call) =
    charge_rt ctx ~label:"Receiver (local)" (Timing.local_receiver tmg);
    (* Shared memory on the same machine is inside the trust boundary:
       local calls bypass sealing even to keyed interfaces. *)
    let outcome =
      Result.map fst
        (dispatch t ctx ~intf_id:lc.lc_intf_id ~proc_idx:lc.lc_proc
           ~payload:(V.of_bytes lc.lc_payload) ~secured:false ~seq:0 ~trusted:true)
    in
    lc.lc_reply <- Some outcome;
    charge_rt ctx ~label:"Receiver send (local)" (Timing.local_receiver_send tmg);
    Nub.Waiter.notify lc.lc_done ~waker:ctx
  in
  let rec loop () =
    (match Queue.take_opt t.rt_local_pending with
    | Some lc -> handle lc
    | None -> (
      Queue.push me t.rt_local_pool;
      Nub.Waiter.wait me.lw_waiter ctx;
      match Queue.take_opt me.lw_inbox with
      | Some lc -> handle lc
      | None -> ()));
    loop ()
  in
  loop ()

let call_local client ctx (b : local_binding) ~proc_idx ~args =
  let server = b.bl_server in
  start_call client ctx b.bl_intf ~proc_idx @@ fun t tmg p ->
  charge_rt ctx ~label:"Starter (local)" (Timing.local_starter tmg);
  alloc_bufs t ctx 1;
  (* One pool buffer models the local call packet; it must return to the
     pool even when marshalling or the server's reply raises. *)
  Fun.protect ~finally:(fun () -> free_bufs t 1) @@ fun () ->
  let payload = encode_payload t p Marshal.In_call_packet args (payload_bound p) in
  Marshal.charge_args tmg ctx Marshal.Caller_side Marshal.In_call_packet p args;
  charge_rt ctx ~label:"Transporter send (local)" (Timing.local_transporter_send tmg);
  let lc =
    {
      lc_intf_id = Idl.interface_id b.bl_intf;
      lc_proc = proc_idx;
      lc_payload = payload;
      lc_reply = None;
      lc_done = Machine.new_waiter (machine t);
    }
  in
  (match Queue.take_opt server.rt_local_pool with
  | Some lw ->
    Queue.push lc lw.lw_inbox;
    Nub.Waiter.notify lw.lw_waiter ~waker:ctx
  | None ->
    (* All local workers busy; they drain the pending queue first. *)
    Queue.push lc server.rt_local_pending);
  Nub.Waiter.wait lc.lc_done ctx;
  charge_rt ctx ~label:"Transporter receive (local)" (Timing.local_transporter_recv tmg);
  let outcome = Option.get lc.lc_reply in
  match outcome with
  | Error msg ->
    charge_rt ctx ~label:"Ender (local)" (Timing.local_ender tmg);
    Rpc_error.fail (Rpc_error.Call_failed ("server: " ^ msg))
  | Ok result_payload ->
    let full = Marshal.decode_args (R.of_bytes result_payload) Marshal.In_result_packet p in
    Marshal.charge_args tmg ctx Marshal.Caller_side Marshal.In_result_packet p full;
    charge_rt ctx ~label:"Ender (local)" (Timing.local_ender tmg);
    Marshal.extract_outs p full

(* {1 RPC over DECNet}

   Requests: intf_id(4) proc(2) call_id(4) args-payload.
   Replies:  call_id(4) status(1: 0=ok 1=error) payload. *)

let encode_dn_request ~intf_id ~proc_idx ~call_id payload =
  let w = W.create (10 + Bytes.length payload) in
  W.u32 w intf_id;
  W.u16 w proc_idx;
  W.u32 w (Int32.of_int call_id);
  W.bytes w payload;
  W.contents w

let decode_dn_request msg =
  try
    let r = R.of_bytes msg in
    let intf_id = R.u32 r in
    let proc_idx = R.u16 r in
    let call_id = Int32.to_int (R.u32 r) in
    Ok (intf_id, proc_idx, call_id, R.view r (R.remaining r))
  with Wire.Bytebuf.Overflow _ -> Error "decnet-rpc: truncated request"

let encode_dn_reply ~call_id ~ok payload =
  let w = W.create (5 + Bytes.length payload) in
  W.u32 w (Int32.of_int call_id);
  W.u8 w (if ok then 0 else 1);
  W.bytes w payload;
  W.contents w

let decode_dn_reply msg =
  try
    let r = R.of_bytes msg in
    let call_id = Int32.to_int (R.u32 r) in
    let ok = R.u8 r = 0 in
    Ok (call_id, ok, R.view r (R.remaining r))
  with Wire.Bytebuf.Overflow _ -> Error "decnet-rpc: truncated reply"

(* Server side: one thread per accepted connection, dispatching into
   this runtime's exports.  DECNet carries no sealing, so keyed exports
   reject these calls like any other unauthenticated remote call. *)
let decnet_listen t ep =
  Decnet.listen ep ~space:t.rt_space (fun conn ->
      let mach = machine t in
      Cpu_set.with_cpu (Machine.cpus mach) (fun ctx ->
          let tmg = timing t in
          let rec serve () =
            match Decnet.recv_message conn ctx ~timeout:(Time.sec 60) with
            | None -> if Decnet.is_open conn then Decnet.close conn ctx
            | Some msg ->
              charge_rt ctx ~label:"Receiver (receive call pkt)" (Timing.receiver_recv tmg);
              (match decode_dn_request msg with
              | Error e ->
                ignore e (* malformed request: drop; the session survives *)
              | Ok (intf_id, proc_idx, call_id, payload) ->
                let outcome =
                  Result.map fst
                    (dispatch t ctx ~intf_id ~proc_idx ~payload ~secured:false ~seq:call_id
                       ~trusted:false)
                in
                charge_rt ctx ~label:"Receiver (send result pkt)" (Timing.receiver_send tmg);
                let reply =
                  match outcome with
                  | Ok payload -> encode_dn_reply ~call_id ~ok:true payload
                  | Error e -> encode_dn_reply ~call_id ~ok:false (Bytes.of_string e)
                in
                (try Decnet.send_message conn ctx reply
                 with Rpc_error.Rpc _ -> Decnet.close conn ctx));
              serve ()
          in
          serve ()))

let call_decnet client ctx (b : decnet_binding) ~proc_idx ~args =
  start_call client ctx b.dn_intf ~proc_idx @@ fun t tmg p ->
  charge_rt ctx ~label:"Starter" (Timing.starter tmg);
  let payload = encode_payload t p Marshal.In_call_packet args (payload_bound p) in
  Marshal.charge_args tmg ctx Marshal.Caller_side Marshal.In_call_packet p args;
  charge_rt ctx ~label:"Transporter (send call pkt)" (Timing.transporter_send tmg);
  (* One call at a time on the session. *)
  Cpu_set.yield_cpu ctx (fun () -> Sim.Mutex.lock b.dn_lock);
  Fun.protect
    ~finally:(fun () -> Sim.Mutex.unlock b.dn_lock)
    (fun () ->
      let conn =
        match b.dn_conn with
        | Some c when Decnet.is_open c -> c
        | Some _ | None ->
          let c = Decnet.connect b.dn_ep ctx ~peer:b.dn_peer ~space:b.dn_space () in
          b.dn_conn <- Some c;
          c
      in
      b.dn_next_call <- b.dn_next_call + 1;
      let call_id = b.dn_next_call in
      let fail_transport e =
        b.dn_conn <- None;
        raise e
      in
      try
        Decnet.send_message conn ctx
          (encode_dn_request ~intf_id:b.dn_id ~proc_idx ~call_id payload);
        let rec get_reply () =
          match Decnet.recv_message conn ctx ~timeout:(Time.sec 60) with
          | None -> fail_transport (Rpc_error.Rpc (Rpc_error.Call_failed "decnet: session lost"))
          | Some msg -> (
            match decode_dn_reply msg with
            | Error e -> fail_transport (Rpc_error.Rpc (Rpc_error.Protocol_violation e))
            | Ok (id, _, _) when id <> call_id -> get_reply () (* stale reply *)
            | Ok (_, false, err) ->
              Rpc_error.fail (Rpc_error.Call_failed ("server: " ^ V.to_string err))
            | Ok (_, true, result_payload) ->
              charge_rt ctx ~label:"Transporter (receive result pkt)"
                (Timing.transporter_recv tmg);
              let full =
                Marshal.decode_args (R.of_view result_payload) Marshal.In_result_packet p
              in
              Marshal.charge_args tmg ctx Marshal.Caller_side Marshal.In_result_packet p full;
              charge_rt ctx ~label:"Ender" (Timing.ender tmg);
              Marshal.extract_outs p full)
        in
        get_reply ()
      with Rpc_error.Rpc (Rpc_error.Call_failed _) as e -> fail_transport e)

(* {1 The transport personalities}

   Each in-simulator transport is a module satisfying {!Transport.S}
   over this runtime's [client] and the simulated-CPU context; a
   {!binding} packs one such module with its per-import state.  The
   real-socket backend (library [realnet]) satisfies the same signature
   with its own client/ctx types, outside the simulator. *)

module type SIM_TRANSPORT =
  Transport.S with type client = client and type ctx = Cpu_set.ctx

module Ether_transport = struct
  type binding = ether_binding
  type nonrec client = client
  type ctx = Cpu_set.ctx

  let kind = Transport.Simulated_ether
  let name = "sim-ether"
  let interface b = b.be_intf
  let invoke b client ctx ~proc_idx ~args = call_ether client ctx b ~proc_idx ~args
end

module Local_transport = struct
  type binding = local_binding
  type nonrec client = client
  type ctx = Cpu_set.ctx

  let kind = Transport.Shared_memory
  let name = "local"
  let interface b = b.bl_intf
  let invoke b client ctx ~proc_idx ~args = call_local client ctx b ~proc_idx ~args
end

module Decnet_transport = struct
  type binding = decnet_binding
  type nonrec client = client
  type ctx = Cpu_set.ctx

  let kind = Transport.Session
  let name = "decnet"
  let interface b = b.dn_intf
  let invoke b client ctx ~proc_idx ~args = call_decnet client ctx b ~proc_idx ~args
end

type binding = B : (module SIM_TRANSPORT with type binding = 'b) * 'b -> binding

let bind_ether ?auth t ~dst ~server_space intf ~options =
  ignore t;
  B
    ( (module Ether_transport),
      {
        be_dst = dst;
        be_space = server_space;
        be_intf = intf;
        be_id = Idl.interface_id intf;
        be_opts = options;
        be_auth = auth;
      } )

let bind_local t ~server intf ~options =
  ignore t;
  ignore options;
  B ((module Local_transport), { bl_server = server; bl_intf = intf })

let bind_decnet t ~ep ~peer ~server_space intf =
  B
    ( (module Decnet_transport),
      {
        dn_ep = ep;
        dn_peer = peer;
        dn_space = server_space;
        dn_intf = intf;
        dn_id = Idl.interface_id intf;
        dn_lock = Sim.Mutex.create (engine t);
        dn_conn = None;
        dn_next_call = 0;
      } )

let binding_interface (B ((module T), b)) = T.interface b
let transport_kind (B ((module T), _)) = T.kind
let transport_name (B ((module T), _)) = T.name
let is_local b = transport_kind b = Transport.Shared_memory

(* {1 Export / call} *)

let export ?auth t intf ~impls ~workers =
  let id = Idl.interface_id intf in
  if Hashtbl.mem t.rt_exports id then
    invalid_arg ("Runtime.export: interface already exported: " ^ intf.Idl.intf_name);
  if Array.length impls <> Array.length intf.Idl.procs then
    invalid_arg "Runtime.export: implementation count mismatch";
  if workers < 1 then invalid_arg "Runtime.export: need at least one worker";
  Hashtbl.replace t.rt_exports id { ex_intf = intf; ex_impls = impls; ex_auth = auth };
  let opts = default_options t in
  let mach = machine t in
  for i = 1 to workers do
    Machine.spawn_thread mach
      ~name:(Printf.sprintf "%s-worker%d" intf.Idl.intf_name i)
      (fun () -> Cpu_set.with_cpu (Machine.cpus mach) (fun ctx -> worker_loop t ~opts ctx))
  done;
  Machine.spawn_thread mach
    ~name:(intf.Idl.intf_name ^ "-local-worker")
    (fun () -> Cpu_set.with_cpu (Machine.cpus mach) (fun ctx -> local_worker_loop t ctx))

let is_exported t intf = Hashtbl.mem t.rt_exports (Idl.interface_id intf)

let call (B ((module T), b)) client ctx ~proc_idx ~args = T.invoke b client ctx ~proc_idx ~args

let call_by_name binding client ctx ~proc ~args =
  let intf = binding_interface binding in
  match Idl.find_proc intf proc with
  | idx -> call binding client ctx ~proc_idx:idx ~args
  | exception Not_found ->
    Rpc_error.fail (Rpc_error.Marshal_failure ("no such procedure: " ^ proc))

(* {1 Statistics} *)

let set_execution_probe t probe = t.rt_exec_probe <- probe
let calls_served t = Sim.Stats.Counter.value t.c_served
let retransmissions t = Sim.Stats.Counter.value t.c_retrans
let duplicates_suppressed t = Sim.Stats.Counter.value t.c_dups
let busy_replies t = Sim.Stats.Counter.value t.c_busy
let server_activities t = Hashtbl.length t.rt_acts
