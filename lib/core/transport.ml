(* The transport personality layer.

   The paper's runtime hard-wires three transports (§3.1): the custom
   packet-exchange protocol on the Ethernet, shared memory for a server
   on the same machine, and DECNet sessions for everything else.  Here
   each is a module satisfying one signature, and a binding is an
   existential pack of (transport module, its binding state) — so the
   Starter/Transporter/Ender pipeline of [Runtime.call] is written once
   against the signature and the plumbing underneath is swappable,
   including for backends that do not live inside the simulator at all
   (library [realnet]'s real Unix UDP socket backend). *)

type kind =
  | Simulated_ether  (** the packet-exchange protocol over the simulated wire *)
  | Shared_memory  (** same-address-space hand-off (the paper's local call) *)
  | Session  (** a sequenced connection (DECNet); transport-level reliability *)
  | Real_socket  (** a real kernel socket outside the simulator *)

let kind_to_string = function
  | Simulated_ether -> "sim"
  | Shared_memory -> "local"
  | Session -> "session"
  | Real_socket -> "socket"

module type S = sig
  type binding
  (** One imported interface's transport state: destination addressing,
      retransmission options, connection cache — whatever this
      personality needs to move a call. *)

  type client
  (** The calling thread's RPC identity (activity + sequence state). *)

  type ctx
  (** The execution context calls charge their costs to: a simulated CPU
      for in-simulator transports, unit for real-socket ones. *)

  val kind : kind
  val name : string

  val interface : binding -> Idl.interface

  val invoke :
    binding ->
    client ->
    ctx ->
    proc_idx:int ->
    args:Marshal.value list ->
    Marshal.value list
  (** The Transporter: move the call to the server, run it, return the
      full result values (callers extract the VAR OUT subset).  Raises
      {!Rpc_error.Rpc} on dispatch or communication failure. *)
end
