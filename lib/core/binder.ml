type export_entry = { ee_runtime : Runtime.t; ee_intf : Idl.interface }

type t = {
  table : (string * int, export_entry) Hashtbl.t;
  resolve : caller:Nub.Machine.t -> server:Nub.Machine.t -> Frames.endpoint option;
}

let create ?(resolve = fun ~caller:_ ~server:_ -> None) () =
  { table = Hashtbl.create 16; resolve }

let export ?auth t runtime intf ~impls ~workers =
  let key = (intf.Idl.intf_name, intf.Idl.intf_version) in
  if Hashtbl.mem t.table key then
    invalid_arg
      (Printf.sprintf "Binder.export: %s v%d already exported" intf.Idl.intf_name
         intf.Idl.intf_version);
  Runtime.export ?auth runtime intf ~impls ~workers;
  Hashtbl.replace t.table key { ee_runtime = runtime; ee_intf = intf }

let import t runtime ~name ~version ?options ?auth ?(transport = `Auto) () =
  match Hashtbl.find_opt t.table (name, version) with
  | None ->
    Rpc_error.fail (Rpc_error.Unbound_interface (Printf.sprintf "%s v%d" name version))
  | Some ee ->
    let options =
      match options with
      | Some o -> o
      | None -> Runtime.default_options runtime
    in
    let same_machine = Runtime.machine runtime == Runtime.machine ee.ee_runtime in
    if same_machine then
      Runtime.bind_local runtime ~server:ee.ee_runtime ee.ee_intf ~options
    else begin
      let server_machine = Runtime.machine ee.ee_runtime in
      match transport with
      | `Local ->
        (* Shared memory cannot reach another machine; an explicit
           request for it against a remote exporter is a binding error,
           not something to silently downgrade. *)
        Rpc_error.fail
          (Rpc_error.Unbound_interface
             (Printf.sprintf "%s v%d (local transport requested, but the exporter is remote)"
                name version))
      | `Decnet ->
        (* Make sure the exporter is listening, then bind a session. *)
        Runtime.decnet_listen ee.ee_runtime (Decnet.endpoint (Runtime.node ee.ee_runtime));
        Runtime.bind_decnet runtime
          ~ep:(Decnet.endpoint (Runtime.node runtime))
          ~peer:(Nub.Machine.mac server_machine)
          ~server_space:(Runtime.space ee.ee_runtime)
          ee.ee_intf
      | `Auto | `Udp ->
        let direct =
          { Frames.mac = Nub.Machine.mac server_machine; ip = Nub.Machine.ip server_machine }
        in
        let dst =
          match t.resolve ~caller:(Runtime.machine runtime) ~server:server_machine with
          | Some next_hop -> next_hop
          | None -> direct
        in
        Runtime.bind_ether ?auth runtime ~dst ~server_space:(Runtime.space ee.ee_runtime)
          ee.ee_intf ~options
    end

let exporters t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
