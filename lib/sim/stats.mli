(** Lightweight measurement helpers: counters and summary statistics. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Running summary of a stream of samples (durations, sizes, ...). *)
module Summary : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** [mean t] is 0. when no samples have been observed. *)

  val min : t -> float
  val max : t -> float
  (** [min]/[max] raise [Invalid_argument] when empty. *)

  val stddev : t -> float
  (** Population standard deviation; 0. with fewer than two samples.
      Computed with Welford's online algorithm, so it stays accurate for
      samples with a large common offset (small jitter around a big
      mean), where the sum-of-squares formula cancels catastrophically. *)

  val reset : t -> unit
end

(** Time-weighted average of a step function, e.g. "number of busy CPUs
    over time".  Drives the paper's CPU-utilization figures. *)
module Level : sig
  type t

  val create : initial:float -> at:Time.t -> t

  val set : t -> float -> at:Time.t -> unit
  (** Timestamps are expected to be monotone.  A [set] whose [at] lies
      before the latest recorded change does not rewind the integral:
      the already-accumulated area stands and the new value takes effect
      from the time of the latest change. *)

  val current : t -> float

  val integral : t -> upto:Time.t -> float
  (** [integral t ~upto] is the integral of the level over time, in
      level-seconds, including the segment from the last change to
      [upto].  An [upto] at or before the last change returns the area
      accumulated so far (never less). *)

  val average : t -> upto:Time.t -> float
  (** Integral divided by total observed duration; 0. if no time has
      elapsed. *)
end
