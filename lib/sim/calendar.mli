(** A calendar queue over the shared flat event nodes ({!Evnode}): the
    engine's alternative to the {!Eventq} pairing heap, tuned for the
    dense-timestamp regime that fleet simulations produce.

    Events hash by [time asr shift] into a power-of-two array of
    per-"day" buckets (sorted lists with an O(1) append fast path)
    covering a sliding window from the scan position; events beyond the
    window sit in an overflow pairing heap (same node pool) and migrate
    in as the window slides.  Bucket count and width auto-resize from
    observed event density.

    The [(time, tie, seq)] key is a total order, so the pop sequence is
    byte-identical to the pairing heap's — simulations render the same
    output under either queue (tested in [test/sim] and [test/fleet]). *)

type t

val create : ?pool:Evnode.pool -> unit -> t
(** [pool] (default: a fresh one) is shared with the engine's other
    scheduling structures so nodes flow between them without
    allocation. *)

val pool : t -> Evnode.pool
val size : t -> int
val is_empty : t -> bool

val insert : t -> Evnode.t -> unit
(** [insert t n] files an already-filled node.  [n.seq] must be unique
    across live events for the order to be total. *)

val add : t -> time:Time.t -> tie:int -> seq:int -> (unit -> unit) -> unit
(** Closure-mode insert: allocates a node off the pool and stores [run]
    in it. *)

val min_time : t -> Time.t
(** Time of the next event.
    @raise Invalid_argument when empty. *)

val pop : t -> Evnode.t
(** Removes and returns the minimum node; the caller dispatches its
    payload and recycles it through the pool.
    @raise Invalid_argument when empty. *)

val pop_run : t -> unit -> unit
(** Closure-mode pop: removes the minimum event, recycles the node and
    returns its closure.  Only meaningful for events added with {!add}.
    @raise Invalid_argument when empty. *)
