(* The hot path — schedule, pop, dispatch — is built around the flat
   event nodes of {!Evnode}: an event is a pooled record carrying a
   dispatch index into the engine's handler table plus immediate payload
   slots, so the steady state allocates nothing.  Closures remain as the
   cold-path fallback ({!schedule}) and for irregular callers.

   Two interchangeable queue disciplines order the events: the pairing
   heap ({!Eventq}, the default) and the calendar queue ({!Calendar}).
   Both pop in exact [(time, tie, seq)] order, so the choice is purely a
   performance knob — byte-identical output either way.

   Timeouts ({!suspend_timeout}) arm a node on a hierarchical timer
   wheel ({!Wheel}) instead of the main queue: the retransmit pattern
   cancels nearly every timer, and the wheel makes that an O(1) unlink
   that recycles the node instead of leaving a dead event to sift
   through the queue.  The wheel flushes expiring nodes — original keys
   intact — into the main queue before their deadline, so it is
   invisible to event order. *)

type queue = Heap of Eventq.t | Cal of Calendar.t

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable executed : int;
  mutable suspended : int;
  queue : queue;
  pool : Evnode.pool;
  mutable wheel : Wheel.t option;  (* created on first suspend_timeout *)
  mutable horizon : Time.t;
      (* cached {!Wheel.horizon}: events strictly before it cannot be
         affected by the wheel, so the per-event sync is one compare *)
  mutable enqueue : Evnode.t -> unit;  (* wheel-flush target: the main queue *)
  mutable handlers : (int -> int -> Obj.t -> Obj.t -> unit) array;
  mutable nhandlers : int;
  mutable pending_span : Time.span;
      (* argument drop-box for [on_delay]: the effect handler stashes the
         span here and returns the one preallocated closure, instead of
         allocating a fresh closure per [delay] — the busiest effect in
         every model (cpu charges, wire times) *)
  mutable on_delay : (unit, unit) Effect.Deep.continuation -> unit;
  engine_rng : Rng.t;
  (* [None] = FIFO ties (the historical order); [Some rng] draws a
     random tie key per event, so same-instant events interleave in a
     seed-controlled but arbitrary order.  The rng is separate from
     [engine_rng] so schedule exploration does not perturb model
     randomness (loss processes, idle-load gaps). *)
  tie_rng : Rng.t option;
  engine_trace : Trace.t;
}

(* The one-shot guard [cell] is shared between a waker and any waker
   derived from it (see [suspend_timeout]), so racing resumption paths —
   normal wake vs. timeout — cannot both fire the continuation.  [timer]
   is the armed timeout node, if any, cancelled when the waker fires. *)
type fired_cell = { mutable fired : bool; mutable timer : Evnode.t }

type 'a waker = {
  cell : fired_cell;
  fire : 'a -> unit;
  owner : t;
}

exception Not_in_process

(* Built-in dispatch indices.  [fn_fire]: o0 = the waker's fire closure,
   o1 = the wake value.  [fn_delay]: o0 = the suspended continuation.
   [fn_timeout]: o0 = the waker to time out. *)
let fn_fire = 0
let fn_delay = 1
let fn_timeout = 2

let q_is_empty t =
  match t.queue with Heap q -> Eventq.is_empty q | Cal c -> Calendar.is_empty c

let q_min_time t =
  match t.queue with Heap q -> Eventq.min_time q | Cal c -> Calendar.min_time c

let q_insert t n =
  match t.queue with Heap q -> Eventq.insert q n | Cal c -> Calendar.insert c n

let q_pop t = match t.queue with Heap q -> Eventq.pop q | Cal c -> Calendar.pop c

let now t = t.clock
let rng t = t.engine_rng
let trace t = t.engine_trace
let events_executed t = t.executed
let suspended_count t = t.suspended
let armed_timers t = match t.wheel with None -> 0 | Some wh -> Wheel.size wh
let queue_kind t = match t.queue with Heap _ -> `Heap | Cal _ -> `Calendar

(* Every event — flat or closure — draws its key here, so the
   (tie, seq) stream is a pure function of the schedule-call sequence,
   identical whichever queue or payload style the caller uses. *)
let alloc_keyed t time =
  if Time.compare time t.clock < 0 then invalid_arg "Engine.schedule_at: instant in the past";
  t.seq <- t.seq + 1;
  let tie =
    match t.tie_rng with
    | None -> 0
    | Some rng -> Rng.int rng 0x3fffffff
  in
  Evnode.alloc t.pool ~time ~tie ~seq:t.seq

let schedule_at t time run =
  let n = alloc_keyed t time in
  n.Evnode.run <- run;
  q_insert t n

let schedule t ?(after = Time.zero_span) run =
  if Time.span_is_negative after then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Time.add t.clock after) run

let schedule_fn t ~after ~fn ~a ~b =
  if Time.span_is_negative after then invalid_arg "Engine.schedule_fn: negative delay";
  if fn < 0 || fn >= t.nhandlers then invalid_arg "Engine.schedule_fn: unknown handler";
  let n = alloc_keyed t (Time.add t.clock after) in
  n.Evnode.fn <- fn;
  n.Evnode.i0 <- a;
  n.Evnode.i1 <- b;
  q_insert t n

let grow_handlers t =
  if t.nhandlers = Array.length t.handlers then begin
    let bigger = Array.make (2 * t.nhandlers) t.handlers.(0) in
    Array.blit t.handlers 0 bigger 0 t.nhandlers;
    t.handlers <- bigger
  end

let register_handler t f =
  grow_handlers t;
  let id = t.nhandlers in
  t.handlers.(id) <- (fun a b _ _ -> f a b);
  t.nhandlers <- id + 1;
  id

(* Typed flat scheduling for callers with a boxed payload: registration
   allocates one wrapper and one scheduling closure, after which each
   call moves the payload through a node slot with no allocation. *)
let register t (f : 'a -> int -> unit) =
  grow_handlers t;
  let id = t.nhandlers in
  t.handlers.(id) <- (fun a _ o0 _ -> f (Obj.obj o0) a);
  t.nhandlers <- id + 1;
  fun (x : 'a) (a : int) (after : Time.span) ->
    if Time.span_is_negative after then invalid_arg "Engine.register: negative delay";
    let n = alloc_keyed t (Time.add t.clock after) in
    n.Evnode.fn <- id;
    n.Evnode.i0 <- a;
    n.Evnode.o0 <- Obj.repr x;
    q_insert t n

(* Effects interpreted by the per-process handler.  The engine is carried
   in the payload so a single global handler installation per process
   suffices; the handler checks it owns the effect and re-performs
   otherwise (supporting nested engines, which tests use). *)
type _ Effect.t +=
  | Delay : t * Time.span -> unit Effect.t
  | Suspend : t * ('a waker -> unit) -> 'a Effect.t

let wake w v =
  if w.cell.fired then false
  else begin
    w.cell.fired <- true;
    let eng = w.owner in
    if not (Evnode.is_null w.cell.timer) then begin
      (* O(1) cancel of the pending timeout.  If the node already left
         the wheel for the main queue it stays there as a dead event —
         [fn_timeout] on a fired cell is a no-op. *)
      (match eng.wheel with
      | Some wh -> ignore (Wheel.cancel wh w.cell.timer)
      | None -> ());
      w.cell.timer <- Evnode.null
    end;
    eng.suspended <- eng.suspended - 1;
    let n = alloc_keyed eng eng.clock in
    n.Evnode.fn <- fn_fire;
    n.Evnode.o0 <- Obj.repr w.fire;
    n.Evnode.o1 <- Obj.repr v;
    q_insert eng n;
    true
  end

let waker_dead w = w.cell.fired

let create ?(seed = 42) ?(tie_break = `Fifo) ?(queue = `Heap) () =
  let pool = Evnode.create_pool () in
  let unregistered = fun _ _ _ _ -> assert false in
  let t =
    {
      clock = Time.zero;
      seq = 0;
      executed = 0;
      suspended = 0;
      queue =
        (match queue with
        | `Heap -> Heap (Eventq.create ~pool ())
        | `Calendar -> Cal (Calendar.create ~pool ()));
      pool;
      wheel = None;
      horizon = Time.zero;
      enqueue = ignore;
      handlers = Array.make 8 unregistered;
      nhandlers = 3;
      pending_span = Time.zero_span;
      on_delay = ignore;
      engine_rng = Rng.create ~seed;
      tie_rng =
        (match tie_break with
        | `Fifo -> None
        | `Random -> Some (Rng.create ~seed:(seed lxor 0x5bd1e995)));
      engine_trace = Trace.create ();
    }
  in
  t.enqueue <- (fun n -> q_insert t n);
  t.on_delay <-
    (fun k ->
      let n = alloc_keyed t (Time.add t.clock t.pending_span) in
      n.Evnode.fn <- fn_delay;
      n.Evnode.o0 <- Obj.repr k;
      q_insert t n);
  t.handlers.(fn_fire) <- (fun _ _ o0 o1 -> (Obj.obj o0 : Obj.t -> unit) o1);
  t.handlers.(fn_delay) <-
    (fun _ _ o0 _ ->
      Effect.Deep.continue (Obj.obj o0 : (unit, unit) Effect.Deep.continuation) ());
  t.handlers.(fn_timeout) <-
    (fun _ _ o0 _ ->
      let w : Obj.t waker = Obj.obj o0 in
      (* This very node is being dispatched (and was recycled by [step]);
         drop the cell's reference first so [wake] cannot cancel into a
         reused node. *)
      w.cell.timer <- Evnode.null;
      ignore (wake w (Obj.repr None)));
  t

let wheel_of t =
  match t.wheel with
  | Some wh -> wh
  | None ->
    let wh = Wheel.create ~pool:t.pool () in
    t.wheel <- Some wh;
    wh

let run_process t ?(name = "process") fn =
  let open Effect.Deep in
  let handle_exn exn =
    let bt = Printexc.get_raw_backtrace () in
    (match exn with
     | Stdlib.Exit -> ()
     | _ ->
       Printf.eprintf "[sim] process %S died: %s\n%!" name (Printexc.to_string exn);
       Printexc.raise_with_backtrace exn bt)
  in
  match_with fn ()
    {
      retc = ignore;
      exnc = handle_exn;
      effc =
        (fun (type a) (eff : a Effect.t) :
             (((a, unit) continuation -> unit) option) ->
          match eff with
          | Delay (t', span) when t' == t ->
            (* The preallocated [on_delay] (span via [pending_span]) runs
               synchronously as soon as this returns — nothing can
               overwrite the drop-box in between. *)
            t.pending_span <- span;
            Some t.on_delay
          | Suspend (t', register) when t' == t ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.suspended <- t.suspended + 1;
                let w =
                  {
                    cell = { fired = false; timer = Evnode.null };
                    fire = continue k;
                    owner = t;
                  }
                in
                register w)
          | _ -> None);
    }

let spawn t ?(after = Time.zero_span) ?name fn =
  schedule t ~after (fun () -> run_process t ?name fn)

let delay t span =
  if Time.span_is_negative span then invalid_arg "Engine.delay: negative span";
  try Effect.perform (Delay (t, span)) with Effect.Unhandled _ -> raise Not_in_process

let suspend t register =
  try Effect.perform (Suspend (t, register)) with Effect.Unhandled _ -> raise Not_in_process

let suspend_timeout t ~timeout register =
  if Time.span_is_negative timeout then
    invalid_arg "Engine.suspend_timeout: negative timeout";
  suspend t (fun w ->
      register { cell = w.cell; fire = (fun v -> w.fire (Some v)); owner = t };
      (* Arm the timeout on the wheel under the same key a direct
         schedule would have drawn, so event order is unchanged whether
         the timer ever fires or not. *)
      let n = alloc_keyed t (Time.add t.clock timeout) in
      n.Evnode.fn <- fn_timeout;
      n.Evnode.o0 <- Obj.repr w;
      w.cell.timer <- n;
      if not (Wheel.arm (wheel_of t) n) then q_insert t n)

(* Make every timer due by the next queue event visible to the queue;
   with the queue drained, roll the wheel to its next timer.  After
   this, the queue minimum is the true next event.  The cached
   [t.horizon] makes the common case — next event well below the
   wheel's current slot — a single comparison. *)
let wheel_sync t wh =
  if Wheel.size wh > 0 then
    if q_is_empty t then begin
      Wheel.flush_earliest wh ~insert:t.enqueue;
      t.horizon <- Wheel.horizon wh
    end
    else begin
      let m = q_min_time t in
      if Time.compare m t.horizon >= 0 then begin
        Wheel.advance wh ~upto:m ~insert:t.enqueue;
        t.horizon <- Wheel.horizon wh
      end
    end

let sync t = match t.wheel with None -> () | Some wh -> wheel_sync t wh

(* Copy out and recycle before dispatch: the handler may schedule,
   immediately reusing this node.  Branch on the payload style first so
   each side touches only the fields it dispatches. *)
let[@inline] dispatch t (n : Evnode.t) =
  t.clock <- n.Evnode.time;
  t.executed <- t.executed + 1;
  let fn = n.Evnode.fn in
  if fn >= 0 then begin
    let i0 = n.Evnode.i0 and i1 = n.Evnode.i1 in
    let o0 = n.Evnode.o0 and o1 = n.Evnode.o1 in
    Evnode.recycle t.pool n;
    t.handlers.(fn) i0 i1 o0 o1
  end
  else begin
    let run = n.Evnode.run in
    Evnode.recycle t.pool n;
    run ()
  end

let step t =
  sync t;
  if q_is_empty t then false
  else begin
    dispatch t (q_pop t);
    true
  end

let guard_failed t =
  failwith (Printf.sprintf "Engine.run: exceeded %d events (runaway model?)" t.executed)

(* The run loops are specialized per queue discipline so the hot loop
   calls the queue directly instead of re-matching the variant on every
   event; [max_events] is hoisted to one integer compare. *)
let run_heap t q ~limit =
  let continue_ = ref true in
  while !continue_ do
    if t.executed >= limit then guard_failed t;
    (match t.wheel with
    | None -> ()
    | Some wh ->
      if Wheel.size wh > 0 then
        if Eventq.is_empty q then begin
          Wheel.flush_earliest wh ~insert:t.enqueue;
          t.horizon <- Wheel.horizon wh
        end
        else if Time.compare (Eventq.min_time q) t.horizon >= 0 then begin
          Wheel.advance wh ~upto:(Eventq.min_time q) ~insert:t.enqueue;
          t.horizon <- Wheel.horizon wh
        end);
    if Eventq.is_empty q then continue_ := false
    else dispatch t (Eventq.pop q)
  done

let run_cal t c ~limit =
  let continue_ = ref true in
  while !continue_ do
    if t.executed >= limit then guard_failed t;
    (match t.wheel with
    | None -> ()
    | Some wh ->
      if Wheel.size wh > 0 then
        if Calendar.is_empty c then begin
          Wheel.flush_earliest wh ~insert:t.enqueue;
          t.horizon <- Wheel.horizon wh
        end
        else if Time.compare (Calendar.min_time c) t.horizon >= 0 then begin
          Wheel.advance wh ~upto:(Calendar.min_time c) ~insert:t.enqueue;
          t.horizon <- Wheel.horizon wh
        end);
    if Calendar.is_empty c then continue_ := false
    else dispatch t (Calendar.pop c)
  done

let run ?max_events t =
  let limit = match max_events with None -> max_int | Some n -> n in
  match t.queue with Heap q -> run_heap t q ~limit | Cal c -> run_cal t c ~limit

let run_until ?max_events t stop =
  let limit = match max_events with None -> max_int | Some n -> n in
  let continue_ = ref true in
  while !continue_ do
    if t.executed >= limit then guard_failed t;
    sync t;
    if q_is_empty t then continue_ := false
    else if Time.compare (q_min_time t) stop > 0 then continue_ := false
    else dispatch t (q_pop t)
  done;
  if Time.compare t.clock stop < 0 then t.clock <- stop

let run_while ?max_events t p =
  let limit = match max_events with None -> max_int | Some n -> n in
  let continue_ = ref true in
  while !continue_ do
    if t.executed >= limit then guard_failed t;
    if p () then continue_ := step t else continue_ := false
  done
