type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable executed : int;
  mutable suspended : int;
  queue : Eventq.t;
  engine_rng : Rng.t;
  (* [None] = FIFO ties (the historical order); [Some rng] draws a
     random tie key per event, so same-instant events interleave in a
     seed-controlled but arbitrary order.  The rng is separate from
     [engine_rng] so schedule exploration does not perturb model
     randomness (loss processes, idle-load gaps). *)
  tie_rng : Rng.t option;
  engine_trace : Trace.t;
}

(* The one-shot guard [cell] is shared between a waker and any waker
   derived from it (see [suspend_timeout]), so racing resumption paths —
   normal wake vs. timeout — cannot both fire the continuation. *)
type fired_cell = { mutable fired : bool }

type 'a waker = {
  cell : fired_cell;
  fire : 'a -> unit;
  owner : t;
}

exception Not_in_process

let create ?(seed = 42) ?(tie_break = `Fifo) () =
  {
    clock = Time.zero;
    seq = 0;
    executed = 0;
    suspended = 0;
    queue = Eventq.create ();
    engine_rng = Rng.create ~seed;
    tie_rng =
      (match tie_break with
      | `Fifo -> None
      | `Random -> Some (Rng.create ~seed:(seed lxor 0x5bd1e995)));
    engine_trace = Trace.create ();
  }

let now t = t.clock
let rng t = t.engine_rng
let trace t = t.engine_trace
let events_executed t = t.executed
let suspended_count t = t.suspended

let schedule_at t time run =
  if Time.compare time t.clock < 0 then invalid_arg "Engine.schedule_at: instant in the past";
  t.seq <- t.seq + 1;
  let tie =
    match t.tie_rng with
    | None -> 0
    | Some rng -> Rng.int rng 0x3fffffff
  in
  Eventq.add t.queue ~time ~tie ~seq:t.seq run

let schedule t ?(after = Time.zero_span) run =
  if Time.span_is_negative after then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Time.add t.clock after) run

(* Effects interpreted by the per-process handler.  The engine is carried
   in the payload so a single global handler installation per process
   suffices; the handler checks it owns the effect and re-performs
   otherwise (supporting nested engines, which tests use). *)
type _ Effect.t +=
  | Delay : t * Time.span -> unit Effect.t
  | Suspend : t * ('a waker -> unit) -> 'a Effect.t

let wake w v =
  if w.cell.fired then false
  else begin
    w.cell.fired <- true;
    let eng = w.owner in
    eng.suspended <- eng.suspended - 1;
    schedule eng (fun () -> w.fire v);
    true
  end

let waker_dead w = w.cell.fired

let run_process t ?(name = "process") fn =
  let open Effect.Deep in
  let handle_exn exn =
    let bt = Printexc.get_raw_backtrace () in
    (match exn with
     | Stdlib.Exit -> ()
     | _ ->
       Printf.eprintf "[sim] process %S died: %s\n%!" name (Printexc.to_string exn);
       Printexc.raise_with_backtrace exn bt)
  in
  match_with fn ()
    {
      retc = ignore;
      exnc = handle_exn;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t', span) when t' == t ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t ~after:span (fun () -> continue k ()))
          | Suspend (t', register) when t' == t ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.suspended <- t.suspended + 1;
                let w = { cell = { fired = false }; fire = continue k; owner = t } in
                register w)
          | _ -> None);
    }

let spawn t ?(after = Time.zero_span) ?name fn =
  schedule t ~after (fun () -> run_process t ?name fn)

let delay t span =
  if Time.span_is_negative span then invalid_arg "Engine.delay: negative span";
  try Effect.perform (Delay (t, span)) with Effect.Unhandled _ -> raise Not_in_process

let suspend t register =
  try Effect.perform (Suspend (t, register)) with Effect.Unhandled _ -> raise Not_in_process

let suspend_timeout t ~timeout register =
  suspend t (fun w ->
      register { cell = w.cell; fire = (fun v -> w.fire (Some v)); owner = t };
      schedule t ~after:timeout (fun () -> ignore (wake w None)))

let step t =
  if Eventq.is_empty t.queue then false
  else begin
    t.clock <- Eventq.min_time t.queue;
    t.executed <- t.executed + 1;
    let run = Eventq.pop_run t.queue in
    run ();
    true
  end

let check_guard ~max_events t =
  match max_events with
  | Some n when t.executed >= n ->
    failwith (Printf.sprintf "Engine.run: exceeded %d events (runaway model?)" n)
  | _ -> ()

let run ?max_events t =
  let continue_ = ref true in
  while !continue_ do
    check_guard ~max_events t;
    continue_ := step t
  done

let run_until ?max_events t stop =
  let continue_ = ref true in
  while !continue_ do
    check_guard ~max_events t;
    if Eventq.is_empty t.queue then continue_ := false
    else if Time.compare (Eventq.min_time t.queue) stop > 0 then continue_ := false
    else ignore (step t)
  done;
  if Time.compare t.clock stop < 0 then t.clock <- stop

let run_while ?max_events t p =
  let continue_ = ref true in
  while !continue_ do
    check_guard ~max_events t;
    if p () then continue_ := step t else continue_ := false
  done
