type kind = Service | Queue

type span = {
  cat : string;
  label : string;
  site : string;
  track : string;
  start_at : Time.t;
  stop_at : Time.t;
  kind : kind;
  call : int;
}

let no_call = -1

(* One frame-registry slot: a physical buffer currently carrying a
   traced call.  [None] marks a free slot. *)
type frame_slot = { mutable fs_frame : Bytes.t option; mutable fs_call : int }

type t = {
  mutable on : bool;
  mutable recorded : span list; (* newest first *)
  mutable count : int;
  mutable capacity : int option;
  mutable n_dropped : int;
  mutable next_call : int;
  frames : frame_slot array;
  mutable frame_cursor : int; (* round-robin eviction position *)
  mutable frame_evictions : int;
}

(* The frame registry only ever holds the frames of calls currently in
   flight; a traced window runs a handful of sequential calls, so a
   small fixed ring suffices and keeps the physical-identity scan cheap.
   Registration is O(bound) worst case with no allocation (the old list
   representation paid an O(n) [List.length] plus a rebuilt list per
   call), and evictions — which silently strip an in-flight call of its
   id and degrade attribution — are counted in {!frame_evictions}. *)
let frame_registry_bound = 64

let create ?capacity () =
  {
    on = false;
    recorded = [];
    count = 0;
    capacity;
    n_dropped = 0;
    next_call = 0;
    frames = Array.init frame_registry_bound (fun _ -> { fs_frame = None; fs_call = no_call });
    frame_cursor = 0;
    frame_evictions = 0;
  }

let enabled t = t.on
let set_enabled t b = t.on <- b
let set_capacity t c = t.capacity <- c

let add ?(track = "") ?(kind = Service) ?(call = no_call) t ~cat ~label ~site ~start_at
    ~stop_at =
  if t.on then
    match t.capacity with
    | Some cap when t.count >= cap -> t.n_dropped <- t.n_dropped + 1
    | _ ->
      t.recorded <- { cat; label; site; track; start_at; stop_at; kind; call } :: t.recorded;
      t.count <- t.count + 1

let new_call t =
  if not t.on then no_call
  else begin
    let id = t.next_call in
    t.next_call <- id + 1;
    id
  end

let slot_of t frame =
  let n = Array.length t.frames in
  let rec find i =
    if i >= n then None
    else
      let s = t.frames.(i) in
      match s.fs_frame with
      | Some f when f == frame -> Some s
      | _ -> find (i + 1)
  in
  find 0

let release_slot s =
  s.fs_frame <- None;
  s.fs_call <- no_call

let register_frame t frame ~call =
  if t.on then
    match slot_of t frame with
    | Some s ->
      (* The buffer is already registered.  Overwrite in place — newest
         registration wins — or, when the new send carries no traced
         call, drop the stale entry: a recycled buffer must never keep
         aliasing the call it belonged to in a previous life. *)
      if call >= 0 then s.fs_call <- call else release_slot s
    | None ->
      if call >= 0 then begin
        let n = Array.length t.frames in
        let rec free i = if i >= n then None else
          let s = t.frames.(i) in
          if s.fs_frame = None then Some s else free (i + 1)
        in
        let s =
          match free 0 with
          | Some s -> s
          | None ->
            (* Full: evict round-robin (≈ oldest) and count it — a
               still-in-flight call just lost its id. *)
            let s = t.frames.(t.frame_cursor) in
            t.frame_cursor <- (t.frame_cursor + 1) mod n;
            t.frame_evictions <- t.frame_evictions + 1;
            s
        in
        s.fs_frame <- Some frame;
        s.fs_call <- call
      end

let release_frame t frame =
  if t.on then
    match slot_of t frame with
    | Some s -> release_slot s
    | None -> ()

let frame_call t frame =
  if not t.on then no_call
  else
    match slot_of t frame with
    | Some s -> s.fs_call
    | None -> no_call

let frame_evictions t = t.frame_evictions

let clear t =
  t.recorded <- [];
  t.count <- 0;
  t.n_dropped <- 0;
  t.next_call <- 0;
  Array.iter release_slot t.frames;
  t.frame_cursor <- 0;
  t.frame_evictions <- 0

let spans t = List.rev t.recorded
let length t = t.count
let dropped t = t.n_dropped
let duration s = Time.diff s.stop_at s.start_at

let matches ?site ?cat ?label s =
  let ok filter field =
    match filter with
    | None -> true
    | Some v -> String.equal v field
  in
  ok site s.site && ok cat s.cat && ok label s.label

let total ?site ?cat ?label t =
  List.fold_left
    (fun acc s -> if matches ?site ?cat ?label s then Time.span_add acc (duration s) else acc)
    Time.zero_span t.recorded

let labels ?cat t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if matches ?cat s && not (Hashtbl.mem seen s.label) then begin
        Hashtbl.add seen s.label ();
        Some s.label
      end
      else None)
    (spans t)
