type kind = Service | Queue

type span = {
  cat : string;
  label : string;
  site : string;
  track : string;
  start_at : Time.t;
  stop_at : Time.t;
  kind : kind;
  call : int;
}

let no_call = -1

type t = {
  mutable on : bool;
  mutable recorded : span list; (* newest first *)
  mutable count : int;
  mutable capacity : int option;
  mutable n_dropped : int;
  mutable next_call : int;
  mutable frames : (Bytes.t * int) list; (* newest first, bounded *)
}

(* The frame registry only ever holds the frames of calls currently in
   flight; a traced window runs a handful of sequential calls, so a
   small bound suffices and keeps the physical-identity scan cheap. *)
let frame_registry_bound = 64

let create ?capacity () =
  { on = false; recorded = []; count = 0; capacity; n_dropped = 0; next_call = 0; frames = [] }

let enabled t = t.on
let set_enabled t b = t.on <- b
let set_capacity t c = t.capacity <- c

let add ?(track = "") ?(kind = Service) ?(call = no_call) t ~cat ~label ~site ~start_at
    ~stop_at =
  if t.on then
    match t.capacity with
    | Some cap when t.count >= cap -> t.n_dropped <- t.n_dropped + 1
    | _ ->
      t.recorded <- { cat; label; site; track; start_at; stop_at; kind; call } :: t.recorded;
      t.count <- t.count + 1

let new_call t =
  if not t.on then no_call
  else begin
    let id = t.next_call in
    t.next_call <- id + 1;
    id
  end

let register_frame t frame ~call =
  if t.on && call >= 0 then begin
    let rest =
      if List.length t.frames >= frame_registry_bound then
        List.filteri (fun i _ -> i < frame_registry_bound - 1) t.frames
      else t.frames
    in
    t.frames <- (frame, call) :: rest
  end

let frame_call t frame =
  if not t.on then no_call
  else
    let rec find = function
      | [] -> no_call
      | (f, c) :: rest -> if f == frame then c else find rest
    in
    find t.frames

let clear t =
  t.recorded <- [];
  t.count <- 0;
  t.n_dropped <- 0;
  t.next_call <- 0;
  t.frames <- []

let spans t = List.rev t.recorded
let length t = t.count
let dropped t = t.n_dropped
let duration s = Time.diff s.stop_at s.start_at

let matches ?site ?cat ?label s =
  let ok filter field =
    match filter with
    | None -> true
    | Some v -> String.equal v field
  in
  ok site s.site && ok cat s.cat && ok label s.label

let total ?site ?cat ?label t =
  List.fold_left
    (fun acc s -> if matches ?site ?cat ?label s then Time.span_add acc (duration s) else acc)
    Time.zero_span t.recorded

let labels ?cat t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if matches ?cat s && not (Hashtbl.mem seen s.label) then begin
        Hashtbl.add seen s.label ();
        Some s.label
      end
      else None)
    (spans t)
