(** The discrete-event simulation engine.

    The engine owns a virtual clock and an ordered event queue.  Model
    code runs as {e processes}: ordinary OCaml functions executed under
    an effect handler that interprets {!delay} and {!suspend}.  A process
    therefore reads as straight-line code while the engine interleaves
    many of them in deterministic virtual-time order.

    Determinism: events scheduled for the same instant run in scheduling
    order (FIFO) by default, so a run is a pure function of the seed and
    the model.  With [~tie_break:`Random] same-instant events instead
    run in a seed-controlled random order — still a pure function of the
    seed, but one that explores schedule interleavings the FIFO order
    freezes (the simulation-testing harness in library [check] uses this
    to hunt ordering bugs).

    {!delay} and {!suspend} may only be called from inside a process
    (i.e. from a function started with {!spawn} or from a callback run by
    such a process); calling them elsewhere raises [Not_in_process]. *)

type t

type 'a waker
(** A one-shot resumption capability for a suspended process.  Wakers are
    created by {!suspend}; whoever holds one may resume the process with
    a value of type ['a] exactly once. *)

exception Not_in_process
(** Raised when {!delay} or {!suspend} is performed outside a process. *)

val create :
  ?seed:int -> ?tie_break:[ `Fifo | `Random ] -> ?queue:[ `Heap | `Calendar ] -> unit -> t
(** [create ()] is a fresh engine with its clock at {!Time.zero}.
    [seed] (default 42) seeds the engine's {!Rng.t}.  [tie_break]
    (default [`Fifo]) selects the ordering of events scheduled for the
    same instant: FIFO, or a random order drawn from a dedicated
    generator (seeded from [seed], independent of {!rng}).  [queue]
    (default [`Heap]) selects the event-queue discipline — the
    {!Eventq} pairing heap or the {!Calendar} bucketed queue; both pop
    in exactly the same [(time, tie, seq)] order, so the choice is a
    pure performance knob and the simulation output is byte-identical
    either way. *)

val now : t -> Time.t
(** [now t] is the current virtual instant.  Callable from anywhere. *)

val rng : t -> Rng.t
val trace : t -> Trace.t

val events_executed : t -> int
(** Number of events executed so far; a cheap progress/regression
    metric used by determinism tests. *)

(** {1 Scheduling} *)

val schedule : t -> ?after:Time.span -> (unit -> unit) -> unit
(** [schedule t ~after f] runs callback [f] at [now t + after] (default:
    the current instant, after already-queued events for that instant).
    [f] must not perform process effects; use {!spawn} for that. *)

val spawn : t -> ?after:Time.span -> ?name:string -> (unit -> unit) -> unit
(** [spawn t ~name f] starts [f] as a new process at [now t + after].
    [name] is reported if the process dies with an uncaught exception. *)

(** {2 Closure-free scheduling}

    {!schedule} allocates a closure (and an [option] for [~after]) per
    event; on the hot path that is the {e only} allocation left.  The
    flat API removes it: a caller registers a handler once and then
    schedules events that carry just the handler's table index and
    small payload slots inside the recycled queue node — zero bytes
    allocated per event in steady state.  Handler registrations are
    engine-local and permanent. *)

val register_handler : t -> (int -> int -> unit) -> int
(** [register_handler t f] adds [f] to the engine's dispatch table and
    returns its index for {!schedule_fn}.  [f a b] receives the two
    payload ints of the event. *)

val schedule_fn : t -> after:Time.span -> fn:int -> a:int -> b:int -> unit
(** [schedule_fn t ~after ~fn ~a ~b] runs handler [fn] with payload
    [(a, b)] at [now t + after].  Allocates nothing in steady state
    (the event node comes off the engine's freelist).
    @raise Invalid_argument on a negative delay or an unregistered
    [fn]. *)

val register : t -> ('a -> int -> unit) -> 'a -> int -> Time.span -> unit
(** [register t f] is the flat API for handlers with a boxed payload:
    it returns a scheduling function [sched] such that [sched x a d]
    runs [f x a] at [now t + d].  Registration allocates once; each
    [sched] call moves [x] through a slot of the recycled event node
    with no per-event allocation. *)

(** {1 Process operations} *)

val delay : t -> Time.span -> unit
(** [delay t d] suspends the calling process for [d] of virtual time.
    [delay t Time.zero_span] yields to other events at the same instant.
    @raise Invalid_argument if [d] is negative. *)

val suspend : t -> ('a waker -> unit) -> 'a
(** [suspend t register] suspends the calling process and hands a waker
    for it to [register]; the process resumes when somebody calls
    {!wake} on it, returning the value passed to {!wake}. *)

val suspend_timeout : t -> timeout:Time.span -> ('a waker -> unit) -> 'a option
(** Like {!suspend} but resumes with [None] after [timeout] if the waker
    has not fired by then.  The timeout is armed on the engine's timer
    wheel, so the common case — the waker fires first — cancels it with
    an O(1) unlink instead of leaving a dead event in the queue; either
    way the observable event order is exactly as if the timeout had
    been scheduled on the main queue. *)

val wake : 'a waker -> 'a -> bool
(** [wake w v] resumes the suspended process with value [v].  Returns
    [false] (and does nothing) if the waker has already fired — e.g. the
    suspension already timed out. *)

val waker_dead : _ waker -> bool
(** [waker_dead w] is [true] once [w] has fired; a queue holding wakers
    can use this to skip stale entries without consuming a wake. *)

(** {1 Running} *)

val run : ?max_events:int -> t -> unit
(** [run t] executes events until the queue is empty.  [max_events]
    guards against runaway models (default: unlimited);
    @raise Failure if the guard trips. *)

val run_until : ?max_events:int -> t -> Time.t -> unit
(** [run_until t stop] executes events with time <= [stop], then sets
    the clock to [stop].  Returns early (with the clock at [stop]) if
    the queue drains first — model worlds contain daemon processes
    (device engines, service threads) that wait forever by design, so
    a drained queue is quiescence, not necessarily deadlock; use
    {!suspended_count} to distinguish them in tests. *)

val run_while : ?max_events:int -> t -> (unit -> bool) -> unit
(** [run_while t p] executes events while [p ()] holds and the queue is
    non-empty.  The predicate is evaluated before each event — use with
    a completion {!Gate} to run a workload to its finish amid daemon
    processes. *)

val suspended_count : t -> int
(** Number of currently suspended processes (waiting on a waker). *)

val armed_timers : t -> int
(** Number of timeout timers currently armed on the engine's wheel
    (pending {!suspend_timeout} deadlines not yet fired, cancelled or
    flushed to the main queue). *)

val queue_kind : t -> [ `Heap | `Calendar ]
(** Which event-queue discipline this engine was created with. *)
