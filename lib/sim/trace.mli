(** Span tracing for latency accounting.

    The paper's Tables VI and VII are a per-step breakdown of where the
    time of one RPC goes.  To regenerate them, model code records a
    {e span} — a labelled interval of virtual time — for every fast-path
    step it executes.  Experiments then group spans by label and sum
    them, reproducing the paper's accounting from an actual simulated
    call rather than from constants.

    Spans additionally carry a {!kind} (service time vs queueing delay)
    and a per-call id, so the attribution engine ({!Obs.Attrib}) can
    rebuild each call's causal timeline and check that the per-stage
    accounting conserves the measured end-to-end latency.  Call ids
    propagate across the wire by frame identity: the sender registers
    the frame bytes it hands to the controller ({!register_frame}), and
    the receive path recovers the id from the same physical buffer
    ({!frame_call}).

    Tracing is off by default (the throughput experiments execute
    millions of steps); experiments enable it around a single call.
    Every entry point here is a strict no-op (and allocates nothing)
    while tracing is disabled, keeping the untraced path byte-identical
    to a build without tracing at all. *)

type kind =
  | Service  (** time a resource spent working on the call *)
  | Queue  (** time the call waited for a busy resource *)

type span = {
  cat : string;  (** coarse grouping, e.g. ["send+receive"] or ["runtime"] *)
  label : string;  (** the paper's step name, e.g. ["wakeup RPC thread"] *)
  site : string;  (** machine/entity the time was spent on *)
  track : string;
      (** sub-entity within the site the time was spent on — a CPU
          ("cpu0"), the controller ("deqna"), the wire ("wire"); [""]
          when unattributed.  Drives per-track lanes in the Perfetto
          export ({!Obs.Trace_export}). *)
  start_at : Time.t;
  stop_at : Time.t;
  kind : kind;  (** service time or queueing delay; default [Service] *)
  call : int;
      (** id of the RPC this interval belongs to, allocated by
          {!new_call}; {!no_call} when the time is not attributable to
          any one call (idle load, background drains) *)
}

val no_call : int
(** The sentinel call id ([-1]) marking unattributed spans. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained spans; omitted (the
    default) means unbounded, the historical behaviour. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_capacity : t -> int option -> unit
(** Bounds (or, with [None], unbounds) retention for subsequent {!add}s;
    already-recorded spans are kept even if they exceed a new bound. *)

val add :
  ?track:string ->
  ?kind:kind ->
  ?call:int ->
  t ->
  cat:string ->
  label:string ->
  site:string ->
  start_at:Time.t ->
  stop_at:Time.t ->
  unit
(** Records a span; a no-op while tracing is disabled.  When a capacity
    is set and already reached, the span is discarded and counted in
    {!dropped} — the earliest spans are retained, which is what a
    latency accounting of the first call(s) wants.  [kind] defaults to
    [Service] and [call] to {!no_call}, so pre-existing call sites need
    no change. *)

val new_call : t -> int
(** Allocates the next call id for the traced window; returns {!no_call}
    while tracing is disabled.  Ids restart from 0 at every {!clear}, so
    a traced window's calls are numbered [0 .. n-1] deterministically. *)

val register_frame : t -> Bytes.t -> call:int -> unit
(** Associates the physical identity of [frame] with [call], so the
    receive path (which sees the same buffer object) can recover the
    call id via {!frame_call}.  A no-op while tracing is disabled.  The
    registry is a fixed-size ring sized for the handful of in-flight
    frames a traced window produces; registering an already-present
    buffer overwrites its entry in place (newest registration wins), and
    registering one with [call = no_call] releases any stale entry — so
    a buffer recycled from a previous call can never alias that call's
    id.  When the ring is full the (approximately) oldest entry is
    evicted and counted in {!frame_evictions}. *)

val release_frame : t -> Bytes.t -> unit
(** Drops the registry entry for this buffer, if any: call when a frame
    buffer is returned to a freelist while tracing is on, so its next
    life starts unattributed.  A no-op while tracing is disabled. *)

val frame_call : t -> Bytes.t -> int
(** The call id registered for this frame object (physical equality), or
    {!no_call} if unknown or tracing is disabled. *)

val frame_evictions : t -> int
(** Frame-registry entries evicted because the ring was full — each one
    an in-flight call whose spans may since attribute to {!no_call}.
    Reset by {!clear}. *)

val clear : t -> unit
(** Drops all recorded spans, resets the {!dropped} counter, the call-id
    allocator, and the frame registry. *)

val spans : t -> span list
(** All recorded spans, in recording order. *)

val length : t -> int
(** Number of retained spans. *)

val dropped : t -> int
(** Spans discarded because the capacity bound was reached. *)

val duration : span -> Time.span

val total : ?site:string -> ?cat:string -> ?label:string -> t -> Time.span
(** [total t ~cat ~label ~site] sums the duration of spans matching all
    the given filters (an omitted filter matches everything). *)

val labels : ?cat:string -> t -> string list
(** Distinct labels in recording order of first appearance. *)
