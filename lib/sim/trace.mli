(** Span tracing for latency accounting.

    The paper's Tables VI and VII are a per-step breakdown of where the
    time of one RPC goes.  To regenerate them, model code records a
    {e span} — a labelled interval of virtual time — for every fast-path
    step it executes.  Experiments then group spans by label and sum
    them, reproducing the paper's accounting from an actual simulated
    call rather than from constants.

    Tracing is off by default (the throughput experiments execute
    millions of steps); experiments enable it around a single call. *)

type span = {
  cat : string;  (** coarse grouping, e.g. ["send+receive"] or ["runtime"] *)
  label : string;  (** the paper's step name, e.g. ["wakeup RPC thread"] *)
  site : string;  (** machine/entity the time was spent on *)
  track : string;
      (** sub-entity within the site the time was spent on — a CPU
          ("cpu0"), the controller ("deqna"), the wire ("wire"); [""]
          when unattributed.  Drives per-track lanes in the Perfetto
          export ({!Obs.Trace_export}). *)
  start_at : Time.t;
  stop_at : Time.t;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained spans; omitted (the
    default) means unbounded, the historical behaviour. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_capacity : t -> int option -> unit
(** Bounds (or, with [None], unbounds) retention for subsequent {!add}s;
    already-recorded spans are kept even if they exceed a new bound. *)

val add :
  ?track:string ->
  t ->
  cat:string ->
  label:string ->
  site:string ->
  start_at:Time.t ->
  stop_at:Time.t ->
  unit
(** Records a span; a no-op while tracing is disabled.  When a capacity
    is set and already reached, the span is discarded and counted in
    {!dropped} — the earliest spans are retained, which is what a
    latency accounting of the first call(s) wants. *)

val clear : t -> unit
(** Drops all recorded spans and resets the {!dropped} counter. *)

val spans : t -> span list
(** All recorded spans, in recording order. *)

val length : t -> int
(** Number of retained spans. *)

val dropped : t -> int
(** Spans discarded because the capacity bound was reached. *)

val duration : span -> Time.span

val total : ?site:string -> ?cat:string -> ?label:string -> t -> Time.span
(** [total t ~cat ~label ~site] sums the duration of spans matching all
    the given filters (an omitted filter matches everything). *)

val labels : ?cat:string -> t -> string list
(** Distinct labels in recording order of first appearance. *)
