(* The flat event node shared by every scheduling structure in the
   simulator: the pairing-heap event queue, the calendar queue, and the
   retransmit timer wheel.

   Historically every scheduled event was a closure, so the busiest path
   in the simulator — schedule, pop, fire, reschedule — allocated a
   closure (and often an [option] wrapper for the delay) per event even
   though the queue node itself was recycled.  The flat node carries the
   ordering key, a small payload (two immediate ints and two GC'd slots)
   and a {e dispatch index} into the owning engine's handler table; a
   steady-state schedule/fire cycle touches nothing but recycled nodes
   and so allocates zero bytes.  Irregular or cold callers still pass a
   closure ([fn = closure_fn], closure in [run]).

   The two link fields are overloaded by the owning structure:

   - pairing heap: [link0] = leftmost child, [link1] = next sibling;
   - calendar queue: [link1] = next in the bucket's sorted list;
   - timer wheel: [link0] = prev, [link1] = next in the slot's circular
     doubly-linked list (so cancellation is an O(1) unlink);
   - freelist: [link1] = next free node.

   A node moves between structures without copying: the wheel hands an
   expiring timer node straight to the event queue.  A single sentinel
   [null] stands for "no node" everywhere, avoiding an [option] per
   link; nothing ever writes to the sentinel's fields. *)

(* Field order is deliberate: the ordering key and the two links — all
   a heap meld, a calendar bucket scan or a wheel unlink ever touch —
   share the node's first cache line; the payload fields live in the
   second and are read once per event at dispatch. *)
type t = {
  mutable time : Time.t;
  mutable tie : int;
  mutable seq : int;
  mutable link0 : t;
  mutable link1 : t;
  mutable fn : int;  (* handler-table index, or [closure_fn] for [run] *)
  mutable i0 : int;
  mutable i1 : int;
  mutable o0 : Obj.t;
  mutable o1 : Obj.t;
  mutable run : unit -> unit;
  mutable home : int;  (* wheel level while armed; meaningless elsewhere *)
  mutable in_wheel : bool;
}

let closure_fn = -1
let no_obj = Obj.repr ()

let rec null =
  {
    time = Time.zero;
    tie = 0;
    seq = 0;
    fn = closure_fn;
    i0 = 0;
    i1 = 0;
    o0 = no_obj;
    o1 = no_obj;
    run = ignore;
    home = 0;
    in_wheel = false;
    link0 = null;
    link1 = null;
  }

let[@inline] is_null n = n == null

(* Sentinel head of a circular doubly-linked wheel slot: links point at
   itself, never recycled, never dispatched. *)
let sentinel () =
  let rec s =
    {
      time = Time.zero;
      tie = 0;
      seq = 0;
      fn = closure_fn;
      i0 = 0;
      i1 = 0;
      o0 = no_obj;
      o1 = no_obj;
      run = ignore;
      home = 0;
      in_wheel = false;
      link0 = s;
      link1 = s;
    }
  in
  s

type pool = { mutable free : t; mutable free_len : int }

(* Bounding the freelist keeps a burst of simultaneous events from
   pinning memory forever; 1024 covers the steady state of every model
   in the repo including a fleet's worth of armed retransmit timers. *)
let max_free = 1024

let create_pool () = { free = null; free_len = 0 }

let alloc pool ~time ~tie ~seq =
  if is_null pool.free then
    {
      time;
      tie;
      seq;
      fn = closure_fn;
      i0 = 0;
      i1 = 0;
      o0 = no_obj;
      o1 = no_obj;
      run = ignore;
      home = 0;
      in_wheel = false;
      link0 = null;
      link1 = null;
    }
  else begin
    (* Free nodes keep [link0] null (recycle invariant), so only the
       freelist chain in [link1] needs clearing. *)
    let n = pool.free in
    pool.free <- n.link1;
    pool.free_len <- pool.free_len - 1;
    n.time <- time;
    n.tie <- tie;
    n.seq <- seq;
    n.link1 <- null;
    n
  end

(* Scrub the GC'd slots before recycling so a parked free node cannot
   keep a closure (and whatever it captured) alive.  The [o0]/[o1]
   scrubs store a literal immediate so the compiler emits a plain store
   (no write-barrier call); [link0] is the caller's job — every path
   that hands a node here (queue pop, wheel unlink) has already cleared
   it — keeping this, the hottest scrub in the engine, at exactly two
   barriered stores ([run] and the freelist push). *)
let[@inline] recycle pool n =
  n.fn <- closure_fn;
  n.o0 <- Obj.repr 0;
  n.o1 <- Obj.repr 0;
  n.run <- ignore;
  n.in_wheel <- false;
  if pool.free_len < max_free then begin
    n.link1 <- pool.free;
    pool.free <- n;
    pool.free_len <- pool.free_len + 1
  end
  else n.link1 <- null

(* The engine's (time, tie, seq) total order: seq is unique across live
   events, so equal keys never happen and pop order is independent of
   queue internals. *)
let[@inline] leq a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c < 0
  else if a.tie <> b.tie then a.tie < b.tie
  else a.seq <= b.seq
