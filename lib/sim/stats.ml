module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Summary = struct
  (* Welford's online algorithm: the naive sum-of-squares formula loses
     all significant digits when the spread is small relative to the
     magnitude (e.g. microsecond jitter on samples near 1e9). *)
  type t = {
    mutable n : int;
    mutable total : float;
    mutable mean_ : float;
    mutable m2 : float;  (* sum of squared deviations from the mean *)
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; total = 0.; mean_ = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

  let observe t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let d = x -. t.mean_ in
    t.mean_ <- t.mean_ +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mean_));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0. else t.mean_

  let min t =
    if t.n = 0 then invalid_arg "Stats.Summary.min: empty";
    t.lo

  let max t =
    if t.n = 0 then invalid_arg "Stats.Summary.max: empty";
    t.hi

  let stddev t =
    if t.n < 2 then 0.
    else
      let var = t.m2 /. float_of_int t.n in
      if var <= 0. then 0. else sqrt var

  let reset t =
    t.n <- 0;
    t.total <- 0.;
    t.mean_ <- 0.;
    t.m2 <- 0.;
    t.lo <- infinity;
    t.hi <- neg_infinity
end

module Level = struct
  type t = {
    start_at : Time.t;
    mutable level : float;
    mutable changed_at : Time.t;
    mutable area : float;  (* level-seconds accumulated up to [changed_at] *)
  }

  let create ~initial ~at = { start_at = at; level = initial; changed_at = at; area = 0. }

  (* An out-of-order timestamp (earlier than the last change) must not
     rewind the integral: the segment already accumulated stands, and
     the change takes effect at [changed_at]. *)
  let accumulate t ~upto =
    if Time.compare upto t.changed_at > 0 then begin
      t.area <- t.area +. (t.level *. Time.to_sec (Time.diff upto t.changed_at));
      t.changed_at <- upto
    end

  let set t v ~at =
    accumulate t ~upto:at;
    t.level <- v

  let current t = t.level

  let integral t ~upto =
    if Time.compare upto t.changed_at <= 0 then t.area
    else t.area +. (t.level *. Time.to_sec (Time.diff upto t.changed_at))

  let average t ~upto =
    let dur = Time.to_sec (Time.diff upto t.start_at) in
    if dur <= 0. then 0. else integral t ~upto /. dur
end
