(** The engine's event queue: an intrusive pairing heap whose nodes are
    the events, ordered by [(time, tie, seq)] exactly like
    {!Engine}'s historical [event_leq] — the key is a total order (the
    sequence number is unique), so the pop sequence, and therefore every
    simulation output, is independent of heap internals.

    Compared with the general-purpose {!Heap} it saves the per-event
    tree cell and list cons, and recycles popped nodes through a
    freelist: scheduling in steady state allocates nothing but the
    caller's closure. *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool

val add : t -> time:Time.t -> tie:int -> seq:int -> (unit -> unit) -> unit
(** [add t ~time ~tie ~seq run] inserts an event.  [seq] must be unique
    across live events for the order to be total. *)

val min_time : t -> Time.t
(** Time of the next event.  Meaningless when {!is_empty}; callers must
    check first. *)

val pop_run : t -> unit -> unit
(** Removes the minimum event and returns its closure (which the caller
    then runs).  The node is recycled eagerly, so the returned closure
    may itself [add] without growing the heap's memory.
    @raise Invalid_argument when empty. *)
