(** The engine's default event queue: an intrusive pairing heap whose
    nodes are the shared flat events ({!Evnode}), ordered by
    [(time, tie, seq)] — the key is a total order (the sequence number
    is unique), so the pop sequence, and therefore every simulation
    output, is independent of heap internals.

    Scheduling in steady state allocates nothing: nodes recycle through
    the pool's freelist and the payload is closure-free (a handler index
    plus immediate slots) unless the caller opts into the closure API.

    The {!Calendar} queue is the drop-in alternative for the
    dense-timestamp regime; both pop in exactly the same order. *)

type t

val create : ?pool:Evnode.pool -> unit -> t
(** [pool] (default: a fresh one) is the node freelist — the engine
    shares one pool between its queue and its timer wheel so nodes flow
    between them without allocation. *)

val pool : t -> Evnode.pool
val size : t -> int
val is_empty : t -> bool

val insert : t -> Evnode.t -> unit
(** [insert t n] links an already-filled node into the heap.  [n.seq]
    must be unique across live events for the order to be total. *)

val add : t -> time:Time.t -> tie:int -> seq:int -> (unit -> unit) -> unit
(** Closure-mode insert: allocates a node off the pool and stores [run]
    in it. *)

val min_time : t -> Time.t
(** Time of the next event.  Meaningless when {!is_empty}; callers must
    check first. *)

val pop : t -> Evnode.t
(** Removes and returns the minimum node; the caller dispatches its
    payload and recycles it through the pool.
    @raise Invalid_argument when empty. *)

val pop_run : t -> unit -> unit
(** Closure-mode pop: removes the minimum event, recycles the node and
    returns its closure (which the caller then runs).  Only meaningful
    for events added with {!add}.
    @raise Invalid_argument when empty. *)
