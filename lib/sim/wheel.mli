(** A hierarchical timer wheel (4 levels x 256 slots, 65.5 us level-0
    granularity) for timers that are nearly always cancelled — the
    retransmit-timeout pattern.  Armed nodes live in circular
    doubly-linked slot lists, so {!cancel} is an O(1) unlink; expiring
    nodes are flushed — original [(time, tie, seq)] keys intact — into
    the engine's main queue before their deadline arrives, so the wheel
    never affects pop order and determinism is preserved exactly. *)

type t

val create : ?pool:Evnode.pool -> unit -> t
(** [pool] (default: a fresh one) is shared with the engine's event
    queue so nodes flow between wheel and queue without allocation. *)

val pool : t -> Evnode.pool
val size : t -> int
val is_empty : t -> bool

val horizon : t -> Time.t
(** No armed timer can expire before this instant.  {!advance} with
    [upto] below it is a guaranteed no-op — the engine caches the value
    so the per-event wheel check is a single comparison, refreshing it
    whenever an [advance]/[flush_earliest] moves the wheel. *)

val arm : t -> Evnode.t -> bool
(** [arm t n] files the node under its deadline [n.time].  Returns
    [false] — caller must schedule on the main queue instead — when the
    deadline's wheel slot has already been flushed (deadline below
    wheel granularity). *)

val cancel : t -> Evnode.t -> bool
(** O(1) unlink-and-recycle of an armed timer.  Returns [false] (and
    does nothing) if the node is no longer in the wheel — i.e. it was
    already flushed into the main queue, where it will pop as a dead
    event. *)

val advance : t -> upto:Time.t -> insert:(Evnode.t -> unit) -> unit
(** Flush every timer whose wheel slot starts at or before [upto] into
    the main queue via [insert].  The engine calls this before
    executing events up to [upto], so a timer is always on the main
    queue before its deadline is reached. *)

val flush_earliest : t -> insert:(Evnode.t -> unit) -> unit
(** Roll the wheel forward until at least one timer lands in the main
    queue (or the wheel empties).  Used when the main queue runs dry
    while timers remain armed. *)
