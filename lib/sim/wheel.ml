(* A hierarchical timer wheel for the retransmit-timeout pattern: arm a
   timer, almost always cancel it before it fires.

   The main event queue is the wrong home for such timers — a cancelled
   timer left in a heap is a dead node that sifts through every
   subsequent operation, and fleets arm one 50 ms retransmit timer per
   outstanding call.  Here a timer lives in a circular doubly-linked
   slot list, so cancellation is an O(1) unlink that recycles the node
   immediately.

   Four levels of 256 slots; level 0 slots are 2^16 ns (65.5 us) wide,
   each higher level 256x coarser, covering ~78 hours; beyond that a
   timer clamps into the farthest level-3 slot and re-arms on cascade.
   [cur0] is the absolute level-0 slot index: every slot before it has
   been flushed.  When the engine is about to execute events up to time
   T it first {!advance}s the wheel, which flushes each expiring slot's
   nodes — with their original (time, tie, seq) keys — into the main
   queue via the [insert] callback; the queue orders them exactly where
   a directly-scheduled event would have popped, so the wheel is
   invisible to determinism.  A timer whose deadline falls below wheel
   granularity ({!arm} returns [false]) is scheduled directly on the
   main queue by the caller.

   Cascading: when [cur0] crosses a multiple of 256 the next level-1
   slot has arrived and its nodes re-arm (landing at level 0 or, for
   clamped nodes, high again), higher levels first at coarser
   boundaries.  Occupancy counts let {!advance} jump empty stretches a
   256-slot block at a time instead of probing 15,000 empty slots per
   millisecond. *)

type node = Evnode.t

let nslots = 256
let smask = nslots - 1
let level0_shift = 16

type t = {
  pool : Evnode.pool;
  slots : node array array;  (* 4 levels x 256 circular-list sentinels *)
  counts : int array;  (* live nodes per level *)
  mutable cur0 : int;  (* absolute level-0 slot; all earlier slots flushed *)
  mutable size : int;
}

let create ?pool () =
  let pool = match pool with Some p -> p | None -> Evnode.create_pool () in
  {
    pool;
    slots = Array.init 4 (fun _ -> Array.init nslots (fun _ -> Evnode.sentinel ()));
    counts = Array.make 4 0;
    cur0 = 0;
    size = 0;
  }

let pool t = t.pool
let size t = t.size
let is_empty t = t.size = 0

(* No armed node can expire before this instant (every slot below [cur0]
   has been flushed, and a node arms only at or after [cur0]).  The
   engine caches it so the per-event wheel check is one comparison. *)
let horizon t = Time.of_ns_since_start (t.cur0 lsl level0_shift)

(* Append before the sentinel (slot order is arrival order; the main
   queue re-establishes key order at flush time). *)
let link_tail (s : node) (n : node) =
  let last = s.Evnode.link0 in
  n.Evnode.link0 <- last;
  n.Evnode.link1 <- s;
  last.Evnode.link1 <- n;
  s.Evnode.link0 <- n

let arm t (n : node) =
  let tns = Time.since_start_ns n.Evnode.time in
  if tns asr level0_shift < t.cur0 then false
  else begin
    (* Lowest level whose slot for [n] has not yet arrived-or-passed;
       placement guarantees the slot cascades (or flushes) strictly
       before the deadline. *)
    let level = ref (-1) in
    let l = ref 0 in
    while !level < 0 && !l < 4 do
      if (tns asr (level0_shift + (8 * !l))) - (t.cur0 asr (8 * !l)) < nslots
      then level := !l;
      incr l
    done;
    let bucket =
      if !level >= 0 then (tns asr (level0_shift + (8 * !level))) land smask
      else begin
        (* Beyond the horizon: park in the farthest level-3 slot and
           re-examine on cascade. *)
        level := 3;
        ((t.cur0 asr 24) + smask) land smask
      end
    in
    link_tail t.slots.(!level).(bucket) n;
    n.Evnode.home <- !level;
    n.Evnode.in_wheel <- true;
    t.counts.(!level) <- t.counts.(!level) + 1;
    t.size <- t.size + 1;
    true
  end

let cancel t (n : node) =
  if not n.Evnode.in_wheel then false
  else begin
    let prev = n.Evnode.link0 and next = n.Evnode.link1 in
    prev.Evnode.link1 <- next;
    next.Evnode.link0 <- prev;
    n.Evnode.in_wheel <- false;
    n.Evnode.link0 <- Evnode.null;  (* recycle expects a cleared link0 *)
    t.counts.(n.Evnode.home) <- t.counts.(n.Evnode.home) - 1;
    t.size <- t.size - 1;
    Evnode.recycle t.pool n;
    true
  end

let unlink_all t l b each =
  let s = t.slots.(l).(b) in
  let cur = ref s.Evnode.link1 in
  while !cur != s do
    let n = !cur in
    cur := n.Evnode.link1;
    n.Evnode.in_wheel <- false;
    n.Evnode.link0 <- Evnode.null;
    n.Evnode.link1 <- Evnode.null;
    t.counts.(l) <- t.counts.(l) - 1;
    t.size <- t.size - 1;
    each n
  done;
  s.Evnode.link0 <- s;
  s.Evnode.link1 <- s

(* A higher-level slot's time has arrived: its nodes re-arm and land at
   a lower level (never back in the same slot — a node with its level-l
   slot current always fits level l-1). *)
let cascade t l b = unlink_all t l b (fun n -> ignore (arm t n))

(* Called just after [cur0] advanced to a multiple of 256: higher levels
   first, so their nodes trickle down into the level-1 slot that is
   about to cascade. *)
let do_cascades t =
  let c1 = t.cur0 asr 8 in
  if c1 land smask = 0 then begin
    let c2 = c1 asr 8 in
    if c2 land smask = 0 then cascade t 3 ((c2 asr 8) land smask);
    cascade t 2 (c2 land smask)
  end;
  cascade t 1 (c1 land smask)

(* Flush the current level-0 slot into the main queue, advance one
   slot, cascade on block boundaries.  Returns how many nodes moved. *)
let step1 t ~insert =
  let moved = ref 0 in
  unlink_all t 0 (t.cur0 land smask) (fun n ->
      insert n;
      incr moved);
  t.cur0 <- t.cur0 + 1;
  if t.cur0 land smask = 0 then do_cascades t;
  !moved

(* Jump empty level-0 stretches block-by-block (cascading at each
   boundary) instead of probing slots one at a time.  [limit] bounds the
   jump (exclusive target). *)
let skip_empty t ~limit =
  if t.size = 0 then begin
    if t.cur0 < limit then t.cur0 <- limit
  end
  else
    while t.counts.(0) = 0 && t.cur0 < limit do
      let boundary = (t.cur0 lor smask) + 1 in
      if boundary <= limit then begin
        t.cur0 <- boundary;
        do_cascades t
      end
      else t.cur0 <- limit
    done

let advance t ~upto ~insert =
  let target = Time.since_start_ns upto asr level0_shift in
  let limit = target + 1 in
  skip_empty t ~limit;
  while t.cur0 <= target && t.size > 0 do
    ignore (step1 t ~insert);
    skip_empty t ~limit
  done

(* The main queue ran dry but timers remain: roll the wheel forward
   until at least one lands.  Termination: level-0 occupancy means a
   node within the next 256 slots; otherwise each boundary jump
   cascades and strictly advances [cur0]. *)
let flush_earliest t ~insert =
  let moved = ref 0 in
  while !moved = 0 && t.size > 0 do
    while t.counts.(0) = 0 && t.size > 0 do
      t.cur0 <- (t.cur0 lor smask) + 1;
      do_cascades t
    done;
    if t.size > 0 then moved := !moved + step1 t ~insert
  done
