(** The flat event node shared by the pairing-heap event queue
    ({!Eventq}), the calendar queue ({!Calendar}) and the retransmit
    timer wheel ({!Wheel}).

    A node carries the engine's [(time, tie, seq)] ordering key, a
    closure-free payload (a handler-table index [fn] plus two immediate
    ints and two GC'd slots), and two intrusive links whose meaning
    depends on the structure currently holding the node.  Nodes are
    recycled through a bounded per-engine {!pool}, so steady-state
    scheduling allocates nothing; cold callers set [fn = closure_fn]
    and put a closure in [run] instead. *)

type t = {
  mutable time : Time.t;
  mutable tie : int;
  mutable seq : int;
  mutable link0 : t;  (** heap child / wheel prev *)
  mutable link1 : t;  (** heap sibling / calendar next / wheel next / freelist *)
  mutable fn : int;  (** handler-table index, or {!closure_fn} *)
  mutable i0 : int;
  mutable i1 : int;
  mutable o0 : Obj.t;
  mutable o1 : Obj.t;
  mutable run : unit -> unit;  (** dispatched when [fn = closure_fn] *)
  mutable home : int;  (** wheel level while armed *)
  mutable in_wheel : bool;
      (** [true] while linked into a wheel slot — the state in which an
          O(1) cancel unlink is legal *)
}
(** Field order is deliberate: the ordering key and the two links — all
    a heap meld, a calendar scan or a wheel unlink ever touch — share
    the node's first cache line; the payload is read once at dispatch. *)

val closure_fn : int
(** The [fn] value meaning "dispatch the [run] closure". *)

val no_obj : Obj.t
(** The scrubbed value of the [o0]/[o1] slots (the unit value). *)

val null : t
(** The shared "no node" sentinel.  Never written to, so it is safe to
    share between engines in different domains. *)

val is_null : t -> bool

val sentinel : unit -> t
(** A fresh self-linked circular-list head for a wheel slot. *)

type pool

val create_pool : unit -> pool

val alloc : pool -> time:Time.t -> tie:int -> seq:int -> t
(** A node off the freelist (or fresh when the list is empty) with the
    key filled in, [fn = closure_fn], payload scrubbed, links null. *)

val recycle : pool -> t -> unit
(** Scrubs the GC'd slots and parks the node on the freelist (bounded;
    excess nodes are dropped for the GC). *)

val leq : t -> t -> bool
(** The engine's [(time, tie, seq)] total order. *)
