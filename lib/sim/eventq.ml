(* An intrusive pairing heap specialised to engine events.

   The general-purpose {!Heap} builds a fresh [Node (x, children)] cell
   and a list cons per insertion, on top of the event record itself —
   three allocations on the busiest path in the simulator.  Here the
   heap node IS the event: one flat record carrying the ordering key
   (time, tie, seq), the closure to run, and the mutable child/sibling
   links of a pairing heap.  Popped nodes go on a small freelist, so a
   steady-state simulation schedules events with no heap-structure
   allocation at all.

   A sentinel [null] node stands for the absent child/sibling, avoiding
   an [option] (and its allocation) per link.  Nothing ever writes to
   the sentinel's fields, so the single shared sentinel is safe to use
   from concurrently running engines in different domains. *)

type node = {
  mutable n_time : Time.t;
  mutable n_tie : int;
  mutable n_seq : int;
  mutable n_run : unit -> unit;
  mutable n_child : node;
  mutable n_sibling : node;
}

let rec null =
  { n_time = Time.zero; n_tie = 0; n_seq = 0; n_run = ignore; n_child = null; n_sibling = null }

let is_null n = n == null

type t = {
  mutable root : node;
  mutable size : int;
  mutable free : node;
  mutable free_len : int;
}

(* Bounding the freelist keeps a burst of simultaneous events from
   pinning memory forever; 256 covers the steady state of every model
   in the repo. *)
let max_free = 256

let create () = { root = null; size = 0; free = null; free_len = 0 }

let size t = t.size
let is_empty t = t.size = 0

let leq a b =
  let c = Time.compare a.n_time b.n_time in
  if c <> 0 then c < 0
  else if a.n_tie <> b.n_tie then a.n_tie < b.n_tie
  else a.n_seq <= b.n_seq

(* Meld two roots (neither null, neither with a live sibling link): the
   loser becomes the winner's leftmost child. *)
let meld a b =
  if leq a b then begin
    b.n_sibling <- a.n_child;
    a.n_child <- b;
    a
  end
  else begin
    a.n_sibling <- b.n_child;
    b.n_child <- a;
    b
  end

let add t ~time ~tie ~seq run =
  let n =
    if is_null t.free then
      { n_time = time; n_tie = tie; n_seq = seq; n_run = run; n_child = null; n_sibling = null }
    else begin
      let n = t.free in
      t.free <- n.n_sibling;
      t.free_len <- t.free_len - 1;
      n.n_time <- time;
      n.n_tie <- tie;
      n.n_seq <- seq;
      n.n_run <- run;
      n.n_sibling <- null;
      n
    end
  in
  t.root <- (if is_null t.root then n else meld t.root n);
  t.size <- t.size + 1

let min_time t = t.root.n_time
(* Undefined when empty (returns the sentinel's time); callers check
   {!is_empty} first, as the engine's run loops already must. *)

(* Two-pass pairing over a sibling list, iteratively: pass one melds
   adjacent pairs and chains the winners in reverse (reusing the
   sibling links), pass two folds them right-to-left.  No recursion, no
   allocation. *)
let combine_siblings first =
  if is_null first then null
  else begin
    let acc = ref null in
    let cur = ref first in
    while not (is_null !cur) do
      let a = !cur in
      let b = a.n_sibling in
      if is_null b then begin
        a.n_sibling <- !acc;
        acc := a;
        cur := null
      end
      else begin
        let next = b.n_sibling in
        a.n_sibling <- null;
        b.n_sibling <- null;
        let m = meld a b in
        m.n_sibling <- !acc;
        acc := m;
        cur := next
      end
    done;
    let root = ref !acc in
    let rest = ref !root.n_sibling in
    !root.n_sibling <- null;
    while not (is_null !rest) do
      let n = !rest in
      rest := n.n_sibling;
      n.n_sibling <- null;
      root := meld !root n
    done;
    !root
  end

(* Remove the minimum and run its closure.  The node is recycled (and
   its closure reference dropped) before the closure runs, so the
   closure is free to schedule new events that reuse it.
   @raise Invalid_argument when empty. *)
let pop_run t =
  if t.size = 0 then invalid_arg "Eventq.pop_run: empty";
  let n = t.root in
  t.root <- combine_siblings n.n_child;
  t.size <- t.size - 1;
  let run = n.n_run in
  n.n_run <- ignore;
  n.n_child <- null;
  if t.free_len < max_free then begin
    n.n_sibling <- t.free;
    t.free <- n;
    t.free_len <- t.free_len + 1
  end
  else n.n_sibling <- null;
  run
