(* An intrusive pairing heap over the shared flat event nodes
   ({!Evnode}): the heap node IS the event — one record carrying the
   ordering key (time, tie, seq), the closure-free payload, and the
   mutable child/sibling links.  Popped nodes are recycled through the
   pool's freelist, so a steady-state simulation schedules events with
   no allocation at all.

   [link0] = leftmost child, [link1] = next sibling; the shared
   {!Evnode.null} sentinel stands for the absent link, avoiding an
   [option] (and its allocation) per link. *)

type node = Evnode.t

let is_null = Evnode.is_null
let null = Evnode.null

type t = {
  mutable root : node;
  mutable size : int;
  pool : Evnode.pool;
}

let create ?pool () =
  let pool = match pool with Some p -> p | None -> Evnode.create_pool () in
  { root = null; size = 0; pool }

let pool t = t.pool
let size t = t.size
let is_empty t = t.size = 0
let leq = Evnode.leq

(* Meld two roots (neither null, neither with a live sibling link): the
   loser becomes the winner's leftmost child. *)
let[@inline] meld (a : node) (b : node) =
  if leq a b then begin
    b.Evnode.link1 <- a.Evnode.link0;
    a.Evnode.link0 <- b;
    a
  end
  else begin
    a.Evnode.link1 <- b.Evnode.link0;
    b.Evnode.link0 <- a;
    b
  end

let insert t (n : node) =
  (* Callers hand over nodes with clean links (fresh from [Evnode.alloc],
     popped, or unlinked by the wheel), so no re-scrub here: redundant
     pointer stores cost a write-barrier call each on the hottest path. *)
  t.root <- (if is_null t.root then n else meld t.root n);
  t.size <- t.size + 1

let add t ~time ~tie ~seq run =
  let n = Evnode.alloc t.pool ~time ~tie ~seq in
  n.Evnode.run <- run;
  insert t n

let min_time t = t.root.Evnode.time
(* Undefined when empty (returns the sentinel's time); callers check
   {!is_empty} first, as the engine's run loops already must. *)

(* Two-pass pairing over a sibling list, iteratively: pass one melds
   adjacent pairs and chains the winners in reverse (reusing the
   sibling links), pass two folds them right-to-left.  No recursion, no
   allocation. *)
let combine_siblings (first : node) =
  if is_null first then null
  else begin
    let acc = ref null in
    let cur = ref first in
    while not (is_null !cur) do
      let a = !cur in
      let b = a.Evnode.link1 in
      if is_null b then begin
        a.Evnode.link1 <- !acc;
        acc := a;
        cur := null
      end
      else begin
        let next = b.Evnode.link1 in
        a.Evnode.link1 <- null;
        b.Evnode.link1 <- null;
        let m = meld a b in
        m.Evnode.link1 <- !acc;
        acc := m;
        cur := next
      end
    done;
    let root = ref !acc in
    let rest = ref !root.Evnode.link1 in
    !root.Evnode.link1 <- null;
    while not (is_null !rest) do
      let n = !rest in
      rest := n.Evnode.link1;
      n.Evnode.link1 <- null;
      root := meld !root n
    done;
    !root
  end

(* Remove and return the minimum node.  The caller dispatches its
   payload and recycles it (the engine copies the payload to locals,
   recycles, then dispatches, so the handler is free to schedule new
   events that reuse the node).
   @raise Invalid_argument when empty. *)
let pop t =
  if t.size = 0 then invalid_arg "Eventq.pop: empty";
  let n = t.root in
  t.root <- combine_siblings n.Evnode.link0;
  t.size <- t.size - 1;
  n.Evnode.link0 <- null;
  n.Evnode.link1 <- null;
  n

(* Closure-mode convenience for tests and cold callers: pop the minimum,
   recycle it, return its closure. *)
let pop_run t =
  let n = pop t in
  let run = n.Evnode.run in
  Evnode.recycle t.pool n;
  run
