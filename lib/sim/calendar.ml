(* A calendar queue over the shared flat event nodes ({!Evnode}): an
   alternative to the {!Eventq} pairing heap for the dense-timestamp
   regime that fleet simulations produce, selected per engine.

   Think of a desk calendar: an array of [nslots] buckets, each one
   "day" of [2^shift] nanoseconds wide, covering a sliding window of
   one "year" ([nslots] consecutive days) starting at the scan position
   [cur].  An event lands in bucket [(time >> shift) land mask]; within
   the window the mapping day->bucket is a bijection, so each bucket
   holds events of exactly one day, kept as a list sorted by the full
   (time, tie, seq) key (with a tail pointer, because the overwhelmingly
   common insert — same instant, rising seq — is an append).  Events
   beyond the window go to an overflow pairing heap (sharing the same
   node pool) and migrate into buckets as the window slides over them.

   Popping scans forward from [cur] for the first non-empty bucket —
   O(1) when timestamps are dense, which is the regime this queue is
   for.  If the whole window is empty, all remaining events are in
   overflow and the scan position jumps straight to the overflow
   minimum's day.

   The key is a total order, so the pop sequence is byte-identical to
   the pairing heap's whatever the bucket math does; the engine's
   determinism tests and the model property in [test/sim] hold the two
   structures (and a sorted list) to the same sequence.

   Resize policy: the bucket array doubles when occupancy exceeds two
   events per bucket and halves below one per eight (within
   [64, 65536]); on each resize the bucket width is re-derived from the
   observed event density — twice the mean inter-event gap, clamped to
   [2^6, 2^24] ns and rounded to a power of two — so a year neither
   collapses onto one bucket nor spreads one event per thousand days.
   Rebuilds cost O(events) and are amortized by the doubling. *)

type node = Evnode.t

let is_null = Evnode.is_null
let null = Evnode.null
let leq = Evnode.leq

let min_slots = 64
let max_slots = 65536
let min_shift = 6
let max_shift = 24
let default_shift = 12 (* 4.1 us days: the fleet charge/delay scale *)

type t = {
  pool : Evnode.pool;
  mutable heads : node array;
  mutable tails : node array;
  mutable nslots : int;
  mutable mask : int;
  mutable shift : int;
  mutable cur : int;  (* absolute day index (time asr shift) of the scan *)
  mutable ndirect : int;
  overflow : Eventq.t;
  mutable floor : Time.t;  (* last popped instant; seeds [cur] on resize *)
  mutable resizing : bool;
}

let create ?pool () =
  let pool = match pool with Some p -> p | None -> Evnode.create_pool () in
  {
    pool;
    heads = Array.make 256 null;
    tails = Array.make 256 null;
    nslots = 256;
    mask = 255;
    shift = default_shift;
    cur = 0;
    ndirect = 0;
    overflow = Eventq.create ~pool ();
    floor = Time.zero;
    resizing = false;
  }

let pool t = t.pool
let size t = t.ndirect + Eventq.size t.overflow
let is_empty t = size t = 0

let slot_of t (n : node) = Time.since_start_ns n.Evnode.time asr t.shift
let slot_of_time t time = Time.since_start_ns time asr t.shift

(* Sorted insert into bucket [b]; append is O(1). *)
let bucket_insert t b (n : node) =
  let head = t.heads.(b) in
  if is_null head then begin
    n.Evnode.link1 <- null;
    t.heads.(b) <- n;
    t.tails.(b) <- n
  end
  else if leq t.tails.(b) n then begin
    n.Evnode.link1 <- null;
    t.tails.(b).Evnode.link1 <- n;
    t.tails.(b) <- n
  end
  else if leq n head then begin
    n.Evnode.link1 <- head;
    t.heads.(b) <- n
  end
  else begin
    let prev = ref head in
    while not (is_null !prev.Evnode.link1) && leq !prev.Evnode.link1 n do
      prev := !prev.Evnode.link1
    done;
    n.Evnode.link1 <- !prev.Evnode.link1;
    !prev.Evnode.link1 <- n;
    if is_null n.Evnode.link1 then t.tails.(b) <- n
  end

(* The scan position must move back: an insert landed on a day before
   [cur] (possible after the scan jumped ahead over an empty window and
   the engine then scheduled something nearer).  Lower [cur] and evict
   direct events that fall off the far end of the shrunk-back window. *)
let rebase t s =
  let limit = s + t.nslots in
  for b = 0 to t.nslots - 1 do
    let keep_head = ref null and keep_tail = ref null in
    let cur = ref t.heads.(b) in
    while not (is_null !cur) do
      let n = !cur in
      cur := n.Evnode.link1;
      if slot_of t n >= limit then begin
        n.Evnode.link1 <- null;
        t.ndirect <- t.ndirect - 1;
        Eventq.insert t.overflow n
      end
      else begin
        n.Evnode.link1 <- null;
        if is_null !keep_head then keep_head := n else !keep_tail.Evnode.link1 <- n;
        keep_tail := n
      end
    done;
    t.heads.(b) <- !keep_head;
    t.tails.(b) <- !keep_tail
  done;
  t.cur <- s

let rec insert_direct t (n : node) =
  let s = slot_of t n in
  if s < t.cur then rebase t s;
  if s - t.cur < t.nslots then begin
    bucket_insert t (s land t.mask) n;
    t.ndirect <- t.ndirect + 1
  end
  else Eventq.insert t.overflow n

(* Pull overflow events whose day has entered the window. *)
and migrate t =
  while
    (not (Eventq.is_empty t.overflow))
    && slot_of_time t (Eventq.min_time t.overflow) - t.cur < t.nslots
  do
    insert_direct t (Eventq.pop t.overflow)
  done

let next_pow2 x =
  let r = ref 1 in
  while !r < x do
    r := !r * 2
  done;
  !r

(* Re-derive the bucket width from observed density and rebuild.  Only
   the direct events are rehashed; overflow migrates lazily. *)
let resize t ~nslots =
  t.resizing <- true;
  (* Collect direct events into one list, tracking span and count. *)
  let all = ref null in
  let tmin = ref max_int and tmax = ref min_int in
  for b = 0 to t.nslots - 1 do
    let cur = ref t.heads.(b) in
    while not (is_null !cur) do
      let n = !cur in
      cur := n.Evnode.link1;
      let ns = Time.since_start_ns n.Evnode.time in
      if ns < !tmin then tmin := ns;
      if ns > !tmax then tmax := ns;
      n.Evnode.link1 <- !all;
      all := n
    done;
    t.heads.(b) <- null;
    t.tails.(b) <- null
  done;
  let count = t.ndirect in
  t.ndirect <- 0;
  if count > 1 then begin
    let gap = max 1 ((!tmax - !tmin) / (count - 1)) in
    let width = min (1 lsl max_shift) (max (1 lsl min_shift) (next_pow2 (2 * gap))) in
    let shift = ref 0 in
    while 1 lsl !shift < width do
      incr shift
    done;
    t.shift <- !shift
  end;
  if nslots <> t.nslots then begin
    t.nslots <- nslots;
    t.mask <- nslots - 1;
    t.heads <- Array.make nslots null;
    t.tails <- Array.make nslots null
  end;
  t.cur <-
    (let fl = Time.since_start_ns t.floor asr t.shift in
     if count > 0 then min fl (!tmin asr t.shift) else fl);
  let cur = ref !all in
  while not (is_null !cur) do
    let n = !cur in
    cur := n.Evnode.link1;
    n.Evnode.link1 <- null;
    insert_direct t n
  done;
  migrate t;
  t.resizing <- false

let maybe_resize t =
  if not t.resizing then
    if t.ndirect > 2 * t.nslots && t.nslots < max_slots then
      resize t ~nslots:(t.nslots * 2)
    else if t.ndirect < t.nslots / 8 && t.nslots > min_slots then
      resize t ~nslots:(t.nslots / 2)

let insert t (n : node) =
  n.Evnode.link0 <- null;
  n.Evnode.link1 <- null;
  insert_direct t n;
  maybe_resize t

let add t ~time ~tie ~seq run =
  let n = Evnode.alloc t.pool ~time ~tie ~seq in
  n.Evnode.run <- run;
  insert t n

(* Advance the scan to the first non-empty bucket and return its head,
   leaving it in place.  Requires the queue non-empty. *)
let find_min t =
  migrate t;
  if t.ndirect = 0 then begin
    (* Whole window empty: jump the scan to the overflow minimum's day. *)
    t.cur <- slot_of_time t (Eventq.min_time t.overflow);
    migrate t
  end;
  let head = ref t.heads.(t.cur land t.mask) in
  while is_null !head do
    t.cur <- t.cur + 1;
    migrate t;
    head := t.heads.(t.cur land t.mask)
  done;
  !head

let min_time t =
  if is_empty t then invalid_arg "Calendar.min_time: empty";
  (find_min t).Evnode.time

let pop t =
  if is_empty t then invalid_arg "Calendar.pop: empty";
  let n = find_min t in
  let b = t.cur land t.mask in
  t.heads.(b) <- n.Evnode.link1;
  if is_null n.Evnode.link1 then t.tails.(b) <- null;
  n.Evnode.link1 <- null;
  t.ndirect <- t.ndirect - 1;
  t.floor <- n.Evnode.time;
  maybe_resize t;
  n

let pop_run t =
  let n = pop t in
  let run = n.Evnode.run in
  Evnode.recycle t.pool n;
  run
