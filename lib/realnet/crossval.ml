(* Cross-validation: the calibrated simulator next to a real kernel.

   Every row times a piece of the production code path in real
   wall-clock time on this host — the same [Marshal] encoders, the same
   [Wire.Checksum], the same [Frames.build]/[Frames.parse], and whole
   RPCs over the loopback socket backend — and prints the simulator's
   calibrated MicroVAX II constant beside it.  The point is not that
   the numbers match (this host is three to four orders of magnitude
   faster than 1987 hardware); it is that the *same work* runs in both
   worlds: identical wire bytes, identical validation, so the
   calibrated constants attach to code that demonstrably performs the
   operation they price. *)

module Marshal = Rpc.Marshal
module Idl = Rpc.Idl
module Ti = Workload.Test_interface

let test_impls () =
  let n = Array.length Ti.interface.Idl.procs in
  let impls = Array.make n (fun _ -> ([] : Marshal.value list)) in
  impls.(Ti.null_idx) <- (fun _ -> []);
  impls.(Ti.max_result_idx) <- (fun _ -> [ Marshal.V_bytes (Ti.pattern Ti.buffer_bytes) ]);
  impls.(Ti.max_arg_idx) <-
    (fun args ->
      match args with
      | [ Marshal.V_bytes b ] when Bytes.equal b (Ti.pattern Ti.buffer_bytes) -> []
      | _ -> invalid_arg "MaxArg: payload does not match the test pattern");
  impls.(Ti.get_data_idx) <-
    (fun args ->
      match args with
      | Marshal.V_int len :: _ -> [ Marshal.V_bytes (Ti.pattern (Int32.to_int len)) ]
      | _ -> invalid_arg "GetData: bad arguments");
  impls

let wall () = Unix.gettimeofday ()

let time_us ~iters f =
  let t0 = wall () in
  for _ = 1 to iters do
    f ()
  done;
  (wall () -. t0) /. float_of_int iters *. 1e6

let cell us = Report.Table.cell_f ~decimals:1 us

let speedup ~calibrated ~measured =
  if measured <= 0. || calibrated <= 0. then "-"
  else Printf.sprintf "%.0fx" (calibrated /. measured)

let row label ~measured ~calibrated =
  [ label; cell measured; cell calibrated; speedup ~calibrated ~measured ]

let table ?(calls = 200) ~sim_null_us ~sim_maxarg_us () =
  if not (Udp_socket.available ()) then
    Error "loopback UDP sockets unavailable in this environment"
  else begin
    let intf = Ti.interface in
    match Udp_socket.start_server ~intf ~impls:(test_impls ()) () with
    | Error e -> Error ("cannot start loopback server: " ^ e)
    | Ok server ->
      Fun.protect ~finally:(fun () -> Udp_socket.stop_server server) @@ fun () ->
      (match Udp_socket.connect ~port:(Udp_socket.server_port server) ~intf () with
      | Error e -> Error ("cannot connect: " ^ e)
      | Ok c ->
        Fun.protect ~finally:(fun () -> Udp_socket.close c) @@ fun () ->
        let tmg = Udp_socket.timing () in
        let us span = Sim.Time.to_us span in
        let arg1440 = Ti.pattern Ti.buffer_bytes in
        let maxarg_args = [ Marshal.V_bytes arg1440 ] in
        for _ = 1 to 5 do
          ignore (Udp_socket.call c ~proc_idx:Ti.null_idx ~args:[])
        done;
        let null_us =
          time_us ~iters:calls (fun () ->
              ignore (Udp_socket.call c ~proc_idx:Ti.null_idx ~args:[]))
        in
        let maxarg_us =
          time_us ~iters:calls (fun () ->
              ignore (Udp_socket.call c ~proc_idx:Ti.max_arg_idx ~args:maxarg_args))
        in
        (* Micro-timings of the shared encoders, outside the socket. *)
        let iters = 2000 in
        let p_maxarg = intf.Idl.procs.(Ti.max_arg_idx) in
        let encode () =
          let w = Wire.Bytebuf.Writer.create 2048 in
          Marshal.encode_args w Marshal.In_call_packet p_maxarg maxarg_args;
          Wire.Bytebuf.Writer.contents w
        in
        let encoded = encode () in
        let enc_us = time_us ~iters (fun () -> ignore (encode ())) in
        let dec_us =
          time_us ~iters (fun () ->
              ignore
                (Marshal.decode_args
                   (Wire.Bytebuf.Reader.of_bytes encoded)
                   Marshal.In_call_packet p_maxarg))
        in
        let frame74 = Bytes.init 74 (fun i -> Char.chr (i land 0xff)) in
        let frame1514 = Bytes.init 1514 (fun i -> Char.chr (i * 7 land 0xff)) in
        let ck74_us =
          time_us ~iters (fun () -> ignore (Wire.Checksum.checksum frame74 ~pos:0 ~len:74))
        in
        let ck1514_us =
          time_us ~iters (fun () ->
              ignore (Wire.Checksum.checksum frame1514 ~pos:0 ~len:1514))
        in
        let hdr =
          {
            Rpc.Proto.ptype = Rpc.Proto.Call;
            please_ack = false;
            no_frag_ack = false;
            secured = false;
            activity =
              {
                Rpc.Proto.Activity.caller_ip = Udp_socket.caller_endpoint.Rpc.Frames.ip;
                caller_space = 1;
                thread = 1;
              };
            seq = 1;
            server_space = 1;
            interface_id = Idl.interface_id intf;
            proc_idx = Ti.max_arg_idx;
            frag_idx = 0;
            frag_count = 1;
            data_len = 0;
            checksum = 0;
          }
        in
        let payload_len = min (Bytes.length encoded) (Hw.Timing.max_payload_bytes tmg) in
        let build () =
          Rpc.Frames.build tmg ~src:Udp_socket.caller_endpoint
            ~dst:Udp_socket.server_endpoint ~hdr ~payload:encoded ~payload_pos:0
            ~payload_len
        in
        let built = build () in
        let build_us = time_us ~iters (fun () -> ignore (build ())) in
        let parse_us =
          time_us ~iters (fun () ->
              match Rpc.Frames.parse tmg built with
              | Ok _ -> ()
              | Error e -> failwith ("crossval: built frame does not parse: " ^ e))
        in
        let rows =
          [
            row "Null() RPC round-trip" ~measured:null_us ~calibrated:sim_null_us;
            row "MaxArg(1440) RPC round-trip" ~measured:maxarg_us ~calibrated:sim_maxarg_us;
            row "marshal MaxArg argument (encode)" ~measured:enc_us
              ~calibrated:
                (us
                   (Marshal.cost tmg Marshal.Caller_side Marshal.In_call_packet
                      (List.hd p_maxarg.Idl.args) (Marshal.V_bytes arg1440)));
            row "unmarshal MaxArg argument (decode)" ~measured:dec_us
              ~calibrated:
                (us
                   (Marshal.cost tmg Marshal.Server_side Marshal.In_call_packet
                      (List.hd p_maxarg.Idl.args) (Marshal.V_bytes arg1440)));
            row "UDP checksum, 74-byte frame" ~measured:ck74_us
              ~calibrated:(us (Hw.Timing.udp_checksum tmg ~bytes:74));
            row "UDP checksum, 1514-byte frame" ~measured:ck1514_us
              ~calibrated:(us (Hw.Timing.udp_checksum tmg ~bytes:1514));
            row "build full Call frame (headers)" ~measured:build_us
              ~calibrated:(us (Hw.Timing.finish_udp_header tmg));
            row "parse + validate received frame" ~measured:parse_us
              ~calibrated:(us (Hw.Timing.rx_demux tmg));
          ]
        in
        Ok
          (Report.Table.make ~id:"crossval"
             ~title:
               (Printf.sprintf
                  "Measured (loopback UDP, this host) vs calibrated (MicroVAX II), %d calls"
                  calls)
             ~columns:[ "operation"; "measured us"; "calibrated us"; "model/host" ]
             ~notes:
               [
                 "The measured column times the production encoders and whole RPCs over a \
                  real loopback UDP socket in wall-clock time; the calibrated column is the \
                  simulator's Table VI/II-V constant for the same operation on 1987 hardware.";
                 "The frames on the loopback wire are byte-identical to the simulator's: \
                  both sides are produced by Frames.build and validated by Frames.parse \
                  (checksums verified for real).";
                 "Round-trip rows include kernel scheduling and socket syscalls; micro rows \
                  time the shared encoder functions alone.";
                 "Decode of a VAR IN argument is free in the cost model (single copy, \
                  charged at the caller); the measured column shows the real work the model \
                  prices at zero on this path.";
               ]
             rows))
  end
