(* The fourth transport: a real Unix UDP socket on the loopback
   interface.

   Every datagram's payload is a complete Ethernet/IPv4/UDP/RPC frame
   produced by [Frames.build] — byte for byte the image the simulator
   puts on its wire (and the image the wire fuzzer mutates) — tunnelled
   through a kernel socket.  The receive side runs the same
   [Frames.parse], software checksum verification included, so the
   loopback path drives the production encoders end to end against a
   real network stack: packet loss, reordering and timing are the
   kernel's, not the simulator's.

   The exchange protocol mirrors the simulated transporter: stop-and-
   wait fragments acknowledged individually, a final fragment answered
   by the result, retransmission with [please_ack] on silence, and
   per-activity duplicate suppression with a cached last result. *)

module V = Wire.Bytebuf.View
module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module Frames = Rpc.Frames
module Proto = Rpc.Proto
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal

exception Call_failed of string

let timing () = Hw.Timing.create Hw.Config.default

(* The same stations and addresses the simulated world uses, so headers
   (and therefore frames) are directly comparable. *)
let caller_endpoint =
  { Frames.mac = Net.Mac.of_station 1; ip = Net.Ipv4.Addr.of_string "16.0.0.1" }

let server_endpoint =
  { Frames.mac = Net.Mac.of_station 2; ip = Net.Ipv4.Addr.of_string "16.0.0.2" }

let available () =
  match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
  | exception Unix.Unix_error _ -> false
  | sock ->
    let ok =
      match Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close sock with Unix.Unix_error _ -> ());
    ok

type impl = Marshal.value list -> Marshal.value list

(* {1 Shared frame plumbing} *)

let payload_bound p =
  List.fold_left (fun acc a -> acc + Idl.wire_size_bound a.Idl.ty) 0 p.Idl.args

let encode_payload p dir values =
  let w = W.create (max 16 (payload_bound p)) in
  Marshal.encode_args w dir p values;
  W.contents w

let fragment_count tmg len =
  let m = Hw.Timing.max_payload_bytes tmg in
  if len = 0 then 1 else (len + m - 1) / m

let header ?(please_ack = false) ~act ~seq ~server_space ~intf_id ~proc_idx ~frag_idx
    ~frag_count ptype =
  {
    Proto.ptype;
    please_ack;
    no_frag_ack = false;
    secured = false;
    activity = act;
    seq;
    server_space;
    interface_id = intf_id;
    proc_idx;
    frag_idx;
    frag_count;
    (* both overwritten by [Frames.build] *)
    data_len = 0;
    checksum = 0;
  }

let send_to sock addr frame =
  ignore (Unix.sendto sock frame 0 (Bytes.length frame) [] addr)

(* A receive that treats the socket timeout as "nothing arrived". *)
let recv_frame sock buf =
  match Unix.recvfrom sock buf 0 (Bytes.length buf) [] with
  | 0, _ -> None
  | n, addr -> Some (Bytes.sub buf 0 n, addr)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ETIMEDOUT), _, _) -> None

(* {1 Server} *)

module Act_tbl = Hashtbl.Make (Proto.Activity)

type act_state = {
  mutable as_seq : int;  (** call being assembled *)
  mutable as_frag_count : int option;
  as_frags : (int, Bytes.t) Hashtbl.t;
  mutable as_done_seq : int;  (** last completed call *)
  mutable as_result : Bytes.t list;  (** its result frames, for duplicates *)
}

type server = {
  s_sock : Unix.file_descr;
  s_port : int;
  s_intf : Idl.interface;
  s_impls : impl array;
  s_tmg : Hw.Timing.t;
  s_stop : bool Atomic.t;
  s_rejected : int Atomic.t;
  mutable s_thread : Thread.t option;
}

let server_port s = s.s_port
let server_rejected s = Atomic.get s.s_rejected

let build_result_frames s ~act ~seq ~server_space ~intf_id ~proc_idx payload =
  let tmg = s.s_tmg in
  let m = Hw.Timing.max_payload_bytes tmg in
  let len = Bytes.length payload in
  let n = fragment_count tmg len in
  List.init n (fun i ->
      let pos = i * m in
      let flen = min m (len - pos) in
      Frames.build tmg ~src:server_endpoint ~dst:caller_endpoint
        ~hdr:
          (header ~act ~seq ~server_space ~intf_id ~proc_idx ~frag_idx:i ~frag_count:n
             Proto.Result)
        ~payload ~payload_pos:pos ~payload_len:flen)

let build_error_frame s ~act ~seq ~server_space ~intf_id ~proc_idx msg =
  let tmg = s.s_tmg in
  let m = Hw.Timing.max_payload_bytes tmg in
  let payload = Bytes.of_string msg in
  let len = min m (Bytes.length payload) in
  Frames.build tmg ~src:server_endpoint ~dst:caller_endpoint
    ~hdr:
      (header ~act ~seq ~server_space ~intf_id ~proc_idx ~frag_idx:0 ~frag_count:1
         Proto.Error_reply)
    ~payload ~payload_pos:0 ~payload_len:len

let dispatch s (h : Proto.header) payload =
  if h.Proto.interface_id <> Idl.interface_id s.s_intf then
    Error (Printf.sprintf "no interface %ld exported" h.Proto.interface_id)
  else if h.Proto.proc_idx < 0 || h.Proto.proc_idx >= Array.length s.s_intf.Idl.procs then
    Error (Printf.sprintf "bad procedure index %d" h.Proto.proc_idx)
  else begin
    let p = s.s_intf.Idl.procs.(h.Proto.proc_idx) in
    match Marshal.decode_args (R.of_bytes payload) Marshal.In_call_packet p with
    | exception Rpc.Rpc_error.Rpc e -> Error (Rpc.Rpc_error.to_string e)
    | in_values -> (
      match s.s_impls.(h.Proto.proc_idx) in_values with
      | exception Rpc.Rpc_error.Rpc e -> Error (Rpc.Rpc_error.to_string e)
      | exception e -> Error ("implementation raised: " ^ Printexc.to_string e)
      | outs -> (
        try
          let full = Marshal.merge_outs p in_values outs in
          Ok (encode_payload p Marshal.In_result_packet full)
        with Rpc.Rpc_error.Rpc e -> Error (Rpc.Rpc_error.to_string e)))
  end

(* Send result fragments stop-and-wait: after every non-final fragment,
   wait for its ack, retransmitting on silence.  A duplicate of the
   call's final fragment while waiting means the client missed us —
   resend the current fragment. *)
let send_result s addr ~seq frames =
  let n = List.length frames in
  let buf = Bytes.create 4096 in
  List.iteri
    (fun i frame ->
      send_to s.s_sock addr frame;
      if i < n - 1 then begin
        let retries = ref 0 in
        let rec await_ack () =
          if !retries <= 20 && not (Atomic.get s.s_stop) then
            match recv_frame s.s_sock buf with
            | None ->
              incr retries;
              send_to s.s_sock addr frame;
              await_ack ()
            | Some (dat, _) -> (
              match Frames.parse s.s_tmg dat with
              | Error _ ->
                Atomic.incr s.s_rejected;
                await_ack ()
              | Ok { Frames.p_hdr = h; _ } ->
                if h.Proto.ptype = Proto.Ack && h.Proto.seq = seq && h.Proto.frag_idx = i
                then ()
                else begin
                  if h.Proto.ptype = Proto.Call && h.Proto.seq = seq then
                    send_to s.s_sock addr frame;
                  await_ack ()
                end)
        in
        await_ack ()
      end)
    frames

let handle_call s states addr (h : Proto.header) payload_view =
  let st =
    match Act_tbl.find_opt states h.Proto.activity with
    | Some st -> st
    | None ->
      let st =
        {
          as_seq = 0;
          as_frag_count = None;
          as_frags = Hashtbl.create 4;
          as_done_seq = 0;
          as_result = [];
        }
      in
      Act_tbl.add states h.Proto.activity st;
      st
  in
  if h.Proto.seq <= st.as_done_seq then begin
    (* At-most-once: a retransmission of a completed call gets the
       cached result back, never a second execution. *)
    if h.Proto.seq = st.as_done_seq then List.iter (send_to s.s_sock addr) st.as_result
  end
  else begin
    if h.Proto.seq <> st.as_seq then begin
      st.as_seq <- h.Proto.seq;
      st.as_frag_count <- None;
      Hashtbl.reset st.as_frags
    end;
    let consistent =
      h.Proto.frag_count >= 1
      && h.Proto.frag_idx >= 0
      && h.Proto.frag_idx < h.Proto.frag_count
      && (match st.as_frag_count with None -> true | Some n -> n = h.Proto.frag_count)
    in
    if consistent then begin
      st.as_frag_count <- Some h.Proto.frag_count;
      if not (Hashtbl.mem st.as_frags h.Proto.frag_idx) then
        Hashtbl.replace st.as_frags h.Proto.frag_idx (V.to_bytes payload_view);
      if h.Proto.frag_idx < h.Proto.frag_count - 1 then begin
        let ack =
          Frames.build s.s_tmg ~src:server_endpoint ~dst:caller_endpoint
            ~hdr:
              (header ~act:h.Proto.activity ~seq:h.Proto.seq
                 ~server_space:h.Proto.server_space ~intf_id:h.Proto.interface_id
                 ~proc_idx:h.Proto.proc_idx ~frag_idx:h.Proto.frag_idx
                 ~frag_count:h.Proto.frag_count Proto.Ack)
            ~payload:Bytes.empty ~payload_pos:0 ~payload_len:0
        in
        send_to s.s_sock addr ack
      end;
      if Hashtbl.length st.as_frags = h.Proto.frag_count then begin
        let whole = Buffer.create 1500 in
        for i = 0 to h.Proto.frag_count - 1 do
          Buffer.add_bytes whole (Hashtbl.find st.as_frags i)
        done;
        Hashtbl.reset st.as_frags;
        let act = h.Proto.activity
        and seq = h.Proto.seq
        and server_space = h.Proto.server_space
        and intf_id = h.Proto.interface_id
        and proc_idx = h.Proto.proc_idx in
        let frames =
          match dispatch s h (Buffer.to_bytes whole) with
          | Ok result ->
            build_result_frames s ~act ~seq ~server_space ~intf_id ~proc_idx result
          | Error msg -> [ build_error_frame s ~act ~seq ~server_space ~intf_id ~proc_idx msg ]
        in
        st.as_done_seq <- seq;
        st.as_result <- frames;
        send_result s addr ~seq frames
      end
    end
  end

let server_loop s =
  let states = Act_tbl.create 4 in
  let buf = Bytes.create 4096 in
  while not (Atomic.get s.s_stop) do
    match recv_frame s.s_sock buf with
    | None -> ()
    | Some (dat, addr) -> (
      match Frames.parse s.s_tmg dat with
      | Error _ -> Atomic.incr s.s_rejected
      | Ok { Frames.p_hdr = h; p_payload; _ } -> (
        match h.Proto.ptype with
        | Proto.Call -> handle_call s states addr h p_payload
        | Proto.Ack | Proto.Result | Proto.Busy | Proto.Error_reply -> ()))
  done

let start_server ~intf ~impls () =
  if Array.length impls <> Array.length intf.Idl.procs then
    invalid_arg "Udp_socket.start_server: one impl per procedure";
  match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | sock -> (
    match
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.02;
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> failwith "Udp_socket: unexpected socket address family"
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
    | port ->
      let s =
        {
          s_sock = sock;
          s_port = port;
          s_intf = intf;
          s_impls = impls;
          s_tmg = timing ();
          s_stop = Atomic.make false;
          s_rejected = Atomic.make 0;
          s_thread = None;
        }
      in
      s.s_thread <- Some (Thread.create server_loop s);
      Ok s)

let stop_server s =
  Atomic.set s.s_stop true;
  (match s.s_thread with Some t -> Thread.join t | None -> ());
  try Unix.close s.s_sock with Unix.Unix_error _ -> ()

(* {1 Client} *)

type client = {
  c_sock : Unix.file_descr;
  c_dst : Unix.sockaddr;
  c_tmg : Hw.Timing.t;
  c_intf : Idl.interface;
  c_act : Proto.Activity.t;
  mutable c_seq : int;
  c_server_space : int;
  c_retransmit_after : float;  (** seconds of silence before retrying *)
  c_max_retries : int;
  c_capture : (dir:[ `Tx | `Rx ] -> Bytes.t -> unit) option;
  c_send_filter : (Bytes.t -> bool) option;
  c_buf : Bytes.t;
}

let connect ?capture ?send_filter ?(retransmit_after = 0.05) ?(max_retries = 40)
    ?(thread = 1) ~port ~intf () =
  match Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | sock -> (
    match Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
    | () ->
      Ok
        {
          c_sock = sock;
          c_dst = Unix.ADDR_INET (Unix.inet_addr_loopback, port);
          c_tmg = timing ();
          c_intf = intf;
          c_act =
            { Proto.Activity.caller_ip = caller_endpoint.Frames.ip;
              caller_space = 1;
              thread;
            };
          c_seq = 0;
          c_server_space = 1;
          c_retransmit_after = retransmit_after;
          c_max_retries = max_retries;
          c_capture = capture;
          c_send_filter = send_filter;
          c_buf = Bytes.create 4096;
        })

let close c = try Unix.close c.c_sock with Unix.Unix_error _ -> ()

let client_send c frame =
  (match c.c_capture with Some f -> f ~dir:`Tx (Bytes.copy frame) | None -> ());
  let deliver = match c.c_send_filter with Some f -> f frame | None -> true in
  if deliver then ignore (Unix.sendto c.c_sock frame 0 (Bytes.length frame) [] c.c_dst)

let send_raw c bytes = ignore (Unix.sendto c.c_sock bytes 0 (Bytes.length bytes) [] c.c_dst)

let client_recv c =
  match Unix.select [ c.c_sock ] [] [] c.c_retransmit_after with
  | [], _, _ -> None
  | _ -> (
    match Unix.recvfrom c.c_sock c.c_buf 0 (Bytes.length c.c_buf) [] with
    | 0, _ -> None
    | n, _ ->
      let dat = Bytes.sub c.c_buf 0 n in
      (match c.c_capture with Some f -> f ~dir:`Rx dat | None -> ());
      Some dat
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> None)

let call c ~proc_idx ~args =
  let intf = c.c_intf in
  if proc_idx < 0 || proc_idx >= Array.length intf.Idl.procs then
    raise (Call_failed (Printf.sprintf "bad procedure index %d" proc_idx));
  let p = intf.Idl.procs.(proc_idx) in
  c.c_seq <- c.c_seq + 1;
  let seq = c.c_seq in
  let payload = encode_payload p Marshal.In_call_packet args in
  let intf_id = Idl.interface_id intf in
  let m = Hw.Timing.max_payload_bytes c.c_tmg in
  let len = Bytes.length payload in
  let nfrags = fragment_count c.c_tmg len in
  let call_frag ?please_ack i =
    let pos = i * m in
    let flen = min m (len - pos) in
    Frames.build c.c_tmg ~src:caller_endpoint ~dst:server_endpoint
      ~hdr:
        (header ?please_ack ~act:c.c_act ~seq ~server_space:c.c_server_space ~intf_id
           ~proc_idx ~frag_idx:i ~frag_count:nfrags Proto.Call)
      ~payload ~payload_pos:pos ~payload_len:flen
  in
  (* Call fragments, stop-and-wait on all but the last. *)
  for i = 0 to nfrags - 2 do
    client_send c (call_frag i);
    let retries = ref 0 in
    let rec await_ack () =
      match client_recv c with
      | None ->
        incr retries;
        if !retries > c.c_max_retries then
          raise (Call_failed "no acknowledgement for a call fragment");
        client_send c (call_frag ~please_ack:true i);
        await_ack ()
      | Some dat -> (
        match Frames.parse c.c_tmg dat with
        | Error _ -> await_ack ()
        | Ok { Frames.p_hdr = h; _ } ->
          if h.Proto.ptype = Proto.Ack && h.Proto.seq = seq && h.Proto.frag_idx = i then ()
          else await_ack ())
    in
    await_ack ()
  done;
  client_send c (call_frag (nfrags - 1));
  (* Await the result, acknowledging all but its last fragment. *)
  let result_frags : (int, Bytes.t) Hashtbl.t = Hashtbl.create 4 in
  let result_count = ref None in
  let complete () =
    match !result_count with
    | None -> false
    | Some n -> Hashtbl.length result_frags = n
  in
  let retries = ref 0 in
  let ack_result (h : Proto.header) =
    let ack =
      Frames.build c.c_tmg ~src:caller_endpoint ~dst:server_endpoint
        ~hdr:
          (header ~act:c.c_act ~seq ~server_space:c.c_server_space ~intf_id ~proc_idx
             ~frag_idx:h.Proto.frag_idx ~frag_count:h.Proto.frag_count Proto.Ack)
        ~payload:Bytes.empty ~payload_pos:0 ~payload_len:0
    in
    client_send c ack
  in
  while not (complete ()) do
    match client_recv c with
    | None ->
      incr retries;
      if !retries > c.c_max_retries then
        raise (Call_failed "no result: retransmission budget exhausted");
      client_send c (call_frag ~please_ack:true (nfrags - 1))
    | Some dat -> (
      match Frames.parse c.c_tmg dat with
      | Error _ -> ()
      | Ok { Frames.p_hdr = h; p_payload; _ } ->
        if h.Proto.seq = seq then begin
          match h.Proto.ptype with
          | Proto.Busy -> retries := 0
          | Proto.Error_reply -> raise (Call_failed (V.to_string p_payload))
          | Proto.Result ->
            if
              h.Proto.frag_count >= 1
              && h.Proto.frag_idx >= 0
              && h.Proto.frag_idx < h.Proto.frag_count
              && (match !result_count with None -> true | Some n -> n = h.Proto.frag_count)
            then begin
              result_count := Some h.Proto.frag_count;
              if not (Hashtbl.mem result_frags h.Proto.frag_idx) then
                Hashtbl.replace result_frags h.Proto.frag_idx (V.to_bytes p_payload);
              if h.Proto.frag_idx < h.Proto.frag_count - 1 then ack_result h
            end
          | Proto.Call | Proto.Ack -> ()
        end)
  done;
  let n = match !result_count with Some n -> n | None -> assert false in
  let whole = Buffer.create 1500 in
  for i = 0 to n - 1 do
    Buffer.add_bytes whole (Hashtbl.find result_frags i)
  done;
  let full = Marshal.decode_args (R.of_bytes (Buffer.to_bytes whole)) Marshal.In_result_packet p in
  Marshal.extract_outs p full

(* {1 The TRANSPORT instance}

   The proof that {!Rpc.Transport.S} spans real backends: a connected
   loopback client packs into the same signature the simulator's three
   transports satisfy.  [client]/[ctx] are [unit] — a kernel socket
   needs neither a simulated runtime nor a CPU context. *)

module Socket_transport = struct
  type binding = client
  type nonrec client = unit
  type ctx = unit

  let kind = Rpc.Transport.Real_socket
  let name = "udp-socket"
  let interface (b : binding) = b.c_intf
  let invoke (b : binding) () () ~proc_idx ~args = call b ~proc_idx ~args
end
