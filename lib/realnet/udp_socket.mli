(** A real Unix UDP backend for the RPC wire format.

    Each datagram's payload is a complete Ethernet/IPv4/UDP/RPC frame
    produced by {!Rpc.Frames.build} — exactly the bytes the simulator
    puts on its wire and the wire fuzzer mutates — tunnelled through a
    loopback kernel socket and validated on receive by the same
    {!Rpc.Frames.parse}, software checksums included.  The exchange
    protocol mirrors the simulated transporter: stop-and-wait fragments,
    retransmission on silence, per-activity duplicate suppression.

    Everything here runs in real (wall-clock) time, outside the
    simulator; [Hw.Timing] is used only for frame-format constants. *)

exception Call_failed of string
(** The loopback exchange failed: retransmission budget exhausted, or
    the server answered with an [Error_reply] (whose message this
    carries). *)

val available : unit -> bool
(** Whether a loopback UDP socket can be created and bound — [false] in
    sandboxes without network namespaces; callers should skip, not
    fail. *)

val caller_endpoint : Rpc.Frames.endpoint
(** Station 1 / 16.0.0.1 — the simulated world's caller identity, so
    frames are directly comparable. *)

val server_endpoint : Rpc.Frames.endpoint
(** Station 2 / 16.0.0.2. *)

val timing : unit -> Hw.Timing.t
(** The default-configuration timing model both sides use for frame
    formatting (payload bound, checksum policy). *)

type impl = Rpc.Marshal.value list -> Rpc.Marshal.value list
(** A server procedure: full decoded argument list in, [Var_out]
    results out — {!Rpc.Runtime.impl} minus the simulated CPU context. *)

(** {1 Server} *)

type server

val start_server :
  intf:Rpc.Idl.interface -> impls:impl array -> unit -> (server, string) result
(** Binds a fresh loopback port and serves [intf] from a background
    thread until {!stop_server}.  [Error] when sockets are unavailable.
    @raise Invalid_argument unless there is one impl per procedure. *)

val server_port : server -> int
val server_rejected : server -> int
(** Datagrams rejected by {!Rpc.Frames.parse} — malformed frames never
    reach dispatch. *)

val stop_server : server -> unit
(** Stops the thread and closes the socket; idempotent in effect. *)

(** {1 Client} *)

type client

val connect :
  ?capture:(dir:[ `Tx | `Rx ] -> Stdlib.Bytes.t -> unit) ->
  ?send_filter:(Stdlib.Bytes.t -> bool) ->
  ?retransmit_after:float ->
  ?max_retries:int ->
  ?thread:int ->
  port:int ->
  intf:Rpc.Idl.interface ->
  unit ->
  (client, string) result
(** [capture] observes every frame as sent ([`Tx], before [send_filter])
    or received ([`Rx]) — the wire-byte-equality tests hang off it.
    [send_filter] returning [false] drops the frame without sending
    (fault injection); [retransmit_after] (seconds, default 0.05) and
    [max_retries] (default 40) bound the real-time retransmission loop.
    [thread] (default 1) names the activity, making headers — and
    therefore frames — reproducible. *)

val call :
  client -> proc_idx:int -> args:Rpc.Marshal.value list -> Rpc.Marshal.value list
(** One remote call over the socket; returns the [Var_out] results.
    @raise Call_failed on give-up or a server [Error_reply]. *)

val send_raw : client -> Stdlib.Bytes.t -> unit
(** Sends arbitrary bytes as one datagram — malformed-frame injection
    for the conformance suite. *)

val close : client -> unit

module Socket_transport :
  Rpc.Transport.S with type binding = client and type client = unit and type ctx = unit
(** The {!Rpc.Transport.S} instance ([kind = Real_socket]): a connected
    loopback client under the same signature the simulator's three
    transports satisfy. *)
