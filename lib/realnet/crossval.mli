(** Measured-vs-calibrated cross-validation over the real socket
    backend (the [firefly call --transport socket] report).

    Runs whole RPCs through {!Udp_socket} on the loopback interface and
    micro-times the shared encoders ({!Rpc.Marshal},
    {!Wire.Checksum}, {!Rpc.Frames}) in wall-clock time, printing each
    beside the simulator's calibrated MicroVAX II constant for the same
    operation.  Validates that the calibrated model prices work the
    production code really performs — not that a modern host matches
    1987 latencies. *)

val test_impls : unit -> Udp_socket.impl array
(** Real (unsimulated) implementations of the paper's Test interface:
    Null, MaxResult/MaxArg over the deterministic 1440-byte pattern,
    and GetData — shared with the transport conformance suite. *)

val table :
  ?calls:int ->
  sim_null_us:float ->
  sim_maxarg_us:float ->
  unit ->
  (Report.Table.t, string) result
(** [calls] (default 200) loopback RPCs per round-trip row.
    [sim_null_us]/[sim_maxarg_us] are the simulated single-call
    latencies to print beside the measured round trips (computed by the
    caller, which owns a simulated world).  [Error] with a reason when
    loopback sockets are unavailable — callers should report and skip. *)
