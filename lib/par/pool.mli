(** A fixed pool of worker domains for independent simulation tasks.

    Tasks must be self-contained: each builds its own engine, RNG and
    machines, and shares no mutable state with its siblings.  Results
    come back in input order regardless of which domain ran which task,
    so a parallel sweep renders byte-identically to a serial one.

    With [jobs = 1] (the default) no domain is spawned and the tasks
    run as a plain serial [List.map] on the calling domain — the exact
    historical code path, guaranteed identical output. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs] defaults to. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f tasks] applies [f] to every task, running up to
    [jobs] at once ([jobs] counts the calling domain, which
    participates).  If any task raises, the exception of the
    lowest-indexed failing task is re-raised on the caller with its
    original backtrace — deterministic even when several fail.
    @raise Invalid_argument if [jobs < 1]. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
