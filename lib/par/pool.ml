(* A fixed pool of worker domains for fanning out independent
   simulations.

   The shape of every use in this repo is the same: a list of tasks,
   each of which builds its own [Sim.Engine] and runs a simulation to
   completion, with no shared mutable state between tasks.  So the pool
   is deliberately simple — one [Atomic] counter hands out task
   indices, each worker loops until the counter runs dry, and results
   land in a pre-sized array at their task's index.  Ordering is
   therefore canonical by construction: the caller gets results in
   input order no matter which domain ran what, which is what keeps
   parallel experiment tables byte-identical to serial ones.

   [jobs = 1] short-circuits to a plain serial [List.map] on the
   calling domain: no domains are spawned, no atomics touched, and the
   evaluation order is exactly the historical one. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Exceptions must not vanish into a worker domain: each task's outcome
   is captured and the first failure (in task order, so deterministic)
   is re-raised on the caller with its original backtrace. *)
type 'a outcome = Done of 'a | Failed of exn * Printexc.raw_backtrace

let run_task f x = try Done (f x) with e -> Failed (e, Printexc.get_raw_backtrace ())

let reraise_first results =
  Array.iter
    (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Done _ -> ())
    results

let map_list ?(jobs = 1) f tasks =
  if jobs < 1 then invalid_arg "Par.Pool.map_list: jobs must be >= 1";
  match tasks with
  | [] -> []
  | tasks when jobs = 1 || List.compare_length_with tasks 1 <= 0 -> List.map f tasks
  | tasks ->
    let arr = Array.of_list tasks in
    let n = Array.length arr in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (run_task f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    (* The calling domain participates, so [jobs] counts it: jobs = 4
       spawns 3 workers.  Never spawn more domains than tasks. *)
    let spawned = min (jobs - 1) (n - 1) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    let outcomes =
      Array.map
        (function
          | Some o -> o
          | None ->
            (* Unreachable: every index below [n] is claimed exactly once
               and the claimant writes it before looping. *)
            Failed (Invalid_argument "Par.Pool: unfilled slot", Printexc.get_callstack 0))
        results
    in
    reraise_first outcomes;
    Array.to_list (Array.map (function Done v -> v | Failed _ -> assert false) outcomes)

let map_array ?(jobs = 1) f tasks =
  Array.of_list (map_list ~jobs f (Array.to_list tasks))
