(* A domain-safe memo cell — what [lazy] is not: two domains racing to
   [Lazy.force] the same thunk can raise [Lazy.Undefined].  The mutex
   serialises the first computation; later forces take the lock only to
   read the cached value. *)

type 'a t = { lock : Mutex.t; mutable value : 'a option; compute : unit -> 'a }

let create compute = { lock = Mutex.create (); value = None; compute }

let force t =
  Mutex.protect t.lock (fun () ->
      match t.value with
      | Some v -> v
      | None ->
        let v = t.compute () in
        t.value <- Some v;
        v)
