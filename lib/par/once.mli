(** A domain-safe replacement for [lazy]: compute once, under a mutex,
    no matter how many domains race to {!force}.  Used for the shared
    measurement caches that parallel experiment regeneration hits from
    every worker. *)

type 'a t

val create : (unit -> 'a) -> 'a t

val force : 'a t -> 'a
(** The cached value, computing it on first call.  An exception from the
    compute function propagates and leaves the cell empty (the next
    {!force} retries). *)
