module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Timing = Hw.Timing

type t = {
  eng : Engine.t;
  timing : Timing.t;
  cpus : Cpu_set.t;
  mutable pending : int;
  cv : Sim.Condvar.t;
  obs : Obs.Ctx.t option;
  wake_hist : Obs.Metrics.Histogram.t option;
  mutable notified_at : Time.t option;
  mutable w_call : int;
      (* trace call id carried from the last notify's waker to the woken
         thread, so server-side threads inherit the RPC they are woken
         for; pure bookkeeping, Sim.Trace.no_call when unknown *)
}

let create ?obs eng timing ~cpus =
  let wake_hist =
    Option.map
      (fun o ->
        Obs.Metrics.Registry.histogram o.Obs.Ctx.metrics ~site:(Cpu_set.site cpus)
          ~name:"wakeup_latency_us")
      obs
  in
  {
    eng;
    timing;
    cpus;
    pending = 0;
    cv = Sim.Condvar.create eng;
    obs;
    wake_hist;
    notified_at = None;
    w_call = Sim.Trace.no_call;
  }

let busy_wait t = (Timing.config t.timing).Hw.Config.busy_wait

let cat = "send+receive"

(* Wakeup latency: from the waker's notify to this thread running again.
   The mark must be consumed on {e every} wait outcome: a timeout that
   leaves [notified_at] set would be charged to the next wakeup, which
   could look seconds long. *)
let record_wakeup t =
  (match (t.wake_hist, t.notified_at) with
  | Some h, Some at0 -> Obs.Metrics.Histogram.observe_span h (Time.diff (Engine.now t.eng) at0)
  | _ -> ());
  t.notified_at <- None

(* Adopt the waker's call id so the woken thread's subsequent charges
   (dispatch, unmarshalling, the server procedure) attribute to the RPC
   that woke it.  Never clobber a valid id with "unknown": the caller
   thread already carries its own call id across its await. *)
let adopt_call t ctx =
  if t.w_call >= 0 then Cpu_set.set_trace_call ctx t.w_call;
  t.w_call <- Sim.Trace.no_call

let clear_notified t = t.notified_at <- None

let spin t ctx ~deadline =
  let rec loop () =
    if t.pending > 0 then begin
      t.pending <- t.pending - 1;
      adopt_call t ctx;
      record_wakeup t;
      `Ok
    end
    else
      match deadline with
      | Some d when Time.compare (Engine.now t.eng) d >= 0 ->
        clear_notified t;
        `Timeout
      | _ ->
        Cpu_set.charge ctx ~cat ~label:"Busy-wait poll" (Timing.busy_wait_poll t.timing);
        (* Release the CPU each iteration so interrupt work can run even
           on a uniprocessor ("relinquish control whenever the scheduler
           demanded", §4.2.7). *)
        Cpu_set.yield_cpu ctx (fun () -> ());
        loop ()
  in
  loop ()

let wait_common t ctx ~timeout =
  if busy_wait t then
    let deadline = Option.map (fun d -> Time.add (Engine.now t.eng) d) timeout in
    spin t ctx ~deadline
  else if t.pending > 0 then begin
    t.pending <- t.pending - 1;
    adopt_call t ctx;
    record_wakeup t;
    `Ok
  end
  else begin
    let outcome =
      Cpu_set.yield_cpu ctx (fun () ->
          match timeout with
          | None ->
            Sim.Condvar.await t.cv;
            `Ok
          | Some d -> (
            match Sim.Condvar.await_timeout t.cv ~timeout:d with
            | `Signaled -> `Ok
            | `Timeout -> `Timeout))
    in
    (match outcome with
    | `Ok ->
      adopt_call t ctx;
      (* The woken thread pays to be dispatched onto a processor. *)
      Cpu_set.charge ctx ~cat ~label:"Dispatch woken thread" (Timing.dispatch t.timing);
      record_wakeup t
    | `Timeout ->
      (* A notify may have raced the timeout (signal consumed or pending
         incremented after the deadline fired); drop its mark either
         way. *)
      clear_notified t);
    outcome
  end

let wait t ctx =
  match wait_common t ctx ~timeout:None with
  | `Ok -> ()
  | `Timeout -> assert false

let wait_timeout t ctx ~timeout = wait_common t ctx ~timeout:(Some timeout)

let notify t ~waker =
  (match t.obs with
  | None -> ()
  | Some o ->
    Obs.Ctx.record o ~at:(Engine.now t.eng) ~site:(Cpu_set.site t.cpus) Obs.Journal.Thread_wakeup);
  if t.notified_at = None then t.notified_at <- Some (Engine.now t.eng);
  (let c = Cpu_set.trace_call waker in
   if c >= 0 then t.w_call <- c);
  Cpu_set.charge waker ~cat ~label:"Wakeup RPC thread" (Timing.wakeup t.timing);
  Cpu_set.charge waker ~cat ~label:"Uniprocessor wakeup path"
    (Timing.uniproc_wakeup_extra t.timing);
  if busy_wait t then t.pending <- t.pending + 1
  else if not (Sim.Condvar.signal t.cv) then t.pending <- t.pending + 1
