(** The Ethernet driver (paper §3.1.3 and §3.2).

    {b Send}: the caller's thread — already holding a CPU — traps to the
    Nub, queues the packet on the DEQNA transmit ring, and triggers an
    interprocessor interrupt; CPU 0's interrupt routine prods the
    controller.  The calling thread returns immediately (its subsequent
    call-table registration overlaps transmission on a multiprocessor).

    {b Receive}: the controller interrupt runs on CPU 0 at interrupt
    priority.  For each completed frame the driver first replaces the
    controller's receive buffer from the shared pool (on-the-fly
    replacement), then runs the RPC fast-path demultiplexer {e in the
    interrupt routine}.  If the demultiplexer finds no waiting RPC
    thread, the frame takes the traditional slow path: an extra wakeup
    hands it to the datalink thread, which delivers it to whatever
    non-fast-path consumer is registered. *)

type t

(** Verdict of the fast-path demultiplexer run inside the interrupt
    routine.  The handler is expected to charge its own costs (header
    demux, checksum, wakeup) to [ctx] using the Table VI labels. *)
type verdict =
  | Consumed  (** handled entirely in the interrupt routine *)
  | To_datalink  (** no waiting thread: punt to the datalink thread *)
  | Dropped of string  (** malformed / failed checksum: counted, freed *)

val create :
  ?obs:Obs.Ctx.t ->
  Sim.Engine.t ->
  Hw.Timing.t ->
  cpus:Hw.Cpu_set.t ->
  deqna:Hw.Deqna.t ->
  pool:Bufpool.t ->
  t
(** With [?obs], the driver registers its [driver.*] counters, records
    an [interrupt_latency_us] histogram (line assertion to handler
    entry), and journals every interrupt and interprocessor
    interrupt. *)

val set_fast_handler : t -> (ctx:Hw.Cpu_set.ctx -> frame:Stdlib.Bytes.t -> verdict) -> unit
val set_datalink_handler : t -> (ctx:Hw.Cpu_set.ctx -> frame:Stdlib.Bytes.t -> unit) -> unit

val start : t -> rx_buffers:int -> unit
(** Allocates the controller's initial receive buffers from the pool
    and enables the receive interrupt. *)

val send : t -> ctx:Hw.Cpu_set.ctx -> Stdlib.Bytes.t -> unit
(** Charges the Table VI sending-machine kernel steps to the calling
    thread's CPU, queues the frame, and fires the CPU-0 prod.  Returns
    as soon as the packet is queued (before it is on the wire). *)

(** {1 Statistics} *)

val frames_received : t -> int
val frames_to_datalink : t -> int
val frames_dropped : t -> int
val interrupts_taken : t -> int
