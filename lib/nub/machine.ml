module Engine = Sim.Engine
module Time = Sim.Time
module Config = Hw.Config
module Timing = Hw.Timing
module Cpu_set = Hw.Cpu_set

type t = {
  eng : Engine.t;
  m_name : string;
  cfg : Config.t;
  tmg : Timing.t;
  m_cpus : Cpu_set.t;
  m_pool : Bufpool.t;
  deqna : Hw.Deqna.t;
  m_driver : Driver.t;
  link : Hw.Ether_link.t;
  m_ip : Net.Ipv4.Addr.t;
  m_obs : Obs.Ctx.t;
  mutable idle_started : bool;
  mutable attached : bool;
}

let create ?obs eng ~name ~config ~link ~station ~ip ?(pool_buffers = 64) () =
  let config =
    match Config.validate config with
    | Ok c -> c
    | Error e -> invalid_arg ("Machine.create: " ^ e)
  in
  let m_obs = match obs with Some o -> o | None -> Obs.Ctx.create () in
  let tmg = Timing.create config in
  let m_cpus = Cpu_set.create ~obs:m_obs eng ~site:name ~cpus:config.Config.cpus in
  let m_pool =
    Bufpool.create
      ~on_exhausted:(fun () ->
        Obs.Ctx.record m_obs ~at:(Engine.now eng) ~site:name Obs.Journal.Bufpool_exhausted)
      ~capacity:pool_buffers ()
  in
  let qbus = Sim.Resource.create eng ~name:(name ^ "-qbus") ~capacity:1 in
  let deqna =
    Hw.Deqna.create eng tmg ~link ~qbus ~mac:(Net.Mac.of_station station) ~site:name ~obs:m_obs ()
  in
  let m_driver = Driver.create ~obs:m_obs eng tmg ~cpus:m_cpus ~deqna ~pool:m_pool in
  let reg = m_obs.Obs.Ctx.metrics in
  Obs.Metrics.Registry.register_counter_fn reg ~site:name ~name:"bufpool.exhaustions" (fun () ->
      Bufpool.exhaustions m_pool);
  Obs.Metrics.Registry.register_probe reg ~site:name ~name:"bufpool.available" (fun () ->
      float_of_int (Bufpool.available m_pool));
  Obs.Metrics.Registry.register_probe reg ~site:name ~name:"bufpool.in_use" (fun () ->
      float_of_int (Bufpool.in_use m_pool));
  Obs.Metrics.Registry.register_probe reg ~site:name ~name:"qbus.utilization" (fun () ->
      Sim.Resource.utilization qbus ~upto:(Engine.now eng));
  Driver.start m_driver ~rx_buffers:16;
  {
    eng;
    m_name = name;
    cfg = config;
    tmg;
    m_cpus;
    m_pool;
    deqna;
    m_driver;
    link;
    m_ip = ip;
    m_obs;
    idle_started = false;
    attached = true;
  }

let name t = t.m_name
let engine t = t.eng
let config t = t.cfg
let timing t = t.tmg
let cpus t = t.m_cpus
let driver t = t.m_driver
let pool t = t.m_pool
let mac t = Hw.Deqna.mac t.deqna
let ip t = t.m_ip
let link t = t.link
let obs t = t.m_obs
let new_waiter t = Waiter.create ~obs:t.m_obs t.eng t.tmg ~cpus:t.m_cpus

let spawn_thread t ?name fn =
  let name = Option.value name ~default:(t.m_name ^ "-thread") in
  Engine.spawn t.eng ~name fn

let power_off t =
  if t.attached then begin
    Hw.Deqna.detach_from_link t.deqna;
    t.attached <- false
  end

let power_on t =
  if not t.attached then begin
    Hw.Deqna.reattach_to_link t.deqna;
    t.attached <- true
  end

let restart t ~down_for =
  if Time.span_is_negative down_for then invalid_arg "Machine.restart: negative downtime";
  power_off t;
  Engine.schedule t.eng ~after:down_for (fun () -> power_on t)

let average_busy_cpus t ~upto = Cpu_set.average_busy t.m_cpus ~upto
let reset_start _ = ()

(* Background load: one thread per machine alternating a CPU burst with
   an exponentially distributed idle gap, tuned to average
   [idle_load_cpus] processors. *)
let start_idle_load t =
  if (not t.idle_started) && t.cfg.Config.idle_load_cpus > 0. then begin
    t.idle_started <- true;
    let burst_us = 150. in
    let gap_mean_us = burst_us *. ((1. /. t.cfg.Config.idle_load_cpus) -. 1.) in
    spawn_thread t ~name:(t.m_name ^ "-idle") (fun () ->
        let rng = Engine.rng t.eng in
        let rec loop () =
          Cpu_set.with_cpu t.m_cpus (fun ctx ->
              Cpu_set.charge ctx ~cat:"background" ~label:"idle load" (Time.us_f burst_us));
          Engine.delay t.eng (Time.us_f (Sim.Rng.exponential rng ~mean:gap_mean_us));
          loop ()
        in
        loop ())
  end
