type t = {
  cap : int;
  mutable avail : int;
  failed : Sim.Stats.Counter.t;
  on_exhausted : unit -> unit;
}

let create ?(on_exhausted = ignore) ~capacity () =
  if capacity < 1 then invalid_arg "Bufpool.create: capacity must be positive";
  { cap = capacity; avail = capacity; failed = Sim.Stats.Counter.create (); on_exhausted }

let capacity t = t.cap
let available t = t.avail

let try_alloc t =
  if t.avail > 0 then begin
    t.avail <- t.avail - 1;
    true
  end
  else begin
    Sim.Stats.Counter.incr t.failed;
    t.on_exhausted ();
    false
  end

let free t =
  if t.avail >= t.cap then invalid_arg "Bufpool.free: double free";
  t.avail <- t.avail + 1

let in_use t = t.cap - t.avail
let exhaustions t = Sim.Stats.Counter.value t.failed
