(** The shared RPC packet-buffer pool.

    On the Firefly, RPC packet buffers live in memory shared among all
    user address spaces and the Nub, permanently mapped into I/O space,
    so stubs, the Ethernet driver and the interrupt handler all touch a
    packet with the same addresses — no mapping or copying on the fast
    path (§3.2).  The pool is modelled as a bounded count: the
    interesting behaviours are exhaustion (receive losses when the
    driver cannot replace a controller buffer) and the retained-buffer
    discipline of the call table. *)

type t

val create : ?on_exhausted:(unit -> unit) -> capacity:int -> unit -> t
(** [on_exhausted] is called on every failed allocation (after the
    exhaustion counter increments) — the hook the observability journal
    hangs off without the pool depending on it. *)

val capacity : t -> int
val available : t -> int

val try_alloc : t -> bool
(** Takes one buffer; [false] if the pool is empty (the failed
    allocation is counted). *)

val free : t -> unit
(** Returns one buffer.
    @raise Invalid_argument if the pool would exceed its capacity —
    that is always a double-free bug in the caller. *)

val in_use : t -> int
val exhaustions : t -> int
(** Number of failed allocations. *)
