module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set

type port = A | B

type port_state = {
  deqna : Hw.Deqna.t;
  p_ip : Net.Ipv4.Addr.t;
  arp : (Net.Ipv4.Addr.t, Net.Mac.t) Hashtbl.t;
}

type route = { prefix : int32; mask : int32; via : port }

type t = {
  eng : Engine.t;
  cpu : Cpu_set.t;
  pool : Bufpool.t;
  pa : port_state;
  pb : port_state;
  mutable routes : route list;
  forward_cost : Time.span;
  c_fwd : Sim.Stats.Counter.t;
  c_no_route : Sim.Stats.Counter.t;
  c_ttl : Sim.Stats.Counter.t;
  c_no_arp : Sim.Stats.Counter.t;
  c_not_ip : Sim.Stats.Counter.t;
}

let port_state t = function
  | A -> t.pa
  | B -> t.pb

let port_mac t p = Hw.Deqna.mac (port_state t p).deqna
let port_ip t p = (port_state t p).p_ip

let mask_of_bits bits =
  if bits = 0 then 0l else Int32.shift_left (-1l) (32 - bits)

let add_route t addr ~mask_bits via =
  let mask = mask_of_bits mask_bits in
  let prefix = Int32.logand (Net.Ipv4.Addr.to_int32 addr) mask in
  (* keep longest prefixes first *)
  t.routes <-
    List.sort
      (fun a b -> compare b.mask a.mask)
      ({ prefix; mask; via } :: t.routes)

let add_host t p ip mac = Hashtbl.replace (port_state t p).arp ip mac

let lookup_route t dst =
  let d = Net.Ipv4.Addr.to_int32 dst in
  List.find_opt (fun r -> Int32.equal (Int32.logand d r.mask) r.prefix) t.routes

(* Forward one frame arriving on [inp]: validate, decrement TTL,
   recompute the IP header checksum in place, re-address the Ethernet
   header for the next hop, and queue it out.  All on the real bytes. *)
let forward t inp frame =
  let module R = Wire.Bytebuf.Reader in
  let r = R.of_bytes frame in
  match Net.Ethernet.decode r with
  | Error _ -> Sim.Stats.Counter.incr t.c_not_ip
  | Ok eth ->
    if eth.Net.Ethernet.ethertype <> Net.Ethernet.ethertype_ipv4 then
      Sim.Stats.Counter.incr t.c_not_ip
    else begin
      match Net.Ipv4.decode r with
      | Error _ -> Sim.Stats.Counter.incr t.c_not_ip
      | Ok ip ->
        if ip.Net.Ipv4.ttl <= 1 then Sim.Stats.Counter.incr t.c_ttl
        else begin
          match lookup_route t ip.Net.Ipv4.dst with
          | None -> Sim.Stats.Counter.incr t.c_no_route
          | Some route -> (
            let out = port_state t route.via in
            ignore inp;
            match Hashtbl.find_opt out.arp ip.Net.Ipv4.dst with
            | None -> Sim.Stats.Counter.incr t.c_no_arp
            | Some next_hop_mac ->
              let b = Bytes.copy frame in
              (* Ethernet: dst = next hop, src = our egress port. *)
              let w = Wire.Bytebuf.Writer.over b ~pos:0 in
              Net.Mac.write w next_hop_mac;
              Net.Mac.write w (Hw.Deqna.mac out.deqna);
              (* TTL at offset 14+8; checksum at 14+10. *)
              Bytes.set_uint8 b 22 (ip.Net.Ipv4.ttl - 1);
              Bytes.set_uint16_be b 24 0;
              let cks = Wire.Checksum.checksum b ~pos:14 ~len:Net.Ipv4.header_size in
              Bytes.set_uint16_be b 24 cks;
              Sim.Stats.Counter.incr t.c_fwd;
              Hw.Deqna.queue_tx out.deqna b;
              Hw.Deqna.start_transmit out.deqna)
        end
    end

let attach_port t which =
  let p = port_state t which in
  Hw.Deqna.set_interrupt_handler p.deqna (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 ~priority:Cpu_set.Interrupt t.cpu (fun ctx ->
          let rec drain () =
            match Hw.Deqna.take_rx p.deqna with
            | None -> ()
            | Some frame ->
              if Bufpool.try_alloc t.pool then Hw.Deqna.add_rx_credits p.deqna 1;
              Cpu_set.charge ctx ~cat:"router" ~label:"IP forwarding" t.forward_cost;
              forward t which frame;
              (* the frame buffer is released once queued out (or dropped) *)
              Bufpool.free t.pool;
              drain ()
          in
          drain ();
          Hw.Deqna.interrupt_done p.deqna))

let create eng ~name ~config ~link_a ~station_a ~ip_a ~link_b ~station_b ~ip_b
    ?(forward_cost = Time.us 300) () =
  let timing = Hw.Timing.create config in
  let mk link station site =
    let qbus = Sim.Resource.create eng ~name:(site ^ "-qbus") ~capacity:1 in
    Hw.Deqna.create eng timing ~link ~qbus ~mac:(Net.Mac.of_station station) ~site ()
  in
  let t =
    {
      eng;
      cpu = Cpu_set.create eng ~site:name ~cpus:1;
      pool = Bufpool.create ~capacity:32 ();
      pa = { deqna = mk link_a station_a (name ^ "-a"); p_ip = ip_a; arp = Hashtbl.create 8 };
      pb = { deqna = mk link_b station_b (name ^ "-b"); p_ip = ip_b; arp = Hashtbl.create 8 };
      routes = [];
      forward_cost;
      c_fwd = Sim.Stats.Counter.create ();
      c_no_route = Sim.Stats.Counter.create ();
      c_ttl = Sim.Stats.Counter.create ();
      c_no_arp = Sim.Stats.Counter.create ();
      c_not_ip = Sim.Stats.Counter.create ();
    }
  in
  attach_port t A;
  attach_port t B;
  (* initial receive credits on both ports *)
  let credits = 8 in
  for _ = 1 to 2 * credits do
    ignore (Bufpool.try_alloc t.pool)
  done;
  Hw.Deqna.add_rx_credits t.pa.deqna credits;
  Hw.Deqna.add_rx_credits t.pb.deqna credits;
  t

let forwarded t = Sim.Stats.Counter.value t.c_fwd
let dropped_no_route t = Sim.Stats.Counter.value t.c_no_route
let dropped_ttl t = Sim.Stats.Counter.value t.c_ttl
let dropped_no_arp t = Sim.Stats.Counter.value t.c_no_arp
let dropped_not_ip t = Sim.Stats.Counter.value t.c_not_ip
