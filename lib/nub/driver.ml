module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Timing = Hw.Timing
module Deqna = Hw.Deqna

type verdict = Consumed | To_datalink | Dropped of string

type t = {
  eng : Engine.t;
  timing : Timing.t;
  cpus : Cpu_set.t;
  deqna : Deqna.t;
  pool : Bufpool.t;
  obs : Obs.Ctx.t option;
  irq_hist : Obs.Metrics.Histogram.t option;
  mutable fast : ctx:Cpu_set.ctx -> frame:Bytes.t -> verdict;
  mutable datalink : ctx:Cpu_set.ctx -> frame:Bytes.t -> unit;
  datalink_q : Bytes.t Sim.Mailbox.t;
  (* Flat-scheduled IPI prod (registered once in [create]): every [send]
     raises one, so routing it through the engine's closure-free event
     path keeps the per-packet cost allocation-free up to the prod
     process itself. *)
  mutable ipi_prod : t -> int -> Time.span -> unit;
  c_rx : Sim.Stats.Counter.t;
  c_slow : Sim.Stats.Counter.t;
  c_drop : Sim.Stats.Counter.t;
  c_irq : Sim.Stats.Counter.t;
}

let cat = "send+receive"

let charge ctx ~label span = Cpu_set.charge ctx ~cat ~label span

let journal t ev =
  match t.obs with
  | None -> ()
  | Some o -> Obs.Ctx.record o ~at:(Engine.now t.eng) ~site:(Cpu_set.site t.cpus) ev

(* The CPU-0 prod raised by [send] once the IPI signalling latency has
   elapsed: activate the controller at interrupt priority. *)
let run_ipi_prod t call =
  Engine.spawn t.eng ~name:"ipi" (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 ~priority:Cpu_set.Interrupt t.cpus (fun ctx ->
          Cpu_set.set_trace_call ctx call;
          journal t Obs.Journal.Ipi;
          charge ctx ~label:"Uniprocessor interrupt entry"
            (Timing.uniproc_interrupt_entry t.timing);
          charge ctx ~label:"Handle interprocessor interrupt" (Timing.ipi_handler t.timing);
          charge ctx ~label:"Activate Ethernet controller"
            (Timing.activate_controller t.timing);
          Deqna.start_transmit t.deqna;
          (* Context restore after the prod: serialized on CPU 0,
             but the packet is already on its way. *)
          charge ctx ~label:"Interrupt epilogue" (Timing.interrupt_epilogue t.timing)))

let create ?obs eng timing ~cpus ~deqna ~pool =
  let site = Cpu_set.site cpus in
  let irq_hist =
    Option.map
      (fun o -> Obs.Metrics.Registry.histogram o.Obs.Ctx.metrics ~site ~name:"interrupt_latency_us")
      obs
  in
  let t =
    {
      eng;
      timing;
      cpus;
      deqna;
      pool;
      obs;
      irq_hist;
      fast = (fun ~ctx:_ ~frame:_ -> To_datalink);
      datalink = (fun ~ctx:_ ~frame:_ -> ());
      datalink_q = Sim.Mailbox.create eng;
      ipi_prod = (fun _ _ _ -> assert false);
      c_rx = Sim.Stats.Counter.create ();
      c_slow = Sim.Stats.Counter.create ();
      c_drop = Sim.Stats.Counter.create ();
      c_irq = Sim.Stats.Counter.create ();
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let reg = o.Obs.Ctx.metrics in
    Obs.Metrics.Registry.register_counter reg ~site ~name:"driver.rx_frames" t.c_rx;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"driver.rx_to_datalink" t.c_slow;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"driver.rx_dropped" t.c_drop;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"driver.interrupts" t.c_irq);
  t.ipi_prod <- Engine.register eng run_ipi_prod;
  t

let set_fast_handler t f = t.fast <- f
let set_datalink_handler t f = t.datalink <- f

(* The call id carried by a frame, if tracing registered one.  Pure
   reads throughout: when tracing is off every lookup short-circuits to
   [Sim.Trace.no_call] and nothing else changes. *)
let frame_call t frame = Sim.Trace.frame_call (Engine.trace t.eng) frame

let interrupt_body t ctx =
  Sim.Stats.Counter.incr t.c_irq;
  journal t Obs.Journal.Interrupt;
  (* Interrupt service latency: from the controller asserting the line
     to the handler actually running on CPU 0. *)
  (match t.irq_hist with
  | None -> ()
  | Some h ->
    Obs.Metrics.Histogram.observe_span h
      (Time.diff (Engine.now t.eng) (Deqna.last_irq_at t.deqna)));
  (* Attribute the handler's entry cost to the frame it was raised for —
     the head of the completion queue (non-empty whenever the interrupt
     fires). *)
  if Sim.Trace.enabled (Engine.trace t.eng) then
    Cpu_set.set_trace_call ctx
      (match Deqna.peek_rx t.deqna with
      | Some frame -> frame_call t frame
      | None -> Sim.Trace.no_call);
  charge ctx ~label:"General I/O interrupt handler" (Timing.io_interrupt t.timing);
  charge ctx ~label:"Uniprocessor interrupt entry" (Timing.uniproc_interrupt_entry t.timing);
  let rec drain () =
    match Deqna.take_rx t.deqna with
    | None -> ()
    | Some frame ->
      Sim.Stats.Counter.incr t.c_rx;
      if Sim.Trace.enabled (Engine.trace t.eng) then
        Cpu_set.set_trace_call ctx (frame_call t frame);
      (* On-the-fly receive buffer replacement: hand the controller a
         fresh buffer before processing this one (§3.2).  If the pool is
         dry the controller will drop until buffers return. *)
      if Bufpool.try_alloc t.pool then Deqna.add_rx_credits t.deqna 1;
      (match t.fast ~ctx ~frame with
      | Consumed -> ()
      | Dropped _ ->
        Sim.Stats.Counter.incr t.c_drop;
        Bufpool.free t.pool
      | To_datalink ->
        Sim.Stats.Counter.incr t.c_slow;
        (* The traditional path costs a second wakeup (§3.2). *)
        charge ctx ~label:"Wakeup datalink thread" (Timing.wakeup t.timing);
        charge ctx ~label:"Uniprocessor wakeup path"
          (Timing.uniproc_wakeup_extra t.timing);
        Sim.Mailbox.send t.datalink_q frame);
      (* Context restore and scheduler bookkeeping for this packet:
         serialized on CPU 0 but off an isolated call's latency path. *)
      charge ctx ~label:"Interrupt epilogue" (Timing.interrupt_epilogue t.timing);
      drain ()
  in
  drain ();
  Deqna.interrupt_done t.deqna

let start t ~rx_buffers =
  let granted = ref 0 in
  for _ = 1 to rx_buffers do
    if Bufpool.try_alloc t.pool then incr granted
  done;
  Deqna.add_rx_credits t.deqna !granted;
  Deqna.set_interrupt_handler t.deqna (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 ~priority:Cpu_set.Interrupt t.cpus (fun ctx ->
          interrupt_body t ctx));
  Engine.spawn t.eng ~name:"datalink" (fun () ->
      let rec loop () =
        let frame = Sim.Mailbox.recv t.datalink_q in
        Cpu_set.with_cpu t.cpus (fun ctx ->
            Cpu_set.set_trace_call ctx (frame_call t frame);
            (* Datalink demultiplexing outside the interrupt routine:
               dispatch + the module walk the fast path avoids. *)
            charge ctx ~label:"Datalink thread dispatch" (Timing.dispatch t.timing);
            charge ctx ~label:"Datalink demultiplex" (Time.us 180);
            t.datalink ~ctx ~frame);
        loop ()
      in
      loop ())

let send t ~ctx frame =
  charge ctx ~label:"Handle trap to Nub" (Timing.trap_to_nub t.timing);
  charge ctx ~label:"Queue packet for transmission" (Timing.queue_packet t.timing);
  (* Register the outgoing frame under the sending thread's call id so
     the receive path (which sees the same buffer) can attribute its
     work to the same RPC. *)
  let call = Cpu_set.trace_call ctx in
  Sim.Trace.register_frame (Engine.trace t.eng) frame ~call;
  Deqna.queue_tx t.deqna frame;
  (* The interprocessor interrupt: 10 us of signalling latency, then
     CPU 0 runs the prod at interrupt priority.  The signalling interval
     is pure latency on the call's critical path — no CPU is busy — so
     record it directly rather than through [charge]. *)
  let ipi = Timing.ipi_latency t.timing in
  let tr = Engine.trace t.eng in
  if Sim.Trace.enabled tr then begin
    let ipi_sent = Engine.now t.eng in
    Sim.Trace.add ~track:"ipi" ~call tr ~cat ~site:(Cpu_set.site t.cpus)
      ~label:"Interprocessor interrupt to CPU 0" ~start_at:ipi_sent
      ~stop_at:(Time.add ipi_sent ipi)
  end;
  t.ipi_prod t call ipi

let frames_received t = Sim.Stats.Counter.value t.c_rx
let frames_to_datalink t = Sim.Stats.Counter.value t.c_slow
let frames_dropped t = Sim.Stats.Counter.value t.c_drop
let interrupts_taken t = Sim.Stats.Counter.value t.c_irq
