(** Thread blocking with the scheduler's costs attached.

    An RPC thread parks itself in the call table and waits for the
    interrupt routine to wake it; those two wakeups dominate small-RPC
    software cost (220 µs each, Table VI) and §4.2.7 estimates busy
    waiting would save them.  This module is that wait/wakeup pair with
    the cost model applied:

    - blocking mode (default): {!wait} releases the CPU; {!notify}
      charges the 220 µs scheduler wakeup (plus the uniprocessor long
      path when applicable) to the {e waker}'s CPU, and the woken thread
      pays a dispatch cost when it reacquires a CPU;
    - busy-wait mode ([Config.busy_wait]): {!wait} spins, repeatedly
      releasing and reacquiring its CPU so interrupts can run on a
      uniprocessor; {!notify} merely sets the flag (10 µs).

    A notification arriving before {!wait} is remembered (the RPC
    transporter registers the call, then waits; the result can beat it). *)

type t

val create : ?obs:Obs.Ctx.t -> Sim.Engine.t -> Hw.Timing.t -> cpus:Hw.Cpu_set.t -> t
(** With [?obs], each notify→running handoff is journalled as a thread
    wakeup and its latency recorded in a [wakeup_latency_us]
    histogram. *)

val wait : t -> Hw.Cpu_set.ctx -> unit

val wait_timeout : t -> Hw.Cpu_set.ctx -> timeout:Sim.Time.span -> [ `Ok | `Timeout ]
(** Timeouts drive the RPC retransmission machinery.  Only available in
    blocking mode; in busy-wait mode the spin loop checks the deadline
    itself. *)

val notify : t -> waker:Hw.Cpu_set.ctx -> unit
(** Wakes (or pre-arms) the waiter, charging wakeup costs to [waker]. *)
