(** One simulated Firefly: processors, QBus, DEQNA, driver, packet-buffer
    pool, background load, and a network identity.

    A machine is created attached to an {!Hw.Ether_link.t}; RPC runtimes
    (library [rpc]) plug into its {!driver} for the interrupt-time fast
    path and build threads with {!spawn_thread}. *)

type t

val create :
  ?obs:Obs.Ctx.t ->
  Sim.Engine.t ->
  name:string ->
  config:Hw.Config.t ->
  link:Hw.Ether_link.t ->
  station:int ->
  ip:Net.Ipv4.Addr.t ->
  ?pool_buffers:int ->
  unit ->
  t
(** [pool_buffers] defaults to 64.  The driver takes 16 of them as
    controller receive credits.  [obs] is the observability context the
    machine's components publish into; omitted, the machine gets a
    private one (reachable via {!obs}), so instrumentation is always on
    but only shared when a world wires it so.
    @raise Invalid_argument if the configuration fails validation. *)

val name : t -> string
val engine : t -> Sim.Engine.t
val config : t -> Hw.Config.t
val timing : t -> Hw.Timing.t
val cpus : t -> Hw.Cpu_set.t
val driver : t -> Driver.t
val pool : t -> Bufpool.t
val mac : t -> Net.Mac.t
val ip : t -> Net.Ipv4.Addr.t
val link : t -> Hw.Ether_link.t

val obs : t -> Obs.Ctx.t
(** The machine's observability context: its metrics registry and event
    journal.  Shared with other machines when the creator passed one. *)

val new_waiter : t -> Waiter.t

val spawn_thread : t -> ?name:string -> (unit -> unit) -> unit
(** Starts a thread on this machine.  The body is responsible for
    acquiring CPUs via {!Hw.Cpu_set.with_cpu} around its bursts. *)

val power_off : t -> unit
(** Detaches the machine from the Ethernet — frames to it vanish.  Used
    by the server-crash tests. *)

val power_on : t -> unit
(** Reattaches after {!power_off}. *)

val restart : t -> down_for:Sim.Time.span -> unit
(** {!power_off} now, {!power_on} after [down_for] of virtual time —
    the machine-restart event of the fault-plan DSL (library [check]).
    @raise Invalid_argument if [down_for] is negative. *)

(** {1 Measurement} *)

val average_busy_cpus : t -> upto:Sim.Time.t -> float
val reset_start : t -> unit

val start_idle_load : t -> unit
(** Starts the background threads that draw [idle_load_cpus] processors
    on average (the paper's machines idled at ~0.15 CPUs).  Idempotent. *)
