(** Byte-level serialization for packet headers and payloads.

    {!Writer} appends big-endian (network byte order) fields to a
    fixed-capacity buffer; {!Reader} consumes them with bounds checking.
    All multi-byte integers are big-endian, matching the IP/UDP headers
    the RPC transport really encodes.

    {!View} is a non-copying window over a buffer: the receive hot path
    hands payload views (rather than [Bytes.sub] copies) from the frame
    parser up through fragment reassembly to argument unmarshalling.
    Ownership rule: a view {e aliases} the frame it was cut from, and
    frames are never mutated after delivery, so views stay valid for as
    long as the receiver holds them; copy with {!View.to_bytes} only
    when the bytes must outlive or diverge from the frame (e.g. the
    security layer's in-place transforms). *)

exception Overflow of string
(** Raised when a write exceeds the buffer capacity or a read runs past
    the end of the data. *)

module Writer : sig
  type t

  val create : int -> t
  (** [create capacity] is an empty writer over a fresh buffer. *)

  val over : Stdlib.Bytes.t -> pos:int -> t
  (** [over buf ~pos] writes into an existing buffer starting at offset
      [pos] — how RPC stubs marshal directly into a shared packet
      buffer.  {!length} and {!patch_u16} positions are relative to
      [pos]. *)

  val length : t -> int
  (** Bytes written so far. *)

  val capacity : t -> int

  val u8 : t -> int -> unit
  (** [u8 w v] appends one byte; [v] must be in [0, 255]. *)

  val u16 : t -> int -> unit
  (** Appends a 16-bit big-endian value in [0, 0xffff]. *)

  val u32 : t -> int32 -> unit
  val bytes : t -> Stdlib.Bytes.t -> unit
  val sub : t -> Stdlib.Bytes.t -> pos:int -> len:int -> unit
  val string : t -> string -> unit

  val zeros : t -> int -> unit
  (** [zeros w n] appends [n] zero bytes (checksum placeholders,
      padding). *)

  val patch_u16 : t -> pos:int -> int -> unit
  (** [patch_u16 w ~pos v] overwrites the 16-bit field previously
      written at offset [pos]; used to fill in checksums and lengths
      after the fact. *)

  val contents : t -> Stdlib.Bytes.t
  (** A copy of the bytes written so far. *)

  val to_bytes : t -> Stdlib.Bytes.t
  (** The bytes written so far, {e without} a copy when the writer was
      created with {!create} and filled exactly to capacity — the frame
      builder sizes its buffer exactly, so the finished frame is the
      buffer.  Falls back to {!contents} otherwise.  The writer must not
      be written to again after [to_bytes] returns its buffer. *)

  val unsafe_buffer : t -> Stdlib.Bytes.t
  (** The underlying buffer, unscoped by {!length}; for checksumming in
      place without a copy.  Offsets into it are absolute — convert
      writer-relative positions with {!absolute_pos}. *)

  val absolute_pos : t -> int -> int
  (** [absolute_pos w p] is the offset in {!unsafe_buffer} of the
      writer-relative position [p]. *)
end

module View : sig
  type t
  (** An immutable [(buffer, offset, length)] window.  No bytes are
      copied; the window keeps the underlying buffer alive. *)

  val of_bytes : ?pos:int -> ?len:int -> Stdlib.Bytes.t -> t
  val empty : t
  val length : t -> int

  val buffer : t -> Stdlib.Bytes.t
  (** The underlying buffer (shared, not a copy).  Callers must treat it
      as read-only and index it with {!offset}; exposed so checksums can
      run over a window in place. *)

  val offset : t -> int
  (** Offset of the window within {!buffer}. *)

  val sub : t -> pos:int -> len:int -> t
  (** A sub-window, still no copy.  @raise Invalid_argument out of range. *)

  val get : t -> int -> char
  val to_bytes : t -> Stdlib.Bytes.t  (** copies *)

  val to_string : t -> string  (** copies *)

  val add_to_buffer : t -> Stdlib.Buffer.t -> unit
  (** Append the window to a [Buffer.t] — fragment reassembly's single
      copy per fragment. *)

  val blit : t -> dst:Stdlib.Bytes.t -> dst_pos:int -> unit

  val equal_bytes : t -> Stdlib.Bytes.t -> bool
  (** Content equality against owned bytes, without copying the view. *)
end

module Reader : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> Stdlib.Bytes.t -> t

  val of_view : View.t -> t
  (** A fresh reader over a view's window, sharing the underlying
      buffer.  Each call returns an independent cursor, so a stored view
      can be decoded more than once. *)

  val remaining : t -> int
  val position : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val bytes : t -> int -> Stdlib.Bytes.t
  val string : t -> int -> string

  val view : t -> int -> View.t
  (** [view r n] consumes the next [n] bytes and returns them as a
      non-copying {!View.t}.  Bounds-checked like {!bytes}. *)

  val sub_reader : t -> int -> t
  (** [sub_reader r n] consumes the next [n] bytes of [r] and returns a
      reader confined to exactly that window (no copy).  Reads on the
      sub-reader past its [n] bytes raise {!Overflow} even when the
      parent has more data — the window is a hard bound. *)

  val skip : t -> int -> unit

  val expect_end : t -> unit
  (** @raise Overflow if bytes remain unread; used by strict decoders. *)
end
