exception Overflow of string

module Writer = struct
  (* [cursor] is the absolute next-write offset in [buf]; [origin] is
     where this writer's window starts, so [length] and patch positions
     stay relative for writers laid over a shared packet buffer. *)
  type t = { buf : Bytes.t; origin : int; mutable cursor : int }

  let create capacity =
    if capacity < 0 then invalid_arg "Bytebuf.Writer.create: negative capacity";
    { buf = Bytes.create capacity; origin = 0; cursor = 0 }

  let over buf ~pos =
    if pos < 0 || pos > Bytes.length buf then invalid_arg "Bytebuf.Writer.over: bad position";
    { buf; origin = pos; cursor = pos }

  let length t = t.cursor - t.origin
  let capacity t = Bytes.length t.buf - t.origin

  let ensure t n ctx =
    if t.cursor + n > Bytes.length t.buf then
      raise
        (Overflow
           (Printf.sprintf "write %s: %d + %d > %d" ctx (length t) n (capacity t)))

  let u8 t v =
    if v < 0 || v > 0xff then invalid_arg "Bytebuf.Writer.u8: out of range";
    ensure t 1 "u8";
    Bytes.unsafe_set t.buf t.cursor (Char.unsafe_chr v);
    t.cursor <- t.cursor + 1

  let u16 t v =
    if v < 0 || v > 0xffff then invalid_arg "Bytebuf.Writer.u16: out of range";
    ensure t 2 "u16";
    Bytes.set_uint16_be t.buf t.cursor v;
    t.cursor <- t.cursor + 2

  let u32 t v =
    ensure t 4 "u32";
    Bytes.set_int32_be t.buf t.cursor v;
    t.cursor <- t.cursor + 4

  let sub t src ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length src then
      invalid_arg "Bytebuf.Writer.sub: bad range";
    ensure t len "sub";
    Bytes.blit src pos t.buf t.cursor len;
    t.cursor <- t.cursor + len

  let bytes t src = sub t src ~pos:0 ~len:(Bytes.length src)

  let string t s =
    ensure t (String.length s) "string";
    Bytes.blit_string s 0 t.buf t.cursor (String.length s);
    t.cursor <- t.cursor + String.length s

  let zeros t n =
    ensure t n "zeros";
    Bytes.fill t.buf t.cursor n '\000';
    t.cursor <- t.cursor + n

  let patch_u16 t ~pos v =
    if v < 0 || v > 0xffff then invalid_arg "Bytebuf.Writer.patch_u16: out of range";
    if pos < 0 || t.origin + pos + 2 > t.cursor then
      invalid_arg "Bytebuf.Writer.patch_u16: bad position";
    Bytes.set_uint16_be t.buf (t.origin + pos) v

  let contents t = Bytes.sub t.buf t.origin (length t)

  let to_bytes t =
    if t.origin = 0 && t.cursor = Bytes.length t.buf then t.buf else contents t

  let unsafe_buffer t = t.buf
  let absolute_pos t p = t.origin + p
end

module View = struct
  type t = { v_buf : Bytes.t; v_pos : int; v_len : int }

  let of_bytes ?(pos = 0) ?len buf =
    let len =
      match len with
      | Some l -> l
      | None -> Bytes.length buf - pos
    in
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then
      invalid_arg "Bytebuf.View.of_bytes: bad range";
    { v_buf = buf; v_pos = pos; v_len = len }

  let empty = { v_buf = Bytes.empty; v_pos = 0; v_len = 0 }

  let length t = t.v_len
  let buffer t = t.v_buf
  let offset t = t.v_pos

  let sub t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > t.v_len then invalid_arg "Bytebuf.View.sub: bad range";
    { v_buf = t.v_buf; v_pos = t.v_pos + pos; v_len = len }

  let get t i =
    if i < 0 || i >= t.v_len then invalid_arg "Bytebuf.View.get: out of range";
    Bytes.get t.v_buf (t.v_pos + i)

  let to_bytes t = Bytes.sub t.v_buf t.v_pos t.v_len
  let to_string t = Bytes.sub_string t.v_buf t.v_pos t.v_len
  let add_to_buffer t buf = Buffer.add_subbytes buf t.v_buf t.v_pos t.v_len
  let blit t ~dst ~dst_pos = Bytes.blit t.v_buf t.v_pos dst dst_pos t.v_len

  let equal_bytes t b =
    t.v_len = Bytes.length b
    &&
    let rec go i = i >= t.v_len || (Bytes.get t.v_buf (t.v_pos + i) = Bytes.get b i && go (i + 1)) in
    go 0
end

module Reader = struct
  type t = { data : Bytes.t; limit : int; mutable pos : int; start : int }

  let of_bytes ?(pos = 0) ?len data =
    let len =
      match len with
      | Some l -> l
      | None -> Bytes.length data - pos
    in
    if pos < 0 || len < 0 || pos + len > Bytes.length data then
      invalid_arg "Bytebuf.Reader.of_bytes: bad range";
    { data; limit = pos + len; pos; start = pos }

  let of_view (v : View.t) =
    { data = v.View.v_buf; limit = v.View.v_pos + v.View.v_len; pos = v.View.v_pos;
      start = v.View.v_pos }

  let remaining t = t.limit - t.pos
  let position t = t.pos - t.start

  let need t n ctx =
    if t.pos + n > t.limit then
      raise (Overflow (Printf.sprintf "read %s: %d bytes needed, %d left" ctx n (remaining t)))

  let u8 t =
    need t 1 "u8";
    let v = Char.code (Bytes.unsafe_get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2 "u16";
    let v = Bytes.get_uint16_be t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4 "u32";
    let v = Bytes.get_int32_be t.data t.pos in
    t.pos <- t.pos + 4;
    v

  let bytes t n =
    need t n "bytes";
    let v = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    v

  let string t n =
    need t n "string";
    let v = Bytes.sub_string t.data t.pos n in
    t.pos <- t.pos + n;
    v

  let view t n =
    need t n "view";
    let v = { View.v_buf = t.data; v_pos = t.pos; v_len = n } in
    t.pos <- t.pos + n;
    v

  let sub_reader t n =
    need t n "sub_reader";
    let r = { data = t.data; limit = t.pos + n; pos = t.pos; start = t.pos } in
    t.pos <- t.pos + n;
    r

  let skip t n =
    need t n "skip";
    t.pos <- t.pos + n

  let expect_end t =
    if remaining t <> 0 then
      raise (Overflow (Printf.sprintf "expect_end: %d trailing bytes" (remaining t)))
end
