(** The fleet binding service: clients resolve servers by service name.

    A generalization of {!Rpc.Binder} for N-node clusters: each service
    name maps to the runtime currently exporting it, stamped with a
    {e generation} that increments on every rebind.  A client's binding
    carries the generation it resolved, so after a service moves
    (failover, rebalancing) the stale binding is detectable — and, like
    the paper's binder, resolution itself is a zero-cost oracle; the
    measured path is the established binding. *)

type t

type binding = {
  b_service : string;
  b_generation : int;  (** the service generation this binding resolved *)
  b_node_name : string;  (** exporter's machine name at resolve time *)
  b_rpc : Rpc.Runtime.binding;  (** the transport-level binding to call on *)
}

val create : unit -> t

val register : t -> service:string -> intf:Rpc.Idl.interface -> Rpc.Runtime.t -> unit
(** Announces that [rt] exports [intf] under [service] (the interface
    must already be exported on the runtime — the name service does not
    start workers).  Fresh services begin at generation 0.
    @raise Invalid_argument if [service] is already registered or the
    runtime does not export [intf]. *)

val rebind : t -> service:string -> Rpc.Runtime.t -> unit
(** Moves [service] to a new exporting runtime and bumps its
    generation; existing bindings become stale.
    @raise Invalid_argument if [service] is unknown or the new runtime
    does not export the service's interface. *)

val resolve :
  t -> ?options:Rpc.Runtime.call_options -> Rpc.Runtime.t -> service:string -> binding
(** Resolves [service] for a client runtime: shared memory when the
    exporter lives on the same machine, the packet-exchange protocol
    over the fabric otherwise.
    @raise Rpc_error.Rpc ([Unbound_interface]) if nobody exports it. *)

val is_stale : t -> binding -> bool
(** Whether the service has been rebound (or dropped) since this
    binding resolved.  Stale checks are counted. *)

val generation : t -> service:string -> int option
val services : t -> string list
(** Registered service names, sorted. *)

(** {1 Statistics} *)

val lookups : t -> int
val rebinds : t -> int
val stale_hits : t -> int
(** How many {!is_stale} checks returned [true]. *)
