(** Fleet load scenarios and their tail-latency report.

    Three placements over an N-node {!Cluster}:
    - {e uniform}: every node serves and every node's clients call a
      seeded-random other node — the balanced datacenter baseline;
    - {e incast}: node 0 is the only server, every other node hosts
      clients — fan-in onto one machine's CPU 0, receive-buffer pool
      and switch egress port;
    - {e straggler}: uniform placement, but the last node's CPUs run at
      a configurable fraction of full speed — its service times stretch
      the fleet-wide p99/p99.9 while medians barely move.

    Clients are driven by the {!Gen} arrival processes (open-loop
    Poisson and Pareto, closed loop), every call's latency lands in the
    issuing node's and the fleet-wide {!Obs} histograms, and the report
    carries per-node and fleet p50/p99/p99.9, conservation counters
    (issued = completed + failed), switch statistics, and a saturation
    breakdown naming the first bottleneck.

    A run is a pure function of the spec: same spec (including seed) →
    byte-identical {!render} output. *)

type kind = Uniform | Incast | Straggler

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type spec = {
  s_nodes : int;  (** machines in the cluster, >= 2 *)
  s_clients : int;  (** client slots fleet-wide, >= 1 *)
  s_calls : int;  (** total calls to issue, >= 1 *)
  s_arrival : Gen.arrival;
  s_kind : kind;
  s_seed : int;
  s_payload : int;  (** 0 = Null(); otherwise GetData(payload) results *)
  s_straggler_speedup : float;
      (** CPU speed of the straggler node relative to the rest
          (default 0.25); only used by [Straggler] *)
  s_switch_latency_us : float;
  s_egress_capacity : int;
  s_queue : [ `Heap | `Calendar ];
      (** engine event-queue discipline (default [`Heap]) — a pure
          performance knob; same-seed runs render byte-identically
          under either, and the queue choice is deliberately absent
          from {!render} *)
}

val default : spec
(** 4 nodes, 16 clients, 400 calls, closed loop with zero think time,
    uniform placement, seed 42, Null(). *)

type node_report = {
  nr_name : string;
  nr_role : string;  (** ["server"], ["clients"], ["server+clients"], ["straggler"] *)
  nr_issued : int;  (** calls issued from this node *)
  nr_served : int;  (** calls served by this node's runtime *)
  nr_p50_us : float;
  nr_p99_us : float;
  nr_p999_us : float;  (** 0 when the node issued no calls *)
  nr_busy_cpus : float;
  nr_cpu0_util : float;
  nr_interrupts : int;
  nr_rx_lost : int;  (** controller frames lost to buffer exhaustion *)
  nr_pool_exhaustions : int;
}

type bottleneck =
  | Cpu0_interrupts  (** CPU 0 interrupt serialization saturated first *)
  | Rx_buffer_pool
  | Switch_egress
  | Call_table  (** server worker pool / call table: Busy replies *)
  | Unsaturated

val bottleneck_to_string : bottleneck -> string

type report = {
  r_spec : spec;
  r_issued : int;
  r_completed : int;
  r_failed : int;
  r_max_in_flight : int;
  r_elapsed_us : float;
  r_rate_per_sec : float;
  r_fleet_p50_us : float;
  r_fleet_p99_us : float;
  r_fleet_p999_us : float;
  r_nodes : node_report list;
  r_retransmissions : int;
  r_busy_replies : int;
  r_switch_forwarded : int;
  r_incast_drops : int;
  r_unknown_drops : int;
  r_lookups : int;
  r_leaked_sinks : int;
  r_stuck_callers : int;
  r_events : int;  (** engine events executed — the bench probe's unit *)
  r_bottleneck : bottleneck;
}

type artifacts = {
  a_obs : Obs.Ctx.t;
  a_spans : Sim.Trace.span list;  (** empty unless the run was traced *)
}

val run : ?trace:bool -> spec -> report * artifacts
(** Builds the cluster, drives the workload to completion and collects
    the report.  @raise Invalid_argument on a malformed spec (too few
    nodes for the placement, no clients, no calls). *)

val render : report -> string
(** The deterministic fleet report: spec echo, conservation and switch
    lines, the per-node table, fleet-wide tails and the saturation
    breakdown. *)

val check : report -> (unit, string list) result
(** The smoke invariants: calls issued = spec calls =
    completed + failed; no leaked fragment sinks; no stuck callers; a
    closed-loop run never exceeded its concurrency bound. *)
