module Engine = Sim.Engine
module Time = Sim.Time

type pending = { pd_src : Net.Mac.t; pd_frame : Bytes.t }

type port = {
  pt_id : int;
  pt_link : Hw.Ether_link.t;
  pt_egress : pending Queue.t;
  pt_kick : Sim.Condvar.t;
}

type t = {
  eng : Engine.t;
  latency : Time.span;
  egress_cap : int;
  pts : port array;
  macs : (Net.Mac.t, int) Hashtbl.t;
  mutable injector : (port:int -> Bytes.t -> bool) option;
  c_forwarded : Sim.Stats.Counter.t;
  c_unknown : Sim.Stats.Counter.t;
  c_incast : Sim.Stats.Counter.t;
  mutable max_depth : int;
}

(* One egress process per port: drain the queue in FIFO order, holding
   the port's segment for each frame's wire time — the per-port
   serialization that makes incast a queueing problem rather than a
   shared-medium one. *)
let egress_loop pt () =
  let rec loop () =
    match Queue.take_opt pt.pt_egress with
    | Some { pd_src; pd_frame } ->
      Hw.Ether_link.transmit pt.pt_link ~src:pd_src pd_frame;
      loop ()
    | None ->
      Sim.Condvar.await pt.pt_kick;
      loop ()
  in
  loop ()

(* A frame has fully arrived at the switch (ingress wire time elapsed)
   and crossed the fabric: queue it at the destination port, or drop it
   if the egress queue is full — the incast loss the RPC layer must
   retransmit through. *)
let enqueue_egress t dst_port ~src frame =
  let pt = t.pts.(dst_port) in
  let forced_drop =
    match t.injector with
    | Some f -> f ~port:dst_port frame
    | None -> false
  in
  if forced_drop || Queue.length pt.pt_egress >= t.egress_cap then
    Sim.Stats.Counter.incr t.c_incast
  else begin
    Queue.push { pd_src = src; pd_frame = frame } pt.pt_egress;
    t.max_depth <- max t.max_depth (Queue.length pt.pt_egress);
    Sim.Stats.Counter.incr t.c_forwarded;
    ignore (Sim.Condvar.signal pt.pt_kick)
  end

let ingress t ~src ~frame ~wire =
  let dst = Net.Mac.read (Wire.Bytebuf.Reader.of_bytes frame) in
  match Hashtbl.find_opt t.macs dst with
  | None -> Sim.Stats.Counter.incr t.c_unknown
  | Some dst_port ->
    (* Store-and-forward: the frame is only complete at the switch after
       its ingress wire time; the fabric adds [latency] on top. *)
    Engine.schedule t.eng
      ~after:(Time.span_add wire t.latency)
      (fun () -> enqueue_egress t dst_port ~src frame)

let create ?obs eng ~mbps ?(latency = Time.us 10) ?(egress_capacity = 32) ~ports () =
  if ports < 1 then invalid_arg "Topology.create: ports must be >= 1";
  if egress_capacity < 1 then invalid_arg "Topology.create: egress_capacity must be >= 1";
  if Time.span_is_negative latency then invalid_arg "Topology.create: negative latency";
  let t =
    {
      eng;
      latency;
      egress_cap = egress_capacity;
      pts =
        Array.init ports (fun i ->
            {
              pt_id = i;
              (* Per-port links keep their own medium resource; metrics
                 stay unregistered here (N links would collide on the
                 fixed "ether" site) — the switch publishes aggregates
                 under "switch" instead. *)
              pt_link = Hw.Ether_link.create eng ~mbps;
              pt_egress = Queue.create ();
              pt_kick = Sim.Condvar.create eng;
            });
      macs = Hashtbl.create 32;
      injector = None;
      c_forwarded = Sim.Stats.Counter.create ();
      c_unknown = Sim.Stats.Counter.create ();
      c_incast = Sim.Stats.Counter.create ();
      max_depth = 0;
    }
  in
  Array.iter
    (fun pt ->
      Hw.Ether_link.set_uplink pt.pt_link
        (Some (fun ~src ~frame ~wire -> ingress t ~src ~frame ~wire));
      Engine.spawn eng ~name:(Printf.sprintf "switch-egress-%d" pt.pt_id) (egress_loop pt))
    t.pts;
  (match obs with
  | None -> ()
  | Some o ->
    let reg = o.Obs.Ctx.metrics in
    let site = "switch" in
    Obs.Metrics.Registry.register_counter reg ~site ~name:"switch.forwarded" t.c_forwarded;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"switch.dropped_unknown" t.c_unknown;
    Obs.Metrics.Registry.register_counter reg ~site ~name:"switch.dropped_incast" t.c_incast;
    Obs.Metrics.Registry.register_probe reg ~site ~name:"switch.max_egress_depth" (fun () ->
        float_of_int t.max_depth));
  t

let ports t = Array.length t.pts

let port_link t i =
  if i < 0 || i >= Array.length t.pts then invalid_arg "Topology.port_link: no such port";
  t.pts.(i).pt_link

let register_mac t ~mac ~port =
  if port < 0 || port >= Array.length t.pts then invalid_arg "Topology.register_mac: no such port";
  if Hashtbl.mem t.macs mac then
    invalid_arg ("Topology.register_mac: duplicate MAC " ^ Net.Mac.to_string mac);
  Hashtbl.replace t.macs mac port

let set_egress_fault_injector t f = t.injector <- f
let frames_forwarded t = Sim.Stats.Counter.value t.c_forwarded
let frames_dropped_unknown t = Sim.Stats.Counter.value t.c_unknown
let frames_dropped_incast t = Sim.Stats.Counter.value t.c_incast
let max_egress_depth t = t.max_depth
