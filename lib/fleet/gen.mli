(** Arrival-process generators for fleet load.

    Open-loop processes emit calls at generated instants regardless of
    completions (the regime where tails explode — the nanoPU paper's
    framing); the closed-loop process keeps a fixed number of calls in
    flight and paces each client with a think time (the paper's own
    Table I measurement loop is closed with zero think time).

    Every draw comes off a caller-supplied {!Sim.Rng.t}, so a generator
    stream is a pure function of its seed — the fleet determinism tier
    depends on it. *)

type arrival =
  | Poisson of { rate_per_sec : float }
      (** open loop, exponential inter-arrivals with mean [1/rate] *)
  | Pareto of { alpha : float; rate_per_sec : float }
      (** open loop, Pareto(alpha, xm) inter-arrivals scaled so the
          mean is [1/rate]; requires [alpha > 1] for the mean to
          exist *)
  | Closed of { think_us : float }
      (** closed loop: at most one outstanding call per client, the
          next issued [think_us] after the previous result *)

val pareto : Sim.Rng.t -> alpha:float -> xm:float -> float
(** One Pareto(alpha, xm) draw by inverse CDF: [xm * u^(-1/alpha)].
    @raise Invalid_argument unless [alpha > 0.] and [xm > 0.]. *)

val interarrival_us : Sim.Rng.t -> arrival -> float
(** The next inter-arrival gap (or think gap, for [Closed]) in
    microseconds.
    @raise Invalid_argument on non-positive rates, [alpha <= 1.] for
    [Pareto], or negative think times. *)

val is_open_loop : arrival -> bool

val to_string : arrival -> string
(** Deterministic rendering for report headers, e.g.
    ["poisson(2000.0/s)"]. *)
