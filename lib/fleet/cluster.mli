(** An N-node cluster: one engine, a switched topology, N machines each
    on its own switch port with its own RPC node/runtime and receive
    buffer pool, a shared name service, and per-node + fleet-wide
    latency histograms in one {!Obs.Ctx}.

    The 2-machine {!Workload.World} remains the paper-reproduction
    path; a cluster is what the fleet scenarios and the scale tests
    build on. *)

type node = {
  nd_id : int;
  nd_name : string;  (** ["node<i>"] — also the node's metrics site *)
  nd_machine : Nub.Machine.t;
  nd_rpc : Rpc.Node.t;
  nd_rt : Rpc.Runtime.t;
  nd_hist : Obs.Metrics.Histogram.t;
      (** latency (us) of calls {e issued from} this node *)
}

type t = {
  cl_eng : Sim.Engine.t;
  cl_obs : Obs.Ctx.t;
  cl_switch : Topology.t;
  cl_nodes : node array;
  cl_names : Nameserv.t;
  cl_fleet_hist : Obs.Metrics.Histogram.t;
      (** every call latency fleet-wide, site ["fleet"] *)
}

val create :
  ?seed:int ->
  ?queue:[ `Heap | `Calendar ] ->
  ?config:Hw.Config.t ->
  ?config_of:(int -> Hw.Config.t) ->
  ?switch_latency:Sim.Time.span ->
  ?egress_capacity:int ->
  ?pool_buffers:int ->
  ?idle_load:bool ->
  ?obs:Obs.Ctx.t ->
  nodes:int ->
  unit ->
  t
(** [queue] (default [`Heap]) selects the engine's event-queue
    discipline (see {!Sim.Engine.create}); same-seed runs render
    byte-identically under either.  [config_of i] (default: the
    constant [config], default
    {!Hw.Config.default}) picks node [i]'s machine configuration —
    how straggler scenarios slow one server down.  [idle_load] defaults
    to [false]: fleet tails are measured without the paper's background
    load unless asked for.
    @raise Invalid_argument if [nodes < 2] or above the addressing
    limit (200). *)

val node : t -> int -> node
val nodes : t -> int

val export_service :
  t -> node:int -> service:string -> ?workers:int -> unit -> unit
(** Exports the standard {!Workload.Test_interface} from node [node]'s
    runtime under [service] (default 8 workers) and registers it with
    the name service. *)

val resolve :
  t -> node:int -> service:string -> ?options:Rpc.Runtime.call_options -> unit -> Nameserv.binding
(** Resolve [service] for a client on node [node]. *)

val run_until_quiet : ?limit:Sim.Time.span -> t -> Sim.Gate.t -> unit
(** Like {!Workload.World.run_until_quiet}: drive the engine until the
    gate opens, failing after [limit] (default 600 simulated seconds). *)

val leaked_sinks : t -> int
(** Sum of registered fragment sinks across all nodes — nonzero at
    quiescence means a server worker leaked one. *)

val stuck_callers : t -> int
(** Sum of outstanding caller registrations across all nodes — nonzero
    at quiescence means a caller thread never completed. *)
