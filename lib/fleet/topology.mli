(** A switched N-port topology replacing the single shared Ethernet.

    Each port is its own {!Hw.Ether_link} segment (so a machine's DEQNA
    attaches unchanged and transmissions serialize per port, not
    fleet-wide), bridged by a store-and-forward switch: a frame whose
    destination MAC is off-segment reaches the switch via the link's
    uplink hook once fully received, crosses the fabric after a
    configurable forwarding latency, and queues at the destination
    port's egress.  The egress queue is bounded — under incast fan-in
    the overflow is dropped and counted, and the RPC retransmission
    machinery has to recover, exactly the regime the extreme-scale RPC
    literature studies.

    All state transitions happen at seeded-engine event granularity, so
    a switch run is a pure function of the simulation seed. *)

type t

val create :
  ?obs:Obs.Ctx.t ->
  Sim.Engine.t ->
  mbps:float ->
  ?latency:Sim.Time.span ->
  ?egress_capacity:int ->
  ports:int ->
  unit ->
  t
(** [create eng ~mbps ~ports ()] builds [ports] per-port segments and
    starts one egress process per port.  [latency] (default 10 us) is
    the fabric forwarding delay per frame; [egress_capacity] (default
    32 frames) bounds each port's egress queue.  With [?obs] the
    aggregate forwarded/dropped counters are registered under site
    ["switch"].
    @raise Invalid_argument on a non-positive port count, rate,
    capacity, or a negative latency. *)

val ports : t -> int

val port_link : t -> int -> Hw.Ether_link.t
(** The segment of port [i]; machines attach to it as to the classic
    shared link.  @raise Invalid_argument if [i] is out of range. *)

val register_mac : t -> mac:Net.Mac.t -> port:int -> unit
(** Teaches the switch that [mac] lives behind [port] (deterministic
    static learning — fleet construction registers each machine as it
    is attached).  @raise Invalid_argument on a duplicate MAC or bad
    port. *)

val set_egress_fault_injector : t -> (port:int -> Bytes.t -> bool) option -> unit
(** When set, a frame about to be queued at [port]'s egress is dropped
    (and counted as an incast drop) if the injector returns [true] —
    lets tests and scenarios force congestion loss deterministically. *)

(** {1 Statistics} *)

val frames_forwarded : t -> int
val frames_dropped_unknown : t -> int
(** Destination MAC never registered. *)

val frames_dropped_incast : t -> int
(** Egress queue full (or fault-injected) at enqueue time. *)

val max_egress_depth : t -> int
(** High-water mark across all ports. *)
