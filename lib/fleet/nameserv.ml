type entry = { mutable e_rt : Rpc.Runtime.t; mutable e_gen : int; e_intf : Rpc.Idl.interface }

type binding = {
  b_service : string;
  b_generation : int;
  b_node_name : string;
  b_rpc : Rpc.Runtime.binding;
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutable n_lookups : int;
  mutable n_rebinds : int;
  mutable n_stale : int;
}

let create () = { table = Hashtbl.create 16; n_lookups = 0; n_rebinds = 0; n_stale = 0 }

let register t ~service ~intf rt =
  if Hashtbl.mem t.table service then
    invalid_arg (Printf.sprintf "Nameserv.register: %s already registered" service);
  if not (Rpc.Runtime.is_exported rt intf) then
    invalid_arg
      (Printf.sprintf "Nameserv.register: %s is not exported on the given runtime" service);
  Hashtbl.replace t.table service { e_rt = rt; e_gen = 0; e_intf = intf }

let rebind t ~service rt =
  match Hashtbl.find_opt t.table service with
  | None -> invalid_arg (Printf.sprintf "Nameserv.rebind: unknown service %s" service)
  | Some e ->
    if not (Rpc.Runtime.is_exported rt e.e_intf) then
      invalid_arg
        (Printf.sprintf "Nameserv.rebind: %s is not exported on the new runtime" service);
    e.e_rt <- rt;
    e.e_gen <- e.e_gen + 1;
    t.n_rebinds <- t.n_rebinds + 1

let resolve t ?options client ~service =
  t.n_lookups <- t.n_lookups + 1;
  match Hashtbl.find_opt t.table service with
  | None -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Unbound_interface service)
  | Some e ->
    let server_machine = Rpc.Runtime.machine e.e_rt in
    let options =
      match options with
      | Some o -> o
      | None -> Rpc.Runtime.default_options client
    in
    let rpc =
      if Rpc.Runtime.machine client == server_machine then
        Rpc.Runtime.bind_local client ~server:e.e_rt e.e_intf ~options
      else
        Rpc.Runtime.bind_ether client
          ~dst:
            {
              Rpc.Frames.mac = Nub.Machine.mac server_machine;
              ip = Nub.Machine.ip server_machine;
            }
          ~server_space:(Rpc.Runtime.space e.e_rt) e.e_intf ~options
    in
    {
      b_service = service;
      b_generation = e.e_gen;
      b_node_name = Nub.Machine.name server_machine;
      b_rpc = rpc;
    }

let is_stale t b =
  let stale =
    match Hashtbl.find_opt t.table b.b_service with
    | None -> true
    | Some e -> e.e_gen <> b.b_generation
  in
  if stale then t.n_stale <- t.n_stale + 1;
  stale

let generation t ~service =
  Option.map (fun e -> e.e_gen) (Hashtbl.find_opt t.table service)

let services t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let lookups t = t.n_lookups
let rebinds t = t.n_rebinds
let stale_hits t = t.n_stale
