module Engine = Sim.Engine
module Time = Sim.Time
module Machine = Nub.Machine
module Cpu_set = Hw.Cpu_set
module Ti = Workload.Test_interface

type kind = Uniform | Incast | Straggler

let kind_to_string = function
  | Uniform -> "uniform"
  | Incast -> "incast"
  | Straggler -> "straggler"

let kind_of_string = function
  | "uniform" -> Some Uniform
  | "incast" -> Some Incast
  | "straggler" -> Some Straggler
  | _ -> None

type spec = {
  s_nodes : int;
  s_clients : int;
  s_calls : int;
  s_arrival : Gen.arrival;
  s_kind : kind;
  s_seed : int;
  s_payload : int;
  s_straggler_speedup : float;
  s_switch_latency_us : float;
  s_egress_capacity : int;
  (* Engine event-queue discipline; a pure performance knob.  Kept out
     of [render] deliberately: same-seed reports must stay
     byte-identical across queue choices. *)
  s_queue : [ `Heap | `Calendar ];
}

let default =
  {
    s_nodes = 4;
    s_clients = 16;
    s_calls = 400;
    s_arrival = Gen.Closed { think_us = 0. };
    s_kind = Uniform;
    s_seed = 42;
    s_payload = 0;
    s_straggler_speedup = 0.25;
    s_switch_latency_us = 10.;
    s_egress_capacity = 32;
    s_queue = `Heap;
  }

type node_report = {
  nr_name : string;
  nr_role : string;
  nr_issued : int;
  nr_served : int;
  nr_p50_us : float;
  nr_p99_us : float;
  nr_p999_us : float;
  nr_busy_cpus : float;
  nr_cpu0_util : float;
  nr_interrupts : int;
  nr_rx_lost : int;
  nr_pool_exhaustions : int;
}

type bottleneck = Cpu0_interrupts | Rx_buffer_pool | Switch_egress | Call_table | Unsaturated

let bottleneck_to_string = function
  | Cpu0_interrupts -> "CPU 0 interrupt serialization"
  | Rx_buffer_pool -> "receive buffer pool"
  | Switch_egress -> "switch egress queue"
  | Call_table -> "call table / worker pool (Busy replies)"
  | Unsaturated -> "none (unsaturated)"

type report = {
  r_spec : spec;
  r_issued : int;
  r_completed : int;
  r_failed : int;
  r_max_in_flight : int;
  r_elapsed_us : float;
  r_rate_per_sec : float;
  r_fleet_p50_us : float;
  r_fleet_p99_us : float;
  r_fleet_p999_us : float;
  r_nodes : node_report list;
  r_retransmissions : int;
  r_busy_replies : int;
  r_switch_forwarded : int;
  r_incast_drops : int;
  r_unknown_drops : int;
  r_lookups : int;
  r_leaked_sinks : int;
  r_stuck_callers : int;
  r_events : int;
  r_bottleneck : bottleneck;
}

type artifacts = { a_obs : Obs.Ctx.t; a_spans : Sim.Trace.span list }

let validate spec =
  if spec.s_nodes < 2 then invalid_arg "Scenario: need at least 2 nodes";
  if spec.s_clients < 1 then invalid_arg "Scenario: need at least 1 client";
  if spec.s_calls < 1 then invalid_arg "Scenario: need at least 1 call";
  if spec.s_payload < 0 then invalid_arg "Scenario: negative payload";
  if spec.s_payload > Ti.get_data_max then invalid_arg "Scenario: payload too large";
  if spec.s_straggler_speedup <= 0. then invalid_arg "Scenario: straggler speedup must be > 0";
  if spec.s_switch_latency_us < 0. then invalid_arg "Scenario: negative switch latency";
  if spec.s_egress_capacity < 1 then invalid_arg "Scenario: egress capacity must be >= 1"

(* The fleet-wide arrival rate is split evenly over the client slots,
   so [s_clients] scales parallelism without changing offered load. *)
let per_slot_arrival spec =
  let n = float_of_int spec.s_clients in
  match spec.s_arrival with
  | Gen.Poisson { rate_per_sec } -> Gen.Poisson { rate_per_sec = rate_per_sec /. n }
  | Gen.Pareto { alpha; rate_per_sec } -> Gen.Pareto { alpha; rate_per_sec = rate_per_sec /. n }
  | Gen.Closed _ as a -> a

let proc_idx spec = if spec.s_payload = 0 then Ti.null_idx else Ti.get_data_idx

let args_of spec =
  if spec.s_payload = 0 then []
  else [ Rpc.Marshal.V_int (Int32.of_int spec.s_payload); Rpc.Marshal.V_bytes Bytes.empty ]

(* Placement: which nodes serve (with their service name) and which
   nodes host client slots. *)
let placement spec =
  let all = List.init spec.s_nodes (fun i -> i) in
  match spec.s_kind with
  | Incast -> ([ (0, "Test") ], List.filter (fun i -> i <> 0) all)
  | Uniform | Straggler -> (List.map (fun i -> (i, Printf.sprintf "Test%d" i)) all, all)

let role spec i =
  match spec.s_kind with
  | Incast -> if i = 0 then "server" else "clients"
  | Uniform -> "server+clients"
  | Straggler -> if i = spec.s_nodes - 1 then "straggler" else "server+clients"

let snapshot_count snap ~site ~name =
  match Obs.Metrics.Snapshot.find snap ~site ~name with
  | Some (Obs.Metrics.Snapshot.Count n) -> n
  | _ -> 0

let hist_pct h q = if Obs.Metrics.Histogram.count h = 0 then 0. else Obs.Metrics.Histogram.percentile h q

let run ?(trace = false) spec =
  validate spec;
  let servers, client_nodes = placement spec in
  let config = Hw.Config.default in
  let config_of i =
    if spec.s_kind = Straggler && i = spec.s_nodes - 1 then
      { config with Hw.Config.cpu_speedup = config.Hw.Config.cpu_speedup *. spec.s_straggler_speedup }
    else config
  in
  let cl =
    (* Receive pools sized to the offered concurrency (like a NIC ring
       scaled to fan-in): an incast burst parks in the server's pool and
       drains at CPU 0's interrupt rate instead of being dropped and
       retransmitted into collapse. *)
    Cluster.create ~seed:spec.s_seed ~queue:spec.s_queue ~config ~config_of
      ~switch_latency:(Time.us_f spec.s_switch_latency_us)
      ~egress_capacity:spec.s_egress_capacity
      ~pool_buffers:(max 64 (2 * spec.s_clients))
      ~nodes:spec.s_nodes ()
  in
  let eng = cl.Cluster.cl_eng in
  let tr = Engine.trace eng in
  if trace then Sim.Trace.set_enabled tr true;
  (* Enough parked workers that the worker pool is not the artificial
     first bottleneck under fan-in; Busy replies still appear once the
     fleet genuinely outruns it. *)
  let workers = max 8 (min 128 spec.s_clients) in
  List.iter (fun (i, service) -> Cluster.export_service cl ~node:i ~service ~workers ()) servers;
  (* Per-client-node bindings to every service it may call, resolved
     through the name service in deterministic order. *)
  let bindings = Hashtbl.create 16 in
  (* Datacenter-style retransmission: the paper's 600 ms first timeout
     would leave the fleet idle for most of a run whenever incast costs
     a frame; recover in tens of milliseconds and back off instead.
     The first timeout sits above worst-case incast queueing (64 deep
     at ~0.4 ms of CPU 0 per frame) so a queued call is not re-sent. *)
  let options =
    {
      Rpc.Runtime.retransmit_after = Time.ms 50;
      max_retries = 100;
      backoff = Some { Rpc.Runtime.multiplier = 2.; max_interval = Time.ms 400 };
    }
  in
  List.iter
    (fun n ->
      let targets = List.filter (fun (i, _) -> i <> n) servers in
      let targets = if targets = [] then servers else targets in
      Hashtbl.replace bindings n
        (Array.of_list
           (List.map
              (fun (_, service) -> Cluster.resolve cl ~node:n ~service ~options ())
              targets)))
    client_nodes;
  let issued = ref 0 in
  let completed = ref 0 in
  let failed = ref 0 in
  let in_flight = ref 0 in
  let max_in_flight = ref 0 in
  let issued_from = Array.make spec.s_nodes 0 in
  let gate = Sim.Gate.create eng in
  let finish_maybe () =
    if !issued = spec.s_calls && !in_flight = 0 then Sim.Gate.open_ gate
  in
  let take_ticket node_id =
    if !issued < spec.s_calls then begin
      incr issued;
      incr in_flight;
      issued_from.(node_id) <- issued_from.(node_id) + 1;
      if !in_flight > !max_in_flight then max_in_flight := !in_flight;
      true
    end
    else false
  in
  (* CPU saturation is sampled inside the run at the p90-completion
     instant: a handful of straggler calls sitting in retransmission
     backoff at the end would otherwise dilute a saturated server's
     time-averaged utilization into apparent idleness. *)
  let p90_target = max 1 ((spec.s_calls * 9 + 9) / 10) in
  let busy_sample = ref None in
  let sample_if_p90 () =
    if !completed + !failed = p90_target && !busy_sample = None then begin
      let now = Engine.now eng in
      busy_sample :=
        Some
          (Array.map
             (fun n ->
               ( Machine.average_busy_cpus n.Cluster.nd_machine ~upto:now,
                 Cpu_set.cpu0_utilization (Machine.cpus n.Cluster.nd_machine) ~upto:now ))
             cl.Cluster.cl_nodes)
    end
  in
  let observe node t0 =
    let d = Time.diff (Engine.now eng) t0 in
    Obs.Metrics.Histogram.observe_span node.Cluster.nd_hist d;
    Obs.Metrics.Histogram.observe_span cl.Cluster.cl_fleet_hist d
  in
  let one_call binding client ctx =
    match
      Rpc.Runtime.call binding.Nameserv.b_rpc client ctx ~proc_idx:(proc_idx spec)
        ~args:(args_of spec)
    with
    | _ -> incr completed
    | exception Rpc.Rpc_error.Rpc _ -> incr failed
  in
  let arrival = per_slot_arrival spec in
  let slots = List.init spec.s_clients (fun k -> k) in
  (* Slot randomness is split off the engine generator in slot order at
     setup, so each slot owns an independent deterministic stream. *)
  let slot_rngs = List.map (fun _ -> Sim.Rng.split (Engine.rng eng)) slots in
  let nodes_arr = Array.of_list client_nodes in
  List.iter2
    (fun slot rng ->
      let node_id = nodes_arr.(slot mod Array.length nodes_arr) in
      let node = Cluster.node cl node_id in
      let binds = Hashtbl.find bindings node_id in
      let pick_binding () =
        if Array.length binds = 1 then binds.(0)
        else binds.(Sim.Rng.int rng (Array.length binds))
      in
      if Gen.is_open_loop arrival then begin
        (* Open loop: this slot is a generator; each arrival spawns an
           independent call thread, whatever the completion state —
           latency runs from the arrival instant.  Activities are pooled
           and reused across calls (like real caller threads): a one-shot
           activity never calls again, so the server would retain every
           result for duplicate suppression until the GC and drain its
           packet pool under sustained load. *)
        let idle_clients = Queue.create () in
        Machine.spawn_thread node.Cluster.nd_machine
          ~name:(Printf.sprintf "fleet-gen-%d" slot)
          (fun () ->
            let rec loop () =
              Engine.delay eng (Time.us_f (Gen.interarrival_us rng arrival));
              if take_ticket node_id then begin
                let binding = pick_binding () in
                let client =
                  match Queue.take_opt idle_clients with
                  | Some c -> c
                  | None -> Rpc.Runtime.new_client node.Cluster.nd_rt
                in
                let t0 = Engine.now eng in
                Machine.spawn_thread node.Cluster.nd_machine
                  ~name:(Printf.sprintf "fleet-call-%d" slot)
                  (fun () ->
                    Cpu_set.with_cpu (Machine.cpus node.Cluster.nd_machine) (fun ctx ->
                        one_call binding client ctx);
                    Queue.push client idle_clients;
                    sample_if_p90 ();
                    observe node t0;
                    decr in_flight;
                    finish_maybe ());
                loop ()
              end
            in
            loop ())
      end
      else
        (* Closed loop: one call at a time per slot, next call issued a
           think time after the previous result. *)
        Machine.spawn_thread node.Cluster.nd_machine
          ~name:(Printf.sprintf "fleet-client-%d" slot)
          (fun () ->
            Cpu_set.with_cpu (Machine.cpus node.Cluster.nd_machine) (fun ctx ->
                let client = Rpc.Runtime.new_client node.Cluster.nd_rt in
                let rec loop () =
                  if take_ticket node_id then begin
                    let binding = pick_binding () in
                    let t0 = Engine.now eng in
                    one_call binding client ctx;
                    sample_if_p90 ();
                    observe node t0;
                    decr in_flight;
                    finish_maybe ();
                    let think = Gen.interarrival_us rng arrival in
                    if think > 0. then
                      Cpu_set.yield_cpu ctx (fun () -> Engine.delay eng (Time.us_f think));
                    loop ()
                  end
                in
                loop ())))
    slots slot_rngs;
  let started_at = Engine.now eng in
  Cluster.run_until_quiet cl gate;
  let finished_at = Engine.now eng in
  if trace then Sim.Trace.set_enabled tr false;
  let elapsed_us = Time.to_us (Time.diff finished_at started_at) in
  let snap = Obs.Metrics.Snapshot.take cl.Cluster.cl_obs.Obs.Ctx.metrics ~at:finished_at in
  let node_reports =
    List.init spec.s_nodes (fun i ->
        let n = Cluster.node cl i in
        let site = n.Cluster.nd_name in
        let busy_cpus, cpu0_util =
          match !busy_sample with
          | Some a -> a.(i)
          | None ->
            ( Machine.average_busy_cpus n.Cluster.nd_machine ~upto:finished_at,
              Cpu_set.cpu0_utilization (Machine.cpus n.Cluster.nd_machine) ~upto:finished_at )
        in
        {
          nr_name = site;
          nr_role = role spec i;
          nr_issued = issued_from.(i);
          nr_served = Rpc.Runtime.calls_served n.Cluster.nd_rt;
          nr_p50_us = hist_pct n.Cluster.nd_hist 0.50;
          nr_p99_us = hist_pct n.Cluster.nd_hist 0.99;
          nr_p999_us = hist_pct n.Cluster.nd_hist 0.999;
          nr_busy_cpus = busy_cpus;
          nr_cpu0_util = cpu0_util;
          nr_interrupts = Nub.Driver.interrupts_taken (Machine.driver n.Cluster.nd_machine);
          nr_rx_lost =
            snapshot_count snap ~site ~name:"deqna.rx_no_buffer"
            + snapshot_count snap ~site ~name:"deqna.rx_overruns";
          nr_pool_exhaustions = snapshot_count snap ~site ~name:"bufpool.exhaustions";
        })
  in
  let sum f = Array.fold_left (fun acc n -> acc + f n) 0 cl.Cluster.cl_nodes in
  let retrans = sum (fun n -> Rpc.Runtime.retransmissions n.Cluster.nd_rt) in
  let busy = sum (fun n -> Rpc.Runtime.busy_replies n.Cluster.nd_rt) in
  let forwarded = Topology.frames_forwarded cl.Cluster.cl_switch in
  let incast_drops = Topology.frames_dropped_incast cl.Cluster.cl_switch in
  (* First-bottleneck attribution: score each candidate resource on the
     busiest server node as a saturation fraction and name the largest
     that crosses the threshold. *)
  let server_ids = List.map fst servers in
  let busiest =
    List.fold_left
      (fun acc i ->
        let r = List.nth node_reports i in
        match acc with
        | None -> Some r
        | Some b -> if r.nr_cpu0_util > b.nr_cpu0_util then Some r else acc)
      None server_ids
  in
  let bottleneck =
    match busiest with
    | None -> Unsaturated
    | Some b ->
      let rx_frames = snapshot_count snap ~site:b.nr_name ~name:"deqna.rx_frames" in
      let frac num den = if den <= 0 then 0. else float_of_int num /. float_of_int den in
      let candidates =
        [
          (Cpu0_interrupts, b.nr_cpu0_util);
          (Rx_buffer_pool, frac b.nr_rx_lost (b.nr_rx_lost + rx_frames));
          (Switch_egress, frac incast_drops (incast_drops + forwarded));
          (Call_table, frac busy (max 1 !issued));
        ]
      in
      let best, score =
        List.fold_left
          (fun (bk, bs) (k, s) -> if s > bs then (k, s) else (bk, bs))
          (Unsaturated, 0.) candidates
      in
      if score >= 0.5 then best else Unsaturated
  in
  let report =
    {
      r_spec = spec;
      r_issued = !issued;
      r_completed = !completed;
      r_failed = !failed;
      r_max_in_flight = !max_in_flight;
      r_elapsed_us = elapsed_us;
      r_rate_per_sec =
        (if elapsed_us > 0. then float_of_int !completed /. (elapsed_us /. 1e6) else 0.);
      r_fleet_p50_us = hist_pct cl.Cluster.cl_fleet_hist 0.50;
      r_fleet_p99_us = hist_pct cl.Cluster.cl_fleet_hist 0.99;
      r_fleet_p999_us = hist_pct cl.Cluster.cl_fleet_hist 0.999;
      r_nodes = node_reports;
      r_retransmissions = retrans;
      r_busy_replies = busy;
      r_switch_forwarded = forwarded;
      r_incast_drops = incast_drops;
      r_unknown_drops = Topology.frames_dropped_unknown cl.Cluster.cl_switch;
      r_lookups = Nameserv.lookups cl.Cluster.cl_names;
      r_leaked_sinks = Cluster.leaked_sinks cl;
      r_stuck_callers = Cluster.stuck_callers cl;
      r_events = Engine.events_executed eng;
      r_bottleneck = bottleneck;
    }
  in
  let spans =
    if trace then
      List.sort (fun a b -> Time.compare a.Sim.Trace.start_at b.Sim.Trace.start_at) (Sim.Trace.spans tr)
    else []
  in
  (report, { a_obs = cl.Cluster.cl_obs; a_spans = spans })

let node_table r =
  Report.Table.make ~id:"fleet-nodes" ~title:"Per-node tail latency and saturation"
    ~columns:
      [
        "node"; "role"; "issued"; "served"; "p50 us"; "p99 us"; "p99.9 us"; "busy cpus";
        "cpu0 util"; "irqs"; "rx lost"; "pool exh";
      ]
    (List.map
       (fun n ->
         [
           n.nr_name;
           n.nr_role;
           Report.Table.cell_i n.nr_issued;
           Report.Table.cell_i n.nr_served;
           Report.Table.cell_f ~decimals:1 n.nr_p50_us;
           Report.Table.cell_f ~decimals:1 n.nr_p99_us;
           Report.Table.cell_f ~decimals:1 n.nr_p999_us;
           Report.Table.cell_f ~decimals:2 n.nr_busy_cpus;
           Report.Table.cell_f ~decimals:2 n.nr_cpu0_util;
           Report.Table.cell_i n.nr_interrupts;
           Report.Table.cell_i n.nr_rx_lost;
           Report.Table.cell_i n.nr_pool_exhaustions;
         ])
       r.r_nodes)

let render r =
  let b = Buffer.create 2048 in
  let spec = r.r_spec in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "fleet scenario:   %s (%d nodes, %d clients, %d calls)" (kind_to_string spec.s_kind)
    spec.s_nodes spec.s_clients spec.s_calls;
  line "arrival:          %s" (Gen.to_string spec.s_arrival);
  line "seed:             %d   payload: %dB   switch: %.1fus latency, egress cap %d" spec.s_seed
    spec.s_payload spec.s_switch_latency_us spec.s_egress_capacity;
  line "conservation:     issued %d = completed %d + failed %d   (max in flight %d)" r.r_issued
    r.r_completed r.r_failed r.r_max_in_flight;
  line "elapsed:          %.1f us simulated   (%.1f calls/s)" r.r_elapsed_us r.r_rate_per_sec;
  line "fleet latency us: p50 %.1f   p99 %.1f   p99.9 %.1f" r.r_fleet_p50_us r.r_fleet_p99_us
    r.r_fleet_p999_us;
  line "retransmissions:  %d   busy replies: %d" r.r_retransmissions r.r_busy_replies;
  line "switch:           forwarded %d   incast drops %d   unknown drops %d   lookups %d"
    r.r_switch_forwarded r.r_incast_drops r.r_unknown_drops r.r_lookups;
  line "invariants:       leaked sinks %d   stuck callers %d   events %d" r.r_leaked_sinks
    r.r_stuck_callers r.r_events;
  line "bottleneck:       %s" (bottleneck_to_string r.r_bottleneck);
  Buffer.add_string b (Report.Table.render (node_table r));
  Buffer.contents b

let check r =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if r.r_issued <> r.r_spec.s_calls then
    err "conservation: issued %d <> requested %d" r.r_issued r.r_spec.s_calls;
  if r.r_completed + r.r_failed <> r.r_issued then
    err "conservation: completed %d + failed %d <> issued %d" r.r_completed r.r_failed r.r_issued;
  if r.r_leaked_sinks <> 0 then err "%d fragment sink(s) leaked at quiescence" r.r_leaked_sinks;
  if r.r_stuck_callers <> 0 then err "%d caller(s) still registered at quiescence" r.r_stuck_callers;
  (if not (Gen.is_open_loop r.r_spec.s_arrival) && r.r_max_in_flight > r.r_spec.s_clients then
     err "closed loop exceeded its concurrency bound: %d > %d" r.r_max_in_flight
       r.r_spec.s_clients);
  match !errs with
  | [] -> Ok ()
  | es -> Error (List.rev es)
