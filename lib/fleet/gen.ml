type arrival =
  | Poisson of { rate_per_sec : float }
  | Pareto of { alpha : float; rate_per_sec : float }
  | Closed of { think_us : float }

let pareto rng ~alpha ~xm =
  if alpha <= 0. then invalid_arg "Gen.pareto: alpha must be positive";
  if xm <= 0. then invalid_arg "Gen.pareto: xm must be positive";
  (* Inverse-CDF sampling; keep u away from 0 so the tail stays finite. *)
  let u = 1.0 -. Sim.Rng.float rng 1.0 in
  xm *. (u ** (-1. /. alpha))

let interarrival_us rng = function
  | Poisson { rate_per_sec } ->
    if rate_per_sec <= 0. then invalid_arg "Gen.interarrival_us: rate must be positive";
    Sim.Rng.exponential rng ~mean:(1e6 /. rate_per_sec)
  | Pareto { alpha; rate_per_sec } ->
    if rate_per_sec <= 0. then invalid_arg "Gen.interarrival_us: rate must be positive";
    if alpha <= 1. then
      invalid_arg "Gen.interarrival_us: Pareto needs alpha > 1 for a finite mean";
    (* Pareto mean is xm * alpha/(alpha-1); pick xm so the mean matches
       the requested rate. *)
    let mean_us = 1e6 /. rate_per_sec in
    let xm = mean_us *. (alpha -. 1.) /. alpha in
    pareto rng ~alpha ~xm
  | Closed { think_us } ->
    if think_us < 0. then invalid_arg "Gen.interarrival_us: negative think time";
    think_us

let is_open_loop = function
  | Poisson _ | Pareto _ -> true
  | Closed _ -> false

let to_string = function
  | Poisson { rate_per_sec } -> Printf.sprintf "poisson(%.1f/s)" rate_per_sec
  | Pareto { alpha; rate_per_sec } -> Printf.sprintf "pareto(a=%.2f, %.1f/s)" alpha rate_per_sec
  | Closed { think_us } -> Printf.sprintf "closed(think=%.0fus)" think_us
