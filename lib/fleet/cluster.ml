module Engine = Sim.Engine
module Time = Sim.Time
module Machine = Nub.Machine

type node = {
  nd_id : int;
  nd_name : string;
  nd_machine : Machine.t;
  nd_rpc : Rpc.Node.t;
  nd_rt : Rpc.Runtime.t;
  nd_hist : Obs.Metrics.Histogram.t;
}

type t = {
  cl_eng : Engine.t;
  cl_obs : Obs.Ctx.t;
  cl_switch : Topology.t;
  cl_nodes : node array;
  cl_names : Nameserv.t;
  cl_fleet_hist : Obs.Metrics.Histogram.t;
}

let create ?(seed = 42) ?(queue = `Heap) ?(config = Hw.Config.default) ?config_of
    ?switch_latency ?egress_capacity ?(pool_buffers = 64) ?(idle_load = false) ?obs ~nodes () =
  if nodes < 2 then invalid_arg "Cluster.create: need at least 2 nodes";
  if nodes > 200 then invalid_arg "Cluster.create: at most 200 nodes (station addressing)";
  let obs = match obs with Some o -> o | None -> Obs.Ctx.create () in
  let eng = Engine.create ~seed ~queue () in
  let config_of = match config_of with Some f -> f | None -> fun _ -> config in
  let switch =
    Topology.create ~obs eng ~mbps:config.Hw.Config.ethernet_mbps ?latency:switch_latency
      ?egress_capacity ~ports:nodes ()
  in
  let mk_node i =
    let name = Printf.sprintf "node%d" i in
    let machine =
      Machine.create ~obs eng ~name ~config:(config_of i) ~link:(Topology.port_link switch i)
        ~station:(i + 1)
        ~ip:(Net.Ipv4.Addr.of_string (Printf.sprintf "16.0.%d.%d" ((i / 250) + 1) ((i mod 250) + 1)))
        ~pool_buffers ()
    in
    Topology.register_mac switch ~mac:(Machine.mac machine) ~port:i;
    if idle_load then Machine.start_idle_load machine;
    let rpc = Rpc.Node.create machine in
    {
      nd_id = i;
      nd_name = name;
      nd_machine = machine;
      nd_rpc = rpc;
      nd_rt = Rpc.Runtime.create rpc ~space:1;
      nd_hist = Obs.Metrics.Registry.histogram obs.Obs.Ctx.metrics ~site:name ~name:"rpc.latency_us";
    }
  in
  {
    cl_eng = eng;
    cl_obs = obs;
    cl_switch = switch;
    cl_nodes = Array.init nodes mk_node;
    cl_names = Nameserv.create ();
    cl_fleet_hist =
      Obs.Metrics.Registry.histogram obs.Obs.Ctx.metrics ~site:"fleet" ~name:"rpc.latency_us";
  }

let node t i =
  if i < 0 || i >= Array.length t.cl_nodes then invalid_arg "Cluster.node: no such node";
  t.cl_nodes.(i)

let nodes t = Array.length t.cl_nodes

let export_service t ~node:i ~service ?(workers = 8) () =
  let n = node t i in
  if not (Rpc.Runtime.is_exported n.nd_rt Workload.Test_interface.interface) then
    Rpc.Runtime.export n.nd_rt Workload.Test_interface.interface
      ~impls:(Workload.Test_interface.impls (Machine.timing n.nd_machine))
      ~workers;
  Nameserv.register t.cl_names ~service ~intf:Workload.Test_interface.interface n.nd_rt

let resolve t ~node:i ~service ?options () =
  Nameserv.resolve t.cl_names ?options (node t i).nd_rt ~service

let run_until_quiet ?(limit = Time.sec 600) t gate =
  let stop_at = Time.add (Engine.now t.cl_eng) limit in
  Engine.run_while t.cl_eng (fun () ->
      (not (Sim.Gate.is_open gate)) && Time.(Engine.now t.cl_eng < stop_at));
  if not (Sim.Gate.is_open gate) then
    failwith "Cluster.run_until_quiet: workload did not complete within the time limit"

let leaked_sinks t =
  Array.fold_left (fun acc n -> acc + Rpc.Node.fragment_sinks n.nd_rpc) 0 t.cl_nodes

let stuck_callers t =
  Array.fold_left (fun acc n -> acc + Rpc.Node.outstanding_callers n.nd_rpc) 0 t.cl_nodes
