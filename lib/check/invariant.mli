(** The invariant registry: properties that must hold on every run of
    the two-Firefly world, whatever the fault plan and event schedule.

    A {!monitor} attaches probes to a freshly created
    {!Workload.World.t} {e before} the workload runs:

    - {b at-most-once}: no [(activity, seq)] call body executes twice on
      the server (Birrell–Nelson duplicate suppression), observed with
      {!Rpc.Runtime.set_execution_probe};
    - {b monotonic-time}: the virtual clock never moves backwards,
      sampled by a recurring engine event;
    - {b bufpool-conservation}: at quiescence every packet buffer taken
      from either machine's pool has been returned (checked against a
      baseline snapshot by {!check_quiescence});
    - {b no-leaked-sinks}: at quiescence no fragment sink remains
      registered in either node's call table — a leftover sink means a
      worker or caller died mid-transfer without cleaning up;
    - {b no-stuck-threads}: at quiescence no activity still holds a
      caller registration — a leftover entry means a caller thread is
      wedged inside a call that will never finish;
    - {b completion} and {b result-correctness} are recorded by the
      explorer's workload via {!record}: every call must either return
      the right answer or raise a clean [Rpc_error] — and under a
      recoverable-only fault plan it must not fail at all. *)

type violation = { inv : string; detail : string }

val violation_to_string : violation -> string

type monitor

val attach : Workload.World.t -> monitor
(** Installs the execution probe on the world's server runtime, starts
    the clock watcher, and snapshots the pool baselines.  Attach before
    running any workload. *)

val record : monitor -> inv:string -> detail:string -> unit
(** Records a violation found outside the built-in probes. *)

val check_quiescence : monitor -> unit
(** Run once the workload is finished and the retained-result GC window
    has passed: verifies both machines' packet pools are back at their
    baseline occupancy, and that neither node's call table retains a
    fragment sink or an outstanding-caller registration. *)

val violations : monitor -> violation list
(** All violations recorded so far, oldest first. *)
