(* Greedy delta-debugging kernels shared by the fault-plan explorer and
   the wire fuzzer.  Both minimizers are deterministic: attempt order is
   a pure function of the input, so shrunk reproducers are byte-stable
   across runs — the replay contract. *)

let minimize_list ~still_fails ~steps witness =
  (* Remove any single element whose removal preserves failure, restart
     from the front after each success — the explorer's historical
     strategy, kept verbatim so shrunk fault plans stay identical. *)
  let rec minimize best =
    let items = steps best in
    let rec try_remove i =
      if i >= List.length items then best
      else
        match still_fails (List.filteri (fun j _ -> j <> i) items) with
        | Some smaller -> minimize smaller
        | None -> try_remove (i + 1)
    in
    try_remove 0
  in
  minimize witness

let minimize_bytes ~still_fails b =
  let fails b = still_fails b in
  (* Phase 1: shorten.  Try cutting exponentially-shrinking chunks from
     the tail, then from the head — truncation is how most decoder
     reproducers get small, and big bites first keeps it near-linear. *)
  let rec shorten b =
    let n = Bytes.length b in
    let rec try_cut chunk =
      if chunk = 0 then None
      else
        let tail = Bytes.sub b 0 (n - chunk) in
        if fails tail then Some tail
        else
          let head = Bytes.sub b chunk (n - chunk) in
          if fails head then Some head else try_cut (chunk / 2)
    in
    if n = 0 then b
    else
      match try_cut (max 1 (n / 2)) with
      | Some smaller -> shorten smaller
      | None -> b
  in
  let b = shorten b in
  (* Phase 2: canonicalize.  Zero every byte that can be zeroed while
     the failure persists, left to right, so the surviving nonzero bytes
     are exactly the ones the failure depends on. *)
  let b = Bytes.copy b in
  for i = 0 to Bytes.length b - 1 do
    if Bytes.get b i <> '\000' then begin
      let old = Bytes.get b i in
      Bytes.set b i '\000';
      if not (fails b) then Bytes.set b i old
    end
  done;
  b
