(** The seeded fault-plan explorer.

    [explore] runs [seeds] independent simulations.  Seed [s] determines
    everything about run [s]: the fault plan ({!Fault_plan.generate}),
    the engine's random streams, and — with [`Random] tie-breaking — the
    order of same-instant events.  Each run drives a small mixed
    workload (minimum packets and multi-fragment bulk transfers) through
    the two-Firefly world with the plan installed and an
    {!Invariant.monitor} attached.

    When a run violates an invariant, the explorer {e shrinks} the fault
    plan — greedily deleting steps while the violation (same seed)
    persists — then re-runs the minimal plan with span tracing enabled
    so the failure comes with a {!Sim.Trace} log.  Re-running
    [run_plan] with the printed seed and plan reproduces the failure
    deterministically. *)

type bug =
  | No_bug
  | No_retransmit
      (** cripple the caller's retry machinery ([max_retries = 0]); a
          single dropped frame then fails the call, which the
          completion invariant reports under recoverable-only plans *)

type config = {
  threads : int;  (** concurrent caller threads *)
  calls_per_thread : int;
  payload : int;  (** GetData result bytes for the bulk calls *)
  bug : bug;
  tie_break : [ `Fifo | `Random ];
  max_steps : int;  (** fault-plan length bound *)
  uniproc : bool;  (** single-CPU machines ({!Hw.Config.uniprocessor}) *)
  streaming : bool;  (** §4.2.6 streamed result fragments, no per-fragment acks *)
  secured : bool;  (** §7 sealed calls under a shared key *)
}

val default_config : config
(** 3 threads × 4 calls, 4000-byte bulk payload, no bug, [`Random]
    tie-breaking, plans of up to 6 steps, multiprocessor, stop-and-wait,
    unsecured. *)

type outcome = {
  seed : int;
  plan : Fault_plan.t;
  violations : Invariant.violation list;
  calls_ok : int;
  calls_failed : int;  (** calls that raised a clean [Rpc_error] *)
  frames_carried : int;
  events_executed : int;
  spans : Sim.Trace.span list;  (** non-empty only when traced *)
}

val run_plan : ?trace:bool -> config -> seed:int -> plan:Fault_plan.t -> outcome
(** One simulation of the workload under the given plan.  Deterministic:
    the same [(config, seed, plan)] always yields the same outcome.
    [trace] (default false) enables span tracing for the whole run and
    returns the log in [spans]. *)

val run_seed : config -> seed:int -> outcome
(** [run_plan] with the plan generated from [seed]. *)

val shrink : config -> outcome -> outcome
(** Greedy delta-debugging of a failing outcome's plan: repeatedly
    removes any single step whose removal preserves failure.  Returns
    the original outcome if it has no violations. *)

type summary = { seeds_run : int; failures : outcome list (** shrunk, traced *) }

val explore :
  ?progress:(int -> unit) -> ?jobs:int -> config -> base_seed:int -> seeds:int -> summary
(** Runs seeds [base_seed .. base_seed + seeds - 1]; [progress] is
    called with each seed before its run.  [jobs] (default 1) fans the
    per-seed investigations out over that many domains; results are
    identical to the serial run (seed assignment and failure order are
    preserved), except that with [jobs > 1] all [progress] calls happen
    up front.  [jobs = 1] is the exact historical serial path. *)

(** {1 The configuration matrix}

    A systematic sweep of the protocol's operating regimes: every
    combination of processor count, result streaming, call security and
    payload regime faces its own batch of seeded fault plans.  Payloads
    cover all-minimum-packet calls (0), single-fragment results (1000)
    and multi-fragment results (4000). *)

type cell = { m_uniproc : bool; m_streaming : bool; m_secured : bool; m_payload : int }

val matrix_cells : cell list
(** The 24 cells: 2 × 2 × 2 configurations × 3 payload regimes. *)

val cell_to_string : cell -> string

val apply_cell : config -> cell -> config
(** The base config with the cell's four axes substituted in. *)

val explore_matrix :
  ?progress:(cell -> int -> unit) ->
  ?jobs:int ->
  config ->
  base_seed:int ->
  seeds_per_cell:int ->
  summary
(** [explore] over every cell of {!matrix_cells} (cell [i] uses seeds
    [base_seed + i * seeds_per_cell ...]), taking [config] as the
    template for everything the cell does not fix.  [summary.seeds_run]
    totals every run across the matrix.  [jobs > 1] runs the
    (cell, seed) grid on a domain pool; each simulation keeps its own
    engine and seed, so failures (and their shrunk plans and traces)
    are identical to the serial sweep, in the same order. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human-readable failure report: seed, minimal plan, violations, a
    replay hint, and the tail of the trace log. *)
