module Engine = Sim.Engine
module Time = Sim.Time
module Machine = Nub.Machine

type violation = { inv : string; detail : string }

let violation_to_string v = Printf.sprintf "[%s] %s" v.inv v.detail

type monitor = {
  w : Workload.World.t;
  mutable viols : violation list;  (* newest first *)
  exec : (Rpc.Proto.Activity.t * int, int) Hashtbl.t;
  mutable last_now : Time.t;
  base_caller_bufs : int;
  base_server_bufs : int;
}

let record_v m v = m.viols <- v :: m.viols
let record m ~inv ~detail = record_v m { inv; detail }
let violations m = List.rev m.viols

let clock_watch_period = Time.ms 5

let attach (w : Workload.World.t) =
  let eng = w.Workload.World.eng in
  let m =
    {
      w;
      viols = [];
      exec = Hashtbl.create 64;
      last_now = Engine.now eng;
      base_caller_bufs = Nub.Bufpool.in_use (Machine.pool w.Workload.World.caller);
      base_server_bufs = Nub.Bufpool.in_use (Machine.pool w.Workload.World.server);
    }
  in
  Rpc.Runtime.set_execution_probe w.Workload.World.server_rt
    (Some
       (fun act seq ->
         let key = (act, seq) in
         let n = (match Hashtbl.find_opt m.exec key with Some n -> n | None -> 0) + 1 in
         Hashtbl.replace m.exec key n;
         if n > 1 then
           record m ~inv:"at-most-once"
             ~detail:
               (Format.asprintf "server executed %a seq %d %d times" Rpc.Proto.Activity.pp act
                  seq n)));
  let rec tick () =
    let now = Engine.now eng in
    if Time.compare now m.last_now < 0 then
      record m ~inv:"monotonic-time"
        ~detail:
          (Printf.sprintf "clock moved backwards: %.3f -> %.3f us"
             (Time.since_start_us m.last_now) (Time.since_start_us now));
    m.last_now <- now;
    Engine.schedule eng ~after:clock_watch_period tick
  in
  Engine.schedule eng tick;
  m

let check_pool m ~name ~base pool =
  let now = Nub.Bufpool.in_use pool in
  if now <> base then
    record m ~inv:"bufpool-conservation"
      ~detail:
        (Printf.sprintf "%s pool holds %d buffers at quiescence, expected the baseline %d" name
           now base)

let check_node m ~name node =
  let sinks = Rpc.Node.fragment_sinks node in
  if sinks <> 0 then
    record m ~inv:"no-leaked-sinks"
      ~detail:
        (Printf.sprintf "%s node has %d fragment sink(s) registered at quiescence" name sinks);
  let callers = Rpc.Node.outstanding_callers node in
  if callers <> 0 then
    record m ~inv:"no-stuck-threads"
      ~detail:
        (Printf.sprintf "%s node has %d outstanding caller registration(s) at quiescence" name
           callers)

let check_quiescence m =
  check_pool m ~name:"caller" ~base:m.base_caller_bufs
    (Machine.pool m.w.Workload.World.caller);
  check_pool m ~name:"server" ~base:m.base_server_bufs
    (Machine.pool m.w.Workload.World.server);
  check_node m ~name:"caller" m.w.Workload.World.caller_node;
  check_node m ~name:"server" m.w.Workload.World.server_node
