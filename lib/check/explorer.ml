module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Runtime = Rpc.Runtime
module Marshal = Rpc.Marshal
module World = Workload.World
module Test_interface = Workload.Test_interface

type bug = No_bug | No_retransmit

type config = {
  threads : int;
  calls_per_thread : int;
  payload : int;
  bug : bug;
  tie_break : [ `Fifo | `Random ];
  max_steps : int;
  uniproc : bool;
  streaming : bool;
  secured : bool;
}

let default_config =
  {
    threads = 3;
    calls_per_thread = 4;
    payload = 4000;
    bug = No_bug;
    tie_break = `Random;
    max_steps = 6;
    uniproc = false;
    streaming = false;
    secured = false;
  }

type outcome = {
  seed : int;
  plan : Fault_plan.t;
  violations : Invariant.violation list;
  calls_ok : int;
  calls_failed : int;
  frames_carried : int;
  events_executed : int;
  spans : Sim.Trace.span list;
}

(* The workload must outlive any recoverable plan: the plan can kill at
   most [max_steps] frames plus two per Duplicate, so a few dozen
   retries cover it with margin. *)
let call_options bug =
  {
    Runtime.retransmit_after = Time.ms 30;
    max_retries = (match bug with No_retransmit -> 0 | No_bug -> 40);
    backoff = None;
  }

let workload_limit = Time.sec 120

(* The retained-result GC window is 5 s and an abandoned server send
   loop persists for max_retries * retransmit_after; 8 s covers both. *)
let settle_window = Time.sec 8

(* The shared key for secured-cell runs; distribution is out of band in
   the real system, a constant here.  A plain value, not [lazy]:
   [Lazy.force] is not domain-safe, and parallel matrix sweeps reach
   this from every worker domain. *)
let matrix_key = Rpc.Secure.key_of_string "check-harness"

let run_plan ?(trace = false) config ~seed ~plan =
  if config.threads < 1 then invalid_arg "Explorer.run_plan: threads must be >= 1";
  let base = if config.uniproc then Hw.Config.uniprocessor else Hw.Config.default in
  let mc = { base with Hw.Config.streaming_results = config.streaming } in
  let auth = if config.secured then Some matrix_key else None in
  let w =
    World.create ~caller_config:mc ~server_config:mc ~seed ~tie_break:config.tie_break ?auth ()
  in
  let eng = w.World.eng in
  let monitor = Invariant.attach w in
  Fault_plan.install plan w;
  if trace then Sim.Trace.set_enabled (Engine.trace eng) true;
  let binding = World.test_binding w ~options:(call_options config.bug) ?auth () in
  let gate = Sim.Gate.create eng in
  let ok = ref 0 and failed = ref 0 and finished = ref 0 in
  for _ = 1 to config.threads do
    Machine.spawn_thread w.World.caller ~name:"check-caller" (fun () ->
        Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
            let client = Runtime.new_client w.World.caller_rt in
            for i = 1 to config.calls_per_thread do
              (* Alternate minimum packets and multi-fragment bulk
                 transfers so both protocol regimes face the plan. *)
              let bulk = config.payload > 0 && i mod 2 = 0 in
              let idx, args =
                if bulk then
                  ( Test_interface.get_data_idx,
                    [
                      Marshal.V_int (Int32.of_int config.payload); Marshal.V_bytes Bytes.empty;
                    ] )
                else (Test_interface.null_idx, [])
              in
              match Runtime.call binding client ctx ~proc_idx:idx ~args with
              | outs ->
                let good =
                  match (bulk, outs) with
                  | false, [] -> true
                  | true, [ Marshal.V_bytes b ] ->
                    Bytes.length b = config.payload
                    && Bytes.equal b (Test_interface.pattern config.payload)
                  | _ -> false
                in
                if good then incr ok
                else
                  Invariant.record monitor ~inv:"result-correctness"
                    ~detail:
                      (Printf.sprintf "call %d returned a wrong %s result" i
                         (if bulk then "GetData" else "Null"))
              | exception Rpc.Rpc_error.Rpc _ -> incr failed
            done);
        incr finished;
        if !finished = config.threads then Sim.Gate.open_ gate)
  done;
  let stop_at = Time.add (Engine.now eng) workload_limit in
  Engine.run_while eng (fun () ->
      (not (Sim.Gate.is_open gate)) && Time.(Engine.now eng < stop_at));
  if not (Sim.Gate.is_open gate) then
    Invariant.record monitor ~inv:"completion"
      ~detail:
        (Printf.sprintf "workload stuck: %d of %d caller threads still running after %s"
           (config.threads - !finished) config.threads
           (Time.span_to_string workload_limit))
  else begin
    (* Let retransmission tails, delayed frames and the retained-result
       GC settle before auditing the pools. *)
    Engine.run_until eng (Time.add (Engine.now eng) settle_window);
    Invariant.check_quiescence monitor
  end;
  if (not (Fault_plan.has_restart plan)) && !failed > 0 then
    Invariant.record monitor ~inv:"completion"
      ~detail:
        (Printf.sprintf
           "%d call(s) failed although the fault plan is recoverable (no restart step)" !failed);
  if trace then Sim.Trace.set_enabled (Engine.trace eng) false;
  {
    seed;
    plan;
    violations = Invariant.violations monitor;
    calls_ok = !ok;
    calls_failed = !failed;
    frames_carried = Hw.Ether_link.frames_carried w.World.link;
    events_executed = Engine.events_executed eng;
    spans = (if trace then Sim.Trace.spans (Engine.trace eng) else []);
  }

let run_seed config ~seed =
  run_plan config ~seed ~plan:(Fault_plan.generate ~seed ~max_steps:config.max_steps ())

let shrink config outcome =
  if outcome.violations = [] then outcome
  else
    let still_fails steps =
      let o = run_plan config ~seed:outcome.seed ~plan:{ outcome.plan with steps } in
      if o.violations = [] then None else Some o
    in
    Shrinker.minimize_list ~still_fails ~steps:(fun o -> o.plan.Fault_plan.steps) outcome

type summary = { seeds_run : int; failures : outcome list }

(* One seed's complete investigation — run, and on violation shrink and
   re-run the minimal reproducer with tracing.  Self-contained (its own
   engine and machines), so seeds can run on worker domains. *)
let investigate_seed config ~seed =
  let o = run_seed config ~seed in
  if o.violations = [] then None
  else begin
    let minimal = shrink config o in
    (* Re-run the minimal reproducer with tracing for the report. *)
    Some (run_plan ~trace:true config ~seed ~plan:minimal.plan)
  end

let explore ?progress ?(jobs = 1) config ~base_seed ~seeds =
  if seeds < 1 then invalid_arg "Explorer.explore: seeds must be >= 1";
  if jobs <= 1 then begin
    (* The serial path is kept exactly as it always was — byte-identical
       output is the [--jobs 1] contract. *)
    let failures = ref [] in
    for k = 0 to seeds - 1 do
      let seed = base_seed + k in
      (match progress with
      | Some f -> f seed
      | None -> ());
      match investigate_seed config ~seed with
      | Some traced -> failures := traced :: !failures
      | None -> ()
    done;
    { seeds_run = seeds; failures = List.rev !failures }
  end
  else begin
    (* Parallel: progress is announced up front (batch dispatch), the
       per-seed investigations fan out, and failures come back in seed
       order because the pool preserves input order. *)
    let seeds_list = List.init seeds (fun k -> base_seed + k) in
    (match progress with
    | Some f -> List.iter f seeds_list
    | None -> ());
    let results = Par.Pool.map_list ~jobs (fun seed -> investigate_seed config ~seed) seeds_list in
    { seeds_run = seeds; failures = List.filter_map Fun.id results }
  end

(* {1 The configuration matrix} *)

type cell = { m_uniproc : bool; m_streaming : bool; m_secured : bool; m_payload : int }

(* 0 = all-minimum-packet calls, 1000 = one-fragment bulk results,
   4000 = multi-fragment (stop-and-wait or streaming) bulk results. *)
let matrix_payloads = [ 0; 1000; 4000 ]

let matrix_cells =
  List.concat_map
    (fun m_uniproc ->
      List.concat_map
        (fun m_streaming ->
          List.concat_map
            (fun m_secured ->
              List.map
                (fun m_payload -> { m_uniproc; m_streaming; m_secured; m_payload })
                matrix_payloads)
            [ false; true ])
        [ false; true ])
    [ false; true ]

let cell_to_string c =
  Printf.sprintf "%s %s %s payload=%d"
    (if c.m_uniproc then "uniproc" else "multiproc")
    (if c.m_streaming then "streaming" else "stop-and-wait")
    (if c.m_secured then "secured" else "clear")
    c.m_payload

let apply_cell config c =
  {
    config with
    uniproc = c.m_uniproc;
    streaming = c.m_streaming;
    secured = c.m_secured;
    payload = c.m_payload;
  }

let explore_matrix ?progress ?(jobs = 1) config ~base_seed ~seeds_per_cell =
  if seeds_per_cell < 1 then invalid_arg "Explorer.explore_matrix: seeds_per_cell must be >= 1";
  if jobs <= 1 then begin
    (* Serial: the historical cell-by-cell loop, unchanged. *)
    let failures = ref [] in
    let run = ref 0 in
    List.iteri
      (fun i cell ->
        let cfg = apply_cell config cell in
        let s =
          explore
            ?progress:(Option.map (fun f seed -> f cell seed) progress)
            cfg
            ~base_seed:(base_seed + (i * seeds_per_cell))
            ~seeds:seeds_per_cell
        in
        run := !run + s.seeds_run;
        failures := !failures @ s.failures)
      matrix_cells;
    { seeds_run = !run; failures = !failures }
  end
  else begin
    (* Parallel: flatten the matrix to independent (cell, seed) tasks.
       Seed assignment is identical to the serial sweep, and the pool
       returns results in input order, so the failure list — and
       everything rendered from it — matches the serial sweep exactly. *)
    let tasks =
      List.concat
        (List.mapi
           (fun i cell ->
             List.init seeds_per_cell (fun k -> (cell, base_seed + (i * seeds_per_cell) + k)))
           matrix_cells)
    in
    (match progress with
    | Some f -> List.iter (fun (cell, seed) -> f cell seed) tasks
    | None -> ());
    let results =
      Par.Pool.map_list ~jobs
        (fun (cell, seed) -> investigate_seed (apply_cell config cell) ~seed)
        tasks
    in
    { seeds_run = List.length tasks; failures = List.filter_map Fun.id results }
  end

let trace_tail = 40

let pp_outcome fmt o =
  let open Format in
  fprintf fmt "@[<v>seed %d: %d violation(s), %d call(s) ok, %d failed cleanly@," o.seed
    (List.length o.violations) o.calls_ok o.calls_failed;
  List.iter (fun v -> fprintf fmt "  %s@," (Invariant.violation_to_string v)) o.violations;
  fprintf fmt "%s" (Fault_plan.to_string o.plan);
  fprintf fmt
    "replay: firefly check --seed %d --seeds 1 (with the same workload flags); the same seed@,"
    o.seed;
  fprintf fmt "regenerates the full plan — the minimal plan above is its shrunk core@,";
  (match List.filter (fun (s : Sim.Trace.span) -> s.Sim.Trace.cat <> "background") o.spans with
  | [] -> ()
  | spans ->
    let n = List.length spans in
    let tail =
      if n <= trace_tail then spans
      else List.filteri (fun i _ -> i >= n - trace_tail) spans
    in
    fprintf fmt "trace log (last %d of %d spans):@," (List.length tail) n;
    List.iter
      (fun (s : Sim.Trace.span) ->
        fprintf fmt "  %10.1fus %-9s %-34s %8.1fus@,"
          (Time.since_start_us s.Sim.Trace.start_at)
          s.Sim.Trace.site s.Sim.Trace.label
          (Time.to_us (Sim.Trace.duration s)))
      tail);
  fprintf fmt "@]"
