module Time = Sim.Time
module Rng = Sim.Rng

type action =
  | Drop
  | Corrupt
  | Corrupt_payload
  | Duplicate
  | Delay_us of int
  | Reorder

type pred =
  | Any
  | Min_len of int
  | Max_len of int

type step =
  | Frame_fault of { skip : int; pred : pred; action : action }
  | Restart_server of { after_us : int; down_us : int }
  | Crash_restart of { skip : int; pred : pred; down_us : int }

type t = { seed : int; steps : step list }

(* {1 Generation} *)

let gen_action rng =
  match Rng.int rng 6 with
  | 0 -> Drop
  | 1 -> Corrupt
  | 2 -> Corrupt_payload
  | 3 -> Duplicate
  | 4 -> Reorder
  | _ -> Delay_us (200 + Rng.int rng 40_000)

let gen_pred rng =
  match Rng.int rng 10 with
  | 0 | 1 -> Min_len 200
  | 2 | 3 -> Max_len 200
  | _ -> Any

let gen_step rng =
  match Rng.int rng 100 with
  | n when n < 10 ->
    Restart_server { after_us = 2_000 + Rng.int rng 150_000; down_us = 1_000 + Rng.int rng 60_000 }
  | n when n < 18 ->
    (* Mid-call crash: the server dies the instant a frame of the
       exchange is on the wire, not at some arbitrary clock tick. *)
    Crash_restart { skip = Rng.int rng 12; pred = gen_pred rng; down_us = 1_000 + Rng.int rng 60_000 }
  | _ -> Frame_fault { skip = Rng.int rng 12; pred = gen_pred rng; action = gen_action rng }

let generate ~seed ?(max_steps = 6) () =
  if max_steps < 1 then invalid_arg "Fault_plan.generate: max_steps must be >= 1";
  (* A distinct stream from the engine's: the plan must not change when
     the workload draws differently, and vice versa. *)
  let rng = Rng.create ~seed:(seed lxor 0x7f4a7c15) in
  let n = 1 + Rng.int rng max_steps in
  { seed; steps = List.init n (fun _ -> gen_step rng) }

let has_restart t =
  List.exists
    (function
      | Restart_server _ | Crash_restart _ -> true
      | Frame_fault _ -> false)
    t.steps

(* {1 Compilation} *)

let matches pred frame =
  match pred with
  | Any -> true
  | Min_len n -> Bytes.length frame >= n
  | Max_len n -> Bytes.length frame < n

let link_fault = function
  | Drop -> Hw.Ether_link.Drop
  | Corrupt -> Hw.Ether_link.Corrupt
  | Corrupt_payload -> Hw.Ether_link.Corrupt_payload
  | Duplicate -> Hw.Ether_link.Duplicate
  | Delay_us us -> Hw.Ether_link.Delay (Time.us us)
  | Reorder -> Hw.Ether_link.Reorder

(* A frame-triggered step compiled for the injector: let [skip] matching
   frames pass, then fire. *)
type trigger = { tr_skip : int ref; tr_pred : pred; tr_fire : unit -> Hw.Ether_link.fault }

let install t (w : Workload.World.t) =
  let eng = w.Workload.World.eng in
  let triggers =
    List.filter_map
      (function
        | Frame_fault { skip; pred; action } ->
          Some { tr_skip = ref skip; tr_pred = pred; tr_fire = (fun () -> link_fault action) }
        | Crash_restart { skip; pred; down_us } ->
          Some
            {
              tr_skip = ref skip;
              tr_pred = pred;
              tr_fire =
                (fun () ->
                  (* Deliver the triggering frame, then kill the server
                     immediately after the link releases it — the crash
                     lands mid-exchange.  The restart must not run from
                     inside the transmitting thread (it is holding the
                     medium), hence the zero-delay event. *)
                  Sim.Engine.schedule eng ~after:(Time.us 0) (fun () ->
                      Nub.Machine.restart w.Workload.World.server ~down_for:(Time.us down_us));
                  Hw.Ether_link.Deliver);
            }
        | Restart_server _ -> None)
      t.steps
  in
  let remaining = ref triggers in
  let injector frame =
    match !remaining with
    | [] -> Hw.Ether_link.Deliver
    | tr :: rest ->
      if not (matches tr.tr_pred frame) then Hw.Ether_link.Deliver
      else if !(tr.tr_skip) > 0 then begin
        decr tr.tr_skip;
        Hw.Ether_link.Deliver
      end
      else begin
        remaining := rest;
        tr.tr_fire ()
      end
  in
  Hw.Ether_link.set_fault_injector w.Workload.World.link (Some injector);
  List.iter
    (function
      | Frame_fault _ | Crash_restart _ -> ()
      | Restart_server { after_us; down_us } ->
        Sim.Engine.schedule eng ~after:(Time.us after_us) (fun () ->
            Nub.Machine.restart w.Workload.World.server ~down_for:(Time.us down_us)))
    t.steps

(* {1 Printing} *)

let action_to_string = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Corrupt_payload -> "corrupt-payload"
  | Duplicate -> "duplicate"
  | Delay_us us -> Printf.sprintf "delay %dus" us
  | Reorder -> "reorder"

let pred_to_string = function
  | Any -> "any frame"
  | Min_len n -> Printf.sprintf "frames >= %dB" n
  | Max_len n -> Printf.sprintf "frames < %dB" n

let step_to_string = function
  | Frame_fault { skip; pred; action } ->
    Printf.sprintf "%s the next %s after skipping %d" (action_to_string action)
      (pred_to_string pred) skip
  | Restart_server { after_us; down_us } ->
    Printf.sprintf "restart server at t=%dus, down for %dus" after_us down_us
  | Crash_restart { skip; pred; down_us } ->
    Printf.sprintf "crash server on the next %s after skipping %d, down for %dus"
      (pred_to_string pred) skip down_us

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "fault plan (seed %d, %d steps):\n" t.seed (List.length t.steps));
  List.iter (fun s -> Buffer.add_string b ("  - " ^ step_to_string s ^ "\n")) t.steps;
  Buffer.contents b
