(** The fault-plan DSL of the simulation-testing harness.

    A fault plan is a small, finite program of hostile events compiled
    onto the {!Hw.Ether_link} fault injector and the engine: frame
    faults (drop / corrupt / duplicate / delay) fire in order, each
    after skipping a configurable number of frames matching its
    predicate; machine-restart events fire at absolute virtual times.

    Plans are generated from a seed, printed in a one-line-per-step
    replayable form, and shrunk by the {!Explorer} to a minimal failing
    reproducer.  A plan with no [Restart_server] step is {e recoverable
    only}: the packet-exchange protocol must mask every event in it, so
    any failed call under such a plan is an invariant violation. *)

type action =
  | Drop
  | Corrupt  (** one byte past the Ethernet header, post-CRC *)
  | Corrupt_payload
  | Duplicate
  | Delay_us of int  (** hold the frame for this many microseconds *)
  | Reorder  (** the frame is overtaken by the next one on the segment *)

type pred =
  | Any
  | Min_len of int  (** frames of at least this many bytes (data packets) *)
  | Max_len of int  (** frames under this many bytes (acks, minimum packets) *)

type step =
  | Frame_fault of { skip : int; pred : pred; action : action }
      (** Let [skip] frames matching [pred] pass, then apply [action] to
          the next matching frame.  Steps apply strictly in list order —
          a step only starts counting once its predecessor has fired. *)
  | Restart_server of { after_us : int; down_us : int }
      (** Power the server machine off [after_us] into the run and back
          on [down_us] later. *)
  | Crash_restart of { skip : int; pred : pred; down_us : int }
      (** Frame-triggered mid-call crash: let [skip] frames matching
          [pred] pass, deliver the next matching frame normally, then
          power the server off the instant the link releases it — so the
          crash lands {e inside} a packet exchange rather than at an
          arbitrary clock tick — and back on [down_us] later. *)

type t = { seed : int; steps : step list }

val generate : seed:int -> ?max_steps:int -> unit -> t
(** A seeded random plan of 1–[max_steps] (default 6) steps.  The same
    seed always yields the same plan. *)

val has_restart : t -> bool
(** [true] iff the plan contains a [Restart_server] or [Crash_restart]
    step — the only step kinds that justify a failed call. *)

val install : t -> Workload.World.t -> unit
(** Compiles the plan onto the world: sets the Ethernet fault injector
    for the frame faults and schedules the restarts on the engine.
    Replaces any previously installed injector. *)

val step_to_string : step -> string

val to_string : t -> string
(** Multi-line rendering: seed, then one indented line per step. *)
