(** Deterministic greedy minimization of failing inputs.

    The explorer shrinks fault plans (lists of steps) and the wire
    fuzzer shrinks frames (byte buffers); both use the same greedy
    delta-debugging discipline: only keep a transformation if the
    failure reproduces, and make attempts in a fixed order so the
    minimal reproducer is a pure function of the original failure. *)

val minimize_list :
  still_fails:('a list -> 'b option) -> steps:('b -> 'a list) -> 'b -> 'b
(** [minimize_list ~still_fails ~steps witness] greedily deletes single
    elements of [steps witness] (restarting from the front after each
    successful deletion), following each successful deletion's new
    witness, until no single-element deletion still fails.  Returns the
    witness of the minimal failing list. *)

val minimize_bytes : still_fails:(Stdlib.Bytes.t -> bool) -> Stdlib.Bytes.t -> Stdlib.Bytes.t
(** [minimize_bytes ~still_fails b] assumes [still_fails b = true] and
    returns a smaller, canonicalized buffer that still fails: first cuts
    exponentially-shrinking chunks off the tail and head, then zeroes
    every byte the failure does not depend on.  The result is
    deterministic for a given [b] and predicate. *)
