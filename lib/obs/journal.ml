type event =
  | Packet_tx of { bytes : int }
  | Packet_rx of { bytes : int }
  | Retransmit of { seq : int }
  | Ack of { seq : int }
  | Interrupt
  | Ipi
  | Thread_wakeup
  | Bufpool_exhausted
  | Mark of string

type entry = { at : Sim.Time.t; site : string; ev : event }

type t = {
  cap : int;
  ring : entry array;
  mutable start : int;  (* index of the oldest entry *)
  mutable len : int;
  mutable n_dropped : int;
  mutable n_total : int;
}

let dummy = { at = Sim.Time.zero; site = ""; ev = Mark "" }

let create ?(capacity = 8192) () =
  if capacity < 1 then invalid_arg "Obs.Journal.create: capacity must be >= 1";
  { cap = capacity; ring = Array.make capacity dummy; start = 0; len = 0; n_dropped = 0; n_total = 0 }

let record t ~at ~site ev =
  let e = { at; site; ev } in
  if t.len < t.cap then begin
    t.ring.((t.start + t.len) mod t.cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    t.ring.(t.start) <- e;
    t.start <- (t.start + 1) mod t.cap;
    t.n_dropped <- t.n_dropped + 1
  end;
  t.n_total <- t.n_total + 1

let entries t = List.init t.len (fun i -> t.ring.((t.start + i) mod t.cap))
let length t = t.len
let total t = t.n_total
let dropped t = t.n_dropped

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.n_dropped <- 0;
  t.n_total <- 0

let event_label = function
  | Packet_tx _ -> "packet tx"
  | Packet_rx _ -> "packet rx"
  | Retransmit _ -> "retransmit"
  | Ack _ -> "ack"
  | Interrupt -> "interrupt"
  | Ipi -> "ipi"
  | Thread_wakeup -> "thread wakeup"
  | Bufpool_exhausted -> "bufpool exhausted"
  | Mark s -> s
