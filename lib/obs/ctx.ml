type t = { metrics : Metrics.Registry.t; journal : Journal.t }

let create ?journal_capacity () =
  { metrics = Metrics.Registry.create (); journal = Journal.create ?capacity:journal_capacity () }

let record t ~at ~site ev = Journal.record t.journal ~at ~site ev
