(** A typed, bounded journal of simulation events.

    Where {!Sim.Trace} records {e intervals} (for latency accounting),
    the journal records {e points}: the discrete protocol and kernel
    events — packets, retransmissions, interrupts, wakeups — whose
    ordering explains a timeline.  It is a fixed-capacity ring: when
    full, the oldest entry is overwritten and counted in {!dropped}, so
    leaving it enabled during a long throughput run costs O(capacity)
    memory, not O(events). *)

type event =
  | Packet_tx of { bytes : int }
  | Packet_rx of { bytes : int }
  | Retransmit of { seq : int }
  | Ack of { seq : int }
  | Interrupt
  | Ipi
  | Thread_wakeup
  | Bufpool_exhausted
  | Mark of string  (** free-form annotation, e.g. phase boundaries *)

type entry = { at : Sim.Time.t; site : string; ev : event }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 8192; raises [Invalid_argument] if < 1. *)

val record : t -> at:Sim.Time.t -> site:string -> event -> unit

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val total : t -> int
(** Number of events ever recorded (retained + dropped). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val clear : t -> unit

val event_label : event -> string
(** Short human-readable name, e.g. ["packet tx"]. *)
