module Trace = Sim.Trace
module Time = Sim.Time

(* Latency-breakdown attribution: take the flat span dump of a traced
   window plus the measured per-call windows, and account every
   microsecond of each call's end-to-end latency to a named stage
   (service time), to identified queueing, or — explicitly — to an
   unattributed residual.  The books must balance: per call,

      service + queueing + residual = measured end-to-end latency

   exactly (the sweep partitions the window), and the conservation
   check demands the residual stay under a small fraction of the
   total.  Stage rows additionally aggregate raw durations across
   calls (mean/p50/p99, split into caller/server/wire columns) for a
   Table VI-style presentation and a drift check against the paper's
   calibrated constants. *)

type window = { w_call : int; w_start : Time.t; w_stop : Time.t }

type column = Caller | Server | Wire

type stage = {
  st_label : string;
  st_kind : Trace.kind;
  st_column : column;
  st_caller_us : float;  (* mean per-call raw us on the caller machine *)
  st_server_us : float;
  st_wire_us : float;
  st_mean_us : float;
  st_samples : float array;  (* per-call raw totals, sorted ascending *)
}

type call_account = {
  ca_call : int;
  ca_elapsed_us : float;
  ca_service_us : float;  (* exclusive: no interval counted twice *)
  ca_queue_us : float;
  ca_unattributed_us : float;
}

type report = {
  r_stages : stage list;
  r_calls : call_account list;
  r_elapsed_us : float;  (* means over calls *)
  r_service_us : float;
  r_queue_us : float;
  r_unattributed_us : float;
  r_coverage : float;  (* mean attributed fraction *)
  r_min_coverage : float;  (* worst call's attributed fraction *)
}

(* Nearest-rank percentile over an ascending array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if p < 0. || p > 1. then invalid_arg "Attrib.percentile: p outside [0,1]"
  else
    let rank = int_of_float (Float.ceil (float_of_int n *. p)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let p50 st = percentile st.st_samples 0.5
let p99 st = percentile st.st_samples 0.99

let classify ~caller_site ~server_site (s : Trace.span) =
  (* The wire and the interprocessor signal are latency no CPU pays
     for; everything else belongs to the machine it ran on. *)
  if String.equal s.Trace.track "wire" then Wire
  else if String.equal s.Trace.site caller_site then Caller
  else if String.equal s.Trace.site server_site then Server
  else Wire

(* {1 The exclusive timeline sweep} *)

(* One call's spans, clipped to the measured window and projected onto
   integer nanoseconds. *)
type seg = { g_start : int; g_stop : int; g_kind : Trace.kind }

let sweep spans ~w =
  let t0 = Time.since_start_ns w.w_start and t1 = Time.since_start_ns w.w_stop in
  let segs =
    List.filter_map
      (fun (s : Trace.span) ->
        let a = max t0 (Time.since_start_ns s.Trace.start_at) in
        let b = min t1 (Time.since_start_ns s.Trace.stop_at) in
        if b > a then Some { g_start = a; g_stop = b; g_kind = s.Trace.kind } else None)
      spans
  in
  (* Elementary intervals between the distinct boundary points; each is
     attributed once — service wins over queueing wins over nothing, so
     overlapping accounts (a controller busy while a CPU computes, a
     queue wait enclosing the service that ends it) never double
     count. *)
  let bounds =
    List.sort_uniq compare (t0 :: t1 :: List.concat_map (fun g -> [ g.g_start; g.g_stop ]) segs)
  in
  let service = ref 0 and queue = ref 0 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      let len = b - a in
      let covering k = List.exists (fun g -> g.g_start <= a && g.g_stop >= b && g.g_kind = k) segs in
      if covering Trace.Service then service := !service + len
      else if covering Trace.Queue then queue := !queue + len;
      walk rest
    | _ -> ()
  in
  walk bounds;
  let us ns = float_of_int ns /. 1000. in
  let elapsed = t1 - t0 in
  {
    ca_call = w.w_call;
    ca_elapsed_us = us elapsed;
    ca_service_us = us !service;
    ca_queue_us = us !queue;
    ca_unattributed_us = us (elapsed - !service - !queue);
  }

(* {1 Building the report} *)

let attribute ?(caller_site = "caller") ?(server_site = "server") ~spans ~windows () =
  let windows = List.sort (fun a b -> compare a.w_call b.w_call) windows in
  let calls = Span.of_spans spans in
  let spans_of w =
    match List.find_opt (fun c -> c.Span.id = w.w_call) calls with
    | Some c -> c.Span.spans
    | None -> []
  in
  let n_calls = max 1 (List.length windows) in
  (* Stage rows: raw per-call durations keyed by (label, kind), in order
     of first causal appearance so the table reads like the call. *)
  let order = ref [] in
  let by_stage : (string * Trace.kind, float array * float array) Hashtbl.t =
    Hashtbl.create 32
  in
  (* per stage: (per-call totals, per-column totals [caller;server;wire]) *)
  List.iteri
    (fun i w ->
      List.iter
        (fun (s : Trace.span) ->
          let key = (s.Trace.label, s.Trace.kind) in
          let totals, cols =
            match Hashtbl.find_opt by_stage key with
            | Some v -> v
            | None ->
              let v = (Array.make (List.length windows) 0., Array.make 3 0.) in
              Hashtbl.add by_stage key v;
              order := (key, classify ~caller_site ~server_site s) :: !order;
              v
          in
          let d = Time.to_us (Trace.duration s) in
          totals.(i) <- totals.(i) +. d;
          let c =
            match classify ~caller_site ~server_site s with
            | Caller -> 0
            | Server -> 1
            | Wire -> 2
          in
          cols.(c) <- cols.(c) +. d)
        (spans_of w))
    windows;
  let stages =
    List.rev_map
      (fun ((label, kind), column) ->
        let totals, cols = Hashtbl.find by_stage (label, kind) in
        let mean = Array.fold_left ( +. ) 0. totals /. float_of_int n_calls in
        let samples = Array.copy totals in
        Array.sort compare samples;
        {
          st_label = label;
          st_kind = kind;
          st_column = column;
          st_caller_us = cols.(0) /. float_of_int n_calls;
          st_server_us = cols.(1) /. float_of_int n_calls;
          st_wire_us = cols.(2) /. float_of_int n_calls;
          st_mean_us = mean;
          st_samples = samples;
        })
      !order
  in
  let accounts = List.map (fun w -> sweep (spans_of w) ~w) windows in
  let mean f = List.fold_left (fun a c -> a +. f c) 0. accounts /. float_of_int n_calls in
  let coverage c =
    if c.ca_elapsed_us > 0. then (c.ca_service_us +. c.ca_queue_us) /. c.ca_elapsed_us else 1.
  in
  {
    r_stages = stages;
    r_calls = accounts;
    r_elapsed_us = mean (fun c -> c.ca_elapsed_us);
    r_service_us = mean (fun c -> c.ca_service_us);
    r_queue_us = mean (fun c -> c.ca_queue_us);
    r_unattributed_us = mean (fun c -> c.ca_unattributed_us);
    r_coverage = (if accounts = [] then 1. else mean coverage);
    r_min_coverage =
      List.fold_left (fun acc c -> Float.min acc (coverage c)) 1. accounts;
  }

let conservation_ok ?(min_coverage = 0.99) r = r.r_min_coverage >= min_coverage

(* {1 Drift against the paper's calibrated Table VI constants} *)

type scenario = Null_call | Max_arg_call

(* Per-packet cost of each Table VI step: value at 74 bytes, value at
   1514 bytes, and how many times the step runs per packet (the UDP
   checksum is computed by the sender {e and} verified by the
   receiver, so its label accrues twice per packet). *)
let table6_steps =
  [
    ("Finish UDP header (Sender)", 59., 59., 1);
    ("Calculate UDP checksum", 45., 440., 2);
    ("Handle trap to Nub", 37., 37., 1);
    ("Queue packet for transmission", 39., 39., 1);
    ("Interprocessor interrupt to CPU 0", 10., 10., 1);
    ("Handle interprocessor interrupt", 76., 76., 1);
    ("Activate Ethernet controller", 22., 22., 1);
    ("QBus/Controller transmit latency", 70., 815., 1);
    ("Transmission time on Ethernet", 60., 1230., 1);
    ("QBus/Controller receive latency", 80., 835., 1);
    ("General I/O interrupt handler", 14., 14., 1);
    ("Handle interrupt for received pkt", 177., 177., 1);
    ("Wakeup RPC thread", 220., 220., 1);
  ]

(* The packets one call exchanges: Null() sends and receives minimum
   frames; MaxArg(b) ships a maximum-size call packet and gets a
   minimum-size result back. *)
let packets = function
  | Null_call -> [ false; false ]
  | Max_arg_call -> [ true; false ]

let expected_us scenario label =
  List.find_map
    (fun (l, small, large, per_packet) ->
      if String.equal l label then
        Some
          (List.fold_left
             (fun acc is_large ->
               acc +. (float_of_int per_packet *. if is_large then large else small))
             0. (packets scenario))
      else None)
    table6_steps

type drift = { d_label : string; d_expected_us : float; d_measured_us : float; d_frac : float }

let drift r ~scenario =
  List.filter_map
    (fun st ->
      if st.st_kind <> Trace.Service then None
      else
        match expected_us scenario st.st_label with
        | None -> None
        | Some exp ->
          Some
            {
              d_label = st.st_label;
              d_expected_us = exp;
              d_measured_us = st.st_mean_us;
              d_frac = (if exp > 0. then Float.abs (st.st_mean_us -. exp) /. exp else 0.);
            })
    r.r_stages

let check ?(min_coverage = 0.99) ?(tolerance_frac = 0.25) ?(tolerance_us = 15.) r ~scenario =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun c ->
      let covered = c.ca_service_us +. c.ca_queue_us in
      if c.ca_elapsed_us > 0. && covered /. c.ca_elapsed_us < min_coverage then
        err "call %d: only %.1f%% of %.0f us attributed (%.0f us unaccounted)" c.ca_call
          (100. *. covered /. c.ca_elapsed_us)
          c.ca_elapsed_us c.ca_unattributed_us)
    r.r_calls;
  let rows = drift r ~scenario in
  (* Every calibrated step must actually appear in the trace... *)
  List.iter
    (fun (label, _, _, _) ->
      if not (List.exists (fun d -> String.equal d.d_label label) rows) then
        err "step %S missing from the trace" label)
    table6_steps;
  (* ...and stay near its calibrated per-call cost. *)
  List.iter
    (fun d ->
      if
        d.d_frac > tolerance_frac
        && Float.abs (d.d_measured_us -. d.d_expected_us) > tolerance_us
      then
        err "step %S drifted: measured %.0f us vs calibrated %.0f us (%+.0f%%)" d.d_label
          d.d_measured_us d.d_expected_us
          (100. *. (d.d_measured_us -. d.d_expected_us) /. d.d_expected_us))
    rows;
  match List.rev !errors with
  | [] -> Ok ()
  | es -> Error es

(* {1 Rendering} *)

let kind_cell = function
  | Trace.Service -> "service"
  | Trace.Queue -> "queue"

let column_cell = function
  | Caller -> "caller"
  | Server -> "server"
  | Wire -> "wire"

let summary_rows r =
  let f = Report.Table.cell_f ~decimals:1 in
  [
    [ "ATTRIBUTED SERVICE"; ""; ""; ""; ""; f r.r_service_us; ""; "" ];
    [ "IDENTIFIED QUEUEING"; ""; ""; ""; ""; f r.r_queue_us; ""; "" ];
    [ "UNATTRIBUTED RESIDUAL"; ""; ""; ""; ""; f r.r_unattributed_us; ""; "" ];
    [ "END-TO-END"; ""; ""; ""; ""; f r.r_elapsed_us; ""; "" ];
  ]

let table ?percentile:(p_extra : float option) r =
  let f = Report.Table.cell_f ~decimals:1 in
  let pcol =
    match p_extra with
    | None -> []
    | Some p -> [ Printf.sprintf "p%g" (100. *. p) ]
  in
  let rows =
    List.map
      (fun st ->
        [
          st.st_label;
          kind_cell st.st_kind;
          f st.st_caller_us;
          f st.st_server_us;
          f st.st_wire_us;
          f st.st_mean_us;
          f (p50 st);
          f (p99 st);
        ]
        @
        match p_extra with
        | None -> []
        | Some p -> [ f (percentile st.st_samples p) ])
      r.r_stages
    @ List.map
        (fun row ->
          row
          @
          match p_extra with
          | None -> []
          | Some _ -> [ "" ])
        (summary_rows r)
  in
  Report.Table.make ~id:"breakdown"
    ~title:"Latency breakdown attribution (per-call means, us)"
    ~columns:
      ([ "stage"; "kind"; "caller"; "server"; "wire"; "mean"; "p50"; "p99" ] @ pcol)
    ~notes:
      [
        Printf.sprintf "calls: %d; attributed %.2f%% of end-to-end latency (worst call %.2f%%)"
          (List.length r.r_calls) (100. *. r.r_coverage) (100. *. r.r_min_coverage);
        "service + queueing + residual = measured end-to-end, per call, exactly";
      ]
    rows

let to_csv ?percentile:(p_extra : float option) r =
  let buf = Buffer.create 1024 in
  let pcol =
    match p_extra with
    | None -> ""
    | Some p -> Printf.sprintf ",p%g_us" (100. *. p)
  in
  Buffer.add_string buf
    (Printf.sprintf "stage,kind,column,caller_us,server_us,wire_us,mean_us,p50_us,p99_us%s\n" pcol);
  let escape s = if String.contains s ',' then Printf.sprintf "%S" s else s in
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f" (escape st.st_label)
           (kind_cell st.st_kind) (column_cell st.st_column) st.st_caller_us st.st_server_us
           st.st_wire_us st.st_mean_us (p50 st) (p99 st));
      (match p_extra with
      | None -> ()
      | Some p -> Buffer.add_string buf (Printf.sprintf ",%.3f" (percentile st.st_samples p)));
      Buffer.add_char buf '\n')
    r.r_stages;
  Buffer.add_string buf
    (Printf.sprintf "TOTAL service,,,,,,%.3f,,\nTOTAL queueing,,,,,,%.3f,,\n" r.r_service_us
       r.r_queue_us);
  Buffer.add_string buf
    (Printf.sprintf "TOTAL unattributed,,,,,,%.3f,,\nTOTAL end-to-end,,,,,,%.3f,,\n"
       r.r_unattributed_us r.r_elapsed_us);
  Buffer.contents buf
