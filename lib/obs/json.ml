type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_nan f || Float.abs f = infinity then Buffer.add_string buf "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Fail of string * int

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None
let fail st msg = raise (Fail (msg, st.pos))

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
      if st.pos >= String.length st.s then fail st "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'u' ->
        if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex) with Failure _ -> fail st "bad \\u escape"
        in
        (* Only BMP code points below 0x80 round-trip as single bytes;
           anything else is emitted as '?' — the exporter never writes
           non-ASCII, so this suffices for reading our own output. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code) else Buffer.add_char buf '?'
      | _ -> fail st "bad escape");
      go ()
    end
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st ("bad number " ^ text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin st.pos <- st.pos + 1; Obj [] end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; fields ((k, v) :: acc)
        | Some '}' -> st.pos <- st.pos + 1; List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin st.pos <- st.pos + 1; Arr [] end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; elems (v :: acc)
        | Some ']' -> st.pos <- st.pos + 1; List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, pos) -> Error (Printf.sprintf "JSON parse error at %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let items = function
  | Arr xs -> xs
  | _ -> []

let num = function
  | Num f -> Some f
  | _ -> None

let str = function
  | Str s -> Some s
  | _ -> None

let bool = function
  | Bool b -> Some b
  | _ -> None
