module Histogram = struct
  (* Geometric buckets with ratio 2^(1/8): bucket [i] covers
     [2^(i/8), 2^((i+1)/8)), with everything below 1.0 folded into
     bucket 0.  256 buckets reach 2^32 — about 71 minutes when samples
     are microseconds. *)
  let n_buckets = 256
  let buckets_per_octave = 8.

  type t = {
    counts : int array;
    mutable n : int;
    mutable total : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { counts = Array.make n_buckets 0; n = 0; total = 0.; vmin = infinity; vmax = neg_infinity }

  let bucket_of v =
    if v < 1. then 0
    else Stdlib.min (n_buckets - 1) (int_of_float (Float.floor (buckets_per_octave *. Float.log2 v)))

  (* Geometric midpoint of bucket [i]. *)
  let representative i = Float.pow 2. ((float_of_int i +. 0.5) /. buckets_per_octave)

  let observe t v =
    let v = if v < 0. then 0. else v in
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let observe_span t d = observe t (Sim.Time.to_us d)
  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n

  let max_value t =
    if t.n = 0 then invalid_arg "Obs.Metrics.Histogram.max_value: empty";
    t.vmax

  let percentile t q =
    if t.n = 0 then invalid_arg "Obs.Metrics.Histogram.percentile: empty";
    if q < 0. || q > 1. then invalid_arg "Obs.Metrics.Histogram.percentile: q outside [0,1]";
    if q >= 1. then t.vmax
    else begin
      let target = q *. float_of_int t.n in
      let clamp v = Float.min t.vmax (Float.max t.vmin v) in
      let rec go i cum =
        if i >= n_buckets then t.vmax
        else begin
          let cum = cum + t.counts.(i) in
          if t.counts.(i) > 0 && float_of_int cum >= target then clamp (representative i)
          else go (i + 1) cum
        end
      in
      go 0 0
    end

  let reset t =
    Array.fill t.counts 0 n_buckets 0;
    t.n <- 0;
    t.total <- 0.;
    t.vmin <- infinity;
    t.vmax <- neg_infinity
end

type instrument =
  | I_counter of Sim.Stats.Counter.t
  | I_counter_fn of (unit -> int)
  | I_level of Sim.Stats.Level.t
  | I_probe of (unit -> float)
  | I_hist of Histogram.t

module Registry = struct
  type t = { tbl : (string * string, instrument) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let kind_error ~site ~name =
    invalid_arg
      (Printf.sprintf "Obs.Metrics.Registry: %s/%s already bound to a different instrument kind"
         site name)

  let counter t ~site ~name =
    match Hashtbl.find_opt t.tbl (site, name) with
    | Some (I_counter c) -> c
    | Some _ -> kind_error ~site ~name
    | None ->
      let c = Sim.Stats.Counter.create () in
      Hashtbl.replace t.tbl (site, name) (I_counter c);
      c

  let histogram t ~site ~name =
    match Hashtbl.find_opt t.tbl (site, name) with
    | Some (I_hist h) -> h
    | Some _ -> kind_error ~site ~name
    | None ->
      let h = Histogram.create () in
      Hashtbl.replace t.tbl (site, name) (I_hist h);
      h

  let register_counter t ~site ~name c = Hashtbl.replace t.tbl (site, name) (I_counter c)
  let register_counter_fn t ~site ~name f = Hashtbl.replace t.tbl (site, name) (I_counter_fn f)
  let register_level t ~site ~name l = Hashtbl.replace t.tbl (site, name) (I_level l)
  let register_probe t ~site ~name f = Hashtbl.replace t.tbl (site, name) (I_probe f)
end

module Snapshot = struct
  type value =
    | Count of int
    | Gauge of float
    | Level of { current : float; average : float; integral : float }
    | Dist of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max_v : float }

  type row = { site : string; name : string; value : value }
  type t = { at : Sim.Time.t; rows : row list }

  let value_of_instrument ~at = function
    | I_counter c -> Count (Sim.Stats.Counter.value c)
    | I_counter_fn f -> Count (f ())
    | I_probe f -> Gauge (f ())
    | I_level l ->
      Level
        {
          current = Sim.Stats.Level.current l;
          average = Sim.Stats.Level.average l ~upto:at;
          integral = Sim.Stats.Level.integral l ~upto:at;
        }
    | I_hist h ->
      if Histogram.count h = 0 then
        Dist { count = 0; sum = 0.; p50 = 0.; p90 = 0.; p99 = 0.; max_v = 0. }
      else
        Dist
          {
            count = Histogram.count h;
            sum = Histogram.sum h;
            p50 = Histogram.percentile h 0.5;
            p90 = Histogram.percentile h 0.9;
            p99 = Histogram.percentile h 0.99;
            max_v = Histogram.max_value h;
          }

  let take (reg : Registry.t) ~at =
    let rows =
      Hashtbl.fold
        (fun (site, name) inst acc -> { site; name; value = value_of_instrument ~at inst } :: acc)
        reg.Registry.tbl []
      |> List.sort (fun a b ->
             match String.compare a.site b.site with
             | 0 -> String.compare a.name b.name
             | c -> c)
    in
    { at; rows }

  let find t ~site ~name =
    List.find_map
      (fun r -> if String.equal r.site site && String.equal r.name name then Some r.value else None)
      t.rows

  let diff later earlier =
    let window_sec = Sim.Time.to_sec (Sim.Time.diff later.at earlier.at) in
    let diff_value v_later v_earlier =
      match (v_later, v_earlier) with
      | Count a, Some (Count b) -> Count (a - b)
      | Dist a, Some (Dist b) ->
        Dist { a with count = a.count - b.count; sum = a.sum -. b.sum }
      | Level a, Some (Level b) ->
        let integral = a.integral -. b.integral in
        let average = if window_sec <= 0. then 0. else integral /. window_sec in
        Level { current = a.current; average; integral }
      | v, _ -> v
    in
    let rows =
      List.map
        (fun r ->
          { r with value = diff_value r.value (find earlier ~site:r.site ~name:r.name) })
        later.rows
    in
    { at = later.at; rows }

  let fmt_f f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.3f" f

  let render_value = function
    | Count n -> (string_of_int n, "")
    | Gauge g -> (fmt_f g, "")
    | Level { current; average; integral } ->
      (fmt_f current, Printf.sprintf "avg=%s integral=%s" (fmt_f average) (fmt_f integral))
    | Dist { count; sum; p50; p90; p99; max_v } ->
      ( string_of_int count,
        Printf.sprintf "sum=%s p50=%s p90=%s p99=%s max=%s" (fmt_f sum) (fmt_f p50) (fmt_f p90)
          (fmt_f p99) (fmt_f max_v) )

  let kind_of = function
    | Count _ -> "counter"
    | Gauge _ -> "gauge"
    | Level _ -> "level"
    | Dist _ -> "histogram"

  let to_table ?(id = "metrics") ?(title = "Metrics snapshot") t =
    let rows =
      List.map
        (fun r ->
          let v, extra = render_value r.value in
          [ r.site; r.name; kind_of r.value; v; extra ])
        t.rows
    in
    Report.Table.make ~id ~title ~columns:[ "site"; "metric"; "kind"; "value"; "detail" ] rows

  let csv_escape s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s

  let to_csv t =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "site,name,kind,value,extra\n";
    List.iter
      (fun r ->
        let v, extra = render_value r.value in
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,%s,%s,%s\n" (csv_escape r.site) (csv_escape r.name)
             (kind_of r.value) (csv_escape v) (csv_escape extra)))
      t.rows;
    Buffer.contents buf
end
