(** Chrome trace-event (Perfetto) export.

    Renders {!Sim.Trace} spans and a {!Journal} as a Chrome trace-event
    JSON object — the format understood by [ui.perfetto.dev] and
    [chrome://tracing].  Each simulated {e site} (machine, wire) becomes
    a process; each {e track} within a site (cpu0..cpuN, the DEQNA, the
    wire) becomes a thread lane; journal events appear as instants on a
    dedicated "events" lane; and cumulative packet/retransmit counts
    from the journal become counter tracks.  Virtual nanoseconds map to
    the format's microsecond [ts]/[dur] fields, so the viewer's ruler
    reads in real (simulated) time. *)

val chrome_trace : ?journal:Journal.t -> spans:Sim.Trace.span list -> unit -> Json.t
(** The full [{"traceEvents": [...], "displayTimeUnit": "ms"}] object.
    Deterministic: sites and tracks are numbered in sorted order and
    events are emitted in a fixed order, so equal inputs render to
    byte-identical JSON.  Span events carry the causal call id and the
    queue/service kind in their [args]; when a journal is supplied, a
    top-level [metadata] object reports its retained/dropped/total
    event counts, so a consumer can tell whether the ring overwrote
    part of the window. *)

val write_file : path:string -> Json.t -> unit
(** Writes the JSON (plus a trailing newline) to [path]. *)
