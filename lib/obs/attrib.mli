(** Automatic latency-breakdown attribution.

    Consumes the span dump of a traced window plus the measured per-call
    windows and accounts every microsecond of each call's end-to-end
    latency to a named stage (service), to identified queueing delay, or
    to an explicit unattributed residual.  The accounting is exclusive —
    an exclusive timeline sweep attributes each instant of the window at
    most once, service winning over queueing — so per call

    {v service + queueing + residual = end-to-end latency v}

    holds exactly, and {!conservation_ok} demands the residual stay
    small.  Stage rows aggregate raw durations across calls for a
    Table VI-style presentation, and {!check} additionally flags drift
    from the paper's calibrated per-step constants. *)

type window = { w_call : int; w_start : Sim.Time.t; w_stop : Sim.Time.t }
(** The measured bounds of one call, as timed by the workload driver. *)

type column = Caller | Server | Wire

type stage = {
  st_label : string;
  st_kind : Sim.Trace.kind;
  st_column : column;  (** where the stage's first span ran *)
  st_caller_us : float;  (** mean per-call raw us spent on the caller *)
  st_server_us : float;
  st_wire_us : float;  (** wire time and other no-CPU latency *)
  st_mean_us : float;
  st_samples : float array;  (** per-call raw totals, sorted ascending *)
}

type call_account = {
  ca_call : int;
  ca_elapsed_us : float;
  ca_service_us : float;  (** exclusive: no instant counted twice *)
  ca_queue_us : float;
  ca_unattributed_us : float;  (** always [elapsed - service - queue] *)
}

type report = {
  r_stages : stage list;  (** in order of first causal appearance *)
  r_calls : call_account list;
  r_elapsed_us : float;  (** means over calls *)
  r_service_us : float;
  r_queue_us : float;
  r_unattributed_us : float;
  r_coverage : float;  (** mean attributed fraction of e2e latency *)
  r_min_coverage : float;  (** worst call's attributed fraction *)
}

val percentile : float array -> float -> float
(** Nearest-rank percentile of an ascending array (0 on empty).
    @raise Invalid_argument when p lies outside [0, 1]. *)

val p50 : stage -> float
val p99 : stage -> float

val attribute :
  ?caller_site:string ->
  ?server_site:string ->
  spans:Sim.Trace.span list ->
  windows:window list ->
  unit ->
  report
(** Builds the report.  Sites default to ["caller"]/["server"] (the
    standard two-machine world); spans on other sites — and spans on the
    ["wire"] track — land in the wire column. *)

val conservation_ok : ?min_coverage:float -> report -> bool
(** True when every call's attributed fraction (service + queueing)
    reaches [min_coverage] (default 0.99) of its measured latency. *)

(** {1 Drift against the calibrated Table VI constants} *)

type scenario = Null_call | Max_arg_call

val expected_us : scenario -> string -> float option
(** Expected per-call raw total of a Table VI step under the scenario's
    packet sizes: Null() exchanges two 74-byte packets; MaxArg(b) sends
    one 1514-byte call packet and receives a 74-byte result. *)

type drift = { d_label : string; d_expected_us : float; d_measured_us : float; d_frac : float }

val drift : report -> scenario:scenario -> drift list
(** Measured-vs-calibrated comparison for every Table VI stage present
    in the report. *)

val check :
  ?min_coverage:float ->
  ?tolerance_frac:float ->
  ?tolerance_us:float ->
  report ->
  scenario:scenario ->
  (unit, string list) result
(** The [--check] gate: conservation on every call, every calibrated
    step present in the trace, and no step drifting beyond both
    [tolerance_frac] (default 25%) and [tolerance_us] (default 15 us)
    from its calibrated per-call cost. *)

(** {1 Rendering} *)

val table : ?percentile:float -> report -> Report.Table.t
(** Stage rows plus service/queueing/residual/end-to-end summary rows;
    [percentile] appends an extra per-stage percentile column. *)

val to_csv : ?percentile:float -> report -> string
