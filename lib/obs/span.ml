module Trace = Sim.Trace
module Time = Sim.Time

(* A recorded span interval, grouped per RPC and arranged causally: a
   nesting forest per (site, track) lane plus the cross-lane edges that
   stitch one call's work across CPUs, controllers, the wire and the
   two machines.  Built after a traced run from the flat span list —
   recording stays cheap; structure is recovered here. *)

type node = { span : Trace.span; mutable children : node list }
type edge = { e_from : Trace.span; e_to : Trace.span }

type call = {
  id : int;
  spans : Trace.span list;  (** every span of this call, in causal (time) order *)
  roots : node list;  (** interval-containment forest, lane by lane *)
  edges : edge list;  (** consecutive-segment hops between lanes *)
}

let duration_ns (s : Trace.span) = Time.to_ns (Trace.duration s)

(* Causal order: by start time; an enclosing span (longer, same start)
   sorts before the work inside it; remaining ties resolve on the lane
   and label so the order is total and deterministic. *)
let causal_compare (a : Trace.span) (b : Trace.span) =
  let c = Time.compare a.Trace.start_at b.Trace.start_at in
  if c <> 0 then c
  else
    let c = compare (duration_ns b) (duration_ns a) in
    if c <> 0 then c
    else
      let c = String.compare a.Trace.site b.Trace.site in
      if c <> 0 then c
      else
        let c = String.compare a.Trace.track b.Trace.track in
        if c <> 0 then c else String.compare a.Trace.label b.Trace.label

let same_lane (a : Trace.span) (b : Trace.span) =
  String.equal a.Trace.site b.Trace.site && String.equal a.Trace.track b.Trace.track

let contains (p : Trace.span) (c : Trace.span) =
  Time.compare p.Trace.start_at c.Trace.start_at <= 0
  && Time.compare p.Trace.stop_at c.Trace.stop_at >= 0

(* Build the containment forest of one lane's (already causally sorted)
   spans with an open-span stack, like matching brackets. *)
let forest_of_lane lane =
  let roots = ref [] in
  let stack = ref [] in
  List.iter
    (fun s ->
      let n = { span = s; children = [] } in
      let rec place () =
        match !stack with
        | [] -> roots := n :: !roots
        | top :: rest ->
          if contains top.span s then top.children <- n :: top.children
          else begin
            stack := rest;
            place ()
          end
      in
      place ();
      stack := n :: !stack)
    lane;
  let rec rev_all n =
    n.children <- List.rev_map (fun c -> rev_all c; c) n.children |> List.rev;
    ()
  in
  let rs = List.rev !roots in
  List.iter rev_all rs;
  rs

let forest spans =
  (* Partition into lanes preserving causal order, then build each. *)
  let lanes = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      let key = (s.Trace.site, s.Trace.track) in
      match Hashtbl.find_opt lanes key with
      | Some l -> l := s :: !l
      | None ->
        Hashtbl.add lanes key (ref [ s ]);
        order := key :: !order)
    spans;
  List.concat_map
    (fun key -> forest_of_lane (List.rev !(Hashtbl.find lanes key)))
    (List.rev !order)

(* Causal hops: each consecutive pair of the call's spans that sit on
   different lanes.  With frame-level call stitching these are exactly
   the transfers of control — CPU to controller, controller to wire,
   wire to the peer machine and back. *)
let edges_of spans =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      go (if same_lane a b then acc else { e_from = a; e_to = b } :: acc) rest
    | _ -> List.rev acc
  in
  go [] spans

let of_spans all =
  let by_call = Hashtbl.create 16 in
  let ids = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.call >= 0 then
        match Hashtbl.find_opt by_call s.Trace.call with
        | Some l -> l := s :: !l
        | None ->
          Hashtbl.add by_call s.Trace.call (ref [ s ]);
          ids := s.Trace.call :: !ids)
    all;
  List.map
    (fun id ->
      let spans = List.stable_sort causal_compare (List.rev !(Hashtbl.find by_call id)) in
      { id; spans; roots = forest spans; edges = edges_of spans })
    (List.sort compare !ids)

let unattributed all = List.filter (fun (s : Trace.span) -> s.Trace.call < 0) all

(* {1 Well-formedness} *)

(* Open/close balance: within one lane, spans must nest like brackets —
   each child inside its parent, siblings non-overlapping — i.e. the
   interleaving "open at start_at, close at stop_at" event stream is
   balanced.  Partial overlap on a lane means a recording bug (two
   charges on one CPU cannot interleave). *)
let check_tree call =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let describe (s : Trace.span) =
    Printf.sprintf "%s/%s %S [%d, %d]" s.Trace.site s.Trace.track s.Trace.label
      (Time.since_start_ns s.Trace.start_at)
      (Time.since_start_ns s.Trace.stop_at)
  in
  let rec check_siblings parent = function
    | [] -> Ok ()
    | n :: rest -> (
      let bad_parent =
        match parent with
        | Some p when not (contains p.span n.span) -> true
        | _ -> false
      in
      if bad_parent then
        fail "child escapes parent: %s inside %s" (describe n.span)
          (describe (Option.get parent).span)
      else
        match rest with
        | next :: _
          when Time.compare n.span.Trace.stop_at next.span.Trace.start_at > 0
               && not (contains n.span next.span) ->
          fail "siblings overlap: %s then %s" (describe n.span) (describe next.span)
        | _ -> (
          match check_siblings (Some n) n.children with
          | Error _ as e -> e
          | Ok () -> check_siblings parent rest))
  in
  (* Validate lane by lane: roots of different lanes may overlap freely
     (a controller works while a CPU computes). *)
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let key = (n.span.Trace.site, n.span.Trace.track) in
      match Hashtbl.find_opt lanes key with
      | Some l -> l := n :: !l
      | None -> Hashtbl.add lanes key (ref [ n ]))
    call.roots;
  Hashtbl.fold
    (fun _ l acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> check_siblings None (List.rev !l))
    lanes (Ok ())

(* Edge well-formedness: both ends belong to this call, endpoints sit on
   different lanes, and causality runs forward — the destination cannot
   start before the source does. *)
let check_edges call =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let member s = List.exists (fun s' -> s' == s) call.spans in
  let rec go = function
    | [] -> Ok ()
    | e :: rest ->
      if e.e_from.Trace.call <> call.id || e.e_to.Trace.call <> call.id then
        fail "edge endpoint from another call (%d or %d, expected %d)" e.e_from.Trace.call
          e.e_to.Trace.call call.id
      else if not (member e.e_from && member e.e_to) then Error "edge endpoint not in call"
      else if same_lane e.e_from e.e_to then
        fail "edge within one lane: %s/%s" e.e_from.Trace.site e.e_from.Trace.track
      else if Time.compare e.e_to.Trace.start_at e.e_from.Trace.start_at < 0 then
        fail "edge runs backwards in time (%S -> %S)" e.e_from.Trace.label e.e_to.Trace.label
      else go rest
  in
  go call.edges

let cross_machine_edges call =
  List.filter (fun e -> not (String.equal e.e_from.Trace.site e.e_to.Trace.site)) call.edges
