(** A minimal JSON tree, emitter and parser.

    The container ships no JSON library, and the observability layer
    needs only enough JSON to write Chrome trace-event files and to
    parse them back in tests — so this module hand-rolls both sides.
    The emitter prints numbers deterministically (integers without a
    fractional part, everything else via ["%.12g"]), which the
    byte-identical-output acceptance criteria rely on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Recursive-descent parser for the full JSON grammar (escapes,
    exponents, nested containers).  Errors carry a character offset. *)

(** {2 Accessors} (total — they return [None]/[[]] on shape mismatch) *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val items : t -> t list
(** Elements of an [Arr]; [[]] for any other constructor. *)

val num : t -> float option
val str : t -> string option
val bool : t -> bool option
