(** Site-scoped metrics: a registry of named instruments with a
    snapshot/diff API.

    The paper is an exercise in accounting — every table is "where did
    the microseconds (or the packets, or the CPUs) go".  The registry
    gives each model component one place to publish its numbers under a
    stable [(site, name)] key, where {e site} is the machine or entity
    ("caller", "server", "ether") and {e name} a dotted metric path
    ("deqna.tx_frames", "rpc.latency_us").  Experiments snapshot the
    registry before and after a run and render the difference.

    Four instrument shapes cover the codebase:
    - {b counters} — monotone event counts; either owned
      {!Sim.Stats.Counter}s or adopted read-closures over counters that
      model code already maintains;
    - {b gauges} — instantaneous values sampled at snapshot time
      (queue depths, utilizations), again owned or adopted;
    - {b levels} — adopted {!Sim.Stats.Level}s, reported with their
      time-weighted average and integral so a snapshot diff can compute
      the average over exactly the diffed window;
    - {b histograms} — log-bucketed latency distributions with
      p50/p90/p99/max queries (buckets grow by [2^(1/8)] ≈ 9 %, which
      bounds the relative quantile error to one bucket). *)

module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one (non-negative) sample.  Negative samples are clamped
      to 0. *)

  val observe_span : t -> Sim.Time.span -> unit
  (** Records the duration in {b microseconds} — the natural unit for
      RPC phases in this model. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile t q] with [q] in [\[0, 1\]]: nearest-rank quantile,
      answered from the bucket midpoint and clamped to the observed
      [\[min, max\]] (so [percentile t 1.] is the exact maximum).
      Raises [Invalid_argument] if empty or [q] is out of range. *)

  val max_value : t -> float
  (** Exact maximum observed; raises [Invalid_argument] if empty. *)

  val reset : t -> unit
end

module Registry : sig
  type t

  val create : unit -> t

  (** {2 Owned instruments (get-or-create)}

      Repeated calls with the same key return the same instrument; a
      key already bound to a different instrument kind raises
      [Invalid_argument]. *)

  val counter : t -> site:string -> name:string -> Sim.Stats.Counter.t
  val histogram : t -> site:string -> name:string -> Histogram.t

  (** {2 Adopted instruments}

      Model code keeps its own counters and levels; registration makes
      them visible to snapshots without changing how they are updated.
      Registering an existing key replaces the previous binding. *)

  val register_counter : t -> site:string -> name:string -> Sim.Stats.Counter.t -> unit
  val register_counter_fn : t -> site:string -> name:string -> (unit -> int) -> unit
  val register_level : t -> site:string -> name:string -> Sim.Stats.Level.t -> unit

  val register_probe : t -> site:string -> name:string -> (unit -> float) -> unit
  (** A gauge sampled at snapshot time. *)
end

module Snapshot : sig
  type value =
    | Count of int
    | Gauge of float
    | Level of { current : float; average : float; integral : float }
    | Dist of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max_v : float }

  type row = { site : string; name : string; value : value }

  type t = { at : Sim.Time.t; rows : row list }
  (** Rows are sorted by [(site, name)], so renderings of the same
      registry state are byte-identical. *)

  val take : Registry.t -> at:Sim.Time.t -> t

  val diff : t -> t -> t
  (** [diff later earlier]: counters and histogram counts/sums
      subtract; a level's [average]/[integral] cover exactly the
      window between the two snapshots; gauges and histogram
      percentiles report the later snapshot's value.  Rows absent from
      [earlier] pass through unchanged. *)

  val find : t -> site:string -> name:string -> value option

  val to_table : ?id:string -> ?title:string -> t -> Report.Table.t
  val to_csv : t -> string
  (** Header ["site,name,kind,value,extra"] then one row per metric. *)
end
