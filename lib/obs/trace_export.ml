let span_track (s : Sim.Trace.span) = if s.track = "" then "main" else s.track

(* Sites in sorted order, numbered from 1. *)
let site_pids ~spans ~entries =
  let sites = Hashtbl.create 8 in
  List.iter (fun (s : Sim.Trace.span) -> Hashtbl.replace sites s.site ()) spans;
  List.iter (fun (e : Journal.entry) -> Hashtbl.replace sites e.site ()) entries;
  let sorted = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) sites []) in
  List.mapi (fun i site -> (site, i + 1)) sorted

(* Per-site thread lanes: "main" first when present, the rest sorted;
   tid 0 is reserved for the journal's "events" lane. *)
let site_tids ~spans site =
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun (s : Sim.Trace.span) -> if String.equal s.site site then Hashtbl.replace tracks (span_track s) ())
    spans;
  let names = Hashtbl.fold (fun k () acc -> k :: acc) tracks [] in
  let main, rest = List.partition (String.equal "main") names in
  let ordered = main @ List.sort String.compare rest in
  List.mapi (fun i track -> (track, i + 1)) ordered

let num n = Json.Num (float_of_int n)

let metadata ~what ~pid ?tid ~name () =
  let fields =
    [ ("name", Json.Str what); ("ph", Json.Str "M"); ("pid", num pid) ]
    @ (match tid with Some t -> [ ("tid", num t) ] | None -> [])
    @ [ ("args", Json.Obj [ ("name", Json.Str name) ]) ]
  in
  Json.Obj fields

let span_event ~pid ~tid (s : Sim.Trace.span) =
  (* Surface the causal call id and the service/queue kind so Perfetto
     queries can slice one RPC out of the timeline. *)
  let args =
    (if s.call >= 0 then [ ("call", num s.call) ] else [])
    @ match s.kind with Sim.Trace.Queue -> [ ("kind", Json.Str "queue") ] | Sim.Trace.Service -> []
  in
  Json.Obj
    ([
       ("name", Json.Str s.label);
       ("cat", Json.Str s.cat);
       ("ph", Json.Str "X");
       ("ts", Json.Num (Sim.Time.since_start_us s.start_at));
       ("dur", Json.Num (Sim.Time.to_us (Sim.Trace.duration s)));
       ("pid", num pid);
       ("tid", num tid);
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let instant_args = function
  | Journal.Packet_tx { bytes } | Journal.Packet_rx { bytes } -> [ ("bytes", num bytes) ]
  | Journal.Retransmit { seq } | Journal.Ack { seq } -> [ ("seq", num seq) ]
  | _ -> []

let instant_event ~pid (e : Journal.entry) =
  Json.Obj
    ([
       ("name", Json.Str (Journal.event_label e.ev));
       ("ph", Json.Str "i");
       ("ts", Json.Num (Sim.Time.since_start_us e.at));
       ("pid", num pid);
       ("tid", num 0);
       ("s", Json.Str "t");
     ]
    @ match instant_args e.ev with [] -> [] | args -> [ ("args", Json.Obj args) ])

let counter_event ~pid ~name ~ts args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "C");
      ("ts", Json.Num ts);
      ("pid", num pid);
      ("args", Json.Obj args);
    ]

(* Derive counter tracks from the journal: cumulative tx/rx packet
   counts per site, and a retransmit count where any occurred. *)
let counter_events ~pids entries =
  let tx = Hashtbl.create 8 and rx = Hashtbl.create 8 and rt = Hashtbl.create 8 in
  let bump tbl site = Hashtbl.replace tbl site (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site)) in
  let get tbl site = Option.value ~default:0 (Hashtbl.find_opt tbl site) in
  List.filter_map
    (fun (e : Journal.entry) ->
      match List.assoc_opt e.site pids with
      | None -> None
      | Some pid -> (
        let ts = Sim.Time.since_start_us e.at in
        match e.ev with
        | Packet_tx _ | Packet_rx _ ->
          (match e.ev with
          | Packet_tx _ -> bump tx e.site
          | _ -> bump rx e.site);
          Some
            (counter_event ~pid ~name:"packets" ~ts
               [ ("tx", num (get tx e.site)); ("rx", num (get rx e.site)) ])
        | Retransmit _ ->
          bump rt e.site;
          Some (counter_event ~pid ~name:"retransmits" ~ts [ ("count", num (get rt e.site)) ])
        | _ -> None))
    entries

let chrome_trace ?journal ~spans () =
  let entries = match journal with None -> [] | Some j -> Journal.entries j in
  let pids = site_pids ~spans ~entries in
  let tids_by_site = List.map (fun (site, _) -> (site, site_tids ~spans site)) pids in
  let has_entries site = List.exists (fun (e : Journal.entry) -> String.equal e.site site) entries in
  let meta =
    List.concat_map
      (fun (site, pid) ->
        metadata ~what:"process_name" ~pid ~name:site ()
        :: (if has_entries site then [ metadata ~what:"thread_name" ~pid ~tid:0 ~name:"events" () ]
            else [])
        @ List.map
            (fun (track, tid) -> metadata ~what:"thread_name" ~pid ~tid ~name:track ())
            (Option.value ~default:[] (List.assoc_opt site tids_by_site)))
      pids
  in
  let span_events =
    List.map
      (fun (s : Sim.Trace.span) ->
        let pid = Option.value ~default:0 (List.assoc_opt s.site pids) in
        let tid =
          Option.value ~default:0
            (Option.bind (List.assoc_opt s.site tids_by_site) (List.assoc_opt (span_track s)))
        in
        span_event ~pid ~tid s)
      spans
  in
  let instants =
    List.filter_map
      (fun (e : Journal.entry) ->
        Option.map (fun pid -> instant_event ~pid e) (List.assoc_opt e.site pids))
      entries
  in
  let counters = counter_events ~pids entries in
  (* Completeness metadata: a viewer (or CI) can tell whether the
     journal ring overwrote events during the traced window — a
     timeline with drops is not the whole story. *)
  let completeness =
    match journal with
    | None -> []
    | Some j ->
      [
        ( "metadata",
          Json.Obj
            [
              ("journal_events", num (Journal.length j));
              ("journal_dropped", num (Journal.dropped j));
              ("journal_total", num (Journal.total j));
            ] );
      ]
  in
  Json.Obj
    ([
       ("traceEvents", Json.Arr (meta @ span_events @ instants @ counters));
       ("displayTimeUnit", Json.Str "ms");
     ]
    @ completeness)

let write_file ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
