(** Per-call causal span trees over a raw {!Sim.Trace} dump.

    Recording keeps spans flat and cheap (a label, a lane, an interval,
    a call id); this module recovers the structure after the run: spans
    grouped per RPC, nested by interval containment within each
    [(site, track)] lane, and linked by the cross-lane causal edges that
    follow one call through CPUs, controllers, the wire and both
    machines. *)

type node = { span : Sim.Trace.span; mutable children : node list }

type edge = { e_from : Sim.Trace.span; e_to : Sim.Trace.span }
(** A causal hop between two consecutive segments of one call that sit
    on different lanes. *)

type call = {
  id : int;
  spans : Sim.Trace.span list;  (** every span of the call, causally ordered *)
  roots : node list;  (** containment forest, lane by lane *)
  edges : edge list;  (** consecutive-segment hops between lanes *)
}

val of_spans : Sim.Trace.span list -> call list
(** Group spans by call id (ascending); spans with no call id are
    dropped — see {!unattributed}.  Deterministic: ties in start time
    resolve on duration, lane and label, then recording order. *)

val unattributed : Sim.Trace.span list -> Sim.Trace.span list
(** The spans carrying no call id (background work: retransmit timers,
    idle-load traffic, controller recovery). *)

val causal_compare : Sim.Trace.span -> Sim.Trace.span -> int
(** The total order used by {!of_spans}. *)

val contains : Sim.Trace.span -> Sim.Trace.span -> bool
(** [contains p c] iff [c]'s interval lies within [p]'s. *)

val check_tree : call -> (unit, string) result
(** Open/close balance: within every lane of the call, spans nest like
    brackets — each child inside its parent, siblings non-overlapping.
    Partial overlap on one lane indicates a recording bug. *)

val check_edges : call -> (unit, string) result
(** Edge well-formedness: endpoints belong to this call, sit on
    different lanes, and run forward in time. *)

val cross_machine_edges : call -> edge list
(** The subset of edges whose endpoints sit on different sites — the
    frame-level stitches between machines. *)
