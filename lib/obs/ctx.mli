(** The observability context threaded through the model: one metrics
    registry plus one event journal.

    A {!Workload.World} creates a single context and hands it to both
    machines and the link, so one snapshot sees the whole experiment;
    components created without one get a private context, which keeps
    every existing call site working and costs only the (cheap)
    unobserved updates. *)

type t = { metrics : Metrics.Registry.t; journal : Journal.t }

val create : ?journal_capacity:int -> unit -> t

val record : t -> at:Sim.Time.t -> site:string -> Journal.event -> unit
(** Shorthand for recording into the context's journal. *)
