module Rng = Sim.Rng

(* The fuzz loop.  Two phases, both pure functions of the seed:

   - a systematic sweep first: every prefix of every corpus entry, so
     "truncation at every offset" is exhaustive rather than sampled;
   - then stacked random mutations of random corpus entries for the
     rest of the iteration budget.

   The first failure of each (stage, property) class is shrunk with
   {!Check.Shrinker.minimize_bytes} and kept as a minimized reproducer;
   later instances of the same class are counted but not stored. *)

type failure_report = {
  f_stage : string;
  f_tag : string;
  f_message : string;
  f_original_len : int;
  f_input : Bytes.t;  (** minimized *)
  f_count : int;  (** inputs that hit this (stage, property) class *)
}

type report = {
  r_seed : int;
  r_iters : int;
  r_corpus_size : int;
  r_executed : int;
  r_full_stack_ok : int;
  r_failures : failure_report list;
}

let run ?(sweep = true) ~seed ~iters () =
  let corpus = Corpus.generate ~seed in
  let corpus_arr = Array.of_list corpus in
  let rng = Rng.create ~seed in
  let reasm = Oracle.Reasm.create () in
  let executed = ref 0 and accepted = ref 0 in
  let failures : (string, failure_report ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let execute input =
    incr executed;
    let o = Oracle.run ~reasm input in
    if o.Oracle.full_stack_ok then incr accepted;
    match o.Oracle.failure with
    | None -> ()
    | Some f -> (
      let key = Oracle.key f in
      match Hashtbl.find_opt failures key with
      | Some r -> r := { !r with f_count = !r.f_count + 1 }
      | None ->
        let still_fails b =
          match (Oracle.run b).Oracle.failure with
          | Some f' -> String.equal (Oracle.key f') key
          | None -> false
        in
        (* Reassembly failures depend on fragment state built by earlier
           inputs, so a lone input may not reproduce — keep it unshrunk
           then. *)
        let minimized =
          if still_fails input then Check.Shrinker.minimize_bytes ~still_fails input else input
        in
        let r =
          ref
            {
              f_stage = f.Oracle.stage;
              f_tag = Oracle.kind_tag f.Oracle.kind;
              f_message = Oracle.kind_message f.Oracle.kind;
              f_original_len = Bytes.length input;
              f_input = minimized;
              f_count = 1;
            }
        in
        Hashtbl.add failures key r;
        order := r :: !order)
  in
  (* Sweep shortest entries first and leave at least half the budget to
     the random phase: under a small budget every input class still
     gets both exhaustive truncation and mutation coverage. *)
  let sweep_budget = iters / 2 in
  if sweep then
    List.iter
      (fun entry ->
        for k = 0 to Bytes.length entry - 1 do
          if !executed < sweep_budget then execute (Bytes.sub entry 0 k)
        done)
      (List.stable_sort (fun a b -> compare (Bytes.length a) (Bytes.length b)) corpus);
  while !executed < iters do
    let base = corpus_arr.(Rng.int rng (Array.length corpus_arr)) in
    let input = ref base in
    for _ = 1 to 1 + Rng.int rng 3 do
      input := Mutate.apply rng ~corpus:corpus_arr !input
    done;
    execute !input
  done;
  {
    r_seed = seed;
    r_iters = iters;
    r_corpus_size = Array.length corpus_arr;
    r_executed = !executed;
    r_full_stack_ok = !accepted;
    r_failures = List.rev_map (fun r -> !r) !order;
  }

(* {1 The canary self-test} *)

let canary ~seed ~iters () =
  Net.Udp.canary_skip_length_check := true;
  Fun.protect ~finally:(fun () -> Net.Udp.canary_skip_length_check := false) @@ fun () ->
  let r = run ~seed ~iters () in
  let found = List.exists (fun f -> String.equal f.f_tag "exception") r.r_failures in
  (found, r)

(* {1 Reproducer persistence and replay} *)

let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '-') s

let failure_filename ~seed i f =
  Printf.sprintf "repro-seed%d-%02d-%s-%s.bin" seed i (sanitize f.f_stage) (sanitize f.f_tag)

let write_failures ~dir report =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.mapi
    (fun i f ->
      let path = Filename.concat dir (failure_filename ~seed:report.r_seed i f) in
      let oc = open_out_bin path in
      output_bytes oc f.f_input;
      close_out oc;
      path)
    report.r_failures

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let replay_file path = (Oracle.run (read_file path)).Oracle.failure

let replay_dir ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bin")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, replay_file path))

(* {1 Rendering} *)

let to_string r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "wire fuzz: seed=%d iters=%d corpus=%d entries\n" r.r_seed r.r_iters
    r.r_corpus_size;
  Printf.bprintf b "executed %d inputs: %d accepted by some full-stack regime, %d rejected\n"
    r.r_executed r.r_full_stack_ok
    (r.r_executed - r.r_full_stack_ok);
  (match r.r_failures with
  | [] -> Buffer.add_string b "no property violations: every decoder stayed total.\n"
  | fs ->
    Printf.bprintf b "%d distinct failure mode(s):\n" (List.length fs);
    List.iter
      (fun f ->
        Printf.bprintf b "\n[%s] %s (%d input(s) hit this class): %s\n" f.f_stage f.f_tag
          f.f_count f.f_message;
        Printf.bprintf b "minimized reproducer, %d bytes (from %d):\n%s" (Bytes.length f.f_input)
          f.f_original_len
          (Wire.Hexdump.to_string f.f_input))
      fs);
  Buffer.contents b
