(** The deterministic fuzz loop: corpus → mutation → oracle → shrink.

    A run is a pure function of [(seed, iters)]: the corpus, the
    mutation stream, the failure list and the rendered report are all
    byte-identical across runs — [firefly fuzz]'s replay contract.

    Iteration budget is spent in two phases: first a systematic
    truncation sweep (every prefix of every corpus entry), then stacked
    random mutations.  The first input to hit each (stage, property)
    failure class is shrunk to a minimized reproducer with
    {!Check.Shrinker.minimize_bytes}. *)

type failure_report = {
  f_stage : string;
  f_tag : string;
  f_message : string;  (** the first instance's message *)
  f_original_len : int;
  f_input : Stdlib.Bytes.t;  (** minimized *)
  f_count : int;  (** inputs that hit this (stage, property) class *)
}

type report = {
  r_seed : int;
  r_iters : int;
  r_corpus_size : int;
  r_executed : int;
  r_full_stack_ok : int;
  r_failures : failure_report list;  (** discovery order *)
}

val run : ?sweep:bool -> seed:int -> iters:int -> unit -> report
(** [sweep] (default true) enables the exhaustive truncation phase. *)

val canary : seed:int -> iters:int -> unit -> bool * report
(** Self-test: plants {!Net.Udp.canary_skip_length_check} (restored on
    exit), fuzzes, and returns whether the planted bug was rediscovered
    as an escaped exception.  A fuzzer that can't find a known
    trust-the-length decoder bug isn't testing anything. *)

val write_failures : dir:string -> report -> string list
(** Persist each minimized reproducer as a raw [.bin] corpus file
    (deterministic names), creating [dir] if missing; returns the
    paths. *)

val replay_file : string -> Oracle.failure option
(** Re-run the oracle over one persisted reproducer. *)

val replay_dir : dir:string -> (string * Oracle.failure option) list
(** Replay every [*.bin] file in [dir], sorted by name; an absent
    directory is an empty corpus. *)

val to_string : report -> string
(** The deterministic human-readable report: counts, then each failure
    class with its minimized reproducer hexdump. *)
