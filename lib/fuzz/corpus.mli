(** The seeded corpus of structurally valid wire inputs.

    Everything the real stack can emit, produced by the real encoders:
    full RPC frames under all four wire regimes (UDP/raw ×
    checksums on/off), multi-fragment result sets for the reassembly
    stage, bare single-layer inputs (UDP datagrams, IPv4 and Ethernet
    headers, RPC headers) for the per-decoder stages, and a little pure
    noise.  Deterministic: the same [seed] always yields the same
    corpus, byte for byte. *)

val all_timings : (string * Hw.Timing.t) list
(** The four regimes, labelled: [udp], [udp-nocks], [raw], [raw-nocks]. *)

val src : Rpc.Frames.endpoint
val dst : Rpc.Frames.endpoint
(** The fixed endpoints every corpus frame is built between; the oracle
    decodes with the same pair so checksummed corpus entries verify. *)

val generate : seed:int -> Stdlib.Bytes.t list
(** Roughly fifty entries spanning every regime and payload class (0, 1,
    mid-size, maximum, multi-fragment). *)
