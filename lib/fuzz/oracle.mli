(** The wire-surface test oracle: three properties on every input.

    Every input — however malformed — is pushed through each decoder
    layer ([Ethernet]/[Ipv4]/[Udp]/[Proto]) and through the full
    [Frames.parse] stack under all four wire regimes, checking:

    + {b totality} — no exception escapes any decoder;
    + {b accept implies re-encode round-trips} — an accepted header,
      re-encoded, decodes to the identical header (byte-exact for the
      lossless Ethernet codec);
    + {b zero-copy equals copying} — decoding through a
      [Reader.of_view] window embedded mid-buffer agrees with
      [Reader.of_bytes] over a private copy, down to identical [Error]
      strings.

    Accepted full-stack parses are optionally fed to a miniature
    fragment collector ({!Reasm}) that enforces the hardened runtime's
    reassembly rules — the stage where the pre-hardening runtime died
    on [Not_found]. *)

type kind =
  | Exception_escaped of string
  | Roundtrip_broken of string
  | Differential of string

type failure = { stage : string; kind : kind }

val kind_tag : kind -> string
(** ["exception"], ["roundtrip"] or ["differential"]. *)

val kind_message : kind -> string

val key : failure -> string
(** Stage + property, message excluded: the identity used to dedupe
    failures and to decide whether a shrunk input still reproduces. *)

val to_string : failure -> string

(** The miniature caller-side fragment collector. *)
module Reasm : sig
  type t

  val create : unit -> t

  val feed : t -> Rpc.Proto.header -> Wire.Bytebuf.View.t -> (unit, string) result
  (** Accumulate one parsed fragment; [Error] reports a reassembly
      property violation (not a wire rejection — those are dropped). *)
end

type outcome = {
  failure : failure option;  (** the first property violation, if any *)
  full_stack_ok : bool;  (** some regime's [Frames.parse] accepted *)
}

val run : ?reasm:Reasm.t -> Stdlib.Bytes.t -> outcome
(** Deterministic; [reasm] carries fragment state across inputs and is
    omitted when replaying or shrinking a single input. *)
