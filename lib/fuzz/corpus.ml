module W = Wire.Bytebuf.Writer
module Rng = Sim.Rng
module Timing = Hw.Timing
module Config = Hw.Config
module Frames = Rpc.Frames
module Proto = Rpc.Proto

(* The four wire regimes the stack can emit (§4.2.4 checksums off,
   §4.2.6 raw Ethernet); the oracle re-parses every input under all of
   them, so corpus entries don't carry their regime. *)
let timing_udp = Timing.create Config.default
let timing_udp_nocks = Timing.create { Config.default with udp_checksums = false }
let timing_raw = Timing.create { Config.default with raw_ethernet = true }

let timing_raw_nocks =
  Timing.create { Config.default with raw_ethernet = true; udp_checksums = false }

let all_timings =
  [
    ("udp", timing_udp);
    ("udp-nocks", timing_udp_nocks);
    ("raw", timing_raw);
    ("raw-nocks", timing_raw_nocks);
  ]

let src = { Frames.mac = Net.Mac.of_station 1; ip = Net.Ipv4.Addr.of_string "16.0.0.1" }
let dst = { Frames.mac = Net.Mac.of_station 2; ip = Net.Ipv4.Addr.of_string "16.0.0.2" }

let random_bytes rng n = Bytes.init n (fun _ -> Char.chr (Rng.int rng 256))

let random_hdr rng ~frag_idx ~frag_count ~data_len =
  let ptype =
    match Rng.int rng 5 with
    | 0 -> Proto.Call
    | 1 -> Proto.Result
    | 2 -> Proto.Ack
    | 3 -> Proto.Busy
    | _ -> Proto.Error_reply
  in
  {
    Proto.ptype;
    please_ack = Rng.int rng 2 = 0;
    no_frag_ack = Rng.int rng 2 = 0;
    secured = false;
    activity =
      {
        Proto.Activity.caller_ip = src.Frames.ip;
        caller_space = Rng.int rng 8;
        thread = Rng.int rng 64;
      };
    seq = Rng.int rng 100_000;
    server_space = Rng.int rng 8;
    interface_id = Int32.of_int (Rng.int rng 1000);
    proc_idx = Rng.int rng 8;
    frag_idx;
    frag_count;
    data_len;
    checksum = 0;
  }

let frame rng timing ~payload_len =
  let payload = random_bytes rng payload_len in
  Frames.build timing ~src ~dst
    ~hdr:(random_hdr rng ~frag_idx:0 ~frag_count:1 ~data_len:payload_len)
    ~payload ~payload_pos:0 ~payload_len

(* A multi-fragment result: one logical payload split across frames that
   share activity and sequence number — the reassembly stage's food. *)
let fragment_set rng timing ~frag_count ~frag_len =
  let payload = random_bytes rng (frag_count * frag_len) in
  let base = random_hdr rng ~frag_idx:0 ~frag_count ~data_len:frag_len in
  let base = { base with Proto.ptype = Proto.Result } in
  List.init frag_count (fun i ->
      Frames.build timing ~src ~dst
        ~hdr:{ base with Proto.frag_idx = i }
        ~payload ~payload_pos:(i * frag_len) ~payload_len:frag_len)

let bare_udp rng ~checksum ~payload_len =
  let payload = random_bytes rng payload_len in
  let w = W.create (Net.Udp.header_size + payload_len) in
  Net.Udp.encode w ~src:src.Frames.ip ~dst:dst.Frames.ip ~src_port:(1 + Rng.int rng 0xfffe)
    ~dst_port:(1 + Rng.int rng 0xfffe) ~checksum
    ~payload:(fun w -> W.bytes w payload)
    ();
  W.to_bytes w

let bare_ipv4 rng ~payload_len =
  let payload = random_bytes rng payload_len in
  let w = W.create (Net.Ipv4.header_size + payload_len) in
  Net.Ipv4.encode w
    {
      Net.Ipv4.src = src.Frames.ip;
      dst = dst.Frames.ip;
      protocol = (if Rng.int rng 2 = 0 then Net.Ipv4.protocol_udp else Rng.int rng 256);
      ttl = 1 + Rng.int rng 255;
      ident = Rng.int rng 0x10000;
      payload_len;
    };
  W.bytes w payload;
  W.to_bytes w

let bare_ethernet rng ~payload_len =
  let payload = random_bytes rng payload_len in
  let w = W.create (Net.Ethernet.header_size + payload_len) in
  let ethertype =
    match Rng.int rng 3 with
    | 0 -> Net.Ethernet.ethertype_ipv4
    | 1 -> Net.Ethernet.ethertype_firefly_rpc
    | _ -> Rng.int rng 0x10000
  in
  Net.Ethernet.encode w
    { Net.Ethernet.dst = Net.Mac.of_station (Rng.int rng 100);
      src = Net.Mac.of_station (Rng.int rng 100);
      ethertype };
  W.bytes w payload;
  W.to_bytes w

let bare_rpc_header rng ~payload_len =
  let payload = random_bytes rng payload_len in
  let w = W.create (Proto.size + payload_len) in
  let count = 1 + Rng.int rng 4 in
  Proto.encode w (random_hdr rng ~frag_idx:(Rng.int rng count) ~frag_count:count ~data_len:payload_len);
  W.bytes w payload;
  W.to_bytes w

let generate ~seed =
  let rng = Rng.create ~seed:(seed lxor 0x5eed) in
  let payload_sizes = [ 0; 1; 17; 1 + Rng.int rng 400; 1440 ] in
  let frames =
    List.concat_map
      (fun (_, timing) -> List.map (fun n -> frame rng timing ~payload_len:n) payload_sizes)
      all_timings
  in
  let fragment_sets =
    fragment_set rng timing_udp ~frag_count:3 ~frag_len:(1 + Rng.int rng 300)
    @ fragment_set rng timing_udp_nocks ~frag_count:2 ~frag_len:1440
    @ fragment_set rng timing_raw ~frag_count:4 ~frag_len:(1 + Rng.int rng 200)
  in
  let bare =
    [
      bare_udp rng ~checksum:true ~payload_len:0;
      bare_udp rng ~checksum:true ~payload_len:(Rng.int rng 200);
      bare_udp rng ~checksum:false ~payload_len:(Rng.int rng 200);
      bare_udp rng ~checksum:true ~payload_len:1440;
      bare_ipv4 rng ~payload_len:0;
      bare_ipv4 rng ~payload_len:(Rng.int rng 100);
      bare_ipv4 rng ~payload_len:64;
      bare_ethernet rng ~payload_len:0;
      bare_ethernet rng ~payload_len:(Rng.int rng 100);
      bare_rpc_header rng ~payload_len:0;
      bare_rpc_header rng ~payload_len:(Rng.int rng 100);
      bare_rpc_header rng ~payload_len:200;
    ]
  in
  let noise = List.init 4 (fun i -> random_bytes rng (i * 37)) in
  frames @ fragment_sets @ bare @ noise
