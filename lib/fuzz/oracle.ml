module R = Wire.Bytebuf.Reader
module V = Wire.Bytebuf.View
module W = Wire.Bytebuf.Writer
module Proto = Rpc.Proto
module Frames = Rpc.Frames

(* Three properties, checked on every input at every layer:

   1. Totality — no exception escapes a decoder; malformed input means
      [Error], nothing else.
   2. Accept implies re-encode round-trips — a header the decoder
      accepts, re-encoded by the matching encoder, must decode again to
      the identical header (the decoders are lossy about don't-care
      bits, so the round-trip is semantic, not byte-for-byte — except
      Ethernet, whose codec is lossless and is held to the exact bytes).
   3. The zero-copy path is the copying path — decoding through
      [Reader.of_view] over a window of a larger buffer must agree
      byte-identically (including the [Error] strings) with
      [Reader.of_bytes] over a private copy. *)

type kind =
  | Exception_escaped of string
  | Roundtrip_broken of string
  | Differential of string

type failure = { stage : string; kind : kind }

let kind_tag = function
  | Exception_escaped _ -> "exception"
  | Roundtrip_broken _ -> "roundtrip"
  | Differential _ -> "differential"

let kind_message = function
  | Exception_escaped m | Roundtrip_broken m | Differential m -> m

(* Failure identity for dedup and shrinking: the stage and the property
   that broke, not the message — messages carry input-size detail that
   legitimately changes as a reproducer shrinks. *)
let key f = f.stage ^ "/" ^ kind_tag f.kind

let to_string f = Printf.sprintf "[%s] %s: %s" f.stage (kind_tag f.kind) (kind_message f.kind)

let src_ip = Corpus.src.Frames.ip
let dst_ip = Corpus.dst.Frames.ip

(* The view path embeds the input mid-buffer, junk on both sides, so an
   absolute-offset bug in any decoder shows up as a differential. *)
let embed_pad = 5

let embed input =
  let b = Bytes.make (Bytes.length input + (2 * embed_pad)) '\xa5' in
  Bytes.blit input 0 b embed_pad (Bytes.length input);
  V.of_bytes ~pos:embed_pad ~len:(Bytes.length input) b

let attempt f = try Ok (f ()) with exn -> Error (Printexc.to_string exn)

(* Run [decode] over both reader paths; fail on an escaped exception or
   any disagreement; hand an agreed [Ok] to [accepted]. *)
let stage_result ~stage ~decode ~agree ~accepted input =
  match
    ( attempt (fun () -> decode (R.of_bytes (Bytes.copy input))),
      attempt (fun () -> decode (R.of_view (embed input))) )
  with
  | Error exn, _ | _, Error exn -> Some { stage; kind = Exception_escaped exn }
  | Ok (Ok a), Ok (Ok b) ->
    if not (agree a b) then
      Some { stage; kind = Differential "of_bytes and of_view accept different values" }
    else accepted a
  | Ok (Error ea), Ok (Error eb) ->
    if String.equal ea eb then None
    else
      Some
        {
          stage;
          kind =
            Differential
              (Printf.sprintf "of_bytes rejects with %S, of_view with %S" ea eb);
        }
  | Ok (Ok _), Ok (Error e) ->
    Some { stage; kind = Differential ("of_bytes accepts, of_view rejects: " ^ e) }
  | Ok (Error e), Ok (Ok _) ->
    Some { stage; kind = Differential ("of_view accepts, of_bytes rejects: " ^ e) }

let roundtrip ~stage ~encode ~decode ~equal h =
  match attempt (fun () -> encode h) with
  | Error exn ->
    Some { stage; kind = Roundtrip_broken ("re-encode raised " ^ exn) }
  | Ok bytes -> (
    match attempt (fun () -> decode (R.of_bytes bytes)) with
    | Error exn -> Some { stage; kind = Roundtrip_broken ("decode of re-encode raised " ^ exn) }
    | Ok (Error e) -> Some { stage; kind = Roundtrip_broken ("re-encode rejected: " ^ e) }
    | Ok (Ok h') ->
      if equal h h' then None
      else Some { stage; kind = Roundtrip_broken "re-encoded header decodes differently" })

(* {1 Per-layer stages} *)

let ethernet_stage input =
  stage_result ~stage:"ethernet" ~decode:Net.Ethernet.decode ~agree:( = ) input
    ~accepted:(fun h ->
      (* The Ethernet codec is lossless: accept means the first 14 bytes
         ARE the re-encoding. *)
      let w = W.create Net.Ethernet.header_size in
      Net.Ethernet.encode w h;
      if Bytes.equal (W.to_bytes w) (Bytes.sub input 0 Net.Ethernet.header_size) then None
      else
        Some { stage = "ethernet"; kind = Roundtrip_broken "re-encode differs from input bytes" })

let ipv4_stage input =
  stage_result ~stage:"ipv4" ~decode:Net.Ipv4.decode ~agree:( = ) input
    ~accepted:
      (roundtrip ~stage:"ipv4"
         ~encode:(fun h ->
           let w = W.create Net.Ipv4.header_size in
           Net.Ipv4.encode w h;
           W.to_bytes w)
         ~decode:Net.Ipv4.decode ~equal:( = ))

let udp_agree (h1, p1) (h2, p2) = h1 = h2 && Bytes.equal (V.to_bytes p1) (V.to_bytes p2)

let udp_stage input =
  stage_result ~stage:"udp"
    ~decode:(fun r -> Net.Udp.decode r ~src:src_ip ~dst:dst_ip)
    ~agree:udp_agree input
    ~accepted:(fun (h, payload) ->
      (* Re-encode the canonical datagram: the accepted header's length
         bounds the payload, trailing bytes beyond it are not part of
         the datagram.  Compare ports, length and payload — the stored
         checksum has two valid encodings of zero (RFC 768), so the
         field itself is not compared. *)
      let body = V.to_bytes payload in
      roundtrip ~stage:"udp"
        ~encode:(fun () ->
          let w = W.create (Net.Udp.header_size + Bytes.length body) in
          Net.Udp.encode w ~src:src_ip ~dst:dst_ip ~src_port:h.Net.Udp.src_port
            ~dst_port:h.Net.Udp.dst_port ~checksum:(h.Net.Udp.checksum <> 0)
            ~payload:(fun w -> W.bytes w body)
            ();
          W.to_bytes w)
        ~decode:(fun r -> Net.Udp.decode r ~src:src_ip ~dst:dst_ip)
        ~equal:(fun () (h', p') ->
          h'.Net.Udp.src_port = h.Net.Udp.src_port
          && h'.Net.Udp.dst_port = h.Net.Udp.dst_port
          && h'.Net.Udp.length = h.Net.Udp.length
          && V.equal_bytes p' body)
        ())

let rpc_header_stage input =
  stage_result ~stage:"rpc-header" ~decode:Proto.decode ~agree:( = ) input
    ~accepted:
      (roundtrip ~stage:"rpc-header"
         ~encode:(fun h ->
           let w = W.create Proto.size in
           Proto.encode w h;
           W.to_bytes w)
         ~decode:Proto.decode ~equal:( = ))

(* {1 The full stack, under every regime} *)

let parsed_agree (a : Frames.parsed) (b : Frames.parsed) =
  a.Frames.p_src = b.Frames.p_src
  && a.Frames.p_hdr = b.Frames.p_hdr
  && Bytes.equal (V.to_bytes a.Frames.p_payload) (V.to_bytes b.Frames.p_payload)

let frame_stage ~label ~timing input =
  let stage = "frame[" ^ label ^ "]" in
  match
    ( attempt (fun () -> Frames.parse timing (Bytes.copy input)),
      attempt (fun () -> Frames.parse_view timing (embed input)) )
  with
  | Error exn, _ | _, Error exn -> (Some { stage; kind = Exception_escaped exn }, None)
  | Ok (Ok a), Ok (Ok b) ->
    if parsed_agree a b then (None, Some a)
    else (Some { stage; kind = Differential "parse and parse_view disagree" }, None)
  | Ok (Error ea), Ok (Error eb) ->
    if String.equal ea eb then (None, None)
    else
      ( Some
          {
            stage;
            kind =
              Differential (Printf.sprintf "parse rejects with %S, parse_view with %S" ea eb);
          },
        None )
  | Ok (Ok _), Ok (Error e) ->
    (Some { stage; kind = Differential ("parse accepts, parse_view rejects: " ^ e) }, None)
  | Ok (Error e), Ok (Ok _) ->
    (Some { stage; kind = Differential ("parse_view accepts, parse rejects: " ^ e) }, None)

(* {1 Fragment reassembly} *)

module Reasm = struct
  (* A caller-side collector in miniature, enforcing the hardened
     runtime's rules: fragments must share activity, sequence number and
     fragment count; the completion scan checks every index is present —
     exactly where the pre-hardening runtime raised [Not_found]. *)
  type t = {
    mutable current : (Proto.Activity.t * int * int) option;
    frags : (int, Bytes.t) Hashtbl.t;
  }

  let create () = { current = None; frags = Hashtbl.create 8 }

  let feed t (hdr : Proto.header) payload =
    if hdr.Proto.frag_count <= 1 then Ok ()
    else begin
      let k = (hdr.Proto.activity, hdr.Proto.seq, hdr.Proto.frag_count) in
      (match t.current with
      | Some k' when k' = k -> ()
      | _ ->
        t.current <- Some k;
        Hashtbl.reset t.frags);
      if hdr.Proto.frag_idx < 0 || hdr.Proto.frag_idx >= hdr.Proto.frag_count then
        Ok () (* the parser already rejects these; drop defensively *)
      else begin
        Hashtbl.replace t.frags hdr.Proto.frag_idx (V.to_bytes payload);
        if Hashtbl.length t.frags < hdr.Proto.frag_count then Ok ()
        else begin
          let buf = Buffer.create 256 in
          let complete = ref true in
          for i = 0 to hdr.Proto.frag_count - 1 do
            match Hashtbl.find_opt t.frags i with
            | Some b -> Buffer.add_bytes buf b
            | None -> complete := false
          done;
          t.current <- None;
          Hashtbl.reset t.frags;
          if !complete then Ok ()
          else Error "reassembly completed with a missing fragment index"
        end
      end
    end
end

let reassembly_stage reasm (p : Frames.parsed) =
  match attempt (fun () -> Reasm.feed reasm p.Frames.p_hdr p.Frames.p_payload) with
  | Error exn -> Some { stage = "reassembly"; kind = Exception_escaped exn }
  | Ok (Error e) -> Some { stage = "reassembly"; kind = Roundtrip_broken e }
  | Ok (Ok ()) -> None

(* {1 The oracle} *)

type outcome = { failure : failure option; full_stack_ok : bool }

let first_failure checks = List.find_map (fun c -> c ()) checks

let run ?reasm input =
  let full_stack_ok = ref false in
  let frame_check (label, timing) () =
    let f, parsed = frame_stage ~label ~timing input in
    if Option.is_some parsed then full_stack_ok := true;
    match (f, parsed, reasm) with
    | None, Some p, Some rs -> reassembly_stage rs p
    | _ -> f
  in
  let failure =
    first_failure
      ([
         (fun () -> ethernet_stage input);
         (fun () -> ipv4_stage input);
         (fun () -> udp_stage input);
         (fun () -> rpc_header_stage input);
       ]
      @ List.map frame_check Corpus.all_timings)
  in
  { failure; full_stack_ok = !full_stack_ok }
