module Rng = Sim.Rng

(* Structure-aware mutation: as well as blind bit flips and truncation,
   the mutator knows where the length, version/IHL and fragment-count
   fields sit in every layout the corpus emits, and skews exactly those
   — the mutations that historically break wire decoders. *)

(* 16-bit fields worth skewing, as absolute offsets in each layout:
   Ethernet ethertype; IPv4 total-length / fragment / checksum; UDP
   length / checksum; RPC frag-idx / frag-count / data-len / checksum —
   for a full UDP frame (RPC header at 42), a raw-Ethernet frame (RPC at
   14), a bare datagram (UDP at 0) and a bare header (IPv4 or RPC at 0). *)
let interesting_u16_offsets =
  [
    12; 16; 20; 24; 34; 38; 40; 66; 68; 70; 72 (* full UDP frame *);
    38 + 2; 40 + 2; 42; 44 (* raw frame: RPC fields at 14 + {24,26,28,30} *);
    4; 6 (* bare UDP length/checksum *);
    2; 10 (* bare IPv4 total-length/checksum *);
    26; 28 (* bare RPC frag-count/data-len *);
  ]

let interesting_u16_values len =
  [ 0; 1; 7; 8; 9; 0x45; 0x4500; 0x4600; 0x5500; 0x8000; 0xffff;
    max 0 (len - 1); len; (len + 1) land 0xffff ]

let interesting_bytes = [ 0x00; 0x01; 0x44; 0x45; 0x46; 0x55; 0x7f; 0x80; 0xff ]

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

let max_len = 4096

(* One mutation of [b], drawing randomness only from [rng] and splice
   material only from [corpus] — fully deterministic under a seed. *)
let apply rng ~corpus b =
  let n = Bytes.length b in
  match Rng.int rng 8 with
  | 0 when n > 0 ->
    (* single bit flip *)
    let b = Bytes.copy b in
    let i = Rng.int rng n in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    b
  | 1 when n > 0 ->
    (* interesting byte at a random offset *)
    let b = Bytes.copy b in
    Bytes.set b (Rng.int rng n) (Char.chr (pick rng interesting_bytes));
    b
  | 2 when n > 0 ->
    (* truncate at a random offset *)
    Bytes.sub b 0 (Rng.int rng n)
  | 3 when n < max_len ->
    (* extend with random bytes *)
    let extra = 1 + Rng.int rng 32 in
    let out = Bytes.create (n + extra) in
    Bytes.blit b 0 out 0 n;
    for i = n to n + extra - 1 do
      Bytes.set out i (Char.chr (Rng.int rng 256))
    done;
    out
  | 4 when n >= 2 ->
    (* skew a known 16-bit field *)
    let offsets = List.filter (fun o -> o + 2 <= n) interesting_u16_offsets in
    let b = Bytes.copy b in
    let off = if offsets = [] then 0 else pick rng offsets in
    Bytes.set_uint16_be b off (pick rng (interesting_u16_values n));
    b
  | 5 when n > 0 ->
    (* zero a run *)
    let b = Bytes.copy b in
    let i = Rng.int rng n in
    let len = min (1 + Rng.int rng 8) (n - i) in
    Bytes.fill b i len '\000';
    b
  | 6 ->
    (* splice: another corpus entry's head onto this input's tail *)
    let other = corpus.(Rng.int rng (Array.length corpus)) in
    let cut = Rng.int rng (1 + min n (Bytes.length other)) in
    let out = Bytes.create n in
    Bytes.blit b 0 out 0 n;
    Bytes.blit other 0 out 0 cut;
    out
  | _ when n >= 2 ->
    (* overwrite a random u16 anywhere — lengths hide in odd places *)
    let b = Bytes.copy b in
    Bytes.set_uint16_be b (Rng.int rng (n - 1)) (pick rng (interesting_u16_values n));
    b
  | _ -> Bytes.cat b (Bytes.make 1 '\x00')
