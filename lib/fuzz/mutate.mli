(** Deterministic structure-aware mutation of wire inputs.

    Blind mutations (bit flips, truncation, extension, zero runs) plus
    mutations that know the wire formats: skewing the length, version
    and fragment-count fields at their known offsets in every layout the
    corpus produces, and splicing one input's header onto another's
    body.  All randomness comes from the caller's {!Sim.Rng}, so a fuzz
    run is a pure function of its seed. *)

val apply : Sim.Rng.t -> corpus:Stdlib.Bytes.t array -> Stdlib.Bytes.t -> Stdlib.Bytes.t
(** One mutation.  Never grows an input past an internal cap (4 KiB), so
    stacked mutations stay bounded. *)
