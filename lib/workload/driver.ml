module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine

type proc = Null | Max_result | Max_arg | Get_data of int

type outcome = {
  threads : int;
  calls : int;
  elapsed : Time.span;
  rpcs_per_sec : float;
  megabits_per_sec : float;
  caller_busy_cpus : float;
  server_busy_cpus : float;
  retransmissions : int;
  mean_latency : Time.span;
  latencies : Time.span array;
  sorted_latencies : Time.span array Par.Once.t;
}

(* A domain-safe once cell, not [lazy]: the memoized experiment
   outcomes are shared across worker domains when tables regenerate in
   parallel, and racing [Lazy.force] calls are undefined. *)
let sort_lazily latencies =
  Par.Once.create (fun () ->
      let sorted = Array.copy latencies in
      Array.sort Time.span_compare sorted;
      sorted)

let percentile o p =
  let n = Array.length o.latencies in
  if n = 0 then invalid_arg "Driver.percentile: no samples";
  if p < 0. || p > 1. then invalid_arg "Driver.percentile: p outside [0,1]";
  (* Sorted once per outcome; the latency-tail experiments query four
     percentiles per row.  Nearest-rank definition — the smallest sample
     whose cumulative count reaches p*n — matching what
     [Obs.Metrics.Histogram.percentile] computes on its buckets, so the
     two views of one latency population agree. *)
  let sorted = Par.Once.force o.sorted_latencies in
  let rank = int_of_float (Float.ceil (Float.of_int n *. p)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let payload_bytes = function
  | Null -> 0
  | Max_result | Max_arg -> Test_interface.buffer_bytes
  | Get_data n -> n

let proc_idx = function
  | Null -> Test_interface.null_idx
  | Max_result -> Test_interface.max_result_idx
  | Max_arg -> Test_interface.max_arg_idx
  | Get_data _ -> Test_interface.get_data_idx

let args_of = function
  | Null -> []
  | Max_result -> [ Rpc.Marshal.V_bytes Bytes.empty ]
  | Max_arg -> [ Rpc.Marshal.V_bytes (Test_interface.pattern Test_interface.buffer_bytes) ]
  | Get_data n -> [ Rpc.Marshal.V_int (Int32.of_int n); Rpc.Marshal.V_bytes Bytes.empty ]

let validate_result proc outs =
  match proc, outs with
  | Null, [] | Max_arg, [] -> ()
  | Max_result, [ Rpc.Marshal.V_bytes b ] ->
    if Bytes.length b <> Test_interface.buffer_bytes then
      failwith "Driver: MaxResult returned wrong size"
  | Get_data n, [ Rpc.Marshal.V_bytes b ] ->
    if Bytes.length b <> n then failwith "Driver: GetData returned wrong size";
    if not (Bytes.equal b (Test_interface.pattern n)) then
      failwith "Driver: GetData returned corrupted data"
  | _ -> failwith "Driver: unexpected result shape"

let caller_thread (w : World.t) binding proc remaining gate finished samples ~total_threads () =
  let mach = w.World.caller in
  let eng = w.World.eng in
  let timing = Machine.timing mach in
  Cpu_set.with_cpu (Machine.cpus mach) (fun ctx ->
      let client = Rpc.Runtime.new_client w.World.caller_rt in
      let continue_ = ref true in
      while !continue_ do
        if !remaining > 0 then begin
          decr remaining;
          Cpu_set.charge ctx ~cat:"runtime" ~label:"Calling program (loop)"
            (Hw.Timing.caller_loop timing);
          let t0 = Engine.now eng in
          let outs =
            Rpc.Runtime.call binding client ctx ~proc_idx:(proc_idx proc) ~args:(args_of proc)
          in
          samples := Time.diff (Engine.now eng) t0 :: !samples;
          validate_result proc outs
        end
        else continue_ := false
      done);
  incr finished;
  if !finished = total_threads then Sim.Gate.open_ gate

let run (w : World.t) ?options ?transport ~threads ~calls ~proc () =
  if threads < 1 then invalid_arg "Driver.run: threads must be >= 1";
  let binding = World.test_binding w ?options ?transport () in
  let gate = Sim.Gate.create w.World.eng in
  let remaining = ref calls in
  let finished = ref 0 in
  let samples = ref [] in
  let started_at = Engine.now w.World.eng in
  for _ = 1 to threads do
    Machine.spawn_thread w.World.caller ~name:"rpc-caller"
      (caller_thread w binding proc remaining gate finished samples ~total_threads:threads)
  done;
  World.run_until_quiet w gate;
  let finished_at = Engine.now w.World.eng in
  let elapsed = Time.diff finished_at started_at in
  let secs = Time.to_sec elapsed in
  let bits = float_of_int (calls * payload_bytes proc * 8) in
  let latencies = Array.of_list (List.rev !samples) in
  let hist =
    Obs.Metrics.Registry.histogram w.World.obs.Obs.Ctx.metrics ~site:"caller"
      ~name:"rpc.latency_us"
  in
  Array.iter (Obs.Metrics.Histogram.observe_span hist) latencies;
  {
    threads;
    calls;
    elapsed;
    rpcs_per_sec = (if secs > 0. then float_of_int calls /. secs else 0.);
    megabits_per_sec = (if secs > 0. then bits /. secs /. 1e6 else 0.);
    caller_busy_cpus = Machine.average_busy_cpus w.World.caller ~upto:finished_at;
    server_busy_cpus = Machine.average_busy_cpus w.World.server ~upto:finished_at;
    retransmissions = Rpc.Runtime.retransmissions w.World.caller_rt;
    mean_latency =
      (if calls > 0 then
         Time.us_f (Time.to_us elapsed *. float_of_int threads /. float_of_int calls)
       else Time.zero_span);
    latencies;
    sorted_latencies = sort_lazily latencies;
  }

(* One thread, warmed up, then [calls] sequential calls with the engine
   trace (and a fresh journal window) covering exactly the timed calls.
   Shared by [firefly trace] and the Perfetto-export test. *)
let run_traced (w : World.t) ?options ?transport ?(warmup = 2) ~calls ~proc () =
  let binding = World.test_binding w ?options ?transport () in
  let gate = Sim.Gate.create w.World.eng in
  let latencies = ref [] in
  Machine.spawn_thread w.World.caller ~name:"traced-call" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Rpc.Runtime.new_client w.World.caller_rt in
          let once () =
            ignore
              (Rpc.Runtime.call binding client ctx ~proc_idx:(proc_idx proc) ~args:(args_of proc))
          in
          (* Warm the path: binding established, server threads parked. *)
          for _ = 1 to warmup do
            once ()
          done;
          Obs.Journal.clear w.World.obs.Obs.Ctx.journal;
          let tr = Engine.trace w.World.eng in
          Sim.Trace.clear tr;
          Sim.Trace.set_enabled tr true;
          for _ = 1 to calls do
            let t0 = Engine.now w.World.eng in
            once ();
            latencies := Time.diff (Engine.now w.World.eng) t0 :: !latencies
          done;
          Sim.Trace.set_enabled tr false);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  List.rev !latencies

(* Like [run_traced], but returns the measured window of each timed
   call alongside the trace: the i-th timed call is call id i (the
   trace's call-id allocator restarts at the [Sim.Trace.clear], and
   only traced calls allocate), so the windows line up with the span
   dump for Obs.Attrib. *)
let run_breakdown (w : World.t) ?options ?transport ?(warmup = 2) ~calls ~proc () =
  let binding = World.test_binding w ?options ?transport () in
  let gate = Sim.Gate.create w.World.eng in
  let windows = ref [] in
  Machine.spawn_thread w.World.caller ~name:"breakdown-call" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Rpc.Runtime.new_client w.World.caller_rt in
          let once () =
            ignore
              (Rpc.Runtime.call binding client ctx ~proc_idx:(proc_idx proc) ~args:(args_of proc))
          in
          for _ = 1 to warmup do
            once ()
          done;
          Obs.Journal.clear w.World.obs.Obs.Ctx.journal;
          let tr = Engine.trace w.World.eng in
          Sim.Trace.clear tr;
          Sim.Trace.set_enabled tr true;
          for i = 0 to calls - 1 do
            let t0 = Engine.now w.World.eng in
            once ();
            windows := (i, t0, Engine.now w.World.eng) :: !windows
          done;
          Sim.Trace.set_enabled tr false);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  List.rev !windows

let measure_single_call (w : World.t) ?options ?transport ~proc () =
  let binding = World.test_binding w ?options ?transport () in
  let gate = Sim.Gate.create w.World.eng in
  let latency = ref Time.zero_span in
  Machine.spawn_thread w.World.caller ~name:"single-call" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Rpc.Runtime.new_client w.World.caller_rt in
          let once () =
            ignore (Rpc.Runtime.call binding client ctx ~proc_idx:(proc_idx proc) ~args:(args_of proc))
          in
          (* Warm the path: binding established, server threads parked. *)
          once ();
          once ();
          let t0 = Engine.now w.World.eng in
          once ();
          latency := Time.diff (Engine.now w.World.eng) t0);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  !latency
