(** The measurement driver: the multithreaded caller of §2.1.

    [k] caller threads in one user address space share a fixed budget of
    calls to one Test procedure on the remote server; the run reports
    elapsed virtual time, call rate, payload throughput and the CPU draw
    of both machines — the quantities of Tables I, X and XI. *)

type proc = Null | Max_result | Max_arg | Get_data of int

type outcome = {
  threads : int;
  calls : int;
  elapsed : Sim.Time.span;
  rpcs_per_sec : float;
  megabits_per_sec : float;  (** payload bits transferred per second *)
  caller_busy_cpus : float;  (** time-averaged busy CPUs, caller machine *)
  server_busy_cpus : float;
  retransmissions : int;
  mean_latency : Sim.Time.span;  (** elapsed × threads / calls *)
  latencies : Sim.Time.span array;  (** per-call, in completion order *)
  sorted_latencies : Sim.Time.span array Par.Once.t;
      (** [latencies] sorted ascending, computed at most once (domain-
          safely) — the backing store for {!percentile} queries *)
}

val percentile : outcome -> float -> Sim.Time.span
(** [percentile o 0.99] — nearest-rank percentile of the per-call
    latencies.  The samples are sorted once per outcome (lazily), not
    per query.  @raise Invalid_argument on an empty outcome or p
    outside [0, 1]. *)

val payload_bytes : proc -> int

val run :
  World.t ->
  ?options:Rpc.Runtime.call_options ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  threads:int ->
  calls:int ->
  proc:proc ->
  unit ->
  outcome
(** Runs the workload to completion on the world's engine (which must
    not have been run to a later time already). *)

val run_traced :
  World.t ->
  ?options:Rpc.Runtime.call_options ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  ?warmup:int ->
  calls:int ->
  proc:proc ->
  unit ->
  Sim.Time.span list
(** One caller thread makes [warmup] (default 2) untimed calls, then
    [calls] sequential timed calls with the engine's span trace enabled
    and the world's event journal cleared at the window start — so the
    trace and journal cover exactly the timed calls.  Returns the
    per-call latencies; read the spans from [Sim.Engine.trace] and the
    journal from the world's {!Obs.Ctx.t} afterwards.  Drives
    [firefly trace] and the Perfetto exporter. *)

val run_breakdown :
  World.t ->
  ?options:Rpc.Runtime.call_options ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  ?warmup:int ->
  calls:int ->
  proc:proc ->
  unit ->
  (int * Sim.Time.t * Sim.Time.t) list
(** Like {!run_traced}, but returns each timed call's measured window
    [(call_id, start, stop)].  Call ids are [0 .. calls-1] in order —
    exactly the ids the trace's spans carry — ready to feed
    [Obs.Attrib.attribute].  Read the spans from [Sim.Engine.trace]
    afterwards. *)

val measure_single_call :
  World.t ->
  ?options:Rpc.Runtime.call_options ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  proc:proc ->
  unit ->
  Sim.Time.span
(** One warmed-up call's latency: makes a few calls to populate the
    fast path, then times one. *)
