(** Construction of the paper's measurement setup: two Fireflies on a
    private Ethernet (§2.1), a binder, one user address space on each
    machine, and the Test interface exported from the server. *)

type t = {
  eng : Sim.Engine.t;
  link : Hw.Ether_link.t;
  binder : Rpc.Binder.t;
  caller : Nub.Machine.t;
  server : Nub.Machine.t;
  caller_node : Rpc.Node.t;
  server_node : Rpc.Node.t;
  caller_rt : Rpc.Runtime.t;
  server_rt : Rpc.Runtime.t;
  obs : Obs.Ctx.t;  (** shared by both machines and the link *)
}

val create :
  ?caller_config:Hw.Config.t ->
  ?server_config:Hw.Config.t ->
  ?seed:int ->
  ?tie_break:[ `Fifo | `Random ] ->
  ?workers:int ->
  ?idle_load:bool ->
  ?export_test:bool ->
  ?auth:Rpc.Secure.key ->
  ?obs:Obs.Ctx.t ->
  unit ->
  t
(** [tie_break] (default [`Fifo]) is passed to {!Sim.Engine.create} —
    the simulation-testing harness uses [`Random] to explore
    same-instant event orderings.  Both configs default to
    {!Hw.Config.default}; [workers] (default 8)
    server threads serve the Test interface; [idle_load] (default true)
    starts the background threads that draw ~0.15 CPUs.  [export_test]
    (default true) controls whether the Test interface is exported —
    worker threads serve their whole address space, so tests that need
    an exactly-sized worker pool export their own interface only.
    [auth] exports the Test interface under a shared key (§7 secured
    calls); importers must present the same key. *)

val test_binding :
  t ->
  ?options:Rpc.Runtime.call_options ->
  ?auth:Rpc.Secure.key ->
  ?transport:[ `Auto | `Local | `Udp | `Decnet ] ->
  unit ->
  Rpc.Runtime.binding
(** Imports the Test interface into the caller's address space; [auth]
    must match the key the world was created with, if any.  [`Local]
    additionally exports the Test interface from the caller's own
    runtime (once) and binds it over shared memory — the paper's
    RPC-on-one-machine configuration. *)

val add_machine :
  t -> name:string -> config:Hw.Config.t -> station:int -> ip:string -> Nub.Machine.t * Rpc.Node.t * Rpc.Runtime.t
(** Attaches an extra machine (space 1) to the same Ethernet — used by
    multi-client contention scenarios. *)

val run_until_quiet : ?limit:Sim.Time.span -> t -> Sim.Gate.t -> unit
(** Runs the simulation until the gate opens (or [limit], default 600
    simulated seconds, as a hang backstop). *)
