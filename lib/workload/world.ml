module Engine = Sim.Engine
module Time = Sim.Time
module Config = Hw.Config
module Machine = Nub.Machine

type t = {
  eng : Engine.t;
  link : Hw.Ether_link.t;
  binder : Rpc.Binder.t;
  caller : Machine.t;
  server : Machine.t;
  caller_node : Rpc.Node.t;
  server_node : Rpc.Node.t;
  caller_rt : Rpc.Runtime.t;
  server_rt : Rpc.Runtime.t;
  obs : Obs.Ctx.t;
}

let create ?(caller_config = Config.default) ?(server_config = Config.default) ?(seed = 42)
    ?(tie_break = `Fifo) ?(workers = 8) ?(idle_load = true) ?(export_test = true) ?auth ?obs ()
    =
  let obs = match obs with Some o -> o | None -> Obs.Ctx.create () in
  let eng = Engine.create ~seed ~tie_break () in
  let link = Hw.Ether_link.create ~obs eng ~mbps:caller_config.Config.ethernet_mbps in
  let caller =
    Machine.create ~obs eng ~name:"caller" ~config:caller_config ~link ~station:1
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.1") ()
  in
  let server =
    Machine.create ~obs eng ~name:"server" ~config:server_config ~link ~station:2
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.2") ()
  in
  let caller_node = Rpc.Node.create caller in
  let server_node = Rpc.Node.create server in
  let caller_rt = Rpc.Runtime.create caller_node ~space:1 in
  let server_rt = Rpc.Runtime.create server_node ~space:1 in
  let binder = Rpc.Binder.create () in
  if export_test then
    Rpc.Binder.export ?auth binder server_rt Test_interface.interface
      ~impls:(Test_interface.impls (Machine.timing server))
      ~workers;
  if idle_load then begin
    Machine.start_idle_load caller;
    Machine.start_idle_load server
  end;
  { eng; link; binder; caller; server; caller_node; server_node; caller_rt; server_rt; obs }

let test_binding t ?options ?auth ?(transport = `Auto) () =
  match transport with
  | `Local ->
    (* The paper's RPC-on-one-machine row (Table I): the Test interface
       served from the caller's own address space, so the binder's
       same-machine rule picks the shared-memory transport.  Exported
       directly on the caller runtime — the binder's (name, version)
       slot already belongs to the remote server. *)
    if not (Rpc.Runtime.is_exported t.caller_rt Test_interface.interface) then
      Rpc.Runtime.export ?auth t.caller_rt Test_interface.interface
        ~impls:(Test_interface.impls (Machine.timing t.caller))
        ~workers:2;
    let options =
      match options with
      | Some o -> o
      | None -> Rpc.Runtime.default_options t.caller_rt
    in
    Rpc.Runtime.bind_local t.caller_rt ~server:t.caller_rt Test_interface.interface ~options
  | (`Auto | `Udp | `Decnet) as transport ->
    Rpc.Binder.import t.binder t.caller_rt ~name:"Test" ~version:1 ?options ?auth ~transport ()

let add_machine t ~name ~config ~station ~ip =
  let m =
    Machine.create ~obs:t.obs t.eng ~name ~config ~link:t.link ~station
      ~ip:(Net.Ipv4.Addr.of_string ip) ()
  in
  let node = Rpc.Node.create m in
  let rt = Rpc.Runtime.create node ~space:1 in
  (m, node, rt)

let run_until_quiet ?(limit = Time.sec 600) t gate =
  let stop_at = Time.add (Engine.now t.eng) limit in
  Engine.run_while t.eng (fun () ->
      (not (Sim.Gate.is_open gate)) && Time.(Engine.now t.eng < stop_at));
  if not (Sim.Gate.is_open gate) then
    failwith "World.run_until_quiet: workload did not complete within the time limit"
