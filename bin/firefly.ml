(* The firefly CLI: explore the simulated Firefly RPC system.

     firefly list                        list reproducible experiments
     firefly repro [ID...] [--quick]     regenerate paper tables
     firefly call  [options]             run an ad-hoc workload
     firefly trace [--proc P]            per-step breakdown of one call
     firefly breakdown [--check]         causal latency attribution with conservation
     firefly check [--seeds N]           seeded fault-plan exploration

   `firefly call` exposes the configuration knobs (§4.2's improvements,
   processor counts, loss injection...) so any what-if can be run from
   the shell; `firefly check` runs the deterministic simulation-testing
   harness of library `check`. *)

open Cmdliner

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* {1 Shared configuration flags} *)

type cfg_flags = {
  cpus : int;
  caller_cpus : int option;
  server_cpus : int option;
  mbps : float;
  cpu_speedup : float;
  no_checksums : bool;
  cut_through : bool;
  busy_wait : bool;
  hand_stubs : bool;
  hand_runtime : bool;
  raw_ethernet : bool;
  redesigned_header : bool;
  streaming : bool;
  no_uniproc_fix : bool;
  interrupt_code : string;
  seed : int;
}

let cfg_term =
  let open Term in
  let docs = "CONFIGURATION" in
  let flag name doc = Arg.(value & flag & info [ name ] ~docs ~doc) in
  let make cpus caller_cpus server_cpus mbps cpu_speedup no_checksums cut_through busy_wait
      hand_stubs hand_runtime raw_ethernet redesigned_header streaming no_uniproc_fix
      interrupt_code seed =
    {
      cpus;
      caller_cpus;
      server_cpus;
      mbps;
      cpu_speedup;
      no_checksums;
      cut_through;
      busy_wait;
      hand_stubs;
      hand_runtime;
      raw_ethernet;
      redesigned_header;
      streaming;
      no_uniproc_fix;
      interrupt_code;
      seed;
    }
  in
  const make
  $ Arg.(value & opt int 5 & info [ "cpus" ] ~docs ~doc:"Processors per machine (both).")
  $ Arg.(value & opt (some int) None & info [ "caller-cpus" ] ~docs ~doc:"Caller processors.")
  $ Arg.(value & opt (some int) None & info [ "server-cpus" ] ~docs ~doc:"Server processors.")
  $ Arg.(value & opt float 10. & info [ "mbps" ] ~docs ~doc:"Ethernet bit rate (Mbit/s).")
  $ Arg.(value & opt float 1. & info [ "cpu-speedup" ] ~docs ~doc:"CPU speed vs MicroVAX II.")
  $ flag "no-checksums" "Omit software UDP checksums (paper 4.2.4)."
  $ flag "cut-through" "Controller overlaps QBus and Ethernet transfers (4.2.1)."
  $ flag "busy-wait" "Threads spin for packets instead of blocking (4.2.7)."
  $ flag "hand-stubs" "RPC Exerciser hand-produced stubs (section 5)."
  $ flag "hand-runtime" "RPC runtime recoded in machine code (4.2.8)."
  $ flag "raw-ethernet" "RPC directly on Ethernet datagrams, no IP/UDP (4.2.6)."
  $ flag "redesigned-header" "Easier-to-parse RPC header (4.2.5)."
  $ flag "streaming" "Blast multi-packet results without per-fragment acks."
  $ flag "no-uniproc-fix" "Leave the section-5 uniprocessor scheduling bug in place."
  $ Arg.(
      value
      & opt (enum [ ("assembly", "assembly"); ("modula2", "modula2"); ("original", "original") ])
          "assembly"
      & info [ "interrupt-code" ] ~docs ~doc:"Interrupt routine version (Table IX).")
  $ Arg.(value & opt int 42 & info [ "seed" ] ~docs ~doc:"Simulation seed.")

let build_config flags ~cpus =
  {
    Hw.Config.default with
    Hw.Config.cpus;
    cpu_speedup = flags.cpu_speedup;
    ethernet_mbps = flags.mbps;
    udp_checksums = not flags.no_checksums;
    cut_through = flags.cut_through;
    busy_wait = flags.busy_wait;
    hand_stubs = flags.hand_stubs;
    hand_runtime = flags.hand_runtime;
    raw_ethernet = flags.raw_ethernet;
    redesigned_header = flags.redesigned_header;
    streaming_results = flags.streaming;
    uniproc_fix = not flags.no_uniproc_fix;
    interrupt_code =
      (match flags.interrupt_code with
      | "modula2" -> Hw.Config.Final_modula2
      | "original" -> Hw.Config.Original_modula2
      | _ -> Hw.Config.Assembly);
  }

let configs flags =
  let caller = build_config flags ~cpus:(Option.value flags.caller_cpus ~default:flags.cpus) in
  let server = build_config flags ~cpus:(Option.value flags.server_cpus ~default:flags.cpus) in
  (caller, server)

(* {1 firefly list} *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> say "%-14s %s" e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible experiments.") Term.(const run $ const ())

(* {1 firefly repro} *)

let jobs_term =
  Arg.(
    value
    & opt int (Par.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulations (default: the machine's recommended \
           domain count).  $(b,--jobs 1) runs the exact serial path with byte-identical \
           output.")

let repro_cmd =
  let run quick metrics jobs transport ids =
    let entries =
      match ids with
      | [] -> Experiments.Registry.all
      | ids ->
        List.map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e
            | None -> failwith (Printf.sprintf "unknown experiment %S (try `firefly list`)" id))
          ids
    in
    if jobs <= 1 then
      (* The historical serial loop, kept verbatim for --jobs 1. *)
      List.iter
        (fun e ->
          say "";
          say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
          List.iter
            (fun t -> print_string (Report.Table.render t))
            (e.Experiments.Registry.run ~transport ~quick ~metrics))
        entries
    else begin
      (* Each entry regenerates on a worker domain (every simulation
         owns its engine); rendering to strings and printing afterwards
         in registry order keeps the output identical to serial. *)
      let rendered =
        Par.Pool.map_list ~jobs
          (fun (e : Experiments.Registry.entry) ->
            String.concat ""
              (List.map Report.Table.render (e.Experiments.Registry.run ~transport ~quick ~metrics)))
          entries
      in
      List.iter2
        (fun (e : Experiments.Registry.entry) body ->
          say "";
          say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
          print_string body)
        entries rendered
    end
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced call counts.") in
  let metrics =
    Arg.(
      value
      & flag
      & info [ "metrics" ]
          ~doc:"Add measured latency-percentile columns where supported (Table I).")
  in
  let transport =
    Arg.(
      value
      & opt (enum [ ("sim", (`Auto : Experiments.Registry.transport)); ("local", `Local) ])
          `Auto
      & info [ "transport" ]
          ~doc:
            "Bind-time transport for the transport-sensitive experiments (Table I): \
             $(b,sim) (default) measures over the simulated Ethernet, $(b,local) over \
             same-machine shared memory — the paper's RPC-on-one-machine row.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v
    (Cmd.info "repro" ~doc:"Regenerate the paper's tables (all, or the given IDs).")
    Term.(const run $ quick $ metrics $ jobs_term $ transport $ ids)

(* {1 firefly call} *)

let proc_conv =
  Arg.enum
    [
      ("null", Workload.Driver.Null);
      ("maxresult", Workload.Driver.Max_result);
      ("maxarg", Workload.Driver.Max_arg);
    ]

let call_cmd =
  let run flags proc threads calls bulk loss transport metrics =
    let caller_config, server_config = configs flags in
    let proc =
      match bulk with
      | Some n -> Workload.Driver.Get_data n
      | None -> proc
    in
    match transport with
    | `Socket ->
      (* The real-UDP path: whole RPCs over a loopback kernel socket
         (the same Frames.build bytes, a real network stack), printed
         beside the simulator's calibrated latencies for the same
         procedures. *)
      if not (Realnet.Udp_socket.available ()) then
        say
          "loopback UDP sockets are unavailable in this environment: skipping the \
           real-socket run"
      else begin
        let sim_us proc =
          let w =
            Workload.World.create ~caller_config ~server_config ~seed:flags.seed
              ~idle_load:false ()
          in
          Sim.Time.to_us (Workload.Driver.measure_single_call w ~proc ())
        in
        let sim_null_us = sim_us Workload.Driver.Null in
        let sim_maxarg_us = sim_us Workload.Driver.Max_arg in
        match Realnet.Crossval.table ~calls ~sim_null_us ~sim_maxarg_us () with
        | Error e -> say "socket transport unavailable: %s — skipping" e
        | Ok t -> print_string (Report.Table.render t)
      end
    | (`Auto | `Local | `Udp | `Decnet) as transport ->
    let w =
      Workload.World.create ~caller_config ~server_config ~seed:flags.seed ()
    in
    if loss > 0. then begin
      let rng = Sim.Engine.rng w.Workload.World.eng in
      Hw.Ether_link.set_fault_injector w.Workload.World.link
        (Some
           (fun _ ->
             if Sim.Rng.bool rng ~p:loss then Hw.Ether_link.Drop else Hw.Ether_link.Deliver))
    end;
    let options =
      if loss > 0. then
        Some { Rpc.Runtime.retransmit_after = Sim.Time.ms 50; max_retries = 100; backoff = None }
      else None
    in
    let o = Workload.Driver.run w ?options ~transport ~threads ~calls ~proc () in
    say "calls:            %d x %s (%d threads)" o.Workload.Driver.calls
      (match proc with
      | Workload.Driver.Null -> "Null()"
      | Workload.Driver.Max_result -> "MaxResult(b)"
      | Workload.Driver.Max_arg -> "MaxArg(b)"
      | Workload.Driver.Get_data n -> Printf.sprintf "GetData(%d)" n)
      o.Workload.Driver.threads;
    say "elapsed:          %s of simulated time" (Sim.Time.span_to_string o.Workload.Driver.elapsed);
    say "rate:             %.0f RPC/s" o.Workload.Driver.rpcs_per_sec;
    say "mean latency:     %s" (Sim.Time.span_to_string o.Workload.Driver.mean_latency);
    say "throughput:       %.2f Mbit/s of payload" o.Workload.Driver.megabits_per_sec;
    say "CPUs busy:        caller %.2f, server %.2f" o.Workload.Driver.caller_busy_cpus
      o.Workload.Driver.server_busy_cpus;
    say "retransmissions:  %d" o.Workload.Driver.retransmissions;
    if Array.length o.Workload.Driver.latencies > 0 then begin
      let p q = Sim.Time.span_to_string (Workload.Driver.percentile o q) in
      say "latency:          p50 %s   p90 %s   p99 %s   max %s" (p 0.50) (p 0.90) (p 0.99)
        (p 1.0)
    end;
    if metrics then begin
      say "";
      let snap =
        Obs.Metrics.Snapshot.take w.Workload.World.obs.Obs.Ctx.metrics
          ~at:(Sim.Engine.now w.Workload.World.eng)
      in
      print_string
        (Report.Table.render
           (Obs.Metrics.Snapshot.to_table ~id:"metrics" ~title:"Metrics after the run" snap))
    end
  in
  let proc =
    Arg.(value & opt proc_conv Workload.Driver.Null & info [ "proc" ] ~doc:"Procedure to call.")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Caller threads.") in
  let calls = Arg.(value & opt int 1000 & info [ "calls" ] ~doc:"Total calls.") in
  let bulk =
    Arg.(
      value
      & opt (some int) None
      & info [ "bulk" ] ~docv:"BYTES" ~doc:"Call GetData(BYTES) instead (multi-packet results).")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Packet loss probability on the wire.")
  in
  let transport =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", `Auto);
               ("sim", `Auto);
               ("local", `Local);
               ("udp", `Udp);
               ("decnet", `Decnet);
               ("socket", `Socket);
             ])
          `Auto
      & info [ "transport" ]
          ~doc:
            "Bind-time transport: $(b,auto)/$(b,sim) (the simulated Ethernet), \
             $(b,local) (same-machine shared memory, the paper's local call), $(b,udp), \
             $(b,decnet), or $(b,socket) — a real loopback UDP socket carrying the same \
             frame bytes, reported as measured-vs-calibrated cross-validation.")
  in
  let metrics =
    Arg.(
      value
      & flag
      & info [ "metrics" ] ~doc:"Print the full metrics-registry snapshot after the run.")
  in
  Cmd.v
    (Cmd.info "call" ~doc:"Run an ad-hoc RPC workload under a chosen configuration.")
    Term.(const run $ cfg_term $ proc $ threads $ calls $ bulk $ loss $ transport $ metrics)

(* {1 firefly trace} *)

let trace_cmd =
  let run flags proc calls out =
    let caller_config, server_config = configs flags in
    let w =
      Workload.World.create ~caller_config ~server_config ~seed:flags.seed ~idle_load:false ()
    in
    let latencies = Workload.Driver.run_traced w ~calls ~proc () in
    (match latencies with
    | [ l ] -> say "one warmed-up call: %s" (Sim.Time.span_to_string l)
    | ls ->
      let total = Sim.Time.span_sum ls in
      say "%d warmed-up calls, mean %s" (List.length ls)
        (Sim.Time.span_to_string
           (Sim.Time.span_scale (1. /. float_of_int (List.length ls)) total)));
    let tr = Sim.Engine.trace w.Workload.World.eng in
    let spans =
      List.sort
        (fun a b -> Sim.Time.compare a.Sim.Trace.start_at b.Sim.Trace.start_at)
        (Sim.Trace.spans tr)
    in
    let journal = w.Workload.World.obs.Obs.Ctx.journal in
    say "journal: %d events retained, %d dropped (of %d recorded)" (Obs.Journal.length journal)
      (Obs.Journal.dropped journal) (Obs.Journal.total journal);
    if Sim.Trace.dropped tr > 0 then
      say "trace: %d spans DROPPED at the capacity bound — the window is incomplete"
        (Sim.Trace.dropped tr);
    if Sim.Trace.frame_evictions tr > 0 then
      say
        "trace: %d frame-registry evictions — some packet spans may be missing their call \
         attribution"
        (Sim.Trace.frame_evictions tr);
    match out with
    | Some path ->
      let json = Obs.Trace_export.chrome_trace ~journal ~spans () in
      Obs.Trace_export.write_file ~path json;
      say "wrote %d spans and %d journal events to %s" (List.length spans)
        (Obs.Journal.length journal) path;
      say "open it at https://ui.perfetto.dev or chrome://tracing"
    | None ->
      say "";
      say "%-10s %-9s %-38s %10s" "time(us)" "site" "step" "cost(us)";
      let origin =
        match spans with
        | [] -> Sim.Time.zero
        | s :: _ -> s.Sim.Trace.start_at
      in
      List.iter
        (fun s ->
          say "%-10.0f %-9s %-38s %10.1f"
            (Sim.Time.to_us (Sim.Time.diff s.Sim.Trace.start_at origin))
            s.Sim.Trace.site s.Sim.Trace.label
            (Sim.Time.to_us (Sim.Trace.duration s)))
        spans
  in
  let proc =
    Arg.(value & opt proc_conv Workload.Driver.Null & info [ "proc" ] ~doc:"Procedure to trace.")
  in
  let calls = Arg.(value & opt int 1 & info [ "calls" ] ~doc:"Warmed-up calls to trace.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace-event (Perfetto) JSON file instead of the table.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace warmed-up calls: print the per-step time breakdown (Tables VI/VII), or export \
          a Perfetto/chrome://tracing JSON timeline with $(b,--out).")
    Term.(const run $ cfg_term $ proc $ calls $ out)

(* {1 firefly breakdown} *)

let breakdown_cmd =
  let run flags proc calls pctl check out csv =
    if calls < 1 then Error (`Msg "--calls must be >= 1")
    else begin
      let caller_config, server_config = configs flags in
      let w =
        Workload.World.create ~caller_config ~server_config ~seed:flags.seed ~idle_load:false ()
      in
      let windows = Workload.Driver.run_breakdown w ~calls ~proc () in
      let tr = Sim.Engine.trace w.Workload.World.eng in
      let spans = Sim.Trace.spans tr in
      let windows =
        List.map
          (fun (i, t0, t1) -> { Obs.Attrib.w_call = i; w_start = t0; w_stop = t1 })
          windows
      in
      let percentile = Option.map (fun p -> p /. 100.) pctl in
      let r = Obs.Attrib.attribute ~spans ~windows () in
      (match out with
      | Some path when Filename.check_suffix path ".json" ->
        let journal = w.Workload.World.obs.Obs.Ctx.journal in
        Obs.Trace_export.write_file ~path (Obs.Trace_export.chrome_trace ~journal ~spans ());
        say "wrote %d spans (%d calls) to %s — open at https://ui.perfetto.dev" (List.length spans)
          calls path
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Obs.Attrib.to_csv ?percentile r));
        say "wrote per-stage CSV to %s" path
      | None ->
        if csv then print_string (Obs.Attrib.to_csv ?percentile r)
        else print_string (Report.Table.render (Obs.Attrib.table ?percentile r)));
      if Sim.Trace.dropped tr > 0 then
        say "trace: %d spans DROPPED at the capacity bound — attribution is incomplete"
          (Sim.Trace.dropped tr);
      if Sim.Trace.frame_evictions tr > 0 then
        say
          "trace: %d frame-registry evictions — some packet spans may be missing their \
           call attribution"
          (Sim.Trace.frame_evictions tr);
      if not check then Ok ()
      else begin
        (* The gate: conservation on every call, plus (for the two
           calibrated scenarios) drift against the Table VI constants. *)
        let scenario =
          match proc with
          | Workload.Driver.Null -> Some Obs.Attrib.Null_call
          | Workload.Driver.Max_arg -> Some Obs.Attrib.Max_arg_call
          | _ -> None
        in
        let result =
          match scenario with
          | Some scenario -> Obs.Attrib.check r ~scenario
          | None ->
            if Obs.Attrib.conservation_ok r then Ok ()
            else
              Error
                [
                  Printf.sprintf "conservation: worst call attributed only %.2f%% of its latency"
                    (100. *. r.Obs.Attrib.r_min_coverage);
                ]
        in
        match result with
        | Ok () ->
          say "check: OK — %.2f%% of end-to-end latency attributed (worst call %.2f%%)"
            (100. *. r.Obs.Attrib.r_coverage)
            (100. *. r.Obs.Attrib.r_min_coverage);
          Ok ()
        | Error msgs ->
          List.iter (fun m -> say "check: FAIL — %s" m) msgs;
          Stdlib.exit 1
      end
    end
  in
  let proc =
    Arg.(
      value & opt proc_conv Workload.Driver.Null & info [ "proc" ] ~doc:"Procedure to attribute.")
  in
  let calls =
    Arg.(value & opt int 20 & info [ "calls" ] ~docv:"N" ~doc:"Timed calls to aggregate over.")
  in
  let pctl =
    Arg.(
      value
      & opt (some float) None
      & info [ "percentile" ] ~docv:"P"
          ~doc:"Add a per-stage percentile column, e.g. $(b,--percentile 95).")
  in
  let check =
    Arg.(
      value
      & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero unless every call's attributed time (stages + queueing) reaches 99% \
             of its measured latency and, for null/maxarg, no Table VI stage drifts beyond \
             tolerance from its calibrated cost.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the result to $(docv): $(i,*.json) gets the Perfetto span timeline, anything \
             else the per-stage CSV.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Print CSV instead of the table.") in
  Cmd.v
    (Cmd.info "breakdown"
       ~doc:
         "Causal latency attribution: run traced calls, stitch each call's spans across both \
          machines and the wire, and account its end-to-end latency into per-stage service \
          time, identified queueing and an explicit unattributed residual (a live re-derivation \
          of Tables VI-VIII).  $(b,--check) enforces conservation and calibration drift bounds.")
    Term.(
      term_result ~usage:true (const run $ cfg_term $ proc $ calls $ pctl $ check $ out $ csv))

(* {1 firefly profile} *)

let profile_cmd =
  let run flags proc threads calls =
    let caller_config, server_config = configs flags in
    let w =
      Workload.World.create ~caller_config ~server_config ~seed:flags.seed ~idle_load:false ()
    in
    let tr = Sim.Engine.trace w.Workload.World.eng in
    Sim.Trace.set_enabled tr true;
    let o = Workload.Driver.run w ~threads ~calls ~proc () in
    Sim.Trace.set_enabled tr false;
    let spans = Sim.Trace.spans tr in
    let agg : (string * string, int ref * Sim.Time.span ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun s ->
        let key = (s.Sim.Trace.site, s.Sim.Trace.label) in
        let n, total =
          match Hashtbl.find_opt agg key with
          | Some v -> v
          | None ->
            let v = (ref 0, ref Sim.Time.zero_span) in
            Hashtbl.add agg key v;
            v
        in
        incr n;
        total := Sim.Time.span_add !total (Sim.Trace.duration s))
      spans;
    let rows = Hashtbl.fold (fun (site, label) (n, total) acc -> (site, label, !n, !total) :: acc) agg [] in
    let rows = List.sort (fun (_, _, _, a) (_, _, _, b) -> Sim.Time.span_compare b a) rows in
    say "%d calls (%d threads), %.0f RPC/s — CPU/bus time by step:" o.Workload.Driver.calls
      threads o.Workload.Driver.rpcs_per_sec;
    say "";
    say "%-9s %-38s %8s %12s %10s" "site" "step" "count" "total(ms)" "us/call";
    List.iter
      (fun (site, label, n, total) ->
        say "%-9s %-38s %8d %12.2f %10.1f" site label n (Sim.Time.to_ms total)
          (Sim.Time.to_us total /. float_of_int o.Workload.Driver.calls))
      rows
  in
  let proc =
    Arg.(value & opt proc_conv Workload.Driver.Null & info [ "proc" ] ~doc:"Procedure to profile.")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Caller threads.") in
  let calls = Arg.(value & opt int 50 & info [ "calls" ] ~doc:"Calls to aggregate over.") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Aggregate CPU/bus time per fast-path step over a workload (a Table VI/VII view under load).")
    Term.(const run $ cfg_term $ proc $ threads $ calls)

(* {1 firefly check} *)

let check_cmd =
  let run seeds base_seed threads calls payload bug fifo max_steps matrix uniproc streaming
      secured out_dir verbose jobs =
    if seeds < 1 then Error (`Msg "--seeds must be >= 1")
    else if threads < 1 then Error (`Msg "--threads must be >= 1")
    else if calls < 1 then Error (`Msg "--calls must be >= 1")
    else if payload < 0 then Error (`Msg "--payload must be >= 0")
    else if max_steps < 1 then Error (`Msg "--max-steps must be >= 1")
    else if jobs < 1 then Error (`Msg "--jobs must be >= 1")
    else begin
    let config =
      {
        Check.Explorer.threads;
        calls_per_thread = calls;
        payload;
        bug =
          (match bug with
          | "no-retransmit" -> Check.Explorer.No_retransmit
          | _ -> Check.Explorer.No_bug);
        tie_break = (if fifo then `Fifo else `Random);
        max_steps;
        uniproc;
        streaming;
        secured;
      }
    in
    let summary =
      if matrix then begin
        let progress cell seed =
          if verbose then say "[%s] seed %d..." (Check.Explorer.cell_to_string cell) seed
        in
        Check.Explorer.explore_matrix ~progress ~jobs config ~base_seed ~seeds_per_cell:seeds
      end
      else begin
        let progress seed = if verbose then say "seed %d..." seed in
        Check.Explorer.explore ~progress ~jobs config ~base_seed ~seeds
      end
    in
    let failures = summary.Check.Explorer.failures in
    say "%d seed(s) explored: %d invariant-violating run(s)" summary.Check.Explorer.seeds_run
      (List.length failures);
    List.iter
      (fun o ->
        say "";
        Format.printf "%a@." Check.Explorer.pp_outcome o)
      failures;
    (* Artifacts for CI: the shrunk plan (replayable text) and a
       Perfetto trace of the minimal reproducer, one pair per seed. *)
    (match out_dir with
    | Some dir when failures <> [] ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (o : Check.Explorer.outcome) ->
          let base = Filename.concat dir (Printf.sprintf "seed-%d" o.Check.Explorer.seed) in
          let oc = open_out (base ^ "-plan.txt") in
          Format.fprintf
            (Format.formatter_of_out_channel oc)
            "%a@." Check.Explorer.pp_outcome o;
          close_out oc;
          Obs.Trace_export.write_file ~path:(base ^ "-trace.json")
            (Obs.Trace_export.chrome_trace ~spans:o.Check.Explorer.spans ());
          say "artifacts: %s-plan.txt, %s-trace.json" base base)
        failures
    | Some _ | None -> ());
    if failures <> [] then Stdlib.exit 1;
    Ok ()
    end
  in
  let seeds =
    Arg.(
      value
      & opt int 20
      & info [ "seeds" ]
          ~doc:"Number of seeds to explore (with $(b,--matrix): seeds per matrix cell).")
  in
  let base_seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First seed.") in
  let threads = Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Caller threads per run.") in
  let calls = Arg.(value & opt int 4 & info [ "calls" ] ~doc:"Calls per thread.") in
  let payload =
    Arg.(
      value
      & opt int 4000
      & info [ "payload" ] ~docv:"BYTES" ~doc:"GetData result size for the bulk calls.")
  in
  let bug =
    Arg.(
      value
      & opt (enum [ ("none", "none"); ("no-retransmit", "no-retransmit") ]) "none"
      & info [ "bug" ]
          ~doc:
            "Intentionally cripple the protocol to demonstrate detection: $(b,no-retransmit) \
             sets the caller's retry budget to zero.")
  in
  let fifo =
    Arg.(
      value
      & flag
      & info [ "fifo" ]
          ~doc:"Use FIFO ordering for same-instant events instead of seeded random tie-breaking.")
  in
  let max_steps =
    Arg.(value & opt int 6 & info [ "max-steps" ] ~doc:"Maximum fault-plan length.")
  in
  let matrix =
    Arg.(
      value
      & flag
      & info [ "matrix" ]
          ~doc:
            "Sweep the full configuration matrix — uniprocessor/multiprocessor, \
             stop-and-wait/streaming results, clear/secured calls, three payload regimes — \
             running $(b,--seeds) fault plans in each of the 24 cells.  Overrides \
             $(b,--uniproc), $(b,--streaming), $(b,--secured) and $(b,--payload).")
  in
  let uniproc =
    Arg.(value & flag & info [ "uniproc" ] ~doc:"Run single-CPU machines (with the section-5 scheduling fix).")
  in
  let streaming =
    Arg.(
      value
      & flag
      & info [ "streaming" ] ~doc:"Stream result fragments without per-fragment acks.")
  in
  let secured =
    Arg.(value & flag & info [ "secured" ] ~doc:"Seal every call under a shared key.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "On failure, write each shrunk plan and its Perfetto trace into $(docv) \
             (created if missing).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each seed as it runs.") in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Deterministic simulation testing: run seeded random fault plans against the \
          two-Firefly world, checking protocol invariants (at-most-once execution, packet-pool \
          conservation, monotonic virtual time, completion under recoverable faults).  On a \
          violation, prints the seed and a shrunk minimal fault plan that replays it.")
    Term.(
      term_result ~usage:true
        (const run $ seeds $ base_seed $ threads $ calls $ payload $ bug $ fifo $ max_steps
        $ matrix $ uniproc $ streaming $ secured $ out_dir $ verbose $ jobs_term))

(* {1 firefly fleet} *)

let fleet_cmd =
  let run nodes clients calls arrival rate alpha think scenario seed seeds jobs payload
      straggler_speedup switch_latency egress_capacity queue check trace out =
    if nodes < 2 then Error (`Msg "--nodes must be >= 2")
    else if clients < 1 then Error (`Msg "--clients must be >= 1")
    else if calls < 1 then Error (`Msg "--calls must be >= 1")
    else if seeds < 1 then Error (`Msg "--seeds must be >= 1")
    else if jobs < 1 then Error (`Msg "--jobs must be >= 1")
    else if rate <= 0. then Error (`Msg "--rate must be > 0")
    else begin
      let arrival =
        match arrival with
        | `Poisson -> Fleet.Gen.Poisson { rate_per_sec = rate }
        | `Pareto -> Fleet.Gen.Pareto { alpha; rate_per_sec = rate }
        | `Closed -> Fleet.Gen.Closed { think_us = think }
      in
      let kind =
        match Fleet.Scenario.kind_of_string scenario with
        | Some k -> k
        | None -> assert false
      in
      let spec =
        {
          Fleet.Scenario.s_nodes = nodes;
          s_clients = clients;
          s_calls = calls;
          s_arrival = arrival;
          s_kind = kind;
          s_seed = seed;
          s_payload = payload;
          s_straggler_speedup = straggler_speedup;
          s_switch_latency_us = switch_latency;
          s_egress_capacity = egress_capacity;
          s_queue = queue;
        }
      in
      let run_one seed =
        let spec = { spec with Fleet.Scenario.s_seed = seed } in
        let trace = trace || out <> None in
        let report, artifacts = Fleet.Scenario.run ~trace spec in
        (report, artifacts, Fleet.Scenario.render report)
      in
      let results =
        if seeds = 1 || jobs <= 1 then
          List.map run_one (List.init seeds (fun i -> seed + i))
        else
          (* Each seed's cluster owns its engine, so seeds fan out over
             worker domains; rendering to strings and printing in seed
             order keeps the output identical to the serial path. *)
          Par.Pool.map_list ~jobs run_one (List.init seeds (fun i -> seed + i))
      in
      List.iteri
        (fun i (_, _, body) ->
          if i > 0 then say "";
          if seeds > 1 then say "### seed %d" (seed + i);
          print_string body)
        results;
      (match out with
      | Some path ->
        let _, artifacts, _ = List.hd results in
        let json =
          Obs.Trace_export.chrome_trace
            ~journal:artifacts.Fleet.Scenario.a_obs.Obs.Ctx.journal
            ~spans:artifacts.Fleet.Scenario.a_spans ()
        in
        Obs.Trace_export.write_file ~path json;
        say "wrote %d spans to %s — open at https://ui.perfetto.dev"
          (List.length artifacts.Fleet.Scenario.a_spans)
          path
      | None -> ());
      if not check then Ok ()
      else begin
        let failures =
          List.concat_map
            (fun (report, _, _) ->
              match Fleet.Scenario.check report with Ok () -> [] | Error es -> es)
            results
        in
        match failures with
        | [] ->
          say "check: OK — conservation, quiescence and concurrency invariants hold";
          Ok ()
        | es ->
          List.iter (fun m -> say "check: FAIL — %s" m) es;
          Stdlib.exit 1
      end
    end
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Machines in the cluster.") in
  let clients =
    Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Client slots fleet-wide.")
  in
  let calls = Arg.(value & opt int 400 & info [ "calls" ] ~doc:"Total calls to issue.") in
  let arrival =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("pareto", `Pareto); ("closed", `Closed) ]) `Closed
      & info [ "arrival" ]
          ~doc:
            "Arrival process: $(b,closed) (concurrency-bounded loop, default), $(b,poisson) \
             (open-loop, exponential inter-arrivals) or $(b,pareto) (open-loop, heavy-tailed \
             inter-arrivals).")
  in
  let rate =
    Arg.(
      value
      & opt float 200.
      & info [ "rate" ] ~docv:"PER_SEC"
          ~doc:
            "Fleet-wide offered load for the open-loop arrivals (calls per second).  The \
             4-node fleet sustains roughly 350 closed-loop calls/s; offering more than that \
             open-loop demonstrates divergence, not throughput.")
  in
  let alpha =
    Arg.(
      value
      & opt float 1.5
      & info [ "alpha" ] ~doc:"Pareto tail index (must be > 1 so the mean exists).")
  in
  let think =
    Arg.(
      value
      & opt float 0.
      & info [ "think" ] ~docv:"US" ~doc:"Closed-loop think time between calls (microseconds).")
  in
  let scenario =
    Arg.(
      value
      & opt (enum [ ("uniform", "uniform"); ("incast", "incast"); ("straggler", "straggler") ])
          "uniform"
      & info [ "scenario" ]
          ~doc:
            "Placement: $(b,uniform) (every node serves and calls), $(b,incast) (node 0 is the \
             only server) or $(b,straggler) (uniform with the last node's CPUs slowed).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"First simulation seed.") in
  let seeds =
    Arg.(
      value
      & opt int 1
      & info [ "seeds" ] ~docv:"N" ~doc:"Run N seeds (seed, seed+1, ...) and print each report.")
  in
  let payload =
    Arg.(
      value
      & opt int 0
      & info [ "payload" ] ~docv:"BYTES"
          ~doc:"Result payload: 0 calls Null(), otherwise GetData($(docv)).")
  in
  let straggler_speedup =
    Arg.(
      value
      & opt float 0.25
      & info [ "straggler-speedup" ]
          ~doc:"Straggler node CPU speed relative to the rest (only with --scenario straggler).")
  in
  let switch_latency =
    Arg.(
      value
      & opt float 10.
      & info [ "switch-latency" ] ~docv:"US" ~doc:"Switch fabric latency (microseconds).")
  in
  let egress_capacity =
    Arg.(
      value
      & opt int 32
      & info [ "egress-capacity" ] ~docv:"FRAMES"
          ~doc:"Per-port egress queue bound; overflow frames are dropped (incast loss).")
  in
  let queue =
    Arg.(
      value
      & opt (enum [ ("heap", `Heap); ("calendar", `Calendar) ]) `Heap
      & info [ "queue" ] ~docv:"KIND"
          ~doc:
            "Engine event-queue discipline: $(b,heap) (pairing heap, default) or $(b,calendar) \
             (bucketed calendar queue).  A pure performance knob — same-seed reports are \
             byte-identical under either.")
  in
  let check =
    Arg.(
      value
      & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero unless conservation (issued = completed + failed), quiescence (no \
             leaked fragment sinks, no stuck callers) and the closed-loop concurrency bound \
             hold.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Record simulator spans during the run.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the first seed's Perfetto/chrome://tracing JSON timeline to $(docv) \
             (implies $(b,--trace)).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run an N-node fleet scenario over the switched topology: uniform, incast or straggler \
          placement, open-loop (Poisson/Pareto) or closed-loop clients, per-node and fleet-wide \
          p50/p99/p99.9 and a saturation breakdown naming the first bottleneck.")
    Term.(
      term_result ~usage:true
        (const run $ nodes $ clients $ calls $ arrival $ rate $ alpha $ think $ scenario $ seed
        $ seeds $ jobs_term $ payload $ straggler_speedup $ switch_latency $ egress_capacity
        $ queue $ check $ trace $ out))

(* {1 firefly fuzz} *)

let fuzz_cmd =
  let run seed iters corpus_dir canary no_sweep =
    if iters < 1 then Error (`Msg "--iters must be >= 1")
    else if seed < 0 then Error (`Msg "--seed must be >= 0")
    else begin
      if canary then begin
        (* Self-test: plant a known trust-the-length bug in Udp.decode
           and require the fuzzer to rediscover it. *)
        let found, report = Fuzz.Driver.canary ~seed ~iters () in
        print_string (Fuzz.Driver.to_string report);
        if found then begin
          say "canary: the planted Udp.decode length bug WAS found — the fuzzer sees real bugs.";
          Ok ()
        end
        else begin
          say "canary: the planted Udp.decode length bug was NOT found within %d iterations."
            iters;
          Stdlib.exit 1
        end
      end
      else begin
        (* Replay any persisted reproducers first: a corpus failure is a
           regression even before new fuzzing starts. *)
        let replay_failures =
          match corpus_dir with
          | None -> []
          | Some dir ->
            let results = Fuzz.Driver.replay_dir ~dir in
            List.iter
              (fun (path, f) ->
                match f with
                | None -> say "replay %s: ok" path
                | Some f -> say "replay %s: %s" path (Fuzz.Oracle.to_string f))
              results;
            List.filter (fun (_, f) -> f <> None) results
        in
        let report = Fuzz.Driver.run ~sweep:(not no_sweep) ~seed ~iters () in
        print_string (Fuzz.Driver.to_string report);
        (match corpus_dir with
        | Some dir when report.Fuzz.Driver.r_failures <> [] ->
          List.iter (fun p -> say "reproducer written: %s" p)
            (Fuzz.Driver.write_failures ~dir report);
          say "replay later with: firefly fuzz --corpus-dir %s --iters 1" dir
        | Some _ | None -> ());
        if report.Fuzz.Driver.r_failures <> [] || replay_failures <> [] then Stdlib.exit 1;
        Ok ()
      end
    end
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fuzz seed (the whole run is a pure function of it).") in
  let iters =
    Arg.(
      value
      & opt int 10_000
      & info [ "iters" ] ~docv:"N"
          ~doc:
            "Mutated inputs to execute, including the systematic truncation sweep that runs \
             first.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:
            "Replay every $(i,*.bin) reproducer in $(docv) before fuzzing, and persist any new \
             minimized reproducer there (created if missing).")
  in
  let canary =
    Arg.(
      value
      & flag
      & info [ "canary" ]
          ~doc:
            "Self-test: plant a known length-trusting bug in the UDP decoder and verify the \
             fuzzer finds it.  Exits 0 only if the planted bug is rediscovered.")
  in
  let no_sweep =
    Arg.(
      value
      & flag
      & info [ "no-sweep" ] ~doc:"Skip the exhaustive truncation sweep; random mutation only.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Deterministic structure-aware fuzzing of the wire surface: mutate valid frames \
          (truncation at every offset, bit flips, length/version/count skew, header splicing) \
          and drive every input through the Ethernet/IPv4/UDP/RPC decoders and the full \
          frame parser, checking that no exception escapes, that accepted headers re-encode \
          round-trip, and that the zero-copy view path decodes byte-identically to the \
          copying path.  Failures are shrunk to minimized reproducers.")
    Term.(
      term_result ~usage:true (const run $ seed $ iters $ corpus_dir $ canary $ no_sweep))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "firefly" ~version:"1.0.0"
             ~doc:"A simulated reproduction of 'Performance of Firefly RPC' (SOSP 1989).")
          [
            list_cmd;
            repro_cmd;
            call_cmd;
            trace_cmd;
            breakdown_cmd;
            profile_cmd;
            fleet_cmd;
            check_cmd;
            fuzz_cmd;
          ]))
