(* The benchmark harness.

   Default mode regenerates every table of the paper's evaluation
   (Tables I-XII, the §4.2 improvement estimates, and the §5
   experiments) by running the simulator at full call counts, printing
   each as paper-vs-measured.

   [--quick] uses reduced call counts (same tables, more noise).
   [--only ID] runs a single experiment (see [--list]).
   [--jobs N] regenerates independent experiments on N domains
   (default: the machine's recommended domain count); [--jobs 1] is the
   exact serial path with byte-identical output.
   [--microbench] additionally runs Bechamel microbenchmarks of the
   genuinely computational kernels (checksums, marshalling, header
   codecs, event queue), measured in real wall-clock time, plus an
   engine throughput probe (events/sec, allocated bytes/event) and a
   fleet-scenario throughput probe (a 4-node incast in one engine).
   [--json FILE] (implies --microbench) persists the microbenchmark
   numbers as JSON — the checked-in BENCH_9.json baseline. *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let run_experiment ~transport ~quick (e : Experiments.Registry.entry) =
  say "";
  say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
  let t0 = Unix.gettimeofday () in
  let tables = e.Experiments.Registry.run ~transport ~quick ~metrics:false in
  List.iter (fun t -> print_string (Report.Table.render t)) tables;
  say "  (computed in %.1fs of wall-clock)" (Unix.gettimeofday () -. t0)

(* The parallel path renders off the main domain and prints afterwards,
   in registry order — the tables come out identical to the serial
   sweep, only the wall-clock annotations (inherently run-to-run noise)
   can differ. *)
let render_experiment ~transport ~quick (e : Experiments.Registry.entry) =
  let t0 = Unix.gettimeofday () in
  let tables = e.Experiments.Registry.run ~transport ~quick ~metrics:false in
  let body = String.concat "" (List.map Report.Table.render tables) in
  (body, Unix.gettimeofday () -. t0)

let run_experiments ~transport ~quick ~jobs entries =
  if jobs <= 1 then List.iter (run_experiment ~transport ~quick) entries
  else
    let rendered = Par.Pool.map_list ~jobs (render_experiment ~transport ~quick) entries in
    List.iter2
      (fun (e : Experiments.Registry.entry) (body, dt) ->
        say "";
        say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
        print_string body;
        say "  (computed in %.1fs of wall-clock)" dt)
      entries rendered

(* {1 Bechamel microbenchmarks of the real computational kernels} *)

let microbench_tests () =
  let open Bechamel in
  let packet n =
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr ((i * 31) land 0xff))
    done;
    b
  in
  let p74 = packet 74 and p1514 = packet 1514 in
  let checksum b =
    Staged.stage (fun () -> Wire.Checksum.checksum b ~pos:0 ~len:(Bytes.length b))
  in
  let proc =
    Rpc.Idl.proc "bench"
      [
        Rpc.Idl.arg "n" Rpc.Idl.T_int;
        Rpc.Idl.arg ~mode:Rpc.Idl.Var_in "data" (Rpc.Idl.T_var_bytes 1440);
      ]
  in
  let values = [ Rpc.Marshal.V_int 42l; Rpc.Marshal.V_bytes (packet 1400) ] in
  let encoded =
    let w = Wire.Bytebuf.Writer.create 2048 in
    Rpc.Marshal.encode_args w Rpc.Marshal.In_call_packet proc values;
    Wire.Bytebuf.Writer.contents w
  in
  let timing = Hw.Timing.create Hw.Config.default in
  let ep st ip = { Rpc.Frames.mac = Net.Mac.of_station st; ip = Net.Ipv4.Addr.of_string ip } in
  let hdr =
    {
      Rpc.Proto.ptype = Rpc.Proto.Call;
      please_ack = false;
      no_frag_ack = false;
      secured = false;
      activity =
        {
          Rpc.Proto.Activity.caller_ip = Net.Ipv4.Addr.of_string "16.0.0.1";
          caller_space = 1;
          thread = 1;
        };
      seq = 1;
      server_space = 1;
      interface_id = 7l;
      proc_idx = 0;
      frag_idx = 0;
      frag_count = 1;
      data_len = 0;
      checksum = 0;
    }
  in
  let frame =
    Rpc.Frames.build timing ~src:(ep 1 "16.0.0.1") ~dst:(ep 2 "16.0.0.2") ~hdr
      ~payload:(packet 1400) ~payload_pos:0 ~payload_len:1400
  in
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"checksum-74B" (checksum p74);
      Test.make ~name:"checksum-1514B" (checksum p1514);
      Test.make ~name:"marshal-encode-1404B"
        (Staged.stage (fun () ->
             let w = Wire.Bytebuf.Writer.create 2048 in
             Rpc.Marshal.encode_args w Rpc.Marshal.In_call_packet proc values));
      Test.make ~name:"marshal-decode-1404B"
        (Staged.stage (fun () ->
             Rpc.Marshal.decode_args
               (Wire.Bytebuf.Reader.of_bytes encoded)
               Rpc.Marshal.In_call_packet proc));
      Test.make ~name:"frame-build-1514B"
        (Staged.stage (fun () ->
             Rpc.Frames.build timing ~src:(ep 1 "16.0.0.1") ~dst:(ep 2 "16.0.0.2") ~hdr
               ~payload:(packet 1400) ~payload_pos:0 ~payload_len:1400));
      Test.make ~name:"frame-parse-1514B"
        (Staged.stage (fun () -> Rpc.Frames.parse timing frame));
      Test.make ~name:"event-heap-64"
        (Staged.stage (fun () ->
             let h = Sim.Heap.create ~leq:(fun (a : int) b -> a <= b) in
             for i = 63 downto 0 do
               Sim.Heap.add h i
             done;
             while not (Sim.Heap.is_empty h) do
               ignore (Sim.Heap.pop h)
             done));
      Test.make ~name:"simulated-null-rpc"
        (Staged.stage (fun () ->
             let w = Workload.World.create ~idle_load:false () in
             ignore (Workload.Driver.measure_single_call w ~proc:Workload.Driver.Null ())));
    ]

(* Engine throughput: 64 interleaved event chains, half a million
   events, measured in real time and real allocation through the
   closure-free flat path ([register_handler] + [schedule_fn]).  A
   warmup burst populates the node freelist first, so the measured
   window is the steady state — which allocates nothing at all:
   [Gc.allocated_bytes] counts every word the mutator allocates, and
   the schedule/pop/dispatch cycle touches only recycled nodes. *)
let measure_engine_throughput ?(queue = `Heap) () =
  let chains = 64 and steps = 8192 in
  let eng = Sim.Engine.create ~queue () in
  let fn_ref = ref (-1) in
  let fn =
    Sim.Engine.register_handler eng (fun remaining _ ->
        if remaining > 0 then
          Sim.Engine.schedule_fn eng ~after:(Sim.Time.ns 100) ~fn:!fn_ref ~a:(remaining - 1) ~b:0)
  in
  fn_ref := fn;
  for _ = 1 to chains do
    Sim.Engine.schedule_fn eng ~after:Sim.Time.zero_span ~fn ~a:256 ~b:0
  done;
  Sim.Engine.run eng;
  (* Best of three timed batches (each re-seeds the same chains on the
     same warmed engine): the batch is ~100 ms, short enough for one
     preemption to cost 10% of the reading. *)
  let sample () =
    let warm_events = Sim.Engine.events_executed eng in
    for _ = 1 to chains do
      Sim.Engine.schedule_fn eng ~after:Sim.Time.zero_span ~fn ~a:steps ~b:0
    done;
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    Sim.Engine.run eng;
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = Gc.allocated_bytes () -. a0 in
    let events = Sim.Engine.events_executed eng - warm_events in
    (float_of_int events /. dt, alloc /. float_of_int events)
  in
  let best ((e1, _) as a) ((e2, _) as b) = if e2 > e1 then b else a in
  best (sample ()) (best (sample ()) (sample ()))

(* The same chains through the closure API — the cost a caller pays for
   not registering a handler: a closure plus the [Some] wrapper of
   [~after] per event.  Kept as a benchmark so the gap (and any
   regression of the cold path) stays visible. *)
let measure_engine_closure_alloc () =
  let chains = 64 and steps = 4096 in
  let eng = Sim.Engine.create () in
  let rec tick remaining () =
    if remaining > 0 then Sim.Engine.schedule eng ~after:(Sim.Time.ns 100) (tick (remaining - 1))
  in
  for _ = 1 to chains do
    Sim.Engine.schedule eng (tick 256)
  done;
  Sim.Engine.run eng;
  let warm_events = Sim.Engine.events_executed eng in
  for _ = 1 to chains do
    Sim.Engine.schedule eng (tick steps)
  done;
  let a0 = Gc.allocated_bytes () in
  Sim.Engine.run eng;
  let alloc = Gc.allocated_bytes () -. a0 in
  let events = Sim.Engine.events_executed eng - warm_events in
  alloc /. float_of_int events

(* Fleet throughput: a fixed 4-node 200-call incast scenario — many
   machines, a switch, generators and per-node pools all live in one
   engine — measured in real time and real allocation.  Events/sec here
   is the number that says whether fleet-scale studies are affordable;
   the simulated calls/sec is deterministic and doubles as a drift
   canary.  A whole run is only ~10 ms of wall-clock, so one sample is
   at the mercy of a single scheduler hiccup: an untimed warmup run
   first, then the best of three timed runs (each run is a fresh,
   deterministic cluster, so they are true repeats). *)
let measure_fleet_throughput ?(queue = `Heap) () =
  let spec =
    {
      Fleet.Scenario.default with
      Fleet.Scenario.s_clients = 16;
      s_calls = 200;
      s_kind = Fleet.Scenario.Incast;
      s_queue = queue;
    }
  in
  let sample () =
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let report, _ = Fleet.Scenario.run spec in
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = Gc.allocated_bytes () -. a0 in
    let events = report.Fleet.Scenario.r_events in
    ( float_of_int events /. dt,
      events,
      report.Fleet.Scenario.r_rate_per_sec,
      alloc /. float_of_int events )
  in
  ignore (sample ());
  let best a b =
    let e1, _, _, _ = a and e2, _, _, _ = b in
    if e2 > e1 then b else a
  in
  best (sample ()) (best (sample ()) (sample ()))

(* Tracing overhead: the same sequential Null-RPC workload with span
   recording disabled vs. enabled — in real time and real allocation.
   The spans-off run is the cost everyone pays (it must stay
   indistinguishable from a build without tracing: every recording
   entry point short-circuits on one flag); the spans-on run is what
   [firefly breakdown] pays for a fully-attributed window.

   Both arms execute the identical event mix (same world, same calls,
   same seed); an untimed warmup world runs first and each arm is
   measured three times with the best taken, so one cold-start or a
   GC hiccup in either arm cannot invert the comparison — which is
   exactly how an earlier baseline recorded tracing as a speedup. *)
let measure_tracing_overhead () =
  let calls = 200 in
  let run ~traced =
    let w = Workload.World.create ~idle_load:false () in
    let tr = Sim.Engine.trace w.Workload.World.eng in
    Sim.Trace.set_enabled tr traced;
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (Workload.Driver.run w ~threads:1 ~calls ~proc:Workload.Driver.Null ());
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = Gc.allocated_bytes () -. a0 in
    let events = Sim.Engine.events_executed w.Workload.World.eng in
    (float_of_int events /. dt, alloc /. float_of_int events, Sim.Trace.length tr)
  in
  ignore (run ~traced:false);
  ignore (run ~traced:true);
  let best a b =
    let e1, _, _ = a and e2, _, _ = b in
    if e2 > e1 then b else a
  in
  let rec sample n acc_off acc_on =
    if n = 0 then (acc_off, acc_on)
    else sample (n - 1) (best acc_off (run ~traced:false)) (best acc_on (run ~traced:true))
  in
  let off, on = sample 2 (run ~traced:false) (run ~traced:true) in
  (off, on)

(* Real loopback round trips over the socket backend — wall-clock
   kernels that only exist when the environment has working sockets. *)
let run_socket_bench () =
  say "";
  say "### loopback-socket round trips (real wall-clock)";
  if not (Realnet.Udp_socket.available ()) then
    say "  loopback UDP sockets unavailable: skipped"
  else begin
    let intf = Workload.Test_interface.interface in
    match Realnet.Udp_socket.start_server ~intf ~impls:(Realnet.Crossval.test_impls ()) () with
    | Error e -> say "  cannot start loopback server (%s): skipped" e
    | Ok server ->
      Fun.protect ~finally:(fun () -> Realnet.Udp_socket.stop_server server) @@ fun () ->
      (match
         Realnet.Udp_socket.connect ~port:(Realnet.Udp_socket.server_port server) ~intf ()
       with
      | Error e -> say "  cannot connect (%s): skipped" e
      | Ok c ->
        Fun.protect ~finally:(fun () -> Realnet.Udp_socket.close c) @@ fun () ->
        let time_us ~iters f =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to iters do
            f ()
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e6
        in
        let iters = 500 in
        for _ = 1 to 10 do
          ignore (Realnet.Udp_socket.call c ~proc_idx:Workload.Test_interface.null_idx ~args:[])
        done;
        let null_us =
          time_us ~iters (fun () ->
              ignore
                (Realnet.Udp_socket.call c ~proc_idx:Workload.Test_interface.null_idx ~args:[]))
        in
        let arg = Workload.Test_interface.pattern Workload.Test_interface.buffer_bytes in
        let maxarg_us =
          time_us ~iters (fun () ->
              ignore
                (Realnet.Udp_socket.call c ~proc_idx:Workload.Test_interface.max_arg_idx
                   ~args:[ Rpc.Marshal.V_bytes arg ]))
        in
        say "  %-32s %12.1f us/call" "socket-null-rpc" null_us;
        say "  %-32s %12.1f us/call" "socket-maxarg-rpc" maxarg_us)
  end

let collect_microbench () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (microbench_tests ()) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.filter_map
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Some (name, est)
      | _ -> None)
    (List.sort compare rows)

type micro_results = {
  mr_kernels : (string * float) list;
  mr_engine_eps : float;  (* flat path, pairing heap *)
  mr_engine_ape : float;  (* alloc bytes/event, flat path — 0 in steady state *)
  mr_engine_cal_eps : float;  (* flat path, calendar queue *)
  mr_engine_cal_ape : float;
  mr_closure_ape : float;  (* legacy closure path alloc bytes/event *)
  mr_off : float * float;  (* spans-off events/sec, alloc/event *)
  mr_on : float * float * int;  (* spans-on events/sec, alloc/event, spans *)
  mr_fleet : float * int * float * float;  (* eps, events, sim calls/s, alloc/event *)
  mr_fleet_cal_eps : float;
}

let run_microbench () =
  say "";
  say "### microbenchmarks (real wall-clock, Bechamel OLS ns/iter)";
  let kernels = collect_microbench () in
  List.iter (fun (name, est) -> say "  %-32s %12.1f ns/iter" name est) kernels;
  let engine_eps, engine_ape = measure_engine_throughput ~queue:`Heap () in
  say "  %-32s %12.0f events/sec" "engine-throughput" engine_eps;
  say "  %-32s %12.1f bytes alloc/event" "engine-allocation" engine_ape;
  let cal_eps, cal_ape = measure_engine_throughput ~queue:`Calendar () in
  say "  %-32s %12.0f events/sec  %8.1f bytes alloc/event" "engine-calendar" cal_eps cal_ape;
  let closure_ape = measure_engine_closure_alloc () in
  say "  %-32s %12.1f bytes alloc/event" "engine-closure-path" closure_ape;
  let (off_eps, off_ape, _), (on_eps, on_ape, on_spans) = measure_tracing_overhead () in
  say "  %-32s %12.0f events/sec  %8.1f bytes alloc/event" "workload-spans-off" off_eps off_ape;
  say "  %-32s %12.0f events/sec  %8.1f bytes alloc/event  (%d spans)" "workload-spans-on"
    on_eps on_ape on_spans;
  say "  %-32s %11.1f%% events/sec, %+.1f bytes alloc/event" "tracing-overhead"
    (100. *. ((off_eps /. on_eps) -. 1.))
    (on_ape -. off_ape);
  let fleet_eps, fleet_events, fleet_rate, fleet_ape = measure_fleet_throughput ~queue:`Heap () in
  say "  %-32s %12.0f events/sec  (%d events, %.0f simulated calls/sec, %.1f bytes alloc/event)"
    "fleet-incast-4x200" fleet_eps fleet_events fleet_rate fleet_ape;
  let fleet_cal_eps, _, _, _ = measure_fleet_throughput ~queue:`Calendar () in
  say "  %-32s %12.0f events/sec" "fleet-incast-calendar" fleet_cal_eps;
  {
    mr_kernels = kernels;
    mr_engine_eps = engine_eps;
    mr_engine_ape = engine_ape;
    mr_engine_cal_eps = cal_eps;
    mr_engine_cal_ape = cal_ape;
    mr_closure_ape = closure_ape;
    mr_off = (off_eps, off_ape);
    mr_on = (on_eps, on_ape, on_spans);
    mr_fleet = (fleet_eps, fleet_events, fleet_rate, fleet_ape);
    mr_fleet_cal_eps = fleet_cal_eps;
  }

let json_of_results ~quick r =
  let open Obs.Json in
  let null_rpc =
    match List.assoc_opt "kernels/simulated-null-rpc" r.mr_kernels with
    | Some ns -> Num ns
    | None -> Null
  in
  let off_eps, off_ape = r.mr_off in
  let on_eps, on_ape, on_spans = r.mr_on in
  let fleet_eps, fleet_events, fleet_rate, fleet_ape = r.mr_fleet in
  Obj
    [
      ("schema", Str "firefly-bench/4");
      ("quick", Bool quick);
      ("kernels_ns_per_iter", Obj (List.map (fun (n, v) -> (n, Num v)) r.mr_kernels));
      ("simulated_null_rpc_ns", null_rpc);
      ("engine_events_per_sec", Num r.mr_engine_eps);
      ("engine_alloc_bytes_per_event", Num r.mr_engine_ape);
      ("engine_calendar_events_per_sec", Num r.mr_engine_cal_eps);
      ("engine_calendar_alloc_bytes_per_event", Num r.mr_engine_cal_ape);
      ("engine_closure_alloc_bytes_per_event", Num r.mr_closure_ape);
      ( "tracing_overhead",
        Obj
          [
            ("spans_off_events_per_sec", Num off_eps);
            ("spans_off_alloc_bytes_per_event", Num off_ape);
            ("spans_on_events_per_sec", Num on_eps);
            ("spans_on_alloc_bytes_per_event", Num on_ape);
            ("spans_recorded", Num (float_of_int on_spans));
            ("slowdown_frac", Num ((off_eps /. on_eps) -. 1.));
          ] );
      ( "fleet_incast",
        Obj
          [
            ("events_per_sec", Num fleet_eps);
            ("events", Num (float_of_int fleet_events));
            ("sim_calls_per_sec", Num fleet_rate);
            ("alloc_bytes_per_event", Num fleet_ape);
            ("calendar_events_per_sec", Num r.mr_fleet_cal_eps);
          ] );
    ]

let write_json ~file ~quick results =
  let oc = open_out file in
  output_string oc (Obs.Json.to_string (json_of_results ~quick results));
  output_char oc '\n';
  close_out oc;
  say "  (microbenchmark JSON written to %s)" file

(* {1 Performance-regression guard}

   [--baseline FILE] compares this run's engine and fleet numbers
   against a checked-in baseline JSON (BENCH_10.json): more than 20%
   throughput loss, or any alloc-bytes-per-event increase (beyond a 1
   byte measurement tolerance), fails the run.  Throughput gains and
   alloc improvements pass silently — the guard is a ratchet, not a
   pin. *)
let check_baseline ~file r =
  let contents =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.parse contents with
  | Error e -> failwith (Printf.sprintf "baseline %s: unparseable (%s)" file e)
  | Ok doc ->
    let num path j =
      let rec walk j = function
        | [] -> Obs.Json.num j
        | k :: rest -> Option.bind (Obs.Json.member k j) (fun v -> walk v rest)
      in
      walk j path
    in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    let check_throughput name baseline current =
      match baseline with
      | None -> ()
      | Some b when b > 0. ->
        let floor = 0.8 *. b in
        if current < floor then
          fail "%s: %.0f events/sec < 80%% of baseline %.0f" name current b
      | Some _ -> ()
    in
    let check_alloc name baseline current =
      match baseline with
      | None -> ()
      | Some b ->
        if current > b +. 1.0 then
          fail "%s: %.1f bytes alloc/event > baseline %.1f" name current b
    in
    let fleet_eps, _, _, _ = r.mr_fleet in
    check_throughput "engine_events_per_sec" (num [ "engine_events_per_sec" ] doc) r.mr_engine_eps;
    check_throughput "engine_calendar_events_per_sec"
      (num [ "engine_calendar_events_per_sec" ] doc)
      r.mr_engine_cal_eps;
    check_throughput "fleet_incast.events_per_sec"
      (num [ "fleet_incast"; "events_per_sec" ] doc)
      fleet_eps;
    check_alloc "engine_alloc_bytes_per_event"
      (num [ "engine_alloc_bytes_per_event" ] doc)
      r.mr_engine_ape;
    check_alloc "engine_calendar_alloc_bytes_per_event"
      (num [ "engine_calendar_alloc_bytes_per_event" ] doc)
      r.mr_engine_cal_ape;
    (match !failures with
    | [] -> say "  (baseline %s: within regression bounds)" file
    | fs ->
      List.iter (fun m -> say "  baseline REGRESSION — %s" m) (List.rev fs);
      Stdlib.exit 1)

let () =
  let quick = ref false in
  let micro = ref false in
  let only = ref [] in
  let list_only = ref false in
  let jobs = ref (Par.Pool.default_jobs ()) in
  let json = ref None in
  let baseline = ref None in
  let transport = ref "sim" in
  let args =
    [
      ("--quick", Arg.Set quick, "reduced call counts");
      ( "--transport",
        Arg.Symbol
          ([ "sim"; "local"; "socket" ], fun s -> transport := s),
        " bind-time transport for transport-sensitive tables (sim = simulated Ethernet, \
         local = same-machine shared memory); socket additionally times real loopback-UDP \
         round trips" );
      ("--microbench", Arg.Set micro, "also run Bechamel kernel microbenchmarks");
      ("--only", Arg.String (fun s -> only := s :: !only), "ID run a single experiment");
      ("--list", Arg.Set list_only, "list experiment ids");
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains for table regeneration (default: recommended domain count; 1 = serial)"
      );
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE write microbenchmark results to FILE as JSON (implies --microbench)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE fail (exit 1) on >20% engine/fleet throughput loss or any alloc-per-event \
         increase vs the baseline JSON (implies --microbench)" );
    ]
  in
  Arg.parse args (fun _ -> ()) "firefly-rpc benchmark harness";
  if !json <> None || !baseline <> None then micro := true;
  if !list_only then
    List.iter
      (fun e -> say "%-14s %s" e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all
  else begin
    say "Firefly RPC reproduction — regenerating the paper's tables%s"
      (if !quick then " (quick mode)" else "");
    let entries =
      match !only with
      | [] -> Experiments.Registry.all
      | ids ->
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
              say "unknown experiment %S (try --list)" id;
              None)
          (List.rev ids)
    in
    let registry_transport : Experiments.Registry.transport =
      match !transport with "local" -> `Local | _ -> `Auto
    in
    run_experiments ~transport:registry_transport ~quick:!quick ~jobs:!jobs entries;
    if !transport = "socket" then run_socket_bench ();
    if !micro then begin
      let results = run_microbench () in
      (match !json with
      | Some file -> write_json ~file ~quick:!quick results
      | None -> ());
      match !baseline with
      | Some file -> check_baseline ~file results
      | None -> ()
    end
  end
