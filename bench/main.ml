(* The benchmark harness.

   Default mode regenerates every table of the paper's evaluation
   (Tables I-XII, the §4.2 improvement estimates, and the §5
   experiments) by running the simulator at full call counts, printing
   each as paper-vs-measured.

   [--quick] uses reduced call counts (same tables, more noise).
   [--only ID] runs a single experiment (see [--list]).
   [--microbench] additionally runs Bechamel microbenchmarks of the
   genuinely computational kernels (checksums, marshalling, header
   codecs, event queue), measured in real wall-clock time. *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let run_experiment ~quick (e : Experiments.Registry.entry) =
  say "";
  say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
  let t0 = Unix.gettimeofday () in
  let tables = e.Experiments.Registry.run ~quick ~metrics:false in
  List.iter (fun t -> print_string (Report.Table.render t)) tables;
  say "  (computed in %.1fs of wall-clock)" (Unix.gettimeofday () -. t0)

(* {1 Bechamel microbenchmarks of the real computational kernels} *)

let microbench_tests () =
  let open Bechamel in
  let packet n =
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr ((i * 31) land 0xff))
    done;
    b
  in
  let p74 = packet 74 and p1514 = packet 1514 in
  let checksum b =
    Staged.stage (fun () -> Wire.Checksum.checksum b ~pos:0 ~len:(Bytes.length b))
  in
  let proc =
    Rpc.Idl.proc "bench"
      [
        Rpc.Idl.arg "n" Rpc.Idl.T_int;
        Rpc.Idl.arg ~mode:Rpc.Idl.Var_in "data" (Rpc.Idl.T_var_bytes 1440);
      ]
  in
  let values = [ Rpc.Marshal.V_int 42l; Rpc.Marshal.V_bytes (packet 1400) ] in
  let encoded =
    let w = Wire.Bytebuf.Writer.create 2048 in
    Rpc.Marshal.encode_args w Rpc.Marshal.In_call_packet proc values;
    Wire.Bytebuf.Writer.contents w
  in
  let timing = Hw.Timing.create Hw.Config.default in
  let ep st ip = { Rpc.Frames.mac = Net.Mac.of_station st; ip = Net.Ipv4.Addr.of_string ip } in
  let hdr =
    {
      Rpc.Proto.ptype = Rpc.Proto.Call;
      please_ack = false;
      no_frag_ack = false;
      secured = false;
      activity =
        {
          Rpc.Proto.Activity.caller_ip = Net.Ipv4.Addr.of_string "16.0.0.1";
          caller_space = 1;
          thread = 1;
        };
      seq = 1;
      server_space = 1;
      interface_id = 7l;
      proc_idx = 0;
      frag_idx = 0;
      frag_count = 1;
      data_len = 0;
      checksum = 0;
    }
  in
  let frame =
    Rpc.Frames.build timing ~src:(ep 1 "16.0.0.1") ~dst:(ep 2 "16.0.0.2") ~hdr
      ~payload:(packet 1400) ~payload_pos:0 ~payload_len:1400
  in
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"checksum-74B" (checksum p74);
      Test.make ~name:"checksum-1514B" (checksum p1514);
      Test.make ~name:"marshal-encode-1404B"
        (Staged.stage (fun () ->
             let w = Wire.Bytebuf.Writer.create 2048 in
             Rpc.Marshal.encode_args w Rpc.Marshal.In_call_packet proc values));
      Test.make ~name:"marshal-decode-1404B"
        (Staged.stage (fun () ->
             Rpc.Marshal.decode_args
               (Wire.Bytebuf.Reader.of_bytes encoded)
               Rpc.Marshal.In_call_packet proc));
      Test.make ~name:"frame-build-1514B"
        (Staged.stage (fun () ->
             Rpc.Frames.build timing ~src:(ep 1 "16.0.0.1") ~dst:(ep 2 "16.0.0.2") ~hdr
               ~payload:(packet 1400) ~payload_pos:0 ~payload_len:1400));
      Test.make ~name:"frame-parse-1514B"
        (Staged.stage (fun () -> Rpc.Frames.parse timing frame));
      Test.make ~name:"event-heap-64"
        (Staged.stage (fun () ->
             let h = Sim.Heap.create ~leq:(fun (a : int) b -> a <= b) in
             for i = 63 downto 0 do
               Sim.Heap.add h i
             done;
             while not (Sim.Heap.is_empty h) do
               ignore (Sim.Heap.pop h)
             done));
      Test.make ~name:"simulated-null-rpc"
        (Staged.stage (fun () ->
             let w = Workload.World.create ~idle_load:false () in
             ignore (Workload.Driver.measure_single_call w ~proc:Workload.Driver.Null ())));
    ]

let run_microbench () =
  let open Bechamel in
  say "";
  say "### microbenchmarks (real wall-clock, Bechamel OLS ns/iter)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (microbench_tests ()) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> say "  %-32s %12.1f ns/iter" name est
      | _ -> say "  %-32s (no estimate)" name)
    (List.sort compare rows)

let () =
  let quick = ref false in
  let micro = ref false in
  let only = ref [] in
  let list_only = ref false in
  let args =
    [
      ("--quick", Arg.Set quick, "reduced call counts");
      ("--microbench", Arg.Set micro, "also run Bechamel kernel microbenchmarks");
      ("--only", Arg.String (fun s -> only := s :: !only), "ID run a single experiment");
      ("--list", Arg.Set list_only, "list experiment ids");
    ]
  in
  Arg.parse args (fun _ -> ()) "firefly-rpc benchmark harness";
  if !list_only then
    List.iter
      (fun e -> say "%-14s %s" e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all
  else begin
    say "Firefly RPC reproduction — regenerating the paper's tables%s"
      (if !quick then " (quick mode)" else "");
    let entries =
      match !only with
      | [] -> Experiments.Registry.all
      | ids ->
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
              say "unknown experiment %S (try --list)" id;
              None)
          (List.rev ids)
    in
    List.iter (run_experiment ~quick:!quick) entries;
    if !micro then run_microbench ()
  end
