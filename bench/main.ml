(* The benchmark harness.

   Default mode regenerates every table of the paper's evaluation
   (Tables I-XII, the §4.2 improvement estimates, and the §5
   experiments) by running the simulator at full call counts, printing
   each as paper-vs-measured.

   [--quick] uses reduced call counts (same tables, more noise).
   [--only ID] runs a single experiment (see [--list]).
   [--jobs N] regenerates independent experiments on N domains
   (default: the machine's recommended domain count); [--jobs 1] is the
   exact serial path with byte-identical output.
   [--microbench] additionally runs Bechamel microbenchmarks of the
   genuinely computational kernels (checksums, marshalling, header
   codecs, event queue), measured in real wall-clock time, plus an
   engine throughput probe (events/sec, allocated bytes/event) and a
   fleet-scenario throughput probe (a 4-node incast in one engine).
   [--json FILE] (implies --microbench) persists the microbenchmark
   numbers as JSON — the checked-in BENCH_9.json baseline. *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let run_experiment ~transport ~quick (e : Experiments.Registry.entry) =
  say "";
  say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
  let t0 = Unix.gettimeofday () in
  let tables = e.Experiments.Registry.run ~transport ~quick ~metrics:false in
  List.iter (fun t -> print_string (Report.Table.render t)) tables;
  say "  (computed in %.1fs of wall-clock)" (Unix.gettimeofday () -. t0)

(* The parallel path renders off the main domain and prints afterwards,
   in registry order — the tables come out identical to the serial
   sweep, only the wall-clock annotations (inherently run-to-run noise)
   can differ. *)
let render_experiment ~transport ~quick (e : Experiments.Registry.entry) =
  let t0 = Unix.gettimeofday () in
  let tables = e.Experiments.Registry.run ~transport ~quick ~metrics:false in
  let body = String.concat "" (List.map Report.Table.render tables) in
  (body, Unix.gettimeofday () -. t0)

let run_experiments ~transport ~quick ~jobs entries =
  if jobs <= 1 then List.iter (run_experiment ~transport ~quick) entries
  else
    let rendered = Par.Pool.map_list ~jobs (render_experiment ~transport ~quick) entries in
    List.iter2
      (fun (e : Experiments.Registry.entry) (body, dt) ->
        say "";
        say "### %s — %s" e.Experiments.Registry.id e.Experiments.Registry.title;
        print_string body;
        say "  (computed in %.1fs of wall-clock)" dt)
      entries rendered

(* {1 Bechamel microbenchmarks of the real computational kernels} *)

let microbench_tests () =
  let open Bechamel in
  let packet n =
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (Char.chr ((i * 31) land 0xff))
    done;
    b
  in
  let p74 = packet 74 and p1514 = packet 1514 in
  let checksum b =
    Staged.stage (fun () -> Wire.Checksum.checksum b ~pos:0 ~len:(Bytes.length b))
  in
  let proc =
    Rpc.Idl.proc "bench"
      [
        Rpc.Idl.arg "n" Rpc.Idl.T_int;
        Rpc.Idl.arg ~mode:Rpc.Idl.Var_in "data" (Rpc.Idl.T_var_bytes 1440);
      ]
  in
  let values = [ Rpc.Marshal.V_int 42l; Rpc.Marshal.V_bytes (packet 1400) ] in
  let encoded =
    let w = Wire.Bytebuf.Writer.create 2048 in
    Rpc.Marshal.encode_args w Rpc.Marshal.In_call_packet proc values;
    Wire.Bytebuf.Writer.contents w
  in
  let timing = Hw.Timing.create Hw.Config.default in
  let ep st ip = { Rpc.Frames.mac = Net.Mac.of_station st; ip = Net.Ipv4.Addr.of_string ip } in
  let hdr =
    {
      Rpc.Proto.ptype = Rpc.Proto.Call;
      please_ack = false;
      no_frag_ack = false;
      secured = false;
      activity =
        {
          Rpc.Proto.Activity.caller_ip = Net.Ipv4.Addr.of_string "16.0.0.1";
          caller_space = 1;
          thread = 1;
        };
      seq = 1;
      server_space = 1;
      interface_id = 7l;
      proc_idx = 0;
      frag_idx = 0;
      frag_count = 1;
      data_len = 0;
      checksum = 0;
    }
  in
  let frame =
    Rpc.Frames.build timing ~src:(ep 1 "16.0.0.1") ~dst:(ep 2 "16.0.0.2") ~hdr
      ~payload:(packet 1400) ~payload_pos:0 ~payload_len:1400
  in
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"checksum-74B" (checksum p74);
      Test.make ~name:"checksum-1514B" (checksum p1514);
      Test.make ~name:"marshal-encode-1404B"
        (Staged.stage (fun () ->
             let w = Wire.Bytebuf.Writer.create 2048 in
             Rpc.Marshal.encode_args w Rpc.Marshal.In_call_packet proc values));
      Test.make ~name:"marshal-decode-1404B"
        (Staged.stage (fun () ->
             Rpc.Marshal.decode_args
               (Wire.Bytebuf.Reader.of_bytes encoded)
               Rpc.Marshal.In_call_packet proc));
      Test.make ~name:"frame-build-1514B"
        (Staged.stage (fun () ->
             Rpc.Frames.build timing ~src:(ep 1 "16.0.0.1") ~dst:(ep 2 "16.0.0.2") ~hdr
               ~payload:(packet 1400) ~payload_pos:0 ~payload_len:1400));
      Test.make ~name:"frame-parse-1514B"
        (Staged.stage (fun () -> Rpc.Frames.parse timing frame));
      Test.make ~name:"event-heap-64"
        (Staged.stage (fun () ->
             let h = Sim.Heap.create ~leq:(fun (a : int) b -> a <= b) in
             for i = 63 downto 0 do
               Sim.Heap.add h i
             done;
             while not (Sim.Heap.is_empty h) do
               ignore (Sim.Heap.pop h)
             done));
      Test.make ~name:"simulated-null-rpc"
        (Staged.stage (fun () ->
             let w = Workload.World.create ~idle_load:false () in
             ignore (Workload.Driver.measure_single_call w ~proc:Workload.Driver.Null ())));
    ]

(* Engine throughput: 64 interleaved event chains, half a million
   events, measured in real time and real allocation.  [Gc.allocated_bytes]
   counts every word the mutator allocates, so alloc/event covers the
   scheduled closure plus whatever the event queue itself costs — the
   number the intrusive-heap work is meant to shrink. *)
let measure_engine_throughput () =
  let chains = 64 and steps = 8192 in
  let eng = Sim.Engine.create () in
  let rec tick remaining () =
    if remaining > 0 then Sim.Engine.schedule eng ~after:(Sim.Time.ns 100) (tick (remaining - 1))
  in
  for _ = 1 to chains do
    Sim.Engine.schedule eng (tick steps)
  done;
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  Sim.Engine.run eng;
  let dt = Unix.gettimeofday () -. t0 in
  let alloc = Gc.allocated_bytes () -. a0 in
  let events = Sim.Engine.events_executed eng in
  (float_of_int events /. dt, alloc /. float_of_int events)

(* Fleet throughput: a fixed 4-node 200-call incast scenario — many
   machines, a switch, generators and per-node pools all live in one
   engine — measured in real time.  Events/sec here is the number that
   says whether fleet-scale studies are affordable; the simulated
   calls/sec is deterministic and doubles as a drift canary. *)
let measure_fleet_throughput () =
  let spec =
    {
      Fleet.Scenario.default with
      Fleet.Scenario.s_clients = 16;
      s_calls = 200;
      s_kind = Fleet.Scenario.Incast;
    }
  in
  let t0 = Unix.gettimeofday () in
  let report, _ = Fleet.Scenario.run spec in
  let dt = Unix.gettimeofday () -. t0 in
  let events = report.Fleet.Scenario.r_events in
  (float_of_int events /. dt, events, report.Fleet.Scenario.r_rate_per_sec)

(* Tracing overhead: the same sequential Null-RPC workload run twice —
   span recording disabled, then enabled — in real time and real
   allocation.  The spans-off run is the cost everyone pays (it must
   stay indistinguishable from a build without tracing: every recording
   entry point short-circuits on one flag); the spans-on run is what
   [firefly breakdown] pays for a fully-attributed window. *)
let measure_tracing_overhead () =
  let calls = 200 in
  let run ~traced =
    let w = Workload.World.create ~idle_load:false () in
    let tr = Sim.Engine.trace w.Workload.World.eng in
    Sim.Trace.set_enabled tr traced;
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    ignore (Workload.Driver.run w ~threads:1 ~calls ~proc:Workload.Driver.Null ());
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = Gc.allocated_bytes () -. a0 in
    let events = Sim.Engine.events_executed w.Workload.World.eng in
    (float_of_int events /. dt, alloc /. float_of_int events, Sim.Trace.length tr)
  in
  let off = run ~traced:false in
  let on = run ~traced:true in
  (off, on)

(* Real loopback round trips over the socket backend — wall-clock
   kernels that only exist when the environment has working sockets. *)
let run_socket_bench () =
  say "";
  say "### loopback-socket round trips (real wall-clock)";
  if not (Realnet.Udp_socket.available ()) then
    say "  loopback UDP sockets unavailable: skipped"
  else begin
    let intf = Workload.Test_interface.interface in
    match Realnet.Udp_socket.start_server ~intf ~impls:(Realnet.Crossval.test_impls ()) () with
    | Error e -> say "  cannot start loopback server (%s): skipped" e
    | Ok server ->
      Fun.protect ~finally:(fun () -> Realnet.Udp_socket.stop_server server) @@ fun () ->
      (match
         Realnet.Udp_socket.connect ~port:(Realnet.Udp_socket.server_port server) ~intf ()
       with
      | Error e -> say "  cannot connect (%s): skipped" e
      | Ok c ->
        Fun.protect ~finally:(fun () -> Realnet.Udp_socket.close c) @@ fun () ->
        let time_us ~iters f =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to iters do
            f ()
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e6
        in
        let iters = 500 in
        for _ = 1 to 10 do
          ignore (Realnet.Udp_socket.call c ~proc_idx:Workload.Test_interface.null_idx ~args:[])
        done;
        let null_us =
          time_us ~iters (fun () ->
              ignore
                (Realnet.Udp_socket.call c ~proc_idx:Workload.Test_interface.null_idx ~args:[]))
        in
        let arg = Workload.Test_interface.pattern Workload.Test_interface.buffer_bytes in
        let maxarg_us =
          time_us ~iters (fun () ->
              ignore
                (Realnet.Udp_socket.call c ~proc_idx:Workload.Test_interface.max_arg_idx
                   ~args:[ Rpc.Marshal.V_bytes arg ]))
        in
        say "  %-32s %12.1f us/call" "socket-null-rpc" null_us;
        say "  %-32s %12.1f us/call" "socket-maxarg-rpc" maxarg_us)
  end

let collect_microbench () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (microbench_tests ()) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.filter_map
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Some (name, est)
      | _ -> None)
    (List.sort compare rows)

let run_microbench () =
  say "";
  say "### microbenchmarks (real wall-clock, Bechamel OLS ns/iter)";
  let kernels = collect_microbench () in
  List.iter (fun (name, est) -> say "  %-32s %12.1f ns/iter" name est) kernels;
  let events_per_sec, alloc_per_event = measure_engine_throughput () in
  say "  %-32s %12.0f events/sec" "engine-throughput" events_per_sec;
  say "  %-32s %12.1f bytes alloc/event" "engine-allocation" alloc_per_event;
  let ((off_eps, off_ape, _), (on_eps, on_ape, on_spans)) = measure_tracing_overhead () in
  say "  %-32s %12.0f events/sec  %8.1f bytes alloc/event" "workload-spans-off" off_eps off_ape;
  say "  %-32s %12.0f events/sec  %8.1f bytes alloc/event  (%d spans)" "workload-spans-on"
    on_eps on_ape on_spans;
  say "  %-32s %11.1f%% events/sec, %+.1f bytes alloc/event" "tracing-overhead"
    (100. *. ((off_eps /. on_eps) -. 1.))
    (on_ape -. off_ape);
  let fleet_eps, fleet_events, fleet_rate = measure_fleet_throughput () in
  say "  %-32s %12.0f events/sec  (%d events, %.0f simulated calls/sec)"
    "fleet-incast-4x200" fleet_eps fleet_events fleet_rate;
  ( kernels,
    events_per_sec,
    alloc_per_event,
    ((off_eps, off_ape), (on_eps, on_ape, on_spans)),
    (fleet_eps, fleet_events, fleet_rate) )

let write_json ~file ~quick
    ( kernels,
      events_per_sec,
      alloc_per_event,
      ((off_eps, off_ape), (on_eps, on_ape, on_spans)),
      (fleet_eps, fleet_events, fleet_rate) ) =
  let open Obs.Json in
  let null_rpc =
    match List.assoc_opt "kernels/simulated-null-rpc" kernels with
    | Some ns -> Num ns
    | None -> Null
  in
  let doc =
    Obj
      [
        ("schema", Str "firefly-bench/3");
        ("quick", Bool quick);
        ("kernels_ns_per_iter", Obj (List.map (fun (n, v) -> (n, Num v)) kernels));
        ("simulated_null_rpc_ns", null_rpc);
        ("engine_events_per_sec", Num events_per_sec);
        ("engine_alloc_bytes_per_event", Num alloc_per_event);
        ( "tracing_overhead",
          Obj
            [
              ("spans_off_events_per_sec", Num off_eps);
              ("spans_off_alloc_bytes_per_event", Num off_ape);
              ("spans_on_events_per_sec", Num on_eps);
              ("spans_on_alloc_bytes_per_event", Num on_ape);
              ("spans_recorded", Num (float_of_int on_spans));
              ("slowdown_frac", Num ((off_eps /. on_eps) -. 1.));
            ] );
        ( "fleet_incast",
          Obj
            [
              ("events_per_sec", Num fleet_eps);
              ("events", Num (float_of_int fleet_events));
              ("sim_calls_per_sec", Num fleet_rate);
            ] );
      ]
  in
  let oc = open_out file in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  say "  (microbenchmark JSON written to %s)" file

let () =
  let quick = ref false in
  let micro = ref false in
  let only = ref [] in
  let list_only = ref false in
  let jobs = ref (Par.Pool.default_jobs ()) in
  let json = ref None in
  let transport = ref "sim" in
  let args =
    [
      ("--quick", Arg.Set quick, "reduced call counts");
      ( "--transport",
        Arg.Symbol
          ([ "sim"; "local"; "socket" ], fun s -> transport := s),
        " bind-time transport for transport-sensitive tables (sim = simulated Ethernet, \
         local = same-machine shared memory); socket additionally times real loopback-UDP \
         round trips" );
      ("--microbench", Arg.Set micro, "also run Bechamel kernel microbenchmarks");
      ("--only", Arg.String (fun s -> only := s :: !only), "ID run a single experiment");
      ("--list", Arg.Set list_only, "list experiment ids");
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains for table regeneration (default: recommended domain count; 1 = serial)"
      );
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE write microbenchmark results to FILE as JSON (implies --microbench)" );
    ]
  in
  Arg.parse args (fun _ -> ()) "firefly-rpc benchmark harness";
  if !json <> None then micro := true;
  if !list_only then
    List.iter
      (fun e -> say "%-14s %s" e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all
  else begin
    say "Firefly RPC reproduction — regenerating the paper's tables%s"
      (if !quick then " (quick mode)" else "");
    let entries =
      match !only with
      | [] -> Experiments.Registry.all
      | ids ->
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
              say "unknown experiment %S (try --list)" id;
              None)
          (List.rev ids)
    in
    let registry_transport : Experiments.Registry.transport =
      match !transport with "local" -> `Local | _ -> `Auto
    in
    run_experiments ~transport:registry_transport ~quick:!quick ~jobs:!jobs entries;
    if !transport = "socket" then run_socket_bench ();
    if !micro then begin
      let results = run_microbench () in
      match !json with
      | Some file -> write_json ~file ~quick:!quick results
      | None -> ()
    end
  end
