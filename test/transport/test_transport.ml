(* Transport conformance: the same obligations checked against every
   backend behind the TRANSPORT signature — the simulated ether, the
   same-address-space shared-memory path, and the real loopback UDP
   socket.  Round trips must complete, multi-packet payloads must
   reassemble, lost packets must be retransmitted through, and
   malformed frames (one shared mutation corpus) must be rejected by
   the frame parser, never crash a receiver.

   Socket cases skip (not fail) where the environment has no loopback
   sockets. *)

module Driver = Workload.Driver
module World = Workload.World
module Ti = Workload.Test_interface
module Us = Realnet.Udp_socket

let sim_transports : (string * [ `Auto | `Local | `Udp | `Decnet ]) list =
  [ ("sim", `Auto); ("local", `Local) ]

(* {1 Round trips and reassembly through the simulated runtime} *)

let test_roundtrip transport () =
  let w = World.create ~idle_load:false () in
  let o = Driver.run w ~transport ~threads:1 ~calls:20 ~proc:Driver.Null () in
  Alcotest.(check int) "all null calls completed" 20 o.Driver.calls;
  let w = World.create ~idle_load:false () in
  let o = Driver.run w ~transport ~threads:1 ~calls:10 ~proc:Driver.Max_arg () in
  Alcotest.(check int) "all maxarg calls completed" 10 o.Driver.calls;
  Alcotest.(check int) "no retransmissions on a clean wire" 0 o.Driver.retransmissions

let test_reassembly transport () =
  (* GetData(6000) needs a multi-fragment result; the shared-memory
     path hands the value across without fragmentation — both must
     deliver the same outcome. *)
  let w = World.create ~idle_load:false () in
  let o = Driver.run w ~transport ~threads:1 ~calls:5 ~proc:(Driver.Get_data 6000) () in
  Alcotest.(check int) "all bulk calls completed" 5 o.Driver.calls

let test_retransmit_sim () =
  let w = World.create ~idle_load:false () in
  let rng = Sim.Engine.rng w.World.eng in
  Hw.Ether_link.set_fault_injector w.World.link
    (Some
       (fun _ ->
         if Sim.Rng.bool rng ~p:0.2 then Hw.Ether_link.Drop else Hw.Ether_link.Deliver));
  let options =
    { Rpc.Runtime.retransmit_after = Sim.Time.ms 50; max_retries = 100; backoff = None }
  in
  let o = Driver.run w ~options ~threads:1 ~calls:30 ~proc:Driver.Null () in
  Alcotest.(check int) "all calls completed despite 20% loss" 30 o.Driver.calls;
  Alcotest.(check bool) "losses forced retransmissions" true (o.Driver.retransmissions > 0)

(* {1 The shared malformed-frame corpus}

   One valid frame, mutated: truncations at representative lengths and
   bit flips at offsets the IP or UDP checksum covers.  Every backend's
   receive side runs Frames.parse, so every mutant must be rejected —
   here directly, and below through a real socket. *)

let valid_frame tmg =
  let payload = Ti.pattern 64 in
  let hdr =
    {
      Rpc.Proto.ptype = Rpc.Proto.Call;
      please_ack = false;
      no_frag_ack = false;
      secured = false;
      activity =
        {
          Rpc.Proto.Activity.caller_ip = Us.caller_endpoint.Rpc.Frames.ip;
          caller_space = 1;
          thread = 1;
        };
      seq = 1;
      server_space = 1;
      interface_id = Rpc.Idl.interface_id Ti.interface;
      proc_idx = Ti.null_idx;
      frag_idx = 0;
      frag_count = 1;
      data_len = 0;
      checksum = 0;
    }
  in
  Rpc.Frames.build tmg ~src:Us.caller_endpoint ~dst:Us.server_endpoint ~hdr ~payload
    ~payload_pos:0 ~payload_len:64

let mutants_of frame =
  let n = Bytes.length frame in
  let truncations =
    List.filter_map
      (fun len -> if len < n then Some (Bytes.sub frame 0 len) else None)
      [ 0; 7; 13; 14; 33; 34; 41; 42; 73; n - 1 ]
  in
  (* Flips beyond offset 14 sit under the IP or UDP checksum. *)
  let flips =
    List.map
      (fun off ->
        let b = Bytes.copy frame in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
        b)
      [ 14; 20; 25; 34; 40; 42; 60; n - 1 ]
  in
  truncations @ flips

let corpus tmg =
  let frame = valid_frame tmg in
  (frame, mutants_of frame)

let test_malformed_corpus () =
  let tmg = Us.timing () in
  let frame, mutants = corpus tmg in
  (match Rpc.Frames.parse tmg frame with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "the valid frame must parse: %s" e);
  List.iteri
    (fun i m ->
      match Rpc.Frames.parse tmg m with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "mutant %d (len %d) was accepted" i (Bytes.length m))
    mutants

(* {1 The same obligations over a 3-node fleet binding}

   The pairwise cases above pin the transport between two fixed
   machines.  A fleet binding goes further: the client resolves servers
   {e by name} through the binding service and the frames cross a
   store-and-forward switch.  Round trips, multi-fragment reassembly
   and the shared mutation corpus must all hold unchanged. *)

module Fc = Fleet.Cluster

(* A valid Call frame addressed from the fleet's client node to its
   first server, built with the same encoder the runtimes use — the
   fleet twin of [valid_frame]. *)
let fleet_frame cl =
  let machine i = (Fc.node cl i).Fc.nd_machine in
  let ep i =
    { Rpc.Frames.mac = Nub.Machine.mac (machine i); ip = Nub.Machine.ip (machine i) }
  in
  let payload = Ti.pattern 64 in
  let hdr =
    {
      Rpc.Proto.ptype = Rpc.Proto.Call;
      please_ack = false;
      no_frag_ack = false;
      secured = false;
      activity =
        {
          Rpc.Proto.Activity.caller_ip = (ep 2).Rpc.Frames.ip;
          caller_space = 1;
          thread = 1;
        };
      seq = 1;
      server_space = 1;
      interface_id = Rpc.Idl.interface_id Ti.interface;
      proc_idx = Ti.null_idx;
      frag_idx = 0;
      frag_count = 1;
      data_len = 0;
      checksum = 0;
    }
  in
  Rpc.Frames.build
    (Nub.Machine.timing (machine 0))
    ~src:(ep 2) ~dst:(ep 0) ~hdr ~payload ~payload_pos:0 ~payload_len:64

let test_fleet_binding () =
  let cl = Fc.create ~nodes:3 () in
  Fc.export_service cl ~node:0 ~service:"Alpha" ();
  Fc.export_service cl ~node:1 ~service:"Beta" ();
  let alpha = Fc.resolve cl ~node:2 ~service:"Alpha" () in
  let beta = Fc.resolve cl ~node:2 ~service:"Beta" () in
  Alcotest.(check string) "Alpha resolved to node0" "node0"
    alpha.Fleet.Nameserv.b_node_name;
  Alcotest.(check string) "Beta resolved to node1" "node1" beta.Fleet.Nameserv.b_node_name;
  Alcotest.(check bool) "fresh bindings are not stale" false
    (Fleet.Nameserv.is_stale cl.Fc.cl_names alpha
    || Fleet.Nameserv.is_stale cl.Fc.cl_names beta);
  let client = Fc.node cl 2 in
  let gate = Sim.Gate.create cl.Fc.cl_eng in
  let len = 6000 in
  Nub.Machine.spawn_thread client.Fc.nd_machine ~name:"fleet-conformance" (fun () ->
      Hw.Cpu_set.with_cpu (Nub.Machine.cpus client.Fc.nd_machine) (fun ctx ->
          let act = Rpc.Runtime.new_client client.Fc.nd_rt in
          for _ = 1 to 10 do
            ignore
              (Rpc.Runtime.call alpha.Fleet.Nameserv.b_rpc act ctx ~proc_idx:Ti.null_idx
                 ~args:[])
          done;
          match
            Rpc.Runtime.call beta.Fleet.Nameserv.b_rpc act ctx ~proc_idx:Ti.get_data_idx
              ~args:
                [ Rpc.Marshal.V_int (Int32.of_int len); Rpc.Marshal.V_bytes Bytes.empty ]
          with
          | [ _; Rpc.Marshal.V_bytes b ] | [ Rpc.Marshal.V_bytes b ] ->
            Alcotest.(check int) "multi-fragment result crossed the switch" len
              (Bytes.length b);
            Alcotest.(check bool) "reassembled bytes are the pattern" true
              (Bytes.equal b (Ti.pattern len))
          | _ -> Alcotest.fail "GetData over the fleet: unexpected result shape");
      Sim.Gate.open_ gate);
  Fc.run_until_quiet cl gate;
  Alcotest.(check int) "two name-service lookups" 2
    (Fleet.Nameserv.lookups cl.Fc.cl_names);
  Alcotest.(check bool) "the switch forwarded the conversation" true
    (Fleet.Topology.frames_forwarded cl.Fc.cl_switch > 0);
  Alcotest.(check int) "no unknown-MAC drops" 0
    (Fleet.Topology.frames_dropped_unknown cl.Fc.cl_switch);
  Alcotest.(check int) "no leaked fragment sinks" 0 (Fc.leaked_sinks cl);
  Alcotest.(check int) "no stuck callers" 0 (Fc.stuck_callers cl)

let test_fleet_malformed () =
  let cl = Fc.create ~nodes:3 () in
  Fc.export_service cl ~node:0 ~service:"Alpha" ();
  let binding = Fc.resolve cl ~node:2 ~service:"Alpha" () in
  let server = Fc.node cl 0 in
  let client = Fc.node cl 2 in
  let frame = fleet_frame cl in
  let mutants = mutants_of frame in
  let tmg = Nub.Machine.timing server.Fc.nd_machine in
  (match Rpc.Frames.parse tmg frame with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "the fleet frame must parse: %s" e);
  List.iteri
    (fun i m ->
      match Rpc.Frames.parse tmg m with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "fleet mutant %d (len %d) was accepted" i (Bytes.length m))
    mutants;
  (* And through the real receive path: every mutant long enough to be
     a legal Ethernet frame goes onto the client's wire, crosses the
     switch, and must be rejected by the server — which then still
     serves the valid call that follows them. *)
  let injectable =
    List.filter (fun m -> Bytes.length m >= Net.Ethernet.header_size) mutants
  in
  let gate = Sim.Gate.create cl.Fc.cl_eng in
  Nub.Machine.spawn_thread client.Fc.nd_machine ~name:"mutant-injector" (fun () ->
      List.iter
        (fun m ->
          Hw.Ether_link.transmit
            (Nub.Machine.link client.Fc.nd_machine)
            ~src:(Nub.Machine.mac client.Fc.nd_machine)
            (Bytes.copy m);
          Sim.Engine.delay cl.Fc.cl_eng (Sim.Time.ms 1))
        injectable;
      Hw.Cpu_set.with_cpu (Nub.Machine.cpus client.Fc.nd_machine) (fun ctx ->
          let act = Rpc.Runtime.new_client client.Fc.nd_rt in
          ignore
            (Rpc.Runtime.call binding.Fleet.Nameserv.b_rpc act ctx ~proc_idx:Ti.null_idx
               ~args:[]));
      Sim.Gate.open_ gate);
  Fc.run_until_quiet cl gate;
  Alcotest.(check bool) "mutants were injected" true (List.length injectable > 0);
  Alcotest.(check bool) "checksum-covered mutants rejected on the server" true
    (Rpc.Node.checksum_rejects server.Fc.nd_rpc > 0)

(* {1 The real loopback UDP socket backend} *)

let with_socket f =
  if not (Us.available ()) then Alcotest.skip ()
  else begin
    let intf = Ti.interface in
    match Us.start_server ~intf ~impls:(Realnet.Crossval.test_impls ()) () with
    | Error e -> Alcotest.failf "start_server: %s" e
    | Ok server ->
      Fun.protect ~finally:(fun () -> Us.stop_server server) @@ fun () -> f server intf
  end

let connect_exn ?capture ?send_filter ?retransmit_after ?max_retries server intf =
  match
    Us.connect ?capture ?send_filter ?retransmit_after ?max_retries
      ~port:(Us.server_port server) ~intf ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let test_socket_roundtrip () =
  with_socket @@ fun server intf ->
  let c = connect_exn server intf in
  Fun.protect ~finally:(fun () -> Us.close c) @@ fun () ->
  Alcotest.(check int) "Null returns no results" 0
    (List.length (Us.call c ~proc_idx:Ti.null_idx ~args:[]));
  (* MaxArg's 1442-byte marshalled payload crosses the 1440-byte
     fragment bound: a stop-and-wait fragmented *call*. *)
  let arg = Ti.pattern Ti.buffer_bytes in
  ignore (Us.call c ~proc_idx:Ti.max_arg_idx ~args:[ Rpc.Marshal.V_bytes arg ]);
  match Us.call c ~proc_idx:Ti.max_result_idx ~args:[ Rpc.Marshal.V_bytes Bytes.empty ] with
  | [ Rpc.Marshal.V_bytes b ] ->
    Alcotest.(check bool) "MaxResult returns the pattern" true (Bytes.equal b arg)
  | _ -> Alcotest.fail "MaxResult: unexpected result shape"

let test_socket_reassembly () =
  with_socket @@ fun server intf ->
  let c = connect_exn server intf in
  Fun.protect ~finally:(fun () -> Us.close c) @@ fun () ->
  let len = 6000 in
  match
    Us.call c ~proc_idx:Ti.get_data_idx
      ~args:[ Rpc.Marshal.V_int (Int32.of_int len); Rpc.Marshal.V_bytes Bytes.empty ]
  with
  | [ _; Rpc.Marshal.V_bytes b ] | [ Rpc.Marshal.V_bytes b ] ->
    Alcotest.(check int) "multi-fragment result reassembled to full length" len
      (Bytes.length b);
    Alcotest.(check bool) "reassembled bytes are the pattern" true
      (Bytes.equal b (Ti.pattern len))
  | _ -> Alcotest.fail "GetData: unexpected result shape"

let test_socket_retransmit () =
  with_socket @@ fun server intf ->
  let dropped = ref 0 in
  (* Drop the first two frames the client sends; the retransmission
     loop must push the call through anyway. *)
  let send_filter _ =
    if !dropped < 2 then begin
      incr dropped;
      false
    end
    else true
  in
  let c = connect_exn ~send_filter ~retransmit_after:0.02 ~max_retries:20 server intf in
  Fun.protect ~finally:(fun () -> Us.close c) @@ fun () ->
  ignore (Us.call c ~proc_idx:Ti.null_idx ~args:[]);
  Alcotest.(check int) "the filter really dropped frames" 2 !dropped

let test_socket_rejects_malformed () =
  with_socket @@ fun server intf ->
  let c = connect_exn server intf in
  Fun.protect ~finally:(fun () -> Us.close c) @@ fun () ->
  let _, mutants = corpus (Us.timing ()) in
  List.iter (fun m -> if Bytes.length m > 0 then Us.send_raw c m) mutants;
  let sent = List.length (List.filter (fun m -> Bytes.length m > 0) mutants) in
  (* The call's datagram arrives after the mutants (same flow, in
     order), so a completed call means they were all processed. *)
  ignore (Us.call c ~proc_idx:Ti.null_idx ~args:[]);
  Alcotest.(check int) "every malformed datagram was rejected" sent
    (Us.server_rejected server);
  ignore (Us.call c ~proc_idx:Ti.null_idx ~args:[])

let test_socket_wire_bytes () =
  (* The acceptance criterion: the first frame of a Null call on the
     loopback wire is byte-identical to what the simulated encoder
     produces for the same header. *)
  with_socket @@ fun server intf ->
  let first_tx = ref None in
  let capture ~dir b =
    match (dir, !first_tx) with `Tx, None -> first_tx := Some b | _ -> ()
  in
  let c = connect_exn ~capture server intf in
  Fun.protect ~finally:(fun () -> Us.close c) @@ fun () ->
  ignore (Us.call c ~proc_idx:Ti.null_idx ~args:[]);
  let tmg = Us.timing () in
  let hdr =
    {
      Rpc.Proto.ptype = Rpc.Proto.Call;
      please_ack = false;
      no_frag_ack = false;
      secured = false;
      activity =
        {
          Rpc.Proto.Activity.caller_ip = Us.caller_endpoint.Rpc.Frames.ip;
          caller_space = 1;
          thread = 1;
        };
      seq = 1;
      server_space = 1;
      interface_id = Rpc.Idl.interface_id intf;
      proc_idx = Ti.null_idx;
      frag_idx = 0;
      frag_count = 1;
      data_len = 0;
      checksum = 0;
    }
  in
  let expected =
    Rpc.Frames.build tmg ~src:Us.caller_endpoint ~dst:Us.server_endpoint ~hdr
      ~payload:Bytes.empty ~payload_pos:0 ~payload_len:0
  in
  match !first_tx with
  | None -> Alcotest.fail "nothing captured"
  | Some got ->
    Alcotest.(check int) "frame length" (Bytes.length expected) (Bytes.length got);
    Alcotest.(check bool) "on-wire bytes identical to the simulated encoder" true
      (Bytes.equal expected got)

let transport_pack () =
  (* The Transport.S instance dispatches a real call. *)
  with_socket @@ fun server intf ->
  let c = connect_exn server intf in
  Fun.protect ~finally:(fun () -> Us.close c) @@ fun () ->
  let module T = Us.Socket_transport in
  Alcotest.(check string) "kind" "socket" (Rpc.Transport.kind_to_string T.kind);
  Alcotest.(check string) "interface" "Test" (T.interface c).Rpc.Idl.intf_name;
  Alcotest.(check int) "invoke dispatches" 0
    (List.length (T.invoke c () () ~proc_idx:Ti.null_idx ~args:[]))

let () =
  let sim_cases =
    List.concat_map
      (fun (name, tr) ->
        [
          Alcotest.test_case (name ^ " round trip") `Quick (test_roundtrip tr);
          Alcotest.test_case (name ^ " fragment reassembly") `Quick (test_reassembly tr);
        ])
      sim_transports
  in
  Alcotest.run "transport"
    [
      ("conformance-sim", sim_cases @ [ Alcotest.test_case "sim retransmit under loss" `Quick test_retransmit_sim ]);
      ("malformed", [ Alcotest.test_case "shared corpus rejected" `Quick test_malformed_corpus ]);
      ( "conformance-fleet",
        [
          Alcotest.test_case "fleet binding round trips + reassembly" `Quick
            test_fleet_binding;
          Alcotest.test_case "fleet receive path rejects the corpus" `Quick
            test_fleet_malformed;
        ] );
      ( "conformance-socket",
        [
          Alcotest.test_case "socket round trip" `Quick test_socket_roundtrip;
          Alcotest.test_case "socket fragment reassembly" `Quick test_socket_reassembly;
          Alcotest.test_case "socket retransmit under loss" `Quick test_socket_retransmit;
          Alcotest.test_case "socket rejects malformed frames" `Quick
            test_socket_rejects_malformed;
          Alcotest.test_case "socket wire bytes = simulated bytes" `Quick
            test_socket_wire_bytes;
          Alcotest.test_case "Transport.S instance" `Quick transport_pack;
        ] );
    ]
