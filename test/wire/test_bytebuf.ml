module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

let test_write_read_roundtrip () =
  let w = W.create 64 in
  W.u8 w 0xab;
  W.u16 w 0x1234;
  W.u32 w 0xdeadbeefl;
  W.string w "hello";
  W.zeros w 3;
  Alcotest.(check int) "length" (1 + 2 + 4 + 5 + 3) (W.length w);
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check int) "u8" 0xab (R.u8 r);
  Alcotest.(check int) "u16" 0x1234 (R.u16 r);
  Alcotest.(check int32) "u32" 0xdeadbeefl (R.u32 r);
  Alcotest.(check string) "string" "hello" (R.string r 5);
  Alcotest.(check string) "zeros" "\000\000\000" (R.string r 3);
  R.expect_end r

let test_big_endian_layout () =
  let w = W.create 8 in
  W.u16 w 0x0102;
  W.u32 w 0x03040506l;
  Alcotest.(check string) "network byte order" "\x01\x02\x03\x04\x05\x06"
    (Bytes.to_string (W.contents w))

let test_patch () =
  let w = W.create 8 in
  W.u16 w 0;
  W.u16 w 0xaaaa;
  W.patch_u16 w ~pos:0 0x4242;
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check int) "patched" 0x4242 (R.u16 r);
  Alcotest.(check int) "untouched" 0xaaaa (R.u16 r);
  Alcotest.(check bool) "patch past end rejected" true
    (try
       W.patch_u16 w ~pos:3 0;
       false
     with Invalid_argument _ -> true)

let test_overflow () =
  let w = W.create 2 in
  W.u16 w 7;
  Alcotest.(check bool) "writer overflow" true
    (try
       W.u8 w 1;
       false
     with Wire.Bytebuf.Overflow _ -> true);
  let r = R.of_bytes (Bytes.create 1) in
  Alcotest.(check bool) "reader overflow" true
    (try
       ignore (R.u16 r);
       false
     with Wire.Bytebuf.Overflow _ -> true)

let test_ranges () =
  Alcotest.(check bool) "u8 range" true
    (try
       W.u8 (W.create 4) 256;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "u16 range" true
    (try
       W.u16 (W.create 4) (-1);
       false
     with Invalid_argument _ -> true)

let test_reader_window () =
  let data = Bytes.of_string "abcdef" in
  let r = R.of_bytes ~pos:2 ~len:3 data in
  Alcotest.(check int) "remaining" 3 (R.remaining r);
  Alcotest.(check string) "windowed" "cde" (R.string r 3);
  Alcotest.(check int) "position relative" 3 (R.position r);
  Alcotest.(check bool) "expect_end on trailing" true
    (let r2 = R.of_bytes data in
     try
       R.expect_end r2;
       false
     with Wire.Bytebuf.Overflow _ -> true)

let test_sub_and_skip () =
  let w = W.create 16 in
  W.sub w (Bytes.of_string "xxpayloadxx") ~pos:2 ~len:7;
  let r = R.of_bytes (W.contents w) in
  R.skip r 2;
  Alcotest.(check string) "sub + skip" "yload" (R.string r 5)

let prop_roundtrip =
  QCheck.Test.make ~name:"u16 roundtrip" ~count:500
    QCheck.(int_bound 0xffff)
    (fun v ->
      let w = W.create 2 in
      W.u16 w v;
      R.u16 (R.of_bytes (W.contents w)) = v)

(* {1 Whole-script roundtrip property} *)

type op = Op_u8 of int | Op_u16 of int | Op_u32 of int32 | Op_str of string

let op_size = function
  | Op_u8 _ -> 1
  | Op_u16 _ -> 2
  | Op_u32 _ -> 4
  | Op_str s -> String.length s

let print_op = function
  | Op_u8 v -> Printf.sprintf "u8 %#x" v
  | Op_u16 v -> Printf.sprintf "u16 %#x" v
  | Op_u32 v -> Printf.sprintf "u32 %#lx" v
  | Op_str s -> Printf.sprintf "str %S" s

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Op_u8 v) (int_bound 0xff);
        map (fun v -> Op_u16 v) (int_bound 0xffff);
        map (fun v -> Op_u32 (Int32.logxor (Int32.of_int v) 0x5a5a5a5al)) (int_bound 0x3fffffff);
        map (fun s -> Op_str s) (string_size (int_bound 12));
      ])

let arb_script =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_bound 24) gen_op)

let prop_script_roundtrip =
  QCheck.Test.make ~name:"any write script reads back verbatim" ~count:300 arb_script
    (fun ops ->
      let total = List.fold_left (fun a op -> a + op_size op) 0 ops in
      let w = W.create total in
      List.iter
        (function
          | Op_u8 v -> W.u8 w v
          | Op_u16 v -> W.u16 w v
          | Op_u32 v -> W.u32 w v
          | Op_str s -> W.string w s)
        ops;
      let r = R.of_bytes (W.contents w) in
      let ok =
        List.for_all
          (function
            | Op_u8 v -> R.u8 r = v
            | Op_u16 v -> R.u16 r = v
            | Op_u32 v -> R.u32 r = v
            | Op_str s -> R.string r (String.length s) = s)
          ops
      in
      R.expect_end r;
      ok && W.length w = total && R.position r = total)

(* {1 Non-copying views and sub-readers} *)

module V = Wire.Bytebuf.View

let test_view_basics () =
  let data = Bytes.of_string "abcdefgh" in
  let v = V.of_bytes ~pos:2 ~len:4 data in
  Alcotest.(check int) "length" 4 (V.length v);
  Alcotest.(check string) "to_string" "cdef" (V.to_string v);
  Alcotest.(check string) "to_bytes copies content" "cdef"
    (Bytes.to_string (V.to_bytes v));
  Alcotest.(check char) "get" 'e' (V.get v 2);
  Alcotest.(check bool) "equal_bytes" true (V.equal_bytes v (Bytes.of_string "cdef"));
  Alcotest.(check bool) "equal_bytes mismatch" false
    (V.equal_bytes v (Bytes.of_string "cdeX"));
  Alcotest.(check int) "empty view" 0 (V.length V.empty)

let test_view_is_zero_copy () =
  (* A view aliases its buffer: mutating the buffer shows through.
     Production frames are never mutated after delivery, but the test
     proves no copy was taken. *)
  let data = Bytes.of_string "abcdefgh" in
  let v = V.of_bytes ~pos:2 ~len:4 data in
  Alcotest.(check bool) "shares buffer" true (V.buffer v == data);
  Alcotest.(check int) "offset" 2 (V.offset v);
  Bytes.set data 3 'X';
  Alcotest.(check string) "alias sees mutation" "cXef" (V.to_string v);
  (* to_bytes, by contrast, is an independent copy. *)
  let copy = V.to_bytes v in
  Bytes.set data 4 'Y';
  Alcotest.(check string) "copy unaffected" "cXef" (Bytes.to_string copy)

let test_view_sub () =
  let v = V.of_bytes ~pos:1 ~len:6 (Bytes.of_string "_abcdef_") in
  let s = V.sub v ~pos:2 ~len:3 in
  Alcotest.(check string) "nested window" "cde" (V.to_string s);
  Alcotest.(check bool) "sub out of range" true
    (try
       ignore (V.sub v ~pos:4 ~len:3);
       false
     with Invalid_argument _ -> true)

let test_view_reassembly () =
  (* add_to_buffer is the single copy fragment reassembly performs. *)
  let buf = Buffer.create 16 in
  V.add_to_buffer (V.of_bytes ~pos:0 ~len:3 (Bytes.of_string "abcXX")) buf;
  V.add_to_buffer (V.of_bytes ~pos:2 ~len:3 (Bytes.of_string "XXdef")) buf;
  Alcotest.(check string) "reassembled" "abcdef" (Buffer.contents buf);
  let dst = Bytes.make 6 '.' in
  V.blit (V.of_bytes ~pos:1 ~len:4 (Bytes.of_string "_wxyz_")) ~dst ~dst_pos:1;
  Alcotest.(check string) "blit" ".wxyz." (Bytes.to_string dst)

let test_reader_view_and_of_view () =
  let r = R.of_bytes (Bytes.of_string "aabbccdd") in
  R.skip r 2;
  let v = R.view r 4 in
  Alcotest.(check string) "view consumes" "bbcc" (V.to_string v);
  Alcotest.(check int) "parent advanced" 2 (R.remaining r);
  (* of_view gives an independent cursor each time. *)
  let r1 = R.of_view v and r2 = R.of_view v in
  Alcotest.(check string) "cursor 1" "bbcc" (R.string r1 4);
  Alcotest.(check string) "cursor 2 independent" "bb" (R.string r2 2)

let test_sub_reader_hard_bound () =
  (* The sub-reader's window is a hard bound even though the parent has
     more data after it. *)
  let r = R.of_bytes (Bytes.of_string "aabbccddee") in
  R.skip r 2;
  let sr = R.sub_reader r 4 in
  Alcotest.(check int) "parent skipped past window" 4 (R.remaining r);
  Alcotest.(check string) "sub-reader content" "bbcc" (R.string sr 4);
  Alcotest.(check bool) "overflow past window" true
    (try
       ignore (R.u8 sr);
       false
     with Wire.Bytebuf.Overflow _ -> true);
  (* expect_end succeeds exactly at the window boundary. *)
  R.expect_end sr

let arb_window =
  (* A buffer plus a window (pos, len) inside it. *)
  QCheck.make
    ~print:(fun (s, pos, len) -> Printf.sprintf "(%S, pos=%d, len=%d)" s pos len)
    QCheck.Gen.(
      string_size (int_range 1 64) >>= fun s ->
      int_bound (String.length s) >>= fun pos ->
      int_bound (String.length s - pos) >>= fun len -> return (s, pos, len))

let prop_view_equals_bytes_sub =
  QCheck.Test.make ~name:"view contents = Bytes.sub" ~count:500 arb_window
    (fun (s, pos, len) ->
      let b = Bytes.of_string s in
      let v = V.of_bytes ~pos ~len b in
      Bytes.equal (V.to_bytes v) (Bytes.sub b pos len)
      && V.equal_bytes v (Bytes.sub b pos len)
      && V.length v = len)

let prop_sub_reader_confined =
  QCheck.Test.make ~name:"sub_reader confined to its window" ~count:500 arb_window
    (fun (s, pos, len) ->
      let r = R.of_bytes (Bytes.of_string s) in
      R.skip r pos;
      let sr = R.sub_reader r len in
      (* Reading exactly [len] bytes succeeds and matches the source... *)
      let got = R.string sr len in
      let confined =
        (* ...and one more byte always overflows, parent data or not. *)
        try
          ignore (R.u8 sr);
          false
        with Wire.Bytebuf.Overflow _ -> true
      in
      got = String.sub s pos len
      && confined
      && R.remaining r = String.length s - pos - len)

let suite =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "big-endian layout" `Quick test_big_endian_layout;
    Alcotest.test_case "patch_u16" `Quick test_patch;
    Alcotest.test_case "overflow" `Quick test_overflow;
    Alcotest.test_case "range validation" `Quick test_ranges;
    Alcotest.test_case "reader window" `Quick test_reader_window;
    Alcotest.test_case "sub and skip" `Quick test_sub_and_skip;
    Alcotest.test_case "view basics" `Quick test_view_basics;
    Alcotest.test_case "view is zero-copy" `Quick test_view_is_zero_copy;
    Alcotest.test_case "view sub-window" `Quick test_view_sub;
    Alcotest.test_case "view reassembly helpers" `Quick test_view_reassembly;
    Alcotest.test_case "reader view / of_view" `Quick test_reader_view_and_of_view;
    Alcotest.test_case "sub_reader hard bound" `Quick test_sub_reader_hard_bound;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_script_roundtrip;
    QCheck_alcotest.to_alcotest prop_view_equals_bytes_sub;
    QCheck_alcotest.to_alcotest prop_sub_reader_confined;
  ]
