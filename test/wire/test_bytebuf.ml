module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader

let test_write_read_roundtrip () =
  let w = W.create 64 in
  W.u8 w 0xab;
  W.u16 w 0x1234;
  W.u32 w 0xdeadbeefl;
  W.string w "hello";
  W.zeros w 3;
  Alcotest.(check int) "length" (1 + 2 + 4 + 5 + 3) (W.length w);
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check int) "u8" 0xab (R.u8 r);
  Alcotest.(check int) "u16" 0x1234 (R.u16 r);
  Alcotest.(check int32) "u32" 0xdeadbeefl (R.u32 r);
  Alcotest.(check string) "string" "hello" (R.string r 5);
  Alcotest.(check string) "zeros" "\000\000\000" (R.string r 3);
  R.expect_end r

let test_big_endian_layout () =
  let w = W.create 8 in
  W.u16 w 0x0102;
  W.u32 w 0x03040506l;
  Alcotest.(check string) "network byte order" "\x01\x02\x03\x04\x05\x06"
    (Bytes.to_string (W.contents w))

let test_patch () =
  let w = W.create 8 in
  W.u16 w 0;
  W.u16 w 0xaaaa;
  W.patch_u16 w ~pos:0 0x4242;
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check int) "patched" 0x4242 (R.u16 r);
  Alcotest.(check int) "untouched" 0xaaaa (R.u16 r);
  Alcotest.(check bool) "patch past end rejected" true
    (try
       W.patch_u16 w ~pos:3 0;
       false
     with Invalid_argument _ -> true)

let test_overflow () =
  let w = W.create 2 in
  W.u16 w 7;
  Alcotest.(check bool) "writer overflow" true
    (try
       W.u8 w 1;
       false
     with Wire.Bytebuf.Overflow _ -> true);
  let r = R.of_bytes (Bytes.create 1) in
  Alcotest.(check bool) "reader overflow" true
    (try
       ignore (R.u16 r);
       false
     with Wire.Bytebuf.Overflow _ -> true)

let test_ranges () =
  Alcotest.(check bool) "u8 range" true
    (try
       W.u8 (W.create 4) 256;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "u16 range" true
    (try
       W.u16 (W.create 4) (-1);
       false
     with Invalid_argument _ -> true)

let test_reader_window () =
  let data = Bytes.of_string "abcdef" in
  let r = R.of_bytes ~pos:2 ~len:3 data in
  Alcotest.(check int) "remaining" 3 (R.remaining r);
  Alcotest.(check string) "windowed" "cde" (R.string r 3);
  Alcotest.(check int) "position relative" 3 (R.position r);
  Alcotest.(check bool) "expect_end on trailing" true
    (let r2 = R.of_bytes data in
     try
       R.expect_end r2;
       false
     with Wire.Bytebuf.Overflow _ -> true)

let test_sub_and_skip () =
  let w = W.create 16 in
  W.sub w (Bytes.of_string "xxpayloadxx") ~pos:2 ~len:7;
  let r = R.of_bytes (W.contents w) in
  R.skip r 2;
  Alcotest.(check string) "sub + skip" "yload" (R.string r 5)

let prop_roundtrip =
  QCheck.Test.make ~name:"u16 roundtrip" ~count:500
    QCheck.(int_bound 0xffff)
    (fun v ->
      let w = W.create 2 in
      W.u16 w v;
      R.u16 (R.of_bytes (W.contents w)) = v)

(* {1 Whole-script roundtrip property} *)

type op = Op_u8 of int | Op_u16 of int | Op_u32 of int32 | Op_str of string

let op_size = function
  | Op_u8 _ -> 1
  | Op_u16 _ -> 2
  | Op_u32 _ -> 4
  | Op_str s -> String.length s

let print_op = function
  | Op_u8 v -> Printf.sprintf "u8 %#x" v
  | Op_u16 v -> Printf.sprintf "u16 %#x" v
  | Op_u32 v -> Printf.sprintf "u32 %#lx" v
  | Op_str s -> Printf.sprintf "str %S" s

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Op_u8 v) (int_bound 0xff);
        map (fun v -> Op_u16 v) (int_bound 0xffff);
        map (fun v -> Op_u32 (Int32.logxor (Int32.of_int v) 0x5a5a5a5al)) (int_bound 0x3fffffff);
        map (fun s -> Op_str s) (string_size (int_bound 12));
      ])

let arb_script =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_bound 24) gen_op)

let prop_script_roundtrip =
  QCheck.Test.make ~name:"any write script reads back verbatim" ~count:300 arb_script
    (fun ops ->
      let total = List.fold_left (fun a op -> a + op_size op) 0 ops in
      let w = W.create total in
      List.iter
        (function
          | Op_u8 v -> W.u8 w v
          | Op_u16 v -> W.u16 w v
          | Op_u32 v -> W.u32 w v
          | Op_str s -> W.string w s)
        ops;
      let r = R.of_bytes (W.contents w) in
      let ok =
        List.for_all
          (function
            | Op_u8 v -> R.u8 r = v
            | Op_u16 v -> R.u16 r = v
            | Op_u32 v -> R.u32 r = v
            | Op_str s -> R.string r (String.length s) = s)
          ops
      in
      R.expect_end r;
      ok && W.length w = total && R.position r = total)

let suite =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "big-endian layout" `Quick test_big_endian_layout;
    Alcotest.test_case "patch_u16" `Quick test_patch;
    Alcotest.test_case "overflow" `Quick test_overflow;
    Alcotest.test_case "range validation" `Quick test_ranges;
    Alcotest.test_case "reader window" `Quick test_reader_window;
    Alcotest.test_case "sub and skip" `Quick test_sub_and_skip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_script_roundtrip;
  ]
