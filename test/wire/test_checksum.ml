module C = Wire.Checksum

(* RFC 1071 worked example: the sum of 00-01 f2-03 f4-f5 f6-f7 is
   ddf2 before complement, so the checksum is 220d. *)
let test_rfc1071_example () =
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "running sum" 0xddf2 (C.sum b ~pos:0 ~len:8);
  Alcotest.(check int) "checksum" 0x220d (C.checksum b ~pos:0 ~len:8)

let test_odd_length () =
  (* The trailing odd byte pads with zero on the right (high octet). *)
  let b = Bytes.of_string "\x01\x02\x03" in
  Alcotest.(check int) "odd tail" (0x0102 + 0x0300) (C.sum b ~pos:0 ~len:3)

let test_zero_length () =
  Alcotest.(check int) "empty sum" 0 (C.sum Bytes.empty ~pos:0 ~len:0);
  Alcotest.(check int) "empty checksum" 0xffff (C.checksum Bytes.empty ~pos:0 ~len:0)

let test_init_composes () =
  let b = Bytes.of_string "\x12\x34\x56\x78\x9a\xbc" in
  let whole = C.sum b ~pos:0 ~len:6 in
  let part1 = C.sum b ~pos:0 ~len:4 in
  let part2 = C.sum ~init:part1 b ~pos:4 ~len:2 in
  Alcotest.(check int) "split sum equals whole" whole part2

let test_bad_range () =
  Alcotest.(check bool) "range checked" true
    (try
       ignore (C.sum (Bytes.create 4) ~pos:2 ~len:4);
       false
     with Invalid_argument _ -> true)

let embed_checksum data ~at =
  let b = Bytes.copy data in
  Bytes.set_uint16_be b at 0;
  let cks = C.checksum b ~pos:0 ~len:(Bytes.length b) in
  Bytes.set_uint16_be b at cks;
  b

let gen_packet =
  QCheck.Gen.(
    let* n = int_range 2 256 in
    let* n = return (n land lnot 1) in
    (* even length with room for the field *)
    let* bytes_list = list_size (return n) (int_bound 255) in
    return (Bytes.init n (fun i -> Char.chr (List.nth bytes_list i))))

let arb_packet = QCheck.make ~print:(fun b -> Wire.Hexdump.to_string b) gen_packet

let prop_verify_of_valid =
  QCheck.Test.make ~name:"verify accepts correctly-checksummed data" ~count:200 arb_packet
    (fun data ->
      let b = embed_checksum data ~at:0 in
      C.verify b ~pos:0 ~len:(Bytes.length b))

let prop_detects_single_flip =
  QCheck.Test.make ~name:"verify rejects any single-byte corruption" ~count:200
    QCheck.(pair arb_packet (int_bound 10_000))
    (fun (data, r) ->
      let b = embed_checksum data ~at:0 in
      let n = Bytes.length b in
      let i = r mod n in
      let old = Char.code (Bytes.get b i) in
      (* A single-byte change alters the ones-complement sum by at most
         0xff00 in magnitude, which is never a multiple of 0xffff, so
         every single-byte corruption must be detected. *)
      let flip = (old + 1 + (r mod 255)) land 0xff in
      QCheck.assume (flip <> old);
      Bytes.set b i (Char.chr flip);
      not (C.verify b ~pos:0 ~len:n))

let prop_finish_idempotent_range =
  QCheck.Test.make ~name:"checksum always fits 16 bits" ~count:200 arb_packet (fun b ->
      let c = C.checksum b ~pos:0 ~len:(Bytes.length b) in
      c >= 0 && c <= 0xffff)

let gen_any_bytes =
  (* Unlike [gen_packet], odd lengths and the empty buffer included —
     the identities below must survive the odd-tail fold. *)
  QCheck.Gen.(
    let* n = int_range 0 257 in
    let* bytes_list = list_size (return n) (int_bound 255) in
    return (Bytes.init n (fun i -> Char.chr (List.nth bytes_list i))))

let arb_any_bytes = QCheck.make ~print:(fun b -> Wire.Hexdump.to_string b) gen_any_bytes

let prop_zero_padding_invariant =
  (* RFC 1071: the sum of a message is unchanged by appended zero bytes
     (an odd tail folds as the high octet, so the first pad byte
     completes that word with a zero low octet). *)
  QCheck.Test.make ~name:"appending zero bytes never changes the sum" ~count:300
    QCheck.(pair arb_any_bytes (int_bound 8))
    (fun (b, pad) ->
      let n = Bytes.length b in
      let padded = Bytes.make (n + pad) '\x00' in
      Bytes.blit b 0 padded 0 n;
      C.sum padded ~pos:0 ~len:(n + pad) = C.sum b ~pos:0 ~len:n
      && C.checksum padded ~pos:0 ~len:(n + pad) = C.checksum b ~pos:0 ~len:n)

let prop_incremental_equals_full =
  (* Incremental update: summing a prefix and threading it through
     [~init] for the suffix equals one pass over the whole range, for
     any even split point (the stack sums pseudo-header and payload in
     exactly this way). *)
  QCheck.Test.make ~name:"incremental sum equals full recompute" ~count:300
    QCheck.(pair arb_any_bytes (int_bound 10_000))
    (fun (b, r) ->
      let n = Bytes.length b in
      let split = 2 * (r mod ((n / 2) + 1)) in
      let prefix = C.sum b ~pos:0 ~len:split in
      C.sum ~init:prefix b ~pos:split ~len:(n - split) = C.sum b ~pos:0 ~len:n)

let suite =
  [
    Alcotest.test_case "RFC 1071 example" `Quick test_rfc1071_example;
    Alcotest.test_case "odd length" `Quick test_odd_length;
    Alcotest.test_case "zero length" `Quick test_zero_length;
    Alcotest.test_case "init composes" `Quick test_init_composes;
    Alcotest.test_case "bad range" `Quick test_bad_range;
    QCheck_alcotest.to_alcotest prop_verify_of_valid;
    QCheck_alcotest.to_alcotest prop_detects_single_flip;
    QCheck_alcotest.to_alcotest prop_finish_idempotent_range;
    QCheck_alcotest.to_alcotest prop_zero_padding_invariant;
    QCheck_alcotest.to_alcotest prop_incremental_equals_full;
  ]
