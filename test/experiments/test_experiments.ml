(* Reproduction regression tests: every experiment must run, and the
   headline values must stay inside calibrated bands around the paper's
   numbers.  Bands are deliberately generous where the runs use reduced
   call counts; the single-call and cost-model checks are tight. *)

module Time = Sim.Time

let within name ~paper ~tolerance measured =
  let delta = Float.abs (measured -. paper) /. paper in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3g within %.0f%% of %.3g" name measured (tolerance *. 100.) paper)
    true (delta <= tolerance)

(* {1 Table I} *)

let test_table1_shape () =
  let rows = Experiments.Table1.run ~calls:1500 () in
  let row n = List.nth rows (n - 1) in
  within "1-thread Null secs" ~paper:26.61 ~tolerance:0.08 (row 1).Experiments.Table1.null_seconds;
  within "1-thread MaxResult Mbit/s" ~paper:1.82 ~tolerance:0.10
    (row 1).Experiments.Table1.maxr_mbps;
  within "7-thread Null RPC/s" ~paper:741. ~tolerance:0.15 (row 7).Experiments.Table1.null_rps;
  within "4-thread MaxResult Mbit/s" ~paper:4.65 ~tolerance:0.10
    (row 4).Experiments.Table1.maxr_mbps;
  (* Monotone saturation shape. *)
  Alcotest.(check bool) "Null rate grows 1->4 threads" true
    ((row 4).Experiments.Table1.null_rps > (row 1).Experiments.Table1.null_rps *. 1.4);
  Alcotest.(check bool) "MaxResult saturates (4 ~= 8 threads)" true
    (Float.abs ((row 8).Experiments.Table1.maxr_mbps -. (row 4).Experiments.Table1.maxr_mbps)
    < 0.6)

let test_cpu_utilization () =
  let note = Experiments.Table1.cpu_utilization_note ~calls:1200 () in
  Alcotest.(check bool) "utilization note mentions caller" true
    (String.length note > 0
    &&
    let has_sub s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    has_sub note "caller")

(* {1 Tables II-V} *)

let check_rows name rows ~tolerance =
  List.iter
    (fun r ->
      within
        (name ^ " " ^ r.Experiments.Marshalling.label)
        ~paper:r.Experiments.Marshalling.paper_us ~tolerance
        r.Experiments.Marshalling.measured_us)
    rows

let test_marshalling () =
  check_rows "table2" (Experiments.Marshalling.table2 ()) ~tolerance:0.05;
  check_rows "table3" (Experiments.Marshalling.table3 ()) ~tolerance:0.05;
  check_rows "table4" (Experiments.Marshalling.table4 ()) ~tolerance:0.05;
  check_rows "table5" (Experiments.Marshalling.table5 ()) ~tolerance:0.05

let test_marshalling_missing_scenario () =
  (* A sweep/table mismatch must fail with the scenario's name, not a
     bare Not_found. *)
  match Experiments.Marshalling.increment "no-such-scenario" with
  | _ -> Alcotest.fail "expected Invalid_argument for an unmeasured scenario"
  | exception Invalid_argument msg ->
    let has_sub s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error names the scenario: %s" msg)
      true
      (has_sub msg "no-such-scenario");
    Alcotest.(check bool) "error lists the measured scenarios" true (has_sub msg "null")

(* {1 Tables VI-VIII} *)

let test_table6 () =
  let steps = Experiments.Breakdown.table6 () in
  Alcotest.(check int) "14 steps" 14 (List.length steps);
  List.iter
    (fun s ->
      within
        ("74B " ^ s.Experiments.Breakdown.step_label)
        ~paper:s.Experiments.Breakdown.paper_small_us ~tolerance:0.05
        s.Experiments.Breakdown.measured_small_us;
      match s.Experiments.Breakdown.paper_large_us with
      | Some paper ->
        within
          ("1514B " ^ s.Experiments.Breakdown.step_label)
          ~paper ~tolerance:0.05 s.Experiments.Breakdown.measured_large_us
      | None -> ())
    steps

let test_table7 () =
  let steps = Experiments.Breakdown.table7 () in
  List.iter
    (fun s ->
      within s.Experiments.Breakdown.rt_label ~paper:s.Experiments.Breakdown.rt_paper_us
        ~tolerance:0.05 s.Experiments.Breakdown.rt_measured_us)
    steps;
  let total = List.fold_left (fun a s -> a +. s.Experiments.Breakdown.rt_measured_us) 0. steps in
  within "Table VII total" ~paper:606. ~tolerance:0.03 total

let test_table8 () =
  match Experiments.Breakdown.table8 () with
  | [ null_acct; maxr_acct ] ->
    within "Null measured latency" ~paper:2645. ~tolerance:0.05
      null_acct.Experiments.Breakdown.measured_elapsed_us;
    within "MaxResult measured latency" ~paper:6347. ~tolerance:0.06
      maxr_acct.Experiments.Breakdown.measured_elapsed_us;
    (* Calculation accounts for the measurement to within several
       percent — the paper's own Null gap is 5% (2514 calculated vs
       2645 measured); ours is the same structural gap plus the timed
       caller loop. *)
    within "Null calc vs elapsed" ~paper:null_acct.Experiments.Breakdown.measured_elapsed_us
      ~tolerance:0.08 null_acct.Experiments.Breakdown.measured_calc_us;
    within "MaxResult calc vs elapsed"
      ~paper:maxr_acct.Experiments.Breakdown.measured_elapsed_us ~tolerance:0.06
      maxr_acct.Experiments.Breakdown.measured_calc_us
  | _ -> Alcotest.fail "expected two accounting rows"

(* {1 Table IX} *)

let test_table9 () =
  let rows = Experiments.Table9.run () in
  Alcotest.(check int) "three versions" 3 (List.length rows);
  List.iter
    (fun r ->
      within
        ("interrupt " ^ r.Experiments.Table9.version)
        ~paper:r.Experiments.Table9.paper_us ~tolerance:0.02 r.Experiments.Table9.measured_us)
    rows;
  (* Assembly beats original Modula-2+ by ~1.16 ms of Null latency. *)
  let lat v =
    (List.find (fun r -> r.Experiments.Table9.version = v) rows).Experiments.Table9.null_latency_us
  in
  within "Modula-2+ latency penalty" ~paper:1162. ~tolerance:0.15
    (lat "Original Modula-2+" -. lat "Assembly language")

(* {1 Tables X and XI} *)

let test_table10 () =
  let rows = Experiments.Processors.table10 ~calls:400 () in
  (* The simulator does not reproduce the paper's gentle creep at 2-4
     processors (likely real-machine memory/scheduler contention), so
     intermediate rows get a wider band; the anchor rows are tight. *)
  List.iter
    (fun r ->
      let key =
        (r.Experiments.Processors.caller_cpus, r.Experiments.Processors.server_cpus)
      in
      let tolerance = if List.mem key [ (5, 5); (1, 5); (1, 1) ] then 0.10 else 0.15 in
      within
        (Printf.sprintf "Null %dx%d" (fst key) (snd key))
        ~paper:r.Experiments.Processors.paper_sec_per_1000 ~tolerance
        r.Experiments.Processors.measured_sec_per_1000)
    rows;
  (* And the headline: a uniprocessor pair is ~75% slower than 5x5. *)
  let get c s =
    (List.find
       (fun r ->
         r.Experiments.Processors.caller_cpus = c && r.Experiments.Processors.server_cpus = s)
       rows)
      .Experiments.Processors.measured_sec_per_1000
  in
  within "uniprocessor slowdown factor" ~paper:1.79 ~tolerance:0.10 (get 1 1 /. get 5 5)

let test_table11 () =
  let rows = Experiments.Processors.table11 ~calls_per_thread:300 () in
  (* Check the saturated points of each configuration. *)
  let sat c s =
    let r =
      List.find
        (fun r ->
          r.Experiments.Processors.t_caller_cpus = c
          && r.Experiments.Processors.t_server_cpus = s
          && r.Experiments.Processors.t_threads = 5)
        rows
    in
    r.Experiments.Processors.measured_mbps
  in
  within "5x5 saturation" ~paper:4.7 ~tolerance:0.10 (sat 5 5);
  within "1x5 saturation" ~paper:2.7 ~tolerance:0.25 (sat 1 5);
  within "1x1 saturation" ~paper:2.5 ~tolerance:0.30 (sat 1 1);
  Alcotest.(check bool) "uniprocessor roughly half of multiprocessor" true
    (sat 1 1 < 0.75 *. sat 5 5)

(* {1 Table XII} *)

let test_table12 () =
  let rows = Experiments.Table12.run ~quick:true () in
  Alcotest.(check int) "7 rows" 7 (List.length rows);
  let firefly = List.filter (fun r -> r.Experiments.Table12.measured) rows in
  Alcotest.(check int) "two measured rows" 2 (List.length firefly);
  match firefly with
  | [ uni; multi ] ->
    within "uniprocessor latency ms" ~paper:4.8 ~tolerance:0.10 uni.Experiments.Table12.latency_ms;
    within "multiprocessor latency ms" ~paper:2.7 ~tolerance:0.10
      multi.Experiments.Table12.latency_ms;
    within "multiprocessor throughput" ~paper:4.6 ~tolerance:0.10
      multi.Experiments.Table12.throughput_mbps
  | _ -> Alcotest.fail "expected uni and multi rows"

(* {1 Improvements (§4.2)} *)

let test_improvements () =
  let rows = Experiments.Improvements.run () in
  Alcotest.(check int) "8 changes" 8 (List.length rows);
  let find prefix =
    List.find
      (fun r ->
        String.length r.Experiments.Improvements.change >= String.length prefix
        && String.sub r.Experiments.Improvements.change 0 (String.length prefix) = prefix)
      rows
  in
  let check prefix ~null_tol ~maxr_tol =
    let r = find prefix in
    within (prefix ^ " Null saving") ~paper:r.Experiments.Improvements.paper_null_saving_us
      ~tolerance:null_tol r.Experiments.Improvements.sim_null_saving_us;
    within (prefix ^ " MaxResult saving") ~paper:r.Experiments.Improvements.paper_maxr_saving_us
      ~tolerance:maxr_tol r.Experiments.Improvements.sim_maxr_saving_us
  in
  check "4.2.2" ~null_tol:0.10 ~maxr_tol:0.05;
  check "4.2.3" ~null_tol:0.10 ~maxr_tol:0.06;
  check "4.2.4" ~null_tol:0.05 ~maxr_tol:0.05;
  check "4.2.5" ~null_tol:0.05 ~maxr_tol:0.05;
  check "4.2.7" ~null_tol:0.05 ~maxr_tol:0.10;
  check "4.2.8" ~null_tol:0.05 ~maxr_tol:0.05;
  (* controller overlap and raw-Ethernet deviate by design (the model
     overlaps less than "maximum conceivable"; raw mode also shrinks
     packets); just check the direction and rough magnitude. *)
  let r421 = find "4.2.1" in
  Alcotest.(check bool) "4.2.1 saves substantially on MaxResult" true
    (r421.Experiments.Improvements.sim_maxr_saving_us > 1400.);
  let r426 = find "4.2.6" in
  Alcotest.(check bool) "4.2.6 saves on Null" true
    (r426.Experiments.Improvements.sim_null_saving_us > 50.)

let test_improvements_sign_consistency () =
  (* Every §4.2 change the paper estimates as a saving must also come
     out as a saving (not a regression) when actually re-simulated —
     catching a config toggle that silently starts costing time. *)
  List.iter
    (fun r ->
      let same_sign name paper sim =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: sim %.0fus agrees in sign with paper %.0fus"
             r.Experiments.Improvements.change name sim paper)
          true
          ((paper > 0. && sim > 0.) || (paper < 0. && sim < 0.) || paper = 0.)
      in
      same_sign "Null" r.Experiments.Improvements.paper_null_saving_us
        r.Experiments.Improvements.sim_null_saving_us;
      same_sign "MaxResult" r.Experiments.Improvements.paper_maxr_saving_us
        r.Experiments.Improvements.sim_maxr_saving_us)
    (Experiments.Improvements.run ())

let test_improvements_deterministic () =
  (* The whole experiment is seeded: two runs must agree field-for-field
     (floats included — same instruction stream, same values). *)
  let a = Experiments.Improvements.run () in
  let b = Experiments.Improvements.run () in
  Alcotest.(check int) "same row count" (List.length a) (List.length b);
  List.iter2
    (fun ra rb ->
      Alcotest.(check string) "same change" ra.Experiments.Improvements.change
        rb.Experiments.Improvements.change;
      Alcotest.(check (float 0.)) "same Null saving"
        ra.Experiments.Improvements.sim_null_saving_us
        rb.Experiments.Improvements.sim_null_saving_us;
      Alcotest.(check (float 0.)) "same MaxResult saving"
        ra.Experiments.Improvements.sim_maxr_saving_us
        rb.Experiments.Improvements.sim_maxr_saving_us)
    a b;
  (* And the rendered table too, since `firefly repro improvements`
     prints it. *)
  Alcotest.(check string) "rendered table identical"
    (Report.Table.render (Experiments.Improvements.table ()))
    (Report.Table.render (Experiments.Improvements.table ()))

(* {1 Section 5} *)

let test_uniproc_bug () =
  (* 400 calls so the expected ~11 loss events make the mean stable. *)
  match Experiments.Section5.uniproc_bug ~calls:400 () with
  | [ buggy; fixed ] ->
    Alcotest.(check bool) "bug inflates latency to ~20ms" true
      (buggy.Experiments.Section5.mean_null_ms > 10.);
    Alcotest.(check bool) "fix restores ~5ms" true (fixed.Experiments.Section5.mean_null_ms < 6.);
    Alcotest.(check bool) "bug causes retransmissions" true
      (buggy.Experiments.Section5.retransmissions > 0);
    Alcotest.(check int) "fix removes them" 0 fixed.Experiments.Section5.retransmissions
  | _ -> Alcotest.fail "expected two rows"

let test_streaming () =
  match Experiments.Section5.streaming ~calls:120 () with
  | [ threads; stop_and_wait; blast ] ->
    Alcotest.(check bool) "streaming beats stop-and-wait" true
      (blast.Experiments.Section5.mbps > 1.5 *. stop_and_wait.Experiments.Section5.mbps);
    Alcotest.(check bool) "streaming at least matches thread-parallel RPC" true
      (blast.Experiments.Section5.mbps >= 0.95 *. threads.Experiments.Section5.mbps)
  | _ -> Alcotest.fail "expected three rows"

(* {1 Registry + rendering} *)

let test_registry_runs_everything () =
  List.iter
    (fun e ->
      let tables = e.Experiments.Registry.run ~transport:`Auto ~quick:true ~metrics:false in
      Alcotest.(check bool)
        (e.Experiments.Registry.id ^ " produces tables")
        true
        (List.length tables > 0);
      List.iter
        (fun t ->
          let s = Report.Table.render t in
          Alcotest.(check bool) "render non-empty" true (String.length s > 40))
        tables)
    (List.filter
       (fun e ->
         (* The heavyweight sweeps have dedicated tests above. *)
         not (List.mem e.Experiments.Registry.id [ "table1"; "table10"; "table11" ]))
       Experiments.Registry.all)

let test_table1_metrics_columns () =
  let t = Experiments.Table1.table ~calls:120 ~metrics:true () in
  Alcotest.(check int) "metrics adds three percentile columns" 8
    (List.length t.Report.Table.columns);
  Alcotest.(check (list string))
    "tail columns named" [ "Null p50 ms"; "Null p90 ms"; "Null p99 ms" ]
    (List.filteri (fun i _ -> i >= 5) t.Report.Table.columns);
  List.iter
    (fun row -> Alcotest.(check int) "every row fills every column" 8 (List.length row))
    t.Report.Table.rows;
  (* Percentiles are ordered in every row, and plausibly sized. *)
  List.iter
    (fun r ->
      match r.Experiments.Table1.null_tail_ms with
      | None -> Alcotest.fail "metrics run must fill null_tail_ms"
      | Some (p50, p90, p99) ->
        Alcotest.(check bool) "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
        Alcotest.(check bool) "tail in a plausible band" true (p50 > 0.5 && p99 < 100.))
    (Experiments.Table1.run ~calls:120 ~metrics:true ());
  (* Without metrics the table keeps its original five columns. *)
  let plain = Experiments.Table1.table ~calls:120 () in
  Alcotest.(check int) "plain table unchanged" 5 (List.length plain.Report.Table.columns)

let test_table1_deterministic () =
  (* The whole pipeline — model, schedule, stats, rendering — must be a
     pure function of the seed: two runs render byte-identical tables. *)
  let render () =
    match Experiments.Registry.find "table1" with
    | None -> Alcotest.fail "table1 not registered"
    | Some e ->
      String.concat "\n" (List.map Report.Table.render (e.Experiments.Registry.run ~transport:`Auto ~quick:true ~metrics:false))
  in
  Alcotest.(check string) "same seed, byte-identical tables" (render ()) (render ())

let test_parallel_registry_identical () =
  (* Regenerating registry entries on a domain pool must render the
     exact tables the serial sweep does, in the same order.  The cheap
     breakdown entries share a Par.Once measurement cache, so this also
     exercises concurrent forcing of that cell. *)
  let entries =
    List.filter_map Experiments.Registry.find
      [ "tables2-5"; "table6"; "table7"; "table8"; "improvements" ]
  in
  Alcotest.(check int) "entries found" 5 (List.length entries);
  let render (e : Experiments.Registry.entry) =
    String.concat ""
      (List.map Report.Table.render (e.Experiments.Registry.run ~transport:`Auto ~quick:true ~metrics:false))
  in
  let serial = List.map render entries in
  let par = Par.Pool.map_list ~jobs:4 render entries in
  List.iteri
    (fun i (s, p) -> Alcotest.(check string) (Printf.sprintf "entry %d identical" i) s p)
    (List.combine serial par)

let suite =
  [
    Alcotest.test_case "Table I shape and bands" `Slow test_table1_shape;
    Alcotest.test_case "Table I deterministic" `Slow test_table1_deterministic;
    Alcotest.test_case "Table I metrics columns" `Quick test_table1_metrics_columns;
    Alcotest.test_case "CPU utilization note" `Slow test_cpu_utilization;
    Alcotest.test_case "Tables II-V marshalling" `Quick test_marshalling;
    Alcotest.test_case "marshalling names a missing scenario" `Quick
      test_marshalling_missing_scenario;
    Alcotest.test_case "Table VI traced breakdown" `Quick test_table6;
    Alcotest.test_case "Table VII runtime breakdown" `Quick test_table7;
    Alcotest.test_case "Table VIII accounting" `Quick test_table8;
    Alcotest.test_case "Table IX interrupt versions" `Quick test_table9;
    Alcotest.test_case "Table X processor latency" `Slow test_table10;
    Alcotest.test_case "Table XI processor throughput" `Slow test_table11;
    Alcotest.test_case "Table XII systems comparison" `Slow test_table12;
    Alcotest.test_case "Section 4.2 improvements" `Quick test_improvements;
    Alcotest.test_case "Section 4.2 sign consistency" `Quick test_improvements_sign_consistency;
    Alcotest.test_case "Section 4.2 deterministic" `Quick test_improvements_deterministic;
    Alcotest.test_case "Section 5 uniprocessor bug" `Quick test_uniproc_bug;
    Alcotest.test_case "Section 5 streaming extension" `Quick test_streaming;
    Alcotest.test_case "registry runs everything" `Slow test_registry_runs_everything;
    Alcotest.test_case "parallel regeneration identical" `Quick
      test_parallel_registry_identical;
  ]

let () = Alcotest.run "experiments" [ ("experiments", suite) ]
