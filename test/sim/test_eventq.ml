(* The intrusive event queue must pop in exactly (time, tie, seq) order
   — the engine's determinism contract — including under interleaved
   add/pop and heavy node recycling. *)

module Q = Sim.Eventq

let time_of_ns n = Sim.Time.add Sim.Time.zero (Sim.Time.ns n)

let key_compare (t1, tie1, seq1) (t2, tie2, seq2) =
  match Sim.Time.compare t1 t2 with
  | 0 -> ( match compare tie1 tie2 with 0 -> compare seq1 seq2 | c -> c)
  | c -> c

let drain q =
  while not (Q.is_empty q) do
    (Q.pop_run q) ()
  done

let add_recording q out ~time_ns ~tie ~seq =
  Q.add q ~time:(time_of_ns time_ns) ~tie ~seq (fun () ->
      out := (time_ns, tie, seq) :: !out)

let test_sorted_drain () =
  let q = Q.create () in
  let out = ref [] in
  let keys =
    [
      (50, 0, 3); (10, 0, 1); (50, 0, 2); (10, 1, 0); (10, 0, 4); (0, 5, 5);
      (50, 2, 6); (0, 5, 7);
    ]
  in
  List.iter (fun (t, tie, seq) -> add_recording q out ~time_ns:t ~tie ~seq) keys;
  Alcotest.(check int) "size" (List.length keys) (Q.size q);
  drain q;
  let expect =
    List.sort
      (fun (t1, x1, s1) (t2, x2, s2) ->
        key_compare (time_of_ns t1, x1, s1) (time_of_ns t2, x2, s2))
      keys
  in
  Alcotest.(check (list (triple int int int))) "pops in (time, tie, seq) order"
    expect (List.rev !out)

let test_min_time_tracks () =
  let q = Q.create () in
  let out = ref [] in
  add_recording q out ~time_ns:30 ~tie:0 ~seq:0;
  add_recording q out ~time_ns:10 ~tie:0 ~seq:1;
  Alcotest.(check int) "min after adds" 10
    (Sim.Time.since_start_ns (Q.min_time q));
  (Q.pop_run q) ();
  Alcotest.(check int) "min after pop" 30
    (Sim.Time.since_start_ns (Q.min_time q));
  (Q.pop_run q) ();
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let test_pop_empty_rejected () =
  let q = Q.create () in
  Alcotest.(check bool) "pop on empty raises" true
    (try
       ignore (Q.pop_run q : unit -> unit);
       false
     with Invalid_argument _ -> true)

let test_reschedule_from_closure () =
  (* The popped closure re-adds events — the recycled-node path the
     engine exercises on every self-rescheduling chain. *)
  let q = Q.create () in
  let seq = ref 0 in
  let popped = ref [] in
  let rec chain remaining time_ns () =
    popped := time_ns :: !popped;
    if remaining > 0 then begin
      incr seq;
      Q.add q ~time:(time_of_ns (time_ns + 7)) ~tie:0 ~seq:!seq
        (chain (remaining - 1) (time_ns + 7))
    end
  in
  Q.add q ~time:(time_of_ns 0) ~tie:0 ~seq:0 (chain 100 0);
  while not (Q.is_empty q) do
    (Q.pop_run q) ()
  done;
  Alcotest.(check int) "all links ran" 101 (List.length !popped);
  Alcotest.(check (list int)) "monotone times"
    (List.init 101 (fun i -> i * 7))
    (List.rev !popped)

(* Model-based property: interleaved adds and pops against a sorted-list
   model.  Commands: [Some (time, tie)] = add (seq assigned in program
   order, so keys are unique), [None] = pop. *)
let prop_model =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 200)
        (oneof
           [
             map (fun (t, tie) -> Some (t, tie)) (pair (int_bound 20) (int_bound 3));
             return None;
           ]))
  in
  let print cmds =
    String.concat "; "
      (List.map
         (function
           | Some (t, tie) -> Printf.sprintf "add(%d,%d)" t tie
           | None -> "pop")
         cmds)
  in
  QCheck.Test.make ~name:"eventq matches sorted-list model" ~count:300
    (QCheck.make ~print gen) (fun cmds ->
      let q = Q.create () in
      let model = ref [] in
      let seq = ref 0 in
      let popped = ref None in
      List.for_all
        (fun cmd ->
          match cmd with
          | Some (t, tie) ->
            let key = (time_of_ns t, tie, !seq) in
            incr seq;
            let time, tie, s = key in
            Q.add q ~time ~tie ~seq:s (fun () -> popped := Some key);
            model := List.sort key_compare (key :: !model);
            Q.size q = List.length !model
          | None -> (
            match (Q.is_empty q, !model) with
            | true, [] -> true
            | true, _ :: _ | false, [] -> false
            | false, expect :: rest ->
              model := rest;
              let min_ok =
                Sim.Time.equal (Q.min_time q)
                  (let t, _, _ = expect in
                   t)
              in
              popped := None;
              (Q.pop_run q) ();
              min_ok && !popped = Some expect))
        cmds
      && (drain q;
          true))

let suite =
  [
    Alcotest.test_case "sorted drain with ties" `Quick test_sorted_drain;
    Alcotest.test_case "min_time tracks the head" `Quick test_min_time_tracks;
    Alcotest.test_case "pop on empty rejected" `Quick test_pop_empty_rejected;
    Alcotest.test_case "reschedule from popped closure" `Quick test_reschedule_from_closure;
    QCheck_alcotest.to_alcotest prop_model;
  ]
