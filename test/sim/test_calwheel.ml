(* The calendar queue and the timer wheel must be invisible to event
   order: whatever the bucket math, the window resizes or the wheel's
   cascades do, the pop sequence must be the exact (time, tie, seq)
   total order — the same sequence the pairing heap and a sorted-list
   model produce.  These tests hold all three structures to one
   sequence, across random interleavings and across the deterministic
   resize/overflow boundaries. *)

module Time = Sim.Time
module Engine = Sim.Engine
module Evnode = Sim.Evnode
module Eventq = Sim.Eventq
module Calendar = Sim.Calendar
module Wheel = Sim.Wheel

let time_of_ns n = Time.of_ns_since_start n

let key_compare (t1, tie1, seq1) (t2, tie2, seq2) =
  match Time.compare t1 t2 with
  | 0 -> ( match compare tie1 tie2 with 0 -> compare seq1 seq2 | c -> c)
  | c -> c

let key_of (n : Evnode.t) = (n.Evnode.time, n.Evnode.tie, n.Evnode.seq)

(* {1 Heap vs calendar vs sorted list, random add/pop interleavings} *)

(* Commands: [Some (dt, tie)] = add at (clock + dt) — the engine never
   schedules in the past, and both queues assume it; [None] = pop.
   Offsets span ten bits of ns up to tens of ms, so a single run
   crosses many calendar days and lands events in the overflow heap. *)
let prop_three_way_model =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 300)
        (frequency
           [
             ( 3,
               map
                 (fun (dt, tie) -> Some (dt, tie))
                 (pair
                    (oneof
                       [ int_bound 500; int_bound 50_000; int_bound 20_000_000 ])
                    (int_bound 3)) );
             (2, return None);
           ]))
  in
  let print cmds =
    String.concat "; "
      (List.map
         (function
           | Some (dt, tie) -> Printf.sprintf "add(+%d,%d)" dt tie
           | None -> "pop")
         cmds)
  in
  QCheck.Test.make ~name:"calendar matches heap and sorted-list model" ~count:200
    (QCheck.make ~print gen) (fun cmds ->
      let pool_h = Evnode.create_pool () and pool_c = Evnode.create_pool () in
      let heap = Eventq.create ~pool:pool_h () in
      let cal = Calendar.create ~pool:pool_c () in
      let model = ref [] in
      let clock = ref 0 in
      let seq = ref 0 in
      List.for_all
        (fun cmd ->
          match cmd with
          | Some (dt, tie) ->
            let t = time_of_ns (!clock + dt) in
            incr seq;
            Eventq.add heap ~time:t ~tie ~seq:!seq ignore;
            Calendar.add cal ~time:t ~tie ~seq:!seq ignore;
            model := List.sort key_compare ((t, tie, !seq) :: !model);
            Eventq.size heap = List.length !model
            && Calendar.size cal = List.length !model
          | None -> (
            match !model with
            | [] -> Eventq.is_empty heap && Calendar.is_empty cal
            | expect :: rest ->
              model := rest;
              let nh = Eventq.pop heap and nc = Calendar.pop cal in
              let kh = key_of nh and kc = key_of nc in
              Evnode.recycle pool_h nh;
              Evnode.recycle pool_c nc;
              let et, _, _ = expect in
              clock := Time.since_start_ns et;
              kh = expect && kc = expect))
        cmds)

(* {1 Calendar resize and overflow boundaries, deterministically} *)

(* Dense enough to force the bucket array to double (>2 events/slot),
   then a far-future band that must sit in the overflow heap and
   migrate back as the window slides, then pops across both.  The full
   pop sequence must equal the sorted model — resizes rebuild the
   structure mid-stream and must not reorder anything. *)
let test_calendar_resize_boundaries () =
  let pool = Evnode.create_pool () in
  let cal = Calendar.create ~pool () in
  let model = ref [] in
  let seq = ref 0 in
  let add ns tie =
    incr seq;
    let t = time_of_ns ns in
    Calendar.add cal ~time:t ~tie ~seq:!seq ignore;
    model := (t, tie, !seq) :: !model
  in
  (* 3000 events, ~37 ns apart: thousands of events per 4 us day. *)
  for i = 0 to 2_999 do
    add (i * 37) (i land 1)
  done;
  (* A sparse far band: seconds away, far outside any direct window. *)
  for i = 0 to 199 do
    add (1_000_000_000 + (i * 9_000_000)) 0
  done;
  let expect = List.sort key_compare (List.rev !model) in
  let got = ref [] in
  while not (Calendar.is_empty cal) do
    let n = Calendar.pop cal in
    got := key_of n :: !got;
    Evnode.recycle pool n
  done;
  Alcotest.(check int) "all events popped" (List.length expect) (List.length !got);
  Alcotest.(check bool) "pop sequence equals sorted model" true
    (List.rev !got = expect)

(* {1 Wheel + heap vs direct heap, random arm/cancel/pop interleavings} *)

type wheel_cmd = Arm of int * int | Cancel of int | Pop

(* Drive a heap+wheel pair exactly as the engine does — advance the
   wheel to the queue minimum before every pop, flush the earliest
   timers when the queue runs dry — and compare the pop sequence with a
   sorted-list model of every key armed and not successfully cancelled.
   A node the wheel already flushed into the queue stays there as a
   dead event even if "cancelled" afterwards ([Wheel.cancel] returns
   false), which is precisely the engine's timeout semantics. *)
let prop_wheel_equiv =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 400)
        (frequency
           [
             ( 3,
               map
                 (fun (dt, tie) -> Arm (dt, tie))
                 (pair
                    (oneof
                       [ int_bound 30_000; int_bound 3_000_000; int_bound 400_000_000 ])
                    (int_bound 3)) );
             (2, map (fun k -> Cancel k) (int_bound 64));
             (3, return Pop);
           ]))
  in
  let print cmds =
    String.concat "; "
      (List.map
         (function
           | Arm (dt, tie) -> Printf.sprintf "arm(+%d,%d)" dt tie
           | Cancel k -> Printf.sprintf "cancel(%d)" k
           | Pop -> "pop")
         cmds)
  in
  QCheck.Test.make ~name:"wheel+heap matches direct sorted-list model" ~count:150
    (QCheck.make ~print gen) (fun cmds ->
      let pool = Evnode.create_pool () in
      let q = Eventq.create ~pool () in
      let wh = Wheel.create ~pool () in
      let model = ref [] in
      (* Armed nodes the test may still cancel; entries leave when
         cancelled or popped so a recycled node cannot alias. *)
      let candidates = ref [] in
      let clock = ref 0 in
      let seq = ref 0 in
      let sync () =
        if Wheel.size wh > 0 then
          if Eventq.is_empty q then Wheel.flush_earliest wh ~insert:(Eventq.insert q)
          else
            Wheel.advance wh ~upto:(Eventq.min_time q) ~insert:(Eventq.insert q)
      in
      List.for_all
        (fun cmd ->
          match cmd with
          | Arm (dt, tie) ->
            incr seq;
            let t = time_of_ns (!clock + dt) in
            let n = Evnode.alloc pool ~time:t ~tie ~seq:!seq in
            if Wheel.arm wh n then candidates := n :: !candidates
            else Eventq.insert q n;
            model := List.sort key_compare ((t, tie, !seq) :: !model);
            true
          | Cancel k -> (
            match !candidates with
            | [] -> true
            | cs ->
              let n = List.nth cs (k mod List.length cs) in
              let key = key_of n in
              candidates := List.filter (fun c -> c != n) cs;
              if Wheel.cancel wh n then begin
                (* Still armed: the event must vanish from the model. *)
                model := List.filter (fun c -> c <> key) !model;
                true
              end
              else
                (* Already flushed to the queue: stays a (dead) event. *)
                true)
          | Pop -> (
            sync ();
            match !model with
            | [] -> Eventq.is_empty q && Wheel.is_empty wh
            | expect :: rest ->
              model := rest;
              let n = Eventq.pop q in
              let key = key_of n in
              candidates := List.filter (fun c -> c != n) !candidates;
              Evnode.recycle pool n;
              let et, _, _ = expect in
              clock := Time.since_start_ns et;
              key = expect))
        cmds)

(* {1 Engine-level wheel semantics} *)

let us = Time.us

let test_armed_timer_accounting () =
  let eng = Engine.create () in
  let saved = ref None in
  Engine.spawn eng (fun () ->
      ignore
        (Engine.suspend_timeout eng ~timeout:(us 500) (fun w -> saved := Some w)));
  Engine.schedule eng ~after:(us 1) (fun () ->
      Alcotest.(check int) "timer armed on the wheel" 1 (Engine.armed_timers eng));
  Engine.schedule eng ~after:(us 5) (fun () ->
      match !saved with
      | Some w -> ignore (Engine.wake w 1)
      | None -> Alcotest.fail "waker not registered");
  Engine.schedule eng ~after:(us 10) (fun () ->
      Alcotest.(check int) "wake cancelled the timer in O(1)" 0
        (Engine.armed_timers eng));
  Engine.run eng;
  Alcotest.(check int) "nothing left armed" 0 (Engine.armed_timers eng)

(* The same mixed workload — chains, timeouts that fire, timeouts that
   are beaten — on both queue disciplines: the dispatch sequence (time
   and tag of every observable step) must be identical. *)
let run_mixed queue =
  let eng = Engine.create ~tie_break:`Random ~queue () in
  let log = ref [] in
  let note tag = log := (Time.since_start_ns (Engine.now eng), tag) :: !log in
  for i = 1 to 8 do
    Engine.spawn eng ~after:(us i) (fun () ->
        note "start";
        Engine.delay eng (us (3 + i));
        note "mid";
        let r =
          Engine.suspend_timeout eng ~timeout:(us (10 + i)) (fun w ->
              if i land 1 = 0 then
                Engine.schedule eng ~after:(us 2) (fun () -> ignore (Engine.wake w i)))
        in
        (match r with Some _ -> note "woken" | None -> note "timed-out");
        Engine.delay eng (us 1);
        note "done")
  done;
  Engine.run eng;
  List.rev !log

let test_engine_queue_equivalence () =
  let h = run_mixed `Heap and c = run_mixed `Calendar in
  Alcotest.(check (list (pair int string)))
    "heap and calendar dispatch identically" h c

let suite =
  [
    QCheck_alcotest.to_alcotest prop_three_way_model;
    Alcotest.test_case "calendar resize and overflow boundaries" `Quick
      test_calendar_resize_boundaries;
    QCheck_alcotest.to_alcotest prop_wheel_equiv;
    Alcotest.test_case "armed-timer accounting" `Quick test_armed_timer_accounting;
    Alcotest.test_case "heap vs calendar engine equivalence" `Quick
      test_engine_queue_equivalence;
  ]
