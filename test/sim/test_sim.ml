let () =
  Alcotest.run "sim"
    [
      ("time", Test_time.suite);
      ("heap", Test_heap.suite);
      ("eventq", Test_eventq.suite);
      ("calendar-wheel", Test_calwheel.suite);
      ("engine", Test_engine.suite);
      ("sync", Test_sync.suite);
      ("stats-trace", Test_stats_trace.suite);
      ("properties", Test_props.suite);
    ]
