module Stats = Sim.Stats
module Trace = Sim.Trace
module Time = Sim.Time

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_summary () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.)) "empty mean" 0. (Stats.Summary.mean s);
  List.iter (Stats.Summary.observe s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Stats.Summary.stddev s)

let test_level () =
  let at n = Time.of_ns_since_start n in
  let l = Stats.Level.create ~initial:0. ~at:(at 0) in
  Stats.Level.set l 2. ~at:(at 1_000_000_000);
  Stats.Level.set l 1. ~at:(at 3_000_000_000);
  (* 1s at 0, 2s at 2, 1s at 1 => integral 5 level-seconds over 4s. *)
  Alcotest.(check (float 1e-9)) "integral" 5. (Stats.Level.integral l ~upto:(at 4_000_000_000));
  Alcotest.(check (float 1e-9)) "average" 1.25 (Stats.Level.average l ~upto:(at 4_000_000_000));
  Alcotest.(check (float 0.)) "current" 1. (Stats.Level.current l)

let test_summary_welford () =
  (* Catastrophic cancellation regression: a naive sum-of-squares
     accumulator loses all precision when the mean dwarfs the spread.
     Samples 1e9, 1e9+1, 1e9+2 have population stddev sqrt(2/3). *)
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.observe s) [ 1e9; 1e9 +. 1.; 1e9 +. 2. ];
  Alcotest.(check (float 1e-9)) "mean at large offset" (1e9 +. 1.) (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev at large offset" (sqrt (2. /. 3.))
    (Stats.Summary.stddev s);
  (* Same spread near zero gives the same stddev. *)
  let s0 = Stats.Summary.create () in
  List.iter (Stats.Summary.observe s0) [ 0.; 1.; 2. ];
  Alcotest.(check (float 1e-12)) "offset-invariant" (Stats.Summary.stddev s0)
    (Stats.Summary.stddev s);
  (* Constant samples: exactly zero, never NaN. *)
  let c = Stats.Summary.create () in
  List.iter (Stats.Summary.observe c) [ 5.; 5.; 5.; 5. ];
  Alcotest.(check (float 0.)) "constant samples" 0. (Stats.Summary.stddev c)

let test_level_out_of_order () =
  let at n = Time.of_ns_since_start n in
  let l = Stats.Level.create ~initial:1. ~at:(at 0) in
  Stats.Level.set l 3. ~at:(at 2_000_000_000);
  (* A set with a timestamp before the last change must not subtract
     area: it only switches the current level. *)
  Stats.Level.set l 2. ~at:(at 1_000_000_000);
  Alcotest.(check (float 0.)) "current follows the late set" 2. (Stats.Level.current l);
  (* Queries at or before the last change return the accumulated area
     (2 level-seconds from the first segment), never less. *)
  Alcotest.(check (float 1e-9)) "integral clamped at changed_at" 2.
    (Stats.Level.integral l ~upto:(at 1_500_000_000));
  (* 1s more at level 2 after the clamp point. *)
  Alcotest.(check (float 1e-9)) "integral resumes past changed_at" 4.
    (Stats.Level.integral l ~upto:(at 3_000_000_000));
  Alcotest.(check (float 1e-9)) "average over full window" (4. /. 3.)
    (Stats.Level.average l ~upto:(at 3_000_000_000))

let test_summary_empty_guards () =
  let s = Stats.Summary.create () in
  Alcotest.check_raises "min on empty raises" (Invalid_argument "Stats.Summary.min: empty")
    (fun () -> ignore (Stats.Summary.min s));
  Alcotest.check_raises "max on empty raises" (Invalid_argument "Stats.Summary.max: empty")
    (fun () -> ignore (Stats.Summary.max s));
  Stats.Summary.observe s 7.;
  Alcotest.(check (float 0.)) "single observation min" 7. (Stats.Summary.min s);
  Alcotest.(check (float 0.)) "single observation max" 7. (Stats.Summary.max s);
  Stats.Summary.reset s;
  Alcotest.check_raises "guard restored by reset" (Invalid_argument "Stats.Summary.min: empty")
    (fun () -> ignore (Stats.Summary.min s))

let test_trace_empty () =
  let tr = Trace.create () in
  Alcotest.(check int) "total of empty trace is zero" 0 (Time.to_ns (Trace.total tr));
  Alcotest.(check int) "filtered total of empty trace is zero" 0
    (Time.to_ns (Trace.total tr ~cat:"send" ~label:"checksum" ~site:"caller"));
  Alcotest.(check (list string)) "no labels" [] (Trace.labels tr);
  Alcotest.(check (list string)) "no labels under a filter" [] (Trace.labels tr ~cat:"send");
  (* Disabled (the default): adds are dropped, so the totals stay zero. *)
  let at n = Time.of_ns_since_start n in
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"caller" ~start_at:(at 0) ~stop_at:(at 9);
  Alcotest.(check bool) "tracing off by default" false (Trace.enabled tr);
  Alcotest.(check int) "still zero after dropped add" 0
    (Time.to_ns (Trace.total tr ~cat:"send"));
  Alcotest.(check (list string)) "still no labels" [] (Trace.labels tr)

let test_trace () =
  let tr = Trace.create () in
  let at n = Time.of_ns_since_start n in
  Trace.add tr ~cat:"x" ~label:"ignored while off" ~site:"m" ~start_at:(at 0) ~stop_at:(at 5);
  Alcotest.(check int) "disabled records nothing" 0 (List.length (Trace.spans tr));
  Trace.set_enabled tr true;
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"caller" ~start_at:(at 0) ~stop_at:(at 45_000);
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"server" ~start_at:(at 50_000)
    ~stop_at:(at 95_000);
  Trace.add tr ~cat:"runtime" ~label:"starter" ~site:"caller" ~start_at:(at 100_000)
    ~stop_at:(at 228_000);
  Alcotest.(check int) "three spans" 3 (List.length (Trace.spans tr));
  Alcotest.(check int) "sum by label" 90_000 (Time.to_ns (Trace.total tr ~label:"checksum"));
  Alcotest.(check int) "filter by site" 45_000
    (Time.to_ns (Trace.total tr ~label:"checksum" ~site:"caller"));
  Alcotest.(check int) "filter by cat" 128_000 (Time.to_ns (Trace.total tr ~cat:"runtime"));
  Alcotest.(check (list string))
    "labels in order" [ "checksum"; "starter" ] (Trace.labels tr);
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.spans tr))

let test_trace_capacity () =
  let at n = Time.of_ns_since_start n in
  let tr = Trace.create ~capacity:2 () in
  Trace.set_enabled tr true;
  Trace.add tr ~cat:"c" ~label:"a" ~site:"m" ~start_at:(at 0) ~stop_at:(at 10);
  Trace.add tr ~cat:"c" ~label:"b" ~site:"m" ~start_at:(at 10) ~stop_at:(at 20);
  Trace.add tr ~cat:"c" ~label:"c" ~site:"m" ~start_at:(at 20) ~stop_at:(at 30);
  Trace.add tr ~cat:"c" ~label:"d" ~site:"m" ~start_at:(at 30) ~stop_at:(at 40);
  Alcotest.(check int) "capacity bounds retained spans" 2 (Trace.length tr);
  Alcotest.(check int) "overflow is counted" 2 (Trace.dropped tr);
  (* The earliest spans are the ones kept. *)
  Alcotest.(check (list string)) "earliest spans retained" [ "a"; "b" ] (Trace.labels tr);
  Trace.clear tr;
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped tr);
  Trace.add tr ~cat:"c" ~label:"e" ~site:"m" ~start_at:(at 50) ~stop_at:(at 60);
  Alcotest.(check int) "records again after clear" 1 (Trace.length tr);
  (* An unbounded trace never drops. *)
  let unb = Trace.create () in
  Trace.set_enabled unb true;
  for i = 0 to 99 do
    Trace.add unb ~cat:"c" ~label:"x" ~site:"m" ~start_at:(at i) ~stop_at:(at (i + 1))
  done;
  Alcotest.(check int) "unbounded keeps everything" 100 (Trace.length unb);
  Alcotest.(check int) "unbounded drops nothing" 0 (Trace.dropped unb)

let test_trace_filter_combos () =
  let at n = Time.of_ns_since_start n in
  let tr = Trace.create () in
  Trace.set_enabled tr true;
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"caller" ~start_at:(at 0) ~stop_at:(at 10);
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"server" ~start_at:(at 0) ~stop_at:(at 20);
  Trace.add tr ~cat:"recv" ~label:"checksum" ~site:"caller" ~start_at:(at 0) ~stop_at:(at 40);
  Trace.add tr ~cat:"recv" ~label:"dispatch" ~site:"server" ~start_at:(at 0) ~stop_at:(at 80);
  Alcotest.(check int) "no filter sums all" 150 (Time.to_ns (Trace.total tr));
  Alcotest.(check int) "cat+site" 10 (Time.to_ns (Trace.total tr ~cat:"send" ~site:"caller"));
  Alcotest.(check int) "cat+label" 40 (Time.to_ns (Trace.total tr ~cat:"recv" ~label:"checksum"));
  Alcotest.(check int) "site+label" 50 (Time.to_ns (Trace.total tr ~site:"caller" ~label:"checksum"));
  Alcotest.(check int) "all three filters" 20
    (Time.to_ns (Trace.total tr ~cat:"send" ~site:"server" ~label:"checksum"));
  Alcotest.(check int) "filter matching nothing" 0
    (Time.to_ns (Trace.total tr ~cat:"send" ~label:"dispatch"));
  Alcotest.(check (list string)) "labels unfiltered" [ "checksum"; "dispatch" ] (Trace.labels tr);
  Alcotest.(check (list string)) "labels by cat" [ "checksum" ] (Trace.labels tr ~cat:"send");
  Alcotest.(check (list string))
    "labels by the other cat" [ "checksum"; "dispatch" ]
    (Trace.labels tr ~cat:"recv");
  Alcotest.(check (list string)) "labels under a cat matching nothing" [] (Trace.labels tr ~cat:"?")

let test_trace_call_ids () =
  let tr = Trace.create () in
  (* Disabled: the allocator hands out the sentinel and never advances. *)
  Alcotest.(check int) "new_call off" Trace.no_call (Trace.new_call tr);
  Trace.set_enabled tr true;
  Alcotest.(check int) "ids start at 0" 0 (Trace.new_call tr);
  Alcotest.(check int) "ids increment" 1 (Trace.new_call tr);
  Trace.clear tr;
  Alcotest.(check int) "clear restarts the allocator" 0 (Trace.new_call tr);
  (* Spans default to Service/no_call; explicit kind and call stick. *)
  let at n = Time.of_ns_since_start n in
  Trace.add tr ~cat:"c" ~label:"plain" ~site:"m" ~start_at:(at 0) ~stop_at:(at 1);
  Trace.add ~kind:Trace.Queue ~call:0 tr ~cat:"c" ~label:"tagged" ~site:"m" ~start_at:(at 1)
    ~stop_at:(at 2);
  match Trace.spans tr with
  | [ plain; tagged ] ->
    Alcotest.(check int) "default call is the sentinel" Trace.no_call plain.Trace.call;
    Alcotest.(check bool) "default kind is Service" true (plain.Trace.kind = Trace.Service);
    Alcotest.(check int) "explicit call sticks" 0 tagged.Trace.call;
    Alcotest.(check bool) "explicit kind sticks" true (tagged.Trace.kind = Trace.Queue)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_trace_frame_registry () =
  let tr = Trace.create () in
  let frame = Bytes.create 8 in
  let twin = Bytes.create 8 in
  (* Disabled: registration is a no-op and lookups return the sentinel. *)
  Trace.register_frame tr frame ~call:3;
  Alcotest.(check int) "lookup off" Trace.no_call (Trace.frame_call tr frame);
  Trace.set_enabled tr true;
  Trace.register_frame tr frame ~call:3;
  Alcotest.(check int) "frame recovered by identity" 3 (Trace.frame_call tr frame);
  (* Physical identity, not structural equality: an equal-but-distinct
     buffer is a different frame. *)
  Alcotest.(check int) "equal bytes do not alias" Trace.no_call (Trace.frame_call tr twin);
  (* The sentinel call id is never registered. *)
  Trace.register_frame tr twin ~call:Trace.no_call;
  Alcotest.(check int) "no_call never registers" Trace.no_call (Trace.frame_call tr twin);
  (* Re-registration (a retransmitted buffer) takes the newest id. *)
  Trace.register_frame tr frame ~call:7;
  Alcotest.(check int) "latest registration wins" 7 (Trace.frame_call tr frame);
  (* The registry is bounded: old entries evict once enough newer
     frames register, and each eviction is counted. *)
  Alcotest.(check int) "no evictions yet" 0 (Trace.frame_evictions tr);
  for i = 0 to 99 do
    Trace.register_frame tr (Bytes.create 4) ~call:i
  done;
  Alcotest.(check int) "old frames evict" Trace.no_call (Trace.frame_call tr frame);
  Alcotest.(check bool) "evictions counted" true (Trace.frame_evictions tr > 0);
  Trace.clear tr;
  Alcotest.(check int) "clear resets evictions" 0 (Trace.frame_evictions tr);
  Trace.register_frame tr frame ~call:1;
  Trace.set_enabled tr false;
  Alcotest.(check int) "lookups short-circuit when disabled" Trace.no_call
    (Trace.frame_call tr frame)

(* A pool/freelist can hand the same physical buffer to two successive
   calls.  Whatever happens between the two lives — an explicit release,
   a re-registration, or an untraced send of the recycled buffer — the
   second life must never inherit the first call's id. *)
let test_trace_frame_recycling () =
  let tr = Trace.create () in
  Trace.set_enabled tr true;
  let buf = Bytes.create 64 in
  (* First life: carries call 0. *)
  let c0 = Trace.new_call tr in
  Trace.register_frame tr buf ~call:c0;
  Alcotest.(check int) "first life attributed" c0 (Trace.frame_call tr buf);
  (* Buffer returned to the freelist. *)
  Trace.release_frame tr buf;
  Alcotest.(check int) "released buffer unattributed" Trace.no_call (Trace.frame_call tr buf);
  (* Second life: recycled for call 1 — re-registration wins in place. *)
  let c1 = Trace.new_call tr in
  Trace.register_frame tr buf ~call:c1;
  Alcotest.(check int) "second life gets the new id" c1 (Trace.frame_call tr buf);
  Alcotest.(check bool) "ids differ across lives" true (c0 <> c1);
  (* Third life without an intervening release: the recycled buffer is
     sent by an untraced path (call = no_call), which must strip the
     stale id rather than leave the old call aliased. *)
  Trace.register_frame tr buf ~call:Trace.no_call;
  Alcotest.(check int) "untraced re-send clears stale id" Trace.no_call
    (Trace.frame_call tr buf);
  (* Releasing an unknown buffer is harmless. *)
  Trace.release_frame tr (Bytes.create 4);
  (* No slot pressure was involved: none of the above counts as an
     eviction. *)
  Alcotest.(check int) "recycling is not eviction" 0 (Trace.frame_evictions tr)

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "summary welford stability" `Quick test_summary_welford;
    Alcotest.test_case "summary empty guards" `Quick test_summary_empty_guards;
    Alcotest.test_case "level integral" `Quick test_level;
    Alcotest.test_case "level out-of-order timestamps" `Quick test_level_out_of_order;
    Alcotest.test_case "trace empty and disabled" `Quick test_trace_empty;
    Alcotest.test_case "trace spans and filters" `Quick test_trace;
    Alcotest.test_case "trace capacity bound" `Quick test_trace_capacity;
    Alcotest.test_case "trace filter combinations" `Quick test_trace_filter_combos;
    Alcotest.test_case "trace call-id allocator" `Quick test_trace_call_ids;
    Alcotest.test_case "trace frame registry" `Quick test_trace_frame_registry;
    Alcotest.test_case "trace frame recycling" `Quick test_trace_frame_recycling;
  ]
