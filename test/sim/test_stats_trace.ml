module Stats = Sim.Stats
module Trace = Sim.Trace
module Time = Sim.Time

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_summary () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.)) "empty mean" 0. (Stats.Summary.mean s);
  List.iter (Stats.Summary.observe s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Stats.Summary.stddev s)

let test_level () =
  let at n = Time.of_ns_since_start n in
  let l = Stats.Level.create ~initial:0. ~at:(at 0) in
  Stats.Level.set l 2. ~at:(at 1_000_000_000);
  Stats.Level.set l 1. ~at:(at 3_000_000_000);
  (* 1s at 0, 2s at 2, 1s at 1 => integral 5 level-seconds over 4s. *)
  Alcotest.(check (float 1e-9)) "integral" 5. (Stats.Level.integral l ~upto:(at 4_000_000_000));
  Alcotest.(check (float 1e-9)) "average" 1.25 (Stats.Level.average l ~upto:(at 4_000_000_000));
  Alcotest.(check (float 0.)) "current" 1. (Stats.Level.current l)

let test_summary_empty_guards () =
  let s = Stats.Summary.create () in
  Alcotest.check_raises "min on empty raises" (Invalid_argument "Stats.Summary.min: empty")
    (fun () -> ignore (Stats.Summary.min s));
  Alcotest.check_raises "max on empty raises" (Invalid_argument "Stats.Summary.max: empty")
    (fun () -> ignore (Stats.Summary.max s));
  Stats.Summary.observe s 7.;
  Alcotest.(check (float 0.)) "single observation min" 7. (Stats.Summary.min s);
  Alcotest.(check (float 0.)) "single observation max" 7. (Stats.Summary.max s);
  Stats.Summary.reset s;
  Alcotest.check_raises "guard restored by reset" (Invalid_argument "Stats.Summary.min: empty")
    (fun () -> ignore (Stats.Summary.min s))

let test_trace_empty () =
  let tr = Trace.create () in
  Alcotest.(check int) "total of empty trace is zero" 0 (Time.to_ns (Trace.total tr));
  Alcotest.(check int) "filtered total of empty trace is zero" 0
    (Time.to_ns (Trace.total tr ~cat:"send" ~label:"checksum" ~site:"caller"));
  Alcotest.(check (list string)) "no labels" [] (Trace.labels tr);
  Alcotest.(check (list string)) "no labels under a filter" [] (Trace.labels tr ~cat:"send");
  (* Disabled (the default): adds are dropped, so the totals stay zero. *)
  let at n = Time.of_ns_since_start n in
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"caller" ~start_at:(at 0) ~stop_at:(at 9);
  Alcotest.(check bool) "tracing off by default" false (Trace.enabled tr);
  Alcotest.(check int) "still zero after dropped add" 0
    (Time.to_ns (Trace.total tr ~cat:"send"));
  Alcotest.(check (list string)) "still no labels" [] (Trace.labels tr)

let test_trace () =
  let tr = Trace.create () in
  let at n = Time.of_ns_since_start n in
  Trace.add tr ~cat:"x" ~label:"ignored while off" ~site:"m" ~start_at:(at 0) ~stop_at:(at 5);
  Alcotest.(check int) "disabled records nothing" 0 (List.length (Trace.spans tr));
  Trace.set_enabled tr true;
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"caller" ~start_at:(at 0) ~stop_at:(at 45_000);
  Trace.add tr ~cat:"send" ~label:"checksum" ~site:"server" ~start_at:(at 50_000)
    ~stop_at:(at 95_000);
  Trace.add tr ~cat:"runtime" ~label:"starter" ~site:"caller" ~start_at:(at 100_000)
    ~stop_at:(at 228_000);
  Alcotest.(check int) "three spans" 3 (List.length (Trace.spans tr));
  Alcotest.(check int) "sum by label" 90_000 (Time.to_ns (Trace.total tr ~label:"checksum"));
  Alcotest.(check int) "filter by site" 45_000
    (Time.to_ns (Trace.total tr ~label:"checksum" ~site:"caller"));
  Alcotest.(check int) "filter by cat" 128_000 (Time.to_ns (Trace.total tr ~cat:"runtime"));
  Alcotest.(check (list string))
    "labels in order" [ "checksum"; "starter" ] (Trace.labels tr);
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.spans tr))

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "summary empty guards" `Quick test_summary_empty_guards;
    Alcotest.test_case "level integral" `Quick test_level;
    Alcotest.test_case "trace empty and disabled" `Quick test_trace_empty;
    Alcotest.test_case "trace spans and filters" `Quick test_trace;
  ]
