(* The fleet tier: seeded determinism of whole-cluster runs, the
   binding service's resolve/rebind/stale contract, arrival-generator
   statistics, conservation invariants, and the saturation regression —
   CPU 0 interrupt serialization must be the first bottleneck a
   1-server/64-client incast hits at the default constants. *)

module Gen = Fleet.Gen
module Scenario = Fleet.Scenario
module Cluster = Fleet.Cluster
module Nameserv = Fleet.Nameserv
module Topology = Fleet.Topology

(* Small enough for tier-1 time, big enough to exercise every node. *)
let small_spec =
  {
    Scenario.default with
    Scenario.s_nodes = 3;
    s_clients = 6;
    s_calls = 60;
  }

(* {1 Seeded determinism} *)

let test_render_deterministic () =
  (* Two runs from fresh clusters: the rendered report must be
     byte-identical — no wall-clock, no hash-order, no leftover state. *)
  let r1, _ = Scenario.run small_spec in
  let r2, _ = Scenario.run small_spec in
  Alcotest.(check string)
    "same seed, byte-identical report" (Scenario.render r1) (Scenario.render r2)

let test_seed_changes_report () =
  let r1, _ = Scenario.run small_spec in
  let r2, _ = Scenario.run { small_spec with Scenario.s_seed = 43 } in
  Alcotest.(check bool)
    "different seed, different elapsed" true
    (r1.Scenario.r_elapsed_us <> r2.Scenario.r_elapsed_us)

let test_open_loop_deterministic () =
  let spec =
    { small_spec with Scenario.s_arrival = Gen.Poisson { rate_per_sec = 150. } }
  in
  let r1, _ = Scenario.run spec in
  let r2, _ = Scenario.run spec in
  Alcotest.(check string)
    "open loop is a pure function of the seed" (Scenario.render r1) (Scenario.render r2)

let test_calendar_queue_identical () =
  (* The engine's queue discipline is a pure performance knob: the same
     seed through the calendar queue (and the retransmit timer wheel it
     shares the run with) must render byte-identically to the pairing
     heap. *)
  let r1, _ = Scenario.run { small_spec with Scenario.s_queue = `Heap } in
  let r2, _ = Scenario.run { small_spec with Scenario.s_queue = `Calendar } in
  Alcotest.(check string)
    "heap vs calendar, byte-identical report" (Scenario.render r1) (Scenario.render r2)

(* {1 Conservation and quiescence invariants} *)

let run_and_check spec =
  let r, _ = Scenario.run spec in
  (match Scenario.check r with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invariants violated: %s" (String.concat "; " es));
  r

let test_conservation_uniform () =
  let r = run_and_check small_spec in
  Alcotest.(check int) "issued all" 60 r.Scenario.r_issued;
  Alcotest.(check int) "completed + failed = issued" 60
    (r.Scenario.r_completed + r.Scenario.r_failed)

let test_conservation_straggler () =
  let r = run_and_check { small_spec with Scenario.s_kind = Scenario.Straggler } in
  (* The straggler's own-node p50 must exceed the fast nodes'. *)
  let by_name n = List.find (fun nr -> nr.Scenario.nr_name = n) r.Scenario.r_nodes in
  Alcotest.(check bool) "straggler p50 above node0 p50" true
    ((by_name "node2").Scenario.nr_p50_us > (by_name "node0").Scenario.nr_p50_us)

let test_closed_loop_bound () =
  let r = run_and_check small_spec in
  Alcotest.(check bool) "closed loop bounded by client slots" true
    (r.Scenario.r_max_in_flight <= small_spec.Scenario.s_clients)

let test_open_loop_completes () =
  let r =
    run_and_check
      { small_spec with Scenario.s_arrival = Gen.Pareto { alpha = 1.5; rate_per_sec = 150. } }
  in
  Alcotest.(check int) "no failed calls at moderate load" 0 r.Scenario.r_failed

(* {1 The saturation regression} *)

let test_incast_first_bottleneck_is_cpu0 () =
  (* The paper's §6 finding, reproduced at fleet scale: fanning 64
     clients into one server saturates the server's CPU 0 (all receive
     interrupts serialize there) before the receive-buffer pool, the
     switch egress queue or the worker pool give out. *)
  let spec =
    {
      Scenario.default with
      Scenario.s_nodes = 4;
      s_clients = 64;
      s_calls = 400;
      s_kind = Scenario.Incast;
    }
  in
  let r = run_and_check spec in
  (match r.Scenario.r_bottleneck with
  | Scenario.Cpu0_interrupts -> ()
  | b -> Alcotest.failf "expected Cpu0_interrupts, got %s" (Scenario.bottleneck_to_string b));
  let server = List.hd r.Scenario.r_nodes in
  Alcotest.(check string) "node0 is the server" "server" server.Scenario.nr_role;
  Alcotest.(check bool) "server CPU 0 saturated at p90 completion" true
    (server.Scenario.nr_cpu0_util >= 0.9);
  Alcotest.(check int) "server answered every call" 400 server.Scenario.nr_served

(* {1 The binding service} *)

let mk_cluster () =
  let cl = Cluster.create ~nodes:3 () in
  Cluster.export_service cl ~node:0 ~service:"Alpha" ();
  Cluster.export_service cl ~node:1 ~service:"Beta" ();
  cl

let test_nameserv_resolve () =
  let cl = mk_cluster () in
  let b = Cluster.resolve cl ~node:2 ~service:"Alpha" () in
  Alcotest.(check string) "resolves to the exporting node" "node0" b.Nameserv.b_node_name;
  Alcotest.(check int) "initial generation" 0 b.Nameserv.b_generation;
  Alcotest.(check bool) "fresh binding is not stale" false
    (Nameserv.is_stale cl.Cluster.cl_names b);
  Alcotest.(check (list string)) "directory is sorted" [ "Alpha"; "Beta" ]
    (Nameserv.services cl.Cluster.cl_names)

let test_nameserv_unknown () =
  let cl = mk_cluster () in
  Alcotest.check_raises "unknown service raises Unbound_interface"
    (Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Unbound_interface "Gamma"))
    (fun () -> ignore (Cluster.resolve cl ~node:2 ~service:"Gamma" ()))

let test_nameserv_rebind_stale () =
  let cl = mk_cluster () in
  let old = Cluster.resolve cl ~node:2 ~service:"Alpha" () in
  (* Move Alpha to node1 (which already exports the interface). *)
  Nameserv.rebind cl.Cluster.cl_names ~service:"Alpha" (Cluster.node cl 1).Cluster.nd_rt;
  Alcotest.(check bool) "old binding is stale after rebind" true
    (Nameserv.is_stale cl.Cluster.cl_names old);
  let fresh = Cluster.resolve cl ~node:2 ~service:"Alpha" () in
  Alcotest.(check string) "re-resolution lands on the new node" "node1"
    fresh.Nameserv.b_node_name;
  Alcotest.(check int) "generation bumped" 1 fresh.Nameserv.b_generation;
  Alcotest.(check bool) "fresh binding is current" false
    (Nameserv.is_stale cl.Cluster.cl_names fresh);
  Alcotest.(check int) "rebinds counted" 1 (Nameserv.rebinds cl.Cluster.cl_names);
  Alcotest.(check bool) "stale hits counted" true
    (Nameserv.stale_hits cl.Cluster.cl_names >= 1)

let test_nameserv_register_validation () =
  let cl = mk_cluster () in
  (* node2 has not exported the test interface yet: registering its
     runtime directly must be rejected.  (Checked first — exporting
     below is sticky.) *)
  (let raised =
     try
       Nameserv.register cl.Cluster.cl_names ~service:"Gamma"
         ~intf:Workload.Test_interface.interface (Cluster.node cl 2).Cluster.nd_rt;
       false
     with Invalid_argument _ -> true
   in
   Alcotest.(check bool) "unexported runtime rejected" true raised);
  let raised =
    try
      Cluster.export_service cl ~node:2 ~service:"Alpha" ();
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "duplicate registration rejected" true raised

(* {1 The switched topology} *)

let test_topology_validation () =
  let eng = Sim.Engine.create ~seed:7 () in
  let sw = Topology.create eng ~mbps:10. ~ports:2 () in
  let mac i = Net.Mac.of_string (Printf.sprintf "aa:00:04:00:%02x:10" i) in
  Topology.register_mac sw ~mac:(mac 1) ~port:0;
  (let raised =
     try
       Topology.register_mac sw ~mac:(mac 1) ~port:1;
       false
     with Invalid_argument _ -> true
   in
   Alcotest.(check bool) "duplicate MAC rejected" true raised);
  let raised =
    try
      Topology.register_mac sw ~mac:(mac 2) ~port:9;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad port rejected" true raised

let test_topology_counters_in_report () =
  (* Every unicast frame in a fleet run crosses the switch: forwarded
     must cover request + result traffic and nothing may vanish
     unaccounted at the default egress capacity. *)
  let r, _ = Scenario.run small_spec in
  Alcotest.(check bool) "switch forwarded at least 2 frames per call" true
    (r.Scenario.r_switch_forwarded >= 2 * r.Scenario.r_completed);
  Alcotest.(check int) "no unknown-MAC drops" 0 r.Scenario.r_unknown_drops;
  Alcotest.(check int) "no incast drops at default capacity" 0 r.Scenario.r_incast_drops

(* {1 Arrival-generator statistics (property tests)} *)

let mean samples = List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)

let draw_n rng arrival n = List.init n (fun _ -> Gen.interarrival_us rng arrival)

let prop_poisson_mean =
  QCheck.Test.make ~name:"poisson inter-arrival mean ~ 1/rate" ~count:20
    QCheck.(pair (int_range 1 1000) (int_range 50 5000))
    (fun (seed, rate) ->
      let rate = float_of_int rate in
      let rng = Sim.Rng.create ~seed in
      let m = mean (draw_n rng (Gen.Poisson { rate_per_sec = rate }) 4000) in
      let expect = 1e6 /. rate in
      abs_float (m -. expect) < 0.1 *. expect)

let prop_pareto_tail =
  QCheck.Test.make ~name:"pareto draws bounded below by xm, Hill tail index sane" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let alpha = 1.5 and rate = 200. in
      let xm = 1e6 /. rate *. ((alpha -. 1.) /. alpha) in
      let samples = draw_n rng (Gen.Pareto { alpha; rate_per_sec = rate }) 8000 in
      let all_above = List.for_all (fun x -> x >= xm *. 0.999) samples in
      (* Hill-style estimator over the full sample: for a pure Pareto,
         1/alpha = E[log (x / xm)]. *)
      let inv_alpha = mean (List.map (fun x -> log (x /. xm)) samples) in
      let est = 1. /. inv_alpha in
      all_above && est > 1.2 && est < 1.9)

let prop_pareto_mean =
  QCheck.Test.make ~name:"pareto mean matches the requested rate" ~count:10
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let rate = 200. in
      let m = mean (draw_n rng (Gen.Pareto { alpha = 2.5; rate_per_sec = rate }) 20000) in
      let expect = 1e6 /. rate in
      (* Heavy tail: generous tolerance even at 20k draws. *)
      abs_float (m -. expect) < 0.25 *. expect)

let prop_closed_loop_constant =
  QCheck.Test.make ~name:"closed-loop think gap is the constant" ~count:50
    QCheck.(pair (int_range 1 1000) (float_range 0. 1e5))
    (fun (seed, think) ->
      let rng = Sim.Rng.create ~seed in
      Gen.interarrival_us rng (Gen.Closed { think_us = think }) = think)

let prop_generator_seeded =
  QCheck.Test.make ~name:"same seed, same stream" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let a = Gen.Poisson { rate_per_sec = 500. } in
      draw_n (Sim.Rng.create ~seed) a 100 = draw_n (Sim.Rng.create ~seed) a 100)

let test_generator_validation () =
  let rng = Sim.Rng.create ~seed:1 in
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "alpha <= 1 rejected" true
    (invalid (fun () -> Gen.interarrival_us rng (Gen.Pareto { alpha = 1.; rate_per_sec = 10. })));
  Alcotest.(check bool) "zero rate rejected" true
    (invalid (fun () -> Gen.interarrival_us rng (Gen.Poisson { rate_per_sec = 0. })));
  Alcotest.(check bool) "negative think rejected" true
    (invalid (fun () -> Gen.interarrival_us rng (Gen.Closed { think_us = -1. })));
  Alcotest.(check bool) "pareto xm <= 0 rejected" true
    (invalid (fun () -> Gen.pareto rng ~alpha:2. ~xm:0.))

(* {1 Spec validation} *)

let test_spec_validation () =
  let invalid spec = try ignore (Scenario.run spec); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "1 node rejected" true
    (invalid { small_spec with Scenario.s_nodes = 1 });
  Alcotest.(check bool) "0 clients rejected" true
    (invalid { small_spec with Scenario.s_clients = 0 });
  Alcotest.(check bool) "0 calls rejected" true
    (invalid { small_spec with Scenario.s_calls = 0 });
  Alcotest.(check bool) "negative payload rejected" true
    (invalid { small_spec with Scenario.s_payload = -1 })

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical render" `Quick test_render_deterministic;
          Alcotest.test_case "heap vs calendar identical" `Quick
            test_calendar_queue_identical;
          Alcotest.test_case "seed changes the run" `Quick test_seed_changes_report;
          Alcotest.test_case "open loop deterministic" `Quick test_open_loop_deterministic;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "conservation (uniform)" `Quick test_conservation_uniform;
          Alcotest.test_case "straggler stretches its node" `Quick test_conservation_straggler;
          Alcotest.test_case "closed-loop concurrency bound" `Quick test_closed_loop_bound;
          Alcotest.test_case "open loop completes at moderate load" `Quick
            test_open_loop_completes;
        ] );
      ( "saturation",
        [
          Alcotest.test_case "incast 64->1: CPU 0 interrupts first" `Quick
            test_incast_first_bottleneck_is_cpu0;
        ] );
      ( "nameserv",
        [
          Alcotest.test_case "resolve" `Quick test_nameserv_resolve;
          Alcotest.test_case "unknown service" `Quick test_nameserv_unknown;
          Alcotest.test_case "rebind and staleness" `Quick test_nameserv_rebind_stale;
          Alcotest.test_case "registration validation" `Quick test_nameserv_register_validation;
        ] );
      ( "topology",
        [
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "switch counters in the report" `Quick
            test_topology_counters_in_report;
        ] );
      ( "generators",
        [
          q prop_poisson_mean;
          q prop_pareto_tail;
          q prop_pareto_mean;
          q prop_closed_loop_constant;
          q prop_generator_seeded;
          Alcotest.test_case "validation" `Quick test_generator_validation;
        ] );
      ("spec", [ Alcotest.test_case "validation" `Quick test_spec_validation ]);
    ]
