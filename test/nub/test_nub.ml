module Engine = Sim.Engine
module Time = Sim.Time
module Config = Hw.Config
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Driver = Nub.Driver
module Waiter = Nub.Waiter
module Bufpool = Nub.Bufpool

let us = Time.us
let ip = Net.Ipv4.Addr.of_string

(* {1 Bufpool} *)

let test_bufpool () =
  let p = Bufpool.create ~capacity:3 () in
  Alcotest.(check int) "available" 3 (Bufpool.available p);
  Alcotest.(check bool) "alloc 1" true (Bufpool.try_alloc p);
  Alcotest.(check bool) "alloc 2" true (Bufpool.try_alloc p);
  Alcotest.(check bool) "alloc 3" true (Bufpool.try_alloc p);
  Alcotest.(check bool) "exhausted" false (Bufpool.try_alloc p);
  Alcotest.(check int) "exhaustion counted" 1 (Bufpool.exhaustions p);
  Alcotest.(check int) "in use" 3 (Bufpool.in_use p);
  Bufpool.free p;
  Alcotest.(check bool) "alloc after free" true (Bufpool.try_alloc p);
  Bufpool.free p;
  Bufpool.free p;
  Bufpool.free p;
  Alcotest.(check bool) "double free detected" true
    (try
       Bufpool.free p;
       false
     with Invalid_argument _ -> true)

(* {1 Two-machine world helpers} *)

type world = { eng : Engine.t; link : Hw.Ether_link.t; a : Machine.t; b : Machine.t }

let make_world ?(config = Config.default) () =
  let eng = Engine.create () in
  let link = Hw.Ether_link.create eng ~mbps:config.Config.ethernet_mbps in
  let a = Machine.create eng ~name:"caller" ~config ~link ~station:1 ~ip:(ip "16.0.0.1") () in
  let b = Machine.create eng ~name:"server" ~config ~link ~station:2 ~ip:(ip "16.0.0.2") () in
  { eng; link; a; b }

let make_frame ~src ~dst ~len =
  let w = Wire.Bytebuf.Writer.create len in
  Net.Ethernet.encode w
    { Net.Ethernet.dst = Machine.mac dst; src = Machine.mac src; ethertype = Net.Ethernet.ethertype_ipv4 };
  Wire.Bytebuf.Writer.zeros w (len - Net.Ethernet.header_size);
  Wire.Bytebuf.Writer.contents w

(* {1 Driver} *)

let test_driver_send_and_fast_path () =
  let w = make_world () in
  let got = ref [] in
  Driver.set_fast_handler (Machine.driver w.b) (fun ~ctx ~frame ->
      Cpu_set.charge ctx ~cat:"send+receive" ~label:"Handle interrupt for received pkt"
        (Hw.Timing.rx_demux (Machine.timing w.b));
      got := (Time.since_start_us (Engine.now w.eng), Bytes.length frame) :: !got;
      Driver.Consumed);
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          Driver.send (Machine.driver w.a) ~ctx (make_frame ~src:w.a ~dst:w.b ~len:74)));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 10));
  (match !got with
  | [ (at, len) ] ->
    Alcotest.(check int) "frame length" 74 len;
    (* trap 37 + queue 39 + IPI 10 + 76 + 22 + qbus 70 + wire 59 +
       qbus 80 + io 14 + demux 177 (charged before the timestamp). *)
    Alcotest.(check (float 30.)) "fast path latency" 584. at
  | l -> Alcotest.fail (Printf.sprintf "expected 1 frame, got %d" (List.length l)));
  Alcotest.(check int) "interrupt taken" 1 (Driver.interrupts_taken (Machine.driver w.b));
  Alcotest.(check int) "no slow path" 0 (Driver.frames_to_datalink (Machine.driver w.b))

let test_driver_slow_path () =
  let w = make_world () in
  let slow = ref 0 in
  (* Default fast handler punts everything. *)
  Driver.set_datalink_handler (Machine.driver w.b) (fun ~ctx:_ ~frame:_ -> incr slow);
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          Driver.send (Machine.driver w.a) ~ctx (make_frame ~src:w.a ~dst:w.b ~len:74)));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 10));
  Alcotest.(check int) "datalink handled" 1 !slow;
  Alcotest.(check int) "counted" 1 (Driver.frames_to_datalink (Machine.driver w.b))

let test_driver_buffer_replacement_keeps_credits () =
  let w = make_world () in
  Driver.set_fast_handler (Machine.driver w.b) (fun ~ctx:_ ~frame:_ ->
      (* Consume and immediately free, as Ender would eventually. *)
      Bufpool.free (Machine.pool w.b);
      Driver.Consumed);
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          for _ = 1 to 20 do
            Driver.send (Machine.driver w.a) ~ctx (make_frame ~src:w.a ~dst:w.b ~len:74);
            (* Pace sends so the store-and-forward receiver keeps up. *)
            Engine.delay w.eng (us 400)
          done));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 50));
  Alcotest.(check int) "all 20 received" 20 (Driver.frames_received (Machine.driver w.b));
  Alcotest.(check int) "no pool exhaustion" 0 (Bufpool.exhaustions (Machine.pool w.b))

(* {1 Waiter} *)

let test_waiter_blocking_cost () =
  let w = make_world () in
  let m = w.a in
  let waiter = Machine.new_waiter m in
  let woke_at = ref 0. in
  Machine.spawn_thread m (fun () ->
      Cpu_set.with_cpu (Machine.cpus m) (fun ctx ->
          Waiter.wait waiter ctx;
          woke_at := Time.since_start_us (Engine.now w.eng)));
  Machine.spawn_thread m ~name:"waker" (fun () ->
      Engine.delay w.eng (us 100);
      Cpu_set.with_cpu (Machine.cpus m) (fun ctx -> Waiter.notify waiter ~waker:ctx));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 5));
  (* 100 (delay) + 220 (wakeup charged on waker) + 15 (dispatch). *)
  Alcotest.(check (float 5.)) "wakeup + dispatch costs" 335. !woke_at

let test_waiter_notify_before_wait () =
  let w = make_world () in
  let waiter = Machine.new_waiter w.a in
  let ok = ref false in
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          Waiter.notify waiter ~waker:ctx;
          Waiter.wait waiter ctx;
          ok := true));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 5));
  Alcotest.(check bool) "pre-armed notification consumed" true !ok

let test_waiter_timeout () =
  let w = make_world () in
  let waiter = Machine.new_waiter w.a in
  let outcome = ref `Ok in
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          outcome := Waiter.wait_timeout waiter ctx ~timeout:(us 500)));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 5));
  Alcotest.(check bool) "timed out" true (!outcome = `Timeout)

let test_waiter_busy_wait () =
  let config = { Config.default with busy_wait = true } in
  let w = make_world ~config () in
  let waiter = Machine.new_waiter w.a in
  let woke_at = ref 0. in
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          Waiter.wait waiter ctx;
          woke_at := Time.since_start_us (Engine.now w.eng)));
  Machine.spawn_thread w.a ~name:"waker" (fun () ->
      Engine.delay w.eng (us 100);
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx -> Waiter.notify waiter ~waker:ctx));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 5));
  (* Spin detects the flag within one 5 us poll of the 10 us flag set. *)
  Alcotest.(check bool) "busy wait wakes fast" true (!woke_at < 130.);
  Alcotest.(check bool) "spin costs some cpu" true (!woke_at >= 100.)

let wake_hist m =
  Obs.Metrics.Registry.histogram (Machine.obs m).Obs.Ctx.metrics ~site:"caller"
    ~name:"wakeup_latency_us"

let test_waiter_stale_mark_not_inflated () =
  let w = make_world () in
  let m = w.a in
  let waiter = Machine.new_waiter m in
  let h = wake_hist m in
  (* A notification nobody is waiting for arms the waiter at t=0. *)
  Machine.spawn_thread m ~name:"early-waker" (fun () ->
      Cpu_set.with_cpu (Machine.cpus m) (fun ctx -> Waiter.notify waiter ~waker:ctx));
  Machine.spawn_thread m (fun () ->
      Engine.delay w.eng (us 1000);
      Cpu_set.with_cpu (Machine.cpus m) (fun ctx ->
          (* Fast-path consumption must record the 1000 us sample AND
             clear the mark... *)
          Waiter.wait waiter ctx;
          Engine.delay w.eng (us 1000);
          (* ...so this second, blocked wakeup is measured from the late
             waker's notify, not from t=0. *)
          Waiter.wait waiter ctx));
  Machine.spawn_thread m ~name:"late-waker" (fun () ->
      Engine.delay w.eng (us 3000);
      Cpu_set.with_cpu (Machine.cpus m) (fun ctx -> Waiter.notify waiter ~waker:ctx));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 10));
  Alcotest.(check int) "both wakeups sampled" 2 (Obs.Metrics.Histogram.count h);
  (* With the stale mark kept, the second sample would read ~3200 us
     (resume time minus the t=0 mark) instead of the real ~235 us. *)
  Alcotest.(check bool) "no sample inflated by a stale mark" true
    (Obs.Metrics.Histogram.max_value h < 1500.)

let test_waiter_spin_records_latency () =
  let config = { Config.default with busy_wait = true } in
  let w = make_world ~config () in
  let waiter = Machine.new_waiter w.a in
  let h = wake_hist w.a in
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx -> Waiter.wait waiter ctx));
  Machine.spawn_thread w.a ~name:"waker" (fun () ->
      Engine.delay w.eng (us 100);
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx -> Waiter.notify waiter ~waker:ctx));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 5));
  (* The busy-wait path feeds the same histogram as the blocking path:
     one sample, bounded by the cheap spin wakeup plus one poll. *)
  Alcotest.(check int) "spin wakeup sampled" 1 (Obs.Metrics.Histogram.count h);
  Alcotest.(check bool) "spin latency is the short path" true
    (Obs.Metrics.Histogram.max_value h < 50.)

let test_waiter_timeout_leaves_no_mark () =
  let w = make_world () in
  let waiter = Machine.new_waiter w.a in
  let h = wake_hist w.a in
  Machine.spawn_thread w.a (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx ->
          (* Time out with nothing pending, then go through a real
             notify/wake cycle: exactly one sample, measured from the
             notify. *)
          (match Waiter.wait_timeout waiter ctx ~timeout:(us 500) with
          | `Timeout -> ()
          | `Ok -> Alcotest.fail "unexpected wakeup");
          Waiter.wait waiter ctx));
  Machine.spawn_thread w.a ~name:"waker" (fun () ->
      Engine.delay w.eng (us 2000);
      Cpu_set.with_cpu (Machine.cpus w.a) (fun ctx -> Waiter.notify waiter ~waker:ctx));
  Engine.run_until w.eng (Time.add Time.zero (Time.ms 10));
  Alcotest.(check int) "one wakeup sampled" 1 (Obs.Metrics.Histogram.count h);
  Alcotest.(check bool) "sample measured from the notify" true
    (Obs.Metrics.Histogram.max_value h < 1500.)

let test_machine_validation () =
  let eng = Engine.create () in
  let link = Hw.Ether_link.create eng ~mbps:10. in
  Alcotest.(check bool) "bad config rejected" true
    (try
       ignore
         (Machine.create eng ~name:"x"
            ~config:{ Config.default with cpus = 0 }
            ~link ~station:1 ~ip:(ip "16.0.0.1") ());
       false
     with Invalid_argument _ -> true)

let test_idle_load () =
  let w = make_world () in
  Machine.start_idle_load w.a;
  Engine.run_until w.eng (Time.add Time.zero (Time.sec 2));
  let busy = Machine.average_busy_cpus w.a ~upto:(Engine.now w.eng) in
  Alcotest.(check bool) "idle load near 0.15 CPUs" true (busy > 0.08 && busy < 0.25)

let suite =
  [
    Alcotest.test_case "bufpool" `Quick test_bufpool;
    Alcotest.test_case "driver send + fast path" `Quick test_driver_send_and_fast_path;
    Alcotest.test_case "driver slow path" `Quick test_driver_slow_path;
    Alcotest.test_case "driver buffer replacement" `Quick test_driver_buffer_replacement_keeps_credits;
    Alcotest.test_case "waiter blocking cost" `Quick test_waiter_blocking_cost;
    Alcotest.test_case "waiter notify before wait" `Quick test_waiter_notify_before_wait;
    Alcotest.test_case "waiter timeout" `Quick test_waiter_timeout;
    Alcotest.test_case "waiter busy wait" `Quick test_waiter_busy_wait;
    Alcotest.test_case "waiter stale mark not inflated" `Quick test_waiter_stale_mark_not_inflated;
    Alcotest.test_case "waiter spin records latency" `Quick test_waiter_spin_records_latency;
    Alcotest.test_case "waiter timeout leaves no mark" `Quick test_waiter_timeout_leaves_no_mark;
    Alcotest.test_case "machine validation" `Quick test_machine_validation;
    Alcotest.test_case "idle load" `Quick test_idle_load;
  ]

let () = Alcotest.run "nub" [ ("nub", suite) ]
