(* The deterministic simulation-testing harness, bounded for tier 1:
   a handful of seeds must pass every invariant, an intentionally
   crippled protocol must be caught and shrunk to a minimal fault plan,
   and everything must replay bit-identically from the seed. *)

module Explorer = Check.Explorer
module Fault_plan = Check.Fault_plan
module Invariant = Check.Invariant

(* Small workload so the whole suite stays in tier-1 time. *)
let config = { Explorer.default_config with Explorer.threads = 2; calls_per_thread = 3 }

let test_plan_generation_deterministic () =
  let a = Fault_plan.generate ~seed:11 () and b = Fault_plan.generate ~seed:11 () in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  Alcotest.(check bool) "different seeds differ" true
    (Fault_plan.generate ~seed:12 () <> a);
  Alcotest.(check bool) "bounded length" true
    (let n = List.length a.Fault_plan.steps in
     n >= 1 && n <= 6);
  (* Printing covers every step shape without raising. *)
  for seed = 1 to 20 do
    let p = Fault_plan.generate ~seed () in
    Alcotest.(check bool) "printable" true (String.length (Fault_plan.to_string p) > 0)
  done

let test_explorer_clean_seeds () =
  let summary = Explorer.explore config ~base_seed:1 ~seeds:6 in
  List.iter
    (fun o ->
      Alcotest.failf "seed %d violated invariants: %s" o.Explorer.seed
        (String.concat "; " (List.map Invariant.violation_to_string o.Explorer.violations)))
    summary.Explorer.failures;
  Alcotest.(check int) "all seeds ran" 6 summary.Explorer.seeds_run

let test_explorer_clean_fifo () =
  (* The frozen schedule must pass too (it is what every other test
     runs under). *)
  let config = { config with Explorer.tie_break = `Fifo } in
  let summary = Explorer.explore config ~base_seed:31 ~seeds:3 in
  Alcotest.(check int) "no violations under FIFO ties" 0
    (List.length summary.Explorer.failures)

let test_run_is_deterministic () =
  let a = Explorer.run_seed config ~seed:5 and b = Explorer.run_seed config ~seed:5 in
  Alcotest.(check int) "events" a.Explorer.events_executed b.Explorer.events_executed;
  Alcotest.(check int) "frames" a.Explorer.frames_carried b.Explorer.frames_carried;
  Alcotest.(check int) "ok calls" a.Explorer.calls_ok b.Explorer.calls_ok;
  Alcotest.(check int) "failed calls" a.Explorer.calls_failed b.Explorer.calls_failed

let first_drop_seed =
  (* The demonstration bug needs a plan with a frame fault that costs a
     packet; nearly every seed has one, find the first. *)
  let rec go seed =
    if seed > 50 then Alcotest.fail "no drop-bearing seed in 1..50"
    else
      let p = Fault_plan.generate ~seed () in
      if
        (not (Fault_plan.has_restart p))
        && List.exists
             (function
               | Fault_plan.Frame_fault { action = Fault_plan.Drop; _ } -> true
               | _ -> false)
             p.Fault_plan.steps
      then seed
      else go (seed + 1)
  in
  go 1

let test_injected_bug_caught_and_shrunk () =
  let buggy = { config with Explorer.bug = Explorer.No_retransmit } in
  let seed = first_drop_seed in
  let o = Explorer.run_seed buggy ~seed in
  Alcotest.(check bool) "violation detected" true (o.Explorer.violations <> []);
  let minimal = Explorer.shrink buggy o in
  Alcotest.(check bool) "shrunk plan still fails" true (minimal.Explorer.violations <> []);
  let n0 = List.length o.Explorer.plan.Fault_plan.steps in
  let n1 = List.length minimal.Explorer.plan.Fault_plan.steps in
  Alcotest.(check bool) "minimal plan no larger" true (n1 <= n0);
  Alcotest.(check bool) "minimal plan non-empty" true (n1 >= 1);
  (* 1-minimality: removing any remaining step loses the failure. *)
  List.iteri
    (fun i _ ->
      let steps =
        List.filteri (fun j _ -> j <> i) minimal.Explorer.plan.Fault_plan.steps
      in
      let o' =
        Explorer.run_plan buggy ~seed ~plan:{ minimal.Explorer.plan with Fault_plan.steps }
      in
      Alcotest.(check bool)
        (Printf.sprintf "dropping step %d of the minimal plan loses the failure" i)
        true (o'.Explorer.violations = []))
    minimal.Explorer.plan.Fault_plan.steps;
  (* The printed seed replays the same violations. *)
  let replay = Explorer.run_plan buggy ~seed ~plan:minimal.Explorer.plan in
  Alcotest.(check (list string)) "replay reproduces the violations"
    (List.map Invariant.violation_to_string minimal.Explorer.violations)
    (List.map Invariant.violation_to_string replay.Explorer.violations)

let test_failure_report_renders () =
  let buggy = { config with Explorer.bug = Explorer.No_retransmit } in
  let summary = Explorer.explore buggy ~base_seed:first_drop_seed ~seeds:1 in
  match summary.Explorer.failures with
  | [] -> Alcotest.fail "expected the crippled protocol to fail"
  | o :: _ ->
    let report = Format.asprintf "%a" Explorer.pp_outcome o in
    let has_sub sub =
      let n = String.length sub and s = report in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "report names the seed" true
      (has_sub (Printf.sprintf "seed %d" o.Explorer.seed));
    Alcotest.(check bool) "report shows the plan" true (has_sub "fault plan");
    Alcotest.(check bool) "report has a replay line" true (has_sub "replay:");
    Alcotest.(check bool) "report dumps the trace" true (has_sub "trace log")

let test_restart_plans_allow_clean_failure () =
  (* A plan that kills the server mid-run: calls may fail, but only
     cleanly, and every other invariant still holds. *)
  let plan =
    {
      Fault_plan.seed = 0;
      steps =
        [ Fault_plan.Restart_server { after_us = 20_000; down_us = 400_000 } ];
    }
  in
  let o =
    Explorer.run_plan
      { config with Explorer.calls_per_thread = 2 }
      ~seed:3 ~plan
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map Invariant.violation_to_string o.Explorer.violations);
  Alcotest.(check bool) "all calls accounted for" true (o.Explorer.calls_ok >= 1)

let test_matrix_smoke () =
  (* One seed per cell across the full 24-cell configuration matrix:
     every cell must construct (uniprocessor, streaming, secured,
     multi-fragment payloads) and pass the invariants. *)
  let summary = Explorer.explore_matrix config ~base_seed:41 ~seeds_per_cell:1 in
  List.iter
    (fun o ->
      Alcotest.failf "matrix seed %d violated invariants: %s" o.Explorer.seed
        (String.concat "; " (List.map Invariant.violation_to_string o.Explorer.violations)))
    summary.Explorer.failures;
  Alcotest.(check int) "every cell ran" (List.length Explorer.matrix_cells)
    summary.Explorer.seeds_run

(* {1 Parallel determinism}

   jobs=1 and jobs>1 must produce identical summaries: same seed counts,
   same failures, same shrunk plans and traces, in the same order.  The
   render includes the full pp_outcome report, so any divergence in the
   plan, violations or trace shows up as a string mismatch. *)

let render_summary (s : Explorer.summary) =
  Printf.sprintf "seeds_run=%d\n%s" s.Explorer.seeds_run
    (String.concat "\n---\n"
       (List.map (fun o -> Format.asprintf "%a" Explorer.pp_outcome o) s.Explorer.failures))

let test_parallel_explore_identical () =
  (* Clean config: identical (empty) failure lists and seed counts. *)
  let serial = Explorer.explore config ~jobs:1 ~base_seed:1 ~seeds:6 in
  let par = Explorer.explore config ~jobs:4 ~base_seed:1 ~seeds:6 in
  Alcotest.(check string) "clean sweep identical" (render_summary serial)
    (render_summary par);
  (* Buggy config: the failing outcome — including the shrunk plan and
     the trace — must match byte for byte. *)
  let buggy = { config with Explorer.bug = Explorer.No_retransmit } in
  let serial = Explorer.explore buggy ~jobs:1 ~base_seed:first_drop_seed ~seeds:3 in
  let par = Explorer.explore buggy ~jobs:4 ~base_seed:first_drop_seed ~seeds:3 in
  Alcotest.(check bool) "buggy sweep finds failures" true
    (serial.Explorer.failures <> []);
  Alcotest.(check string) "buggy sweep identical" (render_summary serial)
    (render_summary par)

let test_parallel_matrix_identical () =
  let serial = Explorer.explore_matrix config ~jobs:1 ~base_seed:41 ~seeds_per_cell:1 in
  let par = Explorer.explore_matrix config ~jobs:4 ~base_seed:41 ~seeds_per_cell:1 in
  Alcotest.(check int) "same seed count" serial.Explorer.seeds_run par.Explorer.seeds_run;
  Alcotest.(check string) "matrix sweep identical" (render_summary serial)
    (render_summary par)

let suite =
  [
    Alcotest.test_case "plan generation deterministic" `Quick test_plan_generation_deterministic;
    Alcotest.test_case "clean seeds pass all invariants" `Quick test_explorer_clean_seeds;
    Alcotest.test_case "clean under FIFO ties too" `Quick test_explorer_clean_fifo;
    Alcotest.test_case "runs are deterministic" `Quick test_run_is_deterministic;
    Alcotest.test_case "injected bug caught and shrunk" `Quick test_injected_bug_caught_and_shrunk;
    Alcotest.test_case "failure report renders" `Quick test_failure_report_renders;
    Alcotest.test_case "restart plans allow clean failure" `Quick
      test_restart_plans_allow_clean_failure;
    Alcotest.test_case "configuration matrix smoke" `Quick test_matrix_smoke;
    Alcotest.test_case "parallel explore identical to serial" `Quick
      test_parallel_explore_identical;
    Alcotest.test_case "parallel matrix identical to serial" `Quick
      test_parallel_matrix_identical;
  ]

let () = Alcotest.run "check" [ ("explorer", suite) ]
