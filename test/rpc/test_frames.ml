module Frames = Rpc.Frames
module Proto = Rpc.Proto
module Timing = Hw.Timing
module Config = Hw.Config

let timing = Timing.create Config.default

let ep station ip = { Frames.mac = Net.Mac.of_station station; ip = Net.Ipv4.Addr.of_string ip }
let src = ep 1 "16.0.0.1"
let dst = ep 2 "16.0.0.2"

let hdr ?(ptype = Proto.Call) ?(data_len = 0) () =
  {
    Proto.ptype;
    please_ack = false;
    no_frag_ack = false;
    secured = false;
    activity = { Proto.Activity.caller_ip = src.Frames.ip; caller_space = 1; thread = 1 };
    seq = 7;
    server_space = 1;
    interface_id = 42l;
    proc_idx = 0;
    frag_idx = 0;
    frag_count = 1;
    data_len;
    checksum = 0;
  }

let build ?(timing = timing) payload =
  Frames.build timing ~src ~dst ~hdr:(hdr ()) ~payload ~payload_pos:0
    ~payload_len:(Bytes.length payload)

let test_sizes () =
  Alcotest.(check int) "empty payload = 74" 74 (Bytes.length (build Bytes.empty));
  Alcotest.(check int) "full payload = 1514" 1514 (Bytes.length (build (Bytes.create 1440)));
  Alcotest.(check bool) "oversize rejected" true
    (try
       ignore (build (Bytes.create 1441));
       false
     with Invalid_argument _ -> true)

let test_roundtrip () =
  let payload = Bytes.of_string "payload bytes here" in
  let frame = build payload in
  match Frames.parse timing frame with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check bool) "src mac" true (Net.Mac.equal p.Frames.p_src.Frames.mac src.Frames.mac);
    Alcotest.(check bool) "src ip" true
      (Net.Ipv4.Addr.equal p.Frames.p_src.Frames.ip src.Frames.ip);
    Alcotest.(check int) "seq" 7 p.Frames.p_hdr.Proto.seq;
    Alcotest.(check int) "data_len" (Bytes.length payload) p.Frames.p_hdr.Proto.data_len;
    Alcotest.(check bytes) "payload" payload (Wire.Bytebuf.View.to_bytes p.Frames.p_payload)

let test_checksum_detects () =
  let frame = build (Bytes.of_string "some sensitive data") in
  (* Flip one payload byte (payload starts at 74). *)
  Bytes.set frame 80 'X';
  match Frames.parse timing frame with
  | Ok _ -> Alcotest.fail "accepted corrupted frame"
  | Error e -> Alcotest.(check string) "checksum error" "udp: bad checksum" e

let test_checksums_disabled_pass_corruption () =
  let no_cks = Timing.create { Config.default with udp_checksums = false } in
  let frame = build ~timing:no_cks (Bytes.of_string "some sensitive data") in
  Bytes.set frame 80 'X';
  match Frames.parse no_cks frame with
  | Ok p ->
    Alcotest.(check bool) "corruption passes silently" true
      (Wire.Bytebuf.View.get p.Frames.p_payload 6 = 'X')
  | Error e -> Alcotest.fail e

let test_raw_ethernet_mode () =
  let raw = Timing.create { Config.default with raw_ethernet = true } in
  let payload = Bytes.of_string "raw mode payload" in
  let frame =
    Frames.build raw ~src ~dst ~hdr:(hdr ()) ~payload ~payload_pos:0
      ~payload_len:(Bytes.length payload)
  in
  (* 28 bytes smaller: no IP or UDP headers. *)
  Alcotest.(check int) "raw frame size" (46 + Bytes.length payload) (Bytes.length frame);
  (match Frames.parse raw frame with
  | Ok p -> Alcotest.(check bytes) "raw payload" payload (Wire.Bytebuf.View.to_bytes p.Frames.p_payload)
  | Error e -> Alcotest.fail e);
  (* The embedded end-to-end checksum still catches corruption. *)
  let corrupted = Bytes.copy frame in
  Bytes.set corrupted 50 'Z';
  match Frames.parse raw corrupted with
  | Ok _ -> Alcotest.fail "raw mode accepted corruption"
  | Error e -> Alcotest.(check string) "raw checksum error" "rpc: bad end-to-end checksum" e

let test_wrong_layer_rejected () =
  let frame = build Bytes.empty in
  (* Not the RPC UDP port: patch the UDP dst port (offset 14+20+2). *)
  let wrong_port = Bytes.copy frame in
  Bytes.set_uint16_be wrong_port 36 9999;
  (match Frames.parse timing wrong_port with
  | Ok _ -> Alcotest.fail "accepted wrong port"
  | Error _ -> ());
  let raw = Timing.create { Config.default with raw_ethernet = true } in
  match Frames.parse raw frame with
  | Ok _ -> Alcotest.fail "raw parser accepted IP frame"
  | Error _ -> ()

let prop_roundtrip =
  QCheck.Test.make ~name:"frame build/parse roundtrip" ~count:150
    QCheck.(string_of_size (QCheck.Gen.int_range 0 1440))
    (fun s ->
      let payload = Bytes.of_string s in
      let frame = build payload in
      match Frames.parse timing frame with
      | Ok p -> Wire.Bytebuf.View.equal_bytes p.Frames.p_payload payload
      | Error _ -> false)

(* {1 Malformed frames stay [Error], never exceptions} *)

let all_timings =
  [
    ("udp", timing);
    ("udp-nocks", Timing.create { Config.default with udp_checksums = false });
    ("raw", Timing.create { Config.default with raw_ethernet = true });
    ("raw-nocks", Timing.create { Config.default with raw_ethernet = true; udp_checksums = false });
  ]

let test_truncation_never_raises () =
  (* Every prefix of a valid frame under every regime must yield Error.
     Regression: lengths 14..45 of a raw-mode frame used to raise
     Invalid_argument out of the checksum-field peek. *)
  List.iter
    (fun (label, t) ->
      let frame =
        Frames.build t ~src ~dst ~hdr:(hdr ()) ~payload:(Bytes.create 64) ~payload_pos:0
          ~payload_len:64
      in
      for k = 0 to Bytes.length frame - 1 do
        match Frames.parse t (Bytes.sub frame 0 k) with
        | Ok _ -> Alcotest.fail (Printf.sprintf "[%s] accepted %d-byte prefix" label k)
        | Error _ -> ()
        | exception e ->
          Alcotest.fail
            (Printf.sprintf "[%s] %d-byte prefix raised %s" label k (Printexc.to_string e))
      done)
    all_timings

let test_ip_total_length_exceeds_frame () =
  let frame = build (Bytes.of_string "twelve bytes") in
  (* Inflate the IPv4 total length past the frame's end and refresh the
     header checksum so the length check itself is reached. *)
  Bytes.set_uint16_be frame 16 (Bytes.get_uint16_be frame 16 + 100);
  Bytes.set_uint16_be frame 24 0;
  Bytes.set_uint16_be frame 24 (Wire.Checksum.checksum frame ~pos:14 ~len:20);
  match Frames.parse timing frame with
  | Ok _ -> Alcotest.fail "accepted overlong total length"
  | Error e -> Alcotest.(check string) "total length error" "ipv4: total length exceeds frame" e

let test_trailing_padding_tolerated () =
  (* Link-layer padding after the datagram must not change the parse:
     the UDP layer is confined to exactly the IP payload. *)
  let payload = Bytes.of_string "padded frame payload" in
  let frame = build payload in
  let padded = Bytes.cat frame (Bytes.make 17 '\xee') in
  match Frames.parse timing padded with
  | Ok p ->
    Alcotest.(check bytes) "payload unchanged" payload
      (Wire.Bytebuf.View.to_bytes p.Frames.p_payload)
  | Error e -> Alcotest.fail e

let test_parse_view_matches_parse () =
  let module V = Wire.Bytebuf.View in
  List.iter
    (fun (label, t) ->
      let frame =
        Frames.build t ~src ~dst ~hdr:(hdr ()) ~payload:(Bytes.of_string "view parity")
          ~payload_pos:0 ~payload_len:11
      in
      List.iter
        (fun mutilate ->
          let input = mutilate (Bytes.copy frame) in
          (* Embed mid-buffer so absolute-offset bugs can't hide. *)
          let big = Bytes.make (Bytes.length input + 9) '\x5a' in
          Bytes.blit input 0 big 4 (Bytes.length input);
          let v = V.of_bytes ~pos:4 ~len:(Bytes.length input) big in
          let show = function
            | Ok p -> "ok:" ^ V.to_string p.Frames.p_payload
            | Error e -> "error:" ^ e
          in
          Alcotest.(check string)
            (label ^ ": parse = parse_view")
            (show (Frames.parse t input))
            (show (Frames.parse_view t v)))
        [
          (fun b -> b);
          (fun b -> Bytes.sub b 0 20);
          (fun b ->
            Bytes.set b 50 'X';
            b);
        ])
    all_timings

let prop_header_roundtrip =
  QCheck.Test.make ~name:"randomized header roundtrip (all regimes)" ~count:120
    QCheck.(
      pair
        (pair (int_bound 0xffff) (int_bound 0xffff))
        (pair (pair (int_bound 0xffff) bool) (int_bound 3)))
    (fun ((seq, proc_idx), ((thread, please_ack), regime)) ->
      let _, t = List.nth all_timings regime in
      let h =
        {
          (hdr ()) with
          Proto.seq;
          proc_idx;
          please_ack;
          activity = { Proto.Activity.caller_ip = src.Frames.ip; caller_space = 3; thread };
        }
      in
      let payload = Bytes.make (seq mod 97) 'q' in
      let frame =
        Frames.build t ~src ~dst ~hdr:h ~payload ~payload_pos:0
          ~payload_len:(Bytes.length payload)
      in
      match Frames.parse t frame with
      | Ok p ->
        p.Frames.p_hdr.Proto.seq = seq
        && p.Frames.p_hdr.Proto.proc_idx = proc_idx
        && p.Frames.p_hdr.Proto.please_ack = please_ack
        && p.Frames.p_hdr.Proto.activity.Proto.Activity.thread = thread
        && Wire.Bytebuf.View.equal_bytes p.Frames.p_payload payload
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "paper frame sizes" `Quick test_sizes;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "checksum detects corruption" `Quick test_checksum_detects;
    Alcotest.test_case "disabled checksums pass corruption" `Quick
      test_checksums_disabled_pass_corruption;
    Alcotest.test_case "raw ethernet mode" `Quick test_raw_ethernet_mode;
    Alcotest.test_case "wrong layer rejected" `Quick test_wrong_layer_rejected;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "truncation never raises (all regimes)" `Quick
      test_truncation_never_raises;
    Alcotest.test_case "ip total length exceeds frame" `Quick test_ip_total_length_exceeds_frame;
    Alcotest.test_case "trailing link padding tolerated" `Quick test_trailing_padding_tolerated;
    Alcotest.test_case "parse_view matches parse" `Quick test_parse_view_matches_parse;
    QCheck_alcotest.to_alcotest prop_header_roundtrip;
  ]
