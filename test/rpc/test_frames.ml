module Frames = Rpc.Frames
module Proto = Rpc.Proto
module Timing = Hw.Timing
module Config = Hw.Config

let timing = Timing.create Config.default

let ep station ip = { Frames.mac = Net.Mac.of_station station; ip = Net.Ipv4.Addr.of_string ip }
let src = ep 1 "16.0.0.1"
let dst = ep 2 "16.0.0.2"

let hdr ?(ptype = Proto.Call) ?(data_len = 0) () =
  {
    Proto.ptype;
    please_ack = false;
    no_frag_ack = false;
    secured = false;
    activity = { Proto.Activity.caller_ip = src.Frames.ip; caller_space = 1; thread = 1 };
    seq = 7;
    server_space = 1;
    interface_id = 42l;
    proc_idx = 0;
    frag_idx = 0;
    frag_count = 1;
    data_len;
    checksum = 0;
  }

let build ?(timing = timing) payload =
  Frames.build timing ~src ~dst ~hdr:(hdr ()) ~payload ~payload_pos:0
    ~payload_len:(Bytes.length payload)

let test_sizes () =
  Alcotest.(check int) "empty payload = 74" 74 (Bytes.length (build Bytes.empty));
  Alcotest.(check int) "full payload = 1514" 1514 (Bytes.length (build (Bytes.create 1440)));
  Alcotest.(check bool) "oversize rejected" true
    (try
       ignore (build (Bytes.create 1441));
       false
     with Invalid_argument _ -> true)

let test_roundtrip () =
  let payload = Bytes.of_string "payload bytes here" in
  let frame = build payload in
  match Frames.parse timing frame with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check bool) "src mac" true (Net.Mac.equal p.Frames.p_src.Frames.mac src.Frames.mac);
    Alcotest.(check bool) "src ip" true
      (Net.Ipv4.Addr.equal p.Frames.p_src.Frames.ip src.Frames.ip);
    Alcotest.(check int) "seq" 7 p.Frames.p_hdr.Proto.seq;
    Alcotest.(check int) "data_len" (Bytes.length payload) p.Frames.p_hdr.Proto.data_len;
    Alcotest.(check bytes) "payload" payload (Wire.Bytebuf.View.to_bytes p.Frames.p_payload)

let test_checksum_detects () =
  let frame = build (Bytes.of_string "some sensitive data") in
  (* Flip one payload byte (payload starts at 74). *)
  Bytes.set frame 80 'X';
  match Frames.parse timing frame with
  | Ok _ -> Alcotest.fail "accepted corrupted frame"
  | Error e -> Alcotest.(check string) "checksum error" "udp: bad checksum" e

let test_checksums_disabled_pass_corruption () =
  let no_cks = Timing.create { Config.default with udp_checksums = false } in
  let frame = build ~timing:no_cks (Bytes.of_string "some sensitive data") in
  Bytes.set frame 80 'X';
  match Frames.parse no_cks frame with
  | Ok p ->
    Alcotest.(check bool) "corruption passes silently" true
      (Wire.Bytebuf.View.get p.Frames.p_payload 6 = 'X')
  | Error e -> Alcotest.fail e

let test_raw_ethernet_mode () =
  let raw = Timing.create { Config.default with raw_ethernet = true } in
  let payload = Bytes.of_string "raw mode payload" in
  let frame =
    Frames.build raw ~src ~dst ~hdr:(hdr ()) ~payload ~payload_pos:0
      ~payload_len:(Bytes.length payload)
  in
  (* 28 bytes smaller: no IP or UDP headers. *)
  Alcotest.(check int) "raw frame size" (46 + Bytes.length payload) (Bytes.length frame);
  (match Frames.parse raw frame with
  | Ok p -> Alcotest.(check bytes) "raw payload" payload (Wire.Bytebuf.View.to_bytes p.Frames.p_payload)
  | Error e -> Alcotest.fail e);
  (* The embedded end-to-end checksum still catches corruption. *)
  let corrupted = Bytes.copy frame in
  Bytes.set corrupted 50 'Z';
  match Frames.parse raw corrupted with
  | Ok _ -> Alcotest.fail "raw mode accepted corruption"
  | Error e -> Alcotest.(check string) "raw checksum error" "rpc: bad end-to-end checksum" e

let test_wrong_layer_rejected () =
  let frame = build Bytes.empty in
  (* Not the RPC UDP port: patch the UDP dst port (offset 14+20+2). *)
  let wrong_port = Bytes.copy frame in
  Bytes.set_uint16_be wrong_port 36 9999;
  (match Frames.parse timing wrong_port with
  | Ok _ -> Alcotest.fail "accepted wrong port"
  | Error _ -> ());
  let raw = Timing.create { Config.default with raw_ethernet = true } in
  match Frames.parse raw frame with
  | Ok _ -> Alcotest.fail "raw parser accepted IP frame"
  | Error _ -> ()

let prop_roundtrip =
  QCheck.Test.make ~name:"frame build/parse roundtrip" ~count:150
    QCheck.(string_of_size (QCheck.Gen.int_range 0 1440))
    (fun s ->
      let payload = Bytes.of_string s in
      let frame = build payload in
      match Frames.parse timing frame with
      | Ok p -> Wire.Bytebuf.View.equal_bytes p.Frames.p_payload payload
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "paper frame sizes" `Quick test_sizes;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "checksum detects corruption" `Quick test_checksum_detects;
    Alcotest.test_case "disabled checksums pass corruption" `Quick
      test_checksums_disabled_pass_corruption;
    Alcotest.test_case "raw ethernet mode" `Quick test_raw_ethernet_mode;
    Alcotest.test_case "wrong layer rejected" `Quick test_wrong_layer_rejected;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
