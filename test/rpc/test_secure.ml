(* The authenticated/secure-call hooks (§7): sealing, key checks,
   tamper detection end-to-end. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module Secure = Rpc.Secure
module World = Workload.World

let key = Secure.key_of_string "firefly-shared-secret"
let wrong_key = Secure.key_of_string "not-the-secret"

(* {1 Unit: seal/unseal} *)

let test_roundtrip () =
  let plain = Bytes.of_string "attack at dawn" in
  let sealed = Secure.seal key ~seq:7 plain in
  Alcotest.(check int) "overhead" (Bytes.length plain + Secure.overhead_bytes)
    (Bytes.length sealed);
  Alcotest.(check bool) "ciphertext differs" false
    (Bytes.equal (Bytes.sub sealed 0 (Bytes.length plain)) plain);
  match Secure.unseal key ~seq:7 sealed with
  | Ok p -> Alcotest.(check bytes) "roundtrip" plain p
  | Error e -> Alcotest.fail e

let test_wrong_key () =
  let sealed = Secure.seal key ~seq:1 (Bytes.of_string "secret") in
  match Secure.unseal wrong_key ~seq:1 sealed with
  | Ok _ -> Alcotest.fail "wrong key accepted"
  | Error _ -> ()

let test_replay_seq () =
  let sealed = Secure.seal key ~seq:5 (Bytes.of_string "pay alice 5") in
  match Secure.unseal key ~seq:6 sealed with
  | Ok _ -> Alcotest.fail "replayed under different seq"
  | Error _ -> ()

let test_tamper () =
  let sealed = Secure.seal key ~seq:2 (Bytes.of_string "amount=00100") in
  Bytes.set sealed 8 (Char.chr (Char.code (Bytes.get sealed 8) lxor 1));
  match Secure.unseal key ~seq:2 sealed with
  | Ok _ -> Alcotest.fail "tampering undetected"
  | Error _ -> ()

let test_truncation () =
  match Secure.unseal key ~seq:0 (Bytes.create 3) with
  | Ok _ -> Alcotest.fail "truncated accepted"
  | Error _ -> ()

let prop_roundtrip =
  QCheck.Test.make ~name:"seal/unseal roundtrip" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 2000)) small_int)
    (fun (s, seq) ->
      let plain = Bytes.of_string s in
      match Secure.unseal key ~seq (Secure.seal key ~seq plain) with
      | Ok p -> Bytes.equal p plain
      | Error _ -> false)

(* {1 End to end} *)

let vault_intf =
  Idl.interface ~name:"Vault" ~version:1
    [
      Idl.proc "deposit"
        [ Idl.arg "amount" Idl.T_int; Idl.arg ~mode:Idl.Var_out "balance" Idl.T_int ];
      Idl.proc "statement"
        [ Idl.arg ~mode:Idl.Var_out "lines" (Idl.T_var_bytes 8000) ];
    ]

let make_impls () : Runtime.impl array =
  let balance = ref 0l in
  [|
    (fun _ctx args ->
      match args with
      | [ Marshal.V_int amount; _ ] ->
        balance := Int32.add !balance amount;
        [ Marshal.V_int !balance ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "deposit"));
    (fun _ctx _ -> [ Marshal.V_bytes (Bytes.make 5000 's') ]);
  |]

let with_vault ?caller_config ?server_config ?import_auth f =
  let w = World.create ?caller_config ?server_config ~export_test:false () in
  Binder.export w.World.binder w.World.server_rt vault_intf ~impls:(make_impls ()) ~workers:2
    ~auth:key;
  let binding =
    Binder.import w.World.binder w.World.caller_rt ~name:"Vault" ~version:1
      ~options:{ Runtime.retransmit_after = Time.ms 30; max_retries = 3; backoff = None }
      ?auth:import_auth ()
  in
  let out = ref None in
  let gate = Sim.Gate.create w.World.eng in
  Machine.spawn_thread w.World.caller ~name:"vault-client" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          out := Some (f w binding client ctx));
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Option.get !out

let deposit binding client ctx n =
  Runtime.call_by_name binding client ctx ~proc:"deposit"
    ~args:[ Marshal.V_int (Int32.of_int n); Marshal.V_int 0l ]

let test_secured_call_roundtrip () =
  let balances =
    with_vault ~import_auth:key (fun _w binding client ctx ->
        let first = deposit binding client ctx 100 in
        let second = deposit binding client ctx 42 in
        [ first; second ])
  in
  Alcotest.(check bool) "running balance over secured calls" true
    (balances = [ [ Marshal.V_int 100l ]; [ Marshal.V_int 142l ] ])

let test_secured_multi_packet () =
  let out =
    with_vault ~import_auth:key (fun _w binding client ctx ->
        Runtime.call_by_name binding client ctx ~proc:"statement"
          ~args:[ Marshal.V_bytes Bytes.empty ])
  in
  match out with
  | [ Marshal.V_bytes b ] ->
    Alcotest.(check int) "5000-byte secured result" 5000 (Bytes.length b);
    Alcotest.(check bool) "content" true (Bytes.for_all (fun c -> c = 's') b)
  | _ -> Alcotest.fail "bad result"

let test_unauthenticated_rejected () =
  let rejected =
    with_vault (fun _w binding client ctx ->
        try
          ignore (deposit binding client ctx 100);
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed msg) ->
          String.length msg > 0)
  in
  Alcotest.(check bool) "keyless caller rejected" true rejected

let test_wrong_key_rejected () =
  let rejected =
    with_vault ~import_auth:wrong_key (fun _w binding client ctx ->
        try
          ignore (deposit binding client ctx 100);
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> true)
  in
  Alcotest.(check bool) "wrong key rejected" true rejected

let test_local_calls_trusted () =
  (* A keyed export still accepts same-machine (shared-memory) calls:
     the paper's shared buffer pool already assumes machine-local
     trust (§3.2). *)
  let w = World.create ~export_test:false () in
  Binder.export w.World.binder w.World.caller_rt vault_intf ~impls:(make_impls ()) ~workers:1
    ~auth:key;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"Vault" ~version:1 () in
  Alcotest.(check bool) "local binding" true (Runtime.is_local binding);
  let gate = Sim.Gate.create w.World.eng in
  let ok = ref false in
  Machine.spawn_thread w.World.caller ~name:"local" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          ok := deposit binding client ctx 7 = [ Marshal.V_int 7l ]);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "trusted local call passed" true !ok

let test_integrity_without_udp_checksums () =
  (* Even with UDP checksums off (§4.2.4), the authenticator catches a
     corrupted secured call — end-to-end integrity moves up a layer.
     An authentication failure is a hard error, not a retransmission. *)
  let config = { Hw.Config.default with Hw.Config.udp_checksums = false } in
  let caught =
    with_vault ~caller_config:config ~server_config:config ~import_auth:key
      (fun w binding client ctx ->
        let corrupt_first_big =
          let fired = ref false in
          fun (f : Bytes.t) ->
            if (not !fired) && Bytes.length f > 80 then begin
              fired := true;
              Hw.Ether_link.Corrupt_payload
            end
            else Hw.Ether_link.Deliver
        in
        Hw.Ether_link.set_fault_injector w.World.link (Some corrupt_first_big);
        try
          ignore (deposit binding client ctx 100);
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed msg) ->
          let has_sub s sub =
            let n = String.length sub in
            let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          has_sub msg "authenticator")
  in
  Alcotest.(check bool) "authenticator caught corruption" true caught

let test_secured_latency_cost () =
  (* Sealing costs CPU on both ends; a secured deposit is measurably
     slower than the cost model's plain call but the same order. *)
  let lat =
    with_vault ~import_auth:key (fun w binding client ctx ->
        ignore (deposit binding client ctx 1);
        let t0 = Engine.now w.World.eng in
        ignore (deposit binding client ctx 1);
        Time.diff (Engine.now w.World.eng) t0)
  in
  let us = Time.to_us lat in
  Alcotest.(check bool) "slower than plain Null" true (us > 2700.);
  Alcotest.(check bool) "but same order" true (us < 3600.)

let suite =
  [
    Alcotest.test_case "seal/unseal roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "wrong key" `Quick test_wrong_key;
    Alcotest.test_case "replay under different seq" `Quick test_replay_seq;
    Alcotest.test_case "tamper detection" `Quick test_tamper;
    Alcotest.test_case "truncation" `Quick test_truncation;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "secured call roundtrip" `Quick test_secured_call_roundtrip;
    Alcotest.test_case "secured multi-packet result" `Quick test_secured_multi_packet;
    Alcotest.test_case "unauthenticated caller rejected" `Quick test_unauthenticated_rejected;
    Alcotest.test_case "wrong key rejected" `Quick test_wrong_key_rejected;
    Alcotest.test_case "local calls trusted" `Quick test_local_calls_trusted;
    Alcotest.test_case "integrity without UDP checksums" `Quick
      test_integrity_without_udp_checksums;
    Alcotest.test_case "secured latency cost" `Quick test_secured_latency_cost;
  ]
