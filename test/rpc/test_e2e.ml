(* End-to-end tests through the full stack: two simulated Fireflies on a
   shared Ethernet, real packets, real checksums, the full
   retransmission/fragmentation/duplicate machinery. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Config = Hw.Config
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module World = Workload.World
module Driver = Workload.Driver

let v_int n = Marshal.V_int (Int32.of_int n)
let v_bytes s = Marshal.V_bytes (Bytes.of_string s)

(* A computational Echo interface: results depend on arguments, so a
   passing test proves real data movement, not just plumbing. *)
let echo_interface =
  Idl.interface ~name:"Echo" ~version:3
    [
      Idl.proc "add"
        [ Idl.arg "x" Idl.T_int; Idl.arg "y" Idl.T_int; Idl.arg ~mode:Idl.Var_out "sum" Idl.T_int ];
      Idl.proc "reverse"
        [
          Idl.arg ~mode:Idl.Var_in "input" (Idl.T_var_bytes 8000);
          Idl.arg ~mode:Idl.Var_out "output" (Idl.T_var_bytes 8000);
        ];
      Idl.proc "greet"
        [ Idl.arg "name" (Idl.T_text 64); Idl.arg ~mode:Idl.Var_out "greeting" (Idl.T_text 80) ];
      Idl.proc "fail" [ Idl.arg "x" Idl.T_int ];
      Idl.proc "slow_add"
        [ Idl.arg "x" Idl.T_int; Idl.arg "y" Idl.T_int; Idl.arg ~mode:Idl.Var_out "sum" Idl.T_int ];
    ]

let echo_impls : Runtime.impl array =
  [|
    (fun _ctx args ->
      match args with
      | [ Marshal.V_int x; Marshal.V_int y; _ ] -> [ Marshal.V_int (Int32.add x y) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "add: bad args"));
    (fun _ctx args ->
      match args with
      | [ Marshal.V_bytes input; _ ] ->
        let n = Bytes.length input in
        [ Marshal.V_bytes (Bytes.init n (fun i -> Bytes.get input (n - 1 - i))) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "reverse: bad args"));
    (fun _ctx args ->
      match args with
      | [ Marshal.V_text (Some name); _ ] -> [ Marshal.V_text (Some ("Hello, " ^ name ^ "!")) ]
      | [ Marshal.V_text None; _ ] -> [ Marshal.V_text None ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "greet: bad args"));
    (fun _ctx _args -> failwith "deliberate server failure");
    (fun ctx args ->
      (* A compute-heavy procedure: occupies its worker for 5 ms. *)
      Cpu_set.charge ctx ~cat:"runtime" ~label:"slow procedure body" (Time.ms 5);
      match args with
      | [ Marshal.V_int x; Marshal.V_int y; _ ] -> [ Marshal.V_int (Int32.add x y) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "slow_add: bad args"));
  |]

type rig = { w : World.t; binding : Runtime.binding }

(* Runs [f] as a caller thread with a CPU held; returns f's value after
   the simulation completes. *)
let with_rig ?caller_config ?server_config ?options ?(workers = 4) f =
  let w = World.create ?caller_config ?server_config ~workers () in
  Binder.export w.World.binder w.World.server_rt echo_interface ~impls:echo_impls ~workers;
  let binding =
    Binder.import w.World.binder w.World.caller_rt ~name:"Echo" ~version:3 ?options ()
  in
  let rig = { w; binding } in
  let result = ref None in
  let gate = Sim.Gate.create w.World.eng in
  Machine.spawn_thread w.World.caller ~name:"test-caller" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          result := Some (f rig client ctx));
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Option.get !result

let call rig client ctx name args =
  Runtime.call_by_name rig.binding client ctx ~proc:name ~args

(* {1 Basic semantics} *)

let test_add () =
  let out =
    with_rig (fun rig client ctx -> call rig client ctx "add" [ v_int 20; v_int 22; v_int 0 ])
  in
  Alcotest.(check bool) "20+22=42" true (out = [ v_int 42 ])

let test_reverse () =
  let out =
    with_rig (fun rig client ctx ->
        call rig client ctx "reverse" [ v_bytes "hello world"; Marshal.V_bytes Bytes.empty ])
  in
  Alcotest.(check bool) "reversed" true (out = [ v_bytes "dlrow olleh" ])

let test_text () =
  let out =
    with_rig (fun rig client ctx ->
        call rig client ctx "greet" [ Marshal.V_text (Some "Firefly"); Marshal.V_text None ])
  in
  Alcotest.(check bool) "greeting" true (out = [ Marshal.V_text (Some "Hello, Firefly!") ]);
  let nil =
    with_rig (fun rig client ctx ->
        call rig client ctx "greet" [ Marshal.V_text None; Marshal.V_text None ])
  in
  Alcotest.(check bool) "NIL in, NIL out" true (nil = [ Marshal.V_text None ])

let test_sequential_calls_one_client () =
  let sums =
    with_rig (fun rig client ctx ->
        List.map
          (fun i ->
            match call rig client ctx "add" [ v_int i; v_int i; v_int 0 ] with
            | [ Marshal.V_int s ] -> Int32.to_int s
            | _ -> -1)
          [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check (list int)) "sequence" [ 2; 4; 6; 8; 10 ] sums

let test_server_exception () =
  (* A server-side exception surfaces at the caller as Call_failed and
     leaves the worker alive for subsequent calls. *)
  let out =
    with_rig (fun rig client ctx ->
        let got_error =
          try
            ignore (call rig client ctx "fail" [ v_int 1 ]);
            false
          with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed msg) ->
            String.length msg > 0
        in
        let next = call rig client ctx "add" [ v_int 1; v_int 2; v_int 0 ] in
        (got_error, next))
  in
  let got_error, next = out in
  Alcotest.(check bool) "error surfaced" true got_error;
  Alcotest.(check bool) "worker survived" true (next = [ v_int 3 ])

let test_bad_procedure () =
  let ok =
    with_rig (fun rig client ctx ->
        try
          ignore (Runtime.call rig.binding client ctx ~proc_idx:99 ~args:[]);
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Bad_procedure 99) -> true)
  in
  Alcotest.(check bool) "bad proc rejected locally" true ok

let test_unbound_import () =
  let w = World.create () in
  Alcotest.(check bool) "unbound" true
    (try
       ignore (Binder.import w.World.binder w.World.caller_rt ~name:"Nope" ~version:1 ());
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Unbound_interface _) -> true)

(* {1 Fragmentation} *)

let test_multi_packet_both_ways () =
  let big = String.init 6000 (fun i -> Char.chr (32 + (i mod 90))) in
  let out =
    with_rig (fun rig client ctx ->
        call rig client ctx "reverse" [ v_bytes big; Marshal.V_bytes Bytes.empty ])
  in
  match out with
  | [ Marshal.V_bytes b ] ->
    Alcotest.(check int) "size" 6000 (Bytes.length b);
    Alcotest.(check bool) "content" true
      (Bytes.to_string b = String.init 6000 (fun i -> big.[5999 - i]))
  | _ -> Alcotest.fail "bad result"

(* {1 Fault injection} *)

let fast_options =
  { Runtime.retransmit_after = Time.ms 20; max_retries = 50; backoff = None }

let every_nth n =
  let k = ref 0 in
  fun (_ : Bytes.t) ->
    incr k;
    if !k mod n = 0 then Hw.Ether_link.Drop else Hw.Ether_link.Deliver

let test_loss_recovery () =
  let out =
    with_rig ~options:fast_options (fun rig client ctx ->
        Hw.Ether_link.set_fault_injector rig.w.World.link (Some (every_nth 4));
        let results =
          List.map
            (fun i -> call rig client ctx "add" [ v_int i; v_int 1; v_int 0 ])
            [ 1; 2; 3; 4; 5; 6; 7; 8 ]
        in
        Hw.Ether_link.set_fault_injector rig.w.World.link None;
        (results, Runtime.retransmissions rig.w.World.caller_rt))
  in
  let results, retrans = out in
  Alcotest.(check bool) "all correct despite 25% loss" true
    (List.for_all2 (fun i r -> r = [ v_int (i + 1) ]) [ 1; 2; 3; 4; 5; 6; 7; 8 ] results);
  Alcotest.(check bool) "retransmissions happened" true (retrans > 0)

let test_corruption_caught_by_checksum () =
  let out =
    with_rig ~options:fast_options (fun rig client ctx ->
        let corrupt_once =
          let fired = ref false in
          fun (f : Bytes.t) ->
            if (not !fired) && Bytes.length f > 80 then begin
              fired := true;
              Hw.Ether_link.Corrupt_payload
            end
            else Hw.Ether_link.Deliver
        in
        Hw.Ether_link.set_fault_injector rig.w.World.link (Some corrupt_once);
        let r =
          call rig client ctx "reverse" [ v_bytes "end to end argument"; Marshal.V_bytes Bytes.empty ]
        in
        (r, Rpc.Node.checksum_rejects rig.w.World.caller_node
            + Rpc.Node.checksum_rejects rig.w.World.server_node))
  in
  let r, rejects = out in
  Alcotest.(check bool) "correct despite corruption" true (r = [ v_bytes "tnemugra dne ot dne" ]);
  Alcotest.(check bool) "checksum caught it" true (rejects >= 1)

let test_corruption_passes_without_checksums () =
  (* §4.2.4's trade-off made concrete: disable UDP checksums and corrupt
     a result payload byte; the wrong data reaches the application. *)
  let config = { Config.default with udp_checksums = false } in
  let out =
    with_rig ~caller_config:config ~server_config:config (fun rig client ctx ->
        let corrupt_results (f : Bytes.t) =
          if Bytes.length f > 500 then Hw.Ether_link.Corrupt_payload else Hw.Ether_link.Deliver
        in
        Hw.Ether_link.set_fault_injector rig.w.World.link (Some corrupt_results);
        call rig client ctx "reverse"
          [ Marshal.V_bytes (Bytes.make 600 'a'); Marshal.V_bytes Bytes.empty ])
  in
  match out with
  | [ Marshal.V_bytes b ] ->
    Alcotest.(check bool) "silently corrupted data delivered" true
      (not (Bytes.equal b (Bytes.make 600 'a')))
  | _ -> Alcotest.fail "bad result"

let test_server_crash_fails_call () =
  let failed =
    with_rig
      ~options:{ Runtime.retransmit_after = Time.ms 10; max_retries = 5; backoff = None }
      (fun rig client ctx ->
        (* First call succeeds, then the server machine drops off the net. *)
        ignore (call rig client ctx "add" [ v_int 1; v_int 1; v_int 0 ]);
        Machine.power_off rig.w.World.server;
        try
          ignore (call rig client ctx "add" [ v_int 2; v_int 2; v_int 0 ]);
          false
        with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> true)
  in
  Alcotest.(check bool) "crash surfaces as Call_failed" true failed

let test_duplicate_suppression () =
  (* Drop results so the caller retransmits a call whose execution
     already completed: the server must resend the retained result, not
     re-execute. *)
  let out =
    with_rig ~options:fast_options (fun rig client ctx ->
        let drop_first_result =
          let dropped = ref false in
          fun (f : Bytes.t) ->
            (* result packets here are ~82 bytes (add's sum); drop the
               first one we see. *)
            if (not !dropped) && Bytes.length f = 74 + 4 then begin
              dropped := true;
              Hw.Ether_link.Drop
            end
            else Hw.Ether_link.Deliver
        in
        Hw.Ether_link.set_fault_injector rig.w.World.link (Some drop_first_result);
        let r = call rig client ctx "add" [ v_int 5; v_int 6; v_int 0 ] in
        (r, Runtime.duplicates_suppressed rig.w.World.server_rt,
         Runtime.calls_served rig.w.World.server_rt))
  in
  let r, dups, served = out in
  Alcotest.(check bool) "result correct" true (r = [ v_int 11 ]);
  Alcotest.(check bool) "duplicate suppressed" true (dups >= 1);
  Alcotest.(check int) "executed exactly once" 1 served

let test_fast_path_used () =
  let fast, slow =
    with_rig (fun rig client ctx ->
        for i = 1 to 10 do
          ignore (call rig client ctx "add" [ v_int i; v_int i; v_int 0 ])
        done;
        (Rpc.Node.calls_fast_path rig.w.World.server_node,
         Rpc.Node.calls_slow_path rig.w.World.server_node))
  in
  Alcotest.(check int) "all calls on the fast path" 10 fast;
  Alcotest.(check int) "no slow path" 0 slow

let test_slow_path_when_workers_busy () =
  (* One worker + two concurrent clients: the second call arrives while
     the only worker is busy and takes the datalink path, then gets
     served from the backlog.  (No Test export: its workers would serve
     this space's calls too.) *)
  let w = World.create ~export_test:false () in
  Binder.export w.World.binder w.World.server_rt echo_interface ~impls:echo_impls ~workers:1;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"Echo" ~version:3 () in
  let gate = Sim.Gate.create w.World.eng in
  let done_count = ref 0 in
  let results = ref [] in
  for i = 1 to 3 do
    Machine.spawn_thread w.World.caller ~name:"client" (fun () ->
        Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
            let client = Runtime.new_client w.World.caller_rt in
            let r =
              Runtime.call_by_name binding client ctx ~proc:"slow_add"
                ~args:[ v_int i; v_int 100; v_int 0 ]
            in
            results := (i, r) :: !results);
        incr done_count;
        if !done_count = 3 then Sim.Gate.open_ gate)
  done;
  World.run_until_quiet w gate;
  Alcotest.(check int) "all served" 3 (List.length !results);
  List.iter
    (fun (i, r) -> Alcotest.(check bool) "correct" true (r = [ v_int (i + 100) ]))
    !results;
  Alcotest.(check bool) "slow path exercised" true
    (Rpc.Node.calls_slow_path w.World.server_node >= 1)

let test_concurrent_clients_interleave () =
  let w = World.create ~workers:8 () in
  Binder.export w.World.binder w.World.server_rt echo_interface ~impls:echo_impls ~workers:8;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"Echo" ~version:3 () in
  let gate = Sim.Gate.create w.World.eng in
  let done_count = ref 0 in
  let failures = ref 0 in
  let n_clients = 6 in
  for i = 1 to n_clients do
    Machine.spawn_thread w.World.caller ~name:"client" (fun () ->
        Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
            let client = Runtime.new_client w.World.caller_rt in
            for j = 1 to 10 do
              let r =
                Runtime.call_by_name binding client ctx ~proc:"add"
                  ~args:[ v_int (i * 1000); v_int j; v_int 0 ]
              in
              if r <> [ v_int ((i * 1000) + j) ] then incr failures
            done);
        incr done_count;
        if !done_count = n_clients then Sim.Gate.open_ gate)
  done;
  World.run_until_quiet w gate;
  Alcotest.(check int) "no cross-talk between activities" 0 !failures

let test_multiple_address_spaces () =
  (* Two user address spaces on the server machine, each exporting its
     own interface: the interrupt demultiplexer routes by the packet's
     server-space field, and worker pools don't bleed across spaces. *)
  let w = World.create ~export_test:false () in
  let rt_space2 = Runtime.create w.World.server_node ~space:2 in
  let doubler =
    Idl.interface ~name:"Doubler" ~version:1
      [ Idl.proc "go" [ Idl.arg "x" Idl.T_int; Idl.arg ~mode:Idl.Var_out "y" Idl.T_int ] ]
  in
  let tripler =
    Idl.interface ~name:"Tripler" ~version:1
      [ Idl.proc "go" [ Idl.arg "x" Idl.T_int; Idl.arg ~mode:Idl.Var_out "y" Idl.T_int ] ]
  in
  let mul k : Runtime.impl array =
    [|
      (fun _ctx args ->
        match args with
        | [ Marshal.V_int x; _ ] -> [ Marshal.V_int (Int32.mul x (Int32.of_int k)) ]
        | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "mul"));
    |]
  in
  Binder.export w.World.binder w.World.server_rt doubler ~impls:(mul 2) ~workers:2;
  Binder.export w.World.binder rt_space2 tripler ~impls:(mul 3) ~workers:2;
  let b2 = Binder.import w.World.binder w.World.caller_rt ~name:"Doubler" ~version:1 () in
  let b3 = Binder.import w.World.binder w.World.caller_rt ~name:"Tripler" ~version:1 () in
  let gate = Sim.Gate.create w.World.eng in
  let results = ref [] in
  Machine.spawn_thread w.World.caller ~name:"multi-space" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          let go b = Runtime.call_by_name b client ctx ~proc:"go" ~args:[ v_int 7; v_int 0 ] in
          results := [ go b2; go b3; go b2 ]);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "spaces routed independently" true
    (!results = [ [ v_int 14 ]; [ v_int 21 ]; [ v_int 14 ] ]);
  Alcotest.(check int) "space 1 served 2" 2 (Runtime.calls_served w.World.server_rt);
  Alcotest.(check int) "space 2 served 1" 1 (Runtime.calls_served rt_space2)

let test_local_transport_semantics () =
  (* Export on the caller machine too: import resolves to the shared-
     memory transport and the same calls produce the same answers. *)
  let w = World.create () in
  Binder.export w.World.binder w.World.caller_rt echo_interface ~impls:echo_impls ~workers:2;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"Echo" ~version:3 () in
  Alcotest.(check bool) "binding is local" true (Runtime.is_local binding);
  let gate = Sim.Gate.create w.World.eng in
  let out = ref [] in
  Machine.spawn_thread w.World.caller ~name:"local-caller" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          out :=
            [
              Runtime.call_by_name binding client ctx ~proc:"add" ~args:[ v_int 2; v_int 3; v_int 0 ];
              Runtime.call_by_name binding client ctx ~proc:"reverse"
                ~args:[ v_bytes "abc"; Marshal.V_bytes Bytes.empty ];
            ]);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "local add" true (List.nth !out 0 = [ v_int 5 ]);
  Alcotest.(check bool) "local reverse" true (List.nth !out 1 = [ v_bytes "cba" ])

let test_local_null_latency () =
  (* §2.2 footnote: local RPC to Null() takes 937 us. *)
  let w = World.create () in
  Binder.export w.World.binder w.World.caller_rt
    (Idl.interface ~name:"LocalTest" ~version:1 [ Idl.proc "Null" [] ])
    ~impls:
      [|
        (fun ctx _ ->
          Cpu_set.charge ctx ~cat:"runtime" ~label:"Null (the server procedure)" (Time.us 10);
          []);
      |]
    ~workers:1;
  let binding = Binder.import w.World.binder w.World.caller_rt ~name:"LocalTest" ~version:1 () in
  let gate = Sim.Gate.create w.World.eng in
  let lat = ref Time.zero_span in
  Machine.spawn_thread w.World.caller ~name:"local-null" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          let once () = ignore (Runtime.call_by_name binding client ctx ~proc:"Null" ~args:[]) in
          once ();
          once ();
          let t0 = Engine.now w.World.eng in
          once ();
          lat := Time.diff (Engine.now w.World.eng) t0);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  (* 937 minus the 16 us caller loop the paper's figure includes. *)
  Alcotest.(check (float 40.)) "local Null ~921us" 921. (Time.to_us !lat)

(* {1 Paper headline latencies (guard against calibration drift)} *)

let test_null_latency_calibration () =
  let w = World.create () in
  let lat = Driver.measure_single_call w ~proc:Driver.Null () in
  Alcotest.(check (float 135.)) "Null within 5% of 2.66ms" 2660. (Time.to_us lat)

let test_max_result_latency_calibration () =
  let w = World.create () in
  let lat = Driver.measure_single_call w ~proc:Driver.Max_result () in
  Alcotest.(check (float 320.)) "MaxResult within 5% of 6.35ms" 6350. (Time.to_us lat)

let suite =
  [
    Alcotest.test_case "add over the wire" `Quick test_add;
    Alcotest.test_case "reverse (VAR IN / VAR OUT)" `Quick test_reverse;
    Alcotest.test_case "Text.T round trip" `Quick test_text;
    Alcotest.test_case "sequential calls, one activity" `Quick test_sequential_calls_one_client;
    Alcotest.test_case "server exception surfaces" `Quick test_server_exception;
    Alcotest.test_case "bad procedure index" `Quick test_bad_procedure;
    Alcotest.test_case "unbound import" `Quick test_unbound_import;
    Alcotest.test_case "multi-packet call and result" `Quick test_multi_packet_both_ways;
    Alcotest.test_case "loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "corruption caught by checksum" `Quick test_corruption_caught_by_checksum;
    Alcotest.test_case "corruption without checksums" `Quick
      test_corruption_passes_without_checksums;
    Alcotest.test_case "server crash" `Quick test_server_crash_fails_call;
    Alcotest.test_case "duplicate suppression" `Quick test_duplicate_suppression;
    Alcotest.test_case "fast path used" `Quick test_fast_path_used;
    Alcotest.test_case "slow path when workers busy" `Quick test_slow_path_when_workers_busy;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients_interleave;
    Alcotest.test_case "multiple address spaces" `Quick test_multiple_address_spaces;
    Alcotest.test_case "local transport semantics" `Quick test_local_transport_semantics;
    Alcotest.test_case "local Null latency (937us)" `Quick test_local_null_latency;
    Alcotest.test_case "Null latency calibration" `Quick test_null_latency_calibration;
    Alcotest.test_case "MaxResult latency calibration" `Quick test_max_result_latency_calibration;
  ]
