(* Property-based whole-protocol test: under arbitrary packet loss and
   post-CRC corruption schedules, a sequence of calls must preserve

   - correctness: every completed call returns exactly the right answer;
   - at-most-once execution: a (client, seq) pair never executes twice
     (duplicate suppression), verified with a server-side register;
   - liveness: with a generous retry budget and sub-certain loss, every
     call completes.

   Each QCheck case is one fault schedule (seeded RNG + loss rate). *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module World = Workload.World

let register_intf =
  Idl.interface ~name:"Register" ~version:1
    [
      Idl.proc "apply"
        [
          Idl.arg "client" Idl.T_int;
          Idl.arg "seq" Idl.T_int;
          Idl.arg "delta" Idl.T_int;
          Idl.arg ~mode:Idl.Var_out "total" Idl.T_int;
        ];
      (* a bulk procedure so fragments are exercised under faults too *)
      Idl.proc "bulk"
        [
          Idl.arg "n" Idl.T_int;
          Idl.arg ~mode:Idl.Var_out "data" (Idl.T_var_bytes 4000);
        ];
    ]

exception Double_execution of int * int

let make_impls () =
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0l in
  let impls : Runtime.impl array =
    [|
      (fun _ctx args ->
        match args with
        | [ Marshal.V_int client; Marshal.V_int seq; Marshal.V_int delta; _ ] ->
          let key = (Int32.to_int client, Int32.to_int seq) in
          if Hashtbl.mem seen key then raise (Double_execution (fst key, snd key));
          Hashtbl.add seen key ();
          total := Int32.add !total delta;
          [ Marshal.V_int !total ]
        | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "apply"));
      (fun _ctx args ->
        match args with
        | [ Marshal.V_int n; _ ] ->
          [ Marshal.V_bytes (Workload.Test_interface.pattern (Int32.to_int n)) ]
        | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "bulk"));
    |]
  in
  impls

let run_schedule ~seed ~loss ~corrupt ~clients ~calls_each =
  let w = World.create ~seed ~export_test:false () in
  Binder.export w.World.binder w.World.server_rt register_intf ~impls:(make_impls ()) ~workers:4;
  let fault_rng = Sim.Rng.create ~seed:(seed * 31 + 7) in
  Hw.Ether_link.set_fault_injector w.World.link
    (Some
       (fun _ ->
         let r = Sim.Rng.float fault_rng 1.0 in
         if r < loss then Hw.Ether_link.Drop
         else if r < loss +. corrupt then Hw.Ether_link.Corrupt_payload
         else Hw.Ether_link.Deliver));
  let options = { Runtime.retransmit_after = Time.ms 15; max_retries = 400; backoff = None } in
  let gate = Sim.Gate.create w.World.eng in
  let finished = ref 0 in
  let violations = ref [] in
  for c = 1 to clients do
    Machine.spawn_thread w.World.caller ~name:"prop-client" (fun () ->
        Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
            let binding =
              Binder.import w.World.binder w.World.caller_rt ~name:"Register" ~version:1 ~options
                ()
            in
            let client = Runtime.new_client w.World.caller_rt in
            let expected_total = ref None in
            for s = 1 to calls_each do
              (* interleave a fragmented bulk call every third call *)
              if s mod 3 = 0 then begin
                let n = 2000 + (97 * s mod 2000) in
                match
                  Runtime.call_by_name binding client ctx ~proc:"bulk"
                    ~args:[ Marshal.V_int (Int32.of_int n); Marshal.V_bytes Bytes.empty ]
                with
                | [ Marshal.V_bytes b ]
                  when Bytes.equal b (Workload.Test_interface.pattern n) ->
                  ()
                | _ -> violations := Printf.sprintf "bulk %d.%d wrong data" c s :: !violations
                | exception e ->
                  violations :=
                    Printf.sprintf "bulk %d.%d: %s" c s (Printexc.to_string e) :: !violations
              end
              else begin
                let delta = (c * 13) + s in
                match
                  Runtime.call_by_name binding client ctx ~proc:"apply"
                    ~args:
                      [
                        Marshal.V_int (Int32.of_int c);
                        Marshal.V_int (Int32.of_int s);
                        Marshal.V_int (Int32.of_int delta);
                        Marshal.V_int 0l;
                      ]
                with
                | [ Marshal.V_int total ] -> (
                  (* totals are per-server monotone; with concurrent
                     clients we can only check monotonicity *)
                  match !expected_total with
                  | Some prev when Int32.compare total prev < 0 ->
                    violations :=
                      Printf.sprintf "total went backwards for %d.%d" c s :: !violations
                  | _ -> expected_total := Some total)
                | _ -> violations := Printf.sprintf "apply %d.%d bad shape" c s :: !violations
                | exception e ->
                  violations :=
                    Printf.sprintf "apply %d.%d: %s" c s (Printexc.to_string e) :: !violations
              end
            done);
        incr finished;
        if !finished = clients then Sim.Gate.open_ gate)
  done;
  (try World.run_until_quiet ~limit:(Time.sec 3000) w gate
   with Failure _ -> violations := "did not complete" :: !violations);
  !violations

let prop_protocol_under_faults =
  QCheck.Test.make ~name:"protocol survives arbitrary fault schedules" ~count:12
    QCheck.(pair (int_bound 10_000) (int_bound 25))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      match
        run_schedule ~seed:(seed + 1) ~loss ~corrupt:0.05 ~clients:3 ~calls_each:6
      with
      | [] -> true
      | violations ->
        QCheck.Test.fail_reportf "violations: %s" (String.concat "; " violations))

let test_heavy_loss_liveness () =
  (* 35% loss + 5% corruption: brutal, but the protocol must still get
     every call through and never double-execute. *)
  match run_schedule ~seed:99 ~loss:0.35 ~corrupt:0.05 ~clients:2 ~calls_each:5 with
  | [] -> ()
  | violations -> Alcotest.fail (String.concat "; " violations)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_protocol_under_faults;
    Alcotest.test_case "liveness under heavy loss" `Slow test_heavy_loss_liveness;
  ]
