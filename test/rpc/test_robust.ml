(* Robustness of the runtime internals: retained-result GC, packet-pool
   exhaustion, the Busy protocol for slow servers, fragment-boundary
   payload sizes, streaming under loss, and machine restart. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder
module World = Workload.World
module Driver = Workload.Driver

let v_int n = Marshal.V_int (Int32.of_int n)

let run_caller (w : World.t) gate f =
  Machine.spawn_thread w.World.caller ~name:"robust-caller" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          f client ctx);
      Sim.Gate.open_ gate)

let test_retained_result_gc () =
  let w = World.create () in
  let binding = World.test_binding w () in
  let gate = Sim.Gate.create w.World.eng in
  let in_use_after_call = ref 0 in
  run_caller w gate (fun client ctx ->
      ignore
        (Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.null_idx ~args:[]);
      (* Let the transient buffers settle, then snapshot: the retained
         result at the server holds one pool buffer. *)
      Cpu_set.yield_cpu ctx (fun () -> Engine.delay w.World.eng (Time.ms 50));
      in_use_after_call := Nub.Bufpool.in_use (Machine.pool w.World.server));
  World.run_until_quiet w gate;
  Alcotest.(check bool) "server retains a result buffer" true
    (!in_use_after_call > 16 (* the driver's receive credits *));
  Alcotest.(check int) "one activity tracked" 1 (Runtime.server_activities w.World.server_rt);
  (* After the retain GC window (5 s), the buffer must return. *)
  Engine.run_until w.World.eng (Time.add (Engine.now w.World.eng) (Time.sec 6));
  Alcotest.(check int) "retained buffer reclaimed" 16
    (Nub.Bufpool.in_use (Machine.pool w.World.server))

let test_pool_exhaustion_recovers () =
  (* A machine with a tiny pool: the driver takes 16 receive credits,
     leaving little for callers; concurrent MaxArg callers must block
     on allocation and still all complete. *)
  let eng = Engine.create ~seed:9 () in
  let link = Hw.Ether_link.create eng ~mbps:10. in
  let caller =
    Machine.create eng ~name:"caller" ~config:Hw.Config.default ~link ~station:1
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.1") ~pool_buffers:20 ()
  in
  let server =
    Machine.create eng ~name:"server" ~config:Hw.Config.default ~link ~station:2
      ~ip:(Net.Ipv4.Addr.of_string "16.0.0.2") ()
  in
  let caller_rt = Runtime.create (Rpc.Node.create caller) ~space:1 in
  let server_rt = Runtime.create (Rpc.Node.create server) ~space:1 in
  let binder = Binder.create () in
  Binder.export binder server_rt Workload.Test_interface.interface
    ~impls:(Workload.Test_interface.impls (Machine.timing server))
    ~workers:8;
  let binding = Binder.import binder caller_rt ~name:"Test" ~version:1 () in
  let gate = Sim.Gate.create eng in
  let done_count = ref 0 in
  let ok = ref 0 in
  let n_threads = 6 in
  for _ = 1 to n_threads do
    Machine.spawn_thread caller ~name:"t" (fun () ->
        Cpu_set.with_cpu (Machine.cpus caller) (fun ctx ->
            let client = Runtime.new_client caller_rt in
            for _ = 1 to 5 do
              let r =
                Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.max_arg_idx
                  ~args:[ Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
              in
              if r = [] then incr ok
            done);
        incr done_count;
        if !done_count = n_threads then Sim.Gate.open_ gate)
  done;
  Engine.run_while eng (fun () -> not (Sim.Gate.is_open gate));
  Alcotest.(check bool) "completed" true (Sim.Gate.is_open gate);
  Alcotest.(check int) "all calls correct" 30 !ok;
  Alcotest.(check bool) "pool was actually contended" true
    (Nub.Bufpool.exhaustions (Machine.pool caller) > 0)

let slow_intf =
  Idl.interface ~name:"Slow" ~version:1
    [ Idl.proc "crunch" [ Idl.arg "n" Idl.T_int; Idl.arg ~mode:Idl.Var_out "r" Idl.T_int ] ]

let test_busy_protocol () =
  (* The server takes 300 ms; the caller retransmits every 40 ms with
     please_ack and must receive Busy replies instead of triggering
     re-execution or failure. *)
  let w = World.create ~export_test:false () in
  let executions = ref 0 in
  Binder.export w.World.binder w.World.server_rt slow_intf
    ~impls:
      [|
        (fun ctx args ->
          incr executions;
          Cpu_set.charge ctx ~cat:"runtime" ~label:"crunch body" (Time.ms 300);
          match args with
          | [ Marshal.V_int n; _ ] -> [ Marshal.V_int (Int32.mul n 2l) ]
          | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "crunch"));
      |]
    ~workers:2;
  let binding =
    Binder.import w.World.binder w.World.caller_rt ~name:"Slow" ~version:1
      ~options:{ Runtime.retransmit_after = Time.ms 40; max_retries = 30; backoff = None }
      ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let result = ref [] in
  run_caller w gate (fun client ctx ->
      result := Runtime.call_by_name binding client ctx ~proc:"crunch" ~args:[ v_int 21; v_int 0 ]);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "correct result after waiting" true (!result = [ v_int 42 ]);
  Alcotest.(check int) "executed exactly once" 1 !executions;
  Alcotest.(check bool) "busy replies sent" true (Runtime.busy_replies w.World.server_rt > 0);
  Alcotest.(check bool) "caller retransmitted" true
    (Runtime.retransmissions w.World.caller_rt > 0)

let test_fragment_boundaries () =
  let w = World.create () in
  let binding = World.test_binding w () in
  let gate = Sim.Gate.create w.World.eng in
  let failures = ref [] in
  run_caller w gate (fun client ctx ->
      List.iter
        (fun n ->
          match
            Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.get_data_idx
              ~args:[ v_int n; Marshal.V_bytes Bytes.empty ]
          with
          | [ Marshal.V_bytes b ]
            when Bytes.length b = n && Bytes.equal b (Workload.Test_interface.pattern n) ->
            ()
          | _ -> failures := n :: !failures
          | exception e ->
            ignore e;
            failures := n :: !failures)
        (* result payload sizes around the 1440-byte fragment edge:
           (4+2)-byte prefix means the on-wire result is n + small *)
        [ 0; 1; 1433; 1434; 1435; 1440; 1441; 2867; 2868; 2869; 5000 ])
      ;
  World.run_until_quiet w gate;
  Alcotest.(check (list int)) "all boundary sizes roundtrip" [] !failures

let test_streaming_under_loss () =
  let config = { Hw.Config.default with Hw.Config.streaming_results = true } in
  let w = World.create ~caller_config:config ~server_config:config () in
  let binding =
    World.test_binding w ~options:{ Runtime.retransmit_after = Time.ms 30; max_retries = 50; backoff = None } ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let ok = ref false in
  run_caller w gate (fun client ctx ->
      (* Drop one mid-stream fragment of the first response blast. *)
      let dropped = ref false in
      let seen_big = ref 0 in
      Hw.Ether_link.set_fault_injector w.World.link
        (Some
           (fun f ->
             if Bytes.length f > 1000 then begin
               incr seen_big;
               if !seen_big = 3 && not !dropped then begin
                 dropped := true;
                 Hw.Ether_link.Drop
               end
               else Hw.Ether_link.Deliver
             end
             else Hw.Ether_link.Deliver));
      match
        Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.get_data_idx
          ~args:[ v_int 10_000; Marshal.V_bytes Bytes.empty ]
      with
      | [ Marshal.V_bytes b ] ->
        ok := Bytes.equal b (Workload.Test_interface.pattern 10_000)
      | _ -> ());
  World.run_until_quiet w gate;
  Alcotest.(check bool) "streamed transfer recovered from loss" true !ok

let test_traditional_demux_correctness () =
  (* The §3.2 ablation path must be functionally identical: calls
     complete (even under loss), only slower. *)
  let config = { Hw.Config.default with Hw.Config.traditional_demux = true } in
  let w = World.create ~caller_config:config ~server_config:config () in
  let binding =
    World.test_binding w ~options:{ Runtime.retransmit_after = Time.ms 25; max_retries = 60; backoff = None } ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let ok = ref 0 in
  run_caller w gate (fun client ctx ->
      let rng = Sim.Rng.create ~seed:77 in
      Hw.Ether_link.set_fault_injector w.World.link
        (Some
           (fun _ -> if Sim.Rng.bool rng ~p:0.1 then Hw.Ether_link.Drop else Hw.Ether_link.Deliver));
      for _ = 1 to 10 do
        match
          Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.max_arg_idx
            ~args:[ Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
        with
        | [] -> incr ok
        | _ -> ()
      done);
  World.run_until_quiet w gate;
  Alcotest.(check int) "all calls correct through the datalink path" 10 !ok;
  Alcotest.(check bool) "every frame went via the datalink thread" true
    (Nub.Driver.frames_to_datalink (Machine.driver w.World.server)
     = Nub.Driver.frames_received (Machine.driver w.World.server))

let test_server_restart () =
  let w = World.create () in
  let binding =
    World.test_binding w ~options:{ Runtime.retransmit_after = Time.ms 20; max_retries = 4; backoff = None } ()
  in
  let gate = Sim.Gate.create w.World.eng in
  let phases = ref [] in
  run_caller w gate (fun client ctx ->
      let null () =
        match
          Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.null_idx ~args:[]
        with
        | [] -> `Ok
        | _ -> `Bad
        | exception Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> `Failed
      in
      phases := [ null () ];
      Machine.power_off w.World.server;
      phases := null () :: !phases;
      Machine.power_on w.World.server;
      phases := null () :: !phases);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "up, down, up again" true (List.rev !phases = [ `Ok; `Failed; `Ok ])

(* {2 Hand-crafted adversarial packets}

   These regression tests speak the wire protocol directly — forged
   activities, poisoned fragment headers, duplicates of reclaimed
   results — the attacks the simulation-testing harness first found. *)

let forged_activity (w : World.t) ~thread =
  {
    Rpc.Proto.Activity.caller_ip = (Rpc.Node.endpoint w.World.caller_node).Rpc.Frames.ip;
    caller_space = 1;
    thread;
  }

(* [data_len] and [checksum] are overwritten by [Frames.build]. *)
let forged_call ~act ~seq ~frag_idx ~frag_count =
  {
    Rpc.Proto.ptype = Rpc.Proto.Call;
    please_ack = false;
    no_frag_ack = false;
    secured = false;
    activity = act;
    seq;
    server_space = 1;
    interface_id = Idl.interface_id Workload.Test_interface.interface;
    proc_idx = Workload.Test_interface.null_idx;
    frag_idx;
    frag_count;
    data_len = 0;
    checksum = 0;
  }

let raw_send (w : World.t) ctx hdr =
  Rpc.Node.send w.World.caller_node ~ctx ~dst:(Rpc.Node.endpoint w.World.server_node) ~hdr
    ~payload:Bytes.empty ~payload_pos:0 ~payload_len:0

let pause (w : World.t) ctx ms = Cpu_set.yield_cpu ctx (fun () -> Engine.delay w.World.eng (Time.ms ms))

let test_malformed_call_fragments () =
  (* Pre-fix, the out-of-range index was stored blindly: the collector's
     fragment table reached [frag_count] entries with fragment 1 still
     missing, reassembly raised an uncaught [Not_found], killed the
     worker and leaked its fragment sink.  Post-fix the poison fragments
     are rejected and the call completes from the genuine ones. *)
  let w = World.create () in
  let binding = World.test_binding w () in
  let gate = Sim.Gate.create w.World.eng in
  let act = forged_activity w ~thread:901 in
  let served = ref false in
  run_caller w gate (fun client ctx ->
      let send ~frag_idx ~frag_count =
        raw_send w ctx (forged_call ~act ~seq:1 ~frag_idx ~frag_count)
      in
      (* Open a two-fragment call, then poison the collector.  Each
         poison packet is valid in isolation (frag_idx < frag_count, so
         it survives Proto.decode) but inconsistent with fragment 0. *)
      send ~frag_idx:0 ~frag_count:2;
      pause w ctx 2;
      send ~frag_idx:7 ~frag_count:8 (* index out of range for this call *);
      pause w ctx 2;
      send ~frag_idx:1 ~frag_count:5 (* count disagrees with fragment 0 *);
      pause w ctx 2;
      send ~frag_idx:1 ~frag_count:2 (* the genuine closing fragment *);
      pause w ctx 10;
      (* The worker pool must have survived to serve real traffic. *)
      served :=
        Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.null_idx ~args:[] = []);
  World.run_until_quiet w gate;
  Alcotest.(check bool) "server still serves after poisoned fragments" true !served;
  Alcotest.(check int) "no leaked fragment sink" 0 (Rpc.Node.fragment_sinks w.World.server_node);
  (* Both retained results (forged call + real call) reclaimed. *)
  Engine.run_until w.World.eng (Time.add (Engine.now w.World.eng) (Time.sec 6));
  Alcotest.(check int) "server pool back to baseline" 16
    (Nub.Bufpool.in_use (Machine.pool w.World.server))

let test_result_fragment_validation () =
  (* A rogue server answers a call with poisoned Result fragments: an
     out-of-range index and a fragment count disagreeing with fragment
     0.  Pre-fix the bogus index completed the count and reassembly
     failed with Protocol_violation; post-fix the caller drops the
     poison and completes from the consistent fragments. *)
  let w = World.create () in
  let rogue, rogue_node, _rogue_rt =
    World.add_machine w ~name:"rogue" ~config:Hw.Config.default ~station:3 ~ip:"16.0.0.3"
  in
  let captured = ref None in
  Rpc.Node.set_slow_sink rogue_node ~space:9 (fun d ->
      if d.Rpc.Node.d_hdr.Rpc.Proto.ptype = Rpc.Proto.Call && !captured = None then
        captured := Some d);
  Machine.spawn_thread rogue ~name:"rogue-server" (fun () ->
      Cpu_set.with_cpu (Machine.cpus rogue) (fun ctx ->
          while !captured = None do
            pause w ctx 1
          done;
          let d = Option.get !captured in
          let h = d.Rpc.Node.d_hdr in
          let reply ~frag_idx ~frag_count =
            Rpc.Node.send rogue_node ~ctx ~dst:d.Rpc.Node.d_src
              ~hdr:
                { h with Rpc.Proto.ptype = Rpc.Proto.Result; please_ack = false; frag_idx; frag_count }
              ~payload:Bytes.empty ~payload_pos:0 ~payload_len:0
          in
          (* Each poison fragment is valid in isolation (it survives
             Proto.decode) but inconsistent with fragment 0. *)
          reply ~frag_idx:0 ~frag_count:2;
          pause w ctx 2;
          reply ~frag_idx:9 ~frag_count:10 (* index out of range for this result *);
          pause w ctx 2;
          reply ~frag_idx:1 ~frag_count:7 (* count disagrees with fragment 0 *);
          pause w ctx 2;
          reply ~frag_idx:1 ~frag_count:2 (* the genuine closing fragment *)));
  let gate = Sim.Gate.create w.World.eng in
  let outs = ref None in
  run_caller w gate (fun client ctx ->
      let binding =
        Runtime.bind_ether w.World.caller_rt ~dst:(Rpc.Node.endpoint rogue_node) ~server_space:9
          Workload.Test_interface.interface
          ~options:{ Runtime.retransmit_after = Time.ms 50; max_retries = 10; backoff = None }
      in
      outs :=
        Some (Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.null_idx ~args:[]));
  World.run_until_quiet w gate;
  Alcotest.(check bool) "call completed despite forged fragments" true (!outs = Some []);
  Alcotest.(check int) "caller leaked no registration" 0
    (Rpc.Node.outstanding_callers w.World.caller_node)

let test_retained_gc_races () =
  (* The three-way race over a retained result: a duplicate call must be
     answered from it; the activity's next call reclaims it while the
     5 s GC timer from the previous call is still pending (the stale
     timer must not double-free); and a duplicate of the new call right
     after must still find the fresh retained reply. *)
  let w = World.create () in
  let gate = Sim.Gate.create w.World.eng in
  let act = forged_activity w ~thread:902 in
  let execs : (int, int) Hashtbl.t = Hashtbl.create 4 in
  Runtime.set_execution_probe w.World.server_rt
    (Some
       (fun a seq ->
         if a = act then
           Hashtbl.replace execs seq (1 + Option.value ~default:0 (Hashtbl.find_opt execs seq))));
  let dups0 = Runtime.duplicates_suppressed w.World.server_rt in
  let dups_after_first = ref 0 in
  let got_reply = ref false in
  run_caller w gate (fun _client ctx ->
      let send seq = raw_send w ctx (forged_call ~act ~seq ~frag_idx:0 ~frag_count:1) in
      send 1;
      pause w ctx 100;
      send 1 (* duplicate: answered from the retained result *);
      pause w ctx 10;
      dups_after_first := Runtime.duplicates_suppressed w.World.server_rt - dups0;
      (* Race the next call against seq 1's 5 s retain-GC timer. *)
      pause w ctx 4800;
      send 2 (* reclaims seq 1's result, executes, retains anew *);
      pause w ctx 400 (* the stale seq-1 timer fires in here: must be a no-op *);
      (* The duplicate's resent Result must actually come back. *)
      let entry = Rpc.Node.new_entry w.World.caller_node in
      Rpc.Node.register_caller w.World.caller_node act entry;
      send 2;
      (match Rpc.Node.wait_timeout w.World.caller_node entry ctx ~timeout:(Time.ms 100) with
      | `Ok | `Timeout -> ());
      (match Rpc.Node.Entry.inbox_pop entry with
      | Some d -> got_reply := d.Rpc.Node.d_hdr.Rpc.Proto.ptype = Rpc.Proto.Result
      | None -> ());
      Rpc.Node.unregister_caller w.World.caller_node act);
  World.run_until_quiet w gate;
  Alcotest.(check int) "first duplicate answered from the retained result" 1 !dups_after_first;
  Alcotest.(check bool) "retained reply not lost across the generation bump" true !got_reply;
  Alcotest.(check int) "each sequence executed exactly once" 1
    (Hashtbl.fold (fun _ n acc -> max n acc) execs 0);
  Alcotest.(check int) "both sequences reached the implementation" 2 (Hashtbl.length execs);
  (* No double-free from the stale timer, and seq 2's own GC reclaims
     its retained buffer: the pool returns to its 16 receive credits. *)
  Engine.run_until w.World.eng (Time.add (Engine.now w.World.eng) (Time.sec 6));
  Alcotest.(check int) "server pool back to baseline" 16
    (Nub.Bufpool.in_use (Machine.pool w.World.server))

let test_duplicate_after_gc_counts_nothing () =
  (* Pre-fix, a duplicate arriving after the retain GC had reclaimed the
     result still bumped the duplicate counter and journalled a
     Retransmit even though no packet went out. *)
  let w = World.create () in
  let gate = Sim.Gate.create w.World.eng in
  let act = forged_activity w ~thread:903 in
  let dups_after_gc = ref (-1) in
  run_caller w gate (fun _client ctx ->
      let send seq = raw_send w ctx (forged_call ~act ~seq ~frag_idx:0 ~frag_count:1) in
      send 1;
      (* Let the 5 s retain GC reclaim the result... *)
      pause w ctx 6000;
      let dups0 = Runtime.duplicates_suppressed w.World.server_rt in
      send 1 (* ...then duplicate it: nothing retained, nothing sent *);
      pause w ctx 10;
      dups_after_gc := Runtime.duplicates_suppressed w.World.server_rt - dups0);
  World.run_until_quiet w gate;
  Alcotest.(check int) "no phantom retransmission counted" 0 !dups_after_gc;
  Alcotest.(check int) "activity still tracked" 1 (Runtime.server_activities w.World.server_rt);
  Alcotest.(check int) "server pool back to baseline" 16
    (Nub.Bufpool.in_use (Machine.pool w.World.server))

let suite =
  [
    Alcotest.test_case "retained result GC" `Quick test_retained_result_gc;
    Alcotest.test_case "pool exhaustion recovers" `Quick test_pool_exhaustion_recovers;
    Alcotest.test_case "busy protocol for slow servers" `Quick test_busy_protocol;
    Alcotest.test_case "fragment boundary sizes" `Quick test_fragment_boundaries;
    Alcotest.test_case "streaming under loss" `Quick test_streaming_under_loss;
    Alcotest.test_case "traditional demux correctness" `Quick test_traditional_demux_correctness;
    Alcotest.test_case "server restart" `Quick test_server_restart;
    Alcotest.test_case "malformed call fragments" `Quick test_malformed_call_fragments;
    Alcotest.test_case "result fragment validation" `Quick test_result_fragment_validation;
    Alcotest.test_case "retained-result GC races" `Quick test_retained_gc_races;
    Alcotest.test_case "duplicate after GC counts nothing" `Quick
      test_duplicate_after_gc_counts_nothing;
  ]
