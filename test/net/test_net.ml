module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module Mac = Net.Mac
module Ethernet = Net.Ethernet
module Ipv4 = Net.Ipv4
module Udp = Net.Udp

(* {1 MAC} *)

let test_mac_parse () =
  let m = Mac.of_string "aa:bb:cc:00:11:ff" in
  Alcotest.(check string) "roundtrip" "aa:bb:cc:00:11:ff" (Mac.to_string m);
  Alcotest.(check bool) "broadcast" true (Mac.is_broadcast (Mac.of_string "ff:ff:ff:ff:ff:ff"));
  Alcotest.(check bool) "station not broadcast" false (Mac.is_broadcast (Mac.of_station 3));
  Alcotest.(check bool) "bad octet" true
    (try
       ignore (Mac.of_string "aa:bb:cc:dd:ee:zz");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong arity" true
    (try
       ignore (Mac.of_string "aa:bb");
       false
     with Invalid_argument _ -> true)

let test_mac_station_distinct () =
  let a = Mac.of_station 1 and b = Mac.of_station 2 in
  Alcotest.(check bool) "distinct" false (Mac.equal a b);
  Alcotest.(check string) "encoding" "02:00:00:00:00:01" (Mac.to_string a)

let test_mac_wire () =
  let w = W.create 8 in
  Mac.write w (Mac.of_station 0x123456);
  let m = Mac.read (R.of_bytes (W.contents w)) in
  Alcotest.(check string) "wire roundtrip" "02:00:00:12:34:56" (Mac.to_string m)

(* {1 Ethernet} *)

let test_ethernet_roundtrip () =
  let h =
    { Ethernet.dst = Mac.of_station 2; src = Mac.of_station 1; ethertype = Ethernet.ethertype_ipv4 }
  in
  let w = W.create 64 in
  Ethernet.encode w h;
  Alcotest.(check int) "header size" Ethernet.header_size (W.length w);
  W.string w "payload";
  let r = R.of_bytes (W.contents w) in
  (match Ethernet.decode r with
  | Ok h' ->
    Alcotest.(check bool) "dst" true (Mac.equal h.Ethernet.dst h'.Ethernet.dst);
    Alcotest.(check bool) "src" true (Mac.equal h.Ethernet.src h'.Ethernet.src);
    Alcotest.(check int) "ethertype" h.Ethernet.ethertype h'.Ethernet.ethertype;
    Alcotest.(check string) "payload preserved" "payload" (R.string r 7)
  | Error e -> Alcotest.fail e)

let test_ethernet_truncated () =
  match Ethernet.decode (R.of_bytes (Bytes.create 5)) with
  | Ok _ -> Alcotest.fail "accepted truncated frame"
  | Error _ -> ()

let test_ethernet_truncated_every_offset () =
  let w = W.create 16 in
  Ethernet.encode w
    { Ethernet.dst = Mac.of_station 2; src = Mac.of_station 1; ethertype = Ethernet.ethertype_ipv4 };
  let full = W.contents w in
  for k = 0 to Ethernet.header_size - 1 do
    match Ethernet.decode (R.of_bytes (Bytes.sub full 0 k)) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %d-byte frame" k)
    | Error e ->
      Alcotest.(check string) (Printf.sprintf "truncated at %d" k) "ethernet: frame too short" e
  done;
  match Ethernet.decode (R.of_bytes full) with Ok _ -> () | Error e -> Alcotest.fail e

let prop_ethernet_roundtrip =
  QCheck.Test.make ~name:"ethernet header roundtrip" ~count:200
    QCheck.(triple (int_bound 0xffffff) (int_bound 0xffffff) (int_bound 0xffff))
    (fun (s, d, ethertype) ->
      let h = { Ethernet.dst = Mac.of_station d; src = Mac.of_station s; ethertype } in
      let w = W.create 16 in
      Ethernet.encode w h;
      match Ethernet.decode (R.of_bytes (W.contents w)) with
      | Ok h' ->
        Mac.equal h.Ethernet.dst h'.Ethernet.dst
        && Mac.equal h.Ethernet.src h'.Ethernet.src
        && h'.Ethernet.ethertype = ethertype
      | Error _ -> false)

(* {1 IPv4} *)

let ip = Ipv4.Addr.of_string

let test_addr () =
  Alcotest.(check string) "roundtrip" "16.1.0.255" (Ipv4.Addr.to_string (ip "16.1.0.255"));
  Alcotest.(check bool) "equal" true (Ipv4.Addr.equal (ip "1.2.3.4") (ip "1.2.3.4"));
  Alcotest.(check bool) "bad" true
    (try
       ignore (ip "1.2.3.400");
       false
     with Invalid_argument _ -> true)

let ipv4_header payload_len =
  {
    Ipv4.src = ip "16.0.0.1";
    dst = ip "16.0.0.2";
    protocol = Ipv4.protocol_udp;
    ttl = 30;
    ident = 4242;
    payload_len;
  }

let test_ipv4_roundtrip () =
  let h = ipv4_header 100 in
  let w = W.create 64 in
  Ipv4.encode w h;
  Alcotest.(check int) "header size" Ipv4.header_size (W.length w);
  match Ipv4.decode (R.of_bytes (W.contents w)) with
  | Ok h' ->
    Alcotest.(check string) "src" "16.0.0.1" (Ipv4.Addr.to_string h'.Ipv4.src);
    Alcotest.(check string) "dst" "16.0.0.2" (Ipv4.Addr.to_string h'.Ipv4.dst);
    Alcotest.(check int) "protocol" Ipv4.protocol_udp h'.Ipv4.protocol;
    Alcotest.(check int) "ident" 4242 h'.Ipv4.ident;
    Alcotest.(check int) "payload_len" 100 h'.Ipv4.payload_len
  | Error e -> Alcotest.fail e

let test_ipv4_checksum_detects_corruption () =
  let w = W.create 64 in
  Ipv4.encode w (ipv4_header 10);
  let b = W.contents w in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0x40));
  match Ipv4.decode (R.of_bytes b) with
  | Ok _ -> Alcotest.fail "accepted corrupted header"
  | Error e -> Alcotest.(check string) "checksum error" "ipv4: bad header checksum" e

(* Exhaustive error-branch coverage.  The checksum is verified before any
   field parsing, so a crafted header must carry a correct checksum to
   reach the branch under test. *)

let valid_ipv4_bytes () =
  let w = W.create 32 in
  Ipv4.encode w (ipv4_header 32);
  W.contents w

let refix_ipv4_checksum b =
  Bytes.set_uint16_be b 10 0;
  Bytes.set_uint16_be b 10 (Wire.Checksum.checksum b ~pos:0 ~len:Ipv4.header_size)

let expect_ipv4_error name want b =
  match Ipv4.decode (R.of_bytes b) with
  | Ok _ -> Alcotest.fail (name ^ ": accepted")
  | Error e -> Alcotest.(check string) name want e

let test_ipv4_truncated_every_offset () =
  let full = valid_ipv4_bytes () in
  for k = 0 to Ipv4.header_size - 1 do
    expect_ipv4_error
      (Printf.sprintf "truncated at %d" k)
      "ipv4: truncated header" (Bytes.sub full 0 k)
  done

let test_ipv4_bad_version_and_ihl () =
  List.iter
    (fun vihl ->
      let b = valid_ipv4_bytes () in
      Bytes.set_uint8 b 0 vihl;
      refix_ipv4_checksum b;
      expect_ipv4_error
        (Printf.sprintf "vihl 0x%02x" vihl)
        (Printf.sprintf "ipv4: unsupported version/IHL 0x%02x" vihl)
        b)
    [ 0x55 (* version 5 *); 0x46 (* IHL 6: options *); 0x44 (* IHL 4: impossible *); 0x00 ]

let test_ipv4_fragmented_rejected () =
  List.iter
    (fun frag ->
      let b = valid_ipv4_bytes () in
      Bytes.set_uint16_be b 6 frag;
      refix_ipv4_checksum b;
      expect_ipv4_error
        (Printf.sprintf "frag 0x%04x" frag)
        "ipv4: fragmented packet unsupported" b)
    [ 0x2000 (* more-fragments *); 0x0001 (* nonzero offset *); 0x3fff ];
  (* Don't-fragment alone is not fragmentation and must still pass. *)
  let b = valid_ipv4_bytes () in
  Bytes.set_uint16_be b 6 0x4000;
  refix_ipv4_checksum b;
  match Ipv4.decode (R.of_bytes b) with Ok _ -> () | Error e -> Alcotest.fail e

let test_ipv4_bad_total_length () =
  List.iter
    (fun total ->
      let b = valid_ipv4_bytes () in
      Bytes.set_uint16_be b 2 total;
      refix_ipv4_checksum b;
      expect_ipv4_error (Printf.sprintf "total %d" total) "ipv4: bad total length" b)
    [ 0; 1; Ipv4.header_size - 1 ]

let test_ipv4_checksum_covers_every_byte () =
  for i = 0 to Ipv4.header_size - 1 do
    let b = valid_ipv4_bytes () in
    Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 0x04);
    match Ipv4.decode (R.of_bytes b) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "bit flip at byte %d accepted" i)
    | Error _ -> ()
  done

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 header roundtrip" ~count:200
    QCheck.(quad (int_bound 0xffff) (int_bound 255) small_int (int_bound 1400))
    (fun (ident, ttl, src_i, payload_len) ->
      QCheck.assume (ttl > 0);
      let h =
        {
          Ipv4.src = Ipv4.Addr.of_int32 (Int32.of_int (src_i + 1));
          dst = ip "16.0.0.9";
          protocol = Ipv4.protocol_udp;
          ttl;
          ident;
          payload_len;
        }
      in
      let w = W.create 32 in
      Ipv4.encode w h;
      match Ipv4.decode (R.of_bytes (W.contents w)) with
      | Ok h' ->
        Ipv4.Addr.equal h.Ipv4.src h'.Ipv4.src
        && h'.Ipv4.ident = ident && h'.Ipv4.ttl = ttl
        && h'.Ipv4.payload_len = payload_len
      | Error _ -> false)

(* {1 UDP} *)

let encode_udp ?checksum payload_str =
  let w = W.create 2048 in
  Udp.encode w ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") ~src_port:1111 ~dst_port:2222 ?checksum
    ~payload:(fun w -> W.string w payload_str)
    ();
  W.contents w

let test_udp_roundtrip () =
  let b = encode_udp "the quick brown fox" in
  match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
  | Ok (h, payload) ->
    Alcotest.(check int) "src port" 1111 h.Udp.src_port;
    Alcotest.(check int) "dst port" 2222 h.Udp.dst_port;
    Alcotest.(check int) "length" (8 + 19) h.Udp.length;
    Alcotest.(check bool) "checksum set" true (h.Udp.checksum <> 0);
    Alcotest.(check string) "payload" "the quick brown fox" (Wire.Bytebuf.View.to_string payload)
  | Error e -> Alcotest.fail e

let test_udp_checksum_detects_payload_corruption () =
  let b = encode_udp "sensitive data" in
  Bytes.set b 12 'X';
  match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
  | Ok _ -> Alcotest.fail "accepted corrupted payload"
  | Error e -> Alcotest.(check string) "checksum error" "udp: bad checksum" e

let test_udp_pseudo_header_binds_addresses () =
  (* Same datagram delivered to the wrong IP destination must fail:
     the pseudo-header ties the checksum to the address pair. *)
  let b = encode_udp "hello" in
  match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.3") with
  | Ok _ -> Alcotest.fail "accepted datagram under wrong pseudo-header"
  | Error _ -> ()

let test_udp_no_checksum_mode () =
  let b = encode_udp ~checksum:false "no checksum here" in
  (* Field is zero and corruption passes silently: this is the paper's
     §4.2.4 "omit UDP checksums" trade-off made concrete. *)
  Bytes.set b 12 'X';
  match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
  | Ok (h, _) -> Alcotest.(check int) "zero checksum field" 0 h.Udp.checksum
  | Error e -> Alcotest.fail e

let test_udp_truncated_every_offset () =
  let full = encode_udp "xyz" in
  for k = 0 to Udp.header_size - 1 do
    match Udp.decode (R.of_bytes (Bytes.sub full 0 k)) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %d-byte datagram" k)
    | Error e ->
      Alcotest.(check string) (Printf.sprintf "truncated at %d" k) "udp: truncated header" e
  done

let test_udp_bad_length_field () =
  (* Both sides of the length sanity check: below the header size and
     beyond the datagram's actual end. *)
  List.iter
    (fun len ->
      let b = encode_udp "0123456789" in
      Bytes.set_uint16_be b 4 len;
      match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted length=%d" len)
      | Error e -> Alcotest.(check string) (Printf.sprintf "length=%d" len) "udp: bad length" e)
    [ 0; 1; 7; 19 (* datagram is 18 *); 0xffff ]

let test_udp_checksum_field_corruption () =
  let b = encode_udp "payload" in
  let c = Bytes.get_uint16_be b 6 in
  Bytes.set_uint16_be b 6 (if c = 1 then 2 else 1);
  match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
  | Ok _ -> Alcotest.fail "accepted corrupted checksum field"
  | Error e -> Alcotest.(check string) "checksum error" "udp: bad checksum" e

let test_udp_zero_checksum_convention () =
  (* RFC 768: a computed checksum of zero is transmitted as 0xffff and
     must verify on receive.  Search a 2-byte payload slot for an input
     whose checksum computes to zero — ones-complement arithmetic
     guarantees one exists. *)
  let found = ref false in
  let v = ref 0 in
  while (not !found) && !v < 0x10000 do
    let payload = Bytes.create 2 in
    Bytes.set_uint16_be payload 0 !v;
    let b = encode_udp (Bytes.to_string payload) in
    if Bytes.get_uint16_be b 6 = 0xffff then begin
      found := true;
      match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
      | Ok (h, _) -> Alcotest.(check int) "0xffff on the wire" 0xffff h.Udp.checksum
      | Error e -> Alcotest.fail e
    end;
    incr v
  done;
  Alcotest.(check bool) "found a zero-checksum input" true !found

let prop_udp_roundtrip =
  QCheck.Test.make ~name:"udp payload roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 1440))
    (fun payload ->
      let b = encode_udp payload in
      match Udp.decode (R.of_bytes b) ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") with
      | Ok (_, p) -> Wire.Bytebuf.View.to_string p = payload
      | Error _ -> false)

(* {1 Full frame} *)

let test_full_frame_sizes () =
  (* An RPC packet with no arguments must be exactly 74 bytes on the
     wire (Eth 14 + IP 20 + UDP 8 + 32-byte RPC header), and a full
     single-packet result exactly 1514 — the paper's packet sizes. *)
  let build rpc_payload_len =
    let w = W.create 2048 in
    Ethernet.encode w
      { Ethernet.dst = Mac.of_station 2; src = Mac.of_station 1; ethertype = Ethernet.ethertype_ipv4 };
    let udp_len = Udp.header_size + 32 + rpc_payload_len in
    Ipv4.encode w (ipv4_header udp_len);
    Udp.encode w ~src:(ip "16.0.0.1") ~dst:(ip "16.0.0.2") ~src_port:530 ~dst_port:530
      ~payload:(fun w -> W.zeros w (32 + rpc_payload_len))
      ();
    W.length w
  in
  Alcotest.(check int) "minimum RPC frame" 74 (build 0);
  Alcotest.(check int) "maximum RPC frame" 1514 (build 1440)

let suite =
  [
    Alcotest.test_case "mac parse/print" `Quick test_mac_parse;
    Alcotest.test_case "mac stations" `Quick test_mac_station_distinct;
    Alcotest.test_case "mac wire format" `Quick test_mac_wire;
    Alcotest.test_case "ethernet roundtrip" `Quick test_ethernet_roundtrip;
    Alcotest.test_case "ethernet truncated" `Quick test_ethernet_truncated;
    Alcotest.test_case "ethernet truncated at every offset" `Quick
      test_ethernet_truncated_every_offset;
    QCheck_alcotest.to_alcotest prop_ethernet_roundtrip;
    Alcotest.test_case "ipv4 addresses" `Quick test_addr;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 checksum detects corruption" `Quick
      test_ipv4_checksum_detects_corruption;
    Alcotest.test_case "ipv4 truncated at every offset" `Quick test_ipv4_truncated_every_offset;
    Alcotest.test_case "ipv4 bad version/IHL" `Quick test_ipv4_bad_version_and_ihl;
    Alcotest.test_case "ipv4 fragmented rejected" `Quick test_ipv4_fragmented_rejected;
    Alcotest.test_case "ipv4 bad total length" `Quick test_ipv4_bad_total_length;
    Alcotest.test_case "ipv4 checksum covers every byte" `Quick
      test_ipv4_checksum_covers_every_byte;
    QCheck_alcotest.to_alcotest prop_ipv4_roundtrip;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp checksum detects corruption" `Quick
      test_udp_checksum_detects_payload_corruption;
    Alcotest.test_case "udp pseudo-header binds addresses" `Quick
      test_udp_pseudo_header_binds_addresses;
    Alcotest.test_case "udp without checksums" `Quick test_udp_no_checksum_mode;
    Alcotest.test_case "udp truncated at every offset" `Quick test_udp_truncated_every_offset;
    Alcotest.test_case "udp bad length field" `Quick test_udp_bad_length_field;
    Alcotest.test_case "udp corrupted checksum field" `Quick test_udp_checksum_field_corruption;
    Alcotest.test_case "udp zero-checksum convention (RFC 768)" `Quick
      test_udp_zero_checksum_convention;
    QCheck_alcotest.to_alcotest prop_udp_roundtrip;
    Alcotest.test_case "paper frame sizes (74/1514)" `Quick test_full_frame_sizes;
  ]

let () = Alcotest.run "net" [ ("net", suite) ]
