module Driver = Fuzz.Driver
module Oracle = Fuzz.Oracle
module Corpus = Fuzz.Corpus
module R = Wire.Bytebuf.Reader
module V = Wire.Bytebuf.View

(* {1 Determinism and totality} *)

let test_deterministic () =
  let a = Driver.run ~seed:5 ~iters:4000 () in
  let b = Driver.run ~seed:5 ~iters:4000 () in
  Alcotest.(check string) "byte-identical reports" (Driver.to_string a) (Driver.to_string b);
  let c = Driver.run ~seed:6 ~iters:4000 () in
  Alcotest.(check bool) "different seed, different stream" false
    (a.Driver.r_full_stack_ok = c.Driver.r_full_stack_ok
    && Driver.to_string a = Driver.to_string c)

let test_total_decoders () =
  (* The tier-1 slice of the 50k CI acceptance run: every mutated frame
     decodes without an escaped exception or property violation. *)
  let r = Driver.run ~seed:3 ~iters:8000 () in
  Alcotest.(check int) "executed the full budget" 8000 r.Driver.r_executed;
  Alcotest.(check bool) "some mutants still parse" true (r.Driver.r_full_stack_ok > 0);
  (match r.Driver.r_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.fail
      (Printf.sprintf "decoder property violated: [%s] %s: %s" f.Driver.f_stage f.Driver.f_tag
         f.Driver.f_message))

(* {1 The canary self-test} *)

let test_canary_found () =
  let found, r = Driver.canary ~seed:1 ~iters:5000 () in
  Alcotest.(check bool) "planted bug rediscovered" true found;
  Alcotest.(check bool) "canary restored" false !Net.Udp.canary_skip_length_check;
  (* The planted bug is in Udp.decode's length handling: the exception
     class must point there (the udp stage or the full-frame stage). *)
  let stages =
    List.filter_map
      (fun f -> if f.Driver.f_tag = "exception" then Some f.Driver.f_stage else None)
      r.Driver.r_failures
  in
  Alcotest.(check bool) "blamed a UDP-reaching stage" true
    (List.exists (fun s -> s = "udp" || String.length s >= 5) stages)

let test_canary_reproducer_minimal () =
  (* Shrinking must cut the reproducer down to little more than a bare
     UDP header with a skewed length field. *)
  let found, r = Driver.canary ~seed:1 ~iters:5000 () in
  Alcotest.(check bool) "found" true found;
  let udp_repro =
    List.find_opt (fun f -> f.Driver.f_stage = "udp") r.Driver.r_failures
  in
  match udp_repro with
  | None -> () (* found through the frame stage only; nothing to assert *)
  | Some f ->
    Alcotest.(check bool)
      (Printf.sprintf "minimized to the 8-byte header (got %d)" (Bytes.length f.Driver.f_input))
      true
      (Bytes.length f.Driver.f_input <= 16)

(* {1 Reproducer persistence and replay} *)

let with_temp_dir f =
  (* Fixed name: only this suite uses it, and alcotest runs cases
     sequentially within the executable. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "firefly-fuzz-test" in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let test_persist_and_replay () =
  with_temp_dir @@ fun dir ->
  let _, r = Driver.canary ~seed:1 ~iters:5000 () in
  let paths = Driver.write_failures ~dir r in
  Alcotest.(check bool) "reproducers written" true (paths <> []);
  List.iter (fun p -> Alcotest.(check bool) ("exists " ^ p) true (Sys.file_exists p)) paths;
  (* With the planted bug gone, every reproducer must replay clean... *)
  let clean = Driver.replay_dir ~dir in
  Alcotest.(check int) "replayed every file" (List.length paths) (List.length clean);
  List.iter
    (fun (p, f) -> Alcotest.(check bool) ("clean replay " ^ p) true (f = None))
    clean;
  (* ...and with the bug re-planted, at least one must fail again. *)
  Net.Udp.canary_skip_length_check := true;
  Fun.protect ~finally:(fun () -> Net.Udp.canary_skip_length_check := false) @@ fun () ->
  let dirty = Driver.replay_dir ~dir in
  Alcotest.(check bool) "reproducer still bites under the bug" true
    (List.exists (fun (_, f) -> f <> None) dirty)

(* {1 The of_view / of_bytes differential (satellite)}

   Independent of the oracle's own plumbing: decode every corpus entry
   and a stream of seeded mutants through both reader paths at every
   layer, and require identical results — including identical [Error]
   strings. *)

let embed input =
  let pad = 3 in
  let b = Bytes.make (Bytes.length input + (2 * pad)) '\xcc' in
  Bytes.blit input 0 b pad (Bytes.length input);
  V.of_bytes ~pos:pad ~len:(Bytes.length input) b

let check_same name input decode to_repr =
  let via_bytes =
    try `R (to_repr (decode (R.of_bytes (Bytes.copy input)))) with e -> `Exn (Printexc.to_string e)
  in
  let via_view =
    try `R (to_repr (decode (R.of_view (embed input)))) with e -> `Exn (Printexc.to_string e)
  in
  if via_bytes <> via_view then
    Alcotest.fail
      (Printf.sprintf "%s: of_bytes and of_view disagree on %d-byte input" name
         (Bytes.length input))

let repr_result to_s = function Ok v -> "ok:" ^ to_s v | Error e -> "error:" ^ e

let differential_one input =
  check_same "ethernet" input Net.Ethernet.decode
    (repr_result (fun h -> Net.Mac.to_string h.Net.Ethernet.src));
  check_same "ipv4" input Net.Ipv4.decode
    (repr_result (fun h -> Net.Ipv4.Addr.to_string h.Net.Ipv4.src));
  check_same "udp" input
    (fun r -> Net.Udp.decode r ~src:Corpus.src.Rpc.Frames.ip ~dst:Corpus.dst.Rpc.Frames.ip)
    (repr_result (fun (h, p) -> Printf.sprintf "%d:%d:%s" h.Net.Udp.src_port h.Net.Udp.length (V.to_string p)));
  check_same "rpc-header" input Rpc.Proto.decode
    (repr_result (Format.asprintf "%a" Rpc.Proto.pp));
  List.iter
    (fun (label, timing) ->
      let a =
        match Rpc.Frames.parse timing (Bytes.copy input) with
        | Ok p -> "ok:" ^ V.to_string p.Rpc.Frames.p_payload
        | Error e -> "error:" ^ e
      in
      let b =
        match Rpc.Frames.parse_view timing (embed input) with
        | Ok p -> "ok:" ^ V.to_string p.Rpc.Frames.p_payload
        | Error e -> "error:" ^ e
      in
      Alcotest.(check string) ("frames[" ^ label ^ "] parse = parse_view") a b)
    Corpus.all_timings

let test_differential_corpus () =
  let corpus = Corpus.generate ~seed:11 in
  List.iter differential_one corpus;
  (* Seeded mutants of the corpus, same stream the fuzzer would draw. *)
  let arr = Array.of_list corpus in
  let rng = Sim.Rng.create ~seed:12 in
  for _ = 1 to 1500 do
    let input = Fuzz.Mutate.apply rng ~corpus:arr arr.(Sim.Rng.int rng (Array.length arr)) in
    differential_one input
  done

(* {1 Corpus sanity} *)

let test_corpus_deterministic () =
  let a = Corpus.generate ~seed:9 and b = Corpus.generate ~seed:9 in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  List.iter2 (fun x y -> Alcotest.(check bytes) "same entry" x y) a b

let test_corpus_parses () =
  (* Unmutated full-frame corpus entries must be accepted by at least
     one regime's full-stack parse (bare-layer and noise entries are
     rejected by all four; that's fine). *)
  let corpus = Corpus.generate ~seed:2 in
  let accepted =
    List.length
      (List.filter
         (fun e ->
           List.exists
             (fun (_, t) -> Result.is_ok (Rpc.Frames.parse t e))
             Corpus.all_timings)
         corpus)
  in
  Alcotest.(check bool)
    (Printf.sprintf "a healthy share of the corpus parses (%d)" accepted)
    true (accepted >= 25)

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "deterministic runs" `Quick test_deterministic;
          Alcotest.test_case "decoders stay total under mutation" `Quick test_total_decoders;
          Alcotest.test_case "canary bug is found" `Quick test_canary_found;
          Alcotest.test_case "canary reproducer shrinks small" `Quick
            test_canary_reproducer_minimal;
          Alcotest.test_case "persist and replay reproducers" `Quick test_persist_and_replay;
          Alcotest.test_case "of_view = of_bytes across corpus and mutants" `Quick
            test_differential_corpus;
          Alcotest.test_case "corpus is deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "corpus mostly parses" `Quick test_corpus_parses;
        ] );
    ]
