(* Direct unit tests for every Ether_link fault kind: Deliver, Drop,
   Corrupt, Corrupt_payload, Duplicate, Delay — the vocabulary the
   fault-plan DSL (library check) compiles onto. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Ether_link = Hw.Ether_link
module Mac = Net.Mac

let frame ?(fill = '\x00') ~dst ~src ~len () =
  let w = Wire.Bytebuf.Writer.create len in
  Net.Ethernet.encode w { Net.Ethernet.dst; src; ethertype = Net.Ethernet.ethertype_ipv4 };
  Wire.Bytebuf.Writer.string w (String.make (len - Net.Ethernet.header_size) fill);
  Wire.Bytebuf.Writer.contents w

(* One sender, one receiver, a single-fault injector; returns the
   arrivals as (time_us, bytes) in order. *)
let run_with_fault ?(len = 200) ?(frames = 1) fault =
  let eng = Engine.create () in
  let link = Ether_link.create eng ~mbps:10. in
  let m1 = Mac.of_station 1 and m2 = Mac.of_station 2 in
  let arrivals = ref [] in
  let _s2 =
    Ether_link.attach link ~mac:m2 ~on_frame_start:(fun ~frame ~wire:_ ->
        arrivals := (Time.since_start_us (Engine.now eng), Bytes.copy frame) :: !arrivals)
  in
  let _s1 = Ether_link.attach link ~mac:m1 ~on_frame_start:(fun ~frame:_ ~wire:_ -> ()) in
  let first = ref true in
  Ether_link.set_fault_injector link
    (Some
       (fun _ ->
         if !first then begin
           first := false;
           fault
         end
         else Ether_link.Deliver));
  Engine.spawn eng (fun () ->
      for _ = 1 to frames do
        Ether_link.transmit link ~src:m1 (frame ~dst:m2 ~src:m1 ~len ())
      done);
  Engine.run eng;
  (link, List.rev !arrivals)

let sent_bytes ?fill ~len () =
  frame ?fill ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len ()

let diff_indices a b =
  if Bytes.length a <> Bytes.length b then
    Alcotest.failf "length changed: %d -> %d" (Bytes.length a) (Bytes.length b);
  let d = ref [] in
  for i = Bytes.length a - 1 downto 0 do
    if Bytes.get a i <> Bytes.get b i then d := i :: !d
  done;
  !d

let test_deliver () =
  let link, arrivals = run_with_fault Ether_link.Deliver in
  match arrivals with
  | [ (_, b) ] ->
    Alcotest.(check bytes) "delivered unmodified" (sent_bytes ~len:200 ()) b;
    Alcotest.(check int) "nothing dropped" 0 (Ether_link.frames_dropped link);
    Alcotest.(check int) "nothing corrupted" 0 (Ether_link.frames_corrupted link)
  | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l)

let test_drop () =
  let link, arrivals = run_with_fault Ether_link.Drop in
  Alcotest.(check int) "no arrival" 0 (List.length arrivals);
  Alcotest.(check int) "drop counted" 1 (Ether_link.frames_dropped link);
  Alcotest.(check int) "wire time still elapsed" 1 (Ether_link.frames_carried link)

let test_corrupt () =
  let link, arrivals = run_with_fault Ether_link.Corrupt in
  match arrivals with
  | [ (_, b) ] ->
    (match diff_indices (sent_bytes ~len:200 ()) b with
    | [ i ] ->
      Alcotest.(check bool) "flip is past the Ethernet header" true
        (i >= Net.Ethernet.header_size)
    | d -> Alcotest.failf "expected exactly 1 flipped byte, got %d" (List.length d));
    Alcotest.(check int) "corruption counted" 1 (Ether_link.frames_corrupted link)
  | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l)

let test_corrupt_payload () =
  let _, arrivals = run_with_fault Ether_link.Corrupt_payload in
  (match arrivals with
  | [ (_, b) ] -> (
    match diff_indices (sent_bytes ~len:200 ()) b with
    | [ i ] -> Alcotest.(check bool) "flip is past offset 74" true (i >= 74)
    | d -> Alcotest.failf "expected exactly 1 flipped byte, got %d" (List.length d))
  | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l));
  (* A minimum frame has no payload past 74: delivered unmodified. *)
  let link, arrivals = run_with_fault ~len:74 Ether_link.Corrupt_payload in
  match arrivals with
  | [ (_, b) ] ->
    Alcotest.(check bytes) "headers-only frame untouched" (sent_bytes ~len:74 ()) b;
    Alcotest.(check int) "not counted as corrupted" 0 (Ether_link.frames_corrupted link)
  | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l)

let test_duplicate () =
  let link, arrivals = run_with_fault Ether_link.Duplicate in
  match arrivals with
  | [ (t1, b1); (t2, b2) ] ->
    Alcotest.(check bytes) "first copy intact" (sent_bytes ~len:200 ()) b1;
    Alcotest.(check bytes) "second copy identical" b1 b2;
    (* 200 bytes at 10 Mbit/s = 160 us wire + 9.6 us gap. *)
    Alcotest.(check bool) "second copy a full frame time later" true (t2 -. t1 >= 160.);
    Alcotest.(check int) "duplicate counted" 1 (Ether_link.frames_duplicated link);
    Alcotest.(check int) "both copies carried" 2 (Ether_link.frames_carried link)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_delay_reorders () =
  (* Frame 1 is held for 500 us; frame 2, sent right behind it, arrives
     first — the reordering case duplicate suppression must survive. *)
  let link, arrivals = run_with_fault ~frames:2 (Ether_link.Delay (Time.us 500)) in
  match arrivals with
  | [ (t1, _); (t2, _) ] ->
    Alcotest.(check bool) "second frame overtakes the delayed one" true (t1 < t2);
    Alcotest.(check (float 1.)) "delayed frame arrives at its hold time" 500. t2;
    Alcotest.(check int) "delay counted" 1 (Ether_link.frames_delayed link)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_reorder_swaps () =
  (* Frame A is marked Reorder; frame B, sent right behind it, must
     arrive first, with A released the instant B is delivered. *)
  let eng = Engine.create () in
  let link = Ether_link.create eng ~mbps:10. in
  let m1 = Mac.of_station 1 and m2 = Mac.of_station 2 in
  let arrivals = ref [] in
  let _s2 =
    Ether_link.attach link ~mac:m2 ~on_frame_start:(fun ~frame ~wire:_ ->
        arrivals := (Time.since_start_us (Engine.now eng), Bytes.copy frame) :: !arrivals)
  in
  let _s1 = Ether_link.attach link ~mac:m1 ~on_frame_start:(fun ~frame:_ ~wire:_ -> ()) in
  let first = ref true in
  Ether_link.set_fault_injector link
    (Some
       (fun _ ->
         if !first then begin
           first := false;
           Ether_link.Reorder
         end
         else Ether_link.Deliver));
  Engine.spawn eng (fun () ->
      Ether_link.transmit link ~src:m1 (frame ~fill:'A' ~dst:m2 ~src:m1 ~len:200 ());
      Ether_link.transmit link ~src:m1 (frame ~fill:'B' ~dst:m2 ~src:m1 ~len:200 ()));
  Engine.run eng;
  match List.rev !arrivals with
  | [ (t1, b1); (t2, b2) ] ->
    Alcotest.(check bytes) "the overtaking frame arrives first" (sent_bytes ~fill:'B' ~len:200 ())
      b1;
    Alcotest.(check bytes) "the held frame follows intact" (sent_bytes ~fill:'A' ~len:200 ()) b2;
    Alcotest.(check bool) "released together, not at the backstop" true (t2 -. t1 < 1. && t2 < 1000.);
    Alcotest.(check int) "reorder counted" 1 (Ether_link.frames_reordered link)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_reorder_backstop () =
  (* No second frame ever comes: the held frame must not vanish — the
     1 ms backstop releases it. *)
  let link, arrivals = run_with_fault Ether_link.Reorder in
  match arrivals with
  | [ (t, b) ] ->
    Alcotest.(check bytes) "delivered intact" (sent_bytes ~len:200 ()) b;
    Alcotest.(check (float 1.)) "released at the 1 ms backstop" 1000. t;
    Alcotest.(check int) "reorder counted" 1 (Ether_link.frames_reordered link)
  | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l)

let test_delay_negative_rejected () =
  Alcotest.(check bool) "negative delay refused" true
    (try
       ignore (run_with_fault (Ether_link.Delay (Time.span_sub Time.zero_span (Time.us 1))));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "Deliver" `Quick test_deliver;
    Alcotest.test_case "Drop" `Quick test_drop;
    Alcotest.test_case "Corrupt" `Quick test_corrupt;
    Alcotest.test_case "Corrupt_payload" `Quick test_corrupt_payload;
    Alcotest.test_case "Duplicate" `Quick test_duplicate;
    Alcotest.test_case "Delay reorders" `Quick test_delay_reorders;
    Alcotest.test_case "Reorder swaps adjacent frames" `Quick test_reorder_swaps;
    Alcotest.test_case "Reorder backstop" `Quick test_reorder_backstop;
    Alcotest.test_case "Delay rejects negative spans" `Quick test_delay_negative_rejected;
  ]
