let () =
  Alcotest.run "hw"
    [
      ("timing", Test_timing.suite);
      ("cpu_set", Test_cpu_set.suite);
      ("link-deqna", Test_link_deqna.suite);
      ("link-faults", Test_faults.suite);
    ]
