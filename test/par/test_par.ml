(* Tests for the domain pool and the domain-safe once-cell. *)

let range n = List.init n (fun i -> i)

let test_map_list_order () =
  (* Results must come back in input order no matter how many domains
     service the queue. *)
  let tasks = range 100 in
  let expect = List.map (fun i -> i * i) tasks in
  List.iter
    (fun jobs ->
      let got = Par.Pool.map_list ~jobs (fun i -> i * i) tasks in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        expect got)
    [ 1; 2; 4; 7 ]

let test_jobs_one_is_serial_map () =
  (* jobs=1 is documented as a plain List.map: side effects happen in
     input order on the calling domain. *)
  let log = ref [] in
  let got =
    Par.Pool.map_list ~jobs:1
      (fun i ->
        log := i :: !log;
        i + 1)
      (range 10)
  in
  Alcotest.(check (list int)) "results" (List.map succ (range 10)) got;
  Alcotest.(check (list int)) "evaluation order" (range 10) (List.rev !log)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" []
    (Par.Pool.map_list ~jobs:8 (fun i -> i) []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Par.Pool.map_list ~jobs:8 (fun i -> i) [ 7 ])

let test_more_jobs_than_tasks () =
  let got = Par.Pool.map_list ~jobs:16 (fun i -> i * 2) (range 3) in
  Alcotest.(check (list int)) "jobs > tasks" [ 0; 2; 4 ] got

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Par.Pool.map_list: jobs must be >= 1") (fun () ->
      ignore (Par.Pool.map_list ~jobs:0 (fun i -> i) [ 1 ]))

exception Boom of int

let test_first_failure_wins () =
  (* Several tasks fail; the exception of the lowest-indexed failing
     task must be the one re-raised, deterministically. *)
  List.iter
    (fun jobs ->
      match
        Par.Pool.map_list ~jobs
          (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
          (range 20)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d lowest failing index" jobs)
          2 i)
    [ 1; 4 ]

let test_map_array () =
  let got = Par.Pool.map_array ~jobs:4 (fun i -> i + 10) (Array.of_list (range 5)) in
  Alcotest.(check (array int)) "map_array" [| 10; 11; 12; 13; 14 |] got

let test_once_computes_once () =
  let count = ref 0 in
  let cell =
    Par.Once.create (fun () ->
        incr count;
        !count * 100)
  in
  Alcotest.(check int) "first force" 100 (Par.Once.force cell);
  Alcotest.(check int) "second force cached" 100 (Par.Once.force cell);
  Alcotest.(check int) "computed exactly once" 1 !count

let test_once_under_domains () =
  (* Many domains racing to force the same cell must all observe the
     same value and the compute function must run exactly once.  An
     Atomic counter keeps the check domain-safe. *)
  let count = Atomic.make 0 in
  let cell =
    Par.Once.create (fun () ->
        Atomic.incr count;
        (* Widen the race window a little. *)
        ignore (Sys.opaque_identity (Array.make 1024 0));
        42)
  in
  let values =
    Par.Pool.map_list ~jobs:8 (fun _ -> Par.Once.force cell) (range 16)
  in
  List.iter (fun v -> Alcotest.(check int) "forced value" 42 v) values;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get count)

let test_once_retries_after_failure () =
  let attempts = ref 0 in
  let cell =
    Par.Once.create (fun () ->
        incr attempts;
        if !attempts = 1 then failwith "transient" else !attempts)
  in
  (match Par.Once.force cell with
  | _ -> Alcotest.fail "expected first force to raise"
  | exception Failure _ -> ());
  Alcotest.(check int) "second force retries and caches" 2 (Par.Once.force cell);
  Alcotest.(check int) "cached thereafter" 2 (Par.Once.force cell);
  Alcotest.(check int) "two attempts total" 2 !attempts

let suite =
  [
    Alcotest.test_case "map_list preserves input order" `Quick test_map_list_order;
    Alcotest.test_case "jobs=1 is a serial List.map" `Quick test_jobs_one_is_serial_map;
    Alcotest.test_case "empty and singleton inputs" `Quick test_empty_and_singleton;
    Alcotest.test_case "more jobs than tasks" `Quick test_more_jobs_than_tasks;
    Alcotest.test_case "jobs < 1 rejected" `Quick test_invalid_jobs;
    Alcotest.test_case "lowest-index failure re-raised" `Quick test_first_failure_wins;
    Alcotest.test_case "map_array" `Quick test_map_array;
    Alcotest.test_case "once computes once" `Quick test_once_computes_once;
    Alcotest.test_case "once under racing domains" `Quick test_once_under_domains;
    Alcotest.test_case "once retries after failure" `Quick test_once_retries_after_failure;
  ]

let () = Alcotest.run "par" [ ("pool", suite) ]
