(* Tests for the observability layer: JSON, histograms, the metrics
   registry and snapshots, the event journal, and the end-to-end
   Chrome-trace export of a real two-Firefly run. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Journal = Obs.Journal
module Time = Sim.Time

let at n = Time.of_ns_since_start n

(* {1 Json} *)

let test_json_emit () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Num 42.);
        ("f", Json.Num 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("a", Json.Arr [ Json.Num 0.; Json.Num (-3.) ]);
      ]
  in
  Alcotest.(check string)
    "compact deterministic rendering"
    {|{"s":"a\"b\\c\nd","i":42,"f":1.5,"b":true,"n":null,"a":[0,-3]}|} (Json.to_string j)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("nested", Json.Arr [ Json.Obj [ ("x", Json.Num 1e-3) ]; Json.Str "tab\there" ]);
        ("neg", Json.Num (-2.25));
        ("flags", Json.Arr [ Json.Bool false; Json.Null ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' -> Alcotest.(check string) "round-trips" (Json.to_string j) (Json.to_string j')

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* {1 Histogram} *)

let test_histogram_percentiles () =
  let h = Metrics.Histogram.create () in
  Alcotest.check_raises "empty percentile raises"
    (Invalid_argument "Obs.Metrics.Histogram.percentile: empty") (fun () ->
      ignore (Metrics.Histogram.percentile h 0.5));
  for i = 1 to 1000 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  let within q expected =
    let v = Metrics.Histogram.percentile h q in
    let rel = abs_float (v -. expected) /. expected in
    if rel > 0.1 then Alcotest.failf "p%.0f = %.1f, expected ~%.1f" (q *. 100.) v expected
  in
  (* Log buckets grow by ~9%, so quantiles are within one bucket. *)
  within 0.5 500.;
  within 0.9 900.;
  within 0.99 990.;
  Alcotest.(check (float 0.)) "p100 is the exact max" 1000. (Metrics.Histogram.percentile h 1.);
  Alcotest.(check (float 0.)) "max_value" 1000. (Metrics.Histogram.max_value h);
  Metrics.Histogram.observe h (-5.);
  Alcotest.(check int) "negative samples clamp to zero, still counted" 1001
    (Metrics.Histogram.count h)

(* {1 Registry and snapshots} *)

let test_registry_snapshot_diff () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Registry.counter reg ~site:"caller" ~name:"rpc.calls" in
  let h = Metrics.Registry.histogram reg ~site:"caller" ~name:"rpc.latency_us" in
  let g = ref 7. in
  Metrics.Registry.register_probe reg ~site:"server" ~name:"queue.depth" (fun () -> !g);
  Sim.Stats.Counter.add c 10;
  Metrics.Histogram.observe h 100.;
  let s0 = Metrics.Snapshot.take reg ~at:(at 0) in
  Sim.Stats.Counter.add c 5;
  Metrics.Histogram.observe h 200.;
  g := 9.;
  let s1 = Metrics.Snapshot.take reg ~at:(at 1_000_000) in
  let d = Metrics.Snapshot.diff s1 s0 in
  (match Metrics.Snapshot.find d ~site:"caller" ~name:"rpc.calls" with
  | Some (Metrics.Snapshot.Count n) -> Alcotest.(check int) "counter diff" 5 n
  | _ -> Alcotest.fail "counter row missing");
  (match Metrics.Snapshot.find d ~site:"caller" ~name:"rpc.latency_us" with
  | Some (Metrics.Snapshot.Dist { count; sum; _ }) ->
    Alcotest.(check int) "dist count diff" 1 count;
    Alcotest.(check (float 1e-9)) "dist sum diff" 200. sum
  | _ -> Alcotest.fail "histogram row missing");
  (match Metrics.Snapshot.find d ~site:"server" ~name:"queue.depth" with
  | Some (Metrics.Snapshot.Gauge v) -> Alcotest.(check (float 0.)) "gauge takes later" 9. v
  | _ -> Alcotest.fail "gauge row missing");
  (* Kind mismatch on get-or-create is an error. *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Obs.Metrics.Registry: caller/rpc.calls already bound to a different instrument kind") (fun () ->
      ignore (Metrics.Registry.histogram reg ~site:"caller" ~name:"rpc.calls"))

let test_snapshot_rendering_deterministic () =
  let build () =
    let reg = Metrics.Registry.create () in
    (* Registration order differs between the two builds; rows must not. *)
    let names = [ "b.two"; "a.one"; "c.three" ] in
    List.iter
      (fun n -> Sim.Stats.Counter.add (Metrics.Registry.counter reg ~site:"m" ~name:n) 3)
      names;
    Metrics.Snapshot.take reg ~at:(at 42)
  in
  let reg2 = Metrics.Registry.create () in
  List.iter
    (fun n -> Sim.Stats.Counter.add (Metrics.Registry.counter reg2 ~site:"m" ~name:n) 3)
    [ "c.three"; "a.one"; "b.two" ];
  let s1 = build () in
  let s2 = Metrics.Snapshot.take reg2 ~at:(at 42) in
  Alcotest.(check string) "CSV is order-independent" (Metrics.Snapshot.to_csv s1)
    (Metrics.Snapshot.to_csv s2);
  Alcotest.(check string) "table render is order-independent"
    (Report.Table.render (Metrics.Snapshot.to_table s1))
    (Report.Table.render (Metrics.Snapshot.to_table s2));
  let csv = Metrics.Snapshot.to_csv s1 in
  (match String.split_on_char '\n' csv with
  | header :: _ -> Alcotest.(check string) "csv header" "site,name,kind,value,extra" header
  | [] -> Alcotest.fail "empty csv")

(* {1 Journal} *)

let test_journal_ring () =
  let j = Journal.create ~capacity:3 () in
  Alcotest.(check int) "empty" 0 (Journal.length j);
  Journal.record j ~at:(at 1) ~site:"a" (Journal.Packet_tx { bytes = 64 });
  Journal.record j ~at:(at 2) ~site:"a" (Journal.Packet_rx { bytes = 64 });
  Journal.record j ~at:(at 3) ~site:"b" Journal.Interrupt;
  Journal.record j ~at:(at 4) ~site:"b" (Journal.Retransmit { seq = 9 });
  Journal.record j ~at:(at 5) ~site:"b" Journal.Thread_wakeup;
  Alcotest.(check int) "ring holds capacity" 3 (Journal.length j);
  Alcotest.(check int) "total counts everything" 5 (Journal.total j);
  Alcotest.(check int) "dropped counts overwrites" 2 (Journal.dropped j);
  let sites = List.map (fun e -> e.Journal.site) (Journal.entries j) in
  Alcotest.(check (list string)) "oldest dropped first" [ "b"; "b"; "b" ] sites;
  (match Journal.entries j with
  | { Journal.ev = Journal.Interrupt; at = t; _ } :: _ ->
    Alcotest.(check int) "oldest retained entry" 3 (Time.since_start_ns t)
  | _ -> Alcotest.fail "unexpected oldest entry");
  Journal.clear j;
  Alcotest.(check int) "clear empties" 0 (Journal.length j);
  Alcotest.(check int) "clear resets dropped" 0 (Journal.dropped j);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Obs.Journal.create: capacity must be >= 1") (fun () ->
      ignore (Journal.create ~capacity:0 ()))

(* {1 Driver percentile caching} *)

let test_percentile_repeated_queries () =
  let w = Workload.World.create ~idle_load:false () in
  let o = Workload.Driver.run w ~threads:2 ~calls:30 ~proc:Workload.Driver.Null () in
  let p1 = Workload.Driver.percentile o 0.9 in
  (* Repeated and interleaved queries answer from the same sorted
     array; the outcome's visible state never changes. *)
  let p2 = Workload.Driver.percentile o 0.9 in
  Alcotest.(check int) "repeated query is stable" (Time.to_ns p1) (Time.to_ns p2);
  let p50 = Workload.Driver.percentile o 0.5 in
  let p99 = Workload.Driver.percentile o 0.99 in
  let p100 = Workload.Driver.percentile o 1.0 in
  Alcotest.(check bool) "p50 <= p90" true (Time.span_compare p50 p1 <= 0);
  Alcotest.(check bool) "p90 <= p99" true (Time.span_compare p1 p99 <= 0);
  Alcotest.(check bool) "p99 <= p100" true (Time.span_compare p99 p100 <= 0);
  let sorted = Par.Once.force o.Workload.Driver.sorted_latencies in
  Alcotest.(check int) "p100 is the slowest call" 0
    (Time.span_compare p100 sorted.(Array.length sorted - 1));
  (* The original completion-order array is untouched by sorting. *)
  Alcotest.(check int) "latencies length unchanged" 30 (Array.length o.Workload.Driver.latencies)

(* An outcome carrying exactly the given latency samples; only the
   fields [percentile] reads matter. *)
let outcome_of_latencies latencies =
  let sorted = Array.copy latencies in
  Array.sort Time.span_compare sorted;
  {
    Workload.Driver.threads = 1;
    calls = Array.length latencies;
    elapsed = Time.zero_span;
    rpcs_per_sec = 0.;
    megabits_per_sec = 0.;
    caller_busy_cpus = 0.;
    server_busy_cpus = 0.;
    retransmissions = 0;
    mean_latency = Time.zero_span;
    latencies;
    sorted_latencies = Par.Once.create (fun () -> sorted);
  }

(* Property: over shared samples, Driver.percentile implements the
   nearest-rank definition exactly — the smallest sample whose
   cumulative count reaches q*n — and Obs.Metrics.Histogram.percentile
   agrees with it up to its bucket resolution. *)
let test_percentile_agreement () =
  let rng = Sim.Rng.create ~seed:911 in
  for case = 1 to 40 do
    let n = 1 + Sim.Rng.int rng 400 in
    (* >= 1 us so no sample folds into the histogram's bucket 0. *)
    let samples_us =
      Array.init n (fun _ -> 1. +. (float_of_int (Sim.Rng.int rng 1_000_000) /. 100.))
    in
    let o = outcome_of_latencies (Array.map Time.us_f samples_us) in
    let h = Metrics.Histogram.create () in
    Array.iter (Metrics.Histogram.observe h) samples_us;
    let sorted = Array.copy samples_us in
    Array.sort compare sorted;
    List.iter
      (fun q ->
        (* Reference: smallest rank r (1-based) with r >= q*n. *)
        let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
        let expected = sorted.(rank - 1) in
        let got = Time.to_us (Workload.Driver.percentile o q) in
        if abs_float (got -. expected) > 1e-6 then
          Alcotest.failf "case %d n=%d q=%.3f: Driver.percentile %.3f, nearest-rank %.3f" case
            n q got expected;
        let hist = Metrics.Histogram.percentile h q in
        (* Log buckets grow by 2^(1/8) with a geometric-midpoint
           representative: within ~4.5% of the true quantile (exact at
           the clamped extremes). *)
        let ratio = hist /. expected in
        if ratio < 0.95 || ratio > 1.055 then
          Alcotest.failf "case %d n=%d q=%.3f: histogram %.3f vs exact %.3f (ratio %.4f)" case
            n q hist expected ratio)
      [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]
  done

(* {1 End-to-end Chrome trace export} *)

let test_chrome_trace_export () =
  let w = Workload.World.create ~idle_load:false () in
  let latencies = Workload.Driver.run_traced w ~calls:1 ~proc:Workload.Driver.Null () in
  Alcotest.(check int) "one timed call" 1 (List.length latencies);
  let spans = Sim.Trace.spans (Sim.Engine.trace w.Workload.World.eng) in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  let journal = w.Workload.World.obs.Obs.Ctx.journal in
  Alcotest.(check bool) "journal has events" true (Journal.length journal > 0);
  let json = Obs.Trace_export.chrome_trace ~journal ~spans () in
  let text = Json.to_string json in
  (* The export must parse back as JSON... *)
  let parsed =
    match Json.parse text with
    | Ok j -> j
    | Error e -> Alcotest.failf "export is not valid JSON: %s" e
  in
  let events =
    match Json.member "traceEvents" parsed with
    | Some a -> Json.items a
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let ph e = Option.value ~default:"" (Option.bind (Json.member "ph" e) Json.str) in
  (* ...with duration spans from at least two machines (pids)... *)
  let span_pids =
    List.filter_map
      (fun e -> if ph e = "X" then Option.bind (Json.member "pid" e) Json.num else None)
      events
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "spans from >= 2 machines" true (List.length span_pids >= 2);
  (* ...named caller and server via metadata... *)
  let process_names =
    List.filter_map
      (fun e ->
        if
          ph e = "M"
          && Option.bind (Json.member "name" e) Json.str = Some "process_name"
        then Option.bind (Json.member "args" e) (fun a -> Option.bind (Json.member "name" a) Json.str)
        else None)
      events
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " is a process") true (List.mem m process_names))
    [ "caller"; "server" ];
  (* ...at least one counter track... *)
  let counters = List.filter (fun e -> ph e = "C") events in
  Alcotest.(check bool) "has a counter track" true (counters <> []);
  (* ...and the export is deterministic. *)
  let again = Json.to_string (Obs.Trace_export.chrome_trace ~journal ~spans ()) in
  Alcotest.(check string) "byte-identical re-export" text again

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "registry snapshot diff" `Quick test_registry_snapshot_diff;
          Alcotest.test_case "deterministic rendering" `Quick
            test_snapshot_rendering_deterministic;
        ] );
      ("journal", [ Alcotest.test_case "bounded ring" `Quick test_journal_ring ]);
      ( "driver",
        [
          Alcotest.test_case "percentile caching" `Quick test_percentile_repeated_queries;
          Alcotest.test_case "percentile nearest-rank agreement" `Quick
            test_percentile_agreement;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace end-to-end" `Quick test_chrome_trace_export ] );
    ]
