(* Tests for the observability layer: JSON, histograms, the metrics
   registry and snapshots, the event journal, and the end-to-end
   Chrome-trace export of a real two-Firefly run. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Journal = Obs.Journal
module Time = Sim.Time

let at n = Time.of_ns_since_start n

(* {1 Json} *)

let test_json_emit () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Num 42.);
        ("f", Json.Num 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("a", Json.Arr [ Json.Num 0.; Json.Num (-3.) ]);
      ]
  in
  Alcotest.(check string)
    "compact deterministic rendering"
    {|{"s":"a\"b\\c\nd","i":42,"f":1.5,"b":true,"n":null,"a":[0,-3]}|} (Json.to_string j)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("nested", Json.Arr [ Json.Obj [ ("x", Json.Num 1e-3) ]; Json.Str "tab\there" ]);
        ("neg", Json.Num (-2.25));
        ("flags", Json.Arr [ Json.Bool false; Json.Null ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' -> Alcotest.(check string) "round-trips" (Json.to_string j) (Json.to_string j')

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* {1 Histogram} *)

let test_histogram_percentiles () =
  let h = Metrics.Histogram.create () in
  Alcotest.check_raises "empty percentile raises"
    (Invalid_argument "Obs.Metrics.Histogram.percentile: empty") (fun () ->
      ignore (Metrics.Histogram.percentile h 0.5));
  for i = 1 to 1000 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  let within q expected =
    let v = Metrics.Histogram.percentile h q in
    let rel = abs_float (v -. expected) /. expected in
    if rel > 0.1 then Alcotest.failf "p%.0f = %.1f, expected ~%.1f" (q *. 100.) v expected
  in
  (* Log buckets grow by ~9%, so quantiles are within one bucket. *)
  within 0.5 500.;
  within 0.9 900.;
  within 0.99 990.;
  Alcotest.(check (float 0.)) "p100 is the exact max" 1000. (Metrics.Histogram.percentile h 1.);
  Alcotest.(check (float 0.)) "max_value" 1000. (Metrics.Histogram.max_value h);
  Metrics.Histogram.observe h (-5.);
  Alcotest.(check int) "negative samples clamp to zero, still counted" 1001
    (Metrics.Histogram.count h)

(* {1 Registry and snapshots} *)

let test_registry_snapshot_diff () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Registry.counter reg ~site:"caller" ~name:"rpc.calls" in
  let h = Metrics.Registry.histogram reg ~site:"caller" ~name:"rpc.latency_us" in
  let g = ref 7. in
  Metrics.Registry.register_probe reg ~site:"server" ~name:"queue.depth" (fun () -> !g);
  Sim.Stats.Counter.add c 10;
  Metrics.Histogram.observe h 100.;
  let s0 = Metrics.Snapshot.take reg ~at:(at 0) in
  Sim.Stats.Counter.add c 5;
  Metrics.Histogram.observe h 200.;
  g := 9.;
  let s1 = Metrics.Snapshot.take reg ~at:(at 1_000_000) in
  let d = Metrics.Snapshot.diff s1 s0 in
  (match Metrics.Snapshot.find d ~site:"caller" ~name:"rpc.calls" with
  | Some (Metrics.Snapshot.Count n) -> Alcotest.(check int) "counter diff" 5 n
  | _ -> Alcotest.fail "counter row missing");
  (match Metrics.Snapshot.find d ~site:"caller" ~name:"rpc.latency_us" with
  | Some (Metrics.Snapshot.Dist { count; sum; _ }) ->
    Alcotest.(check int) "dist count diff" 1 count;
    Alcotest.(check (float 1e-9)) "dist sum diff" 200. sum
  | _ -> Alcotest.fail "histogram row missing");
  (match Metrics.Snapshot.find d ~site:"server" ~name:"queue.depth" with
  | Some (Metrics.Snapshot.Gauge v) -> Alcotest.(check (float 0.)) "gauge takes later" 9. v
  | _ -> Alcotest.fail "gauge row missing");
  (* Kind mismatch on get-or-create is an error. *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Obs.Metrics.Registry: caller/rpc.calls already bound to a different instrument kind") (fun () ->
      ignore (Metrics.Registry.histogram reg ~site:"caller" ~name:"rpc.calls"))

let test_snapshot_rendering_deterministic () =
  let build () =
    let reg = Metrics.Registry.create () in
    (* Registration order differs between the two builds; rows must not. *)
    let names = [ "b.two"; "a.one"; "c.three" ] in
    List.iter
      (fun n -> Sim.Stats.Counter.add (Metrics.Registry.counter reg ~site:"m" ~name:n) 3)
      names;
    Metrics.Snapshot.take reg ~at:(at 42)
  in
  let reg2 = Metrics.Registry.create () in
  List.iter
    (fun n -> Sim.Stats.Counter.add (Metrics.Registry.counter reg2 ~site:"m" ~name:n) 3)
    [ "c.three"; "a.one"; "b.two" ];
  let s1 = build () in
  let s2 = Metrics.Snapshot.take reg2 ~at:(at 42) in
  Alcotest.(check string) "CSV is order-independent" (Metrics.Snapshot.to_csv s1)
    (Metrics.Snapshot.to_csv s2);
  Alcotest.(check string) "table render is order-independent"
    (Report.Table.render (Metrics.Snapshot.to_table s1))
    (Report.Table.render (Metrics.Snapshot.to_table s2));
  let csv = Metrics.Snapshot.to_csv s1 in
  (match String.split_on_char '\n' csv with
  | header :: _ -> Alcotest.(check string) "csv header" "site,name,kind,value,extra" header
  | [] -> Alcotest.fail "empty csv")

(* {1 Journal} *)

let test_journal_ring () =
  let j = Journal.create ~capacity:3 () in
  Alcotest.(check int) "empty" 0 (Journal.length j);
  Journal.record j ~at:(at 1) ~site:"a" (Journal.Packet_tx { bytes = 64 });
  Journal.record j ~at:(at 2) ~site:"a" (Journal.Packet_rx { bytes = 64 });
  Journal.record j ~at:(at 3) ~site:"b" Journal.Interrupt;
  Journal.record j ~at:(at 4) ~site:"b" (Journal.Retransmit { seq = 9 });
  Journal.record j ~at:(at 5) ~site:"b" Journal.Thread_wakeup;
  Alcotest.(check int) "ring holds capacity" 3 (Journal.length j);
  Alcotest.(check int) "total counts everything" 5 (Journal.total j);
  Alcotest.(check int) "dropped counts overwrites" 2 (Journal.dropped j);
  let sites = List.map (fun e -> e.Journal.site) (Journal.entries j) in
  Alcotest.(check (list string)) "oldest dropped first" [ "b"; "b"; "b" ] sites;
  (match Journal.entries j with
  | { Journal.ev = Journal.Interrupt; at = t; _ } :: _ ->
    Alcotest.(check int) "oldest retained entry" 3 (Time.since_start_ns t)
  | _ -> Alcotest.fail "unexpected oldest entry");
  Journal.clear j;
  Alcotest.(check int) "clear empties" 0 (Journal.length j);
  Alcotest.(check int) "clear resets dropped" 0 (Journal.dropped j);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Obs.Journal.create: capacity must be >= 1") (fun () ->
      ignore (Journal.create ~capacity:0 ()))

(* {1 Driver percentile caching} *)

let test_percentile_repeated_queries () =
  let w = Workload.World.create ~idle_load:false () in
  let o = Workload.Driver.run w ~threads:2 ~calls:30 ~proc:Workload.Driver.Null () in
  let p1 = Workload.Driver.percentile o 0.9 in
  (* Repeated and interleaved queries answer from the same sorted
     array; the outcome's visible state never changes. *)
  let p2 = Workload.Driver.percentile o 0.9 in
  Alcotest.(check int) "repeated query is stable" (Time.to_ns p1) (Time.to_ns p2);
  let p50 = Workload.Driver.percentile o 0.5 in
  let p99 = Workload.Driver.percentile o 0.99 in
  let p100 = Workload.Driver.percentile o 1.0 in
  Alcotest.(check bool) "p50 <= p90" true (Time.span_compare p50 p1 <= 0);
  Alcotest.(check bool) "p90 <= p99" true (Time.span_compare p1 p99 <= 0);
  Alcotest.(check bool) "p99 <= p100" true (Time.span_compare p99 p100 <= 0);
  let sorted = Par.Once.force o.Workload.Driver.sorted_latencies in
  Alcotest.(check int) "p100 is the slowest call" 0
    (Time.span_compare p100 sorted.(Array.length sorted - 1));
  (* The original completion-order array is untouched by sorting. *)
  Alcotest.(check int) "latencies length unchanged" 30 (Array.length o.Workload.Driver.latencies)

(* An outcome carrying exactly the given latency samples; only the
   fields [percentile] reads matter. *)
let outcome_of_latencies latencies =
  let sorted = Array.copy latencies in
  Array.sort Time.span_compare sorted;
  {
    Workload.Driver.threads = 1;
    calls = Array.length latencies;
    elapsed = Time.zero_span;
    rpcs_per_sec = 0.;
    megabits_per_sec = 0.;
    caller_busy_cpus = 0.;
    server_busy_cpus = 0.;
    retransmissions = 0;
    mean_latency = Time.zero_span;
    latencies;
    sorted_latencies = Par.Once.create (fun () -> sorted);
  }

(* Property: over shared samples, Driver.percentile implements the
   nearest-rank definition exactly — the smallest sample whose
   cumulative count reaches q*n — and Obs.Metrics.Histogram.percentile
   agrees with it up to its bucket resolution. *)
let test_percentile_agreement () =
  let rng = Sim.Rng.create ~seed:911 in
  for case = 1 to 40 do
    let n = 1 + Sim.Rng.int rng 400 in
    (* >= 1 us so no sample folds into the histogram's bucket 0. *)
    let samples_us =
      Array.init n (fun _ -> 1. +. (float_of_int (Sim.Rng.int rng 1_000_000) /. 100.))
    in
    let o = outcome_of_latencies (Array.map Time.us_f samples_us) in
    let h = Metrics.Histogram.create () in
    Array.iter (Metrics.Histogram.observe h) samples_us;
    let sorted = Array.copy samples_us in
    Array.sort compare sorted;
    List.iter
      (fun q ->
        (* Reference: smallest rank r (1-based) with r >= q*n. *)
        let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
        let expected = sorted.(rank - 1) in
        let got = Time.to_us (Workload.Driver.percentile o q) in
        if abs_float (got -. expected) > 1e-6 then
          Alcotest.failf "case %d n=%d q=%.3f: Driver.percentile %.3f, nearest-rank %.3f" case
            n q got expected;
        let hist = Metrics.Histogram.percentile h q in
        (* Log buckets grow by 2^(1/8) with a geometric-midpoint
           representative: within ~4.5% of the true quantile (exact at
           the clamped extremes). *)
        let ratio = hist /. expected in
        if ratio < 0.95 || ratio > 1.055 then
          Alcotest.failf "case %d n=%d q=%.3f: histogram %.3f vs exact %.3f (ratio %.4f)" case
            n q hist expected ratio)
      [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]
  done

(* Property: JSON string escaping round-trips arbitrary byte strings —
   quotes, backslashes, control characters, high bytes — through
   emit + parse unchanged. *)
let test_json_string_escaping_roundtrip () =
  let rng = Sim.Rng.create ~seed:4177 in
  let cases =
    [ ""; "\""; "\\"; "\\\""; "\n\r\t"; "\000\001\031"; "a\127b"; String.make 3 '\255' ]
    @ List.init 60 (fun _ ->
          String.init (Sim.Rng.int rng 40) (fun _ -> Char.chr (Sim.Rng.int rng 256)))
  in
  List.iter
    (fun s ->
      match Json.parse (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') ->
        if not (String.equal s s') then
          Alcotest.failf "escaping mangled %S into %S" s s'
      | Ok _ -> Alcotest.failf "string %S parsed back as a non-string" s
      | Error e -> Alcotest.failf "emitted string %S does not parse: %s" s e)
    cases

(* {1 Causal span trees (Obs.Span)} *)

let span ?(site = "m") ?(track = "cpu0") ?(kind = Sim.Trace.Service) ?(call = 0) ~label a b =
  {
    Sim.Trace.cat = "test";
    label;
    site;
    track;
    start_at = at a;
    stop_at = at b;
    kind;
    call;
  }

let test_span_grouping_and_edges_synthetic () =
  let spans =
    [
      span ~label:"outer" 0 100;
      span ~label:"inner" 10 40;
      span ~site:"n" ~track:"cpu1" ~label:"remote" 120 180;
      span ~call:1 ~label:"other call" 50 60;
      span ~call:(-1) ~label:"background" 0 500;
    ]
  in
  let calls = Obs.Span.of_spans spans in
  Alcotest.(check (list int)) "calls grouped by id, ascending" [ 0; 1 ]
    (List.map (fun c -> c.Obs.Span.id) calls);
  let c0 = List.hd calls in
  Alcotest.(check int) "call 0 has its three spans" 3 (List.length c0.Obs.Span.spans);
  (* The forest nests inner under outer on one lane; the remote span is
     a separate root. *)
  let root_labels =
    List.map (fun n -> n.Obs.Span.span.Sim.Trace.label) c0.Obs.Span.roots
  in
  Alcotest.(check (list string)) "containment roots" [ "outer"; "remote" ] root_labels;
  (match c0.Obs.Span.roots with
  | { Obs.Span.children = [ child ]; _ } :: _ ->
    Alcotest.(check string) "inner nests under outer" "inner" child.Obs.Span.span.Sim.Trace.label
  | _ -> Alcotest.fail "expected outer to contain inner");
  (* One cross-lane edge: the last caller-lane span to the remote one. *)
  (match c0.Obs.Span.edges with
  | [ e ] ->
    Alcotest.(check string) "edge source" "inner" e.Obs.Span.e_from.Sim.Trace.label;
    Alcotest.(check string) "edge target" "remote" e.Obs.Span.e_to.Sim.Trace.label
  | es -> Alcotest.failf "expected 1 edge, got %d" (List.length es));
  Alcotest.(check int) "cross-machine edge subset" 1
    (List.length (Obs.Span.cross_machine_edges c0));
  (match (Obs.Span.check_tree c0, Obs.Span.check_edges c0) with
  | Ok (), Ok () -> ()
  | Error m, _ | _, Error m -> Alcotest.failf "well-formed call rejected: %s" m);
  Alcotest.(check int) "background span is unattributed" 1
    (List.length (Obs.Span.unattributed spans))

let test_span_balance_detects_partial_overlap () =
  (* Two spans on one lane that interleave like misnested brackets:
     open A, open B, close A, close B.  The balance check must flag it. *)
  let ill = [ span ~label:"A" 0 50; span ~label:"B" 30 80 ] in
  match Obs.Span.of_spans ill with
  | [ c ] -> (
    match Obs.Span.check_tree c with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "partial overlap on one lane passed the balance check")
  | _ -> Alcotest.fail "expected one call"

(* The real thing: trace a breakdown window and require every call's
   tree and edge set to be well-formed, with cross-machine edges
   stitching caller and server. *)
let test_span_properties_on_real_trace () =
  let w = Workload.World.create ~idle_load:false () in
  let windows = Workload.Driver.run_breakdown w ~calls:3 ~proc:Workload.Driver.Null () in
  Alcotest.(check int) "three windows" 3 (List.length windows);
  let spans = Sim.Trace.spans (Sim.Engine.trace w.Workload.World.eng) in
  let calls = Obs.Span.of_spans spans in
  Alcotest.(check (list int)) "call ids 0..2" [ 0; 1; 2 ]
    (List.map (fun c -> c.Obs.Span.id) calls);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "call %d has spans" c.Obs.Span.id)
        true
        (List.length c.Obs.Span.spans > 10);
      List.iter
        (fun (s : Sim.Trace.span) ->
          Alcotest.(check int) "span carries its call id" c.Obs.Span.id s.Sim.Trace.call)
        c.Obs.Span.spans;
      (match Obs.Span.check_tree c with
      | Ok () -> ()
      | Error m -> Alcotest.failf "call %d tree ill-formed: %s" c.Obs.Span.id m);
      (match Obs.Span.check_edges c with
      | Ok () -> ()
      | Error m -> Alcotest.failf "call %d edges ill-formed: %s" c.Obs.Span.id m);
      (* An RPC necessarily hops machines: caller -> server -> caller. *)
      Alcotest.(check bool)
        (Printf.sprintf "call %d crosses machines" c.Obs.Span.id)
        true
        (List.length (Obs.Span.cross_machine_edges c) >= 2))
    calls

(* {1 Attribution and conservation (Obs.Attrib)} *)

let breakdown_report ~proc ~calls =
  let w = Workload.World.create ~idle_load:false () in
  let windows = Workload.Driver.run_breakdown w ~calls ~proc () in
  let spans = Sim.Trace.spans (Sim.Engine.trace w.Workload.World.eng) in
  let windows =
    List.map (fun (i, t0, t1) -> { Obs.Attrib.w_call = i; w_start = t0; w_stop = t1 }) windows
  in
  Obs.Attrib.attribute ~spans ~windows ()

let test_attrib_conservation_null () =
  let r = breakdown_report ~proc:Workload.Driver.Null ~calls:4 in
  Alcotest.(check int) "one account per call" 4 (List.length r.Obs.Attrib.r_calls);
  List.iter
    (fun (c : Obs.Attrib.call_account) ->
      (* The sweep partitions the window: the identity holds exactly,
         not approximately. *)
      let sum = c.ca_service_us +. c.ca_queue_us +. c.ca_unattributed_us in
      if abs_float (sum -. c.ca_elapsed_us) > 1e-6 then
        Alcotest.failf "call %d: %.6f attributed of %.6f elapsed" c.ca_call sum c.ca_elapsed_us;
      if c.ca_unattributed_us > 0.01 *. c.ca_elapsed_us then
        Alcotest.failf "call %d: residual %.1f us exceeds 1%% of %.1f us" c.ca_call
          c.ca_unattributed_us c.ca_elapsed_us)
    r.Obs.Attrib.r_calls;
  Alcotest.(check bool) "conservation gate passes" true (Obs.Attrib.conservation_ok r);
  match Obs.Attrib.check r ~scenario:Obs.Attrib.Null_call with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "check failed: %s" (String.concat "; " msgs)

let test_attrib_drift_and_check_maxarg () =
  let r = breakdown_report ~proc:Workload.Driver.Max_arg ~calls:2 in
  (match Obs.Attrib.check r ~scenario:Obs.Attrib.Max_arg_call with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "maxarg check failed: %s" (String.concat "; " msgs));
  (* The calibrated expectations honour packet sizes: MaxArg ships one
     1514-byte call packet and a 74-byte result. *)
  Alcotest.(check (option (float 1e-9)))
    "wire expectation large+small" (Some 1290.)
    (Obs.Attrib.expected_us Obs.Attrib.Max_arg_call "Transmission time on Ethernet");
  Alcotest.(check (option (float 1e-9)))
    "checksum runs on both sides of both packets" (Some 970.)
    (Obs.Attrib.expected_us Obs.Attrib.Max_arg_call "Calculate UDP checksum");
  Alcotest.(check (option (float 1e-9)))
    "null is two small packets" (Some 440.)
    (Obs.Attrib.expected_us Obs.Attrib.Null_call "Wakeup RPC thread");
  let drift = Obs.Attrib.drift r ~scenario:Obs.Attrib.Max_arg_call in
  Alcotest.(check bool) "every calibrated stage measured" true (List.length drift >= 12);
  (* A report missing a calibrated stage must fail the gate. *)
  let broken =
    {
      r with
      Obs.Attrib.r_stages =
        List.filter
          (fun (s : Obs.Attrib.stage) ->
            not (String.equal s.st_label "Wakeup RPC thread"))
          r.Obs.Attrib.r_stages;
    }
  in
  match Obs.Attrib.check broken ~scenario:Obs.Attrib.Max_arg_call with
  | Ok () -> Alcotest.fail "check accepted a report missing a calibrated stage"
  | Error _ -> ()

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  n = 0 || go 0

let test_attrib_rendering () =
  let r = breakdown_report ~proc:Workload.Driver.Null ~calls:2 in
  let table = Report.Table.render (Obs.Attrib.table ~percentile:0.95 r) in
  List.iter
    (fun needle ->
      if not (contains ~needle table) then Alcotest.failf "table missing %S" needle)
    [ "Wakeup RPC thread"; "UNATTRIBUTED RESIDUAL"; "p95"; "END-TO-END" ];
  let csv = Obs.Attrib.to_csv r in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "stage,kind,column,caller_us,server_us,wire_us,mean_us,p50_us,p99_us" header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check bool) "csv carries the totals" true (contains ~needle:"TOTAL end-to-end" csv)

(* {1 End-to-end Chrome trace export} *)

let test_chrome_trace_export () =
  let w = Workload.World.create ~idle_load:false () in
  let latencies = Workload.Driver.run_traced w ~calls:1 ~proc:Workload.Driver.Null () in
  Alcotest.(check int) "one timed call" 1 (List.length latencies);
  let spans = Sim.Trace.spans (Sim.Engine.trace w.Workload.World.eng) in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  let journal = w.Workload.World.obs.Obs.Ctx.journal in
  Alcotest.(check bool) "journal has events" true (Journal.length journal > 0);
  let json = Obs.Trace_export.chrome_trace ~journal ~spans () in
  let text = Json.to_string json in
  (* The export must parse back as JSON... *)
  let parsed =
    match Json.parse text with
    | Ok j -> j
    | Error e -> Alcotest.failf "export is not valid JSON: %s" e
  in
  let events =
    match Json.member "traceEvents" parsed with
    | Some a -> Json.items a
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let ph e = Option.value ~default:"" (Option.bind (Json.member "ph" e) Json.str) in
  (* ...with duration spans from at least two machines (pids)... *)
  let span_pids =
    List.filter_map
      (fun e -> if ph e = "X" then Option.bind (Json.member "pid" e) Json.num else None)
      events
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "spans from >= 2 machines" true (List.length span_pids >= 2);
  (* ...named caller and server via metadata... *)
  let process_names =
    List.filter_map
      (fun e ->
        if
          ph e = "M"
          && Option.bind (Json.member "name" e) Json.str = Some "process_name"
        then Option.bind (Json.member "args" e) (fun a -> Option.bind (Json.member "name" a) Json.str)
        else None)
      events
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " is a process") true (List.mem m process_names))
    [ "caller"; "server" ];
  (* ...at least one counter track... *)
  let counters = List.filter (fun e -> ph e = "C") events in
  Alcotest.(check bool) "has a counter track" true (counters <> []);
  (* ...carrying the journal's completeness metadata... *)
  (match Json.member "metadata" parsed with
  | Some meta ->
    let field name =
      match Option.bind (Json.member name meta) Json.num with
      | Some v -> int_of_float v
      | None -> Alcotest.failf "metadata field %s missing" name
    in
    Alcotest.(check int) "metadata event count matches the journal" (Journal.length journal)
      (field "journal_events");
    Alcotest.(check int) "no drops in a one-call window" 0 (field "journal_dropped");
    Alcotest.(check int) "total = retained + dropped" (Journal.total journal)
      (field "journal_events" + field "journal_dropped")
  | None -> Alcotest.fail "no completeness metadata object");
  (* ...and the export is deterministic. *)
  let again = Json.to_string (Obs.Trace_export.chrome_trace ~journal ~spans ()) in
  Alcotest.(check string) "byte-identical re-export" text again

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "string escaping round-trips" `Quick
            test_json_string_escaping_roundtrip;
        ] );
      ( "span",
        [
          Alcotest.test_case "grouping, nesting and edges" `Quick
            test_span_grouping_and_edges_synthetic;
          Alcotest.test_case "balance flags partial overlap" `Quick
            test_span_balance_detects_partial_overlap;
          Alcotest.test_case "well-formed on a real trace" `Quick
            test_span_properties_on_real_trace;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "conservation on Null()" `Quick test_attrib_conservation_null;
          Alcotest.test_case "drift gate on MaxArg(b)" `Quick test_attrib_drift_and_check_maxarg;
          Alcotest.test_case "table and CSV rendering" `Quick test_attrib_rendering;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "registry snapshot diff" `Quick test_registry_snapshot_diff;
          Alcotest.test_case "deterministic rendering" `Quick
            test_snapshot_rendering_deterministic;
        ] );
      ("journal", [ Alcotest.test_case "bounded ring" `Quick test_journal_ring ]);
      ( "driver",
        [
          Alcotest.test_case "percentile caching" `Quick test_percentile_repeated_queries;
          Alcotest.test_case "percentile nearest-rank agreement" `Quick
            test_percentile_agreement;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace end-to-end" `Quick test_chrome_trace_export ] );
    ]
