(* The packet exchange protocol under a misbehaving network.

     dune exec examples/lossy_network.exe

   The paper's RPC "copes with lost packets" (§7) and keeps software
   UDP checksums because the DEQNA "occasionally makes errors after
   checking the Ethernet CRC" (§4.2.4).  This example injects both
   faults and shows every call still completing correctly — and what
   the same corruption does when checksums are turned off. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module World = Workload.World
module Driver = Workload.Driver

let faulty_injector rng =
  Some
    (fun (_ : Bytes.t) ->
      let r = Sim.Rng.float rng 1.0 in
      if r < 0.10 then Hw.Ether_link.Drop
      else if r < 0.15 then Hw.Ether_link.Corrupt_payload
      else Hw.Ether_link.Deliver)

let run ~checksums =
  let config = { Hw.Config.default with Hw.Config.udp_checksums = checksums } in
  let w = World.create ~caller_config:config ~server_config:config ~seed:23 () in
  Hw.Ether_link.set_fault_injector w.World.link (faulty_injector (Engine.rng w.World.eng));
  let options = { Rpc.Runtime.retransmit_after = Time.ms 25; max_retries = 200; backoff = None } in
  let binding = World.test_binding w ~options () in
  let gate = Sim.Gate.create w.World.eng in
  let ok = ref 0 and corrupted = ref 0 in
  let calls = 200 in
  Machine.spawn_thread w.World.caller ~name:"client" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.World.caller) (fun ctx ->
          let client = Runtime.new_client w.World.caller_rt in
          for _ = 1 to calls do
            (* MaxArg carries 1440 patterned bytes; the server checks
               them and raises on corruption. *)
            match
              Runtime.call binding client ctx ~proc_idx:Workload.Test_interface.max_arg_idx
                ~args:[ Marshal.V_bytes (Workload.Test_interface.pattern 1440) ]
            with
            | [] -> incr ok
            | _ -> ()
            | exception Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Call_failed _) -> incr corrupted
          done);
      Sim.Gate.open_ gate);
  World.run_until_quiet w gate;
  Printf.printf "  %-22s %4d/%d calls correct, %3d rejected by server, %4d retransmissions, %3d checksum rejects\n"
    (if checksums then "with UDP checksums:" else "without checksums:")
    !ok calls !corrupted
    (Runtime.retransmissions w.World.caller_rt)
    (Rpc.Node.checksum_rejects w.World.caller_node
    + Rpc.Node.checksum_rejects w.World.server_node)

let () =
  print_endline "200 MaxArg(1440 patterned bytes) calls over a network dropping 10%";
  print_endline "of frames and corrupting a payload byte in another 5% (post-CRC,";
  print_endline "as the DEQNA did):";
  run ~checksums:true;
  run ~checksums:false;
  print_endline "\nWith checksums every corrupted packet is caught and retransmitted;";
  print_endline "without them (the 4.2.4 'improvement') corrupted arguments reach the";
  print_endline "server, which here detects the bad pattern and fails the call."
