# Continuous-integration entry point: `make check` is what a CI job
# runs — a clean build plus the full tier-1 test suite, including the
# bounded-seed simulation-testing tier (test/check).
#
# Set JOBS=N to fan simulation sweeps and benchmark table regeneration
# out over N worker domains (default: the binary's own default, the
# machine's recommended domain count; JOBS=1 forces the exact serial
# path with byte-identical output).

JOBS ?=
JOBS_FLAG = $(if $(JOBS),--jobs $(JOBS),)

.PHONY: all build test check sim-check sim-matrix fuzz fleet bench bench-json bench-guard socket-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full CI gate.
check: build test

# Longer fault-plan exploration than the bounded tier-1 run; prints a
# seed and a minimal fault plan on any invariant violation.
sim-check: build
	dune exec bin/firefly.exe -- check --seeds 100 $(JOBS_FLAG)

# The CI sweep: seeded fault plans against every cell of the
# configuration matrix, dumping shrunk plans + traces on failure.
sim-matrix: build
	dune exec bin/firefly.exe -- check --matrix --seeds 5 --out-dir check-failures $(JOBS_FLAG)

# Deterministic wire-format fuzz: the canary self-test first (plants a
# decoder bug and requires the fuzzer to find it), then a fixed-seed
# run over mutated frames.  Minimized reproducers land in fuzz-failures/
# on any property violation.
fuzz: build
	dune exec bin/firefly.exe -- fuzz --canary --seed 1 --iters 5000
	dune exec bin/firefly.exe -- fuzz --seed 1 --iters 50000 --corpus-dir fuzz-failures

# Fleet smoke: a 4-node 200-call incast through the switched topology,
# with the scenario invariants checked (conservation, no leaked sinks,
# no stuck callers) and a Perfetto trace of the run written out.
fleet: build
	dune exec bin/firefly.exe -- fleet --nodes 4 --clients 16 --calls 200 \
	  --scenario incast --check --trace --out fleet-incast.trace.json

# Real loopback-UDP smoke: null and maxarg over 127.0.0.1 with the
# simulator's exact frame bytes, printed as measured-vs-calibrated
# cross-validation.  Exits 0 with a message where sockets are
# unavailable.
socket-smoke: build
	dune exec bin/firefly.exe -- call --transport socket --calls 200

# Regenerate every table of the paper at full call counts, plus the
# Bechamel kernel microbenchmarks.
bench: build
	dune exec bench/main.exe -- --microbench $(JOBS_FLAG)

# Refresh the checked-in microbenchmark baseline (quick tables so the
# run stays short; the kernel numbers are measured the same either way).
# BENCH_10.json superseded BENCH_9.json when the engine hot loop went
# closure-free (flat events, calendar queue, retransmit timer wheel).
bench-json: build
	dune exec bench/main.exe -- --quick --json BENCH_10.json $(JOBS_FLAG)

# Performance-regression guard: re-measure the engine and fleet probes
# and fail on >20% throughput loss — or any alloc-bytes-per-event
# increase — against the checked-in baseline.
bench-guard: build
	dune exec bench/main.exe -- --quick --only tables2-5 --baseline BENCH_10.json $(JOBS_FLAG)

clean:
	dune clean
