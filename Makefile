# Continuous-integration entry point: `make check` is what a CI job
# runs — a clean build plus the full tier-1 test suite, including the
# bounded-seed simulation-testing tier (test/check).

.PHONY: all build test check sim-check sim-matrix clean

all: build

build:
	dune build

test:
	dune runtest

# Full CI gate.
check: build test

# Longer fault-plan exploration than the bounded tier-1 run; prints a
# seed and a minimal fault plan on any invariant violation.
sim-check: build
	dune exec bin/firefly.exe -- check --seeds 100

# The CI sweep: seeded fault plans against every cell of the
# configuration matrix, dumping shrunk plans + traces on failure.
sim-matrix: build
	dune exec bin/firefly.exe -- check --matrix --seeds 5 --out-dir check-failures

clean:
	dune clean
