let test_layout () =
  let b = Bytes.of_string "Hello, world!\x00\x01\x02three more" in
  let dump = Wire.Hexdump.to_string b in
  let lines = String.split_on_char '\n' (String.trim dump) in
  Alcotest.(check int) "two lines for 26 bytes" 2 (List.length lines);
  let first = List.hd lines in
  Alcotest.(check bool) "offset prefix" true (String.length first > 8 && String.sub first 0 8 = "00000000");
  Alcotest.(check bool) "hex present" true
    (let has_48 = ref false in
     String.iteri (fun i c -> if c = '4' && i + 1 < String.length first && first.[i + 1] = '8' then has_48 := true) first;
     !has_48);
  Alcotest.(check bool) "ascii gutter" true (String.contains first '|');
  (* The \x00\x01\x02 run lands at the end of the first line's gutter. *)
  Alcotest.(check bool) "non-printable dotted" true
    (let re_has s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     re_has first "...|")

let test_window () =
  let b = Bytes.of_string "0123456789" in
  let dump = Wire.Hexdump.to_string ~pos:2 ~len:3 b in
  Alcotest.(check bool) "windowed content" true
    (let re_has s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     re_has dump "|234|")

let test_empty () = Alcotest.(check string) "empty dump" "" (Wire.Hexdump.to_string Bytes.empty)

let suite =
  [
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "window" `Quick test_window;
    Alcotest.test_case "empty" `Quick test_empty;
  ]
