test/wire/test_bytebuf.ml: Alcotest Bytes QCheck QCheck_alcotest Wire
