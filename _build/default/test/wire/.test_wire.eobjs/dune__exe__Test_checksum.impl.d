test/wire/test_checksum.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Wire
