test/wire/test_wire.ml: Alcotest Test_bytebuf Test_checksum Test_hexdump
