test/wire/test_wire.mli:
