test/wire/test_hexdump.ml: Alcotest Bytes List String Wire
