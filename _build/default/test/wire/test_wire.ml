let () =
  Alcotest.run "wire"
    [
      ("bytebuf", Test_bytebuf.suite);
      ("checksum", Test_checksum.suite);
      ("hexdump", Test_hexdump.suite);
    ]
