test/hw/test_link_deqna.ml: Alcotest Bytes Hw List Net Printf Sim Wire
