test/hw/test_hw.mli:
