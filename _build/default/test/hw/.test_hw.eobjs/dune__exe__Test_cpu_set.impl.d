test/hw/test_cpu_set.ml: Alcotest Hw List Sim
