test/hw/test_timing.ml: Alcotest Hw Sim
