test/hw/test_hw.ml: Alcotest Test_cpu_set Test_link_deqna Test_timing
