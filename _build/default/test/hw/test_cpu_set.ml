module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set

let us = Time.us
let now_ns eng = Time.since_start_ns (Engine.now eng)

let test_any_prefers_high_index () =
  let eng = Engine.create () in
  let set = Cpu_set.create eng ~site:"m" ~cpus:3 in
  let picked = ref [] in
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu set (fun a ->
          picked := Cpu_set.cpu_index a :: !picked;
          Cpu_set.with_cpu set (fun b ->
              picked := Cpu_set.cpu_index b :: !picked;
              Cpu_set.with_cpu set (fun c ->
                  picked := Cpu_set.cpu_index c :: !picked;
                  Cpu_set.charge c ~cat:"t" ~label:"x" (us 1)))));
  Engine.run eng;
  Alcotest.(check (list int)) "high indexes first, CPU 0 last" [ 2; 1; 0 ] (List.rev !picked)

let test_cpu0_affinity_waits () =
  let eng = Engine.create () in
  let set = Cpu_set.create eng ~site:"m" ~cpus:2 in
  let events = ref [] in
  (* A thread pinned to CPU 0 must wait for the CPU-0 holder even though
     CPU 1 is free. *)
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 set (fun ctx ->
          events := ("holder", Cpu_set.cpu_index ctx) :: !events;
          Cpu_set.charge ctx ~cat:"t" ~label:"hold" (us 100)));
  Engine.spawn eng ~after:(us 10) (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 set (fun ctx ->
          events := ("pinned@" ^ string_of_int (now_ns eng / 1000), Cpu_set.cpu_index ctx) :: !events));
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "pinned thread waited for CPU 0"
    [ ("holder", 0); ("pinned@100", 0) ]
    (List.rev !events)

let test_interrupt_priority_on_cpu0 () =
  let eng = Engine.create () in
  let set = Cpu_set.create eng ~site:"m" ~cpus:1 in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu set (fun ctx -> Cpu_set.charge ctx ~cat:"t" ~label:"busy" (us 50)));
  Engine.spawn eng ~after:(us 10) (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 set (fun _ -> order := "thread" :: !order));
  Engine.spawn eng ~after:(us 20) (fun () ->
      Cpu_set.with_cpu ~affinity:Cpu_set.Cpu0 ~priority:Cpu_set.Interrupt set (fun _ ->
          order := "interrupt" :: !order));
  Engine.run eng;
  Alcotest.(check (list string))
    "interrupt served before queued thread" [ "interrupt"; "thread" ] (List.rev !order)

let test_uniprocessor_serializes () =
  let eng = Engine.create () in
  let set = Cpu_set.create eng ~site:"m" ~cpus:1 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () ->
        Cpu_set.with_cpu set (fun ctx -> Cpu_set.charge ctx ~cat:"t" ~label:"work" (us 10)))
  done;
  Engine.run eng;
  Alcotest.(check int) "serialized on one CPU" 30_000 (now_ns eng)

let test_yield_cpu () =
  let eng = Engine.create () in
  let set = Cpu_set.create eng ~site:"m" ~cpus:1 in
  let cv = Sim.Condvar.create eng in
  let got_cpu_while_blocked = ref false in
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu set (fun ctx ->
          Cpu_set.charge ctx ~cat:"t" ~label:"pre" (us 5);
          Cpu_set.yield_cpu ctx (fun () -> Sim.Condvar.await cv);
          Cpu_set.charge ctx ~cat:"t" ~label:"post" (us 5)));
  Engine.spawn eng ~after:(us 10) (fun () ->
      (* The single CPU must be free while the first thread waits. *)
      Cpu_set.with_cpu set (fun ctx ->
          got_cpu_while_blocked := true;
          Cpu_set.charge ctx ~cat:"t" ~label:"other" (us 5));
      ignore (Sim.Condvar.signal cv));
  Engine.run eng;
  Alcotest.(check bool) "cpu released during wait" true !got_cpu_while_blocked;
  Alcotest.(check int) "all work completed" 0 (Cpu_set.busy_now set)

let test_charge_traces () =
  let eng = Engine.create () in
  Sim.Trace.set_enabled (Engine.trace eng) true;
  let set = Cpu_set.create eng ~site:"caller" ~cpus:2 in
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu set (fun ctx ->
          Cpu_set.charge ctx ~cat:"send+receive" ~label:"Calculate UDP checksum" (us 45);
          Cpu_set.charge ctx ~cat:"send+receive" ~label:"Calculate UDP checksum" Time.zero_span));
  Engine.run eng;
  let tr = Engine.trace eng in
  Alcotest.(check int) "zero-length charges skipped" 1 (List.length (Sim.Trace.spans tr));
  Alcotest.(check int) "span duration" 45_000
    (Time.to_ns (Sim.Trace.total tr ~label:"Calculate UDP checksum" ~site:"caller"))

let test_utilization () =
  let eng = Engine.create () in
  let set = Cpu_set.create eng ~site:"m" ~cpus:2 in
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu set (fun ctx -> Cpu_set.charge ctx ~cat:"t" ~label:"a" (us 100)));
  Engine.spawn eng (fun () ->
      Cpu_set.with_cpu set (fun ctx -> Cpu_set.charge ctx ~cat:"t" ~label:"b" (us 50)));
  Engine.run eng;
  let upto = Engine.now eng in
  Alcotest.(check (float 0.01)) "average busy CPUs" 1.5 (Cpu_set.average_busy set ~upto);
  Alcotest.(check (float 0.01)) "utilization" 0.75 (Cpu_set.utilization set ~upto)

let suite =
  [
    Alcotest.test_case "any prefers high index" `Quick test_any_prefers_high_index;
    Alcotest.test_case "cpu0 affinity waits" `Quick test_cpu0_affinity_waits;
    Alcotest.test_case "interrupt priority" `Quick test_interrupt_priority_on_cpu0;
    Alcotest.test_case "uniprocessor serializes" `Quick test_uniprocessor_serializes;
    Alcotest.test_case "yield_cpu releases" `Quick test_yield_cpu;
    Alcotest.test_case "charge records trace" `Quick test_charge_traces;
    Alcotest.test_case "utilization" `Quick test_utilization;
  ]
