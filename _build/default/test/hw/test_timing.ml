module Config = Hw.Config
module Timing = Hw.Timing
module Time = Sim.Time

let us_of = Time.to_us
let t0 = Timing.create Config.default
let check_us name expected span = Alcotest.(check (float 1.0)) name expected (us_of span)

(* Every fitted curve must reproduce the paper's two measured points. *)
let test_table6_calibration_points () =
  check_us "checksum @74" 45. (Timing.udp_checksum t0 ~bytes:74);
  check_us "checksum @1514" 440. (Timing.udp_checksum t0 ~bytes:1514);
  check_us "qbus tx @74" 70. (Timing.qbus_transmit t0 ~bytes:74);
  check_us "qbus tx @1514" 815. (Timing.qbus_transmit t0 ~bytes:1514);
  check_us "qbus rx @74" 80. (Timing.qbus_receive t0 ~bytes:74);
  check_us "qbus rx @1514" 836. (Timing.qbus_receive t0 ~bytes:1514);
  check_us "wire @74" 59.2 (Timing.wire_time t0 ~bytes:74);
  Alcotest.(check (float 25.)) "wire @1514 near paper's 1230" 1230.
    (us_of (Timing.wire_time t0 ~bytes:1514));
  check_us "udp header" 59. (Timing.finish_udp_header t0);
  check_us "trap" 37. (Timing.trap_to_nub t0);
  check_us "queue" 39. (Timing.queue_packet t0);
  check_us "ipi latency" 10. (Timing.ipi_latency t0);
  check_us "ipi handler" 76. (Timing.ipi_handler t0);
  check_us "activate" 22. (Timing.activate_controller t0);
  check_us "io interrupt" 14. (Timing.io_interrupt t0);
  check_us "demux" 177. (Timing.rx_demux t0);
  check_us "wakeup" 220. (Timing.wakeup t0)

let test_send_receive_totals () =
  (* Table VI totals: 954 us for a 74-byte packet, 4414 for 1514. *)
  let total bytes =
    Time.span_sum
      [
        Timing.finish_udp_header t0;
        Timing.udp_checksum t0 ~bytes;
        Timing.trap_to_nub t0;
        Timing.queue_packet t0;
        Timing.ipi_latency t0;
        Timing.ipi_handler t0;
        Timing.activate_controller t0;
        Timing.qbus_transmit t0 ~bytes;
        Timing.wire_time t0 ~bytes;
        Timing.qbus_receive t0 ~bytes;
        Timing.io_interrupt t0;
        Timing.rx_demux t0;
        Timing.udp_checksum t0 ~bytes;
        Timing.wakeup t0;
      ]
  in
  Alcotest.(check (float 10.)) "74-byte send+receive" 954. (us_of (total 74));
  Alcotest.(check (float 40.)) "1514-byte send+receive" 4414. (us_of (total 1514))

let test_table7_total () =
  let total =
    Time.span_sum
      [
        Timing.caller_loop t0;
        Timing.calling_stub t0;
        Timing.starter t0;
        Timing.transporter_send t0;
        Timing.receiver_recv t0;
        Timing.server_stub t0;
        Time.us 10 (* Null body *);
        Timing.receiver_send t0;
        Timing.transporter_recv t0;
        Timing.ender t0;
      ]
  in
  check_us "Table VII total" 606. total

let test_marshalling_calibration () =
  check_us "fixed array @4" 20. (Timing.marshal_fixed_array t0 ~bytes:4);
  check_us "fixed array @400" 140. (Timing.marshal_fixed_array t0 ~bytes:400);
  check_us "var array @1" 115. (Timing.marshal_var_array t0 ~bytes:1);
  check_us "var array @1440" 550. (Timing.marshal_var_array t0 ~bytes:1440);
  check_us "text NIL" 89. (Timing.marshal_text_nil t0);
  Alcotest.(check (float 3.)) "text @1 total" 378.
    (us_of
       (Time.span_add (Timing.marshal_text_caller t0 ~bytes:1) (Timing.marshal_text_server t0 ~bytes:1)));
  Alcotest.(check (float 5.)) "text @128 total" 659.
    (us_of
       (Time.span_add
          (Timing.marshal_text_caller t0 ~bytes:128)
          (Timing.marshal_text_server t0 ~bytes:128)));
  check_us "int caller+server" 8.
    (Time.span_add (Timing.marshal_int_caller t0) (Timing.marshal_int_server t0))

let test_local_rpc_calibration () =
  (* Local Null(): stubs + local runtime + 2 wakeups + 2 dispatches = 937. *)
  let total =
    Time.span_sum
      [
        Timing.caller_loop t0;
        Timing.calling_stub t0;
        Timing.server_stub t0;
        Time.us 10;
        Timing.local_starter t0;
        Timing.local_transporter_send t0;
        Timing.local_receiver t0;
        Timing.local_receiver_send t0;
        Timing.local_transporter_recv t0;
        Timing.local_ender t0;
        Timing.wakeup t0;
        Timing.wakeup t0;
        Timing.dispatch t0;
        Timing.dispatch t0;
      ]
  in
  check_us "local Null total" 937. total

let test_cpu_speedup_scales_software_only () =
  let fast = Timing.create { Config.default with cpus = 5; cpu_speedup = 3.0 } in
  check_us "software divides by 3" (177. /. 3.) (Timing.rx_demux fast);
  check_us "wire unchanged" 59.2 (Timing.wire_time fast ~bytes:74);
  check_us "qbus unchanged" 70. (Timing.qbus_transmit fast ~bytes:74)

let test_network_speedup () =
  let fast = Timing.create { Config.default with ethernet_mbps = 100. } in
  Alcotest.(check (float 2.)) "wire 10x faster" 121.
    (us_of (Timing.wire_time fast ~bytes:1514));
  check_us "checksum unaffected" 440. (Timing.udp_checksum fast ~bytes:1514)

let test_improvement_flags () =
  let no_cks = Timing.create { Config.default with udp_checksums = false } in
  check_us "checksums disabled" 0. (Timing.udp_checksum no_cks ~bytes:1514);
  let modula = Timing.create { Config.default with interrupt_code = Config.Final_modula2 } in
  check_us "final modula2 interrupt" 547. (Timing.rx_demux modula);
  let orig = Timing.create { Config.default with interrupt_code = Config.Original_modula2 } in
  check_us "original modula2 interrupt" 758. (Timing.rx_demux orig);
  let hand = Timing.create { Config.default with hand_runtime = true } in
  check_us "hand runtime starter" (128. /. 3.) (Timing.starter hand);
  check_us "hand runtime stub unchanged" 90. (Timing.calling_stub hand);
  let redesigned = Timing.create { Config.default with redesigned_header = true } in
  check_us "redesigned header demux" 107. (Timing.rx_demux redesigned);
  check_us "redesigned header sender" 29. (Timing.finish_udp_header redesigned);
  let busy = Timing.create { Config.default with busy_wait = true } in
  check_us "busy wait wakeup" 10. (Timing.wakeup busy)

let test_exerciser_stubs () =
  let ex = Timing.create { Config.default with hand_stubs = true } in
  check_us "hand calling stub" 10. (Timing.calling_stub ex);
  check_us "no marshalling" 0. (Timing.marshal_var_array ex ~bytes:1440);
  (* The Exerciser saves 140 us on Null: (90-10) + (68-8). *)
  let saving =
    Time.span_add
      (Time.span_sub (Timing.calling_stub t0) (Timing.calling_stub ex))
      (Time.span_sub (Timing.server_stub t0) (Timing.server_stub ex))
  in
  check_us "exerciser Null saving" 140. saving

let test_frame_geometry () =
  Alcotest.(check int) "overhead 74" 74 (Timing.frame_overhead_bytes t0);
  Alcotest.(check int) "payload 1440" 1440 (Timing.max_payload_bytes t0);
  let raw = Timing.create { Config.default with raw_ethernet = true } in
  Alcotest.(check int) "raw overhead 46" 46 (Timing.frame_overhead_bytes raw);
  Alcotest.(check int) "raw payload 1468" 1468 (Timing.max_payload_bytes raw)

let test_uniproc_model () =
  check_us "no penalty on 5 CPUs" 0. (Timing.uniproc_wakeup_extra t0);
  Alcotest.(check (float 0.)) "no bug on 5 CPUs" 0. (Timing.uniproc_bug_loss_probability t0);
  let uni = Timing.create { Config.default with cpus = 1 } in
  Alcotest.(check bool) "penalty on 1 CPU" true
    (us_of (Timing.uniproc_wakeup_extra uni) > 0.);
  Alcotest.(check bool) "bug without fix" true (Timing.uniproc_bug_loss_probability uni > 0.);
  let fixed = Timing.create Config.uniprocessor in
  Alcotest.(check (float 0.)) "fix removes bug" 0. (Timing.uniproc_bug_loss_probability fixed);
  check_us "fix costs nothing on uniproc" 0. (Timing.multiproc_fix_cost fixed);
  let mp_fixed = Timing.create { Config.default with uniproc_fix = true } in
  check_us "fix costs 100us on multiproc" 100. (Timing.multiproc_fix_cost mp_fixed)

let test_config_validate () =
  (match Config.validate Config.default with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Config.validate { Config.default with cpus = 0 } with
  | Ok _ -> Alcotest.fail "accepted 0 cpus"
  | Error _ -> ());
  match Config.validate { Config.default with ethernet_mbps = -1. } with
  | Ok _ -> Alcotest.fail "accepted negative rate"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "Table VI calibration points" `Quick test_table6_calibration_points;
    Alcotest.test_case "Table VI totals (954/4414)" `Quick test_send_receive_totals;
    Alcotest.test_case "Table VII total (606)" `Quick test_table7_total;
    Alcotest.test_case "Tables II-V marshalling" `Quick test_marshalling_calibration;
    Alcotest.test_case "local RPC total (937)" `Quick test_local_rpc_calibration;
    Alcotest.test_case "cpu speedup scales software only" `Quick
      test_cpu_speedup_scales_software_only;
    Alcotest.test_case "network speedup" `Quick test_network_speedup;
    Alcotest.test_case "improvement flags" `Quick test_improvement_flags;
    Alcotest.test_case "exerciser stubs" `Quick test_exerciser_stubs;
    Alcotest.test_case "frame geometry" `Quick test_frame_geometry;
    Alcotest.test_case "uniprocessor model" `Quick test_uniproc_model;
    Alcotest.test_case "config validation" `Quick test_config_validate;
  ]
