module Engine = Sim.Engine
module Time = Sim.Time
module Config = Hw.Config
module Timing = Hw.Timing
module Ether_link = Hw.Ether_link
module Deqna = Hw.Deqna
module Mac = Net.Mac

let us = Time.us

let frame ~dst ~src ~len =
  let w = Wire.Bytebuf.Writer.create len in
  Net.Ethernet.encode w { Net.Ethernet.dst; src; ethertype = Net.Ethernet.ethertype_ipv4 };
  Wire.Bytebuf.Writer.zeros w (len - Net.Ethernet.header_size);
  Wire.Bytebuf.Writer.contents w

(* {1 Link} *)

let test_link_delivery_and_occupancy () =
  let eng = Engine.create () in
  let link = Ether_link.create eng ~mbps:10. in
  let m1 = Mac.of_station 1 and m2 = Mac.of_station 2 in
  let arrivals = ref [] in
  let _s2 =
    Ether_link.attach link ~mac:m2 ~on_frame_start:(fun ~frame ~wire ->
        arrivals := (Time.since_start_us (Engine.now eng), Bytes.length frame, Time.to_us wire) :: !arrivals)
  in
  let _s1 = Ether_link.attach link ~mac:m1 ~on_frame_start:(fun ~frame:_ ~wire:_ -> ()) in
  Engine.spawn eng (fun () ->
      Ether_link.transmit link ~src:m1 (frame ~dst:m2 ~src:m1 ~len:74);
      Ether_link.transmit link ~src:m1 (frame ~dst:m2 ~src:m1 ~len:1514));
  Engine.run eng;
  (match List.rev !arrivals with
  | [ (t1, l1, w1); (t2, l2, w2) ] ->
    Alcotest.(check (float 0.1)) "first starts immediately" 0. t1;
    Alcotest.(check int) "first length" 74 l1;
    Alcotest.(check (float 0.1)) "first wire time" 59.2 w1;
    (* Second frame waits for wire + IFG of the first. *)
    Alcotest.(check (float 0.1)) "second deferred" 68.8 t2;
    Alcotest.(check int) "second length" 1514 l2;
    Alcotest.(check (float 0.5)) "second wire time" 1211.2 w2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 arrivals, got %d" (List.length l)));
  Alcotest.(check int) "frames counted" 2 (Ether_link.frames_carried link)

let test_link_unknown_destination () =
  let eng = Engine.create () in
  let link = Ether_link.create eng ~mbps:10. in
  let m1 = Mac.of_station 1 in
  let _s1 = Ether_link.attach link ~mac:m1 ~on_frame_start:(fun ~frame:_ ~wire:_ -> ()) in
  Engine.spawn eng (fun () ->
      Ether_link.transmit link ~src:m1 (frame ~dst:(Mac.of_station 9) ~src:m1 ~len:74));
  Engine.run eng;
  Alcotest.(check int) "carried but undelivered" 1 (Ether_link.frames_carried link)

let test_link_broadcast () =
  let eng = Engine.create () in
  let link = Ether_link.create eng ~mbps:10. in
  let hits = ref 0 in
  let attach n =
    ignore
      (Ether_link.attach link ~mac:(Mac.of_station n) ~on_frame_start:(fun ~frame:_ ~wire:_ ->
           incr hits))
  in
  attach 1;
  attach 2;
  attach 3;
  Engine.spawn eng (fun () ->
      Ether_link.transmit link ~src:(Mac.of_station 1)
        (frame ~dst:Mac.broadcast ~src:(Mac.of_station 1) ~len:74));
  Engine.run eng;
  Alcotest.(check int) "everyone but the sender" 2 !hits

let test_link_fault_injection () =
  let eng = Engine.create () in
  let link = Ether_link.create eng ~mbps:10. in
  let m1 = Mac.of_station 1 and m2 = Mac.of_station 2 in
  let received = ref [] in
  let _s2 =
    Ether_link.attach link ~mac:m2 ~on_frame_start:(fun ~frame ~wire:_ ->
        received := frame :: !received)
  in
  let plan = ref [ Ether_link.Drop; Ether_link.Corrupt; Ether_link.Deliver ] in
  Ether_link.set_fault_injector link
    (Some
       (fun _ ->
         match !plan with
         | f :: rest ->
           plan := rest;
           f
         | [] -> Ether_link.Deliver));
  let original = frame ~dst:m2 ~src:m1 ~len:100 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        Ether_link.transmit link ~src:m1 original
      done);
  Engine.run eng;
  Alcotest.(check int) "dropped counted" 1 (Ether_link.frames_dropped link);
  Alcotest.(check int) "corrupted counted" 1 (Ether_link.frames_corrupted link);
  match List.rev !received with
  | [ corrupted; clean ] ->
    Alcotest.(check bool) "corrupted differs" false (Bytes.equal corrupted original);
    Alcotest.(check bool) "clean intact" true (Bytes.equal clean original);
    Alcotest.(check bool) "headers preserved by corruption" true
      (Bytes.equal (Bytes.sub corrupted 0 14) (Bytes.sub original 0 14))
  | l -> Alcotest.fail (Printf.sprintf "expected 2 deliveries, got %d" (List.length l))

(* {1 DEQNA} *)

type rig = {
  eng : Engine.t;
  link : Ether_link.t;
  a : Deqna.t;
  b : Deqna.t;
}

let make_rig ?(config = Config.default) () =
  let eng = Engine.create () in
  let timing = Timing.create config in
  let link = Ether_link.create eng ~mbps:config.Config.ethernet_mbps in
  let mk n =
    let qbus = Sim.Resource.create eng ~name:(Printf.sprintf "qbus%d" n) ~capacity:1 in
    Deqna.create eng timing ~link ~qbus ~mac:(Mac.of_station n) ()
  in
  { eng; link; a = mk 1; b = mk 2 }

let test_deqna_store_and_forward_timing () =
  let r = make_rig () in
  let received_at = ref 0. in
  Deqna.set_interrupt_handler r.b (fun () ->
      received_at := Time.since_start_us (Engine.now r.eng);
      ignore (Deqna.take_rx r.b);
      Deqna.interrupt_done r.b);
  Deqna.add_rx_credits r.b 4;
  Engine.spawn r.eng (fun () ->
      Deqna.queue_tx r.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:74);
      Deqna.start_transmit r.a);
  Engine.run r.eng;
  (* qbus tx 70 + wire 59.2 + qbus rx 80.2, fully serial. *)
  Alcotest.(check (float 3.)) "store-and-forward latency" 209.4 !received_at;
  Alcotest.(check int) "tx counted" 1 (Deqna.tx_frames r.a);
  Alcotest.(check int) "rx counted" 1 (Deqna.rx_frames r.b)

let test_deqna_cut_through_faster () =
  let serial = make_rig () in
  let overlap = make_rig ~config:{ Config.default with cut_through = true } () in
  let run rig =
    let at = ref 0. in
    Deqna.set_interrupt_handler rig.b (fun () ->
        at := Time.since_start_us (Engine.now rig.eng);
        ignore (Deqna.take_rx rig.b);
        Deqna.interrupt_done rig.b);
    Deqna.add_rx_credits rig.b 4;
    Engine.spawn rig.eng (fun () ->
        Deqna.queue_tx rig.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:1514);
        Deqna.start_transmit rig.a);
    Engine.run rig.eng;
    !at
  in
  let t_serial = run serial in
  let t_overlap = run overlap in
  (* Serial: 815 + 1211 + 836 = 2862; overlapped: ~max(815,1211)+max(1211,836)
     collapses to ~wire + setup ≈ 1230.  The paper's §4.2.1 estimates
     1800 us saved on a full packet; accept a broad band. *)
  Alcotest.(check (float 60.)) "serial latency" 2862. t_serial;
  Alcotest.(check bool) "cut-through saves >1500us" true (t_serial -. t_overlap > 1500.)

let test_deqna_overrun_drop () =
  (* With a single staging slot, two large frames arriving back-to-back
     overrun while the engine is still writing the first to memory. *)
  let config = { Config.default with deqna_staging_frames = 1 } in
  let r = make_rig ~config () in
  (* Station 3 also transmits to b. *)
  let timing = Timing.create config in
  let qbus3 = Sim.Resource.create r.eng ~name:"qbus3" ~capacity:1 in
  let c = Deqna.create r.eng timing ~link:r.link ~qbus:qbus3 ~mac:(Mac.of_station 3) () in
  Deqna.set_interrupt_handler r.b (fun () ->
      let rec drain () =
        match Deqna.take_rx r.b with
        | Some _ -> drain ()
        | None -> ()
      in
      drain ();
      Deqna.interrupt_done r.b);
  Deqna.add_rx_credits r.b 8;
  Engine.spawn r.eng (fun () ->
      Deqna.queue_tx r.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:1514);
      Deqna.start_transmit r.a);
  Engine.spawn r.eng (fun () ->
      Deqna.queue_tx c (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 3) ~len:1514);
      Deqna.start_transmit c);
  Engine.run r.eng;
  Alcotest.(check int) "second frame overruns" 1 (Deqna.rx_overruns r.b);
  Alcotest.(check int) "one received" 1 (Deqna.rx_frames r.b)

let test_deqna_no_buffer_drop () =
  let r = make_rig () in
  Deqna.set_interrupt_handler r.b (fun () -> Deqna.interrupt_done r.b);
  (* no credits supplied *)
  Engine.spawn r.eng (fun () ->
      Deqna.queue_tx r.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:74);
      Deqna.start_transmit r.a);
  Engine.run r.eng;
  Alcotest.(check int) "dropped for want of buffer" 1 (Deqna.rx_no_buffer r.b);
  Alcotest.(check int) "none received" 0 (Deqna.rx_frames r.b)

let test_deqna_interrupt_coalescing () =
  let r = make_rig () in
  let interrupts = ref 0 in
  let drained = ref 0 in
  Deqna.set_interrupt_handler r.b (fun () ->
      incr interrupts;
      (* A slow handler: frames arriving meanwhile are picked up by the
         same interrupt. *)
      Engine.delay r.eng (Time.ms 5);
      let rec drain () =
        match Deqna.take_rx r.b with
        | Some _ ->
          incr drained;
          drain ()
        | None -> ()
      in
      drain ();
      Deqna.interrupt_done r.b);
  Deqna.add_rx_credits r.b 16;
  Engine.spawn r.eng (fun () ->
      (* Space the frames so the store-and-forward receive engine keeps
         up (it is busy ~139 us per 74-byte frame) while the 5 ms
         handler is still running. *)
      for _ = 1 to 5 do
        Deqna.queue_tx r.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:74);
        Deqna.start_transmit r.a;
        Engine.delay r.eng (us 300)
      done);
  Engine.run r.eng;
  Alcotest.(check int) "no overruns at this spacing" 0 (Deqna.rx_overruns r.b);
  Alcotest.(check int) "all frames drained" 5 !drained;
  Alcotest.(check int) "one coalesced interrupt" 1 !interrupts

let test_deqna_queue_while_busy () =
  let r = make_rig () in
  let got = ref 0 in
  Deqna.set_interrupt_handler r.b (fun () ->
      let rec drain () =
        match Deqna.take_rx r.b with
        | Some _ ->
          incr got;
          drain ()
        | None -> ()
      in
      drain ();
      Deqna.interrupt_done r.b);
  Deqna.add_rx_credits r.b 16;
  Engine.spawn r.eng (fun () ->
      Deqna.queue_tx r.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:74);
      Deqna.start_transmit r.a;
      (* Queue more while the engine is mid-frame; a second prod while
         running must not lose work.  (300 us keeps the receiver's
         store-and-forward engine from overrunning.) *)
      Engine.delay r.eng (us 300);
      Deqna.queue_tx r.a (frame ~dst:(Mac.of_station 2) ~src:(Mac.of_station 1) ~len:74);
      Deqna.start_transmit r.a);
  Engine.run r.eng;
  Alcotest.(check int) "both transmitted" 2 !got

let suite =
  [
    Alcotest.test_case "link delivery and occupancy" `Quick test_link_delivery_and_occupancy;
    Alcotest.test_case "link unknown destination" `Quick test_link_unknown_destination;
    Alcotest.test_case "link broadcast" `Quick test_link_broadcast;
    Alcotest.test_case "link fault injection" `Quick test_link_fault_injection;
    Alcotest.test_case "deqna store-and-forward timing" `Quick test_deqna_store_and_forward_timing;
    Alcotest.test_case "deqna cut-through faster" `Quick test_deqna_cut_through_faster;
    Alcotest.test_case "deqna overrun drop" `Quick test_deqna_overrun_drop;
    Alcotest.test_case "deqna no-buffer drop" `Quick test_deqna_no_buffer_drop;
    Alcotest.test_case "deqna interrupt coalescing" `Quick test_deqna_interrupt_coalescing;
    Alcotest.test_case "deqna queue while busy" `Quick test_deqna_queue_while_busy;
  ]
