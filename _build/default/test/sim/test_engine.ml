module Engine = Sim.Engine
module Time = Sim.Time

let us = Time.us

let test_schedule_order () =
  let eng = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Engine.schedule eng ~after:(us 20) (note "c");
  Engine.schedule eng ~after:(us 10) (note "a");
  Engine.schedule eng ~after:(us 10) (note "b");
  Engine.run eng;
  Alcotest.(check (list string)) "time then FIFO order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock advanced" 20_000 (Time.since_start_ns (Engine.now eng))

let test_delay () =
  let eng = Engine.create () in
  let stamps = ref [] in
  Engine.spawn eng (fun () ->
      stamps := Engine.now eng :: !stamps;
      Engine.delay eng (us 5);
      stamps := Engine.now eng :: !stamps;
      Engine.delay eng (us 7);
      stamps := Engine.now eng :: !stamps);
  Engine.run eng;
  let ns = List.rev_map Time.since_start_ns !stamps in
  Alcotest.(check (list int)) "delay advances clock" [ 0; 5_000; 12_000 ] ns

let test_zero_delay_yields () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      log := "p1-before" :: !log;
      Engine.delay eng Time.zero_span;
      log := "p1-after" :: !log);
  Engine.spawn eng (fun () -> log := "p2" :: !log);
  Engine.run eng;
  Alcotest.(check (list string))
    "zero delay lets same-instant work run" [ "p1-before"; "p2"; "p1-after" ] (List.rev !log)

let test_suspend_wake () =
  let eng = Engine.create () in
  let woken_at = ref Time.zero in
  let saved = ref None in
  Engine.spawn eng (fun () ->
      let v = Engine.suspend eng (fun w -> saved := Some w) in
      Alcotest.(check int) "value passed through" 99 v;
      woken_at := Engine.now eng);
  Engine.schedule eng ~after:(us 30) (fun () ->
      match !saved with
      | Some w ->
        Alcotest.(check bool) "first wake succeeds" true (Engine.wake w 99);
        Alcotest.(check bool) "second wake fails" false (Engine.wake w 100)
      | None -> Alcotest.fail "waker not registered");
  Engine.run eng;
  Alcotest.(check int) "woke at wake time" 30_000 (Time.since_start_ns !woken_at)

let test_suspend_timeout_fires () =
  let eng = Engine.create () in
  let result = ref (Some 0) in
  Engine.spawn eng (fun () ->
      result := Engine.suspend_timeout eng ~timeout:(us 10) (fun _ -> ()));
  Engine.run eng;
  Alcotest.(check (option int)) "timed out" None !result

let test_suspend_timeout_beaten () =
  let eng = Engine.create () in
  let result = ref None in
  let saved = ref None in
  Engine.spawn eng (fun () ->
      result := Engine.suspend_timeout eng ~timeout:(us 100) (fun w -> saved := Some w));
  Engine.schedule eng ~after:(us 5) (fun () ->
      match !saved with
      | Some w -> ignore (Engine.wake w 7)
      | None -> Alcotest.fail "waker not registered");
  Engine.run eng;
  Alcotest.(check (option int)) "woken before timeout" (Some 7) !result;
  (* The stale timeout event at t=100us must not resume anything. *)
  Alcotest.(check int) "no suspended leftovers" 0 (Engine.suspended_count eng)

let test_not_in_process () =
  let eng = Engine.create () in
  Alcotest.check_raises "delay outside process" Engine.Not_in_process (fun () ->
      Engine.delay eng (us 1));
  Alcotest.check_raises "suspend outside process" Engine.Not_in_process (fun () ->
      ignore (Engine.suspend eng (fun (_ : unit Engine.waker) -> ())))

let test_negative_delay () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Alcotest.(check bool) "negative rejected" true
        (try
           Engine.delay eng (Time.us (-1));
           false
         with Invalid_argument _ -> true));
  Engine.run eng

let test_run_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Engine.schedule eng ~after:(us 10) tick
  in
  Engine.schedule eng ~after:(us 10) tick;
  Engine.run_until ~max_events:1_000 eng (Time.add Time.zero (us 55));
  Alcotest.(check int) "ticks within window" 5 !count;
  Alcotest.(check int) "clock at stop" 55_000 (Time.since_start_ns (Engine.now eng))

let test_run_until_quiescence () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      ignore (Engine.suspend eng (fun (_ : unit Engine.waker) -> ())));
  Engine.run_until eng (Time.add Time.zero (us 100));
  Alcotest.(check int) "daemon left suspended" 1 (Engine.suspended_count eng);
  Alcotest.(check int) "clock still reaches stop" 100_000
    (Time.since_start_ns (Engine.now eng))

let test_run_while () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Engine.schedule eng ~after:(us 10) tick
  in
  Engine.schedule eng ~after:(us 10) tick;
  Engine.run_while eng (fun () -> !count < 7);
  Alcotest.(check int) "stopped by predicate" 7 !count

let test_max_events_guard () =
  let eng = Engine.create () in
  let rec loop () =
    Engine.delay eng (us 1);
    loop ()
  in
  Engine.spawn eng loop;
  Alcotest.(check bool) "runaway guarded" true
    (try
       Engine.run ~max_events:100 eng;
       false
     with Failure _ -> true)

(* Two engines built the same way must produce identical schedules. *)
let deterministic_run () =
  let eng = Engine.create ~seed:7 () in
  let log = Buffer.create 64 in
  for i = 1 to 5 do
    Engine.spawn eng (fun () ->
        let jitter = Sim.Rng.int (Engine.rng eng) 50 in
        Engine.delay eng (us (i * 10));
        Engine.delay eng (us jitter);
        Buffer.add_string log (Printf.sprintf "%d@%d;" i (Time.since_start_ns (Engine.now eng))))
  done;
  Engine.run eng;
  (Buffer.contents log, Engine.events_executed eng)

let test_determinism () =
  let a = deterministic_run () in
  let b = deterministic_run () in
  Alcotest.(check (pair string int)) "identical runs" a b

let test_exception_escapes () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"crasher" (fun () -> failwith "boom");
  Alcotest.check_raises "process exception surfaces" (Failure "boom") (fun () ->
      Engine.run eng)

let test_spawn_nested () =
  let eng = Engine.create () in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      order := "parent" :: !order;
      Engine.spawn eng (fun () ->
          Engine.delay eng (us 1);
          order := "child" :: !order);
      Engine.delay eng (us 2);
      order := "parent-end" :: !order);
  Engine.run eng;
  Alcotest.(check (list string))
    "nested spawn interleaves" [ "parent"; "child"; "parent-end" ] (List.rev !order)

let suite =
  [
    Alcotest.test_case "schedule ordering" `Quick test_schedule_order;
    Alcotest.test_case "delay" `Quick test_delay;
    Alcotest.test_case "zero delay yields" `Quick test_zero_delay_yields;
    Alcotest.test_case "suspend and wake" `Quick test_suspend_wake;
    Alcotest.test_case "suspend timeout fires" `Quick test_suspend_timeout_fires;
    Alcotest.test_case "suspend timeout beaten" `Quick test_suspend_timeout_beaten;
    Alcotest.test_case "effects outside process" `Quick test_not_in_process;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay;
    Alcotest.test_case "run_until window" `Quick test_run_until;
    Alcotest.test_case "run_until quiescence" `Quick test_run_until_quiescence;
    Alcotest.test_case "run_while predicate" `Quick test_run_while;
    Alcotest.test_case "max_events guard" `Quick test_max_events_guard;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "process exception escapes" `Quick test_exception_escapes;
    Alcotest.test_case "nested spawn" `Quick test_spawn_nested;
  ]
