module Engine = Sim.Engine
module Time = Sim.Time
module Condvar = Sim.Condvar
module Mutex = Sim.Mutex
module Semaphore = Sim.Semaphore
module Mailbox = Sim.Mailbox
module Resource = Sim.Resource

let us = Time.us
let now_ns eng = Time.since_start_ns (Engine.now eng)

let test_condvar_signal () =
  let eng = Engine.create () in
  let cv = Condvar.create eng in
  let woken = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Condvar.await cv;
        woken := i :: !woken)
  done;
  Engine.schedule eng ~after:(us 10) (fun () ->
      Alcotest.(check int) "three waiting" 3 (Condvar.waiters cv);
      Alcotest.(check bool) "signal wakes" true (Condvar.signal cv));
  Engine.schedule eng ~after:(us 20) (fun () -> ignore (Condvar.broadcast cv));
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO wake order" [ 1; 2; 3 ] (List.rev !woken);
  Alcotest.(check bool) "signal on empty" false (Condvar.signal cv)

let test_condvar_timeout () =
  let eng = Engine.create () in
  let cv = Condvar.create eng in
  let outcome = ref `Signaled in
  Engine.spawn eng (fun () -> outcome := Condvar.await_timeout cv ~timeout:(us 10));
  (* After the timeout, a signal must not be consumed by the stale waiter. *)
  let late = ref false in
  Engine.spawn eng (fun () ->
      Engine.delay eng (us 20);
      Engine.spawn eng (fun () ->
          Condvar.await cv;
          late := true);
      Engine.delay eng (us 1);
      Alcotest.(check bool) "signal reaches live waiter" true (Condvar.signal cv));
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!outcome = `Timeout);
  Alcotest.(check bool) "live waiter woken" true !late

let test_mutex_exclusion () =
  let eng = Engine.create () in
  let m = Mutex.create eng in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let done_count = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn eng (fun () ->
        Mutex.with_lock m (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Engine.delay eng (us 10);
            decr inside);
        incr done_count)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check int) "all completed" 5 !done_count;
  Alcotest.(check int) "serialized duration" 50_000 (now_ns eng)

let test_mutex_misuse () =
  let eng = Engine.create () in
  let m = Mutex.create eng in
  Alcotest.(check bool) "unlock unheld rejected" true
    (try
       Mutex.unlock m;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "try_lock free" true (Mutex.try_lock m);
  Alcotest.(check bool) "try_lock held" false (Mutex.try_lock m);
  Mutex.unlock m;
  Alcotest.(check bool) "released" false (Mutex.locked m)

let test_semaphore () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng ~initial:2 in
  let active = ref 0 in
  let max_active = ref 0 in
  for _ = 1 to 6 do
    Engine.spawn eng (fun () ->
        Semaphore.acquire sem;
        incr active;
        if !active > !max_active then max_active := !active;
        Engine.delay eng (us 10);
        decr active;
        Semaphore.release sem)
  done;
  Engine.run eng;
  Alcotest.(check int) "bounded concurrency" 2 !max_active;
  Alcotest.(check int) "takes three rounds" 30_000 (now_ns eng);
  Alcotest.(check int) "count restored" 2 (Semaphore.value sem)

let test_mailbox () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let received = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        received := Mailbox.recv mb :: !received
      done);
  Engine.spawn eng (fun () ->
      Mailbox.send mb "a";
      Engine.delay eng (us 5);
      Mailbox.send mb "b";
      Mailbox.send mb "c");
  Engine.run eng;
  Alcotest.(check (list string)) "FIFO delivery" [ "a"; "b"; "c" ] (List.rev !received);
  Alcotest.(check bool) "drained" true (Mailbox.is_empty mb)

let test_mailbox_timeout () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create eng in
  let first = ref (Some 0) in
  let second = ref None in
  Engine.spawn eng (fun () ->
      first := Mailbox.recv_timeout mb ~timeout:(us 10);
      second := Mailbox.recv_timeout mb ~timeout:(us 100));
  Engine.schedule eng ~after:(us 30) (fun () -> Mailbox.send mb 5);
  Engine.run eng;
  Alcotest.(check (option int)) "first times out" None !first;
  Alcotest.(check (option int)) "second delivered" (Some 5) !second

let test_resource_fifo_and_util () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"bus" ~capacity:1 in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng ~after:(us i) (fun () ->
        Resource.use r (us 10);
        order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO service" [ 1; 2; 3 ] (List.rev !order);
  (* Busy 30us of the 31us elapsed. *)
  let util = Resource.utilization r ~upto:(Engine.now eng) in
  Alcotest.(check (float 0.01)) "utilization" (30. /. 31.) util

let test_resource_priority () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"cpu" ~capacity:1 in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Resource.use r (us 10);
      order := "holder" :: !order);
  Engine.spawn eng ~after:(us 1) (fun () ->
      Resource.use r (us 1);
      order := "normal" :: !order);
  Engine.spawn eng ~after:(us 2) (fun () ->
      Resource.use ~priority:Resource.High r (us 1);
      order := "interrupt" :: !order);
  Engine.run eng;
  Alcotest.(check (list string))
    "high priority jumps queue"
    [ "holder"; "interrupt"; "normal" ]
    (List.rev !order)

let test_resource_capacity () =
  let eng = Engine.create () in
  let r = Resource.create eng ~name:"cpus" ~capacity:3 in
  let peak = ref 0 in
  for _ = 1 to 9 do
    Engine.spawn eng (fun () ->
        Resource.acquire r;
        if Resource.in_use r > !peak then peak := Resource.in_use r;
        Engine.delay eng (us 10);
        Resource.release r)
  done;
  Engine.run eng;
  Alcotest.(check int) "capacity bound" 3 !peak;
  Alcotest.(check int) "three waves" 30_000 (now_ns eng);
  Alcotest.(check int) "all released" 0 (Resource.in_use r)

let suite =
  [
    Alcotest.test_case "condvar signal/broadcast" `Quick test_condvar_signal;
    Alcotest.test_case "condvar timeout leaves queue clean" `Quick test_condvar_timeout;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex misuse" `Quick test_mutex_misuse;
    Alcotest.test_case "semaphore bounds concurrency" `Quick test_semaphore;
    Alcotest.test_case "mailbox FIFO" `Quick test_mailbox;
    Alcotest.test_case "mailbox timeout" `Quick test_mailbox_timeout;
    Alcotest.test_case "resource FIFO + utilization" `Quick test_resource_fifo_and_util;
    Alcotest.test_case "resource priority" `Quick test_resource_priority;
    Alcotest.test_case "resource capacity" `Quick test_resource_capacity;
  ]
