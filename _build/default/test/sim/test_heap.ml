module Heap = Sim.Heap

let int_heap () = Heap.create ~leq:(fun (a : int) b -> a <= b)

let test_basic () =
  let h = int_heap () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.add h 3;
  Heap.add h 1;
  Heap.add h 2;
  Alcotest.(check int) "size" 3 (Heap.size h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "size after peek" 3 (Heap.size h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty again" None (Heap.pop h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 5; 1; 9 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.add h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let test_duplicates () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 2; 2; 1; 2 ];
  Alcotest.(check (list int)) "drain with dups" [ 1; 2; 2; 2 ] (Heap.to_sorted_list h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let prop_sorted_drain =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.add h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved add/pop preserves order" ~count:200
    QCheck.(list (pair int bool))
    (fun ops ->
      (* Replay adds and pops against a sorted-list reference model. *)
      let h = int_heap () in
      let model = ref [] in
      List.for_all
        (fun (x, is_add) ->
          if is_add then begin
            Heap.add h x;
            model := List.sort compare (x :: !model);
            true
          end
          else
            match Heap.pop h, !model with
            | None, [] -> true
            | Some v, m :: rest ->
              model := rest;
              v = m
            | _ -> false)
        ops)

let suite =
  [
    Alcotest.test_case "basic operations" `Quick test_basic;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    QCheck_alcotest.to_alcotest prop_sorted_drain;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
