module Time = Sim.Time

let span = Alcotest.testable Time.pp_span (fun a b -> Time.span_compare a b = 0)

let test_units () =
  Alcotest.(check int) "us in ns" 1_000 (Time.to_ns (Time.us 1));
  Alcotest.(check int) "ms in ns" 1_000_000 (Time.to_ns (Time.ms 1));
  Alcotest.(check int) "sec in ns" 1_000_000_000 (Time.to_ns (Time.sec 1));
  Alcotest.check span "us_f rounds" (Time.ns 1_500) (Time.us_f 1.5);
  Alcotest.check span "us_f tiny" (Time.ns 274) (Time.us_f 0.2743)

let test_arithmetic () =
  let t = Time.add Time.zero (Time.us 10) in
  let t' = Time.add t (Time.us 5) in
  Alcotest.check span "diff" (Time.us 5) (Time.diff t' t);
  Alcotest.check span "negative diff" (Time.us (-5)) (Time.diff t t');
  Alcotest.(check bool) "is_negative" true (Time.span_is_negative (Time.diff t t'));
  Alcotest.check span "sum" (Time.us 30)
    (Time.span_sum [ Time.us 10; Time.us 15; Time.us 5 ]);
  Alcotest.check span "scale" (Time.us 5) (Time.span_scale 0.5 (Time.us 10))

let test_comparisons () =
  let a = Time.add Time.zero (Time.ns 1) in
  let b = Time.add Time.zero (Time.ns 2) in
  Alcotest.(check bool) "lt" true Time.(a < b);
  Alcotest.(check bool) "le refl" true Time.(a <= a);
  Alcotest.(check bool) "min" true (Time.equal a (Time.min a b));
  Alcotest.(check bool) "max" true (Time.equal b (Time.max a b))

let test_conversions () =
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Time.to_us (Time.ns 1_500));
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time.to_ms (Time.us 2_500));
  Alcotest.(check (float 1e-9)) "to_sec" 0.25 (Time.to_sec (Time.ms 250));
  Alcotest.(check int) "roundtrip" 777 (Time.since_start_ns (Time.of_ns_since_start 777))

let test_pretty () =
  Alcotest.(check string) "ns" "999ns" (Time.span_to_string (Time.ns 999));
  Alcotest.(check string) "us" "45.00us" (Time.span_to_string (Time.us 45));
  Alcotest.(check string) "ms" "2.660ms" (Time.span_to_string (Time.us 2_660));
  Alcotest.(check string) "s" "26.610s" (Time.span_to_string (Time.ms 26_610))

let suite =
  [
    Alcotest.test_case "unit constructors" `Quick test_units;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "pretty printing" `Quick test_pretty;
  ]
