(* Property tests for the simulation foundation: whatever random
   workload runs on the engine, its invariants must hold — every model
   above depends on them. *)

module Engine = Sim.Engine
module Time = Sim.Time
module Resource = Sim.Resource
module Semaphore = Sim.Semaphore
module Mutex = Sim.Mutex

(* Random process workload: [ops] drives spawns, delays and resource
   usage deterministically from the generated script. *)
let run_script ~capacity ops =
  let eng = Engine.create ~seed:1 () in
  let r = Resource.create eng ~name:"r" ~capacity in
  let max_in_use = ref 0 in
  let completions = ref 0 in
  let total = List.length ops in
  List.iter
    (fun (start_us, hold_us, priority) ->
      Engine.spawn eng ~after:(Time.us start_us) (fun () ->
          let priority = if priority then Resource.High else Resource.Normal in
          Resource.acquire ~priority r;
          if Resource.in_use r > !max_in_use then max_in_use := Resource.in_use r;
          Engine.delay eng (Time.us (1 + hold_us));
          Resource.release r;
          incr completions))
    ops;
  Engine.run ~max_events:1_000_000 eng;
  (!max_in_use, !completions, total, Resource.in_use r, Engine.now eng)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 40) (triple (int_bound 500) (int_bound 200) bool))

let prop_resource_invariants =
  QCheck.Test.make ~name:"resource: capacity respected, all complete, none leak" ~count:100
    (QCheck.make gen_ops)
    (fun ops ->
      List.for_all
        (fun capacity ->
          let max_in_use, completions, total, leftover, _ = run_script ~capacity ops in
          max_in_use <= capacity && completions = total && leftover = 0)
        [ 1; 2; 5 ])

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine: identical scripts give identical schedules" ~count:50
    (QCheck.make gen_ops)
    (fun ops ->
      let a = run_script ~capacity:2 ops in
      let b = run_script ~capacity:2 ops in
      a = b)

let prop_mutex_never_double_held =
  QCheck.Test.make ~name:"mutex: at most one holder under random contention" ~count:100
    (QCheck.make gen_ops)
    (fun ops ->
      let eng = Engine.create () in
      let m = Mutex.create eng in
      let inside = ref 0 in
      let violation = ref false in
      List.iter
        (fun (start_us, hold_us, _) ->
          Engine.spawn eng ~after:(Time.us start_us) (fun () ->
              Mutex.with_lock m (fun () ->
                  incr inside;
                  if !inside > 1 then violation := true;
                  Engine.delay eng (Time.us (1 + hold_us));
                  decr inside)))
        ops;
      Engine.run ~max_events:1_000_000 eng;
      (not !violation) && not (Mutex.locked m))

let prop_semaphore_conservation =
  QCheck.Test.make ~name:"semaphore: units conserved under random traffic" ~count:100
    (QCheck.make (QCheck.Gen.pair (QCheck.Gen.int_range 1 4) gen_ops))
    (fun (initial, ops) ->
      let eng = Engine.create () in
      let sem = Semaphore.create eng ~initial in
      let active = ref 0 in
      let over = ref false in
      List.iter
        (fun (start_us, hold_us, _) ->
          Engine.spawn eng ~after:(Time.us start_us) (fun () ->
              Semaphore.acquire sem;
              incr active;
              if !active > initial then over := true;
              Engine.delay eng (Time.us (1 + hold_us));
              decr active;
              Semaphore.release sem))
        ops;
      Engine.run ~max_events:1_000_000 eng;
      (not !over) && Semaphore.value sem = initial)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_resource_invariants;
    QCheck_alcotest.to_alcotest prop_engine_deterministic;
    QCheck_alcotest.to_alcotest prop_mutex_never_double_held;
    QCheck_alcotest.to_alcotest prop_semaphore_conservation;
  ]
