test/sim/test_stats_trace.ml: Alcotest List Sim
