test/sim/test_time.ml: Alcotest Sim
