test/sim/test_engine.ml: Alcotest Buffer List Printf Sim
