test/sim/test_props.ml: List QCheck QCheck_alcotest Sim
