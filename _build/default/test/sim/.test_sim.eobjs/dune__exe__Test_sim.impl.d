test/sim/test_sim.ml: Alcotest Test_engine Test_heap Test_props Test_stats_trace Test_sync Test_time
