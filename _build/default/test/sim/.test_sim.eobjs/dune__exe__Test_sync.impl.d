test/sim/test_sync.ml: Alcotest List Sim
