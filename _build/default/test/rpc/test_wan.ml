(* RPC across an IP gateway: two Ethernet segments joined by a router
   that forwards real IPv4 packets (TTL decrement, header checksum
   recomputation).  The paper keeps RPC on IP/UDP precisely to make
   this possible (§4.2.6). *)

module Engine = Sim.Engine
module Time = Sim.Time
module Cpu_set = Hw.Cpu_set
module Machine = Nub.Machine
module Router = Nub.Router
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Runtime = Rpc.Runtime
module Binder = Rpc.Binder

let ip = Net.Ipv4.Addr.of_string

type wan = {
  eng : Engine.t;
  caller : Machine.t;
  server : Machine.t;
  caller_rt : Runtime.t;
  server_rt : Runtime.t;
  router : Router.t;
  binder : Binder.t;
}

let test_intf =
  Idl.interface ~name:"Wan" ~version:1
    [
      Idl.proc "double"
        [
          Idl.arg ~mode:Idl.Var_in "input" (Idl.T_var_bytes 8000);
          Idl.arg ~mode:Idl.Var_out "output" (Idl.T_var_bytes 8000);
        ];
    ]

let impls : Runtime.impl array =
  [|
    (fun _ctx args ->
      match args with
      | [ Marshal.V_bytes b; _ ] ->
        [ Marshal.V_bytes (Bytes.cat b b) ]
      | _ -> Rpc.Rpc_error.fail (Rpc.Rpc_error.Marshal_failure "double"));
  |]

let build_wan () =
  let eng = Engine.create ~seed:3 () in
  let link_a = Hw.Ether_link.create eng ~mbps:10. in
  let link_b = Hw.Ether_link.create eng ~mbps:10. in
  let caller =
    Machine.create eng ~name:"caller" ~config:Hw.Config.default ~link:link_a ~station:1
      ~ip:(ip "16.1.0.10") ()
  in
  let server =
    Machine.create eng ~name:"server" ~config:Hw.Config.default ~link:link_b ~station:2
      ~ip:(ip "16.2.0.20") ()
  in
  let router =
    Router.create eng ~name:"gw" ~config:Hw.Config.default ~link_a ~station_a:40
      ~ip_a:(ip "16.1.0.1") ~link_b ~station_b:41 ~ip_b:(ip "16.2.0.1") ()
  in
  Router.add_route router (ip "16.1.0.0") ~mask_bits:16 Router.A;
  Router.add_route router (ip "16.2.0.0") ~mask_bits:16 Router.B;
  Router.add_host router Router.A (ip "16.1.0.10") (Machine.mac caller);
  Router.add_host router Router.B (ip "16.2.0.20") (Machine.mac server);
  (* Different /16s: the binder routes via the gateway's near-side port. *)
  let resolve ~caller:c ~server:s =
    let subnet m = Int32.logand (Net.Ipv4.Addr.to_int32 (Machine.ip m)) 0xffff0000l in
    if Int32.equal (subnet c) (subnet s) then None
    else if Int32.equal (subnet c) 0x10010000l then
      Some { Rpc.Frames.mac = Router.port_mac router Router.A; ip = Machine.ip s }
    else Some { Rpc.Frames.mac = Router.port_mac router Router.B; ip = Machine.ip s }
  in
  let binder = Binder.create ~resolve () in
  let caller_rt = Runtime.create (Rpc.Node.create caller) ~space:1 in
  let server_rt = Runtime.create (Rpc.Node.create server) ~space:1 in
  Binder.export binder server_rt test_intf ~impls ~workers:2;
  { eng; caller; server; caller_rt; server_rt; router; binder }

let run_call w payload =
  let binding = Binder.import w.binder w.caller_rt ~name:"Wan" ~version:1 () in
  let result = ref None in
  let latency = ref Time.zero_span in
  let gate = Sim.Gate.create w.eng in
  Machine.spawn_thread w.caller ~name:"wan-caller" (fun () ->
      Cpu_set.with_cpu (Machine.cpus w.caller) (fun ctx ->
          let client = Runtime.new_client w.caller_rt in
          let once () =
            Runtime.call_by_name binding client ctx ~proc:"double"
              ~args:[ Marshal.V_bytes payload; Marshal.V_bytes Bytes.empty ]
          in
          ignore (once ());
          let t0 = Engine.now w.eng in
          result := Some (once ());
          latency := Time.diff (Engine.now w.eng) t0);
      Sim.Gate.open_ gate);
  Engine.run_while w.eng (fun () -> not (Sim.Gate.is_open gate));
  Alcotest.(check bool) "completed" true (Sim.Gate.is_open gate);
  (Option.get !result, !latency)

let test_cross_gateway_call () =
  let w = build_wan () in
  let payload = Bytes.of_string "over the wide area" in
  let result, latency = run_call w payload in
  (match result with
  | [ Marshal.V_bytes b ] ->
    Alcotest.(check bytes) "doubled across the gateway" (Bytes.cat payload payload) b
  | _ -> Alcotest.fail "bad result");
  Alcotest.(check bool) "router forwarded both directions" true (Router.forwarded w.router >= 4);
  Alcotest.(check int) "no routing failures" 0
    (Router.dropped_no_route w.router + Router.dropped_no_arp w.router
   + Router.dropped_ttl w.router);
  (* One extra store-and-forward hop each way: noticeably slower than
     the single-segment 2.66 ms, but far below two RPCs. *)
  Alcotest.(check bool) "slower than direct" true (Time.to_ms latency > 3.2);
  Alcotest.(check bool) "still one RPC, not two" true (Time.to_ms latency < 5.5)

let test_multi_packet_across_gateway () =
  let w = build_wan () in
  let payload = Bytes.init 3000 (fun i -> Char.chr (i mod 251)) in
  let result, _ = run_call w payload in
  match result with
  | [ Marshal.V_bytes b ] ->
    Alcotest.(check int) "6000 bytes back" 6000 (Bytes.length b);
    Alcotest.(check bytes) "content intact" (Bytes.cat payload payload) b
  | _ -> Alcotest.fail "bad result"

let test_ttl_expiry () =
  (* A frame arriving with TTL 1 must be dropped, not forwarded. *)
  let eng = Engine.create () in
  let link_a = Hw.Ether_link.create eng ~mbps:10. in
  let link_b = Hw.Ether_link.create eng ~mbps:10. in
  let router =
    Router.create eng ~name:"gw" ~config:Hw.Config.default ~link_a ~station_a:40
      ~ip_a:(ip "16.1.0.1") ~link_b ~station_b:41 ~ip_b:(ip "16.2.0.1") ()
  in
  Router.add_route router (ip "16.2.0.0") ~mask_bits:16 Router.B;
  Router.add_host router Router.B (ip "16.2.0.20") (Net.Mac.of_station 2);
  let w = Wire.Bytebuf.Writer.create 128 in
  Net.Ethernet.encode w
    {
      Net.Ethernet.dst = Router.port_mac router Router.A;
      src = Net.Mac.of_station 1;
      ethertype = Net.Ethernet.ethertype_ipv4;
    };
  Net.Ipv4.encode w
    {
      Net.Ipv4.src = ip "16.1.0.10";
      dst = ip "16.2.0.20";
      protocol = Net.Ipv4.protocol_udp;
      ttl = 1;
      ident = 0;
      payload_len = 8;
    };
  Wire.Bytebuf.Writer.zeros w 8;
  let sender = Hw.Ether_link.attach link_a ~mac:(Net.Mac.of_station 1)
      ~on_frame_start:(fun ~frame:_ ~wire:_ -> ()) in
  ignore sender;
  Engine.spawn eng (fun () ->
      Hw.Ether_link.transmit link_a ~src:(Net.Mac.of_station 1) (Wire.Bytebuf.Writer.contents w));
  Engine.run_until eng (Time.add Time.zero (Time.ms 100));
  Alcotest.(check int) "dropped on TTL" 1 (Router.dropped_ttl router);
  Alcotest.(check int) "not forwarded" 0 (Router.forwarded router)

let test_checksums_survive_forwarding () =
  (* The router rewrites the IP header; the UDP checksum must still
     verify end-to-end at the server (it covers the unchanged IP
     addresses via the pseudo-header). *)
  let w = build_wan () in
  let _ = run_call w (Bytes.of_string "checksum me") in
  Alcotest.(check int) "no checksum rejects at server" 0
    (Rpc.Node.checksum_rejects
       (let _ = w.server_rt in
        Runtime.node w.server_rt))

let suite =
  [
    Alcotest.test_case "call across gateway" `Quick test_cross_gateway_call;
    Alcotest.test_case "multi-packet across gateway" `Quick test_multi_packet_across_gateway;
    Alcotest.test_case "TTL expiry drops" `Quick test_ttl_expiry;
    Alcotest.test_case "UDP checksum survives forwarding" `Quick
      test_checksums_survive_forwarding;
  ]
