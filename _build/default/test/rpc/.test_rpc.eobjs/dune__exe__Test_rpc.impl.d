test/rpc/test_rpc.ml: Alcotest Test_decnet Test_e2e Test_frames Test_marshal Test_proto Test_protocol_props Test_robust Test_secure Test_typed Test_wan
