test/rpc/test_proto.ml: Alcotest Bytes Int32 List Net QCheck QCheck_alcotest Rpc Wire
