test/rpc/test_e2e.ml: Alcotest Bytes Char Hw Int32 List Nub Option Rpc Sim String Workload
