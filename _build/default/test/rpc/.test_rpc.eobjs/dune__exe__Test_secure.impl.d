test/rpc/test_secure.ml: Alcotest Bytes Char Hw Int32 Nub Option QCheck QCheck_alcotest Rpc Sim String Workload
