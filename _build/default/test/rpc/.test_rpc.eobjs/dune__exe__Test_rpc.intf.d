test/rpc/test_rpc.mli:
