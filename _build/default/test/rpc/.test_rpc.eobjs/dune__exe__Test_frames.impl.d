test/rpc/test_frames.ml: Alcotest Bytes Hw Net QCheck QCheck_alcotest Rpc
