test/rpc/test_robust.ml: Alcotest Bytes Hw Int32 List Net Nub Rpc Sim Workload
