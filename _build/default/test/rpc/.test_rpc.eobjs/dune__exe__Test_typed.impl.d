test/rpc/test_typed.ml: Alcotest Bytes Char Hw List Nub Option Printf Rpc Sim Workload
