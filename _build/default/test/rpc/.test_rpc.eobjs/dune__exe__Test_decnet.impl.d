test/rpc/test_decnet.ml: Alcotest Bytes Char Hw Int32 Nub Option Printf Rpc Sim String Workload
