test/rpc/test_protocol_props.ml: Alcotest Bytes Hashtbl Hw Int32 Nub Printexc Printf QCheck QCheck_alcotest Rpc Sim String Workload
