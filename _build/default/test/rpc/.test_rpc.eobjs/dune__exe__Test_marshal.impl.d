test/rpc/test_marshal.ml: Alcotest Bytes Char Float Hw Int32 Int64 List Printf QCheck QCheck_alcotest Random Rpc Sim String Wire
