test/rpc/test_wan.ml: Alcotest Bytes Char Hw Int32 Net Nub Option Rpc Sim Wire
