module W = Wire.Bytebuf.Writer
module R = Wire.Bytebuf.Reader
module Idl = Rpc.Idl
module Marshal = Rpc.Marshal
module Timing = Hw.Timing

let timing = Timing.create Hw.Config.default

(* {1 IDL} *)

let test_idl_validation () =
  Alcotest.(check bool) "duplicate proc" true
    (try
       ignore (Idl.interface ~name:"X" ~version:1 [ Idl.proc "a" []; Idl.proc "a" [] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty name" true
    (try
       ignore (Idl.interface ~name:"" ~version:1 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "oversized args" true
    (try
       ignore
         (Idl.interface ~name:"X" ~version:1
            [ Idl.proc "big" [ Idl.arg "a" (Idl.T_fixed_bytes 70_000) ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero-size fixed array" true
    (try
       ignore (Idl.arg "a" (Idl.T_fixed_bytes 0));
       false
     with Invalid_argument _ -> true)

let test_interface_id_stable () =
  let i1 = Idl.interface ~name:"Test" ~version:1 [] in
  let i2 = Idl.interface ~name:"Test" ~version:1 [ Idl.proc "p" [] ] in
  let i3 = Idl.interface ~name:"Test" ~version:2 [] in
  let i4 = Idl.interface ~name:"Tesu" ~version:1 [] in
  Alcotest.(check int32) "same name+version same id" (Idl.interface_id i1) (Idl.interface_id i2);
  Alcotest.(check bool) "version changes id" false
    (Int32.equal (Idl.interface_id i1) (Idl.interface_id i3));
  Alcotest.(check bool) "name changes id" false
    (Int32.equal (Idl.interface_id i1) (Idl.interface_id i4))

let test_find_proc () =
  let i = Idl.interface ~name:"X" ~version:1 [ Idl.proc "a" []; Idl.proc "b" [] ] in
  Alcotest.(check int) "find b" 1 (Idl.find_proc i "b");
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Idl.find_proc i "zz");
       false
     with Not_found -> true)

(* {1 Marshalling} *)

let proc_all =
  Idl.proc "all"
    [
      Idl.arg "n" Idl.T_int;
      Idl.arg "fixed" (Idl.T_fixed_bytes 8);
      Idl.arg ~mode:Idl.Var_in "input" (Idl.T_var_bytes 100);
      Idl.arg "label" (Idl.T_text 64);
      Idl.arg ~mode:Idl.Var_out "output" (Idl.T_var_bytes 100);
    ]

let values =
  [
    Marshal.V_int 123456l;
    Marshal.V_bytes (Bytes.of_string "12345678");
    Marshal.V_bytes (Bytes.of_string "in-data");
    Marshal.V_text (Some "hello");
    Marshal.V_bytes (Bytes.of_string "out-data-here");
  ]

let encode dir p vs =
  let w = W.create 4096 in
  Marshal.encode_args w dir p vs;
  W.contents w

let test_direction_selection () =
  let call = encode Marshal.In_call_packet proc_all values in
  let result = encode Marshal.In_result_packet proc_all values in
  (* Call carries n (4) + fixed (8) + input (2+7 prefix+data) + text
     (3+5); the trailing VAR OUT travels only in the result. *)
  Alcotest.(check int) "call payload size" (4 + 8 + 9 + 8) (Bytes.length call);
  (* Result carries only the VAR OUT array, last -> no length prefix. *)
  Alcotest.(check int) "result payload size" 13 (Bytes.length result)

let test_roundtrip_call () =
  let call = encode Marshal.In_call_packet proc_all values in
  let decoded = Marshal.decode_args (R.of_bytes call) Marshal.In_call_packet proc_all in
  (match decoded with
  | [ a; b; c; d; e ] ->
    Alcotest.(check bool) "int" true (Marshal.equal_value a (Marshal.V_int 123456l));
    Alcotest.(check bool) "fixed" true
      (Marshal.equal_value b (Marshal.V_bytes (Bytes.of_string "12345678")));
    Alcotest.(check bool) "var in" true
      (Marshal.equal_value c (Marshal.V_bytes (Bytes.of_string "in-data")));
    Alcotest.(check bool) "text" true (Marshal.equal_value d (Marshal.V_text (Some "hello")));
    (* VAR OUT did not travel: placeholder *)
    Alcotest.(check bool) "var out placeholder" true
      (Marshal.equal_value e (Marshal.V_bytes Bytes.empty))
  | _ -> Alcotest.fail "wrong arity");
  let result = encode Marshal.In_result_packet proc_all values in
  match Marshal.decode_args (R.of_bytes result) Marshal.In_result_packet proc_all with
  | [ _; _; _; _; e ] ->
    Alcotest.(check bool) "var out in result" true
      (Marshal.equal_value e (Marshal.V_bytes (Bytes.of_string "out-data-here")))
  | _ -> Alcotest.fail "wrong arity"

let test_trailing_array_exact_fit () =
  (* MaxResult's 1440-byte VAR OUT buffer must marshal to exactly 1440
     bytes (§2: 74-byte headers + 1440 = 1514). *)
  let p = Idl.proc "MaxResult" [ Idl.arg ~mode:Idl.Var_out "b" (Idl.T_var_bytes 1440) ] in
  let payload =
    encode Marshal.In_result_packet p [ Marshal.V_bytes (Bytes.make 1440 'x') ]
  in
  Alcotest.(check int) "exactly 1440" 1440 (Bytes.length payload)

let test_nil_text () =
  let p = Idl.proc "t" [ Idl.arg "s" (Idl.T_text 10) ] in
  let b = encode Marshal.In_call_packet p [ Marshal.V_text None ] in
  Alcotest.(check int) "NIL is one byte" 1 (Bytes.length b);
  match Marshal.decode_args (R.of_bytes b) Marshal.In_call_packet p with
  | [ v ] -> Alcotest.(check bool) "NIL roundtrip" true (Marshal.equal_value v (Marshal.V_text None))
  | _ -> Alcotest.fail "arity"

let test_type_errors () =
  let p = Idl.proc "t" [ Idl.arg "x" Idl.T_int ] in
  Alcotest.(check bool) "wrong constructor" true
    (try
       ignore (encode Marshal.In_call_packet p [ Marshal.V_text None ]);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true);
  Alcotest.(check bool) "wrong arity" true
    (try
       ignore (encode Marshal.In_call_packet p []);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true);
  let pf = Idl.proc "t" [ Idl.arg "x" (Idl.T_fixed_bytes 4) ] in
  Alcotest.(check bool) "fixed size mismatch" true
    (try
       ignore (encode Marshal.In_call_packet pf [ Marshal.V_bytes (Bytes.create 5) ]);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true);
  let pv = Idl.proc "t" [ Idl.arg "x" (Idl.T_var_bytes 4) ] in
  Alcotest.(check bool) "var max exceeded" true
    (try
       ignore (encode Marshal.In_call_packet pv [ Marshal.V_bytes (Bytes.create 10) ]);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true)

let test_truncated_decode () =
  let p = Idl.proc "t" [ Idl.arg "x" Idl.T_int; Idl.arg "f" (Idl.T_fixed_bytes 32) ] in
  let full =
    encode Marshal.In_call_packet p
      [ Marshal.V_int 1l; Marshal.V_bytes (Bytes.create 32) ]
  in
  Alcotest.(check bool) "truncated rejected" true
    (try
       ignore
         (Marshal.decode_args (R.of_bytes (Bytes.sub full 0 10)) Marshal.In_call_packet p);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true)

(* {1 Extended types: booleans, 16-bit integers, reals, records, sequences} *)

let point_ty = Idl.T_record [ Idl.T_real; Idl.T_real; Idl.T_text 16 ]

let proc_rich =
  Idl.proc "rich"
    [
      Idl.arg "flag" Idl.T_bool;
      Idl.arg "count" Idl.T_int16;
      Idl.arg "origin" point_ty;
      Idl.arg ~mode:Idl.Var_out "path" (Idl.T_seq (point_ty, 8));
    ]

let a_point x y name = Marshal.V_record [ Marshal.V_real x; Marshal.V_real y; Marshal.V_text name ]

let rich_values =
  [
    Marshal.V_bool true;
    Marshal.V_int16 (-1234);
    a_point 1.5 (-2.25) (Some "origin");
    Marshal.V_seq [ a_point 0.1 0.2 None; a_point 3.14159 2.71828 (Some "e-pi") ];
  ]

let test_rich_roundtrip () =
  let check dir =
    let b = encode dir proc_rich rich_values in
    let decoded = Marshal.decode_args (R.of_bytes b) dir proc_rich in
    List.iter2
      (fun (a, v) v' ->
        if Marshal.travels a.Idl.mode dir then
          Alcotest.(check bool) (a.Idl.arg_name ^ " roundtrips") true (Marshal.equal_value v v')
        else
          Alcotest.(check bool) (a.Idl.arg_name ^ " placeholder") true
            (Marshal.equal_value v' (Marshal.placeholder a.Idl.ty)))
      (List.combine proc_rich.Idl.args rich_values)
      decoded
  in
  check Marshal.In_call_packet;
  check Marshal.In_result_packet

let test_int16_range () =
  let p = Idl.proc "p" [ Idl.arg "x" Idl.T_int16 ] in
  let roundtrip v =
    match
      Marshal.decode_args
        (R.of_bytes (encode Marshal.In_call_packet p [ Marshal.V_int16 v ]))
        Marshal.In_call_packet p
    with
    | [ Marshal.V_int16 v' ] -> v'
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check int) "negative" (-32768) (roundtrip (-32768));
  Alcotest.(check int) "positive" 32767 (roundtrip 32767);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (encode Marshal.In_call_packet p [ Marshal.V_int16 40000 ]);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true)

let test_real_bit_exact () =
  let p = Idl.proc "p" [ Idl.arg "x" Idl.T_real ] in
  List.iter
    (fun v ->
      match
        Marshal.decode_args
          (R.of_bytes (encode Marshal.In_call_packet p [ Marshal.V_real v ]))
          Marshal.In_call_packet p
      with
      | [ Marshal.V_real v' ] ->
        Alcotest.(check bool)
          (Printf.sprintf "%h bit-exact" v)
          true
          (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v'))
      | _ -> Alcotest.fail "shape")
    [ 0.; -0.; 1.5; -3.25e-300; Float.max_float; Float.nan; Float.infinity ]

let test_seq_limit () =
  let p = Idl.proc "p" [ Idl.arg "xs" (Idl.T_seq (Idl.T_int, 3)) ] in
  Alcotest.(check bool) "over-long sequence rejected" true
    (try
       ignore
         (encode Marshal.In_call_packet p
            [ Marshal.V_seq (List.init 4 (fun i -> Marshal.V_int (Int32.of_int i))) ]);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true)

let test_record_field_mismatch () =
  let p = Idl.proc "p" [ Idl.arg "r" (Idl.T_record [ Idl.T_int; Idl.T_bool ]) ] in
  Alcotest.(check bool) "field count checked" true
    (try
       ignore (encode Marshal.In_call_packet p [ Marshal.V_record [ Marshal.V_int 1l ] ]);
       false
     with Rpc.Rpc_error.Rpc (Rpc.Rpc_error.Marshal_failure _) -> true)

let test_composite_cost_composes () =
  (* A record of two ints by value must cost what two ints cost. *)
  let arg_rec = Idl.arg "r" (Idl.T_record [ Idl.T_int; Idl.T_int ]) in
  let v = Marshal.V_record [ Marshal.V_int 1l; Marshal.V_int 2l ] in
  let total side =
    Sim.Time.to_us (Marshal.cost timing side Marshal.In_call_packet arg_rec v)
  in
  Alcotest.(check (float 0.1)) "caller side 2x int" 8. (total Marshal.Caller_side);
  Alcotest.(check (float 0.1)) "server side 2x int" 8. (total Marshal.Server_side)

(* {1 Cost model} *)

let us_of = Sim.Time.to_us

let test_costs () =
  let arg_out = Idl.arg ~mode:Idl.Var_out "b" (Idl.T_var_bytes 1440) in
  let v = Marshal.V_bytes (Bytes.make 1440 'x') in
  Alcotest.(check (float 1.)) "VAR OUT caller cost @1440" 550.
    (us_of (Marshal.cost timing Marshal.Caller_side Marshal.In_result_packet arg_out v));
  Alcotest.(check (float 0.)) "VAR OUT server free" 0.
    (us_of (Marshal.cost timing Marshal.Server_side Marshal.In_result_packet arg_out v));
  Alcotest.(check (float 0.)) "VAR OUT nothing in call packet" 0.
    (us_of (Marshal.cost timing Marshal.Caller_side Marshal.In_call_packet arg_out v));
  let arg_int = Idl.arg "n" Idl.T_int in
  Alcotest.(check (float 0.1)) "int caller" 4.
    (us_of (Marshal.cost timing Marshal.Caller_side Marshal.In_call_packet arg_int (Marshal.V_int 0l)));
  Alcotest.(check (float 0.1)) "int server" 4.
    (us_of (Marshal.cost timing Marshal.Server_side Marshal.In_call_packet arg_int (Marshal.V_int 0l)));
  let arg_text = Idl.arg "s" (Idl.T_text 200) in
  let tv = Marshal.V_text (Some (String.make 128 'a')) in
  let total =
    us_of (Marshal.cost timing Marshal.Caller_side Marshal.In_call_packet arg_text tv)
    +. us_of (Marshal.cost timing Marshal.Server_side Marshal.In_call_packet arg_text tv)
  in
  Alcotest.(check (float 5.)) "text total @128" 659. total

(* {1 Property: random procedures roundtrip} *)

let gen_scalar_ty =
  QCheck.Gen.(
    oneof
      [
        return Idl.T_int;
        return Idl.T_bool;
        return Idl.T_int16;
        return Idl.T_real;
        map (fun n -> Idl.T_fixed_bytes (1 + (n mod 64))) nat;
        map (fun n -> Idl.T_var_bytes (1 + (n mod 128))) nat;
        map (fun n -> Idl.T_text (n mod 64)) nat;
      ])

(* One level of composites over the scalars: records and sequences. *)
let gen_ty =
  QCheck.Gen.(
    frequency
      [
        (4, gen_scalar_ty);
        ( 1,
          let* n = int_range 1 4 in
          let* fields = list_size (return n) gen_scalar_ty in
          return (Idl.T_record fields) );
        ( 1,
          let* elt = gen_scalar_ty in
          let* max = int_range 1 8 in
          return (Idl.T_seq (elt, max)) );
      ])

let gen_mode = QCheck.Gen.oneofl [ Idl.Value; Idl.Var_in; Idl.Var_out ]

let rec gen_value rng ty =
  let open QCheck.Gen in
  match ty with
  | Idl.T_int -> Marshal.V_int (Int32.of_int (generate1 ~rand:rng (int_bound 1000000)))
  | Idl.T_fixed_bytes n -> Marshal.V_bytes (Bytes.init n (fun i -> Char.chr ((i * 13) land 0xff)))
  | Idl.T_var_bytes max ->
    let n = generate1 ~rand:rng (int_bound max) in
    Marshal.V_bytes (Bytes.init n (fun i -> Char.chr ((i * 31) land 0xff)))
  | Idl.T_text max ->
    if generate1 ~rand:rng bool then Marshal.V_text None
    else
      Marshal.V_text
        (Some (String.init (generate1 ~rand:rng (int_bound max)) (fun i -> Char.chr (65 + (i mod 26)))))
  | Idl.T_bool -> Marshal.V_bool (generate1 ~rand:rng bool)
  | Idl.T_int16 -> Marshal.V_int16 (generate1 ~rand:rng (int_range (-32768) 32767))
  | Idl.T_real -> Marshal.V_real (generate1 ~rand:rng (float_bound_inclusive 1e9))
  | Idl.T_record fields -> Marshal.V_record (List.map (gen_value rng) fields)
  | Idl.T_seq (elt, max) ->
    let n = generate1 ~rand:rng (int_bound max) in
    Marshal.V_seq (List.init n (fun _ -> gen_value rng elt))

let gen_proc =
  QCheck.Gen.(
    let* n = int_range 0 6 in
    let* tys = list_size (return n) gen_ty in
    let* modes = list_size (return n) gen_mode in
    return
      (Idl.proc "p"
         (List.mapi (fun i (ty, mode) -> Idl.arg ~mode (Printf.sprintf "a%d" i) ty)
            (List.combine tys modes))))

let prop_random_proc_roundtrip =
  QCheck.Test.make ~name:"random procedure marshalling roundtrip" ~count:300
    (QCheck.make gen_proc)
    (fun p ->
      let rng = Random.State.make [| 11 |] in
      let vs = List.map (fun a -> gen_value rng a.Idl.ty) p.Idl.args in
      let check dir =
        let b = encode dir p vs in
        let decoded = Marshal.decode_args (R.of_bytes b) dir p in
        List.for_all2
          (fun a (v, v') ->
            if Marshal.travels a.Idl.mode dir then Marshal.equal_value v v'
            else Marshal.equal_value v' (Marshal.placeholder a.Idl.ty))
          p.Idl.args
          (List.combine vs decoded)
      in
      check Marshal.In_call_packet && check Marshal.In_result_packet)

let suite =
  [
    Alcotest.test_case "idl validation" `Quick test_idl_validation;
    Alcotest.test_case "interface id stability" `Quick test_interface_id_stable;
    Alcotest.test_case "find_proc" `Quick test_find_proc;
    Alcotest.test_case "direction selection" `Quick test_direction_selection;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip_call;
    Alcotest.test_case "trailing array exact fit" `Quick test_trailing_array_exact_fit;
    Alcotest.test_case "NIL text" `Quick test_nil_text;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "truncated decode" `Quick test_truncated_decode;
    Alcotest.test_case "rich types roundtrip" `Quick test_rich_roundtrip;
    Alcotest.test_case "int16 range" `Quick test_int16_range;
    Alcotest.test_case "real bit-exact" `Quick test_real_bit_exact;
    Alcotest.test_case "sequence limit" `Quick test_seq_limit;
    Alcotest.test_case "record field mismatch" `Quick test_record_field_mismatch;
    Alcotest.test_case "composite costs compose" `Quick test_composite_cost_composes;
    Alcotest.test_case "cost model placement" `Quick test_costs;
    QCheck_alcotest.to_alcotest prop_random_proc_roundtrip;
  ]
